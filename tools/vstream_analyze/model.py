"""Findings, per-file state, and suppression handling."""

import re

from . import lexer


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return '%s:%d: [%s] %s' % (self.path, self.line, self.rule,
                                   self.message)


ALLOW_RE = re.compile(r'vstream:allow\(([A-Za-z0-9_,\- ]+)\)')


class SourceFile:
    """One scanned file: raw text, length-preserving stripped view,
    token stream, per-line suppression sets."""

    def __init__(self, rel, raw):
        self.rel = rel
        self.raw = raw
        self.code, self.tokens = lexer.scan(raw)
        # line -> set of rule ids allowed on that line and the next
        # (an allow comment suppresses its own line and the line
        # after, so it can sit inline or on the line above).
        self.allow = {}
        for tok in self.tokens:
            if tok.kind != 'comment':
                continue
            m = ALLOW_RE.search(tok.text)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(',')}
            span = tok.text.count('\n') + 2
            for off in range(span):
                self.allow.setdefault(tok.line + off,
                                      set()).update(rules)

    def line_of(self, offset):
        """1-based line of a stripped-view (== raw) offset."""
        return self.code.count('\n', 0, offset) + 1

    def allowed(self, line, rule):
        return rule in self.allow.get(line, ())

    def comments(self):
        for tok in self.tokens:
            if tok.kind == 'comment':
                yield tok


def match_lines(code, pattern):
    """Yield (1-based line, match) for every match of @p pattern."""
    for m in re.finditer(pattern, code):
        yield code.count('\n', 0, m.start()) + 1, m
