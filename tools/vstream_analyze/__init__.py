"""vstream-analyze: cross-TU determinism & concurrency analyzer.

Grown out of tools/vstream_lint.py (which remains as a thin compat
shim).  The package splits into:

  lexer.py     a real C++ lexer: raw strings, digit separators,
               line-splices (including inside // comments), and
               comment/string stripping that is length-preserving so
               offsets in the stripped view index straight into the
               raw text.
  model.py     Finding, Token, SourceFile and the vstream:allow()
               suppression machinery.
  project.py   the cross-TU pass: include graph, class/function
               symbol tables, call graph, hot markers, field
               annotations, regStats/resetStats bodies.
  rules.py     every rule, per-TU and project-wide.
  selftest.py  synthetic good/bad projects; every rule must fire on
               the bad inputs and stay silent on the good ones.
  cli.py       the command-line driver (tools/vstream_analyze is
               runnable with python3 directly).

See docs/ANALYSIS.md for the rule catalogue and how to add a rule.
"""

__version__ = '1.0'
