"""Cross-TU project model: include graph, symbol tables, call graph.

Everything here is a static, heuristic view good enough for lint
rules: function bodies are found by brace matching over the stripped
view, calls are resolved by name against the project's own definition
table (same class first, then unique global name), and the include
graph is built from the quoted includes that resolve to files inside
the repo.  No preprocessor evaluation is attempted.
"""

import os
import re

from . import lexer
from .model import SourceFile

EXTENSIONS = ('.cc', '.hh', '.h', '.cpp')

SCAN_TOPS = ('src', 'tests', 'bench', 'examples', 'fuzz')

INCLUDE_RE = re.compile(r'#\s*include\s*(" +")', )
INCLUDE_CODE_RE = re.compile(r'#\s*include\s*"( *)"')

CLASS_RE = re.compile(
    r'\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?'
    r'(?::\s*[^;{]*)?\{')

FUNC_NAME_RE = re.compile(
    r'\b((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\(')

CONTROL_KEYWORDS = frozenset((
    'if', 'while', 'for', 'switch', 'catch', 'return', 'sizeof',
    'alignof', 'decltype', 'noexcept', 'static_assert', 'new',
    'delete', 'throw', 'assert', 'defined', 'requires', 'alignas',
))

HOT_MARK_RE = re.compile(r'vstream:hot\b')
GUARDED_BY_RE = re.compile(r'vstream:guarded_by\(([A-Za-z_]\w*)\)')
SHARD_LOCAL_RE = re.compile(r'vstream:shard_local\b')

FIELD_DECL_RE = re.compile(
    r'([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;')


def find_matching(code, pos, open_c='{', close_c='}'):
    """Index just past the bracket matching code[pos]; -1 if
    unbalanced."""
    depth = 0
    for i in range(pos, len(code)):
        c = code[i]
        if c == open_c:
            depth += 1
        elif c == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


class FunctionDef:
    """One function definition found in a TU."""

    __slots__ = ('sf', 'name', 'cls', 'start', 'body_start',
                 'body_end', 'line', 'allowed_rules')

    def __init__(self, sf, name, cls, start, body_start, body_end,
                 line):
        self.sf = sf
        self.name = name          # unqualified name
        self.cls = cls            # enclosing/explicit class or None
        self.start = start        # offset of the name
        self.body_start = body_start  # offset of the '{'
        self.body_end = body_end      # offset past the '}'
        self.line = line
        self.allowed_rules = set()

    @property
    def qualified(self):
        return '%s::%s' % (self.cls, self.name) if self.cls \
            else self.name

    def body(self):
        return self.sf.code[self.body_start:self.body_end]


class Annotation:
    """A vstream:guarded_by / vstream:shard_local field annotation."""

    __slots__ = ('field', 'kind', 'guard', 'sf', 'line')

    def __init__(self, field, kind, guard, sf, line):
        self.field = field
        self.kind = kind      # 'guarded_by' | 'shard_local'
        self.guard = guard    # mutex name for guarded_by
        self.sf = sf
        self.line = line


class Project:
    """All scanned files plus the cross-TU derived tables."""

    def __init__(self, root):
        self.root = root
        self.files = {}        # rel -> SourceFile
        self._reach = {}       # rel -> frozenset(transitive includes)
        self.includes = {}     # rel -> [rel]
        self.functions = []    # [FunctionDef]
        self.by_simple = {}    # name -> [FunctionDef]
        self.by_qualified = {}  # Class::name -> [FunctionDef]
        self.annotations = {}  # field name -> [Annotation]

    # -- loading ---------------------------------------------------------

    @classmethod
    def load(cls, root, rels=None):
        proj = cls(root)
        if rels is None:
            rels = []
            for top in SCAN_TOPS:
                base = os.path.join(root, top)
                if not os.path.isdir(base):
                    continue
                for dirpath, _, names in sorted(os.walk(base)):
                    for name in sorted(names):
                        if name.endswith(EXTENSIONS):
                            rels.append(os.path.relpath(
                                os.path.join(dirpath, name), root))
        for rel in rels:
            path = os.path.join(root, rel)
            try:
                with open(path, encoding='utf-8',
                          errors='replace') as f:
                    raw = f.read()
            except OSError:
                continue
            proj.files[rel.replace(os.sep, '/')] = \
                SourceFile(rel.replace(os.sep, '/'), raw)
        proj._build_includes()
        proj._build_functions()
        proj._build_annotations()
        return proj

    # -- include graph ---------------------------------------------------

    def _resolve_include(self, from_rel, inc):
        # Project headers are included relative to src/ (the include
        # dir) or relative to the including file.
        cands = ['src/' + inc, inc]
        base = os.path.dirname(from_rel)
        if base:
            cands.append(base + '/' + inc)
        for cand in cands:
            cand = os.path.normpath(cand).replace(os.sep, '/')
            if cand in self.files:
                return cand
        return None

    def _build_includes(self):
        for rel, sf in self.files.items():
            incs = []
            for m in INCLUDE_CODE_RE.finditer(sf.code):
                # The path text is blanked in the stripped view;
                # recover it from the raw text at the same offsets
                # (the stripper is length-preserving).
                inc = sf.raw[m.start(1):m.end(1)].strip()
                target = self._resolve_include(rel, inc)
                if target:
                    incs.append(target)
            self.includes[rel] = incs

    def reach(self, rel):
        """Transitive includes of @p rel (not including itself)."""
        cached = self._reach.get(rel)
        if cached is not None:
            return cached
        seen = set()
        stack = list(self.includes.get(rel, ()))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.includes.get(cur, ()))
        result = frozenset(seen)
        self._reach[rel] = result
        return result

    def reaches_any(self, rel, targets):
        if rel in targets:
            return True
        return bool(self.reach(rel) & targets)

    # -- class spans -----------------------------------------------------

    @staticmethod
    def _class_spans(sf):
        """[(name, body_start, body_end)] for each class/struct."""
        spans = []
        for m in CLASS_RE.finditer(sf.code):
            open_pos = m.end() - 1
            end = find_matching(sf.code, open_pos)
            if end > 0:
                spans.append((m.group(1), open_pos, end))
        return spans

    @staticmethod
    def _enclosing_class(spans, pos):
        best = None
        for name, start, end in spans:
            if start < pos < end:
                if best is None or start > best[1]:
                    best = (name, start)
        return best[0] if best else None

    # -- function definitions --------------------------------------------

    def _build_functions(self):
        for sf in self.files.values():
            spans = self._class_spans(sf)
            code = sf.code
            for m in FUNC_NAME_RE.finditer(code):
                name = re.sub(r'\s+', '', m.group(1))
                simple = name.rsplit('::', 1)[-1]
                if simple.lstrip('~') in CONTROL_KEYWORDS or \
                        simple in lexer.KEYWORDS:
                    continue
                close = find_matching(code, m.end() - 1, '(', ')')
                if close < 0:
                    continue
                body_start = self._skip_to_body(code, close)
                if body_start < 0:
                    continue
                body_end = find_matching(code, body_start)
                if body_end < 0:
                    continue
                cls = None
                if '::' in name:
                    cls, simple = name.rsplit('::', 1)
                    cls = cls.rsplit('::', 1)[-1]
                else:
                    cls = self._enclosing_class(spans, m.start())
                fn = FunctionDef(sf, simple, cls, m.start(),
                                 body_start, body_end,
                                 sf.line_of(m.start()))
                self._attach_allows(fn)
                self.functions.append(fn)
                self.by_simple.setdefault(simple, []).append(fn)
                if cls:
                    self.by_qualified.setdefault(
                        '%s::%s' % (cls, simple), []).append(fn)

    @staticmethod
    def _skip_to_body(code, pos):
        """From just past the parameter ')', skip qualifiers and a
        constructor init list; return the offset of the body '{' or
        -1 when this is not a definition."""
        i = pos
        n = len(code)
        while i < n:
            c = code[i]
            if c in ' \t\r\n':
                i += 1
                continue
            if code.startswith(('const', 'noexcept', 'override',
                                'final', 'mutable', 'volatile',
                                'restrict'), i):
                word = re.match(r'[a-z_]+', code[i:]).group(0)
                if word in ('const', 'noexcept', 'override', 'final',
                            'mutable', 'volatile', 'restrict'):
                    i += len(word)
                    continue
                return -1
            if c == '(':  # noexcept(...)
                nxt = find_matching(code, i, '(', ')')
                if nxt < 0:
                    return -1
                i = nxt
                continue
            if code.startswith('->', i):
                # Trailing return type: skip to the '{' at this
                # nesting level.
                j = i + 2
                depth = 0
                while j < n:
                    if code[j] in '(<[':
                        depth += 1
                    elif code[j] in ')>]':
                        depth -= 1
                    elif code[j] == '{' and depth <= 0:
                        return j
                    elif code[j] in ';,' and depth <= 0:
                        return -1
                    j += 1
                return -1
            if c == ':':
                if code.startswith('::', i):
                    return -1
                # Constructor init list: skip initializers up to the
                # body '{' (brace-or-paren initializers both appear).
                j = i + 1
                depth = 0
                while j < n:
                    cj = code[j]
                    if cj == '(':
                        j = find_matching(code, j, '(', ')')
                        if j < 0:
                            return -1
                        continue
                    if cj == '{':
                        if depth == 0:
                            # Either an initializer brace or the
                            # body; an initializer brace is always
                            # followed (after ws) by ',' or '{'.
                            k = find_matching(code, j)
                            if k < 0:
                                return -1
                            t = k
                            while t < n and code[t] in ' \t\r\n':
                                t += 1
                            if t < n and code[t] == ',':
                                j = k
                                continue
                            if t < n and code[t] == '{':
                                return t
                            return j
                        j += 1
                        continue
                    if cj == ';':
                        return -1
                    j += 1
                return -1
            if c == '{':
                return i
            return -1
        return -1

    def _attach_allows(self, fn):
        """Allow comments on the two lines above a definition (or on
        its signature line) suppress those rules in the whole body."""
        for line in range(fn.line - 2, fn.line + 1):
            for rule in fn.sf.allow.get(line, ()):
                fn.allowed_rules.add(rule)
        # Comments may sit above the marker line itself; also honor
        # an allow attached to a vstream:hot marker block.

    # -- call graph ------------------------------------------------------

    CALL_RE = re.compile(r'\b([A-Za-z_]\w*)\s*\(')

    def callees(self, fn):
        """Project-local functions statically resolvable as callees
        of @p fn (same class preferred, else unique simple name)."""
        out = []
        seen = set()
        body = fn.body()
        for m in self.CALL_RE.finditer(body):
            name = m.group(1)
            if name in seen or name in lexer.KEYWORDS or \
                    name in CONTROL_KEYWORDS:
                continue
            seen.add(name)
            target = None
            if fn.cls:
                target = self.by_qualified.get(
                    '%s::%s' % (fn.cls, name))
            if not target:
                cands = self.by_simple.get(name, ())
                # Only unambiguous project-wide names resolve.
                classes = {c.cls for c in cands}
                if len(cands) >= 1 and len(classes) == 1:
                    target = cands
            if target:
                out.extend(t for t in target if t is not fn)
        return out

    # -- hot markers -----------------------------------------------------

    def hot_functions(self):
        """Functions marked // vstream:hot (marker within the three
        lines above the definition)."""
        out = []
        for sf in self.files.values():
            marks = [tok.line for tok in sf.comments()
                     if HOT_MARK_RE.search(tok.text)]
            if not marks:
                continue
            fns = sorted((f for f in self.functions if f.sf is sf),
                         key=lambda f: f.line)
            for mark_line in marks:
                best = None
                for fn in fns:
                    if mark_line <= fn.line <= mark_line + 3:
                        best = fn
                        break
                if best:
                    out.append(best)
        return out

    # -- field annotations -----------------------------------------------

    def _build_annotations(self):
        for sf in self.files.values():
            for tok in sf.comments():
                guarded = GUARDED_BY_RE.search(tok.text)
                shard = SHARD_LOCAL_RE.search(tok.text)
                if not guarded and not shard:
                    continue
                kind = 'guarded_by' if guarded else 'shard_local'
                guard = guarded.group(1) if guarded else None
                field = self._annotated_field(sf, tok)
                if not field:
                    continue
                ann = Annotation(field, kind, guard, sf, tok.line)
                self.annotations.setdefault(field, []).append(ann)

    @staticmethod
    def _annotated_field(sf, tok):
        """The declarator the annotation attaches to: the last
        identifier before ';' on the annotation's line or the next
        code line."""
        lines = sf.code.split('\n')
        span = tok.text.count('\n') + 1
        for ln in range(tok.line, min(tok.line + span + 1,
                                      len(lines)) + 1):
            if ln - 1 >= len(lines):
                break
            text = lines[ln - 1]
            m = FIELD_DECL_RE.search(text)
            if m:
                return m.group(1)
        return None
