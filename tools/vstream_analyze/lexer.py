"""C++ lexer for the analyzer.

The old tools/vstream_lint.py stripper mis-handled three constructs:

  * raw string literals: R"(...)" closed at the first '"', so the
    rest of the literal was scanned as code (fabricating findings)
    or real code after it was swallowed (masking findings);
  * line-continuation backslashes inside // comments: the comment
    ended at the newline, so the spliced continuation line was
    scanned as code;
  * digit separators: the ' in 1'000'000 opened a character literal
    that swallowed everything up to the next apostrophe.

This lexer handles all three (regression-tested in selftest.py) and
produces two views of a file:

  strip_comments_and_strings(text)
      a length-preserving text in which comment bodies and
      string/char-literal contents are blanked (newlines kept), so
      regexes over it cannot match inside literals and offsets index
      straight back into the raw text;

  tokenize(text)
      a token stream (identifiers, numbers, strings, comments,
      punctuation) with 1-based line numbers; comments keep their
      text so annotation markers (// vstream:hot, // vstream:allow,
      // vstream:guarded_by) survive for the rules that read them.
"""

KEYWORDS = frozenset('''
    alignas alignof asm auto bool break case catch char char8_t
    char16_t char32_t class concept const consteval constexpr
    constinit const_cast continue co_await co_return co_yield
    decltype default delete do double dynamic_cast else enum explicit
    export extern false float for friend goto if inline int long
    mutable namespace new noexcept nullptr operator private protected
    public register reinterpret_cast requires return short signed
    sizeof static static_assert static_cast struct switch template
    this thread_local throw true try typedef typeid typename union
    unsigned using virtual void volatile wchar_t while
'''.split())

_ID_START = frozenset(
    'abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_')
_ID_CONT = _ID_START | frozenset('0123456789')
_RAW_PREFIXES = ('R"', 'u8R"', 'uR"', 'UR"', 'LR"')


class Token:
    """One lexical token; kind is 'id', 'num', 'str', 'chr',
    'comment', or 'punct'."""

    __slots__ = ('kind', 'text', 'line')

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return 'Token(%r, %r, %d)' % (self.kind, self.text, self.line)


class _Scan:
    """Shared scanning core; emits both the stripped text and the
    token stream in one pass."""

    def __init__(self, text):
        self.text = text
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.out = []     # stripped, length-preserving
        self.tokens = []

    # -- output helpers --------------------------------------------------

    def _keep(self, c):
        self.out.append(c)
        if c == '\n':
            self.line += 1

    def _blank(self, c):
        """Blank @p c in the stripped view, preserving newlines."""
        if c == '\n':
            self.out.append('\n')
            self.line += 1
        else:
            self.out.append(' ')

    # -- sub-scanners ----------------------------------------------------

    def _spliced_newline(self):
        """True when text[i] is a backslash splicing the next line
        (backslash immediately before \\n or \\r\\n)."""
        t, i = self.text, self.i
        if t[i] != '\\':
            return False
        if i + 1 < self.n and t[i + 1] == '\n':
            return True
        return i + 2 < self.n and t[i + 1] == '\r' and t[i + 2] == '\n'

    def _line_comment(self):
        start = self.line
        begin = self.i
        self._blank(' ')
        self._blank(' ')
        self.i += 2
        while self.i < self.n:
            c = self.text[self.i]
            if self._spliced_newline():
                # A backslash-newline splices the next physical line
                # into the comment (the old stripper got this wrong).
                self._blank(c)
                self.i += 1
                while self.i < self.n and self.text[self.i] != '\n':
                    self._blank(self.text[self.i])
                    self.i += 1
                if self.i < self.n:
                    self._blank('\n')
                    self.i += 1
                continue
            if c == '\n':
                break
            self._blank(c)
            self.i += 1
        self.tokens.append(
            Token('comment', self.text[begin:self.i], start))

    def _block_comment(self):
        start = self.line
        begin = self.i
        self._blank(' ')
        self._blank(' ')
        self.i += 2
        while self.i < self.n:
            if self.text.startswith('*/', self.i):
                self._blank(' ')
                self._blank(' ')
                self.i += 2
                break
            self._blank(self.text[self.i])
            self.i += 1
        self.tokens.append(
            Token('comment', self.text[begin:self.i], start))

    def _raw_string(self, prefix_len):
        start = self.line
        begin = self.i
        # Keep the prefix and opening quote visible in the stripped
        # view (they are structure, not content).
        for _ in range(prefix_len):
            self._keep(self.text[self.i])
            self.i += 1
        # Delimiter: everything up to the opening parenthesis.
        dstart = self.i
        while self.i < self.n and self.text[self.i] != '(':
            self._keep(self.text[self.i])
            self.i += 1
        delim = self.text[dstart:self.i]
        closer = ')' + delim + '"'
        if self.i < self.n:  # the '('
            self._keep('(')
            self.i += 1
        end = self.text.find(closer, self.i)
        if end < 0:
            end = self.n
        while self.i < end:
            self._blank(self.text[self.i])
            self.i += 1
        for c in closer:
            if self.i < self.n and self.text[self.i] == c:
                self._keep(c)
                self.i += 1
        self.tokens.append(Token('str', self.text[begin:self.i], start))

    def _quoted(self, quote, kind):
        start = self.line
        begin = self.i
        self._keep(quote)
        self.i += 1
        while self.i < self.n:
            c = self.text[self.i]
            if c == '\\' and self.i + 1 < self.n:
                self._blank(c)
                self._blank(self.text[self.i + 1])
                self.i += 2
                continue
            if c == quote:
                self._keep(c)
                self.i += 1
                break
            if c == '\n':  # unterminated; stop at the line break
                break
            self._blank(c)
            self.i += 1
        self.tokens.append(Token(kind, self.text[begin:self.i], start))

    def _identifier(self):
        start = self.line
        begin = self.i
        while self.i < self.n and self.text[self.i] in _ID_CONT:
            self._keep(self.text[self.i])
            self.i += 1
        word = self.text[begin:self.i]
        # Raw/encoded string literal prefix glued to a quote?
        if self.i < self.n and self.text[self.i] == '"' and \
                word in ('R', 'u8R', 'uR', 'UR', 'LR',
                         'u8', 'u', 'U', 'L'):
            if word.endswith('R'):
                self.tokens.append(Token('id', word, start))
                # Rewind bookkeeping: treat prefix as already kept.
                self._raw_string(1)  # just the quote; prefix is out
                return
            self.tokens.append(Token('id', word, start))
            return
        self.tokens.append(Token('id', word, start))

    def _number(self):
        start = self.line
        begin = self.i
        while self.i < self.n:
            c = self.text[self.i]
            if c in _ID_CONT or c == '.':
                self._keep(c)
                self.i += 1
            elif c == "'" and self.i + 1 < self.n and \
                    self.text[self.i + 1] in _ID_CONT:
                # Digit separator (1'000'000), not a char literal.
                self._keep(c)
                self.i += 1
            elif c in '+-' and self.i > begin and \
                    self.text[self.i - 1] in 'eEpP':
                self._keep(c)
                self.i += 1
            else:
                break
        self.tokens.append(
            Token('num', self.text[begin:self.i], start))

    # -- main loop -------------------------------------------------------

    def run(self):
        while self.i < self.n:
            c = self.text[self.i]
            nxt = self.text[self.i + 1] if self.i + 1 < self.n else ''
            if c == '/' and nxt == '/':
                self._line_comment()
            elif c == '/' and nxt == '*':
                self._block_comment()
            elif c == '"':
                self._quoted('"', 'str')
            elif c == "'":
                self._quoted("'", 'chr')
            elif c in _ID_START:
                self._identifier()
            elif c.isdigit() or (c == '.' and nxt.isdigit()):
                self._number()
            else:
                if c not in ' \t\r\n':
                    self.tokens.append(Token('punct', c, self.line))
                self._keep(c)
                self.i += 1
        return ''.join(self.out), self.tokens


def scan(text):
    """Return (stripped_text, tokens); both from one pass."""
    return _Scan(text).run()


def strip_comments_and_strings(text):
    """Length-preserving stripped view (see module docstring)."""
    return scan(text)[0]


def tokenize(text):
    """Token stream with comments preserved."""
    return scan(text)[1]
