"""Analyzer self-test: synthetic bad/good projects + lexer
regressions.

Every rule id must fire at least once on the bad inputs and never on
the good inputs.  The lexer regressions pin the three historical
stripper bugs (raw strings, line-continuation backslashes inside //
comments, digit separators) so they cannot come back.
"""

import os
import sys
import tempfile

from . import lexer
from . import rules
from .project import Project

# -- stub project headers (clean; give the include graph real edges)

STUB_STATS_REGISTRY = '''\
#ifndef VSTREAM_SIM_STATS_REGISTRY_HH
#define VSTREAM_SIM_STATS_REGISTRY_HH
class StatsRegistry;
#endif
'''

STUB_PARALLEL = '''\
#ifndef VSTREAM_SIM_PARALLEL_HH
#define VSTREAM_SIM_PARALLEL_HH
void parallelForDecl();
#endif
'''

# -- bad inputs: every rule must fire somewhere in these -------------

BAD_HEADER = '''\
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH
#include <cassert>
#include <random>
#include "sim/stats_registry.hh"
class Bad : public SimObject
{
  public:
    void regStats(StatsRegistry &r) override;
  private:
    int *p_ = new int(3);
};
inline void f(int *q) { assert(q != NULL); delete q; std::abort(); }
inline int g() { return rand(); }
inline void h(std::ostream &os) { stats::printStat(os, "x", 1.0); }
inline void i(char *buf, FILE *fp) { fread(buf, 1, 16, fp); }
inline void j() { while (true) { retryBurst(); } }
// vstream:hot
inline int *k()
{
    std::string name("scratch");
    return new int(static_cast<int>(name.size()));
}
inline double wallSeconds()
{
    auto t0 = std::chrono::steady_clock::now();
    return static_cast<double>(time(nullptr));
}
inline const char *env() { return std::getenv("VSTREAM_X"); }
inline std::size_t ptrHash(void *p)
{
    return std::hash<void *>{}(p);
}
inline void dumpCounts(std::ostream &os)
{
    std::unordered_map<std::uint32_t, int> counts;
    for (const auto &kv : counts) {
        os << kv.first;
    }
}
#endif
'''

BAD_HOT = '''\
#include "sim/stats_registry.hh"
namespace bad
{
void helperGrow(std::vector<int> &v)
{
    v.push_back(1);
}
// vstream:hot
void hotKernel(std::vector<int> &v)
{
    helperGrow(v);
}
// vstream:hot
void hotRawBuffer(std::size_t n)
{
    // malloc bypasses the SurfacePool tier, and the owning local
    // vector allocates on every call: surface-pool-discipline.
    char *raw = static_cast<char *>(malloc(n));
    std::vector<char> scratch;
    scratch.push_back(raw[0]);
    free(raw);
}
} // namespace bad
'''

BAD_LOCK = '''\
#include "sim/parallel.hh"
class BadShard
{
  public:
    void run(unsigned jobs);
  private:
    // vstream:shard_local
    int scratch_ = 0;
    // vstream:guarded_by(mutex_)
    int shared_ = 0;
};
void
BadShard::run(unsigned jobs)
{
    parallelFor(jobs, 8, [&](std::size_t i) {
        scratch_ += static_cast<int>(i);
        shared_ += 1;
    });
}
'''

BAD_STATS = '''\
#include "sim/stats_registry.hh"
class BadStatsA
{
  public:
    void regStats(StatsRegistry &r);
  private:
    std::uint64_t hits_ = 0;
};
void
BadStatsA::regStats(StatsRegistry &r)
{
    r.addCallback("bad.hits", "hits", [this] {
        return static_cast<double>(hits_);
    });
}
class BadStatsB
{
  public:
    void regStats(StatsRegistry &r);
    void resetStats();
  private:
    std::uint64_t good_ = 0;
    std::uint64_t forgotten_ = 0;
};
void
BadStatsB::regStats(StatsRegistry &r)
{
    r.addCallback("bad.good", "reset fine", [this] {
        return static_cast<double>(good_);
    });
    r.addCallback("bad.forgotten", "never reset", [this] {
        return static_cast<double>(forgotten_);
    });
}
void
BadStatsB::resetStats()
{
    good_ = 0;
}
'''

BAD_QUEUE = '''\
#include "sim/stats_registry.hh"
class BadAdmission
{
  public:
    void submit(int job);
  private:
    std::deque<int> waiting_;
    std::queue<int> retry_backlog_;
};
void
BadAdmission::submit(int job)
{
    waiting_.push_back(job);
}
'''

BAD_SHARED = '''\
#include "sim/stats_registry.hh"
class BadTier
{
  public:
    void publish(int key);
  private:
    // Cross-session state with no guarded_by/shard_local story:
    // shared-state-guarded must fire.
    std::map<int, int> shared_blocks_;
    int global_epoch_ = 0;
};
void
BadTier::publish(int key)
{
    shared_blocks_[key] = global_epoch_;
}
'''

# -- good inputs: zero findings expected -----------------------------

GOOD_HEADER = '''\
#ifndef VSTREAM_CORE_GOOD_HH
#define VSTREAM_CORE_GOOD_HH
// assert() in a comment, "abort()" and NULL in strings are fine:
inline const char *s() { return "do not abort() on NULL"; }
// Raw strings must be stripped to their closing delimiter, not the
// first quote; everything here is literal content:
inline const char *r()
{
    return R"(rand() NULL abort() "quoted" /* not a comment)";
}
// A line-continuation backslash extends this comment: rand() \\
   srand(42); abort(); NULL
inline int sep() { return 1'000'000 + 0xFF'FF; }
class Good : public SimObject
{
  public:
    void regStats(StatsRegistry &r) override;
    void resetStats() override;
};
inline bool i(char *buf, std::size_t n, FILE *fp)
{
    // Checked and member-call IO never fires no-unchecked-io:
    if (fread(buf, 1, n, fp) != n) { return false; }
    std::stringstream ss;
    ss.read(buf, 4);
    return bool(ss);
}
inline void j(unsigned retry_limit)
{
    // A bounded retry loop never fires no-unbounded-retry:
    unsigned attempts = 0;
    while (true) {
        if (++attempts > retry_limit) { break; }
        retryBurst();
    }
}
// vstream:hot
inline std::uint32_t k(const std::string &key, std::uint32_t seed)
{
    // Reads a std::string by reference and allocates nothing:
    // never fires no-hotpath-alloc.
    std::uint32_t h = seed;
    for (char c : key) {
        h = h * 31u + static_cast<std::uint8_t>(c);
    }
    return h;
}
#endif
'''

GOOD_HOT = '''\
#include "sim/stats_registry.hh"
namespace good
{
int helperPure(int x)
{
    return x * 2;
}
// A deliberate, documented growth path right below a hot caller:
// vstream:allow(no-hotpath-alloc) amortized growth; callers reserve
void helperGrowAllowed(std::vector<int> &v)
{
    v.push_back(1);
}
// vstream:hot
int hotKernel(std::vector<int> &v, int x)
{
    helperGrowAllowed(v);
    return helperPure(x);
}
// vstream:hot
int hotScratchReuse(std::vector<int> &scratch)
{
    // Reference bindings to a caller-owned (pooled) scratch never
    // fire surface-pool-discipline; only owning locals do.
    const std::vector<int> &view = scratch;
    scratch.clear();
    return helperPure(static_cast<int>(view.size()));
}
} // namespace good
'''

GOOD_LOCK = '''\
#include "sim/parallel.hh"
class GoodShard
{
  public:
    void run(unsigned jobs);
  private:
    // vstream:shard_local
    int merged_ = 0;
    // vstream:guarded_by(mutex_)
    int shared_ok_ = 0;
};
void
GoodShard::run(unsigned jobs)
{
    parallelFor(jobs, 8, [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mutex_);
        shared_ok_ += static_cast<int>(i);
    });
    merged_ += 1; // outside the workers: fine
}
'''

GOOD_STATS = '''\
#include "sim/stats_registry.hh"
class GoodStats
{
  public:
    void regStats(StatsRegistry &r);
    void resetStats();
  private:
    std::string name_;
    std::uint64_t hits_ = 0;
};
void
GoodStats::regStats(StatsRegistry &r)
{
    // name_ appears in the stat-name argument only: it titles the
    // stat and must never be demanded in resetStats.
    r.addCallback(name_ + ".hits", "hits", [this] {
        return static_cast<double>(hits_);
    });
}
void
GoodStats::resetStats()
{
    hits_ = 0;
}
'''

GOOD_ORDERED = '''\
#include "sim/stats_registry.hh"
#include "core/flat_table.hh"
inline void dumpSorted(std::ostream &os)
{
    // FlatMap + a sorted snapshot is the sanctioned pattern.
    vstream::FlatMap<std::uint32_t, int> counts;
    std::vector<std::uint32_t> keys;
    counts.forEach([&](std::uint32_t k, int) { keys.push_back(k); });
    std::sort(keys.begin(), keys.end());
    for (std::uint32_t k : keys) {
        os << k;
    }
}
'''

GOOD_QUEUE = '''\
#include "sim/stats_registry.hh"
class GoodAdmission
{
  public:
    void submit(int job);
    void expireOverdue(long now);
  private:
    // Bounded: entries past deadline_ expire in expireOverdue().
    std::deque<int> waiting_;
    long deadline_ = 0;
};
void
GoodAdmission::submit(int job)
{
    waiting_.push_back(job);
}
'''

GOOD_SHARED = '''\
#include "sim/stats_registry.hh"
class GoodTier
{
  public:
    void publish(int key);
  private:
    // Annotated cross-session state never fires
    // shared-state-guarded:
    // vstream:guarded_by(mu_)
    std::map<int, int> shared_blocks_;
    // vstream:shard_local
    int global_epoch_ = 0;
};
void
GoodTier::publish(int key)
{
    shared_blocks_[key] = global_epoch_;
}
'''

STUB_FLAT_TABLE = '''\
#ifndef VSTREAM_CORE_FLAT_TABLE_HH
#define VSTREAM_CORE_FLAT_TABLE_HH
namespace vstream { }
#endif
'''

BAD_FILES = {
    'src/core/bad.hh': BAD_HEADER,
    'src/core/bad_hot.cc': BAD_HOT,
    'src/core/bad_lock.cc': BAD_LOCK,
    'src/core/bad_stats.cc': BAD_STATS,
    'src/core/bad_queue.cc': BAD_QUEUE,
    'src/core/bad_shared.cc': BAD_SHARED,
}

GOOD_FILES = {
    'src/core/good.hh': GOOD_HEADER,
    'src/core/good_hot.cc': GOOD_HOT,
    'src/core/good_lock.cc': GOOD_LOCK,
    'src/core/good_stats.cc': GOOD_STATS,
    'src/core/good_ordered.cc': GOOD_ORDERED,
    'src/core/good_queue.cc': GOOD_QUEUE,
    'src/core/good_shared.cc': GOOD_SHARED,
}

STUB_FILES = {
    'src/sim/stats_registry.hh': STUB_STATS_REGISTRY,
    'src/sim/parallel.hh': STUB_PARALLEL,
    'src/core/flat_table.hh': STUB_FLAT_TABLE,
}


def _lexer_regressions():
    """Pin the three historical stripper bugs."""
    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    # 1. Raw strings: content blanked through the delimiter, code
    #    after the literal still visible.
    raw = 'const char *s = R"(rand() "x" NULL)"; std::abort();'
    code = lexer.strip_comments_and_strings(raw)
    check(len(code) == len(raw), 'raw string: length preserved')
    check('rand' not in code, 'raw string: content blanked')
    check('NULL' not in code, 'raw string: NULL blanked')
    check('std::abort' in code, 'raw string: code after survives')

    # 2. Line-continuation backslash extends a // comment.
    raw = '// comment \\\nrand();\nsrand(7);\n'
    code = lexer.strip_comments_and_strings(raw)
    check(len(code) == len(raw), 'comment splice: length preserved')
    check('rand()' not in code.split('\n')[1],
          'comment splice: spliced line is comment')
    check('srand' in code, 'comment splice: next real line is code')

    # 3. Digit separators are not char literals.
    raw = "int x = 1'000'000; std::abort(); char c = '0';"
    code = lexer.strip_comments_and_strings(raw)
    check(len(code) == len(raw), 'digit sep: length preserved')
    check('std::abort' in code, 'digit sep: code after survives')
    check("'0'" not in code, 'digit sep: real char literal blanked')

    # 4. Block comments do not nest (ISO C++): the first */ closes.
    raw = '/* a /* b */ std::abort();'
    code = lexer.strip_comments_and_strings(raw)
    check('std::abort' in code, 'block comment: closes at first */')

    # 5. Escaped quotes inside strings.
    raw = 'const char *q = "a \\" rand() b"; srand(1);'
    code = lexer.strip_comments_and_strings(raw)
    check('rand()' not in code.replace('srand', ''),
          'escaped quote: content blanked')
    check('srand' in code, 'escaped quote: code after survives')

    return failures


def run():
    failures = _lexer_regressions()
    for what in failures:
        print('self-test: lexer regression failed: %s' % what,
              file=sys.stderr)

    with tempfile.TemporaryDirectory() as root:
        for rel, text in {**BAD_FILES, **GOOD_FILES,
                          **STUB_FILES}.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, 'w') as f:
                f.write(text)
        project = Project.load(root)
        findings = rules.run_all(project)

    bad_rules = {f.rule for f in findings if '/bad' in f.path}
    good_hits = [f for f in findings
                 if '/good' in f.path or '/sim/' in f.path]

    ok = not failures
    for rule in sorted(set(rules.RULE_IDS) - bad_rules):
        print('self-test: rule %s did not fire on the bad inputs'
              % rule, file=sys.stderr)
        ok = False
    for f in findings:
        if f.rule not in rules.RULE_IDS:
            print('self-test: unknown rule id %s' % f.rule,
                  file=sys.stderr)
            ok = False
    for f in good_hits:
        print('self-test: false positive on clean input: %s' % f,
              file=sys.stderr)
        ok = False

    print('vstream_analyze self-test: %s (%d rules, %d synthetic '
          'findings)' % ('OK' if ok else 'FAILED',
                         len(rules.RULE_IDS), len(findings)))
    return 0 if ok else 1
