"""Every analyzer rule: per-TU checks and project-wide checks.

Per-TU rules work on a SourceFile's stripped view (regexes cannot
match inside comments or literals; offsets map straight to lines).
Project rules additionally consult the Project's include graph,
symbol tables and call graph.

Suppression: `// vstream:allow(rule-id)` on the finding's line or
the line above silences that rule there; on the line above a
function definition it silences the rule for the whole body.  Every
suppression should carry a reason (docs/ANALYSIS.md).
"""

import re

from .model import Finding, match_lines
from .project import find_matching

# Rule ids, in the order --list-rules prints them.
RULE_IDS = (
    'logging-discipline',
    'no-naked-new',
    'determinism-guard',
    'include-guards',
    'stats-reset-pairing',
    'registry-stats',
    'no-null-macro',
    'no-unchecked-io',
    'no-unbounded-retry',
    'no-hotpath-alloc',
    'determinism-source',
    'ordered-iteration',
    'lock-discipline',
    'shard-local',
    'shared-state-guarded',
    'stats-hygiene',
    'bounded-queue',
    'surface-pool-discipline',
)


class Ctx:
    """Finding sink that applies line- and function-level
    suppressions before recording."""

    def __init__(self, project):
        self.project = project
        self.findings = []
        self._fn_spans = {}

    def _function_allows(self, sf, line):
        spans = self._fn_spans.get(sf.rel)
        if spans is None:
            spans = [(f.line, sf.line_of(f.body_end), f.allowed_rules)
                     for f in self.project.functions if f.sf is sf]
            self._fn_spans[sf.rel] = spans
        allowed = set()
        for start, end, rules in spans:
            if start <= line <= end:
                allowed |= rules
        return allowed

    def emit(self, sf, line, rule, message):
        if sf.allowed(line, rule):
            return
        if rule in self._function_allows(sf, line):
            return
        self.findings.append(Finding(sf.rel, line, rule, message))


# ===================================================================
# Ported per-TU rules (from tools/vstream_lint.py)
# ===================================================================

RAW_ASSERT_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?<!vs_)(?<!static_)assert\s*\(')
RAW_ABORT_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?:std\s*::\s*)?(abort|exit|_Exit)\s*\(')
CASSERT_RE = re.compile(r'#\s*include\s*<(cassert|assert\.h)>')


def check_logging_discipline(ctx, sf):
    if sf.rel.startswith('src/sim/logging.'):
        return
    for line, m in match_lines(sf.code, RAW_ASSERT_RE):
        ctx.emit(sf, line, 'logging-discipline',
                 'raw assert(); use vs_assert from sim/logging.hh')
    for line, m in match_lines(sf.code, RAW_ABORT_RE):
        ctx.emit(sf, line, 'logging-discipline',
                 '%s(); use vs_panic/vs_fatal from sim/logging.hh'
                 % m.group(1))
    for line, m in match_lines(sf.code, CASSERT_RE):
        ctx.emit(sf, line, 'logging-discipline',
                 'includes <%s>; use sim/logging.hh instead'
                 % m.group(1))


NAKED_NEW_RE = re.compile(r'(?<![A-Za-z0-9_])new\s+[A-Za-z_:<(]')
NAKED_DELETE_RE = re.compile(r'(?<![A-Za-z0-9_])delete(\s*\[\s*\])?\s')


def check_naked_new(ctx, sf):
    if sf.rel.startswith('src/sim/'):
        return
    for line, m in match_lines(sf.code, NAKED_NEW_RE):
        ctx.emit(sf, line, 'no-naked-new',
                 'naked new outside src/sim; use std::make_unique '
                 'or a container')
    for line, m in match_lines(sf.code, NAKED_DELETE_RE):
        # "= delete" (deleted special members) is not a deallocation.
        start = sf.code.rfind('\n', 0, m.start()) + 1
        if sf.code[start:m.start()].rstrip().endswith('='):
            continue
        ctx.emit(sf, line, 'no-naked-new',
                 'naked delete outside src/sim; prefer RAII '
                 'ownership')


NONDET_RE = re.compile(
    r'(?<![A-Za-z0-9_])(s?rand)\s*\(|'
    r'std\s*::\s*(random_device|mt19937(?:_64)?|minstd_rand0?|'
    r'default_random_engine)|'
    r'#\s*include\s*<random>')


def check_determinism(ctx, sf):
    if sf.rel in ('src/sim/random.cc', 'src/sim/random.hh'):
        return
    for line, m in match_lines(sf.code, NONDET_RE):
        what = m.group(1) or m.group(2) or '<random>'
        ctx.emit(sf, line, 'determinism-guard',
                 '%s breaks seed-reproducibility; draw from '
                 'vstream::Random (sim/random.hh)' % what)


GUARD_RE = re.compile(
    r'#\s*ifndef\s+([A-Za-z0-9_]+)\s*\n\s*#\s*define\s+([A-Za-z0-9_]+)')


def expected_guard(rel):
    # src/mem/dram_bank.hh -> VSTREAM_MEM_DRAM_BANK_HH
    parts = rel.split('/')
    if parts[0] == 'src':
        parts = parts[1:]
    stem = '_'.join(parts)
    return 'VSTREAM_' + re.sub(r'[^A-Za-z0-9]', '_', stem).upper()


def check_include_guard(ctx, sf):
    if not sf.rel.endswith(('.hh', '.h')):
        return
    m = GUARD_RE.search(sf.code)
    want = expected_guard(sf.rel)
    if not m:
        ctx.emit(sf, 1, 'include-guards',
                 'missing #ifndef/#define include guard (expected '
                 '%s)' % want)
        return
    line = sf.line_of(m.start())
    if m.group(1) != m.group(2):
        ctx.emit(sf, line, 'include-guards',
                 '#ifndef %s does not match #define %s'
                 % (m.group(1), m.group(2)))
    if m.group(1) != want:
        ctx.emit(sf, line, 'include-guards',
                 'guard %s should be %s (derived from path)'
                 % (m.group(1), want))


SIMOBJECT_CLASS_RE = re.compile(
    r'class\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:final\s*)?'
    r':\s*public\s+SimObject\b')


def class_body(code, open_pos):
    """Text of a class/function body given a position before its
    opening brace; '' when the brace structure is surprising."""
    brace = code.find('{', open_pos)
    if brace < 0:
        return ''
    end = find_matching(code, brace)
    if end < 0:
        return ''
    return code[brace:end - 1]


def check_stats_pairing(ctx, sf):
    for m in SIMOBJECT_CLASS_RE.finditer(sf.code):
        body = class_body(sf.code, m.end())
        dumps = re.search(r'\b(dumpStats|regStats)\s*\(', body)
        resets = re.search(r'\bresetStats\s*\(', body)
        if dumps and not resets:
            ctx.emit(sf, sf.line_of(m.start()), 'stats-reset-pairing',
                     'SimObject subclass %s overrides %s but not '
                     'resetStats; stale counters survive a stats '
                     'reset' % (m.group(1), dumps.group(1)))


PRINT_STAT_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?:stats\s*::\s*)?printStat\s*\(')


def check_registry_stats(ctx, sf):
    if sf.rel.startswith('src/sim/'):
        return
    for line, m in match_lines(sf.code, PRINT_STAT_RE):
        ctx.emit(sf, line, 'registry-stats',
                 'direct printStat bypasses the StatsRegistry; '
                 'register the stat in regStats so the JSON/CSV '
                 'exporters see it')


NULL_RE = re.compile(r'(?<![A-Za-z0-9_])NULL(?![A-Za-z0-9_])')


def check_null_macro(ctx, sf):
    for line, m in match_lines(sf.code, NULL_RE):
        ctx.emit(sf, line, 'no-null-macro', 'NULL macro; use nullptr')


# Statement position only: the call must open a statement (start of
# line or right after ';'/'{'/'}'), so member calls (.read, ->read)
# and uses of the return value (if (fread(...)), n = fread(...)) do
# not match -- those check or consume the result.
UNCHECKED_IO_RE = re.compile(
    r'(?:^|[;{}])[ \t]*((?:std\s*::\s*)?fread|read)\s*\(',
    re.MULTILINE)


def check_unchecked_io(ctx, sf):
    if sf.rel.startswith('src/sim/'):
        return
    for line, m in match_lines(sf.code, UNCHECKED_IO_RE):
        ctx.emit(sf, line, 'no-unchecked-io',
                 '%s() return value ignored; a short read must be '
                 'detected and handled (see src/video/trace.cc)'
                 % m.group(1))


INF_LOOP_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?:while\s*\(\s*(?:true|1)\s*\)|'
    r'for\s*\(\s*;\s*;\s*\))')
RETRY_TOKEN_RE = re.compile(r'retry|reissue|resend|backoff',
                            re.IGNORECASE)
RETRY_BOUND_RE = re.compile(r'limit|max|cap|budget|attempt',
                            re.IGNORECASE)


def check_unbounded_retry(ctx, sf):
    for m in INF_LOOP_RE.finditer(sf.code):
        body = class_body(sf.code, m.end())
        if not body:
            continue
        if RETRY_TOKEN_RE.search(body) and \
                not RETRY_BOUND_RE.search(body):
            ctx.emit(sf, sf.line_of(m.start()), 'no-unbounded-retry',
                     'infinite loop retries without a bound; cap '
                     'the attempts against a limit/budget and '
                     'abandon (see DramController::burstWithRetry)')


# ===================================================================
# Hot-path allocation (direct body + call-graph propagation)
# ===================================================================

HOT_MARK_RE = re.compile(r'//\s*vstream:hot')
# std::string by value (declaration, temporary, return type) is a
# construction; const std::string & / * / template args are not.
HOT_STRING_RE = re.compile(
    r'(?<![A-Za-z0-9_])std\s*::\s*string\b(?!\s*[&*>])')
MAKE_UNIQUE_RE = re.compile(
    r'std\s*::\s*make_(?:unique|shared)\s*[<(]')
# Growth operations on containers allocate; checked in hot bodies
# and their statically-resolvable callees.
CONTAINER_GROWTH_RE = re.compile(
    r'[.\w>]\s*\b(push_back|emplace_back|resize|assign|reserve)'
    r'\s*\(')

_HOT_DETECTORS = (
    (NAKED_NEW_RE, 'heap allocation (new)'),
    (HOT_STRING_RE, 'std::string construction'),
    (MAKE_UNIQUE_RE, 'std::make_unique/make_shared'),
    (CONTAINER_GROWTH_RE, 'container growth (%s)'),
)


def _hot_alloc_sites(code, start, end):
    """(offset, description) for each allocation in
    code[start:end]."""
    body = code[start:end]
    for regex, what in _HOT_DETECTORS:
        for m in regex.finditer(body):
            desc = what % m.group(1) if '%s' in what else what
            yield start + m.start(), desc


def check_hotpath_alloc(ctx, sf):
    """Direct-body check: works even for functions the definition
    scanner cannot model (operator[] and friends)."""
    for tok in sf.comments():
        if not HOT_MARK_RE.search(tok.text):
            continue
        # The stripper is length-preserving, so find the marker's
        # offset in the raw text and use it in the stripped view.
        mark_off = sf.raw.find(tok.text)
        if mark_off < 0:
            continue
        brace = sf.code.find('{', mark_off + len(tok.text))
        if brace < 0:
            continue
        end = find_matching(sf.code, brace)
        if end < 0:
            continue
        for off, what in _hot_alloc_sites(sf.code, brace, end):
            ctx.emit(sf, sf.line_of(off), 'no-hotpath-alloc',
                     '%s inside a // vstream:hot function; hot '
                     'kernels must be allocation-free' % what)


# ===================================================================
# surface-pool-discipline: hot paths take buffers from the pool
# ===================================================================

# Raw C allocators evade the C++-centric no-hotpath-alloc detectors
# entirely; in this codebase every hot-path buffer comes from a
# recycled SurfacePool or a member scratch, so a malloc-family call
# in a hot body is always a pool bypass.
MALLOC_FAMILY_RE = re.compile(
    r'(?<![\w.>:])(malloc|calloc|realloc|aligned_alloc|strdup)\s*\(')
# A hot body declaring an owning local container allocates on every
# call.  References and pointers do not own (the `&`/`*` between the
# template arguments and the name breaks the match), so binding a
# pool slot or member scratch by reference stays clean.
LOCAL_CONTAINER_RE = re.compile(
    r'(?<![:\w])std\s*::\s*'
    r'(vector|deque|string|list|map|set|unordered_map|unordered_set)'
    r'\b\s*(?:<[^;{}&]*>)?\s+[A-Za-z_]\w*\s*[;({=]')


def check_surface_pool(ctx, sf):
    """Zero-alloc serving discipline: a // vstream:hot body must not
    source buffers outside the SurfacePool/member-scratch pattern."""
    for tok in sf.comments():
        if not HOT_MARK_RE.search(tok.text):
            continue
        mark_off = sf.raw.find(tok.text)
        if mark_off < 0:
            continue
        brace = sf.code.find('{', mark_off + len(tok.text))
        if brace < 0:
            continue
        end = find_matching(sf.code, brace)
        if end < 0:
            continue
        body = sf.code[brace:end]
        for m in MALLOC_FAMILY_RE.finditer(body):
            ctx.emit(sf, sf.line_of(brace + m.start()),
                     'surface-pool-discipline',
                     '%s() inside a // vstream:hot function bypasses '
                     'the SurfacePool tier; acquire a recycled '
                     'surface or use a member scratch' % m.group(1))
        for m in LOCAL_CONTAINER_RE.finditer(body):
            ctx.emit(sf, sf.line_of(brace + m.start()),
                     'surface-pool-discipline',
                     'owning local std::%s in a // vstream:hot '
                     'function allocates on every call; bind a '
                     'SurfacePool slot or a member scratch by '
                     'reference instead' % m.group(1))


def check_hotpath_propagation(ctx):
    """Call-graph pass: a hot function's statically-resolvable
    callees must be allocation-free too (closes the one-level blind
    spot of the body-only check)."""
    project = ctx.project
    for root in project.hot_functions():
        seen = {id(root)}
        stack = [(root, [root.qualified])]
        while stack:
            fn, chain = stack.pop()
            for callee in project.callees(fn):
                if id(callee) in seen:
                    continue
                seen.add(id(callee))
                sub_chain = chain + [callee.qualified]
                if 'no-hotpath-alloc' in callee.allowed_rules:
                    continue
                for off, what in _hot_alloc_sites(
                        callee.sf.code, callee.body_start,
                        callee.body_end):
                    ctx.emit(callee.sf, callee.sf.line_of(off),
                             'no-hotpath-alloc',
                             '%s in %s, reachable from '
                             '// vstream:hot %s (call chain: %s)'
                             % (what, callee.qualified,
                                root.qualified,
                                ' -> '.join(sub_chain)))
                if len(sub_chain) < 6:
                    stack.append((callee, sub_chain))


# ===================================================================
# determinism-source: clocks, time, environment, address-as-hash
# ===================================================================

CHRONO_CLOCK_RE = re.compile(
    r'std\s*::\s*chrono\s*::\s*'
    r'(steady_clock|system_clock|high_resolution_clock)')
TIME_FUNC_RE = re.compile(
    r'(?<![A-Za-z0-9_.:>])'
    r'(time|clock|gettimeofday|clock_gettime|localtime|gmtime|'
    r'mktime)\s*\(')
GETENV_RE = re.compile(
    r'(?<![A-Za-z0-9_.:>])(?:std\s*::\s*)?(getenv)\s*\(')
ADDR_HASH_RE = re.compile(r'std\s*::\s*hash\s*<[^>]*\*')


def check_determinism_source(ctx, sf):
    if not sf.rel.startswith('src/'):
        return
    if sf.rel in ('src/sim/random.cc', 'src/sim/random.hh'):
        return
    for line, m in match_lines(sf.code, CHRONO_CLOCK_RE):
        ctx.emit(sf, line, 'determinism-source',
                 'std::chrono::%s is a wall-clock read; simulation '
                 'code must use sim ticks (sim/ticks.hh)'
                 % m.group(1))
    for line, m in match_lines(sf.code, TIME_FUNC_RE):
        ctx.emit(sf, line, 'determinism-source',
                 '%s() reads the wall clock; simulation code must '
                 'use sim ticks (sim/ticks.hh)' % m.group(1))
    for line, m in match_lines(sf.code, GETENV_RE):
        ctx.emit(sf, line, 'determinism-source',
                 'getenv() makes behavior depend on ambient '
                 'environment; plumb configuration explicitly or '
                 'suppress with a reason if the output is proven '
                 'invariant')
    for line, m in match_lines(sf.code, ADDR_HASH_RE):
        ctx.emit(sf, line, 'determinism-source',
                 'hashing a pointer value bakes addresses (ASLR, '
                 'allocator order) into results; hash stable ids '
                 'instead')


# ===================================================================
# ordered-iteration: unordered containers on output paths
# ===================================================================

OUTPUT_HEADERS = frozenset((
    'src/sim/stats_registry.hh',
    'src/sim/json_writer.hh',
    'src/sim/trace_event.hh',
))

UNORDERED_DECL_RE = re.compile(
    r'std\s*::\s*unordered_(map|set|multimap|multiset)\s*<')
REGSTATS_RE = re.compile(r'\bregStats\s*\(')
INTEGRAL_KEY_RE = re.compile(
    r'^(?:const\s+)?(?:std\s*::\s*)?'
    r'(?:u?int(?:8|16|32|64|ptr)?_t|size_t|unsigned|signed|short|'
    r'long|int|char|bool|Tick|Addr)\b[^*]*$')


def _is_output_tu(project, sf):
    return REGSTATS_RE.search(sf.code) is not None or \
        project.reaches_any(sf.rel, OUTPUT_HEADERS)


def _first_template_arg(code, open_angle):
    """First top-level template argument text after '<'."""
    depth = 0
    i = open_angle
    start = open_angle + 1
    while i < len(code):
        c = code[i]
        if c == '<':
            depth += 1
        elif c == '>':
            depth -= 1
            if depth == 0:
                return code[start:i].strip(), i
        elif c == ',' and depth == 1:
            return code[start:i].strip(), _close_angle(code, i, depth)
        i += 1
    return '', -1


def _close_angle(code, pos, depth):
    i = pos
    while i < len(code):
        c = code[i]
        if c == '<':
            depth += 1
        elif c == '>':
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def check_ordered_iteration(ctx, sf):
    project = ctx.project
    if not _is_output_tu(project, sf):
        return
    for m in UNORDERED_DECL_RE.finditer(sf.code):
        kind = m.group(1)
        key, close = _first_template_arg(sf.code, m.end() - 1)
        line = sf.line_of(m.start())
        # Declarator name (skip function return types and
        # parameters; a following '(' means this is not a field or
        # local we can track).
        name = None
        if close > 0:
            dm = re.match(r'\s*&?\s*([A-Za-z_]\w*)\s*[;={]',
                          sf.code[close + 1:close + 120])
            if dm:
                name = dm.group(1)
        if sf.rel.startswith('src/') and key and \
                INTEGRAL_KEY_RE.match(key):
            ctx.emit(sf, line, 'ordered-iteration',
                     'std::unordered_%s keyed by %s in an '
                     'output-path TU; use FlatMap/FlatSet '
                     '(core/flat_table.hh) or a sorted snapshot'
                     % (kind, key))
        if not name:
            continue
        # Iteration over the container anywhere in this TU.
        iter_res = (
            re.compile(r'for\s*\([^;()]*?:\s*%s\s*\)'
                       % re.escape(name)),
            re.compile(r'\b%s\s*\.\s*(?:begin|cbegin)\s*\('
                       % re.escape(name)),
        )
        for it_re in iter_res:
            for it_line, _ in match_lines(sf.code, it_re):
                ctx.emit(sf, it_line, 'ordered-iteration',
                         'iteration over std::unordered_%s %r feeds '
                         'an output path; iteration order is '
                         'hash-dependent, so sort a snapshot or use '
                         'FlatMap/FlatSet' % (kind, name))


# ===================================================================
# lock-discipline / shard-local: annotated fields in parallel lambdas
# ===================================================================

PARALLEL_CALL_RE = re.compile(r'\bparallel(?:For|Map)\s*\(')
LAMBDA_RE = re.compile(r'\[[^\]\n]*\]\s*(?:\([^)]*\)\s*)?'
                       r'(?:mutable\s*)?(?:->\s*[\w:<>&*\s]+?)?\{')


def _parallel_lambda_bodies(code):
    """(body_start, body_end) for each lambda that is an argument of
    a parallelFor/parallelMap call."""
    for m in PARALLEL_CALL_RE.finditer(code):
        close = find_matching(code, m.end() - 1, '(', ')')
        if close < 0:
            continue
        span = code[m.end():close]
        for lm in LAMBDA_RE.finditer(span):
            open_brace = m.end() + lm.end() - 1
            end = find_matching(code, open_brace)
            if end > 0:
                yield open_brace, end


def _has_lock_of(body, guard):
    return re.search(
        r'\b(?:lock_guard|scoped_lock|unique_lock)\b'
        r'(?:\s*<[^;>]*>)?\s*\w*\s*[({][^;)}]*\b%s\b'
        % re.escape(guard), body) is not None


def check_lock_discipline(ctx, sf):
    project = ctx.project
    if not project.annotations:
        return
    for start, end in _parallel_lambda_bodies(sf.code):
        body = sf.code[start:end]
        for field, anns in project.annotations.items():
            for fm in re.finditer(r'\b%s\b' % re.escape(field),
                                  body):
                line = sf.line_of(start + fm.start())
                for ann in anns:
                    if ann.kind == 'shard_local':
                        ctx.emit(
                            sf, line, 'shard-local',
                            'field %s is vstream:shard_local '
                            '(declared %s:%d); workers of '
                            'parallelFor/parallelMap must not touch '
                            'it' % (field, ann.sf.rel, ann.line))
                    elif ann.kind == 'guarded_by' and \
                            not _has_lock_of(body, ann.guard):
                        ctx.emit(
                            sf, line, 'lock-discipline',
                            '%s is vstream:guarded_by(%s) (declared '
                            '%s:%d) but this parallel worker lambda '
                            'takes no std::lock_guard/scoped_lock/'
                            'unique_lock on %s'
                            % (field, ann.guard, ann.sf.rel,
                               ann.line, ann.guard))
                break  # one finding per field per lambda


# ===================================================================
# stats-hygiene: cross-TU regStats / resetStats pairing
# ===================================================================

ADD_CALL_RE = re.compile(r'\.\s*add\w*\s*\(')
MEMBER_ID_RE = re.compile(r'\b([a-z]\w*_)\b\s*([^\w\s]|$)')

# Classes whose regStats registers only derived/externally-owned
# values have no counters of their own to reset.
_RESET_TOKEN_RE_CACHE = {}


def _first_arg_end(span):
    """Offset in @p span (which starts at the call's open paren) just
    past the first top-level comma, or len(span) when the call has a
    single argument."""
    depth = 0
    for i, ch in enumerate(span):
        if ch in '([{':
            depth += 1
        elif ch in ')]}':
            depth -= 1
        elif ch == ',' and depth == 1:
            return i + 1
    return len(span)


def _members_registered(code, body_start, body_end):
    """Member identifiers (trailing underscore) that appear in
    r.add*/addCallback argument lists within the body, with the line
    of their add call.  Identifiers that are traversed (m_->x, m_.x)
    or called (m_()) are handles, not counters, and are skipped — as
    is the entire first argument, which is the stat *name*: a member
    there (name_ + ".hits") titles the stat, it is not a registered
    value."""
    out = {}
    body = code[body_start:body_end]
    for m in ADD_CALL_RE.finditer(body):
        open_paren = body_start + m.end() - 1
        close = find_matching(code, open_paren, '(', ')')
        if close < 0:
            continue
        span = code[open_paren:close]
        value_args = _first_arg_end(span)
        for im in MEMBER_ID_RE.finditer(span, value_args):
            follow = im.group(2)
            if follow in ('.', '(',):
                continue
            if span[im.end(1):im.end(1) + 2] == '->':
                continue
            name = im.group(1)
            out.setdefault(name, open_paren)
    return out


def check_stats_hygiene(ctx):
    project = ctx.project
    reg_defs = [f for f in project.functions
                if f.name == 'regStats' and f.cls]
    for fn in reg_defs:
        members = _members_registered(fn.sf.code, fn.body_start,
                                      fn.body_end)
        if not members and \
                not ADD_CALL_RE.search(fn.body()):
            continue
        resets = project.by_qualified.get(
            '%s::resetStats' % fn.cls, [])
        if not resets:
            ctx.emit(fn.sf, fn.line, 'stats-hygiene',
                     '%s::regStats registers stats but no '
                     '%s::resetStats is defined anywhere in the '
                     'project; stale counters survive a stats reset'
                     % (fn.cls, fn.cls))
            continue
        reset_body = '\n'.join(r.body() for r in resets)
        for name, off in sorted(members.items()):
            if re.search(r'\b%s\b' % re.escape(name), reset_body):
                continue
            ctx.emit(fn.sf, fn.sf.line_of(off), 'stats-hygiene',
                     'member %s is registered in %s::regStats but '
                     'never touched in %s::resetStats; it will '
                     'report stale values after a reset'
                     % (name, fn.cls, fn.cls))


# ===================================================================
# bounded-queue: waitlists need a deadline or eviction path
# ===================================================================

# A queue-like field whose name says it holds waiting work.  An
# unbounded admission queue hides a livelock: entries that never fit
# wait forever (the fleet brownout/flood scenarios make this real).
QUEUE_FIELD_RE = re.compile(
    r'std\s*::\s*(deque|queue|priority_queue|list)\s*<[^;{}()]*>\s*'
    r'([A-Za-z_]\w*(?:waiting|waitlist|pending|backlog)\w*)\s*[;{=]',
    re.IGNORECASE)
# Evidence of a bound somewhere in the declaring TU: a deadline,
# timeout, expiry, eviction, shedding, or TTL identifier.
QUEUE_BOUND_RE = re.compile(
    r'deadline|timeout|expir|evict|shed|ttl', re.IGNORECASE)


def check_bounded_queue(ctx, sf):
    for line, m in match_lines(sf.code, QUEUE_FIELD_RE):
        if QUEUE_BOUND_RE.search(sf.code):
            # The TU knows about deadlines/eviction; trust it.
            continue
        ctx.emit(sf, line, 'bounded-queue',
                 'std::%s field %s looks like a wait queue but this '
                 'TU has no deadline/timeout/eviction/shed path; '
                 'bound it (see ServeConfig::queue_deadline) or '
                 'suppress with a reason'
                 % (m.group(1), m.group(2)))


# ===================================================================
# shared-state-guarded: cross-session state must declare its guard
# ===================================================================

# A member declaration by the repo's trailing-underscore convention:
# type tokens, a separator, then the field name with an optional
# default initializer.  The mandatory [\s&*] separator before the
# name keeps plain assignments (`field_ = 0;`) from matching.
GUARDED_FIELD_DECL_RE = re.compile(
    r'^[ \t]*(?!return\b|delete\b|using\b|typedef\b|case\b)'
    r'[A-Za-z_][\w:<>,&*\t ]*?[\w>&*][\s&*]+([A-Za-z_]\w*_)\s*'
    r'(?:=[^;=]*|\{[^;]*\})?;',
    re.MULTILINE)
# Outside the shared tier's own TUs, only names that advertise
# cross-session scope are held to the annotation requirement.
SHARED_NAME_RE = re.compile(r'^(?:shared_|global_)\w*$')
SHARED_TIER_TU_RE = re.compile(r'^src/serve/shared_mach\.(?:hh|cc)$')


def _annotated_in_file(project, field, rel):
    for ann in project.annotations.get(field, ()):
        if ann.sf.rel == rel:
            return True
    return False


def check_shared_state_guarded(ctx, sf):
    """The shared MACH tier is the first cross-session state in the
    tree, so every field it declares - and any field elsewhere whose
    name claims shared/global scope - must say how it is safe:
    vstream:guarded_by(mutex) for locked state, vstream:shard_local
    for state confined to one serial domain."""
    tier_tu = SHARED_TIER_TU_RE.match(sf.rel) is not None
    for line, m in match_lines(sf.code, GUARDED_FIELD_DECL_RE):
        field = m.group(1)
        if not tier_tu and not SHARED_NAME_RE.match(field):
            continue
        if _annotated_in_file(ctx.project, field, sf.rel):
            continue
        ctx.emit(sf, line, 'shared-state-guarded',
                 'field %s %s but carries neither '
                 'vstream:guarded_by(mutex) nor vstream:shard_local; '
                 'annotate how it is safe or suppress with a reason'
                 % (field,
                    'is declared in the shared MACH tier' if tier_tu
                    else 'names cross-session shared state'))


# ===================================================================
# Rule sets per directory
# ===================================================================

SRC_CHECKS = [
    check_logging_discipline,
    check_naked_new,
    check_determinism,
    check_include_guard,
    check_stats_pairing,
    check_registry_stats,
    check_null_macro,
    check_unchecked_io,
    check_unbounded_retry,
    check_hotpath_alloc,
    check_surface_pool,
    check_determinism_source,
    check_ordered_iteration,
    check_lock_discipline,
    check_shared_state_guarded,
    check_bounded_queue,
]

# Tests/benches/examples may use gtest ASSERT_* and ad-hoc printing,
# but determinism and guard naming still apply repo-wide.
AUX_CHECKS = [
    check_determinism,
    check_include_guard,
    check_null_macro,
]

# Benches and examples report numbers users consume, so they must go
# through the registry like src/ does; tests stay exempt because the
# stats package's own unit tests exercise printStat directly.
BENCH_CHECKS = AUX_CHECKS + [
    check_registry_stats,
    check_unchecked_io,
    check_unbounded_retry,
    check_hotpath_alloc,
    check_surface_pool,
    check_ordered_iteration,
    check_lock_discipline,
    check_bounded_queue,
]

SCAN_DIRS = {
    'src': SRC_CHECKS,
    'tests': AUX_CHECKS,
    'bench': BENCH_CHECKS,
    'examples': BENCH_CHECKS,
}

# Project-wide passes (run once, after the per-file rules).
PROJECT_CHECKS = [
    check_hotpath_propagation,
    check_stats_hygiene,
]


def run_all(project, only_rels=None):
    """Run every applicable rule; returns the list of findings."""
    ctx = Ctx(project)
    for rel in sorted(project.files):
        if only_rels is not None and rel not in only_rels:
            continue
        top = rel.split('/')[0]
        checks = SCAN_DIRS.get(top, AUX_CHECKS)
        sf = project.files[rel]
        for check in checks:
            check(ctx, sf)
    for check in PROJECT_CHECKS:
        check(ctx)
    if only_rels is not None:
        ctx.findings = [f for f in ctx.findings
                        if f.path in only_rels]
    ctx.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return ctx.findings
