"""Command-line driver.

    python3 tools/vstream_analyze --root . [files...]
    python3 tools/vstream_analyze --self-test
    python3 tools/vstream_analyze --list-rules

Exit status 0 when clean, 1 with findings, 2 on usage errors.
"""

import argparse
import os
import sys

from . import rules
from .project import Project, EXTENSIONS


def main(argv):
    parser = argparse.ArgumentParser(
        prog='vstream_analyze',
        description='cross-TU determinism & concurrency analyzer '
                    '(see docs/ANALYSIS.md)')
    parser.add_argument('--root', default='.',
                        help='repository root (default: cwd)')
    parser.add_argument('--list-rules', action='store_true',
                        help='print rule names and exit')
    parser.add_argument('--self-test', action='store_true',
                        help='check every rule against synthetic '
                             'violations and exit')
    parser.add_argument('files', nargs='*',
                        help='specific files (repo-relative) to '
                             'report on; the cross-TU passes still '
                             'see the whole project.  Default: all '
                             'of src/tests/bench/examples')
    args = parser.parse_args(argv)

    if args.self_test:
        from . import selftest
        return selftest.run()

    if args.list_rules:
        for rule in rules.RULE_IDS:
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    project = Project.load(root)

    only = None
    if args.files:
        only = set()
        for rel in args.files:
            rel = os.path.relpath(os.path.join(root, rel), root)
            rel = rel.replace(os.sep, '/')
            if rel.endswith(EXTENSIONS):
                only.add(rel)

    findings = rules.run_all(project, only_rels=only)
    scanned = len(only) if only is not None else len(project.files)

    for finding in findings:
        print(finding)
    if findings:
        print('vstream_analyze: %d finding(s) in %d file(s) scanned'
              % (len(findings), scanned), file=sys.stderr)
        return 1
    print('vstream_analyze: OK (%d files scanned)' % scanned)
    return 0
