"""Entry point: `python3 tools/vstream_analyze ...` works directly
(Python runs a directory by executing its __main__.py)."""

import os
import sys

if __package__ in (None, ''):
    # Invoked as `python3 tools/vstream_analyze`: the package dir
    # itself is sys.path[0]; import the package from its parent.
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from vstream_analyze.cli import main
else:
    from .cli import main

sys.exit(main(sys.argv[1:]))
