#!/usr/bin/env python3
"""Link-and-anchor checker for the repo's markdown documentation.

Enforced rules (registered as the `vstream_docs` ctest and run by
`scripts/check.sh docs`):

 1. Every file under docs/ is referenced from README.md - the README
    is the table of contents, so an unlinked doc is unreachable.
 2. Every relative markdown link in the checked set resolves to an
    existing file or directory in the repo.
 3. Every anchor (`file.md#section` or `#section`) resolves to a
    heading in the target file, using GitHub's slug rules.

Checked set: README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and
every docs/*.md.  External links (http/https/mailto) are ignored;
this tool never touches the network.

Usage: tools/check_docs.py [--root DIR]   (exit 0 = clean)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Inline markdown links: [text](target).  Good enough for this
# repo's hand-written docs; reference-style links are not used.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")

# Root-level docs that participate in link checking.  CHANGES.md is
# an append-only log and ISSUE/PAPER/SNIPPETS are driver-managed
# inputs, so they stay out of the gate.
ROOT_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md",
             "ROADMAP.md")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup-ish punctuation, lowercase,
    spaces to hyphens (consecutive hyphens are preserved)."""
    text = heading.strip().lower()
    # Inline code spans keep their text, drop the backticks.
    text = text.replace("`", "")
    out = []
    for ch in text:
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch in " ":
            out.append("-")
        # Everything else (punctuation) is dropped.
    return "".join(out)


def md_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = [root / name for name in ROOT_DOCS]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def headings(path: pathlib.Path) -> set[str]:
    """Anchor slugs of every heading in @p path (with GitHub's
    -1/-2 suffixing for duplicates)."""
    seen: dict[str, int] = {}
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def links(path: pathlib.Path) -> list[tuple[int, str]]:
    out = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            out.append((lineno, m.group(1)))
    return out


def check(root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    files = md_files(root)
    heading_cache: dict[pathlib.Path, set[str]] = {}

    def anchors_of(path: pathlib.Path) -> set[str]:
        if path not in heading_cache:
            heading_cache[path] = headings(path)
        return heading_cache[path]

    referenced_docs: set[pathlib.Path] = set()

    for f in files:
        rel = f.relative_to(root)
        for lineno, target in links(f):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                frag = target[1:]
                if frag not in anchors_of(f):
                    errors.append(f"{rel}:{lineno}: dead anchor "
                                  f"'#{frag}'")
                continue
            path_part, _, frag = target.partition("#")
            dest = (f.parent / path_part).resolve()
            try:
                dest_rel = dest.relative_to(root.resolve())
            except ValueError:
                errors.append(f"{rel}:{lineno}: link escapes the "
                              f"repo: '{target}'")
                continue
            if not dest.exists():
                errors.append(f"{rel}:{lineno}: dead link "
                              f"'{target}'")
                continue
            if f.name == "README.md" and \
                    str(dest_rel).startswith("docs/"):
                referenced_docs.add(dest_rel)
            if frag:
                if not dest.is_file() or dest.suffix != ".md":
                    errors.append(f"{rel}:{lineno}: anchor on "
                                  f"non-markdown target '{target}'")
                elif frag not in anchors_of(dest):
                    errors.append(f"{rel}:{lineno}: dead anchor "
                                  f"'{target}'")

    # Rule 1: README reaches every doc.
    for doc in sorted((root / "docs").glob("*.md")):
        rel = doc.relative_to(root)
        if rel not in referenced_docs:
            errors.append(f"README.md: docs file '{rel}' is never "
                          f"referenced")
    return errors


def self_test() -> int:
    assert github_slug("Hello World") == "hello-world"
    assert github_slug("The `--shards` flag") == "the---shards-flag"
    assert github_slug("A / B (C)") == "a--b-c"
    assert github_slug("vstream-soak-1") == "vstream-soak-1"
    print("check_docs self-test OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    errors = check(root)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"check_docs: {len(md_files(root))} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
