#!/usr/bin/env python3
"""Compatibility shim: the linter grew into tools/vstream_analyze/.

Everything vstream_lint did (and five new project-wide rules:
determinism-source, ordered-iteration, lock-discipline, shard-local,
stats-hygiene, plus call-graph-aware hot-path checking) now lives in
the vstream_analyze package.  This shim keeps the old entry point
working for scripts and muscle memory:

    python3 tools/vstream_lint.py --root .
    python3 tools/vstream_lint.py --self-test

See docs/ANALYSIS.md for the rule catalogue.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from vstream_analyze.cli import main  # noqa: E402

if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
