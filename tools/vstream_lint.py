#!/usr/bin/env python3
"""vstream-specific invariant linter.

Enforces repo invariants that generic tools (clang-tidy, compiler
warnings) cannot express because they are conventions of *this*
simulator, not of C++:

  logging-discipline   src/ must report errors through vs_assert /
                       vs_panic / vs_fatal (src/sim/logging.hh), never
                       raw assert()/abort()/exit(): the vs_* forms
                       carry file:line context and a formatted message
                       into the simulation log, and death tests match
                       on that output.

  no-naked-new         outside src/sim (which owns low-level event /
                       object lifetime), heap objects are held by
                       std::unique_ptr or containers; a naked new or
                       delete is either a leak risk or a double-free
                       risk that ASan can only catch dynamically.

  determinism-guard    every stochastic element must draw from the
                       explicitly seeded vstream::Random
                       (src/sim/random.cc).  rand(), srand(),
                       std::random_device, or <random> engines anywhere
                       else silently break exact-reproducibility of a
                       simulation from its seed -- the property every
                       BENCH figure depends on.

  include-guards       headers use #ifndef VSTREAM_<PATH>_<FILE>_HH
                       guards derived from their path, so a moved or
                       copied header cannot silently shadow another.

  stats-reset-pairing  a SimObject subclass overriding regStats() (or
                       the legacy dumpStats()) must also override
                       resetStats(): warm-up windows reset all stats,
                       and a class that dumps counters it never resets
                       reports stale numbers after a reset (exactly
                       the drift Herglotz & Kaup warn about for energy
                       models).

  registry-stats       outside src/sim, statistics reach the output
                       through a StatsRegistry (regStats + the
                       registry exporters); a direct stats::printStat
                       call emits a line the registry does not know,
                       so it is invisible to the JSON/CSV exporters
                       and to dump-ordering guarantees.

  no-null-macro        nullptr, not NULL (modernize-use-nullptr
                       adjunct for the clang-tidy-less toolchain).

  no-unchecked-io      outside src/sim, a statement-position fread()
                       or read() whose return value is discarded is a
                       silent-truncation bug waiting to happen: the
                       trace loader's graceful-degradation path
                       depends on every short read being noticed and
                       routed into a TraceError, not ignored.

  no-hotpath-alloc     a function marked // vstream:hot (the per-mab
                       kernels: CRC steps, the gradient transform,
                       flat-table probes, frame-buffer block moves)
                       must not allocate: no new and no std::string
                       construction in its body.  One allocation per
                       48 B mab dwarfs the kernel it sits in.  The
                       marker lives in a comment, which the linter
                       strips, so this check re-reads the raw text to
                       find markers (offsets line up because the
                       stripper is length-preserving).

  no-unbounded-retry   an infinite loop (while (true) / for (;;))
                       that retries, re-issues, or backs off must
                       bound its attempts against a limit/cap/budget:
                       under a fault storm an unbounded retry loop
                       livelocks the simulated device instead of
                       degrading (the abandon path in
                       DramController::burstWithRetry is the model).

Exit status 0 when clean, 1 with findings, 2 on usage errors.
"""

import argparse
import os
import re
import sys


# --------------------------------------------------------------- helpers

def strip_comments_and_strings(text):
    """Replace comment and string-literal contents with spaces.

    Line structure is preserved so reported line numbers stay valid.
    """
    out = []
    i = 0
    n = len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ''
        if state is None:
            if c == '/' and nxt == '/':
                state = 'line'
                out.append('  ')
                i += 2
            elif c == '/' and nxt == '*':
                state = 'block'
                out.append('  ')
                i += 2
            elif c == '"':
                state = 'str'
                out.append(c)
                i += 1
            elif c == "'":
                state = 'chr'
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == 'line':
            if c == '\n':
                state = None
                out.append(c)
            else:
                out.append(' ')
            i += 1
        elif state == 'block':
            if c == '*' and nxt == '/':
                state = None
                out.append('  ')
                i += 2
            else:
                out.append(c if c == '\n' else ' ')
                i += 1
        elif state == 'str':
            if c == '\\':
                out.append('  ')
                i += 2
            elif c == '"':
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == '\n' else ' ')
                i += 1
        elif state == 'chr':
            if c == '\\':
                out.append('  ')
                i += 2
            elif c == "'":
                state = None
                out.append(c)
                i += 1
            else:
                out.append(' ')
                i += 1
    return ''.join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return '%s:%d: [%s] %s' % (self.path, self.line, self.rule,
                                   self.message)


def match_lines(code, pattern):
    """Yield (1-based line, match) for every match of @p pattern."""
    for m in re.finditer(pattern, code):
        yield code.count('\n', 0, m.start()) + 1, m


# ---------------------------------------------------------------- checks

RAW_ASSERT_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?<!vs_)(?<!static_)assert\s*\(')
RAW_ABORT_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?:std\s*::\s*)?(abort|exit|_Exit)\s*\(')
CASSERT_RE = re.compile(r'#\s*include\s*<(cassert|assert\.h)>')


def check_logging_discipline(path, rel, code, findings):
    if rel.startswith('src/sim/logging.'):
        return
    for line, m in match_lines(code, RAW_ASSERT_RE):
        findings.append(Finding(
            rel, line, 'logging-discipline',
            'raw assert(); use vs_assert from sim/logging.hh'))
    for line, m in match_lines(code, RAW_ABORT_RE):
        findings.append(Finding(
            rel, line, 'logging-discipline',
            '%s(); use vs_panic/vs_fatal from sim/logging.hh'
            % m.group(1)))
    for line, m in match_lines(code, CASSERT_RE):
        findings.append(Finding(
            rel, line, 'logging-discipline',
            'includes <%s>; use sim/logging.hh instead' % m.group(1)))


NAKED_NEW_RE = re.compile(r'(?<![A-Za-z0-9_])new\s+[A-Za-z_:<(]')
NAKED_DELETE_RE = re.compile(r'(?<![A-Za-z0-9_])delete(\s*\[\s*\])?\s')


def check_naked_new(path, rel, code, findings):
    if rel.startswith('src/sim/'):
        return
    for line, m in match_lines(code, NAKED_NEW_RE):
        findings.append(Finding(
            rel, line, 'no-naked-new',
            'naked new outside src/sim; use std::make_unique or a '
            'container'))
    for line, m in match_lines(code, NAKED_DELETE_RE):
        # "= delete" (deleted special members) is not a deallocation.
        start = code.rfind('\n', 0, m.start()) + 1
        before = code[start:m.start()].rstrip()
        if before.endswith('='):
            continue
        findings.append(Finding(
            rel, line, 'no-naked-new',
            'naked delete outside src/sim; prefer RAII ownership'))


NONDET_RE = re.compile(
    r'(?<![A-Za-z0-9_])(s?rand)\s*\(|'
    r'std\s*::\s*(random_device|mt19937(_64)?|minstd_rand0?|'
    r'default_random_engine)|'
    r'#\s*include\s*<random>')


def check_determinism(path, rel, code, findings):
    if rel in ('src/sim/random.cc', 'src/sim/random.hh'):
        return
    for line, m in match_lines(code, NONDET_RE):
        what = m.group(1) or m.group(2) or '<random>'
        findings.append(Finding(
            rel, line, 'determinism-guard',
            '%s breaks seed-reproducibility; draw from '
            'vstream::Random (sim/random.hh)' % what))


GUARD_RE = re.compile(
    r'#\s*ifndef\s+([A-Za-z0-9_]+)\s*\n\s*#\s*define\s+([A-Za-z0-9_]+)')


def expected_guard(rel):
    # src/mem/dram_bank.hh -> VSTREAM_MEM_DRAM_BANK_HH
    parts = rel.split('/')
    if parts[0] == 'src':
        parts = parts[1:]
    stem = '_'.join(parts)
    return 'VSTREAM_' + re.sub(r'[^A-Za-z0-9]', '_', stem).upper()


def check_include_guard(path, rel, code, findings):
    if not rel.endswith(('.hh', '.h')):
        return
    m = GUARD_RE.search(code)
    want = expected_guard(rel)
    if not m:
        findings.append(Finding(
            rel, 1, 'include-guards',
            'missing #ifndef/#define include guard (expected %s)'
            % want))
        return
    line = code.count('\n', 0, m.start()) + 1
    if m.group(1) != m.group(2):
        findings.append(Finding(
            rel, line, 'include-guards',
            '#ifndef %s does not match #define %s'
            % (m.group(1), m.group(2))))
    if m.group(1) != want:
        findings.append(Finding(
            rel, line, 'include-guards',
            'guard %s should be %s (derived from path)'
            % (m.group(1), want)))


CLASS_RE = re.compile(
    r'class\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:final\s*)?'
    r':\s*public\s+SimObject\b')


def class_body(code, open_pos):
    """Return the text of a class body given the position of its
    header; empty string when the brace structure is surprising."""
    brace = code.find('{', open_pos)
    if brace < 0:
        return ''
    depth = 0
    for i in range(brace, len(code)):
        if code[i] == '{':
            depth += 1
        elif code[i] == '}':
            depth -= 1
            if depth == 0:
                return code[brace:i]
    return ''


def check_stats_pairing(path, rel, code, findings):
    for m in CLASS_RE.finditer(code):
        body = class_body(code, m.end())
        dumps = re.search(r'\b(dumpStats|regStats)\s*\(', body)
        resets = re.search(r'\bresetStats\s*\(', body)
        if dumps and not resets:
            line = code.count('\n', 0, m.start()) + 1
            findings.append(Finding(
                rel, line, 'stats-reset-pairing',
                'SimObject subclass %s overrides %s but not '
                'resetStats; stale counters survive a stats reset'
                % (m.group(1), dumps.group(1))))


PRINT_STAT_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?:stats\s*::\s*)?printStat\s*\(')


def check_registry_stats(path, rel, code, findings):
    if rel.startswith('src/sim/'):
        return
    for line, m in match_lines(code, PRINT_STAT_RE):
        findings.append(Finding(
            rel, line, 'registry-stats',
            'direct printStat bypasses the StatsRegistry; register '
            'the stat in regStats so the JSON/CSV exporters see it'))


NULL_RE = re.compile(r'(?<![A-Za-z0-9_])NULL(?![A-Za-z0-9_])')


def check_null_macro(path, rel, code, findings):
    for line, m in match_lines(code, NULL_RE):
        findings.append(Finding(
            rel, line, 'no-null-macro', 'NULL macro; use nullptr'))


# Statement position only: the call must open a statement (start of
# line or right after ';'/'{'/'}'), so member calls (.read, ->read)
# and uses of the return value (if (fread(...)), n = fread(...)) do
# not match -- those check or consume the result.
UNCHECKED_IO_RE = re.compile(
    r'(?:^|[;{}])[ \t]*((?:std\s*::\s*)?fread|read)\s*\(',
    re.MULTILINE)


def check_unchecked_io(path, rel, code, findings):
    if rel.startswith('src/sim/'):
        return
    for line, m in match_lines(code, UNCHECKED_IO_RE):
        findings.append(Finding(
            rel, line, 'no-unchecked-io',
            '%s() return value ignored; a short read must be '
            'detected and handled (see src/video/trace.cc)'
            % m.group(1)))


HOT_MARK_RE = re.compile(r'//\s*vstream:hot')
# std::string by value (declaration, temporary, return type) is a
# construction; const std::string & / * / template args are not.
HOT_STRING_RE = re.compile(
    r'(?<![A-Za-z0-9_])std\s*::\s*string\b(?!\s*[&*>])')


def check_hotpath_alloc(path, rel, code, findings):
    # The marker is a comment, so find it in the raw text; the
    # stripper is length-preserving, so raw offsets index straight
    # into the stripped code.
    try:
        with open(path, encoding='utf-8', errors='replace') as f:
            raw = f.read()
    except OSError:
        return
    for m in HOT_MARK_RE.finditer(raw):
        brace = code.find('{', m.end())
        if brace < 0:
            continue
        body = class_body(code, m.end())
        if not body:
            continue
        for bm in NAKED_NEW_RE.finditer(body):
            line = code.count('\n', 0, brace + bm.start()) + 1
            findings.append(Finding(
                rel, line, 'no-hotpath-alloc',
                'heap allocation inside a // vstream:hot function; '
                'hot kernels must be allocation-free'))
        for bm in HOT_STRING_RE.finditer(body):
            line = code.count('\n', 0, brace + bm.start()) + 1
            findings.append(Finding(
                rel, line, 'no-hotpath-alloc',
                'std::string constructed inside a // vstream:hot '
                'function; hot kernels must be allocation-free'))


INF_LOOP_RE = re.compile(
    r'(?<![A-Za-z0-9_])(?:while\s*\(\s*(?:true|1)\s*\)|'
    r'for\s*\(\s*;\s*;\s*\))')
RETRY_TOKEN_RE = re.compile(r'retry|reissue|resend|backoff',
                            re.IGNORECASE)
RETRY_BOUND_RE = re.compile(r'limit|max|cap|budget|attempt',
                            re.IGNORECASE)


def check_unbounded_retry(path, rel, code, findings):
    for m in INF_LOOP_RE.finditer(code):
        body = class_body(code, m.end())
        if not body:
            continue
        if RETRY_TOKEN_RE.search(body) and \
                not RETRY_BOUND_RE.search(body):
            line = code.count('\n', 0, m.start()) + 1
            findings.append(Finding(
                rel, line, 'no-unbounded-retry',
                'infinite loop retries without a bound; cap the '
                'attempts against a limit/budget and abandon (see '
                'DramController::burstWithRetry)'))


# ---------------------------------------------------------------- driver

SRC_CHECKS = [
    check_logging_discipline,
    check_naked_new,
    check_determinism,
    check_include_guard,
    check_stats_pairing,
    check_registry_stats,
    check_null_macro,
    check_unchecked_io,
    check_unbounded_retry,
    check_hotpath_alloc,
]

# Tests/benches/examples may use gtest ASSERT_* and ad-hoc printing,
# but determinism and guard naming still apply repo-wide.
AUX_CHECKS = [
    check_determinism,
    check_include_guard,
    check_null_macro,
]

# Benches and examples report numbers users consume, so they must go
# through the registry like src/ does; tests stay exempt because the
# stats package's own unit tests exercise printStat directly.
BENCH_CHECKS = AUX_CHECKS + [check_registry_stats,
                             check_unchecked_io,
                             check_unbounded_retry,
                             check_hotpath_alloc]

SCAN_DIRS = {
    'src': SRC_CHECKS,
    'tests': AUX_CHECKS,
    'bench': BENCH_CHECKS,
    'examples': BENCH_CHECKS,
}

EXTENSIONS = ('.cc', '.hh', '.h', '.cpp')


def lint_file(root, rel, checks):
    path = os.path.join(root, rel)
    with open(path, encoding='utf-8', errors='replace') as f:
        raw = f.read()
    code = strip_comments_and_strings(raw)
    findings = []
    for check in checks:
        check(path, rel, code, findings)
    return findings


BAD_HEADER = '''\
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH
#include <cassert>
#include <random>
class Bad : public SimObject
{
  public:
    void regStats(StatsRegistry &r) override;
  private:
    int *p_ = new int(3);
};
inline void f(int *q) { assert(q != NULL); delete q; std::abort(); }
inline int g() { return rand(); }
inline void h(std::ostream &os) { stats::printStat(os, "x", 1.0); }
inline void i(char *buf, FILE *fp) { fread(buf, 1, 16, fp); }
inline void j() { while (true) { retryBurst(); } }
// vstream:hot
inline int *k()
{
    std::string name("scratch");
    return new int(static_cast<int>(name.size()));
}
#endif
'''

GOOD_HEADER = '''\
#ifndef VSTREAM_CORE_GOOD_HH
#define VSTREAM_CORE_GOOD_HH
// assert() in a comment, "abort()" and NULL in strings are fine:
inline const char *s() { return "do not abort() on NULL"; }
class Good : public SimObject
{
  public:
    void regStats(StatsRegistry &r) override;
    void resetStats() override;
};
inline bool i(char *buf, std::size_t n, FILE *fp)
{
    // Checked and member-call IO never fires no-unchecked-io:
    if (fread(buf, 1, n, fp) != n) { return false; }
    std::stringstream ss;
    ss.read(buf, 4);
    return bool(ss);
}
inline void j(unsigned retry_limit)
{
    // A bounded retry loop never fires no-unbounded-retry:
    unsigned attempts = 0;
    while (true) {
        if (++attempts > retry_limit) { break; }
        retryBurst();
    }
}
// vstream:hot
inline std::uint32_t k(const std::string &key, std::uint32_t seed)
{
    // Reads a std::string by reference and allocates nothing:
    // never fires no-hotpath-alloc.
    std::uint32_t h = seed;
    for (char c : key) {
        h = h * 31u + static_cast<std::uint8_t>(c);
    }
    return h;
}
#endif
'''


def self_test():
    """Lint two synthetic headers and check every rule's behavior."""
    import tempfile
    with tempfile.TemporaryDirectory() as root:
        core = os.path.join(root, 'src', 'core')
        os.makedirs(core)
        with open(os.path.join(core, 'bad.hh'), 'w') as f:
            f.write(BAD_HEADER)
        with open(os.path.join(core, 'good.hh'), 'w') as f:
            f.write(GOOD_HEADER)
        bad = lint_file(root, 'src/core/bad.hh', SRC_CHECKS)
        good = lint_file(root, 'src/core/good.hh', SRC_CHECKS)
    fired = {f.rule for f in bad}
    expected = {'logging-discipline', 'no-naked-new',
                'determinism-guard', 'include-guards',
                'stats-reset-pairing', 'registry-stats',
                'no-null-macro', 'no-unchecked-io',
                'no-unbounded-retry', 'no-hotpath-alloc'}
    ok = True
    for rule in sorted(expected - fired):
        print('self-test: rule %s did not fire on the bad header'
              % rule, file=sys.stderr)
        ok = False
    for finding in good:
        print('self-test: false positive on clean header: %s'
              % finding, file=sys.stderr)
        ok = False
    print('vstream_lint self-test: %s' % ('OK' if ok else 'FAILED'))
    return 0 if ok else 1


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--root', default='.',
                        help='repository root (default: cwd)')
    parser.add_argument('--list-rules', action='store_true',
                        help='print rule names and exit')
    parser.add_argument('--self-test', action='store_true',
                        help='check every rule against synthetic '
                             'violations and exit')
    parser.add_argument('files', nargs='*',
                        help='specific files (repo-relative) to lint; '
                             'default: all of src/tests/bench/examples')
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if args.list_rules:
        for rule in ('logging-discipline', 'no-naked-new',
                     'determinism-guard', 'include-guards',
                     'stats-reset-pairing', 'registry-stats',
                     'no-null-macro', 'no-unchecked-io',
                     'no-unbounded-retry', 'no-hotpath-alloc'):
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    targets = []
    if args.files:
        for rel in args.files:
            rel = os.path.relpath(os.path.join(root, rel), root)
            top = rel.split(os.sep)[0]
            checks = SCAN_DIRS.get(top, AUX_CHECKS)
            if rel.endswith(EXTENSIONS):
                targets.append((rel, checks))
    else:
        for top, checks in sorted(SCAN_DIRS.items()):
            base = os.path.join(root, top)
            if not os.path.isdir(base):
                continue
            for dirpath, _, names in sorted(os.walk(base)):
                for name in sorted(names):
                    if not name.endswith(EXTENSIONS):
                        continue
                    rel = os.path.relpath(
                        os.path.join(dirpath, name), root)
                    targets.append((rel, checks))

    findings = []
    for rel, checks in targets:
        findings.extend(lint_file(root, rel, checks))

    for finding in findings:
        print(finding)
    if findings:
        print('vstream_lint: %d finding(s) in %d file(s) scanned'
              % (len(findings), len(targets)), file=sys.stderr)
        return 1
    print('vstream_lint: OK (%d files scanned)' % len(targets))
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
