#!/usr/bin/env bash
# Repo correctness gate.  Usage:
#
#   scripts/check.sh                 # build + test + lint (+tidy/format
#                                    # when clang tools are installed)
#   scripts/check.sh build|test      # werror build / ctest, release preset
#   scripts/check.sh asan|tsan       # sanitizer presets, full suite
#   scripts/check.sh analyze         # tools/vstream_analyze (+ self-test)
#   scripts/check.sh lint            # alias for analyze (old name)
#   scripts/check.sh docs            # markdown link/anchor checker
#   scripts/check.sh fuzz            # fuzz preset: harness smoke runs
#   scripts/check.sh tidy [files]    # clang-tidy; defaults to all of src/
#   scripts/check.sh tidy-changed    # clang-tidy on files changed vs main
#   scripts/check.sh format          # clang-format --dry-run on src/ tests/
#
# Steps that need clang-tidy/clang-format skip with a notice when the
# tool is absent (the baked-in toolchain is gcc-only); CI installs them.
set -euo pipefail

cd "$(dirname "$0")/.."

CXX_GLOBS=(src tests bench examples tools)

note() { printf '\n== %s\n' "$*"; }

cxx_files() {
    find src tests bench examples \
         \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) | sort
}

do_build() {
    note "configure + build (werror preset)"
    cmake --preset werror
    cmake --build --preset werror -j"$(nproc)"
}

do_test() {
    note "ctest (werror preset)"
    ctest --preset werror
}

do_sanitizer() {
    local preset=$1
    note "configure + build ($preset preset)"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j"$(nproc)"
    note "ctest ($preset preset)"
    ctest --preset "$preset"
}

do_analyze() {
    note "vstream_analyze"
    python3 tools/vstream_analyze --self-test
    python3 tools/vstream_analyze --root .
}

do_docs() {
    note "check_docs (markdown links + anchors)"
    python3 tools/check_docs.py --self-test
    python3 tools/check_docs.py --root .
}

do_fuzz() {
    note "configure + build (fuzz preset)"
    cmake --preset fuzz
    cmake --build --preset fuzz -j"$(nproc)" \
        --target fuzz_trace_loader fuzz_fault_rules
    note "fuzz smoke (bounded runs over the checked-in corpora)"
    ctest --preset fuzz
}

tidy_db() {
    # clang-tidy needs a compilation database; the release preset
    # exports one (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
    if [ ! -f build/release/compile_commands.json ]; then
        cmake --preset release >/dev/null
    fi
    echo build/release
}

do_tidy() {
    if ! command -v clang-tidy >/dev/null; then
        echo "clang-tidy not installed; skipping" >&2
        return 0
    fi
    local db
    db=$(tidy_db)
    local files=("$@")
    if [ ${#files[@]} -eq 0 ]; then
        mapfile -t files < <(find src -name '*.cc' | sort)
    fi
    note "clang-tidy (${#files[@]} files)"
    clang-tidy -p "$db" --quiet "${files[@]}"
}

do_tidy_changed() {
    local base=${BASE_REF:-origin/main}
    git rev-parse --verify -q "$base" >/dev/null || base=main
    mapfile -t files < <(git diff --name-only "$base"...HEAD -- \
                             'src/*.cc' | sort)
    if [ ${#files[@]} -eq 0 ]; then
        echo "no changed src/*.cc files vs $base; skipping clang-tidy"
        return 0
    fi
    do_tidy "${files[@]}"
}

do_format() {
    if ! command -v clang-format >/dev/null; then
        echo "clang-format not installed; skipping" >&2
        return 0
    fi
    note "clang-format (check only)"
    mapfile -t files < <(cxx_files)
    clang-format --dry-run -Werror "${files[@]}"
}

case "${1:-all}" in
    build)        do_build ;;
    test)         do_build; do_test ;;
    asan)         do_sanitizer asan-ubsan ;;
    tsan)         do_sanitizer tsan ;;
    analyze|lint) do_analyze ;;
    docs)         do_docs ;;
    fuzz)         do_fuzz ;;
    tidy)         shift; do_tidy "$@" ;;
    tidy-changed) do_tidy_changed ;;
    format)       do_format ;;
    all)
        do_analyze
        do_docs
        do_build
        do_test
        do_tidy_changed
        do_format
        ;;
    *)
        echo "unknown step: $1" >&2
        exit 2
        ;;
esac
