#!/usr/bin/env python3
"""Regenerate the checked-in fuzz seed corpora (stdlib only).

    python3 scripts/gen_fuzz_corpus.py

Writes fuzz/corpus/trace_loader/*.vstr (binary traces exercising
every TraceError branch), fuzz/corpus/fault_rules/*.txt (rule
specs, valid and hostile), and fuzz/corpus/arrival_trace/*.txt
(text arrival traces, valid and hostile).  The trace CRC is IEEE
CRC32 over everything after the magic, which is exactly zlib.crc32,
so valid seeds carry a genuinely matching trailer.

The corpora are committed; rerun this script only when the trace
format or the spec grammar changes, and commit the result.
"""

import os
import struct
import zlib

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = os.path.join(ROOT, 'fuzz', 'corpus')

# Small geometry keeps seeds tiny: 2x2 macroblocks of 4x4 pixels
# means 2*2*4*4*3 = 192 pixel bytes per frame.
MABS_X, MABS_Y, MAB_DIM, FPS = 2, 2, 4, 60
VERSION = 1


def header(frames, mabs_x=MABS_X, mabs_y=MABS_Y, mab_dim=MAB_DIM,
           fps=FPS, version=VERSION, magic=b'VSTR'):
    return magic + struct.pack('<6I', version, frames, mabs_x,
                               mabs_y, mab_dim, fps)


def frame(ftype=0, complexity=1.0, encoded=4096, fill=0x42):
    pixels = bytes([fill]) * (MABS_X * MABS_Y * MAB_DIM * MAB_DIM * 3)
    return struct.pack('<BdQ', ftype, complexity, encoded) + pixels


def sealed(body):
    """Append the CRC32 trailer (over everything after the magic)."""
    return body + struct.pack('<I', zlib.crc32(body[4:]))


def trace_seeds():
    valid = sealed(header(2) + frame(0) + frame(1, 2.5, 8192, 0x17))
    seeds = {
        'valid.vstr': valid,
        'empty.vstr': sealed(header(0)),
        'bad_magic.vstr': b'XSTR' + valid[4:],
        'bad_version.vstr': sealed(header(1, version=9) + frame()),
        'bad_crc.vstr': valid[:-1] + bytes([valid[-1] ^ 0xff]),
        'truncated_header.vstr': header(1)[:17],
        'truncated_frame.vstr': header(2) + frame() + frame()[:40],
        # Geometry the loader must reject before any allocation.
        'huge_geometry.vstr':
            header(1, mabs_x=0xffffffff, mabs_y=0xffffffff),
        'over_axis_cap.vstr': header(1, mabs_x=4097),
        'over_frame_cap.vstr': header(1, mabs_x=2048, mabs_y=2048),
        'zero_axis.vstr': header(1, mabs_y=0),
        # Record fields the loader must flag as corrupt.
        'bad_frame_type.vstr':
            sealed(header(1) + frame(ftype=0x7f)),
        'nan_complexity.vstr':
            sealed(header(1) + frame(complexity=float('nan'))),
        'huge_encoded.vstr':
            sealed(header(1) + frame(encoded=1 << 41)),
        # Announces far more frames than the stream carries.
        'frame_count_lie.vstr': header(0xffffffff) + frame(),
    }
    return seeds


def fault_rule_seeds():
    specs = [
        'p=0.01,from=200ms,until=1.5s,max=3,len=250ms',
        'at=5ms',
        'at=5ms,max=3,len=1ms',
        'p=1,len=400us',
        'from=1ps,until=9000000s',
        'p=0.5',
        '',
        # Hostile: every one must be rejected with a diagnostic.
        'p=nan',
        'p=-0.5',
        'p=1.5',
        'at=inf',
        'from=1e300s',
        'at=-5ms',
        'until=10000000s,at=1ms',
        'max=-3',
        'max=18446744073709551616',
        'max=3x',
        'until=',
        'p=0.5,p',
        'bogus=1',
        'len=1q',
        'p==0.5',
    ]
    return {'spec_%02d.txt' % i: spec.encode()
            for i, spec in enumerate(specs)}


def library_spec_seeds():
    specs = [
        'titles=64,skew=0.9,seed=7',
        'titles=1',
        'titles=16,skew=0',
        'titles=1048576,skew=16',
        'titles=8,seed=18446744073709551615',
        'titles=4,,skew=1.2',
        # Hostile: every one must be rejected with a diagnostic.
        '',
        'skew=0.9',
        'titles=0',
        'titles=1048577',
        'titles=-4',
        'titles=4294967296',
        'titles=8,skew=nan',
        'titles=8,skew=-0.1',
        'titles=8,skew=16.5',
        'titles=8,skew=1e400',
        'titles=8,seed=12x',
        'titles=8,bogus=1',
        'titles=8,skew',
        'titles==8',
        'titles=8,skew=0.9,seed=99999999999999999999',
    ]
    return {'spec_%02d.txt' % i: spec.encode()
            for i, spec in enumerate(specs)}


def arrival_trace_seeds():
    traces = [
        # Valid: comments, blank lines, ties, zero-watch sessions.
        '# measured traffic\n0 0 0\n1500 200000 1\n\n1500 0 2\n',
        '0 0 0\n',
        '',
        '# only comments\n\n',
        '100 200 3  # inline comment\n',
        # Hostile: every one must be rejected with a diagnostic.
        '100 200\n',                       # short line
        '100 200 0 extra\n',               # trailing junk
        '200 0 0\n100 0 0\n',              # out-of-order arrivals
        '18446744073709551615 0 0\n',      # tick overflow
        '-100 0 0\n',                      # negative time
        '1e9 0 0\n',                       # non-integer time
        'abc 0 0\n',                       # junk field
        '100 0 4294967296\n',              # mix overflow
        '0 18446744073709551615 0\n',      # watch overflow
        '\x00\x01\x02\n',                  # binary noise
    ]
    return {'trace_%02d.txt' % i: t.encode()
            for i, t in enumerate(traces)}


def write_corpus(subdir, seeds):
    path = os.path.join(CORPUS, subdir)
    os.makedirs(path, exist_ok=True)
    for name, data in sorted(seeds.items()):
        with open(os.path.join(path, name), 'wb') as f:
            f.write(data)
    print('%-32s %d seeds' % (subdir + ':', len(seeds)))


def main():
    write_corpus('trace_loader', trace_seeds())
    write_corpus('fault_rules', fault_rule_seeds())
    write_corpus('library_spec', library_spec_seeds())
    write_corpus('arrival_trace', arrival_trace_seeds())


if __name__ == '__main__':
    main()
