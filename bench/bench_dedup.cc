/**
 * @file
 * Shared-MACH dedup sweep: traffic and energy saved vs library
 * overlap.
 *
 * The shared cross-session tier (serve/shared_mach.hh) only pays off
 * when sessions actually watch the same titles, so this bench sweeps
 * the two knobs that set the overlap - catalogue size and Zipf skew -
 * and reports, per sweep point, the MACH write traffic the tier
 * elided and the DRAM write-burst energy that traffic would have
 * cost (DramConfig::e_write_burst_pj over bytesPerBurst(); there is
 * no flat per-byte constant in the model, so the burst energy is the
 * honest unit).
 *
 * Every fleet run is clean (no per-session faults) and dedup-on, so
 * the sweep isolates the caching story: a skew-0 uniform catalogue is
 * the pessimistic floor, a heavy-tailed skew=1.2 catalogue the
 * race-to-share ceiling.  The per-point fleet reports are emitted to
 * the console; the machine-readable summary is "vstream-bench-1"
 * JSON via bench::Report (docs/STATS.md).
 *
 * `--sessions N` scales the fleet; `--jobs N` fans rehearsals out
 * (results are byte-identical at any job count - the same invariance
 * the soak pins).
 */

#include <iostream>

#include "bench_util.hh"
#include "mem/dram_config.hh"
#include "serve/placer.hh"
#include "video/library.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

/** One clean library-bound fleet session (~0.4 s at 48x24). */
SessionConfig
makeDedupSession(const ArrivalEvent &a, const ZipfLibrary &library)
{
    const std::uint64_t id = a.id;
    SessionConfig s;
    s.id = id;
    s.stats_group = "dedup";
    PipelineConfig &cfg = s.pipeline;
    cfg.profile.key = "D" + std::to_string(id);
    cfg.profile.width = 48;
    cfg.profile.height = 24;
    cfg.profile.frame_count =
        24 + static_cast<std::uint32_t>(id / 7 % 3) * 4;
    cfg.profile.seed = 0x50a1u + static_cast<std::uint32_t>(id) *
                                     0x9e37u;
    library.applyTo(cfg.profile, library.sampleTitle(id));
    const Scheme schemes[] = {Scheme::kRaceToSleep, Scheme::kGab,
                              Scheme::kMab, Scheme::kBatching};
    cfg.scheme = SchemeConfig::make(schemes[id % 4]);
    return s;
}

struct SweepPoint
{
    std::uint32_t titles;
    double skew;
};

struct SweepResult
{
    DedupDomainStats totals;
    std::uint64_t admitted = 0;
};

SweepResult
runPoint(const SweepPoint &pt, std::uint32_t n_sessions,
         unsigned n_jobs)
{
    FleetConfig fleet;
    fleet.serve.bandwidth_budget_mbps = 300.0;
    fleet.serve.framebuffer_budget_bytes = 64ULL << 20;
    fleet.serve.max_active = 224;
    fleet.shards = 2;
    fleet.jobs = n_jobs;
    fleet.rebalance_period = static_cast<Tick>(1) * sim_clock::s;
    fleet.dedup.enabled = true;

    LibrarySpec spec;
    spec.titles = pt.titles;
    spec.skew = pt.skew;
    spec.seed = 7;
    const ZipfLibrary library(spec);

    PoissonArrivalConfig pa;
    pa.seed = 0xf1ee7ULL;
    pa.rate_per_s = 550.0;
    pa.count = n_sessions;
    pa.leave_probability = 0.0;
    pa.min_watch = static_cast<Tick>(100) * sim_clock::ms;
    pa.max_watch = static_cast<Tick>(350) * sim_clock::ms;
    pa.num_mixes = 1;
    const std::vector<ArrivalEvent> arrivals = poissonArrivals(pa);

    Placer placer(fleet, [&](const ArrivalEvent &a) {
        return makeDedupSession(a, library);
    });
    placer.run(arrivals);

    SweepResult r;
    r.totals = placer.dedupTier()->totals();
    r.admitted = placer.admitted();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    header("Dedup sweep: shared-MACH traffic/energy saved vs "
           "library overlap",
           "content caching at fleet scale - the cross-session "
           "variant of the paper's content-cache recipe");

    const unsigned n_jobs = jobs(argc, argv);
    const std::uint32_t n_sessions = flagU32(
        argc, argv, "--sessions",
        envU32("VSTREAM_DEDUP_SESSIONS", 600));

    Report report("bench_dedup", "dedup",
                  "Shared-MACH dedup traffic/energy saved vs Zipf "
                  "overlap");

    // One write elided saves one MACH-block write burst's worth of
    // DRAM energy (48 B blocks span two 32 B bursts in the model;
    // scale by bytes, not block count).
    const DramConfig dram;
    const double write_j_per_byte =
        dram.e_write_burst_pj * 1e-12 /
        static_cast<double>(dram.bytesPerBurst());

    const SweepPoint points[] = {
        {16, 0.0},  {16, 0.9},  {16, 1.2},  {64, 0.0},
        {64, 0.9},  {64, 1.2},  {256, 0.9},
    };

    std::cout << std::left << std::setw(8) << "titles"
              << std::setw(8) << "skew" << std::right << std::setw(12)
              << "sharedHits" << std::setw(14) << "bytesElided"
              << std::setw(12) << "published" << std::setw(12)
              << "elided %" << std::setw(14) << "saved uJ" << "\n";
    std::cout << std::fixed << std::setprecision(2);

    double best_saved_j = 0.0;
    double best_elided_frac = 0.0;
    for (const SweepPoint &pt : points) {
        const SweepResult r = runPoint(pt, n_sessions, n_jobs);
        const std::uint64_t considered =
            r.totals.shared_hits + r.totals.self_hits +
            r.totals.unique_published;
        const double elided_frac =
            considered == 0
                ? 0.0
                : static_cast<double>(r.totals.shared_hits +
                                      r.totals.self_hits) /
                      static_cast<double>(considered);
        const double saved_j =
            static_cast<double>(r.totals.bytes_elided) *
            write_j_per_byte;
        best_saved_j = std::max(best_saved_j, saved_j);
        best_elided_frac = std::max(best_elided_frac, elided_frac);

        std::cout << std::left << std::setw(8) << pt.titles
                  << std::setw(8) << pt.skew << std::right
                  << std::setw(12) << r.totals.shared_hits
                  << std::setw(14) << r.totals.bytes_elided
                  << std::setw(12) << r.totals.unique_published
                  << std::setw(12) << pct(elided_frac)
                  << std::setw(14) << saved_j * 1e6 << "\n";

        const std::string key = "titles" +
                                std::to_string(pt.titles) + "_skew" +
                                std::to_string(pt.skew).substr(0, 3);
        report.video(key, "sharedHits",
                     static_cast<double>(r.totals.shared_hits));
        report.video(key, "selfHits",
                     static_cast<double>(r.totals.self_hits));
        report.video(key, "bytesElided",
                     static_cast<double>(r.totals.bytes_elided));
        report.video(key, "uniquePublished",
                     static_cast<double>(r.totals.unique_published));
        report.video(key, "elidedFraction", elided_frac);
        report.video(key, "writeEnergySavedJ", saved_j);
    }

    // No paper reference point exists for the cross-session tier
    // (the paper's content cache is per-device); record the measured
    // ceiling with paper=0 so the schema stays uniform.
    report.metric("maxWriteEnergySavedJ", 0.0, best_saved_j);
    report.metric("maxElidedFraction", 0.0, best_elided_frac);

    std::cout << "\nbest point: " << pct(best_elided_frac)
              << " of MACH writes elided, "
              << best_saved_j * 1e6 << " uJ of write-burst energy "
              << "saved\n";
    return 0;
}
