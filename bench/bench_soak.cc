/**
 * @file
 * Multi-session soak: hundreds of short sessions with mixed fault
 * storms through the SessionManager.
 *
 * Five session mixes rotate across the fleet:
 *
 *   clean    no faults - doubles as the isolation oracle: its
 *            serve-side energy/drops must be bit-identical to a solo
 *            VideoPipeline run of the same config;
 *   stall    an arrival-stall storm mid-playback (underruns degrade
 *            the session, which recovers once the storm passes);
 *   dram     a DRAM timeout storm dense enough to exhaust the
 *            abandon budget (quarantine -> eviction);
 *   digest   injected MACH collisions under verify-on-hit (false-hit
 *            storm trips the circuit breaker; the storm ends, the
 *            cooldown expires, the re-probe closes it again);
 *   trace    a corrupted ingest trace (TraceError quarantines the
 *            session at start).
 *
 * A few deliberately over-budget "whale" submissions exercise the
 * rejection path.  Every seed is fixed and every per-session fault
 * stream comes from FaultConfig::forSession, so two runs emit
 * identical "vstream-soak-1" JSON (modulo wall_clock_seconds) - the
 * CI soak-smoke job asserts exactly that, under ASan+UBSan.
 *
 * `--jobs N` (or VSTREAM_JOBS) rehearses the session shards across
 * worker threads (SessionManager::precompute) and fans the solo
 * isolation oracle the same way; the JSON stays byte-identical at
 * any job count because session evolution is offset-invariant.
 *
 * The harness verifies its own acceptance invariants (fatal faults
 * resolve to Quarantined/Evicted, clean sessions are bit-identical
 * to solo runs, tripped breakers recover) and exits non-zero when
 * any fails.
 *
 * `--shards N` switches to *fleet* mode: `--sessions M` short
 * sessions (the same five mixes, scaled to ~0.4 s each) arrive via
 * a seeded Poisson process with mid-stream leaves, routed by the
 * Placer across N shards under one global budget, with stats folded
 * into O(shards) mergeable snapshots.  Fleet JSON carries neither
 * the shard nor the job count and is byte-identical at any value of
 * either (the CI shard-smoke job and tests/test_shard.cc assert
 * this); see docs/SERVING.md and docs/FORMATS.md.
 */

#include <array>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>

#include "bench_util.hh"
#include "serve/fleet_report.hh"
#include "serve/placer.hh"
#include "serve/session_manager.hh"
#include "video/library.hh"
#include "video/trace.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

constexpr std::size_t kNumMixes = 5;
const char *const kMixNames[kNumMixes] = {"clean", "stall", "dram",
                                          "digest", "trace"};

/** The soak's base video: tiny and short, so hundreds of sessions
 * fit in a CI smoke budget. */
VideoProfile
soakProfile(std::uint64_t id, std::uint32_t frames_n)
{
    VideoProfile p;
    p.key = "S";
    p.key += std::to_string(id);
    p.width = 96;
    p.height = 48;
    p.frame_count = frames_n;
    p.seed = 0x50a1u + id * 0x9e37u;
    return p;
}

HealthConfig
soakHealth()
{
    HealthConfig h;
    h.window_vsyncs = 8;
    h.degrade_drops = 3;
    h.degrade_underruns = 2;
    h.abandon_budget = 6;
    h.quarantine_windows = 2;
    h.recover_windows = 2;
    h.evict_windows = 2;
    return h;
}

BreakerConfig
soakBreaker()
{
    BreakerConfig b;
    b.false_hit_threshold = 0.02;
    b.min_lookups = 32;
    b.cooldown_base = static_cast<Tick>(100) * sim_clock::ms;
    b.cooldown_cap = static_cast<Tick>(1) * sim_clock::s;
    b.jitter_frac = 0.2;
    return b;
}

/** A short intact ingest trace, serialized once and shared. */
std::vector<std::uint8_t>
makeTraceBlob()
{
    VideoProfile p;
    p.key = "TB";
    p.width = 32;
    p.height = 16;
    p.frame_count = 3;
    p.seed = 777;
    std::ostringstream os(std::ios::binary);
    writeTrace(os, p);
    const std::string s = os.str();
    return {s.begin(), s.end()};
}

/** One session of mix @p mix (= id % kNumMixes). */
SessionConfig
makeSession(std::uint64_t id, std::uint32_t frames_n,
            const std::vector<std::uint8_t> &intact_blob)
{
    const std::size_t mix = id % kNumMixes;
    SessionConfig s;
    s.id = id;
    s.health = soakHealth();
    s.breaker = soakBreaker();

    PipelineConfig &cfg = s.pipeline;
    cfg.profile = soakProfile(id, frames_n);
    // Rotate the scheme so the fleet is heterogeneous; digest
    // sessions need a MACH to break.
    const Scheme schemes[] = {Scheme::kRaceToSleep, Scheme::kGab,
                              Scheme::kMab, Scheme::kBatching};
    cfg.scheme = SchemeConfig::make(
        mix == 3 ? Scheme::kGab : schemes[(id / kNumMixes) % 4]);
    cfg.faults.seed = 0xfa0175eedULL;

    switch (mix) {
    case 0: // clean
        break;
    case 1: // arrival-stall storm
        cfg.arrival.enabled = true;
        cfg.arrival.bandwidth_mbps = 2.0;
        cfg.arrival.jitter_frac = 0.2;
        cfg.preroll_frames = 2; // arrival preroll mirrors this
        cfg.arrival.seed = 0xa441 + id;
        // Delivery of the whole clip takes ~40ms at 2 Mbps, so the
        // storm window covers early delivery; one long stall starves
        // the first playback windows, then the link catches up.
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kNetworkStall,
            "p=0.35,from=1ms,until=25ms,len=120ms"));
        // Lax quarantine streak: this mix must degrade and recover,
        // not evict.
        s.health.quarantine_windows = 4;
        break;
    case 2: // DRAM timeout storm (abandon-budget exhaustion)
        cfg.faults.dram_retry_limit = 2;
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDramTimeout,
            "p=0.6,from=250ms,until=650ms"));
        break;
    case 3: // MACH false-hit storm (breaker trip + recovery)
        cfg.mach.verify_on_hit = true;
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDigestCollision,
            "p=0.2,from=150ms,until=700ms"));
        break;
    case 4: { // corrupted ingest trace
        s.trace_blob = intact_blob;
        // Flip one byte past the header, at an id-dependent offset.
        const std::size_t off =
            64 + (static_cast<std::size_t>(id) * 131) %
                     (s.trace_blob.size() - 64);
        s.trace_blob[off] ^= 0x5a;
        break;
    }
    default:
        break;
    }
    // Independent, reproducible per-session fault streams.
    cfg.faults = cfg.faults.forSession(id);
    return s;
}

/** A submission whose solo demand exceeds every budget. */
SessionConfig
makeWhale(std::uint64_t id)
{
    SessionConfig s;
    s.id = id;
    s.pipeline.profile = soakProfile(id, 48);
    s.pipeline.profile.width = 1920;
    s.pipeline.profile.height = 1080;
    s.pipeline.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    return s;
}

bool
check(bool ok, const char *what, int &failures)
{
    if (!ok) {
        std::cout << "SOAK FAIL: " << what << "\n";
        ++failures;
    }
    return ok;
}

// ---- fleet mode -------------------------------------------------------

/** Every 1000th arrival is a whale: globally rejected, never
 * rehearsed, so the rejection path stays exercised at fleet scale. */
bool
isFleetWhale(std::uint64_t id)
{
    return id % 1000 == 999;
}

/**
 * One fleet session: the five soak mixes scaled to ~0.4 s of
 * playback (24-32 frames at 48x24) so 100k rehearsals fit a
 * single-machine soak, with fault windows tightened to land inside
 * the shorter span.
 */
SessionConfig
makeFleetSession(const ArrivalEvent &a,
                 const std::vector<std::uint8_t> &intact_blob,
                 const ZipfLibrary *library)
{
    const std::uint64_t id = a.id;
    if (isFleetWhale(id)) {
        return makeWhale(id);
    }
    const std::size_t mix = a.mix % kNumMixes;
    SessionConfig s;
    s.id = id;
    s.stats_group = kMixNames[mix];
    s.health = soakHealth();
    s.breaker = soakBreaker();
    // Shorter cooldown so tripped breakers can re-probe (and
    // recover) inside a ~0.4 s session.
    s.breaker.cooldown_base = static_cast<Tick>(50) * sim_clock::ms;
    s.breaker.cooldown_cap = static_cast<Tick>(200) * sim_clock::ms;

    PipelineConfig &cfg = s.pipeline;
    cfg.profile = soakProfile(id, 24 + (id / 7 % 3) * 4);
    cfg.profile.width = 48;
    cfg.profile.height = 24;
    if (library != nullptr) {
        // Bind the session to its Zipf-drawn title: sessions on the
        // same title decode byte-identical content, which is what
        // the shared MACH tier dedups across sessions.
        library->applyTo(cfg.profile, library->sampleTitle(id));
    }
    const Scheme schemes[] = {Scheme::kRaceToSleep, Scheme::kGab,
                              Scheme::kMab, Scheme::kBatching};
    cfg.scheme = SchemeConfig::make(
        mix == 3 ? Scheme::kGab : schemes[(id / kNumMixes) % 4]);
    cfg.faults.seed = 0xfa0175eedULL;

    switch (mix) {
    case 0: // clean
        break;
    case 1: // arrival-stall storm
        cfg.arrival.enabled = true;
        cfg.arrival.bandwidth_mbps = 2.0;
        cfg.arrival.jitter_frac = 0.2;
        cfg.preroll_frames = 2;
        cfg.arrival.seed = 0xa441 + id;
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kNetworkStall,
            "p=0.35,from=1ms,until=25ms,len=60ms"));
        s.health.quarantine_windows = 4;
        break;
    case 2: // DRAM timeout storm (abandon-budget exhaustion)
        cfg.faults.dram_retry_limit = 2;
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDramTimeout,
            "p=0.6,from=50ms,until=350ms"));
        break;
    case 3: // MACH false-hit storm (breaker trip + recovery)
        cfg.mach.verify_on_hit = true;
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDigestCollision,
            "p=0.25,from=20ms,until=200ms"));
        break;
    case 4: { // corrupted ingest trace
        s.trace_blob = intact_blob;
        const std::size_t off =
            64 + (static_cast<std::size_t>(id) * 131) %
                     (s.trace_blob.size() - 64);
        s.trace_blob[off] ^= 0x5a;
        break;
    }
    default:
        break;
    }
    cfg.faults = cfg.faults.forSession(id);
    return s;
}

/**
 * Fleet soak: Poisson arrivals with mid-stream leaves through the
 * Placer.  The emitted vstream-soak-1 JSON (mode "fleet") mentions
 * neither the shard nor the job count; both are placement/execution
 * detail outside the bytes.  With a ChaosConfig the same schedule
 * runs under shard crashes/brownouts, flash crowds, queue deadlines
 * and shedding; everything the chaos layer did lands in the report's
 * `recovery` block (docs/FORMATS.md).
 */
int
runFleet(std::uint32_t n_sessions, std::uint32_t n_shards,
         unsigned n_jobs, const ChaosConfig &chaos,
         Tick queue_deadline, const DedupConfig &dedup,
         const std::string &library_spec)
{
    const auto wall_start = std::chrono::steady_clock::now();

    FleetConfig fleet;
    fleet.serve.bandwidth_budget_mbps = 300.0;
    fleet.serve.framebuffer_budget_bytes = 64ULL << 20;
    fleet.serve.max_active = 224;
    fleet.serve.queue_deadline = queue_deadline;
    fleet.shards = n_shards;
    fleet.jobs = n_jobs;
    fleet.rebalance_period = static_cast<Tick>(1) * sim_clock::s;
    fleet.chaos = chaos;
    fleet.dedup = dedup;

    std::unique_ptr<ZipfLibrary> library;
    if (!library_spec.empty()) {
        library = std::make_unique<ZipfLibrary>(
            parseLibrarySpec(library_spec));
    }

    PoissonArrivalConfig pa;
    pa.seed = 0xf1ee7ULL;
    pa.rate_per_s = 550.0;
    pa.count = n_sessions;
    pa.leave_probability = 0.3;
    pa.min_watch = static_cast<Tick>(100) * sim_clock::ms;
    pa.max_watch = static_cast<Tick>(350) * sim_clock::ms;
    pa.num_mixes = kNumMixes;
    // Flash crowds are offered load: they join the schedule before
    // the Placer sees it, so whale counting and arrival totals
    // cover them too.  With no flood rules this is the identity.
    const std::vector<ArrivalEvent> arrivals =
        withFlashCrowds(poissonArrivals(pa), fleet.chaos);

    const std::vector<std::uint8_t> intact_blob = makeTraceBlob();
    Placer placer(fleet, [&](const ArrivalEvent &a) {
        return makeFleetSession(a, intact_blob, library.get());
    });
    placer.run(arrivals);

    const StatsSnapshot fleet_stats = placer.fleetSnapshot();
    const RecoveryTotals &rec = placer.recovery();
    std::uint64_t expected_whales = 0;
    for (const ArrivalEvent &a : arrivals) {
        if (isFleetWhale(a.id)) {
            ++expected_whales;
        }
    }

    int failures = 0;
    check(placer.admitted() + placer.rejected() + rec.shed +
                  rec.queue_timeouts ==
              arrivals.size(),
          "arrivals not all admitted/rejected/shed/timed out",
          failures);
    check(fleet_stats.count("sessions") == placer.admitted(),
          "merged snapshot lost sessions", failures);
    check(placer.rejected() == expected_whales,
          "whales were not all rejected (or non-whales were)",
          failures);
    check(placer.queuedTotal() > 0,
          "admission queue never engaged (raise the arrival rate)",
          failures);
    check(fleet_stats.count("state.evicted") > 0,
          "no fleet session was ever evicted", failures);
    check(fleet_stats.count("breaker.trips") > 0,
          "no fleet breaker ever tripped", failures);
    check(fleet_stats.count("leftEarly") > 0,
          "no viewer ever left mid-stream", failures);
    std::uint64_t absorbed = 0;
    for (const Shard &sh : placer.shards()) {
        absorbed += sh.absorbed();
    }
    check(absorbed == placer.admitted(),
          "shard absorb count diverged from admissions", failures);

    // ---- console summary ----------------------------------------------
    std::cout << "fleet: " << n_sessions << " sessions, "
              << placer.shards().size() << " shard(s)\n";
    std::cout << "admitted " << placer.admitted() << ", queued "
              << placer.queuedTotal() << ", rejected "
              << placer.rejected() << " (whales " << expected_whales
              << ")\n";
    std::cout << "evicted " << fleet_stats.count("state.evicted")
              << ", left early " << fleet_stats.count("leftEarly")
              << ", breaker trips "
              << fleet_stats.count("breaker.trips") << "\n";
    std::cout << "peak active " << placer.peakActive()
              << ", peak waiting " << placer.peakWaiting()
              << ", virtual end " << std::fixed
              << std::setprecision(2)
              << ticksToMs(placer.endTick()) / 1e3 << " s, "
              << placer.rebalances() << " rebalances\n";
    if (rec.any()) {
        std::cout << "recovery: " << rec.crashes << " crash(es), "
                  << rec.brownouts << " brownout(s), restored "
                  << rec.restored << " + replayed " << rec.replayed
                  << ", failed over " << rec.failed_over << ", shed "
                  << rec.shed << ", queue timeouts "
                  << rec.queue_timeouts << " ("
                  << placer.checkpointsTaken()
                  << " checkpoint rounds)\n";
    }
    const ScalarAgg *energy = fleet_stats.scalar("energyJ");
    if (energy != nullptr) {
        std::cout << "aggregate energy " << energy->sum() * 1e3
                  << " mJ across " << energy->count
                  << " sessions\n";
    }
    if (const SharedMachTier *tier = placer.dedupTier()) {
        const DedupDomainStats t = tier->totals();
        std::cout << "dedup: " << t.shared_hits
                  << " shared hit(s), " << t.bytes_elided
                  << " B elided, " << t.unique_published
                  << " published, " << t.false_hits
                  << " false hit(s), " << t.trips << " trip(s)\n";
    }
    const HdrHistogram *span = fleet_stats.histogram("spanUs");
    if (span != nullptr) {
        std::cout << "session span p50 "
                  << static_cast<double>(span->percentile(0.5)) / 1e3
                  << " ms, p99 "
                  << static_cast<double>(span->percentile(0.99)) /
                         1e3
                  << " ms\n";
    }
    if (failures == 0) {
        std::cout << "fleet invariants: all hold\n";
    }

    // ---- vstream-soak-1 JSON (fleet mode) -----------------------------
    const char *path = std::getenv("VSTREAM_STATS_JSON");
    if (path != nullptr && path[0] != '\0') {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        std::ofstream os(path);
        writeFleetReport(os, placer, "bench_soak", n_sessions, wall,
                         static_cast<std::uint64_t>(failures));
    }
    return failures == 0 ? 0 : 1;
}

struct MixTally
{
    std::uint64_t sessions = 0;
    std::array<std::uint64_t, kNumHealthStates> final_states{};
    std::uint64_t breaker_trips = 0;
    Tick degraded_dwell = 0;
    double energy_j = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    header("Soak: mixed-fault session fleet through the "
           "SessionManager",
           "robustness extension - admission control, fault "
           "domains, circuit breakers under storm load");

    const unsigned n_jobs = jobs(argc, argv);
    const std::uint32_t n_shards = flagU32(argc, argv, "--shards", 0);
    if (n_shards > 0) {
        // Fleet mode: Poisson churn through the sharded Placer.
        const std::uint32_t fleet_sessions = flagU32(
            argc, argv, "--sessions",
            envU32("VSTREAM_SOAK_SESSIONS", 2000));
        // Chaos knobs (all default off; see serve/chaos.hh for the
        // rule grammar).  Times on these flags are milliseconds.
        ChaosConfig chaos;
        for (const std::string &spec :
             flagStrs(argc, argv, "--chaos-crash")) {
            chaos.rules.push_back(parseFleetFaultRule(
                FleetFaultClass::kShardCrash, spec));
        }
        for (const std::string &spec :
             flagStrs(argc, argv, "--chaos-brownout")) {
            chaos.rules.push_back(parseFleetFaultRule(
                FleetFaultClass::kShardBrownout, spec));
        }
        for (const std::string &spec :
             flagStrs(argc, argv, "--chaos-flood")) {
            chaos.rules.push_back(parseFleetFaultRule(
                FleetFaultClass::kFlashCrowd, spec));
        }
        chaos.checkpoint_period =
            static_cast<Tick>(flagU32(argc, argv,
                                      "--checkpoint-period", 0)) *
            sim_clock::ms;
        chaos.shed_depth = flagU32(argc, argv, "--shed-depth", 0);
        const Tick queue_deadline =
            static_cast<Tick>(
                flagU32(argc, argv, "--queue-deadline", 0)) *
            sim_clock::ms;
        // Shared-MACH dedup knobs (default off; `--dedup off` runs
        // are byte-identical to pre-dedup builds).
        DedupConfig dedup;
        const std::string dedup_mode =
            flagStr(argc, argv, "--dedup", "off");
        if (dedup_mode != "on" && dedup_mode != "off") {
            std::cout << "bad --dedup value '" << dedup_mode
                      << "' (need on|off)\n";
            return 2;
        }
        dedup.enabled = dedup_mode == "on";
        for (const std::string &spec :
             flagStrs(argc, argv, "--dedup-poison")) {
            dedup.poison.push_back(parseDedupPoisonRule(spec));
        }
        const std::string library_spec =
            flagStr(argc, argv, "--library", "");
        return runFleet(fleet_sessions, n_shards, n_jobs, chaos,
                        queue_deadline, dedup, library_spec);
    }

    const std::uint32_t n_sessions = flagU32(
        argc, argv, "--sessions", envU32("VSTREAM_SOAK_SESSIONS", 120));
    const std::uint32_t frames_n = frames(96);
    const auto wall_start = std::chrono::steady_clock::now();

    ServeConfig serve;
    serve.bandwidth_budget_mbps = 300.0;
    serve.framebuffer_budget_bytes = 64ULL << 20;
    serve.max_active = 24;
    SessionManager mgr(serve);

    const std::vector<std::uint8_t> intact_blob = makeTraceBlob();

    std::vector<SessionConfig> solo_copies;
    solo_copies.reserve(n_sessions);
    for (std::uint32_t i = 0; i < n_sessions; ++i) {
        solo_copies.push_back(makeSession(i, frames_n, intact_blob));
    }
    if (n_jobs > 1) {
        // Rehearse the fleet across workers; submission below then
        // replays outcomes on the shared timeline.  (Whales are
        // never admitted, so they are not rehearsed.)
        mgr.precompute(solo_copies, n_jobs);
    }

    // Whales first: both budgets reject them outright.
    std::uint64_t next_id = 0;
    for (int w = 0; w < 3; ++w) {
        mgr.submit(makeWhale(1000 + next_id++));
    }
    for (std::uint32_t i = 0; i < n_sessions; ++i) {
        mgr.submit(solo_copies[i]);
    }
    mgr.runAll();

    // ---- tallies ------------------------------------------------------
    std::array<MixTally, kNumMixes> mixes{};
    std::array<Tick, kNumHealthStates> dwell{};
    FaultTotals faults;
    std::uint64_t reprobes = 0;
    std::uint64_t recovered_breakers = 0;
    double aggregate_j = 0.0;
    int failures = 0;

    for (const SessionOutcome &o : mgr.outcomes()) {
        const std::size_t mix = o.id % kNumMixes;
        MixTally &t = mixes[mix];
        ++t.sessions;
        ++t.final_states[static_cast<std::size_t>(o.final_state)];
        t.breaker_trips += o.breaker_trips;
        t.degraded_dwell +=
            o.dwell[static_cast<std::size_t>(HealthState::kDegraded)];
        t.energy_j += o.result.totalEnergy();
        aggregate_j += o.result.totalEnergy();
        for (std::size_t st = 0; st < kNumHealthStates; ++st) {
            dwell[st] += o.dwell[st];
        }
        faults.injected += o.result.faults.injected;
        faults.recovered += o.result.faults.recovered;
        faults.abandoned += o.result.faults.abandoned;
        reprobes += o.breaker_reprobes;
        if (o.breaker_trips > 0 &&
            o.breaker_state == CircuitBreaker::State::kClosed) {
            ++recovered_breakers;
        }

        // Fatal conditions must resolve inside the ladder.
        if (mix == 2 || mix == 4) {
            check(o.final_state == HealthState::kEvicted,
                  "fatal-mix session did not end Evicted", failures);
        }
        if (mix == 4) {
            check(o.trace_error != TraceError::kNone,
                  "trace-mix session loaded a corrupt blob cleanly",
                  failures);
        }
    }
    check(mgr.outcomes().size() == n_sessions,
          "not every submitted session completed", failures);
    check(mgr.rejected() == 3, "whales were not all rejected",
          failures);
    check(mgr.queuedTotal() > 0,
          "admission queue never engaged (raise the fleet size)",
          failures);
    check(mixes[3].breaker_trips > 0, "no breaker ever tripped",
          failures);
    check(mixes[1].degraded_dwell > 0,
          "the stall mix never exercised the Degraded state",
          failures);
    check(recovered_breakers > 0,
          "no tripped breaker recovered after its cooldown",
          failures);

    // ---- isolation oracle: clean sessions == solo runs ----------------
    std::vector<std::uint32_t> clean_ids;
    for (std::uint32_t i = 0; i < n_sessions; ++i) {
        if (i % kNumMixes == 0) {
            clean_ids.push_back(i);
        }
    }
    const std::vector<PipelineResult> solo_results = parallelMap(
        n_jobs, clean_ids.size(), [&](std::size_t k) {
            VideoPipeline solo(solo_copies[clean_ids[k]].pipeline);
            return solo.run();
        });
    double baseline_j = 0.0;
    double max_delta_j = 0.0;
    for (std::size_t k = 0; k < clean_ids.size(); ++k) {
        const std::uint32_t i = clean_ids[k];
        const PipelineResult &solo_r = solo_results[k];
        baseline_j += solo_r.totalEnergy();
        const SessionOutcome *o = nullptr;
        for (const SessionOutcome &cand : mgr.outcomes()) {
            if (cand.id == i) {
                o = &cand;
                break;
            }
        }
        if (!check(o != nullptr, "clean session missing an outcome",
                   failures)) {
            continue;
        }
        const double delta = std::abs(solo_r.totalEnergy() -
                                      o->result.totalEnergy());
        max_delta_j = std::max(max_delta_j, delta);
        check(solo_r.totalEnergy() == o->result.totalEnergy() &&
                  solo_r.drops == o->result.drops,
              "clean session diverged from its solo run", failures);
    }

    // ---- console summary ----------------------------------------------
    std::cout << std::left << std::setw(10) << "mix" << std::right
              << std::setw(10) << "sessions" << std::setw(10)
              << "healthy" << std::setw(10) << "degraded"
              << std::setw(13) << "quarantined" << std::setw(10)
              << "evicted" << std::setw(8) << "trips" << std::setw(12)
              << "energy mJ" << "\n";
    std::cout << std::fixed << std::setprecision(2);
    for (std::size_t m = 0; m < kNumMixes; ++m) {
        const MixTally &t = mixes[m];
        std::cout << std::left << std::setw(10) << kMixNames[m]
                  << std::right << std::setw(10) << t.sessions
                  << std::setw(10) << t.final_states[0]
                  << std::setw(10) << t.final_states[1]
                  << std::setw(13) << t.final_states[2]
                  << std::setw(10) << t.final_states[3]
                  << std::setw(8) << t.breaker_trips << std::setw(12)
                  << t.energy_j * 1e3 << "\n";
    }
    std::cout << "\nadmitted " << mgr.admitted() << ", queued "
              << mgr.queuedTotal() << ", rejected " << mgr.rejected()
              << ", evicted " << mgr.evicted() << ", breaker trips "
              << mgr.breakerTrips() << " (reprobes " << reprobes
              << ", recovered " << recovered_breakers << ")\n";
    std::cout << "aggregate energy " << aggregate_j * 1e3
              << " mJ; clean-mix isolated baseline " << baseline_j * 1e3
              << " mJ (max delta " << max_delta_j << " J)\n";
    if (failures == 0) {
        std::cout << "soak invariants: all holds\n";
    }

    // ---- vstream-soak-1 JSON ------------------------------------------
    const char *path = std::getenv("VSTREAM_STATS_JSON");
    if (path != nullptr && path[0] != '\0') {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        std::ofstream os(path);
        JsonWriter w(os, /*pretty=*/true);
        w.beginObject();
        w.kv("schema", "vstream-soak-1");
        w.kv("bench", "bench_soak");
        w.kv("sessions", static_cast<double>(n_sessions));
        w.kv("wall_clock_seconds", wall);
        w.key("admission");
        w.beginObject();
        w.kv("admitted", static_cast<double>(mgr.admitted()));
        w.kv("queued", static_cast<double>(mgr.queuedTotal()));
        w.kv("rejected", static_cast<double>(mgr.rejected()));
        w.endObject();
        w.kv("evictions", static_cast<double>(mgr.evicted()));
        w.key("breaker");
        w.beginObject();
        w.kv("trips", static_cast<double>(mgr.breakerTrips()));
        w.kv("reprobes", static_cast<double>(reprobes));
        w.kv("recoveredSessions",
             static_cast<double>(recovered_breakers));
        w.endObject();
        w.key("finalStates");
        w.beginObject();
        for (std::size_t st = 0; st < kNumHealthStates; ++st) {
            std::uint64_t count = 0;
            for (const MixTally &t : mixes) {
                count += t.final_states[st];
            }
            w.kv(healthStateName(static_cast<HealthState>(st)),
                 static_cast<double>(count));
        }
        w.endObject();
        w.key("dwellMs");
        w.beginObject();
        for (std::size_t st = 0; st < kNumHealthStates; ++st) {
            w.kv(healthStateName(static_cast<HealthState>(st)),
                 ticksToMs(dwell[st]));
        }
        w.endObject();
        w.key("energy");
        w.beginObject();
        w.kv("aggregateJ", aggregate_j);
        w.kv("cleanIsolatedBaselineJ", baseline_j);
        w.kv("cleanIsolationMaxDeltaJ", max_delta_j);
        w.endObject();
        w.key("faults");
        w.beginObject();
        w.kv("injected", static_cast<double>(faults.injected));
        w.kv("recovered", static_cast<double>(faults.recovered));
        w.kv("abandoned", static_cast<double>(faults.abandoned));
        w.endObject();
        w.key("mixes");
        w.beginObject();
        for (std::size_t m = 0; m < kNumMixes; ++m) {
            w.key(kMixNames[m]);
            w.beginObject();
            w.kv("sessions",
                 static_cast<double>(mixes[m].sessions));
            w.kv("evicted",
                 static_cast<double>(mixes[m].final_states[3]));
            w.kv("breakerTrips",
                 static_cast<double>(mixes[m].breaker_trips));
            w.kv("energyJ", mixes[m].energy_j);
            w.endObject();
        }
        w.endObject();
        w.kv("invariantFailures", static_cast<double>(failures));
        w.endObject();
    }

    return failures == 0 ? 0 : 1;
}
