/**
 * @file
 * Microbenchmarks (google-benchmark): throughput of the hot paths -
 * digests, the gradient transform, MACH lookups, DRAM-model accesses,
 * cache accesses, DCC, and synthetic-frame generation.
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc_cache.hh"
#include "core/dcc.hh"
#include "core/mach_array.hh"
#include "hash/hasher.hh"
#include "mem/dram_controller.hh"
#include "sim/random.hh"
#include "video/macroblock.hh"
#include "video/synthetic_video.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

Macroblock
randomMab(Random &rng)
{
    Macroblock m(4);
    for (auto &b : m.bytes()) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    return m;
}

void
BM_Digest(benchmark::State &state, HashKind kind)
{
    Random rng(1);
    const Macroblock m = randomMab(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            digest32(kind, m.bytes().data(), m.bytes().size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * m.bytes().size()));
}

BENCHMARK_CAPTURE(BM_Digest, crc32, HashKind::kCrc32);
BENCHMARK_CAPTURE(BM_Digest, md5, HashKind::kMd5);
BENCHMARK_CAPTURE(BM_Digest, sha1, HashKind::kSha1);

void
BM_GradientTransform(benchmark::State &state)
{
    Random rng(2);
    const Macroblock m = randomMab(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.gradient());
    }
}
BENCHMARK(BM_GradientTransform);

void
BM_MachLookup(benchmark::State &state)
{
    MachConfig cfg;
    MachArray machs(cfg);
    machs.beginFrame();
    Random rng(3);
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
        entries;
    for (int i = 0; i < 2048; ++i) {
        const Macroblock m = randomMab(rng);
        const std::uint32_t d = m.digest(HashKind::kCrc32);
        machs.insertUnique(d, 0, i * 48, m.bytes(), false);
        entries.emplace_back(d, m.bytes());
        if (i % 256 == 255) {
            machs.beginFrame();
        }
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[d, truth] = entries[i++ % entries.size()];
        benchmark::DoNotOptimize(machs.lookup(d, 0, truth));
    }
}
BENCHMARK(BM_MachLookup);

void
BM_DramAccess(benchmark::State &state)
{
    DramController ctrl{DramConfig{}};
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        const MemResult r = ctrl.access(
            MemRequest{a, 64, MemOp::kRead, Requester::kVideoDecoder},
            t);
        benchmark::DoNotOptimize(r);
        t = r.finish_tick;
        a = (a + 64) % (64ULL << 20);
    }
}
BENCHMARK(BM_DramAccess);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    SetAssocCache cache("bm", cfg);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, 48, MemOp::kRead));
        a = (a + 48) % (256 * 1024);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_DccCompress(benchmark::State &state)
{
    Random rng(4);
    std::vector<Macroblock> mabs;
    for (int i = 0; i < 64; ++i) {
        mabs.push_back(randomMab(rng));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dccCompress(mabs[i++ % mabs.size()]));
    }
}
BENCHMARK(BM_DccCompress);

void
BM_SyntheticFrame(benchmark::State &state)
{
    VideoProfile p = workload("V8");
    p.frame_count = 1000000;
    SyntheticVideo video(p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(video.nextFrame());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * p.mabsPerFrame()));
}
BENCHMARK(BM_SyntheticFrame);

} // namespace

BENCHMARK_MAIN();
