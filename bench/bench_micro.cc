/**
 * @file
 * Microbenchmarks (google-benchmark): throughput of the hot paths -
 * digests, the gradient transform, MACH lookups, DRAM-model accesses,
 * cache accesses, DCC, and synthetic-frame generation.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "cache/set_assoc_cache.hh"
#include "core/dcc.hh"
#include "core/frame_buffer_manager.hh"
#include "core/mach_array.hh"
#include "core/surface_pool.hh"
#include "hash/crc.hh"
#include "hash/hasher.hh"
#include "mem/dram_controller.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "video/macroblock.hh"
#include "video/pixel_kernels.hh"
#include "video/synthetic_video.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

Macroblock
randomMab(Random &rng)
{
    Macroblock m(4);
    for (auto &b : m.bytes()) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    return m;
}

void
BM_Digest(benchmark::State &state, HashKind kind)
{
    Random rng(1);
    const Macroblock m = randomMab(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            digest32(kind, m.bytes().data(), m.bytes().size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * m.bytes().size()));
}

BENCHMARK_CAPTURE(BM_Digest, crc32, HashKind::kCrc32);
BENCHMARK_CAPTURE(BM_Digest, md5, HashKind::kMd5);
BENCHMARK_CAPTURE(BM_Digest, sha1, HashKind::kSha1);

/** Per-kernel CRC32 throughput: 48 B (one mab) and 4 KB payloads.
 * state.range(0) indexes availableCrc32Kernels(); range(1) is the
 * payload size. */
void
BM_Crc32Kernel(benchmark::State &state)
{
    const std::vector<CrcKernel> kernels = availableCrc32Kernels();
    if (static_cast<std::size_t>(state.range(0)) >= kernels.size()) {
        state.SkipWithError("kernel not available on this host");
        return;
    }
    const CrcKernel kernel =
        kernels[static_cast<std::size_t>(state.range(0))];
    const std::size_t len =
        static_cast<std::size_t>(state.range(1));
    Random rng(5);
    std::vector<std::uint8_t> buf(len);
    for (auto &b : buf) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crc32Step(kernel, 0xffffffffu, buf.data(), buf.size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * buf.size()));
    state.SetLabel(crcKernelName(kernel));
}
BENCHMARK(BM_Crc32Kernel)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 2, 1),
                   {48, 4096}});

void
BM_Crc16Kernel(benchmark::State &state)
{
    const bool sliced = state.range(0) != 0;
    Random rng(6);
    std::vector<std::uint8_t> buf(48);
    for (auto &b : buf) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(crc16Step(
            sliced, std::uint16_t{0xffff}, buf.data(), buf.size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * buf.size()));
    state.SetLabel(sliced ? "slice2" : "reference");
}
BENCHMARK(BM_Crc16Kernel)->Arg(0)->Arg(1);

void
BM_GradientTransform(benchmark::State &state)
{
    Random rng(2);
    const Macroblock m = randomMab(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.gradient());
    }
}
BENCHMARK(BM_GradientTransform);

/** Per-kernel gradient transform: state.range(0) indexes
 * availableGradientKernels(); range(1) is the payload size (48 B =
 * one 4x4 mab, 768 B = one 16x16 mab, 3 KB = four 16x16 mabs). */
void
BM_GradientKernel(benchmark::State &state)
{
    const std::vector<GradientKernel> kernels =
        availableGradientKernels();
    if (static_cast<std::size_t>(state.range(0)) >= kernels.size()) {
        state.SkipWithError("kernel not available on this host");
        return;
    }
    const GradientKernel kernel =
        kernels[static_cast<std::size_t>(state.range(0))];
    const std::size_t len = static_cast<std::size_t>(state.range(1));
    Random rng(8);
    std::vector<std::uint8_t> src(len);
    for (auto &b : src) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    std::vector<std::uint8_t> dst(len);
    const Pixel base{201, 45, 96};
    for (auto _ : state) {
        gradientSubWith(kernel, dst.data(), src.data(), len, base);
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * len));
    state.SetLabel(gradientKernelName(kernel));
}
BENCHMARK(BM_GradientKernel)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 2, 1),
                   {48, 768, 3072}});

/** Per-kernel block-equality probe on identical blocks (the MACH
 * verify-on-hit worst case: every byte is compared). */
void
BM_SimilarityKernel(benchmark::State &state)
{
    const std::vector<SimilarityKernel> kernels =
        availableSimilarityKernels();
    if (static_cast<std::size_t>(state.range(0)) >= kernels.size()) {
        state.SkipWithError("kernel not available on this host");
        return;
    }
    const SimilarityKernel kernel =
        kernels[static_cast<std::size_t>(state.range(0))];
    const std::size_t len = static_cast<std::size_t>(state.range(1));
    Random rng(9);
    std::vector<std::uint8_t> a(len);
    for (auto &b : a) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    std::vector<std::uint8_t> b = a;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            blockEqualWith(kernel, a.data(), b.data(), len));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * len));
    state.SetLabel(similarityKernelName(kernel));
}
BENCHMARK(BM_SimilarityKernel)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 2, 1), {48, 768}});

/** One frame of per-mab digests, block by block: the pre-batching
 * whole-frame digest cost BM_FrameDigestBatch is measured against. */
void
BM_FrameDigest(benchmark::State &state)
{
    constexpr std::size_t kMabs = 256;
    constexpr std::size_t kMabBytes = 48;
    Random rng(10);
    std::vector<std::vector<std::uint8_t>> storage(kMabs);
    std::vector<const std::uint8_t *> blocks(kMabs);
    for (std::size_t i = 0; i < kMabs; ++i) {
        storage[i].resize(kMabBytes);
        for (auto &byte : storage[i]) {
            byte = static_cast<std::uint8_t>(rng.next());
        }
        blocks[i] = storage[i].data();
    }
    std::vector<std::uint32_t> digests(kMabs);
    for (auto _ : state) {
        for (std::size_t i = 0; i < kMabs; ++i) {
            digests[i] =
                digest32(HashKind::kCrc32, blocks[i], kMabBytes);
        }
        benchmark::DoNotOptimize(digests.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * kMabs * kMabBytes));
}
BENCHMARK(BM_FrameDigest);

/** The batched path MachWriteback::beginFrame runs: all mabs of a
 * frame through one digest32Batch dispatch (4-way interleaved CRC). */
void
BM_FrameDigestBatch(benchmark::State &state)
{
    constexpr std::size_t kMabs = 256;
    constexpr std::size_t kMabBytes = 48;
    Random rng(10);
    std::vector<std::vector<std::uint8_t>> storage(kMabs);
    std::vector<const std::uint8_t *> blocks(kMabs);
    for (std::size_t i = 0; i < kMabs; ++i) {
        storage[i].resize(kMabBytes);
        for (auto &byte : storage[i]) {
            byte = static_cast<std::uint8_t>(rng.next());
        }
        blocks[i] = storage[i].data();
    }
    std::vector<std::uint32_t> digests(kMabs);
    for (auto _ : state) {
        digest32Batch(HashKind::kCrc32, blocks.data(), kMabBytes,
                      kMabs, digests.data());
        benchmark::DoNotOptimize(digests.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * kMabs * kMabBytes));
}
BENCHMARK(BM_FrameDigestBatch);

void
BM_MachLookup(benchmark::State &state)
{
    MachConfig cfg;
    MachArray machs(cfg);
    machs.beginFrame();
    Random rng(3);
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
        entries;
    for (int i = 0; i < 2048; ++i) {
        const Macroblock m = randomMab(rng);
        const std::uint32_t d = m.digest(HashKind::kCrc32);
        machs.insertUnique(d, 0, i * 48, m.bytes(), false);
        entries.emplace_back(d, m.bytes());
        if (i % 256 == 255) {
            machs.beginFrame();
        }
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[d, truth] = entries[i++ % entries.size()];
        benchmark::DoNotOptimize(machs.lookup(d, 0, truth));
    }
}
BENCHMARK(BM_MachLookup);

void
BM_DramAccess(benchmark::State &state)
{
    DramController ctrl{DramConfig{}};
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        const MemResult r = ctrl.access(
            MemRequest{a, 64, MemOp::kRead, Requester::kVideoDecoder},
            t);
        benchmark::DoNotOptimize(r);
        t = r.finish_tick;
        a = (a + 64) % (64ULL << 20);
    }
}
BENCHMARK(BM_DramAccess);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    SetAssocCache cache("bm", cfg);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, 48, MemOp::kRead));
        a = (a + 48) % (256 * 1024);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_DccCompress(benchmark::State &state)
{
    Random rng(4);
    std::vector<Macroblock> mabs;
    for (int i = 0; i < 64; ++i) {
        mabs.push_back(randomMab(rng));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dccCompress(mabs[i++ % mabs.size()]));
    }
}
BENCHMARK(BM_DccCompress);

/** The decoder's block-store write path: one frame of 4x4 mabs
 * stored block by block into an acquired slot, then released. */
void
BM_FrameBufferWrite(benchmark::State &state)
{
    EventQueue queue;
    MemorySystem mem("bm.mem", &queue, DramConfig{});
    constexpr std::uint32_t kMabs = 256;
    constexpr std::uint32_t kMabBytes = 48;
    FrameBufferManager fbm(mem, kMabs, kMabBytes, 4096);
    Random rng(7);
    std::vector<std::vector<std::uint8_t>> blocks(kMabs);
    for (auto &b : blocks) {
        b.resize(kMabBytes);
        for (auto &byte : b) {
            byte = static_cast<std::uint8_t>(rng.next());
        }
    }
    std::uint64_t frame = 0;
    for (auto _ : state) {
        BufferSlot &slot = fbm.acquire(frame);
        for (std::uint32_t i = 0; i < kMabs; ++i) {
            fbm.storeBlock(slot.data_base + i * kMabBytes, blocks[i]);
        }
        benchmark::DoNotOptimize(fbm.loadBlock(slot.data_base));
        fbm.release(frame);
        ++frame;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * kMabs * kMabBytes));
}
BENCHMARK(BM_FrameBufferWrite);

void
BM_SyntheticFrame(benchmark::State &state)
{
    VideoProfile p = workload("V8");
    p.frame_count = 1000000;
    SyntheticVideo video(p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(video.nextFrame());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * p.mabsPerFrame()));
}
BENCHMARK(BM_SyntheticFrame);

/** The zero-alloc generation path the pipeline runs: frame contents
 * land in a reused scratch Frame (compare against BM_SyntheticFrame,
 * which constructs and returns a fresh Frame per call). */
void
BM_SyntheticFrameInto(benchmark::State &state)
{
    VideoProfile p = workload("V8");
    p.frame_count = 1000000;
    SyntheticVideo video(p);
    Frame scratch;
    for (auto _ : state) {
        video.nextFrameInto(scratch);
        benchmark::DoNotOptimize(scratch.mabCount());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * p.mabsPerFrame()));
}
BENCHMARK(BM_SyntheticFrameInto);

/** Steady-state borrow/return churn through the recycled pool,
 * against constructing an equivalent surface fresh each time
 * (BM_SurfaceFreshAlloc): the allocator cost the pool removes. */
void
BM_SurfacePoolAcquireRelease(benchmark::State &state)
{
    SurfacePool<std::vector<std::uint8_t>> pool("bm");
    // Warmup construction: one 16x16x3-byte surface.
    {
        auto &s = pool.acquire(
            [] { return std::vector<std::uint8_t>(768); });
        pool.release(s);
    }
    for (auto _ : state) {
        auto &s = pool.acquire();
        benchmark::DoNotOptimize(s.data());
        pool.release(s);
    }
}
BENCHMARK(BM_SurfacePoolAcquireRelease);

void
BM_SurfaceFreshAlloc(benchmark::State &state)
{
    for (auto _ : state) {
        std::vector<std::uint8_t> s(768);
        benchmark::DoNotOptimize(s.data());
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_SurfaceFreshAlloc);

/** Fan-out dispatch cost through the persistent pool at range(0)
 * workers (64 trivial units), against BM_ThreadSpawnJoin's
 * spawn-per-call model that parallelFor replaced. */
void
BM_ParallelForDispatch(benchmark::State &state)
{
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    // Warm the pool so spawn cost is not billed to the loop.
    parallelFor(jobs, 64, [](std::size_t) {});
    for (auto _ : state) {
        parallelFor(jobs, 64, [](std::size_t i) {
            benchmark::DoNotOptimize(i);
        });
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 64));
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(4);

void
BM_ThreadSpawnJoin(benchmark::State &state)
{
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        std::vector<std::thread> workers;
        for (unsigned w = 0; w < jobs; ++w) {
            workers.emplace_back([] {});
        }
        for (std::thread &t : workers) {
            t.join();
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * jobs));
}
BENCHMARK(BM_ThreadSpawnJoin)->Arg(1)->Arg(4);

} // namespace

BENCHMARK_MAIN();
