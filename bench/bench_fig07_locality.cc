/**
 * @file
 * Fig. 7: address locality vs value locality.
 *
 * (a) Sweeping the VD cache from 32 KB to 512 KB helps the decoding
 *     (compute/MC) accesses but cannot help the frame writeback
 *     stream, which has no address reuse - paper Sec. 4.1.
 * (b) Content similarity: ~42% of mabs recur within their own frame,
 *     ~15% within the previous 16 frames, ~43% never; matches beyond
 *     16 frames are <1%.
 */

#include "bench_util.hh"

#include "cache/set_assoc_cache.hh"
#include "core/pipeline_config.hh"
#include "video/similarity.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

/** Part (a): read-side miss rate from real pipeline runs; write-side
 * miss rate from replaying the writeback stream through a
 * write-allocating cache of the same size. */
void
cacheSweep()
{
    std::cout << "Fig. 7a: VD cache size sweep\n";
    std::cout << std::left << std::setw(12) << "size(KB)" << std::right
              << std::setw(18) << "computeMiss%" << std::setw(18)
              << "writebackMiss%" << "\n";

    for (std::uint32_t kb : {32u, 64u, 128u, 256u, 512u}) {
        // Read side: the real decoder with this cache.
        double read_miss = 0.0;
        int n = 0;
        for (const auto &key : videoMix()) {
            PipelineConfig cfg;
            cfg.profile = benchWorkload(key, 48);
            cfg.scheme = SchemeConfig::make(Scheme::kBaseline);
            cfg.decoder.cache.size_bytes = kb * 1024;
            VideoPipeline pipe(std::move(cfg));
            read_miss += pipe.run().vd_cache_miss_rate;
            ++n;
        }
        read_miss /= n;

        // Write side: the decoded-frame store stream (sequential,
        // never re-read by the decoder) through a write-allocating
        // cache: capacity cannot create reuse that is not there.
        CacheConfig wcfg;
        wcfg.size_bytes = kb * 1024;
        wcfg.line_bytes = 64;
        wcfg.assoc = 4;
        wcfg.write_allocate = true;
        SetAssocCache wcache("wb", wcfg);
        // Distinct buffers per frame, as at 4K where a single frame
        // (24 MB) dwarfs any cache: there is no reuse to find.
        const VideoProfile p = benchWorkload("V8", 8);
        const std::uint64_t frame_bytes = p.mabsPerFrame() * 48ULL;
        for (std::uint32_t f = 0; f < 8; ++f) {
            const Addr base = static_cast<Addr>(f) * frame_bytes;
            for (Addr a = 0; a < frame_bytes; a += 48) {
                wcache.access(base + a, 48, MemOp::kWrite);
            }
        }

        std::cout << std::left << std::setw(12) << kb << std::right
                  << std::fixed << std::setprecision(2) << std::setw(18)
                  << 100.0 * read_miss << std::setw(18)
                  << 100.0 * wcache.missRate() << "\n";
    }
    std::cout << "(compute misses shrink with capacity; writeback "
                 "misses stay put - paper Fig. 7a)\n\n";
}

/** Part (b): content similarity across all 16 videos. */
void
similaritySweep()
{
    std::cout << "Fig. 7b: macroblock content similarity (window 16)\n";
    std::uint64_t mabs = 0, intra = 0, inter = 0, none = 0;
    std::vector<std::uint64_t> age_hist(16, 0);

    for (const auto &wp : workloadTable()) {
        const SimilarityReport r = analyzeSimilarity(
            scaledWorkload(wp.key, frames(48)), 0, 16);
        mabs += r.mabs;
        intra += r.intra_exact;
        inter += r.inter_exact;
        none += r.none_exact;
        for (std::size_t a = 0; a < age_hist.size(); ++a) {
            age_hist[a] += r.inter_age_hist[a];
        }
    }

    const auto n = static_cast<double>(mabs);
    Report rep("bench_fig07_locality", "Fig. 7",
               "address locality vs value locality");
    rep.metric("intraMatchShare", 0.42, intra / n);
    rep.metric("interMatchShare", 0.15, inter / n);
    rep.metric("noMatchShare", 0.43, none / n);
    std::cout << "  Intra-Match " << pct(intra / n)
              << "   (paper ~42%)\n";
    std::cout << "  Inter-Match " << pct(inter / n)
              << "   (paper ~15%)\n";
    std::cout << "  No Match    " << pct(none / n)
              << "   (paper ~43%)\n";

    std::cout << "  inter matches by age (frames back): ";
    for (std::size_t a = 0; a < 8; ++a) {
        std::cout << a + 1 << ":"
                  << pct(static_cast<double>(age_hist[a]) / n) << " ";
    }
    std::uint64_t old_matches = 0;
    for (std::size_t a = 8; a < 16; ++a) {
        old_matches += age_hist[a];
    }
    std::cout << "9-16:" << pct(static_cast<double>(old_matches) / n)
              << "\n";
}

} // namespace

int
main()
{
    header("Fig. 7: address locality vs value locality",
           "bigger caches fix compute reads, not the writeback "
           "stream; 57% of mabs recur in the last 16 frames");
    cacheSweep();
    similaritySweep();
    return 0;
}
