/**
 * @file
 * Fig. 10: display caching.
 *
 * (c) Display-cache size sensitivity: 16 KB suffices.
 * (d) Under the pointer+digest layout, ~38% of gabs are served by
 *     digest (MACH buffer) and ~62% by pointer; >45% of pointer
 *     fetches would fragment into two memory requests.
 * (e) The display cache + MACH buffer together save ~33.5% of the
 *     DC's memory accesses vs the baseline linear scan (~20% from
 *     the MACH buffer, ~15.5% from the display cache); the naive
 *     pointer layout *adds* >60% instead.
 */

#include "bench_util.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

std::uint64_t
dcRequests(const SchemeConfig &scheme, std::uint32_t dcache_kb = 16,
           std::uint32_t mach_buffer_entries = 2048)
{
    std::uint64_t total = 0;
    for (const auto &key : videoMix()) {
        PipelineConfig cfg;
        cfg.profile = benchWorkload(key, 48);
        cfg.scheme = scheme;
        cfg.display.display_cache.size_bytes = dcache_kb * 1024;
        cfg.display.mach_buffer_entries = mach_buffer_entries;
        VideoPipeline pipe(std::move(cfg));
        total += pipe.run().display.dram_requests;
    }
    return total;
}

} // namespace

int
main()
{
    header("Fig. 10: display cache and MACH buffer",
           "16 KB display cache suffices; combined savings ~33.5% of "
           "DC accesses; naive pointer layout would *add* >60%");

    Report rep("bench_fig10_display", "Fig. 10",
               "display cache and MACH buffer");

    // Baseline: linear scan.
    const std::uint64_t base =
        dcRequests(SchemeConfig::make(Scheme::kRaceToSleep));

    // Naive pointer layout, no display-side hardware (Sec. 5 problem
    // statement).
    SchemeConfig naive = SchemeConfig::make(Scheme::kGab);
    naive.layout = LayoutKind::kPointer;
    naive.display_cache = false;
    naive.mach_buffer = false;
    const std::uint64_t naive_req = dcRequests(naive);

    // Display cache only.
    SchemeConfig cache_only = naive;
    cache_only.display_cache = true;
    const std::uint64_t cache_req = dcRequests(cache_only);

    // Full scheme: pointer+digest layout, display cache + MACH buffer.
    const std::uint64_t full_req =
        dcRequests(SchemeConfig::make(Scheme::kGab));

    auto rel = [&](std::uint64_t r) {
        return static_cast<double>(r) / static_cast<double>(base);
    };

    rep.metric("naivePointerRelRequests", 1.6, rel(naive_req));
    rep.metric("fullSchemeRelRequests", 0.665, rel(full_req));

    std::cout << "Fig. 10e: DC memory requests vs baseline scan\n";
    std::cout << "  baseline linear scan         1.000\n";
    std::cout << std::fixed << std::setprecision(3);
    std::cout << "  pointer layout, no hardware  " << rel(naive_req)
              << "  (paper: >1.6x)\n";
    std::cout << "  + display cache              " << rel(cache_req)
              << "\n";
    std::cout << "  + MACH buffer (full scheme)  " << rel(full_req)
              << "  (paper: ~0.665)\n\n";

    // Fig. 10c: display-cache size sweep under the full scheme.
    std::cout << "Fig. 10c: display-cache size sensitivity\n";
    std::cout << "  size(KB)   DC requests (norm. to baseline)\n";
    for (std::uint32_t kb : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const std::uint64_t req =
            dcRequests(SchemeConfig::make(Scheme::kGab), kb);
        std::cout << "  " << std::left << std::setw(10) << kb
                  << std::right << rel(req) << "\n";
    }
    std::cout << "(the knee sits at/below 16 KB - paper Fig. 10c)\n\n";

    // Fig. 10d: digest-vs-pointer split and fragmentation.
    std::uint64_t digest_recs = 0, pointer_recs = 0, fragmented = 0;
    for (const auto &key : videoMix()) {
        const auto r = simulateScheme(
            benchWorkload(key, 48), SchemeConfig::make(Scheme::kGab));
        digest_recs += r.display.digest_records;
        pointer_recs += r.display.pointer_records;
        fragmented += r.display.fragmented_fetches;
    }
    const double recs =
        static_cast<double>(digest_recs + pointer_recs);
    rep.metric("digestRecordShare", 0.38, digest_recs / recs);
    rep.metric("pointerRecordShare", 0.62, pointer_recs / recs);
    rep.metric("fragmentedPointerShare", 0.45,
               static_cast<double>(fragmented) /
                   static_cast<double>(pointer_recs));

    std::cout << "Fig. 10d: gab record types at the display\n";
    std::cout << "  indexed by digest  " << pct(digest_recs / recs)
              << "  (paper ~38%)\n";
    std::cout << "  indexed by pointer " << pct(pointer_recs / recs)
              << "  (paper ~62%)\n";
    std::cout << "  pointer fetches straddling two lines: "
              << pct(static_cast<double>(fragmented) /
                     static_cast<double>(pointer_recs))
              << "  (paper >45%)\n";
    return 0;
}
