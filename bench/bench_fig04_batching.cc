/**
 * @file
 * Fig. 4: effects of Batch Decoding, Racing, and Race-to-Sleep on
 * the per-frame time/energy state mix.
 *
 * Paper reference points: batching 16 frames cuts transition energy
 * ~86% and decoder energy ~20% (Fig. 4a/b); racing increases the
 * transition share a lot, race-to-sleep removes it again and spends
 * the most time in S3 (Fig. 4c/d).
 */

#include "bench_util.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

struct Agg
{
    TimeBreakdown time;
    double e_exec = 0.0;
    double e_sleep = 0.0;
    double e_slack = 0.0;
    double e_trans = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t drops = 0;
};

Agg
runScheme(Scheme s)
{
    Agg agg;
    for (const auto &key : videoMix()) {
        const PipelineResult r =
            simulateScheme(benchWorkload(key),
                           SchemeConfig::make(s, 16));
        agg.time += r.vd_time;
        agg.e_exec += r.energy.vd_processing;
        agg.e_sleep += r.energy.sleep;
        agg.e_slack += r.energy.short_slack;
        agg.e_trans += r.energy.transition;
        agg.frames += r.frames;
        agg.drops += r.drops;
    }
    return agg;
}

void
row(const char *name, const Agg &a)
{
    const auto n = static_cast<double>(a.frames);
    std::cout << std::left << std::setw(15) << name << std::right
              << std::fixed << std::setprecision(3) << std::setw(9)
              << ticksToMs(a.time.execution) / n << std::setw(9)
              << ticksToMs(a.time.short_slack) / n << std::setw(9)
              << ticksToMs(a.time.transition) / n << std::setw(9)
              << ticksToMs(a.time.s1) / n << std::setw(9)
              << ticksToMs(a.time.s3) / n << "  |" << std::setw(9)
              << 1e3 * a.e_exec / n << std::setw(9)
              << 1e3 * a.e_slack / n << std::setw(9)
              << 1e3 * a.e_trans / n << std::setw(9)
              << 1e3 * a.e_sleep / n << std::setw(7) << a.drops
              << "\n";
}

} // namespace

int
main()
{
    header("Fig. 4: Batching / Racing / Race-to-Sleep state mix",
           "batching cuts transition energy ~86%; racing inflates it; "
           "race-to-sleep maximizes S3 time");

    std::cout << std::left << std::setw(15) << "scheme" << std::right
              << std::setw(9) << "exec" << std::setw(9) << "slack"
              << std::setw(9) << "trans" << std::setw(9) << "S1"
              << std::setw(9) << "S3" << "  |" << std::setw(9)
              << "eExec" << std::setw(9) << "eSlack" << std::setw(9)
              << "eTrans" << std::setw(9) << "eSleep" << std::setw(7)
              << "drops" << "\n"
              << std::left << std::setw(15) << " " << std::right
              << "  (ms per frame)                             |"
              << "  (mJ per frame)\n";

    Report rep("bench_fig04_batching", "Fig. 4",
               "batching/racing/race-to-sleep state mix");

    const Agg base = runScheme(Scheme::kBaseline);
    const Agg batch = runScheme(Scheme::kBatching);
    const Agg race = runScheme(Scheme::kRacing);
    const Agg rts = runScheme(Scheme::kRaceToSleep);

    row("Baseline", base);
    row("Batching x16", batch);
    row("Racing", race);
    row("Race-to-Sleep", rts);

    rep.metric("batchingTransitionEnergyCut", 0.86,
               1.0 - batch.e_trans / base.e_trans);
    rep.metric("racingTransitionEnergyGrowth", 0.0,
               race.e_trans / base.e_trans);
    rep.metric("raceToSleepS3MsPerFrame", 0.0,
               ticksToMs(rts.time.s3) /
                   static_cast<double>(rts.frames));

    std::cout << "\nbatching transition-energy cut: "
              << pct(1.0 - batch.e_trans / base.e_trans)
              << " (paper ~86%)\n";
    std::cout << "racing transition-energy growth: "
              << std::fixed << std::setprecision(1)
              << race.e_trans / base.e_trans << "x\n";
    std::cout << "race-to-sleep S3 time per frame: "
              << ticksToMs(rts.time.s3) /
                     static_cast<double>(rts.frames)
              << " ms vs baseline "
              << ticksToMs(base.time.s3) /
                     static_cast<double>(base.frames)
              << " ms\n";
    return 0;
}
