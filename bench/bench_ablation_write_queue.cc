/**
 * @file
 * Ablation: posted-write queue depth in the memory controller.
 *
 * The paper's controller model (DRAMSim2) reorders writes; ours
 * issues them in order by default, which makes the racing/MACH
 * Act/Pre effects conservative.  This bench quantifies how much a
 * row-sorting write queue recovers for the baseline and the full
 * GAB pipeline - and verifies the paper's qualitative results do not
 * depend on the scheduler.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vstream;
    using namespace vstream::bench;

    header("Ablation: DRAM posted-write queue depth",
           "a strong write scheduler absorbs racing's Act/Pre "
           "benefit, but GAB keeps winning at every depth");

    std::cout << std::left << std::setw(8) << "depth" << std::right
              << std::setw(11) << "L energy" << std::setw(11)
              << "S energy" << std::setw(11) << "G energy"
              << std::setw(12) << "L acts/f" << std::setw(12)
              << "G acts/f" << "\n";

    Report rep("bench_ablation_write_queue", "Sec. 7",
               "DRAM posted-write queue depth");

    double l0 = 0.0;
    for (std::uint32_t depth : {0u, 8u, 32u, 128u}) {
        double le = 0.0, se = 0.0, ge = 0.0;
        std::uint64_t l_acts = 0, g_acts = 0, frames = 0;
        for (const auto &key : videoMix()) {
            for (Scheme s : {Scheme::kBaseline, Scheme::kRaceToSleep,
                             Scheme::kGab}) {
                PipelineConfig cfg;
                cfg.profile = benchWorkload(key);
                cfg.scheme = SchemeConfig::make(s);
                cfg.dram.write_queue_depth = depth;
                VideoPipeline pipe(std::move(cfg));
                const PipelineResult r = pipe.run();
                if (s == Scheme::kBaseline) {
                    le += r.totalEnergy();
                    l_acts += r.dram_total.activations;
                    frames += r.frames;
                } else if (s == Scheme::kRaceToSleep) {
                    se += r.totalEnergy();
                } else {
                    ge += r.totalEnergy();
                    g_acts += r.dram_total.activations;
                }
            }
        }
        if (depth == 0) {
            l0 = le;
        }
        const std::string d = "depth" + std::to_string(depth);
        rep.metric(d + ".baselineNormalized", 0.0, le / l0);
        rep.metric(d + ".raceToSleepNormalized", 0.0, se / l0);
        rep.metric(d + ".gabNormalized", 0.0, ge / l0);

        std::cout << std::left << std::setw(8) << depth << std::right
                  << std::fixed << std::setprecision(4) << std::setw(11)
                  << le / l0 << std::setw(11) << se / l0
                  << std::setw(11) << ge / l0 << std::setprecision(0)
                  << std::setw(12)
                  << static_cast<double>(l_acts) /
                         static_cast<double>(frames)
                  << std::setw(12)
                  << static_cast<double>(g_acts) /
                         static_cast<double>(frames)
                  << "\n";
    }

    std::cout
        << "\n(normalized to depth-0 baseline; depth 0 is the "
           "calibrated configuration used for the paper "
           "reproductions.  Finding: with a deep row-sorting write "
           "queue the *baseline* recovers most of racing's Act/Pre "
           "saving - the race-to-sleep memory benefit presumes a "
           "starvation-bounded controller, exactly the platform the "
           "paper models - while MACH's traffic elimination keeps "
           "its full advantage at every depth.)\n";
    return 0;
}
