/**
 * @file
 * Fig. 11 (headline result): normalized energy of the six schemes
 * across the 16 videos, with the paper's nine-way breakdown, plus
 * Table 1 (workloads) and Table 2 (simulation configuration).
 *
 * Paper reference points: Batching saves ~7% on average, Racing alone
 * *increases* energy (~+12%), Race-to-Sleep saves 11.3%, MAB 12.5%,
 * GAB 21% (up to 33% on V8) - with zero frame drops for all batched
 * schemes.
 *
 * Environment: VSTREAM_FRAMES (default 120) caps frames per video;
 * VSTREAM_WIDTH/VSTREAM_HEIGHT override the simulated resolution.
 * `--jobs N` (or VSTREAM_JOBS) fans the 16x6 video/scheme units
 * across worker threads; output is byte-identical at any job count.
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/video_pipeline.hh"
#include "video/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace vstream;
    using vstream::bench::envU32;

    const std::uint32_t frames = envU32("VSTREAM_FRAMES", 120);
    const std::uint32_t width = envU32("VSTREAM_WIDTH", 0);
    const std::uint32_t height = envU32("VSTREAM_HEIGHT", 0);
    const unsigned n_jobs = bench::jobs(argc, argv);

    bench::Report rep("bench_fig11_energy", "Fig. 11",
                      "normalized energy, 16 videos x 6 schemes");

    std::cout << "=== Fig. 11: normalized energy, 16 videos x 6 schemes "
                 "===\n";
    std::cout << "(paper: B ~0.93, R ~1.12, S ~0.887, M ~0.875, G ~0.79 "
                 "on average; lower is better)\n\n";

    // --- Table 1 -------------------------------------------------------
    std::cout << "Table 1: workload videos (" << frames
              << " frames simulated per video)\n";
    std::cout << std::left << std::setw(5) << "key" << std::setw(18)
              << "name" << std::setw(26) << "description" << std::right
              << std::setw(9) << "#frames" << "\n";
    for (const auto &p : workloadTable()) {
        std::cout << std::left << std::setw(5) << p.key << std::setw(18)
                  << p.name << std::setw(26) << p.description
                  << std::right << std::setw(9) << p.frame_count << "\n";
    }

    // --- Table 2 -------------------------------------------------------
    {
        PipelineConfig cfg;
        cfg.profile = scaledWorkload("V1", frames, width, height);
        cfg.finalize();
        std::cout << "\nTable 2: simulation configuration\n";
        std::cout << "  DRAM    : " << cfg.dram.channels << " channels, "
                  << cfg.dram.ranks_per_channel << " rank/ch, "
                  << cfg.dram.banks_per_rank << " banks/rank, tCL/tRP/tRCD "
                  << cfg.dram.t_cl / sim_clock::ns << "/"
                  << cfg.dram.t_rp / sim_clock::ns << "/"
                  << cfg.dram.t_rcd / sim_clock::ns
                  << " ns, RoRaBaCoCh\n";
        std::cout << "  VD      : "
                  << cfg.decoder.power.p_active_low_w << " W @ "
                  << cfg.decoder.power.freq_low_hz / 1e6 << " MHz; "
                  << cfg.decoder.power.p_active_high_w << " W @ "
                  << cfg.decoder.power.freq_high_hz / 1e6 << " MHz\n";
        std::cout << "  Display : " << cfg.profile.width << "x"
                  << cfg.profile.height << " (scaled from 3840x2160) @ "
                  << cfg.display.refresh_hz << " Hz, "
                  << cfg.display.power_w << " W\n";
        std::cout << "  MACH    : " << cfg.mach.num_machs << " MACHs x "
                  << cfg.mach.entries << " entries, " << cfg.mach.ways
                  << "-way; display cache "
                  << cfg.display.display_cache.size_bytes / 1024
                  << " KB; MACH buffer "
                  << cfg.display.mach_buffer_entries << " entries\n\n";
    }

    // --- Fig. 11 sweep ---------------------------------------------------
    const std::vector<Scheme> schemes = {
        Scheme::kBaseline,    Scheme::kBatching, Scheme::kRacing,
        Scheme::kRaceToSleep, Scheme::kMab,      Scheme::kGab,
    };

    std::cout << std::left << std::setw(5) << "key" << std::right;
    for (Scheme s : schemes) {
        std::cout << std::setw(9) << schemeKey(s);
    }
    std::cout << std::setw(10) << "drops(L)" << std::setw(10)
              << "drops(S)" << "\n";

    std::map<Scheme, double> norm_sum;
    std::map<Scheme, EnergyBreakdown> breakdown_sum;
    double baseline_total_all = 0.0;
    bool all_ok = true;
    std::uint64_t collisions = 0;

    // Fan the 16x6 video/scheme units across workers.  Each unit owns
    // a private pipeline, and results land in canonical video-major /
    // scheme-minor order, so the serial consumption loop below prints
    // the exact bytes a --jobs 1 run would.
    const auto &table = workloadTable();
    const std::size_t n_schemes = schemes.size();
    const std::vector<PipelineResult> results = parallelMap(
        n_jobs, table.size() * n_schemes, [&](std::size_t u) {
            const VideoProfile p = scaledWorkload(
                table[u / n_schemes].key, frames, width, height);
            return simulateScheme(
                p, SchemeConfig::make(schemes[u % n_schemes]));
        });

    for (std::size_t vi = 0; vi < table.size(); ++vi) {
        const auto &wp = table[vi];
        const VideoProfile p =
            scaledWorkload(wp.key, frames, width, height);
        double baseline = 0.0;
        std::uint32_t drops_l = 0, drops_s = 0;

        std::cout << std::left << std::setw(5) << p.key << std::right
                  << std::fixed << std::setprecision(3);
        for (std::size_t si = 0; si < n_schemes; ++si) {
            const Scheme s = schemes[si];
            const PipelineResult &r = results[vi * n_schemes + si];
            if (s == Scheme::kBaseline) {
                baseline = r.totalEnergy();
                drops_l = r.drops;
                baseline_total_all += baseline;
            }
            if (s == Scheme::kRaceToSleep) {
                drops_s = r.drops;
            }
            norm_sum[s] += r.totalEnergy() / baseline;
            breakdown_sum[s] += r.energy;
            rep.video(p.key, schemeKey(s) + "EnergyJ",
                      r.totalEnergy());
            rep.video(p.key, schemeKey(s) + "Normalized",
                      r.totalEnergy() / baseline);
            collisions += r.mach.collisions_undetected;
            // A frame-checksum mismatch is acceptable only when an
            // undetected digest collision explains it (Sec. 6.3; the
            // CO-MACH configuration eliminates these).
            all_ok = all_ok &&
                     (r.all_verified || r.mach.collisions_undetected > 0);
            std::cout << std::setw(9) << r.totalEnergy() / baseline;
        }
        std::cout << std::setw(10) << drops_l << std::setw(10) << drops_s
                  << "\n";
    }

    const double n = static_cast<double>(workloadTable().size());
    const std::map<Scheme, double> paper_avg = {
        {Scheme::kBaseline, 1.0},  {Scheme::kBatching, 0.93},
        {Scheme::kRacing, 1.12},   {Scheme::kRaceToSleep, 0.887},
        {Scheme::kMab, 0.875},     {Scheme::kGab, 0.790},
    };
    std::cout << std::left << std::setw(5) << "Avg" << std::right;
    for (Scheme s : schemes) {
        std::cout << std::setw(9) << norm_sum[s] / n;
        rep.metric(schemeKey(s) + "NormalizedAvg", paper_avg.at(s),
                   norm_sum[s] / n);
    }
    std::cout << "\n\npaper avg:  L 1.000, B ~0.93, R ~1.12, S 0.887, "
                 "M 0.875, G 0.790\n";

    std::cout << "\nAggregate energy breakdown, normalized to baseline "
                 "total (Fig. 11 stacking):\n"
              << std::left << std::setw(5) << " "
              << EnergyBreakdown::headerRow() << "\n";
    for (Scheme s : schemes) {
        std::cout << std::left << std::setw(5) << schemeKey(s)
                  << breakdown_sum[s].normalizedTo(baseline_total_all)
                         .row()
                  << "\n";
    }

    std::cout << "\nlossless display verification: "
              << (all_ok ? "PASS" : "FAIL") << " (" << collisions
              << " undetected CRC32 collisions across all runs; paper "
                 "observes ~1 colliding block per 200 frames at 4K)\n";
    return all_ok ? 0 : 1;
}
