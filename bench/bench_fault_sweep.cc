/**
 * @file
 * Robustness sweep: network stall length vs. energy and drops.
 *
 * The paper's evaluation assumes an always-full streaming buffer; this
 * bench measures what race-to-sleep batching costs when that
 * assumption breaks.  A one-shot network stall of increasing length is
 * injected into an explicit arrival model (constant-bandwidth link
 * with mild lognormal jitter) and the pipeline degrades gracefully:
 * underruns repeat the previous frame at the DC, batches shrink to
 * whatever has arrived, and the sleep governor keeps racing on the
 * rest.  Two extra points exercise the other fault classes: DRAM
 * transient timeouts (bounded retries, energy re-charged per retry)
 * and MACH digest collisions with and without verify-on-hit.
 *
 * Every seed is fixed, so two runs of this bench produce identical
 * JSON reports (modulo wall_clock_seconds) - the CI fault-smoke job
 * asserts exactly that.
 */

#include "bench_util.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

struct Row
{
    std::string label;
    double energy_mj = 0.0;
    std::uint32_t drops = 0;
    std::uint64_t underruns = 0;
    std::uint64_t repeats = 0;
    std::uint64_t shrinks = 0;
    std::uint64_t retries = 0;
    std::uint64_t false_hits = 0;
    FaultTotals faults;
};

PipelineConfig
faultConfig(const VideoProfile &profile)
{
    PipelineConfig cfg;
    cfg.profile = profile;
    cfg.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    cfg.arrival.enabled = true;
    cfg.arrival.bandwidth_mbps = 2.0;
    cfg.arrival.jitter_frac = 0.25;
    cfg.arrival.seed = 0x90b0517u; // fixed: deterministic timeline
    cfg.faults.seed = 0xfa017 /* schedule seed, fixed */;
    return cfg;
}

Row
runPoint(const std::string &label, PipelineConfig cfg)
{
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();
    Row row;
    row.label = label;
    row.energy_mj = r.totalEnergy() * 1e3;
    row.drops = r.drops;
    row.underruns = r.underruns;
    row.repeats = r.display.underrun_repeats;
    row.shrinks = r.batch_shrinks;
    row.retries = r.dram_retries;
    row.false_hits = r.mach.false_hits;
    row.faults = r.faults;
    return row;
}

} // namespace

int
main()
{
    header("Fault sweep: stall length vs. energy and drops",
           "robustness extension - the paper assumes a pristine "
           "network/memory; this sweeps injected faults");

    const VideoProfile profile = benchWorkload("V8");
    std::vector<Row> rows;

    // --- stall-length sweep (one-shot stall mid-playback) -------------
    for (const Tick stall_ms : {Tick(0), Tick(120), Tick(300), Tick(600)}) {
        PipelineConfig cfg = faultConfig(profile);
        if (stall_ms > 0) {
            FaultRule rule = parseFaultRule(
                FaultClass::kNetworkStall,
                "at=400ms,len=" + std::to_string(stall_ms) + "ms");
            cfg.faults.rules.push_back(rule);
        }
        rows.push_back(runPoint(
            "stall " + std::to_string(stall_ms) + " ms", cfg));
    }

    // --- DRAM transient timeouts (bounded retry) -----------------------
    {
        PipelineConfig cfg = faultConfig(profile);
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDramTimeout, "p=0.001"));
        rows.push_back(runPoint("dram p=1e-3", cfg));
    }

    // --- MACH digest collisions, caught by verify-on-hit ---------------
    {
        PipelineConfig cfg = faultConfig(profile);
        cfg.scheme = SchemeConfig::make(Scheme::kGab);
        cfg.mach.verify_on_hit = true;
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDigestCollision, "p=0.01"));
        rows.push_back(runPoint("digest p=1e-2 +verify", cfg));
    }

    std::cout << std::left << std::setw(24) << "point" << std::right
              << std::setw(12) << "energy mJ" << std::setw(7)
              << "drops" << std::setw(10) << "underrun" << std::setw(9)
              << "repeats" << std::setw(9) << "shrinks" << std::setw(9)
              << "retries" << std::setw(10) << "injected" << "\n";
    std::cout << std::fixed << std::setprecision(2);
    for (const Row &row : rows) {
        std::cout << std::left << std::setw(24) << row.label
                  << std::right << std::setw(12) << row.energy_mj
                  << std::setw(7) << row.drops << std::setw(10)
                  << row.underruns << std::setw(9) << row.repeats
                  << std::setw(9) << row.shrinks << std::setw(9)
                  << row.retries << std::setw(10)
                  << row.faults.injected << "\n";
    }
    std::cout << "\n(longer stalls cost drops, not correctness: the "
                 "DC repeats the last frame, batches shrink, and "
                 "energy moves with the extra repeats and retries)\n";

    Report rep("bench_fault_sweep", "robustness",
               "stall length vs. energy/drops under fault injection");
    const Row &clean = rows.front();
    rep.metric("cleanEnergyMj", 0.0, clean.energy_mj);
    for (const Row &row : rows) {
        rep.faults(row.faults);
        rep.video(row.label, "energyMj", row.energy_mj);
        rep.video(row.label, "drops", static_cast<double>(row.drops));
        rep.video(row.label, "underruns",
                  static_cast<double>(row.underruns));
        rep.video(row.label, "underrunRepeats",
                  static_cast<double>(row.repeats));
        rep.video(row.label, "batchShrinks",
                  static_cast<double>(row.shrinks));
        rep.video(row.label, "dramRetries",
                  static_cast<double>(row.retries));
        rep.video(row.label, "machFalseHits",
                  static_cast<double>(row.false_hits));
        rep.video(row.label, "faultsInjected",
                  static_cast<double>(row.faults.injected));
        rep.video(row.label, "faultsRecovered",
                  static_cast<double>(row.faults.recovered));
        rep.video(row.label, "faultsAbandoned",
                  static_cast<double>(row.faults.abandoned));
    }
    return 0;
}
