/**
 * @file
 * Ablation: whole-frame transaction elimination vs block-level MACH.
 *
 * The paper's related work (Sec. 7) covers industrial checksum
 * schemes ([9] ARM Transaction Elimination, [35]) that skip the
 * scan-out of frames identical to the one on screen.  They only fire
 * at whole-frame granularity, so they shine on static content and do
 * nothing for ordinary motion - whereas MACH's block-level reuse
 * works on both, and the two compose.
 */

#include "bench_util.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

struct Cell
{
    double dc_requests = 0.0;
    double energy = 0.0;
    std::uint64_t eliminated = 0;
};

Cell
run(const VideoProfile &p, bool te, bool mach)
{
    SchemeConfig scheme =
        SchemeConfig::make(mach ? Scheme::kGab : Scheme::kRaceToSleep);
    scheme.transaction_elimination = te;
    const PipelineResult r = simulateScheme(p, scheme);
    return Cell{static_cast<double>(r.display.dram_requests),
                r.totalEnergy(), r.display.eliminated_frames};
}

void
table(const char *title, const VideoProfile &p, Report &rep)
{
    const Cell none = run(p, false, false);
    const Cell te = run(p, true, false);
    const Cell mach = run(p, false, true);
    const Cell both = run(p, true, true);

    rep.video(p.key, "teRelRequests",
              te.dc_requests / none.dc_requests);
    rep.video(p.key, "machRelRequests",
              mach.dc_requests / none.dc_requests);
    rep.video(p.key, "bothRelRequests",
              both.dc_requests / none.dc_requests);
    rep.video(p.key, "teEliminatedFrames",
              static_cast<double>(te.eliminated));

    std::cout << title << " (" << p.key << ", static-frame rate "
              << std::fixed << std::setprecision(2)
              << p.static_frame_rate << ")\n";
    std::cout << std::left << std::setw(22) << "  configuration"
              << std::right << std::setw(13) << "dcRequests"
              << std::setw(10) << "energy" << std::setw(13)
              << "eliminated" << "\n";
    auto row = [&](const char *name, const Cell &c) {
        std::cout << "  " << std::left << std::setw(20) << name
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(13) << c.dc_requests / none.dc_requests
                  << std::setw(10) << c.energy / none.energy
                  << std::setw(13) << c.eliminated << "\n";
    };
    row("neither", none);
    row("TE only", te);
    row("MACH (gab) only", mach);
    row("TE + MACH", both);
    std::cout << "\n";
}

} // namespace

int
main()
{
    header("Ablation: transaction elimination vs MACH",
           "whole-frame checksum skipping only fires on static "
           "content; MACH works at block granularity and composes "
           "with it");

    Report rep("bench_ablation_te", "Sec. 7",
               "transaction elimination vs MACH");

    // Ordinary motion content: TE never fires.
    table("moving content", benchWorkload("V5"), rep);

    // Static-heavy content (paused webcam / test card).
    VideoProfile static_heavy = benchWorkload("V4");
    static_heavy.static_frame_rate = 0.35;
    table("static-heavy content", static_heavy, rep);
    return 0;
}
