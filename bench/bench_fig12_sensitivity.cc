/**
 * @file
 * Fig. 12: sensitivity studies and the collision analysis.
 *
 * (a) Extra frame buffers (beyond triple buffering) vs the number of
 *     MACHs: the paper picks 8; 16 MACHs would cost ~300 MB at 4K.
 * (b) Energy vs MACH-buffer entries: 2K is the chosen trade-off.
 * (c) mab size sweep on V14: 4x4 is optimal.
 * (d) CRC32 / MD5 / SHA1 digests behave alike; CRC32 collides about
 *     once per 200 frames at 4K, and CO-MACH (CRC32||CRC16) pushes
 *     collisions to zero without extra memory bandwidth.
 */

#include "bench_util.hh"

#include "hash/hasher.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

void
machCountSweep(Report &rep)
{
    std::cout << "Fig. 12a: extra frame buffers vs number of MACHs "
                 "(GAB, batch 16)\n";
    std::cout << "  #MACHs   peakBuffers   extra-vs-3   4K-equivalent "
                 "extra MB\n";
    for (std::uint32_t machs : {1u, 2u, 4u, 8u, 16u}) {
        PipelineConfig cfg;
        cfg.profile = benchWorkload("V8", 48);
        cfg.scheme = SchemeConfig::make(Scheme::kGab);
        cfg.mach.num_machs = machs;
        VideoPipeline pipe(std::move(cfg));
        const PipelineResult r = pipe.run();
        const std::uint32_t extra =
            r.peak_buffers > 3 ? r.peak_buffers - 3 : 0;
        if (machs == 8u) {
            rep.metric("peakBuffersAt8Machs", 0.0, r.peak_buffers);
        }
        // A 4K frame buffer is 24 MB.
        std::cout << "  " << std::left << std::setw(9) << machs
                  << std::setw(14) << r.peak_buffers << std::setw(13)
                  << extra << std::right << extra * 24 << "\n";
    }
    std::cout << "(grows with the reference window; the paper picks "
                 "8 MACHs, as 16 costs ~300 MB at 4K)\n\n";
}

void
machBufferSweep(unsigned n_jobs)
{
    std::cout << "Fig. 12b: MACH-buffer entries vs energy and DC "
                 "requests (GAB)\n";
    std::cout << "  entries   energy(norm)   dcRequests(norm)   "
                 "bufferMiss%\n";
    const std::vector<std::uint32_t> entry_sweep = {256u, 512u, 1024u,
                                                    2048u, 4096u};
    const std::vector<std::string> mix = videoMix();
    // One pipeline per (entries, video) cell, fanned across workers;
    // the accumulation below walks the results in canonical order.
    const std::vector<PipelineResult> results = parallelMap(
        n_jobs, entry_sweep.size() * mix.size(), [&](std::size_t u) {
            const std::uint32_t entries = entry_sweep[u / mix.size()];
            PipelineConfig cfg;
            cfg.profile = benchWorkload(mix[u % mix.size()], 48);
            cfg.scheme = SchemeConfig::make(Scheme::kGab);
            cfg.display.mach_buffer_entries = entries;
            // Scale the buffer's power with its capacity (96 KB at
            // 2K entries per Table 2).
            cfg.mach.mach_buffer_power_w = 25.4e-3 * entries / 2048.0;
            VideoPipeline pipe(std::move(cfg));
            return pipe.run();
        });
    double base_e = 0.0, base_req = 0.0;
    for (std::size_t ei = 0; ei < entry_sweep.size(); ++ei) {
        const std::uint32_t entries = entry_sweep[ei];
        double e = 0.0, req = 0.0, hits = 0.0, misses = 0.0;
        for (std::size_t vi = 0; vi < mix.size(); ++vi) {
            const PipelineResult &r = results[ei * mix.size() + vi];
            e += r.totalEnergy();
            req += static_cast<double>(r.display.dram_requests);
            hits += static_cast<double>(r.mach_buffer_hits);
            misses += static_cast<double>(r.mach_buffer_misses);
        }
        if (entries == 256u) {
            base_e = e;
            base_req = req;
        }
        std::cout << "  " << std::left << std::setw(10) << entries
                  << std::setw(15) << std::fixed
                  << std::setprecision(4) << e / base_e
                  << std::setw(19) << req / base_req << std::right
                  << std::setprecision(1)
                  << 100.0 * misses / std::max(1.0, hits + misses)
                  << "\n";
    }
    std::cout << "(2K entries = the paper's 96 KB design point)\n\n";
}

void
mabSizeSweep()
{
    std::cout << "Fig. 12c: mab size sweep on V14 (GAB writeback "
                 "savings)\n";
    std::cout << "  mab     bytes   wbSavings%\n";
    for (std::uint32_t dim : {2u, 4u, 8u, 16u}) {
        VideoProfile p = benchWorkload("V14", 48);
        p.mab_dim = dim;
        p.validate();
        const auto r =
            simulateScheme(p, SchemeConfig::make(Scheme::kGab));
        const std::uint32_t mab_bytes = dim * dim * 3;
        std::cout << "  " << std::left << std::setw(2) << dim << "x"
                  << std::setw(5) << dim << std::setw(8) << mab_bytes
                  << std::right << std::fixed << std::setprecision(1)
                  << 100.0 * r.writeback.savings(mab_bytes) << "\n";
    }
    std::cout << "(small blocks repeat more but pay more metadata; "
                 "large blocks rarely match - 4x4 wins, paper "
                 "Fig. 12c)\n\n";
}

void
hashStudy(Report &rep, unsigned n_jobs)
{
    std::cout << "Fig. 12d: hash functions and collisions (GAB)\n";
    std::cout << "  hash     frames   undetected   detected(CO-MACH "
                 "off/on)\n";
    // Four configurations (three plain digests + CO-MACH) x 16
    // videos, one pipeline per cell.  Config index 3 is CO-MACH.
    const std::vector<HashKind> kinds = {HashKind::kCrc32,
                                         HashKind::kMd5,
                                         HashKind::kSha1};
    const auto &table = workloadTable();
    const std::vector<PipelineResult> results = parallelMap(
        n_jobs, (kinds.size() + 1) * table.size(), [&](std::size_t u) {
            const std::size_t ci = u / table.size();
            PipelineConfig cfg;
            cfg.profile =
                scaledWorkload(table[u % table.size()].key, frames(48));
            cfg.scheme = SchemeConfig::make(Scheme::kGab);
            if (ci < kinds.size()) {
                cfg.mach.hash = kinds[ci];
            } else {
                cfg.scheme.co_mach = true;
            }
            VideoPipeline pipe(std::move(cfg));
            return pipe.run();
        });

    for (std::size_t ci = 0; ci < kinds.size(); ++ci) {
        std::uint64_t frames_total = 0;
        std::uint64_t undetected = 0;
        for (std::size_t vi = 0; vi < table.size(); ++vi) {
            const PipelineResult &r = results[ci * table.size() + vi];
            frames_total += r.frames;
            undetected += r.mach.collisions_undetected;
        }
        std::cout << "  " << std::left << std::setw(9)
                  << hashKindName(kinds[ci]) << std::setw(9)
                  << frames_total << std::setw(13) << undetected
                  << "-\n";
    }

    // CO-MACH: CRC32 with the 48-bit deep hash.
    std::uint64_t undetected = 0, detected = 0, frames_total = 0;
    for (std::size_t vi = 0; vi < table.size(); ++vi) {
        const PipelineResult &r =
            results[kinds.size() * table.size() + vi];
        undetected += r.mach.collisions_undetected;
        detected += r.mach.collisions_detected;
        frames_total += r.frames;
    }
    rep.metric("coMachUndetectedCollisions", 0.0,
               static_cast<double>(undetected));
    std::cout << "  " << std::left << std::setw(9) << "crc32+16"
              << std::setw(9) << frames_total << std::setw(13)
              << undetected << detected << " detected\n";
    std::cout << "(all 32-bit digests behave alike; CO-MACH drives "
                 "undetected collisions to zero - paper Sec. 6.3)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned n_jobs = vstream::bench::jobs(argc, argv);
    header("Fig. 12: sensitivity studies",
           "8 MACHs, 2K-entry MACH buffer, 4x4 mabs, CRC32(+CRC16) "
           "are the chosen design points");
    Report rep("bench_fig12_sensitivity", "Fig. 12",
               "sensitivity studies and collision analysis");
    machCountSweep(rep);
    machBufferSweep(n_jobs);
    mabSizeSweep();
    hashStudy(rep, n_jobs);
    return 0;
}
