/**
 * @file
 * Fig. 12: sensitivity studies and the collision analysis.
 *
 * (a) Extra frame buffers (beyond triple buffering) vs the number of
 *     MACHs: the paper picks 8; 16 MACHs would cost ~300 MB at 4K.
 * (b) Energy vs MACH-buffer entries: 2K is the chosen trade-off.
 * (c) mab size sweep on V14: 4x4 is optimal.
 * (d) CRC32 / MD5 / SHA1 digests behave alike; CRC32 collides about
 *     once per 200 frames at 4K, and CO-MACH (CRC32||CRC16) pushes
 *     collisions to zero without extra memory bandwidth.
 */

#include "bench_util.hh"

#include "hash/hasher.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

void
machCountSweep(Report &rep)
{
    std::cout << "Fig. 12a: extra frame buffers vs number of MACHs "
                 "(GAB, batch 16)\n";
    std::cout << "  #MACHs   peakBuffers   extra-vs-3   4K-equivalent "
                 "extra MB\n";
    for (std::uint32_t machs : {1u, 2u, 4u, 8u, 16u}) {
        PipelineConfig cfg;
        cfg.profile = benchWorkload("V8", 48);
        cfg.scheme = SchemeConfig::make(Scheme::kGab);
        cfg.mach.num_machs = machs;
        VideoPipeline pipe(std::move(cfg));
        const PipelineResult r = pipe.run();
        const std::uint32_t extra =
            r.peak_buffers > 3 ? r.peak_buffers - 3 : 0;
        if (machs == 8u) {
            rep.metric("peakBuffersAt8Machs", 0.0, r.peak_buffers);
        }
        // A 4K frame buffer is 24 MB.
        std::cout << "  " << std::left << std::setw(9) << machs
                  << std::setw(14) << r.peak_buffers << std::setw(13)
                  << extra << std::right << extra * 24 << "\n";
    }
    std::cout << "(grows with the reference window; the paper picks "
                 "8 MACHs, as 16 costs ~300 MB at 4K)\n\n";
}

void
machBufferSweep()
{
    std::cout << "Fig. 12b: MACH-buffer entries vs energy and DC "
                 "requests (GAB)\n";
    std::cout << "  entries   energy(norm)   dcRequests(norm)   "
                 "bufferMiss%\n";
    double base_e = 0.0, base_req = 0.0;
    for (std::uint32_t entries : {256u, 512u, 1024u, 2048u, 4096u}) {
        double e = 0.0, req = 0.0, hits = 0.0, misses = 0.0;
        for (const auto &key : videoMix()) {
            PipelineConfig cfg;
            cfg.profile = benchWorkload(key, 48);
            cfg.scheme = SchemeConfig::make(Scheme::kGab);
            cfg.display.mach_buffer_entries = entries;
            // Scale the buffer's power with its capacity (96 KB at
            // 2K entries per Table 2).
            cfg.mach.mach_buffer_power_w =
                25.4e-3 * entries / 2048.0;
            VideoPipeline pipe(std::move(cfg));
            const PipelineResult r = pipe.run();
            e += r.totalEnergy();
            req += static_cast<double>(r.display.dram_requests);
            hits += static_cast<double>(r.mach_buffer_hits);
            misses += static_cast<double>(r.mach_buffer_misses);
        }
        if (entries == 256u) {
            base_e = e;
            base_req = req;
        }
        std::cout << "  " << std::left << std::setw(10) << entries
                  << std::setw(15) << std::fixed
                  << std::setprecision(4) << e / base_e
                  << std::setw(19) << req / base_req << std::right
                  << std::setprecision(1)
                  << 100.0 * misses / std::max(1.0, hits + misses)
                  << "\n";
    }
    std::cout << "(2K entries = the paper's 96 KB design point)\n\n";
}

void
mabSizeSweep()
{
    std::cout << "Fig. 12c: mab size sweep on V14 (GAB writeback "
                 "savings)\n";
    std::cout << "  mab     bytes   wbSavings%\n";
    for (std::uint32_t dim : {2u, 4u, 8u, 16u}) {
        VideoProfile p = benchWorkload("V14", 48);
        p.mab_dim = dim;
        p.validate();
        const auto r =
            simulateScheme(p, SchemeConfig::make(Scheme::kGab));
        const std::uint32_t mab_bytes = dim * dim * 3;
        std::cout << "  " << std::left << std::setw(2) << dim << "x"
                  << std::setw(5) << dim << std::setw(8) << mab_bytes
                  << std::right << std::fixed << std::setprecision(1)
                  << 100.0 * r.writeback.savings(mab_bytes) << "\n";
    }
    std::cout << "(small blocks repeat more but pay more metadata; "
                 "large blocks rarely match - 4x4 wins, paper "
                 "Fig. 12c)\n\n";
}

void
hashStudy(Report &rep)
{
    std::cout << "Fig. 12d: hash functions and collisions (GAB)\n";
    std::cout << "  hash     frames   undetected   detected(CO-MACH "
                 "off/on)\n";
    for (HashKind kind :
         {HashKind::kCrc32, HashKind::kMd5, HashKind::kSha1}) {
        std::uint64_t frames_total = 0;
        std::uint64_t undetected = 0;
        for (const auto &wp : workloadTable()) {
            PipelineConfig cfg;
            cfg.profile = scaledWorkload(wp.key, frames(48));
            cfg.scheme = SchemeConfig::make(Scheme::kGab);
            cfg.mach.hash = kind;
            VideoPipeline pipe(std::move(cfg));
            const PipelineResult r = pipe.run();
            frames_total += r.frames;
            undetected += r.mach.collisions_undetected;
        }
        std::cout << "  " << std::left << std::setw(9)
                  << hashKindName(kind) << std::setw(9) << frames_total
                  << std::setw(13) << undetected << "-\n";
    }

    // CO-MACH: rerun CRC32 with the 48-bit deep hash.
    std::uint64_t undetected = 0, detected = 0, frames_total = 0;
    for (const auto &wp : workloadTable()) {
        PipelineConfig cfg;
        cfg.profile = scaledWorkload(wp.key, frames(48));
        cfg.scheme = SchemeConfig::make(Scheme::kGab);
        cfg.scheme.co_mach = true;
        VideoPipeline pipe(std::move(cfg));
        const PipelineResult r = pipe.run();
        undetected += r.mach.collisions_undetected;
        detected += r.mach.collisions_detected;
        frames_total += r.frames;
    }
    rep.metric("coMachUndetectedCollisions", 0.0,
               static_cast<double>(undetected));
    std::cout << "  " << std::left << std::setw(9) << "crc32+16"
              << std::setw(9) << frames_total << std::setw(13)
              << undetected << detected << " detected\n";
    std::cout << "(all 32-bit digests behave alike; CO-MACH drives "
                 "undetected collisions to zero - paper Sec. 6.3)\n";
}

} // namespace

int
main()
{
    header("Fig. 12: sensitivity studies",
           "8 MACHs, 2K-entry MACH buffer, 4x4 mabs, CRC32(+CRC16) "
           "are the chosen design points");
    Report rep("bench_fig12_sensitivity", "Fig. 12",
               "sensitivity studies and collision analysis");
    machCountSweep(rep);
    machBufferSweep();
    mabSizeSweep();
    hashStudy(rep);
    return 0;
}
