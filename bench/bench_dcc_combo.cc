/**
 * @file
 * Sec. 6.2 DCC study: Delta Color Compression alone vs GAB+DCC.
 *
 * Paper reference point: DCC (intra-block delta packing) and MACH
 * (inter-block reuse) are orthogonal; combining them saves ~18% more
 * memory bandwidth than plain DCC.
 */

#include "bench_util.hh"

#include "core/dcc.hh"
#include "video/synthetic_video.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

/** Bytes written per frame under plain DCC: every mab individually
 * compressed, no reuse. */
std::uint64_t
plainDccBytes(const VideoProfile &p)
{
    SyntheticVideo video(p);
    std::uint64_t bytes = 0;
    while (!video.done()) {
        const Frame f = video.nextFrame();
        for (std::uint32_t i = 0; i < f.mabCount(); ++i) {
            bytes += dccCompress(f.mab(i)).compressed_bytes;
        }
    }
    return bytes;
}

} // namespace

int
main()
{
    header("Sec. 6.2: GAB + DCC vs plain DCC",
           "the combined scheme saves ~18% more bandwidth than DCC "
           "alone (intra-block and inter-block reuse compose)");

    std::cout << std::left << std::setw(5) << "key" << std::right
              << std::setw(12) << "raw(KB/f)" << std::setw(12)
              << "DCC(KB/f)" << std::setw(14) << "GAB+DCC(KB/f)"
              << std::setw(12) << "extraSave%" << "\n";

    Report rep("bench_dcc_combo", "Sec. 6.2",
               "GAB + DCC vs plain DCC");

    double sum_extra = 0.0;
    int n = 0;
    for (const auto &key : videoMix()) {
        const VideoProfile p = benchWorkload(key, 48);

        const std::uint64_t raw =
            static_cast<std::uint64_t>(p.mabsPerFrame()) * 48ULL *
            p.frame_count;
        const std::uint64_t dcc = plainDccBytes(p);

        SchemeConfig combo = SchemeConfig::make(Scheme::kGab);
        combo.dcc = true;
        const auto r = simulateScheme(p, combo);
        const std::uint64_t gab_dcc = r.writeback.totalBytes();

        const double extra =
            1.0 - static_cast<double>(gab_dcc) /
                      static_cast<double>(dcc);
        rep.video(key, "extraSaving", extra);
        sum_extra += extra;
        ++n;

        const double per_frame = 1.0 / (1024.0 * p.frame_count);
        std::cout << std::left << std::setw(5) << key << std::right
                  << std::fixed << std::setprecision(1) << std::setw(12)
                  << raw * per_frame << std::setw(12)
                  << dcc * per_frame << std::setw(14)
                  << gab_dcc * per_frame << std::setw(12)
                  << 100.0 * extra << "\n";
    }

    std::cout << "\naverage extra saving of GAB+DCC over plain DCC: "
              << pct(sum_extra / n) << " (paper ~18%)\n";
    rep.metric("extraSavingAvg", 0.18, sum_extra / n);
    return 0;
}
