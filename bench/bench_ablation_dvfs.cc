/**
 * @file
 * Ablation: race-to-sleep vs history-based DVFS slack scaling.
 *
 * The paper's related work ([57], [66]) scales the decoder *down*
 * when a history-based predictor sees slack, saving energy "at the
 * cost of frame-drops"; race-to-sleep instead races and batches,
 * creating slack rather than predicting it.  This bench quantifies
 * that argument: the predictor's mispredictions on heavy frames turn
 * into drops that no batching recovers, while race-to-sleep ends up
 * cheaper AND drop-free.
 */

#include "bench_util.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

struct Row
{
    double energy = 0.0;
    std::uint64_t drops = 0;
    std::uint64_t frames = 0;
    double low_frames = 0.0; // per-frame-record frequency proxy
};

Row
runScheme(const SchemeConfig &scheme)
{
    Row row;
    for (const auto &key : videoMix()) {
        const PipelineResult r =
            simulateScheme(benchWorkload(key), scheme);
        row.energy += r.totalEnergy();
        row.drops += r.drops;
        row.frames += r.frames;
    }
    return row;
}

} // namespace

int
main()
{
    header("Ablation: history-based DVFS vs race-to-sleep",
           "slack-prediction DVFS saves power but drops frames on "
           "mispredictions; race-to-sleep is cheaper and drop-free");

    const Row base = runScheme(SchemeConfig::make(Scheme::kBaseline));

    SchemeConfig dvfs = SchemeConfig::make(Scheme::kRacing);
    dvfs.dvfs_slack = true;
    const Row predicted = runScheme(dvfs);

    SchemeConfig dvfs_aggressive = dvfs;
    dvfs_aggressive.dvfs_margin = 0.99;
    const Row aggressive = runScheme(dvfs_aggressive);

    const Row racing = runScheme(SchemeConfig::make(Scheme::kRacing));
    const Row rts =
        runScheme(SchemeConfig::make(Scheme::kRaceToSleep));
    const Row gab = runScheme(SchemeConfig::make(Scheme::kGab));

    auto print = [&](const char *name, const Row &r) {
        std::cout << std::left << std::setw(28) << name << std::right
                  << std::fixed << std::setprecision(3) << std::setw(10)
                  << r.energy / base.energy << std::setw(9) << r.drops
                  << std::setw(10)
                  << 100.0 * static_cast<double>(r.drops) /
                         static_cast<double>(r.frames)
                  << "\n";
    };

    std::cout << std::left << std::setw(28) << "scheme" << std::right
              << std::setw(10) << "energy" << std::setw(9) << "drops"
              << std::setw(10) << "drop%" << "\n";
    print("Baseline (150 MHz)", base);
    print("Racing (300 MHz)", racing);
    print("DVFS predictor (margin .92)", predicted);
    print("DVFS predictor (margin .99)", aggressive);
    print("Race-to-Sleep", rts);
    print("Race-to-Sleep + GAB", gab);

    std::cout << "\n(the predictor sits between the two fixed "
                 "frequencies on energy but keeps dropping frames; "
                 "race-to-sleep dominates it on both axes - the "
                 "paper's Sec. 7 argument)\n";

    Report rep("bench_ablation_dvfs", "Sec. 7",
               "history-based DVFS vs race-to-sleep");
    rep.metric("dvfsNormalizedEnergy", 0.0,
               predicted.energy / base.energy);
    rep.metric("dvfsDrops", 0.0,
               static_cast<double>(predicted.drops));
    rep.metric("raceToSleepNormalizedEnergy", 0.887,
               rts.energy / base.energy);
    rep.metric("raceToSleepDrops", 0.0,
               static_cast<double>(rts.drops));
    return 0;
}
