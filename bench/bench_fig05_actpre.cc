/**
 * @file
 * Fig. 5: memory access pattern and energy at low vs high decoder
 * frequency.
 *
 * Paper reference points: at the high frequency, consecutive
 * decoder accesses land within the row-buffer hold window, so the
 * same traffic needs fewer Act/Pre pairs; racing spends ~0.5 mJ more
 * per frame at the VD but saves ~1 mJ on the memory side, cutting
 * memory Act/Pre energy ~20%.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vstream;
    using namespace vstream::bench;

    header("Fig. 5: Act/Pre behaviour, low vs high VD frequency",
           "high frequency cuts Act/Pre energy ~20% for the same "
           "traffic; VD power rises ~0.5 mJ/frame");

    struct Agg
    {
        DramActivityCounts vd;
        double act_pre_j = 0.0;
        double burst_j = 0.0;
        double vd_proc_j = 0.0;
        std::uint64_t frames = 0;
    };

    auto runFreq = [&](Scheme s) {
        Agg agg;
        for (const auto &key : videoMix()) {
            const PipelineResult r =
                simulateScheme(benchWorkload(key),
                               SchemeConfig::make(s));
            agg.vd += r.dram_vd;
            agg.act_pre_j += r.energy.mem_act_pre;
            agg.burst_j += r.energy.mem_burst;
            agg.vd_proc_j += r.energy.vd_processing;
            agg.frames += r.frames;
        }
        return agg;
    };

    const Agg low = runFreq(Scheme::kBaseline); // 150 MHz
    const Agg high = runFreq(Scheme::kRacing);  // 300 MHz

    auto print = [](const char *name, const Agg &a) {
        const auto n = static_cast<double>(a.frames);
        const double row_hit_rate =
            static_cast<double>(a.vd.row_hits) /
            static_cast<double>(a.vd.read_bursts +
                                a.vd.write_bursts);
        std::cout << std::left << std::setw(18) << name << std::right
                  << std::fixed << std::setprecision(1) << std::setw(12)
                  << static_cast<double>(a.vd.activations) / n
                  << std::setw(12) << 100.0 * row_hit_rate
                  << std::setprecision(3) << std::setw(12)
                  << 1e3 * a.act_pre_j / n << std::setw(12)
                  << 1e3 * a.burst_j / n << std::setw(12)
                  << 1e3 * a.vd_proc_j / n << "\n";
    };

    std::cout << std::left << std::setw(18) << "VD frequency"
              << std::right << std::setw(12) << "acts/frame"
              << std::setw(12) << "rowHit%" << std::setw(12)
              << "actPre mJ" << std::setw(12) << "burst mJ"
              << std::setw(12) << "vdProc mJ" << "\n";
    print("150 MHz (low)", low);
    print("300 MHz (high)", high);

    const double act_cut = 1.0 - high.act_pre_j / low.act_pre_j;
    const double vd_extra =
        1e3 * (high.vd_proc_j - low.vd_proc_j) /
        static_cast<double>(high.frames);
    const double mem_saved =
        1e3 *
        ((low.act_pre_j + low.burst_j) -
         (high.act_pre_j + high.burst_j)) /
        static_cast<double>(high.frames);

    std::cout << "\nAct/Pre energy cut by racing: " << pct(act_cut)
              << " (paper ~20%)\n";
    std::cout << "VD energy increase: " << std::fixed
              << std::setprecision(3) << vd_extra
              << " mJ/frame (paper ~0.5 mJ)\n";
    std::cout << "memory dynamic energy saved: " << mem_saved
              << " mJ/frame (paper ~1 mJ)\n";

    Report rep("bench_fig05_actpre", "Fig. 5",
               "Act/Pre behaviour, low vs high VD frequency");
    rep.metric("actPreEnergyCut", 0.20, act_cut);
    rep.metric("vdEnergyIncreaseMjPerFrame", 0.5, vd_extra);
    rep.metric("memDynamicSavedMjPerFrame", 1.0, mem_saved);
    return 0;
}
