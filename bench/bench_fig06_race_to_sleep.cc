/**
 * @file
 * Fig. 6: energy vs batch depth (1..16) at both VD frequencies.
 *
 * Paper reference points: the high-frequency, 16-deep configuration
 * saves the most (~12.9% of decoder-side energy: ~6.7% from batching
 * plus ~6.2% from racing); even 2 buffered frames save ~7%, i.e. the
 * curve bends early - race-to-sleep is adaptive to however much the
 * network has buffered.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vstream;
    using namespace vstream::bench;

    header("Fig. 6: energy vs batch depth x VD frequency",
           "best at high frequency + deep batch (~12.9% saving); "
           "2-frame batches already help (~7%)");

    const std::vector<std::uint32_t> batches = {1, 2, 4, 8, 12, 16};

    Report rep("bench_fig06_race_to_sleep", "Fig. 6",
               "energy vs batch depth x VD frequency");

    // Total energy per (freq, batch), averaged over the video mix and
    // normalized to (low, 1) = the baseline.
    double baseline = 0.0;
    double high16 = 0.0, low2 = 0.0;
    std::cout << std::left << std::setw(10) << "batch" << std::right
              << std::setw(14) << "low (150MHz)" << std::setw(14)
              << "high (300MHz)" << std::setw(12) << "drops(low)"
              << "\n";

    for (std::uint32_t b : batches) {
        double low_e = 0.0, high_e = 0.0;
        std::uint64_t drops_low = 0;
        for (const auto &key : videoMix()) {
            const VideoProfile p = benchWorkload(key);

            SchemeConfig low = SchemeConfig::make(
                b == 1 ? Scheme::kBaseline : Scheme::kBatching, b);
            low.batch = b;
            const auto rl = simulateScheme(p, low);
            low_e += rl.totalEnergy();
            drops_low += rl.drops;

            SchemeConfig high = SchemeConfig::make(
                b == 1 ? Scheme::kRacing : Scheme::kRaceToSleep, b);
            high.batch = b;
            high_e += simulateScheme(p, high).totalEnergy();
        }
        if (b == 1) {
            baseline = low_e;
        }
        if (b == 2) {
            low2 = low_e;
        }
        if (b == 16) {
            high16 = high_e;
        }

        std::cout << std::left << std::setw(10) << b << std::right
                  << std::fixed << std::setprecision(4) << std::setw(14)
                  << low_e / baseline << std::setw(14)
                  << high_e / baseline << std::setw(12) << drops_low
                  << "\n";
    }

    std::cout << "\n(normalized to batch=1 @ low frequency; "
                 "paper: high+16 saves ~12.9% of decoder-side "
                 "energy and all drops disappear once batching "
                 "is enabled)\n";

    rep.metric("high16Saving", 0.129, 1.0 - high16 / baseline);
    rep.metric("low2Saving", 0.07, 1.0 - low2 / baseline);
    return 0;
}
