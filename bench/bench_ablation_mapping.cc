/**
 * @file
 * Ablation: DRAM address-interleaving orders.
 *
 * Table 2 fixes RoRaBaCoCh (channel bits lowest).  This bench
 * quantifies that design choice against two alternatives: channel
 * above column (RoRaBaChCo - whole rows per channel, no burst-level
 * channel parallelism) and bank-below-column (RoRaCoBaCh - bursts
 * spread across banks, shredding row locality).
 */

#include "bench_util.hh"

int
main()
{
    using namespace vstream;
    using namespace vstream::bench;

    header("Ablation: address-interleaving order",
           "the paper's RoRaBaCoCh balances channel parallelism and "
           "row locality");

    std::cout << std::left << std::setw(14) << "mapping" << std::right
              << std::setw(10) << "energy" << std::setw(11)
              << "rowHit%" << std::setw(13) << "acts/frame"
              << std::setw(9) << "drops" << "\n";

    Report rep("bench_ablation_mapping", "Table 2",
               "DRAM address-interleaving orders");

    double baseline = 0.0;
    for (AddrMapOrder order :
         {AddrMapOrder::kRoRaBaCoCh, AddrMapOrder::kRoRaBaChCo,
          AddrMapOrder::kRoRaCoBaCh}) {
        double energy = 0.0;
        std::uint64_t acts = 0, hits = 0, bursts = 0, drops = 0,
                      frames = 0;
        for (const auto &key : videoMix()) {
            PipelineConfig cfg;
            cfg.profile = benchWorkload(key);
            cfg.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
            cfg.dram.map_order = order;
            VideoPipeline pipe(std::move(cfg));
            const PipelineResult r = pipe.run();
            energy += r.totalEnergy();
            acts += r.dram_total.activations;
            hits += r.dram_total.row_hits;
            bursts += r.dram_total.read_bursts +
                      r.dram_total.write_bursts;
            drops += r.drops;
            frames += r.frames;
        }
        if (order == AddrMapOrder::kRoRaBaCoCh) {
            baseline = energy;
        }
        rep.metric(std::string(addrMapOrderName(order)) +
                       "NormalizedEnergy",
                   order == AddrMapOrder::kRoRaBaCoCh ? 1.0 : 0.0,
                   energy / baseline);

        std::cout << std::left << std::setw(14)
                  << addrMapOrderName(order) << std::right
                  << std::fixed << std::setprecision(4) << std::setw(10)
                  << energy / baseline << std::setprecision(1)
                  << std::setw(11)
                  << 100.0 * static_cast<double>(hits) /
                         static_cast<double>(bursts)
                  << std::setw(13)
                  << static_cast<double>(acts) /
                         static_cast<double>(frames)
                  << std::setw(9) << drops << "\n";
    }

    std::cout << "\n(normalized to RoRaBaCoCh under Race-to-Sleep)\n\n";

    // Page-policy companion: closed-page removes the row-hit
    // differential racing exploits entirely.
    std::cout << "Row-buffer policy (baseline vs racing Act/Pre "
                 "energy):\n";
    std::cout << std::left << std::setw(14) << "policy" << std::right
              << std::setw(14) << "L actPre(J)" << std::setw(14)
              << "R actPre(J)" << std::setw(10) << "cut%" << "\n";
    for (PagePolicy policy :
         {PagePolicy::kOpenPage, PagePolicy::kClosedPage}) {
        double l = 0.0, r = 0.0;
        for (const auto &key : videoMix()) {
            for (Scheme s : {Scheme::kBaseline, Scheme::kRacing}) {
                PipelineConfig cfg;
                cfg.profile = benchWorkload(key);
                cfg.scheme = SchemeConfig::make(s);
                cfg.dram.page_policy = policy;
                VideoPipeline pipe(std::move(cfg));
                const double e = pipe.run().energy.mem_act_pre;
                (s == Scheme::kBaseline ? l : r) += e;
            }
        }
        std::cout << std::left << std::setw(14)
                  << pagePolicyName(policy) << std::right << std::fixed
                  << std::setprecision(4) << std::setw(14) << l
                  << std::setw(14) << r << std::setprecision(1)
                  << std::setw(10) << 100.0 * (1.0 - r / l) << "\n";
    }
    std::cout << "(racing's Act/Pre saving exists only under "
                 "open-page management - the paper's platform)\n";
    return 0;
}
