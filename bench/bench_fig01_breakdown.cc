/**
 * @file
 * Fig. 1a: time and energy breakdown of baseline video streaming.
 *
 * Paper reference points: the hardware video pipeline (VD + display)
 * and the memory system take ~49.9% / ~37.5% of the time and
 * ~29.7% / ~45.8% of the energy; together ~75% of energy, making
 * them the optimization targets.  (Our simulator models only the
 * video-pipeline components - no CPU/GPU/radio - so the shares here
 * are of the modelled subsystem; the paper's remaining ~25% "other"
 * is out of scope by construction.)
 */

#include "bench_util.hh"

int
main()
{
    using namespace vstream;
    using namespace vstream::bench;

    header("Fig. 1a: baseline time/energy breakdown",
           "video pipeline ~29.7% / memory ~45.8% of energy; "
           "VD busy most of the frame time");

    Report rep("bench_fig01_breakdown", "Fig. 1a",
               "baseline time/energy breakdown");

    EnergyBreakdown energy;
    TimeBreakdown vd_time;
    Tick span = 0;

    for (const auto &key : videoMix()) {
        const PipelineResult r = simulateScheme(
            benchWorkload(key), SchemeConfig::make(Scheme::kBaseline));
        energy += r.energy;
        vd_time += r.vd_time;
        span += r.span;
        rep.video(key, "energyJ", r.totalEnergy());
        rep.video(key, "vdShare",
                  (r.energy.vd_processing + r.energy.short_slack +
                   r.energy.sleep + r.energy.transition) /
                      r.totalEnergy());
        rep.video(key, "memShare",
                  r.energy.memoryTotal() / r.totalEnergy());
    }

    const double total = energy.total();
    rep.metric("vdEnergyShare", 0.297,
               (energy.vd_processing + energy.short_slack +
                energy.sleep + energy.transition) /
                   total);
    rep.metric("dcEnergyShare", 0.0, energy.dc / total);
    rep.metric("memEnergyShare", 0.458, energy.memoryTotal() / total);
    std::cout << "energy shares (of modelled system):\n";
    std::cout << "  video decoder (proc+slack+sleep+trans): "
              << pct((energy.vd_processing + energy.short_slack +
                      energy.sleep + energy.transition) /
                     total)
              << "\n";
    std::cout << "  display controller:                     "
              << pct(energy.dc / total) << "\n";
    std::cout << "  memory (act/pre + burst + background):  "
              << pct(energy.memoryTotal() / total) << "\n";
    std::cout << "    act/pre    " << pct(energy.mem_act_pre / total)
              << "\n";
    std::cout << "    burst      " << pct(energy.mem_burst / total)
              << "\n";
    std::cout << "    background " << pct(energy.mem_background / total)
              << "\n";

    std::cout << "\nVD time shares (of playback span):\n";
    const double span_s = ticksToSeconds(span);
    std::cout << "  executing   "
              << pct(ticksToSeconds(vd_time.execution) / span_s) << "\n";
    std::cout << "  short slack "
              << pct(ticksToSeconds(vd_time.short_slack) / span_s)
              << "\n";
    std::cout << "  transitions "
              << pct(ticksToSeconds(vd_time.transition) / span_s)
              << "\n";
    std::cout << "  S1 sleep    "
              << pct(ticksToSeconds(vd_time.s1) / span_s) << "\n";
    std::cout << "  S3 sleep    "
              << pct(ticksToSeconds(vd_time.s3) / span_s) << "\n";
    return 0;
}
