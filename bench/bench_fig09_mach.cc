/**
 * @file
 * Fig. 9: content caching at the decoder.
 *
 * (a) Memory access/space savings of MACH: mab-based ~13%, gab-based
 *     ~34%, with the "optimal" (unbounded dedup) bound ~7% above the
 *     LRU-managed cache.
 * (b) Match concentration: with gab, the top digest contributes ~58%
 *     of all matches (any pure colour collapses onto the zero gab);
 *     with mab only ~20%.
 */

#include "bench_util.hh"

#include "video/similarity.hh"

int
main()
{
    using namespace vstream;
    using namespace vstream::bench;

    header("Fig. 9: MACH savings (mab vs gab vs optimal)",
           "mab ~13%, gab ~34% of frame-buffer bytes; gab's top "
           "digest ~58% of matches vs mab ~20%");

    Report rep("bench_fig09_mach", "Fig. 9",
               "MACH savings (mab vs gab vs optimal)");

    double mab_saved = 0.0, gab_saved = 0.0;
    double opt_mab = 0.0, opt_gab = 0.0;
    double top_mab = 0.0, top_gab = 0.0;
    std::vector<double> mab_topk(8, 0.0), gab_topk(8, 0.0);
    int n = 0;

    std::cout << std::left << std::setw(5) << "key" << std::right
              << std::setw(9) << "mab%" << std::setw(9) << "gab%"
              << std::setw(10) << "optMab%" << std::setw(10)
              << "optGab%" << std::setw(10) << "top1mab%"
              << std::setw(10) << "top1gab%" << "\n";

    for (const auto &wp : workloadTable()) {
        const VideoProfile p = scaledWorkload(wp.key, frames(72));

        const auto m =
            simulateScheme(p, SchemeConfig::make(Scheme::kMab));
        const auto g =
            simulateScheme(p, SchemeConfig::make(Scheme::kGab));
        const SimilarityReport sim = analyzeSimilarity(p);

        const std::uint32_t mab_bytes = p.mab_dim * p.mab_dim * 3;
        const double ms = m.writeback.savings(mab_bytes);
        const double gs = g.writeback.savings(mab_bytes);
        const double t1m = m.top_match_shares.empty()
                               ? 0.0
                               : m.top_match_shares[0];
        const double t1g = g.top_match_shares.empty()
                               ? 0.0
                               : g.top_match_shares[0];

        std::cout << std::left << std::setw(5) << p.key << std::right
                  << std::fixed << std::setprecision(1) << std::setw(9)
                  << 100.0 * ms << std::setw(9) << 100.0 * gs
                  << std::setw(10) << 100.0 * sim.optimal_mab_savings
                  << std::setw(10) << 100.0 * sim.optimal_gab_savings
                  << std::setw(10) << 100.0 * t1m << std::setw(10)
                  << 100.0 * t1g << "\n";

        rep.video(p.key, "mabSavings", ms);
        rep.video(p.key, "gabSavings", gs);
        mab_saved += ms;
        gab_saved += gs;
        opt_mab += sim.optimal_mab_savings;
        opt_gab += sim.optimal_gab_savings;
        top_mab += t1m;
        top_gab += t1g;
        for (std::size_t k = 0; k < mab_topk.size(); ++k) {
            if (k < m.top_match_shares.size()) {
                mab_topk[k] += m.top_match_shares[k];
            }
            if (k < g.top_match_shares.size()) {
                gab_topk[k] += g.top_match_shares[k];
            }
        }
        ++n;
    }

    rep.metric("mabSavingsAvg", 0.13, mab_saved / n);
    rep.metric("gabSavingsAvg", 0.34, gab_saved / n);
    rep.metric("top1MabShare", 0.20, top_mab / n);
    rep.metric("top1GabShare", 0.58, top_gab / n);

    std::cout << "\nFig. 9a averages:\n";
    std::cout << "  mab savings      " << pct(mab_saved / n)
              << "  (paper ~13%)\n";
    std::cout << "  gab savings      " << pct(gab_saved / n)
              << "  (paper ~34%)\n";
    std::cout << "  optimal (mab)    " << pct(opt_mab / n) << "\n";
    std::cout << "  optimal (gab)    " << pct(opt_gab / n)
              << "  (paper: LRU is ~7% below optimal)\n";

    std::cout << "\nFig. 9b: cumulative match share of top-k digests "
                 "(avg):\n  k      mab      gab\n";
    double cm = 0.0, cg = 0.0;
    for (std::size_t k = 0; k < mab_topk.size(); ++k) {
        cm += mab_topk[k] / n;
        cg += gab_topk[k] / n;
        std::cout << "  " << std::left << std::setw(6) << k + 1
                  << std::right << pct(cm) << "   " << pct(cg) << "\n";
    }
    std::cout << "(gab's top digest - the zero gradient shared by "
                 "every pure-colour block - dominates; paper ~58% vs "
                 "~20% for mab)\n";
    return 0;
}
