/**
 * @file
 * Fig. 2b-e: CDFs of per-frame decode time and energy, baseline vs
 * 16-frame batching, with the Region I-IV classification.
 *
 * Paper reference points (baseline, ~5000 frames):
 *   Region I   (dropped)            ~4%
 *   Region II  (short slack only)   ~12%
 *   Region III (S1-capable)         ~37%
 *   Region IV  (S3-capable)         ~40%+
 * Batching: transition overhead amortized ~16x (~0.2 ms/frame) and
 * the accumulated slack spent in one long S3 dwell.
 */

#include "bench_util.hh"

#include "sim/stats.hh"

namespace
{

using namespace vstream;
using namespace vstream::bench;

struct Regions
{
    std::uint64_t dropped = 0;
    std::uint64_t short_slack = 0;
    std::uint64_t s1 = 0;
    std::uint64_t s3 = 0;
    std::uint64_t frames = 0;
};

void
report(const char *name, const std::vector<PipelineResult> &runs,
       Report &rep, const std::string &prefix, double paper_region3,
       double paper_region4)
{
    Regions reg;
    stats::SampleSeries exec_ms("exec");
    stats::SampleSeries frame_energy_mj("energy");
    Tick trans_total = 0;

    for (const auto &r : runs) {
        for (const auto &rec : r.frame_records) {
            ++reg.frames;
            if (rec.dropped) {
                ++reg.dropped;
            } else if (rec.s3 > 0) {
                ++reg.s3;
            } else if (rec.s1 > 0) {
                ++reg.s1;
            } else {
                ++reg.short_slack;
            }
            exec_ms.sample(ticksToMs(rec.exec));
            frame_energy_mj.sample((rec.e_exec + rec.e_slack +
                                    rec.e_trans + rec.e_sleep) *
                                   1e3);
            trans_total += rec.transition;
        }
    }

    const auto n = static_cast<double>(reg.frames);
    rep.metric(prefix + ".regionIII_s1",
               paper_region3, reg.s1 / n);
    rep.metric(prefix + ".regionIV_s3",
               paper_region4, reg.s3 / n);
    rep.metric(prefix + ".transitionMsPerFrame", 0.0,
               ticksToMs(trans_total) / n);
    std::cout << name << " (" << reg.frames << " frames)\n";
    std::cout << "  Region I   dropped      " << pct(reg.dropped / n)
              << "\n";
    std::cout << "  Region II  short slack  "
              << pct(reg.short_slack / n) << "\n";
    std::cout << "  Region III S1           " << pct(reg.s1 / n) << "\n";
    std::cout << "  Region IV  S3           " << pct(reg.s3 / n) << "\n";
    std::cout << "  transition time/frame   " << std::fixed
              << std::setprecision(3)
              << ticksToMs(trans_total) / n << " ms\n";

    std::cout << "  decode-time CDF (ms):  ";
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.96, 1.0}) {
        std::cout << "p" << static_cast<int>(q * 100) << "="
                  << std::setprecision(2) << exec_ms.percentile(q)
                  << " ";
    }
    std::cout << "\n  frames over 16.6 ms:   "
              << pct(exec_ms.fractionAbove(16.6)) << "\n";
    std::cout << "  VD frame-energy CDF (mJ): ";
    for (double q : {0.1, 0.5, 0.9, 1.0}) {
        std::cout << "p" << static_cast<int>(q * 100) << "="
                  << std::setprecision(2)
                  << frame_energy_mj.percentile(q) << " ";
    }
    std::cout << "\n\n";
}

} // namespace

int
main()
{
    header("Fig. 2b-e: per-frame time/energy CDFs and regions",
           "baseline regions ~4/12/37/40+%; batching cuts "
           "transitions ~16x");

    Report rep("bench_fig02_cdf", "Fig. 2",
               "per-frame time/energy CDFs and regions");

    std::vector<PipelineResult> base, batched;
    for (const auto &key : videoMix()) {
        const VideoProfile p = benchWorkload(key, 120);
        base.push_back(
            simulateScheme(p, SchemeConfig::make(Scheme::kBaseline)));
        batched.push_back(
            simulateScheme(p, SchemeConfig::make(Scheme::kBatching, 16)));
        rep.video(key, "baselineDrops",
                  static_cast<double>(base.back().drops));
        rep.video(key, "batchingDrops",
                  static_cast<double>(batched.back().drops));
    }

    report("Baseline (Fig. 2b/2c)", base, rep, "baseline", 0.37, 0.40);
    report("Batching x16 (Fig. 2d/2e)", batched, rep, "batching", 0.0,
           0.80);
    return 0;
}
