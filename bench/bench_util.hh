/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench honours VSTREAM_FRAMES / VSTREAM_WIDTH / VSTREAM_HEIGHT
 * so the whole harness can be re-run at higher fidelity.
 */

#ifndef VSTREAM_BENCH_BENCH_UTIL_HH
#define VSTREAM_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/video_pipeline.hh"
#include "video/workloads.hh"

namespace vstream
{
namespace bench
{

inline std::uint32_t
envU32(const char *name, std::uint32_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? static_cast<std::uint32_t>(std::atoi(v))
                        : fallback;
}

inline std::uint32_t
frames(std::uint32_t fallback = 96)
{
    return envU32("VSTREAM_FRAMES", fallback);
}

/** Profile for @p key at the bench resolution and frame cap. */
inline VideoProfile
benchWorkload(const std::string &key, std::uint32_t fallback_frames = 96)
{
    return scaledWorkload(key, frames(fallback_frames),
                          envU32("VSTREAM_WIDTH", 0),
                          envU32("VSTREAM_HEIGHT", 0));
}

/** A representative 4-video mix: test card, trailer, best case,
 * heavy game - used by the non-headline figures. */
inline std::vector<std::string>
videoMix()
{
    return {"V1", "V5", "V8", "V12"};
}

inline void
header(const std::string &title, const std::string &paper_note)
{
    std::cout << "=== " << title << " ===\n";
    if (!paper_note.empty()) {
        std::cout << "(paper: " << paper_note << ")\n";
    }
    std::cout << "\n";
}

inline std::string
pct(double x, int precision = 1)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << 100.0 * x
       << "%";
    return os.str();
}

} // namespace bench
} // namespace vstream

#endif // VSTREAM_BENCH_BENCH_UTIL_HH
