/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench honours VSTREAM_FRAMES / VSTREAM_WIDTH / VSTREAM_HEIGHT
 * so the whole harness can be re-run at higher fidelity.
 */

#ifndef VSTREAM_BENCH_BENCH_UTIL_HH
#define VSTREAM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/video_pipeline.hh"
#include "sim/json_writer.hh"
#include "sim/parallel.hh"
#include "video/workloads.hh"

namespace vstream
{
namespace bench
{

inline std::uint32_t
envU32(const char *name, std::uint32_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? static_cast<std::uint32_t>(std::atoi(v))
                        : fallback;
}

inline std::uint32_t
frames(std::uint32_t fallback = 96)
{
    return envU32("VSTREAM_FRAMES", fallback);
}

/** Profile for @p key at the bench resolution and frame cap. */
inline VideoProfile
benchWorkload(const std::string &key, std::uint32_t fallback_frames = 96)
{
    return scaledWorkload(key, frames(fallback_frames),
                          envU32("VSTREAM_WIDTH", 0),
                          envU32("VSTREAM_HEIGHT", 0));
}

/** A representative 4-video mix: test card, trailer, best case,
 * heavy game - used by the non-headline figures. */
inline std::vector<std::string>
videoMix()
{
    return {"V1", "V5", "V8", "V12"};
}

/**
 * Worker count for the bench: `--jobs N` / `--jobs=N` on the command
 * line wins, else the VSTREAM_JOBS environment default, else 1
 * (serial).  Results are merged in canonical input order either way,
 * so the output bytes never depend on this value.
 */
inline unsigned
jobs(int argc, char **argv)
{
    unsigned j = defaultJobs();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            j = parseJobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            j = parseJobs(arg.c_str() + 7);
        }
    }
    return j;
}

/** `--name N` / `--name=N` u32 flag; @p fallback when absent. */
inline std::uint32_t
flagU32(int argc, char **argv, const std::string &name,
        std::uint32_t fallback)
{
    std::uint32_t v = fallback;
    const std::string eq = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == name && i + 1 < argc) {
            v = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (arg.rfind(eq, 0) == 0) {
            v = static_cast<std::uint32_t>(
                std::atoi(arg.c_str() + eq.size()));
        }
    }
    return v;
}

/** `--name V` / `--name=V` string flag; @p fallback when absent
 * (last occurrence wins, matching flagU32). */
inline std::string
flagStr(int argc, char **argv, const std::string &name,
        const std::string &fallback)
{
    std::string v = fallback;
    const std::string eq = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == name && i + 1 < argc) {
            v = argv[++i];
        } else if (arg.rfind(eq, 0) == 0) {
            v = arg.substr(eq.size());
        }
    }
    return v;
}

/** Every occurrence of `--name V` / `--name=V`, in order (for
 * repeatable flags like the chaos rule specs). */
inline std::vector<std::string>
flagStrs(int argc, char **argv, const std::string &name)
{
    std::vector<std::string> out;
    const std::string eq = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == name && i + 1 < argc) {
            out.emplace_back(argv[++i]);
        } else if (arg.rfind(eq, 0) == 0) {
            out.push_back(arg.substr(eq.size()));
        }
    }
    return out;
}

inline void
header(const std::string &title, const std::string &paper_note)
{
    std::cout << "=== " << title << " ===\n";
    if (!paper_note.empty()) {
        std::cout << "(paper: " << paper_note << ")\n";
    }
    std::cout << "\n";
}

inline std::string
pct(double x, int precision = 1)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << 100.0 * x
       << "%";
    return os.str();
}

/**
 * Machine-readable result of one figure bench.
 *
 * When VSTREAM_STATS_JSON names a path, write() (called from the
 * destructor) emits a "vstream-bench-1" JSON document there: the
 * figure's headline metrics (paper value next to the measured one),
 * the per-video values, and the wall-clock cost of the run.  With the
 * variable unset the report is a no-op, so benches stay usable as
 * plain console tools.  See docs/STATS.md for the format.
 */
class Report
{
  public:
    Report(std::string bench, std::string figure, std::string title)
        : bench_(std::move(bench)), figure_(std::move(figure)),
          title_(std::move(title)),
          start_(std::chrono::steady_clock::now())
    {
    }

    Report(const Report &) = delete;
    Report &operator=(const Report &) = delete;

    ~Report() { write(); }

    /** Record a headline metric with its paper reference point. */
    void
    metric(const std::string &name, double paper, double measured)
    {
        metrics_.push_back({name, paper, measured});
    }

    /**
     * Accumulate fault-injection provenance (FaultTotals of one or
     * more runs).  Benches that never inject leave this untouched and
     * the report carries an all-zero block - explicit evidence the
     * numbers come from a pristine run.
     */
    void
    faults(const FaultTotals &t)
    {
        faults_injected_ += t.injected;
        faults_recovered_ += t.recovered;
        faults_abandoned_ += t.abandoned;
    }

    /** Record one value for one video (e.g. scheme key -> energy). */
    void
    video(const std::string &video_key, const std::string &name,
          double value)
    {
        const auto it = video_index_.find(video_key);
        if (it != video_index_.end()) {
            videos_[it->second].second.emplace_back(name, value);
            return;
        }
        video_index_.emplace(video_key, videos_.size());
        videos_.push_back({video_key, {{name, value}}});
    }

    /** Write the JSON now (idempotent; also run by the destructor). */
    void
    write()
    {
        if (written_) {
            return;
        }
        written_ = true;
        const char *path = std::getenv("VSTREAM_STATS_JSON");
        if (path == nullptr || path[0] == '\0') {
            return;
        }
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();

        std::ofstream os(path);
        JsonWriter w(os, /*pretty=*/true);
        w.beginObject();
        w.kv("schema", "vstream-bench-1");
        w.kv("bench", bench_);
        w.kv("figure", figure_);
        w.kv("title", title_);
        w.kv("wall_clock_seconds", wall);
        w.key("faults");
        w.beginObject();
        w.kv("injected", static_cast<double>(faults_injected_));
        w.kv("recovered", static_cast<double>(faults_recovered_));
        w.kv("abandoned", static_cast<double>(faults_abandoned_));
        w.endObject();
        w.key("metrics");
        w.beginArray();
        for (const Metric &m : metrics_) {
            w.beginObject();
            w.kv("name", m.name);
            w.kv("paper", m.paper);
            w.kv("measured", m.measured);
            w.endObject();
        }
        w.endArray();
        w.key("videos");
        w.beginObject();
        for (const auto &[key, values] : videos_) {
            w.key(key);
            w.beginObject();
            for (const auto &[name, value] : values) {
                w.kv(name, value);
            }
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }

  private:
    struct Metric
    {
        std::string name;
        double paper = 0.0;
        double measured = 0.0;
    };

    std::string bench_;
    std::string figure_;
    std::string title_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t faults_injected_ = 0;
    std::uint64_t faults_recovered_ = 0;
    std::uint64_t faults_abandoned_ = 0;
    std::vector<Metric> metrics_;
    /** Insertion-ordered video -> (name, value) pairs. */
    std::vector<std::pair<
        std::string, std::vector<std::pair<std::string, double>>>>
        videos_;
    /** video key -> index in videos_, so video() stays O(1). */
    std::unordered_map<std::string, std::size_t> video_index_;
    bool written_ = false;
};

} // namespace bench
} // namespace vstream

#endif // VSTREAM_BENCH_BENCH_UTIL_HH
