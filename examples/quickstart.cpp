/**
 * @file
 * Quickstart: simulate one video under all six schemes and print the
 * headline numbers (energy breakdown, drops, sleep residency, memory
 * savings).
 *
 * Usage: quickstart [video-key] [frames]
 *   video-key  V1..V16 (default V8)
 *   frames     frame-count cap (default 120)
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/video_pipeline.hh"
#include "video/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace vstream;

    const std::string key = argc > 1 ? argv[1] : "V8";
    const std::uint32_t frames =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 120;

    const VideoProfile profile = scaledWorkload(key, frames);
    std::cout << "video " << profile.key << " (" << profile.name
              << "), " << profile.frame_count << " frames, "
              << profile.width << "x" << profile.height << " @ "
              << profile.fps << " fps\n\n";

    std::cout << std::left << std::setw(20) << "scheme" << std::right
              << std::setw(12) << "energy(mJ)" << std::setw(9) << "norm"
              << std::setw(7) << "drops" << std::setw(9) << "S3%"
              << std::setw(10) << "wbSave%" << std::setw(10) << "dcSave%"
              << std::setw(8) << "bufs" << std::setw(7) << "ok"
              << "\n";

    double baseline_energy = 0.0;
    double baseline_dc_reads = 0.0;

    for (Scheme s :
         {Scheme::kBaseline, Scheme::kBatching, Scheme::kRacing,
          Scheme::kRaceToSleep, Scheme::kMab, Scheme::kGab}) {
        const PipelineResult r =
            simulateScheme(profile, SchemeConfig::make(s));

        if (s == Scheme::kBaseline) {
            baseline_energy = r.totalEnergy();
            baseline_dc_reads =
                static_cast<double>(r.display.dram_requests);
        }

        const double dc_save =
            baseline_dc_reads > 0
                ? 1.0 - static_cast<double>(r.display.dram_requests) /
                            baseline_dc_reads
                : 0.0;
        const std::uint32_t mab_bytes =
            profile.mab_dim * profile.mab_dim * 3;

        std::cout << std::left << std::setw(20) << schemeName(s)
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(12) << r.totalEnergy() * 1e3
                  << std::setw(9) << r.totalEnergy() / baseline_energy
                  << std::setw(7) << r.drops << std::setw(9)
                  << 100.0 * r.s3Residency() << std::setw(10)
                  << 100.0 * r.writeback.savings(mab_bytes)
                  << std::setw(10) << 100.0 * dc_save << std::setw(8)
                  << r.peak_buffers << std::setw(7)
                  << (r.all_verified ? "yes" : "NO") << "\n";
    }

    std::cout << "\nenergy breakdown (mJ): " << EnergyBreakdown::headerRow()
              << "\n";
    for (Scheme s :
         {Scheme::kBaseline, Scheme::kRaceToSleep, Scheme::kGab}) {
        const PipelineResult r =
            simulateScheme(profile, SchemeConfig::make(s));
        std::cout << std::left << std::setw(4) << schemeKey(s)
                  << r.energy.normalizedTo(1e-3).row() << "\n";
    }
    return 0;
}
