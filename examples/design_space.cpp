/**
 * @file
 * MACH design-space explorer.
 *
 * An architect's view of the content cache: sweep MACH geometry
 * (entries, associativity, history depth) and the display-side
 * structures, and report the hit rate, memory-traffic savings, SRAM
 * overhead power, and the resulting net energy - the trade-offs
 * behind the paper's chosen 8 x 256 x 4-way design.
 *
 * Usage: design_space [video-key] [frames]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/video_pipeline.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

void
row(const std::string &label, const PipelineResult &r, double base_e,
    double overhead_mw)
{
    const std::uint32_t mab_bytes = 48;
    std::cout << std::left << std::setw(26) << label << std::right
              << std::fixed << std::setprecision(1) << std::setw(8)
              << 100.0 * r.mach.hitRate() << std::setw(9)
              << 100.0 * r.writeback.savings(mab_bytes) << std::setw(9)
              << overhead_mw << std::setprecision(3) << std::setw(10)
              << r.totalEnergy() / base_e << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string key = argc > 1 ? argv[1] : "V8";
    const std::uint32_t frames =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 96;
    const VideoProfile profile = scaledWorkload(key, frames);

    std::cout << "MACH design space on " << profile.key << " ("
              << profile.name << ")\n\n";
    std::cout << std::left << std::setw(26) << "configuration"
              << std::right << std::setw(8) << "hit%" << std::setw(9)
              << "wbSave%" << std::setw(9) << "ovh mW" << std::setw(10)
              << "energy" << "\n";

    const double base_e =
        simulateScheme(profile, SchemeConfig::make(Scheme::kRaceToSleep))
            .totalEnergy();

    // Entries x history sweep.  SRAM power scales with capacity
    // against the paper's CACTI-derived 5.7 mW at 8 x 256 entries.
    for (std::uint32_t machs : {4u, 8u, 16u}) {
        for (std::uint32_t entries : {128u, 256u, 512u}) {
            PipelineConfig cfg;
            cfg.profile = profile;
            cfg.scheme = SchemeConfig::make(Scheme::kGab);
            cfg.mach.num_machs = machs;
            cfg.mach.entries = entries;
            const double scale =
                static_cast<double>(machs) * entries / (8.0 * 256.0);
            cfg.mach.mach_power_w = 5.7e-3 * scale;
            VideoPipeline pipe(std::move(cfg));
            const PipelineResult r = pipe.run();

            std::ostringstream label;
            label << machs << " MACHs x " << entries << " entries";
            row(label.str(), r, base_e, 1e3 * cfg.mach.mach_power_w);
        }
    }

    // Associativity sweep at the paper's size.
    std::cout << "\n";
    for (std::uint32_t ways : {1u, 2u, 4u, 8u}) {
        PipelineConfig cfg;
        cfg.profile = profile;
        cfg.scheme = SchemeConfig::make(Scheme::kGab);
        cfg.mach.ways = ways;
        VideoPipeline pipe(std::move(cfg));
        const PipelineResult r = pipe.run();
        std::ostringstream label;
        label << "8 x 256, " << ways << "-way";
        row(label.str(), r, base_e, 5.7);
    }

    // Representation and display-side ablations.
    std::cout << "\n";
    {
        const auto mab =
            simulateScheme(profile, SchemeConfig::make(Scheme::kMab));
        row("mab tags (no gradient)", mab, base_e, 5.7);

        SchemeConfig no_dc = SchemeConfig::make(Scheme::kGab);
        no_dc.display_cache = false;
        row("gab, no display cache",
            simulateScheme(profile, no_dc), base_e, 5.7);

        SchemeConfig no_mb = SchemeConfig::make(Scheme::kGab);
        no_mb.mach_buffer = false;
        no_mb.layout = LayoutKind::kPointer;
        row("gab, no MACH buffer",
            simulateScheme(profile, no_mb), base_e, 5.7);

        SchemeConfig full = SchemeConfig::make(Scheme::kGab);
        row("gab, full (paper)", simulateScheme(profile, full),
            base_e, 5.7);

        SchemeConfig co = SchemeConfig::make(Scheme::kGab);
        co.co_mach = true;
        row("gab + CO-MACH", simulateScheme(profile, co), base_e,
            5.7 + 1.4);

        SchemeConfig dcc = SchemeConfig::make(Scheme::kGab);
        dcc.dcc = true;
        row("gab + DCC", simulateScheme(profile, dcc), base_e, 5.7);
    }

    std::cout << "\n(energy normalized to Race-to-Sleep without "
                 "MACH; the paper's 8 x 256 x 4-way gab design is "
                 "the knee of the curve)\n";
    return 0;
}
