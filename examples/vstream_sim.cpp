/**
 * @file
 * vstream_sim - the command-line front end to the simulator.
 *
 * The one binary a downstream user drives: pick a workload (or a
 * fully custom geometry), a scheme, and any of the optional
 * mechanisms, and get the full result summary - optionally with the
 * per-component statistics dump and the per-frame CSV.
 *
 * Usage:
 *   vstream_sim [options]
 *     --video KEY        workload V1..V16 (default V8)
 *     --frames N         frame cap (default 300)
 *     --width W --height H  simulated resolution
 *     --scheme X         L|B|R|S|M|G (default G)
 *     --batch N          batch depth (default 16)
 *     --dcc              add Delta Color Compression
 *     --co-mach          add the CO-MACH collision detector
 *     --te               add checksum transaction elimination
 *     --dvfs             history-based DVFS instead of fixed freq
 *     --machs N          number of MACHs (default 8)
 *     --entries N        entries per MACH (default 256)
 *     --write-queue N    DRAM posted-write queue depth (default 0)
 *     --stats FILE       dump per-component statistics (text)
 *     --stats-json FILE  dump the same statistics as JSON
 *     --stats-csv FILE   dump the same statistics as CSV
 *     --trace-out FILE   record a Chrome/Perfetto trace of the run
 *     --csv FILE         dump per-frame records
 *     --seed N           content seed override
 *
 * Robustness options (see docs/ROBUSTNESS.md):
 *     --arrival-bandwidth MBPS  explicit network arrival model
 *     --arrival-jitter SIGMA    lognormal jitter on transfer times
 *     --arrival-preroll N       frames buffered before playback
 *     --fault-seed N            fault-schedule RNG seed
 *     --fault-stall SPEC        network-stall rule (needs len=...)
 *     --fault-digest SPEC       MACH digest-collision rule
 *     --fault-dram SPEC         DRAM burst-timeout rule
 *     --fault-trace SPEC        trace-record corruption rule
 *     --fault-retry N           DRAM retry budget (default 3)
 *     --verify-on-hit           byte-compare MACH hits (catches
 *                               collisions at a 48 B re-read cost)
 *   SPEC = "p=0.01,from=200ms,until=1.5s,max=3,len=250ms" or
 *   "at=1.2s" (one-shot).
 *
 * Every value option also accepts the --opt=VALUE spelling.
 * See docs/STATS.md and docs/TRACING.md for the output formats.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/video_pipeline.hh"
#include "sim/trace_event.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--video V1..V16] [--frames N] [--width W] "
                 "[--height H]\n"
                 "  [--scheme L|B|R|S|M|G] [--batch N] [--dcc] "
                 "[--co-mach] [--te] [--dvfs]\n"
                 "  [--machs N] [--entries N] [--write-queue N]\n"
                 "  [--stats FILE] [--stats-json FILE] "
                 "[--stats-csv FILE]\n"
                 "  [--trace-out FILE] [--csv FILE] [--seed N]\n"
                 "  [--arrival-bandwidth MBPS] [--arrival-jitter S]\n"
                 "  [--arrival-preroll N] [--fault-seed N]\n"
                 "  [--fault-stall SPEC] [--fault-digest SPEC]\n"
                 "  [--fault-dram SPEC] [--fault-trace SPEC]\n"
                 "  [--fault-retry N] [--verify-on-hit]\n";
    std::exit(2);
}

Scheme
parseScheme(const std::string &s)
{
    if (s == "L") {
        return Scheme::kBaseline;
    }
    if (s == "B") {
        return Scheme::kBatching;
    }
    if (s == "R") {
        return Scheme::kRacing;
    }
    if (s == "S") {
        return Scheme::kRaceToSleep;
    }
    if (s == "M") {
        return Scheme::kMab;
    }
    if (s == "G") {
        return Scheme::kGab;
    }
    std::cerr << "unknown scheme '" << s << "'\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string video = "V8";
    std::uint32_t frames = 300, width = 0, height = 0, batch = 16;
    std::uint32_t machs = 8, entries = 256, write_queue = 0;
    Scheme scheme = Scheme::kGab;
    bool dcc = false, co_mach = false, te = false, dvfs = false;
    std::string stats_file, stats_json_file, stats_csv_file;
    std::string trace_file, csv_file;
    std::uint64_t seed = 0;
    double arrival_bandwidth = 0.0, arrival_jitter = 0.0;
    std::uint32_t arrival_preroll = 0;
    FaultConfig faults;
    bool verify_on_hit = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--opt VALUE" and "--opt=VALUE".
        std::string inline_value;
        bool has_inline = false;
        const std::size_t eq = arg.find('=');
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
            eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto next = [&]() -> std::string {
            if (has_inline) {
                return inline_value;
            }
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        auto nextU32 = [&]() {
            return static_cast<std::uint32_t>(
                std::atoi(next().c_str()));
        };
        if (arg == "--video") {
            video = next();
        } else if (arg == "--frames") {
            frames = nextU32();
        } else if (arg == "--width") {
            width = nextU32();
        } else if (arg == "--height") {
            height = nextU32();
        } else if (arg == "--scheme") {
            scheme = parseScheme(next());
        } else if (arg == "--batch") {
            batch = nextU32();
        } else if (arg == "--dcc") {
            dcc = true;
        } else if (arg == "--co-mach") {
            co_mach = true;
        } else if (arg == "--te") {
            te = true;
        } else if (arg == "--dvfs") {
            dvfs = true;
        } else if (arg == "--machs") {
            machs = nextU32();
        } else if (arg == "--entries") {
            entries = nextU32();
        } else if (arg == "--write-queue") {
            write_queue = nextU32();
        } else if (arg == "--stats") {
            stats_file = next();
        } else if (arg == "--stats-json") {
            stats_json_file = next();
        } else if (arg == "--stats-csv") {
            stats_csv_file = next();
        } else if (arg == "--trace-out") {
            trace_file = next();
        } else if (arg == "--csv") {
            csv_file = next();
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--arrival-bandwidth") {
            arrival_bandwidth = std::atof(next().c_str());
        } else if (arg == "--arrival-jitter") {
            arrival_jitter = std::atof(next().c_str());
        } else if (arg == "--arrival-preroll") {
            arrival_preroll = nextU32();
        } else if (arg == "--fault-seed") {
            faults.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--fault-stall") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kNetworkStall, next()));
        } else if (arg == "--fault-digest") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kDigestCollision, next()));
        } else if (arg == "--fault-dram") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kDramTimeout, next()));
        } else if (arg == "--fault-trace") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kTraceCorrupt, next()));
        } else if (arg == "--fault-retry") {
            faults.dram_retry_limit = nextU32();
        } else if (arg == "--verify-on-hit") {
            verify_on_hit = true;
        } else {
            usage(argv[0]);
        }
    }

    PipelineConfig cfg;
    cfg.profile = scaledWorkload(video, frames, width, height);
    if (seed != 0) {
        cfg.profile.seed = seed;
    }
    cfg.scheme = SchemeConfig::make(scheme, batch);
    cfg.scheme.dcc = dcc;
    cfg.scheme.co_mach = co_mach;
    cfg.scheme.transaction_elimination = te;
    cfg.scheme.dvfs_slack = dvfs;
    cfg.mach.num_machs = machs;
    cfg.mach.entries = entries;
    cfg.mach.verify_on_hit = verify_on_hit;
    cfg.dram.write_queue_depth = write_queue;
    cfg.faults = faults;
    if (arrival_bandwidth > 0.0) {
        cfg.arrival.enabled = true;
        cfg.arrival.bandwidth_mbps = arrival_bandwidth;
        cfg.arrival.jitter_frac = arrival_jitter;
    }
    if (arrival_preroll > 0) {
        cfg.preroll_frames = arrival_preroll;
        cfg.arrival.preroll_frames = arrival_preroll;
    }

    std::unique_ptr<std::ofstream> stats_os, stats_json_os;
    std::unique_ptr<std::ofstream> stats_csv_os, csv_os;
    std::unique_ptr<TraceEventSink> trace;
    if (!stats_file.empty()) {
        stats_os = std::make_unique<std::ofstream>(stats_file);
        cfg.stats_out = stats_os.get();
    }
    if (!stats_json_file.empty()) {
        stats_json_os =
            std::make_unique<std::ofstream>(stats_json_file);
        cfg.stats_json = stats_json_os.get();
    }
    if (!stats_csv_file.empty()) {
        stats_csv_os = std::make_unique<std::ofstream>(stats_csv_file);
        cfg.stats_csv = stats_csv_os.get();
    }
    if (!trace_file.empty()) {
        trace = std::make_unique<TraceEventSink>();
        cfg.trace = trace.get();
    }
    if (!csv_file.empty()) {
        csv_os = std::make_unique<std::ofstream>(csv_file);
        cfg.frame_csv = csv_os.get();
    }

    std::cout << "vstream_sim: " << cfg.profile.key << " ("
              << cfg.profile.name << "), "
              << cfg.profile.frame_count << " frames @ "
              << cfg.profile.width << "x" << cfg.profile.height
              << ", scheme " << schemeName(scheme) << " (batch "
              << batch << ")\n";

    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    std::cout << std::fixed << std::setprecision(2);
    std::cout << "  energy            " << r.totalEnergy() * 1e3
              << " mJ (" << r.totalEnergy() * 1e3 / r.frames
              << " mJ/frame)\n";
    std::cout << "  breakdown (mJ)    "
              << EnergyBreakdown::headerRow() << "\n"
              << "                    "
              << r.energy.normalizedTo(1e-3).row() << "\n";
    std::cout << "  drops             " << r.drops << " / " << r.frames
              << "\n";
    std::cout << "  S3 residency      " << 100.0 * r.s3Residency()
              << " %\n";
    std::cout << "  sleep events      " << r.sleep_events << "\n";
    std::cout << "  peak buffers      " << r.peak_buffers << "\n";
    if (r.mach.lookups > 0) {
        std::cout << "  MACH hit rate     "
                  << 100.0 * r.mach.hitRate() << " % ("
                  << r.mach.intra_hits << " intra, "
                  << r.mach.inter_hits << " inter)\n";
        std::cout << "  writeback saved   "
                  << 100.0 * r.writeback.savings(48) << " %\n";
    }
    std::cout << "  DC requests       " << r.display.dram_requests
              << " (" << r.display.eliminated_frames
              << " frames eliminated)\n";
    std::cout << "  verified          "
              << (r.all_verified ? "yes" : "no") << " ("
              << r.mach.collisions_undetected
              << " undetected collisions)\n";
    if (r.faults.injected > 0 || r.underruns > 0 ||
        r.batch_shrinks > 0) {
        std::cout << "  faults            " << r.faults.injected
                  << " injected, " << r.faults.recovered
                  << " recovered, " << r.faults.abandoned
                  << " abandoned\n";
        std::cout << "  underruns         " << r.underruns << " ("
                  << r.display.underrun_repeats
                  << " repeat scan-outs, " << r.batch_shrinks
                  << " shrunk batches)\n";
    }
    if (r.dram_retries > 0 || r.dram_abandoned > 0) {
        std::cout << "  DRAM retries      " << r.dram_retries << " ("
                  << r.dram_abandoned << " abandoned)\n";
    }
    if (r.mach.false_hits > 0) {
        std::cout << "  false hits caught " << r.mach.false_hits
                  << " (verify-on-hit)\n";
    }
    if (!stats_file.empty()) {
        std::cout << "  stats dump        " << stats_file << "\n";
    }
    if (!stats_json_file.empty()) {
        std::cout << "  stats JSON        " << stats_json_file << "\n";
    }
    if (!stats_csv_file.empty()) {
        std::cout << "  stats CSV         " << stats_csv_file << "\n";
    }
    if (trace) {
        std::ofstream os(trace_file);
        trace->writeJson(os);
        std::cout << "  trace             " << trace_file << " ("
                  << trace->eventCount() << " events)\n";
    }
    if (!csv_file.empty()) {
        std::cout << "  frame CSV         " << csv_file << "\n";
    }
    return 0;
}
