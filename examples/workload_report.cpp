/**
 * @file
 * Workload characterization report.
 *
 * For each of the 16 Table-1 videos, prints the content-similarity
 * statistics an architect would use to size MACH (the paper's
 * Sec. 4.1 analysis): exact intra/inter/no-match fractions, the
 * gab-level match fraction, the optimal dedup bound, and the savings
 * the actual MACH design achieves at the decoder and the display.
 *
 * Usage: workload_report [frames] [keys...]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/video_pipeline.hh"
#include "video/similarity.hh"
#include "video/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace vstream;

    const std::uint32_t frames =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 96;

    std::vector<std::string> keys;
    for (int i = 2; i < argc; ++i) {
        keys.emplace_back(argv[i]);
    }
    if (keys.empty()) {
        for (const auto &p : workloadTable()) {
            keys.push_back(p.key);
        }
    }

    std::cout << std::left << std::setw(5) << "key" << std::right
              << std::setw(8) << "intra%" << std::setw(8) << "inter%"
              << std::setw(8) << "none%" << std::setw(8) << "gab%"
              << std::setw(9) << "optMab%" << std::setw(9) << "optGab%"
              << std::setw(9) << "mabSv%" << std::setw(9) << "gabSv%"
              << std::setw(9) << "dcSv%" << std::setw(8) << "top1g%"
              << "\n";

    for (const auto &key : keys) {
        const VideoProfile p = scaledWorkload(key, frames);
        const SimilarityReport sim = analyzeSimilarity(p, frames);

        const auto base =
            simulateScheme(p, SchemeConfig::make(Scheme::kBaseline));
        const auto mab =
            simulateScheme(p, SchemeConfig::make(Scheme::kMab));
        const auto gab =
            simulateScheme(p, SchemeConfig::make(Scheme::kGab));

        const std::uint32_t mab_bytes = p.mab_dim * p.mab_dim * 3;
        const double dc_save =
            base.display.dram_requests
                ? 1.0 - static_cast<double>(gab.display.dram_requests) /
                            static_cast<double>(base.display.dram_requests)
                : 0.0;

        std::cout << std::left << std::setw(5) << key << std::right
                  << std::fixed << std::setprecision(1) << std::setw(8)
                  << 100.0 * sim.intraFraction() << std::setw(8)
                  << 100.0 * sim.interFraction() << std::setw(8)
                  << 100.0 * sim.noneFraction() << std::setw(8)
                  << 100.0 * sim.gabMatchFraction() << std::setw(9)
                  << 100.0 * sim.optimal_mab_savings << std::setw(9)
                  << 100.0 * sim.optimal_gab_savings << std::setw(9)
                  << 100.0 * mab.writeback.savings(mab_bytes)
                  << std::setw(9)
                  << 100.0 * gab.writeback.savings(mab_bytes)
                  << std::setw(9) << 100.0 * dc_save << std::setw(8)
                  << (sim.top_gab_shares.empty()
                          ? 0.0
                          : 100.0 * sim.top_gab_shares[0])
                  << "\n";
    }
    return 0;
}
