/**
 * @file
 * Data-export walkthrough: the offline artifacts the library can
 * produce around a simulation.
 *
 *  1. a binary video trace (the FFmpeg-trace-equivalent input),
 *  2. per-component statistics (gem5-style),
 *  3. a per-frame CSV (the raw data behind the Fig. 2/4 CDFs).
 *
 * Usage: export_report [video-key] [frames] [output-dir]
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/video_pipeline.hh"
#include "video/trace.hh"
#include "video/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace vstream;

    const std::string key = argc > 1 ? argv[1] : "V8";
    const std::uint32_t frames =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 60;
    const std::filesystem::path dir =
        argc > 3 ? argv[3] : std::filesystem::temp_directory_path();

    const VideoProfile profile = scaledWorkload(key, frames);

    // 1. Trace the synthetic video to disk and verify it loads back.
    const auto trace_path = dir / (profile.key + ".vstrace");
    {
        std::ofstream out(trace_path, std::ios::binary);
        writeTrace(out, profile);
    }
    {
        std::ifstream in(trace_path, std::ios::binary);
        const auto loaded = readTrace(in);
        std::cout << "trace: " << trace_path << " ("
                  << std::filesystem::file_size(trace_path)
                  << " bytes, " << loaded.size()
                  << " frames, integrity verified)\n";
    }

    // 2 & 3. Simulate with both exporters attached.
    const auto stats_path = dir / (profile.key + ".stats.txt");
    const auto csv_path = dir / (profile.key + ".frames.csv");
    std::ofstream stats(stats_path);
    std::ofstream csv(csv_path);

    PipelineConfig cfg;
    cfg.profile = profile;
    cfg.scheme = SchemeConfig::make(Scheme::kGab);
    cfg.stats_out = &stats;
    cfg.frame_csv = &csv;
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    std::cout << "stats: " << stats_path << "\n";
    std::cout << "csv:   " << csv_path << " (" << r.frames
              << " rows)\n";
    std::cout << "\nsummary: " << r.totalEnergy() * 1e3 << " mJ, "
              << r.drops << " drops, "
              << 100.0 * r.writeback.savings(48)
              << "% writeback saved, verified="
              << (r.all_verified ? "yes" : "no");
    if (!r.all_verified) {
        std::cout << " (" << r.mach.collisions_undetected
                  << " undetected CRC32 collisions - enable "
                     "SchemeConfig::co_mach to eliminate them)";
    }
    std::cout << "\n";
    return 0;
}
