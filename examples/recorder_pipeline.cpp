/**
 * @file
 * MACH on the video-recording pipeline (paper Sec. 6.4).
 *
 * The paper's closing observation: the camera -> encoder pipeline is
 * the playback flow in reverse, passing raw frames through memory
 * with the same value locality, so the same MAcroblock caCHe can
 * deduplicate the camera's writeback and the encoder's reads.  This
 * example drives the MACH write stage directly with camera-style
 * frames (no decoder, no display) and reports the memory traffic a
 * recording session would save.
 *
 * Usage: recorder_pipeline [video-key] [frames]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/mach_array.hh"
#include "core/writeback_stage.hh"
#include "sim/event_queue.hh"
#include "video/synthetic_video.hh"
#include "video/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace vstream;

    const std::string key = argc > 1 ? argv[1] : "V3";
    const std::uint32_t frames =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 120;

    // Camera footage resembles natural video; reuse a Table-1
    // profile as the sensor output.
    VideoProfile profile = scaledWorkload(key, frames);
    std::cout << "recording session: " << profile.name << ", "
              << profile.frame_count << " frames @ " << profile.fps
              << " fps, " << profile.width << "x" << profile.height
              << "\n\n";

    EventQueue queue;
    MemorySystem mem("mem", &queue, DramConfig{});
    const std::uint32_t mab_bytes =
        profile.mab_dim * profile.mab_dim * kBytesPerPixel;
    FrameBufferManager fbm(mem, profile.mabsPerFrame(), mab_bytes, 0);

    for (bool gradient : {false, true}) {
        MachConfig mcfg;
        mcfg.use_gradient = gradient;
        MachArray machs(mcfg);
        MachWriteback camera(mem, fbm, machs, LayoutKind::kPointer);

        SyntheticVideo sensor(profile);
        const Tick frame_period = profile.framePeriodTicks();
        Tick now = 0;
        std::uint64_t slot_cycle = 0;

        while (!sensor.done()) {
            const Frame frame = sensor.nextFrame();
            // The camera cycles through a small ring of buffers the
            // encoder drains.
            fbm.release(slot_cycle >= 4 ? slot_cycle - 4 : ~0ULL);
            BufferSlot &slot = fbm.acquire(slot_cycle++);
            FrameLayout layout;
            camera.beginFrame(frame, slot, now, layout);
            for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
                camera.writeMab(frame.mab(i), i, now);
            }
            camera.finishFrame(now);
            now += frame_period;
        }

        const WritebackTotals &t = camera.totals();
        const double raw_mb =
            static_cast<double>(t.baselineBytes(mab_bytes)) / 1e6;
        const double actual_mb =
            static_cast<double>(t.totalBytes()) / 1e6;
        std::cout << (gradient ? "gab" : "mab")
                  << " MACH at the camera:\n";
        std::cout << "  raw sensor writeback   " << std::fixed
                  << std::setprecision(2) << raw_mb << " MB\n";
        std::cout << "  deduplicated writeback " << actual_mb
                  << " MB\n";
        std::cout << "  traffic saved          " << std::setprecision(1)
                  << 100.0 * t.savings(mab_bytes) << "% ("
                  << t.intra_matches << " intra / " << t.inter_matches
                  << " inter matches over " << t.mabs << " blocks)\n\n";
    }

    std::cout << "(the encoder's reference reads would see the same "
                 "dedup through the MACH pointers; paper Sec. 6.4 "
                 "projects this onto recording and GPU/display "
                 "pipelines)\n";
    return 0;
}
