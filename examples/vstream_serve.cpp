/**
 * @file
 * vstream_serve - the multi-session server front end.
 *
 * Drives N concurrent streaming sessions through the SessionManager:
 * admission control against aggregate DRAM-bandwidth / frame-buffer
 * budgets, per-session fault domains walking the Healthy -> Degraded
 * -> Quarantined -> Evicted ladder, and the per-session MACH circuit
 * breaker.  Fault rules given here are remixed per session with
 * FaultConfig::forSession, so every session draws an independent
 * fault stream from one schedule.
 *
 * Usage:
 *   vstream_serve [options]
 *     --sessions N          number of sessions (default 8)
 *     --video KEY           workload V1..V16 (default V8)
 *     --frames N            frames per session (default 300)
 *     --scheme X            L|B|R|S|M|G (default G)
 *     --batch N             batch depth (default 16)
 *     --bandwidth MBPS      aggregate DRAM budget (default 2000)
 *     --framebuffer MB      aggregate pool budget (default 64)
 *     --max-active N        concurrent-session cap (default 64)
 *     --no-queue            reject over-budget submissions outright
 *     --window N            health window, vsyncs (default 32)
 *     --verify-on-hit       byte-compare MACH hits
 *     --stats-json FILE     dump serve.* statistics as JSON
 *     --jobs N              rehearse sessions across N threads
 *                           (output identical at any job count)
 *
 * Fleet options (see docs/SERVING.md):
 *     --shards N            route sessions across N shards under one
 *                           global budget (fleet mode; JSON is
 *                           byte-identical at any shard/job count)
 *     --arrival-rate R      Poisson arrivals, sessions/s (default 550)
 *     --leave-prob P        chance a viewer leaves mid-stream
 *     --arrival-trace FILE  replay a text arrival trace instead
 *                           (lines: <arrival_us> <watch_us> <mix>)
 *
 * Shared-MACH dedup options (see docs/ROBUSTNESS.md):
 *     --dedup on|off        consult the shared cross-session MACH
 *                           tier (default off; off is byte-identical
 *                           to builds without the tier)
 *     --library SPEC        draw session content from a Zipf
 *                           catalogue: "titles=64,skew=0.9,seed=7"
 *     --dedup-poison SPEC   forge digest collisions against one
 *                           domain: "domain=1,rate=0.25,seed=9"
 *
 * Chaos options (fleet mode only; see docs/ROBUSTNESS.md):
 *     --chaos-crash SPEC    crash a shard: "at=500ms,shard=1"
 *     --chaos-brownout SPEC shrink a shard's budget slice:
 *                           "at=300ms,shard=0,len=500ms,factor=0.5"
 *     --chaos-flood SPEC    flash-crowd burst:
 *                           "at=200ms,count=300,len=50ms[,mix=V8]"
 *     --checkpoint-period MS  shard checkpoint cadence (default:
 *                           on iff a crash rule is present)
 *     --queue-deadline MS   expire sessions queued this long
 *     --shed-depth N        shed arrivals once the wait queue holds N
 *
 * Robustness options (per-session; see docs/ROBUSTNESS.md):
 *     --arrival-bandwidth MBPS, --arrival-jitter SIGMA,
 *     --arrival-preroll N, --fault-seed N, --fault-retry N,
 *     --fault-stall SPEC, --fault-digest SPEC, --fault-dram SPEC
 *   SPEC = "p=0.01,from=200ms,until=1.5s,max=3,len=250ms".
 *
 * Every value option also accepts the --opt=VALUE spelling.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>

#include "serve/fleet_report.hh"
#include "serve/session_manager.hh"
#include "sim/parallel.hh"
#include "sim/stats_registry.hh"
#include "video/library.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--sessions N] [--video V1..V16] [--frames N]\n"
                 "  [--scheme L|B|R|S|M|G] [--batch N]\n"
                 "  [--bandwidth MBPS] [--framebuffer MB] "
                 "[--max-active N] [--no-queue]\n"
                 "  [--window N] [--verify-on-hit] "
                 "[--stats-json FILE] [--jobs N]\n"
                 "  [--shards N] [--arrival-rate R] "
                 "[--leave-prob P] [--arrival-trace FILE]\n"
                 "  [--dedup on|off] [--library SPEC] "
                 "[--dedup-poison SPEC]\n"
                 "  [--chaos-crash SPEC] [--chaos-brownout SPEC] "
                 "[--chaos-flood SPEC]\n"
                 "  [--checkpoint-period MS] [--queue-deadline MS] "
                 "[--shed-depth N]\n"
                 "  [--arrival-bandwidth MBPS] [--arrival-jitter S] "
                 "[--arrival-preroll N]\n"
                 "  [--fault-seed N] [--fault-retry N] "
                 "[--fault-stall SPEC]\n"
                 "  [--fault-digest SPEC] [--fault-dram SPEC]\n";
    std::exit(2);
}

Scheme
parseScheme(const std::string &s)
{
    if (s == "L") {
        return Scheme::kBaseline;
    }
    if (s == "B") {
        return Scheme::kBatching;
    }
    if (s == "R") {
        return Scheme::kRacing;
    }
    if (s == "S") {
        return Scheme::kRaceToSleep;
    }
    if (s == "M") {
        return Scheme::kMab;
    }
    if (s == "G") {
        return Scheme::kGab;
    }
    std::cerr << "unknown scheme '" << s << "'\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t sessions = 8, frames = 300, batch = 16, window = 32;
    std::string video = "V8";
    Scheme scheme = Scheme::kGab;
    ServeConfig serve;
    double arrival_bandwidth = 0.0, arrival_jitter = 0.0;
    std::uint32_t arrival_preroll = 0;
    FaultConfig faults;
    bool verify_on_hit = false;
    std::string stats_json_file;
    unsigned n_jobs = defaultJobs();
    std::uint32_t shards = 0;
    double arrival_rate = 550.0, leave_prob = 0.0;
    std::string arrival_trace_file;
    ChaosConfig chaos;
    std::uint32_t shed_depth = 0;
    DedupConfig dedup;
    std::string library_spec;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--opt VALUE" and "--opt=VALUE".
        std::string inline_value;
        bool has_inline = false;
        const std::size_t eq = arg.find('=');
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
            eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto next = [&]() -> std::string {
            if (has_inline) {
                return inline_value;
            }
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        auto nextU32 = [&]() {
            return static_cast<std::uint32_t>(
                std::atoi(next().c_str()));
        };
        if (arg == "--sessions") {
            sessions = nextU32();
        } else if (arg == "--video") {
            video = next();
        } else if (arg == "--frames") {
            frames = nextU32();
        } else if (arg == "--scheme") {
            scheme = parseScheme(next());
        } else if (arg == "--batch") {
            batch = nextU32();
        } else if (arg == "--bandwidth") {
            serve.bandwidth_budget_mbps = std::atof(next().c_str());
        } else if (arg == "--framebuffer") {
            serve.framebuffer_budget_bytes =
                static_cast<std::uint64_t>(
                    std::atoll(next().c_str())) <<
                20;
        } else if (arg == "--max-active") {
            serve.max_active = nextU32();
        } else if (arg == "--no-queue") {
            serve.queue_when_full = false;
        } else if (arg == "--window") {
            window = nextU32();
        } else if (arg == "--verify-on-hit") {
            verify_on_hit = true;
        } else if (arg == "--stats-json") {
            stats_json_file = next();
        } else if (arg == "--jobs") {
            n_jobs = parseJobs(next().c_str());
        } else if (arg == "--shards") {
            shards = nextU32();
        } else if (arg == "--arrival-rate") {
            arrival_rate = std::atof(next().c_str());
        } else if (arg == "--leave-prob") {
            leave_prob = std::atof(next().c_str());
        } else if (arg == "--arrival-trace") {
            arrival_trace_file = next();
        } else if (arg == "--dedup") {
            const std::string v = next();
            if (v != "on" && v != "off") {
                std::cerr << "bad --dedup value '" << v
                          << "' (need on|off)\n";
                return 2;
            }
            dedup.enabled = v == "on";
        } else if (arg == "--library") {
            library_spec = next();
        } else if (arg == "--dedup-poison") {
            dedup.poison.push_back(parseDedupPoisonRule(next()));
        } else if (arg == "--chaos-crash") {
            chaos.rules.push_back(parseFleetFaultRule(
                FleetFaultClass::kShardCrash, next()));
        } else if (arg == "--chaos-brownout") {
            chaos.rules.push_back(parseFleetFaultRule(
                FleetFaultClass::kShardBrownout, next()));
        } else if (arg == "--chaos-flood") {
            chaos.rules.push_back(parseFleetFaultRule(
                FleetFaultClass::kFlashCrowd, next()));
        } else if (arg == "--checkpoint-period") {
            chaos.checkpoint_period =
                static_cast<Tick>(nextU32()) * sim_clock::ms;
        } else if (arg == "--queue-deadline") {
            serve.queue_deadline =
                static_cast<Tick>(nextU32()) * sim_clock::ms;
        } else if (arg == "--shed-depth") {
            shed_depth = nextU32();
        } else if (arg == "--arrival-bandwidth") {
            arrival_bandwidth = std::atof(next().c_str());
        } else if (arg == "--arrival-jitter") {
            arrival_jitter = std::atof(next().c_str());
        } else if (arg == "--arrival-preroll") {
            arrival_preroll = nextU32();
        } else if (arg == "--fault-seed") {
            faults.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--fault-retry") {
            faults.dram_retry_limit = nextU32();
        } else if (arg == "--fault-stall") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kNetworkStall, next()));
        } else if (arg == "--fault-digest") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kDigestCollision, next()));
        } else if (arg == "--fault-dram") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kDramTimeout, next()));
        } else {
            usage(argv[0]);
        }
    }

    std::unique_ptr<ZipfLibrary> library;
    if (!library_spec.empty()) {
        library = std::make_unique<ZipfLibrary>(
            parseLibrarySpec(library_spec));
    }

    // A template SessionConfig for session @p id, shared by the
    // single-manager and fleet paths.
    auto makeSession = [&](std::uint64_t id) {
        SessionConfig s;
        s.id = id;
        s.health.window_vsyncs = window;
        s.pipeline.profile = scaledWorkload(video, frames);
        if (library != nullptr) {
            // Library content: the Zipf draw decides the title, and
            // sessions on the same title decode identical bytes.
            library->applyTo(s.pipeline.profile,
                             library->sampleTitle(id));
        } else {
            // Per-session content seed: sessions are peers, not
            // clones.
            s.pipeline.profile.seed +=
                static_cast<std::uint32_t>(id) * 0x9e3779b9u;
        }
        s.dedup_record = dedup.enabled;
        s.pipeline.scheme = SchemeConfig::make(scheme, batch);
        s.pipeline.mach.verify_on_hit = verify_on_hit;
        s.pipeline.faults = faults.forSession(id);
        if (arrival_bandwidth > 0.0) {
            s.pipeline.arrival.enabled = true;
            s.pipeline.arrival.bandwidth_mbps = arrival_bandwidth;
            s.pipeline.arrival.jitter_frac = arrival_jitter;
        }
        if (arrival_preroll > 0) {
            s.pipeline.preroll_frames = arrival_preroll;
        }
        return s;
    };

    if (shards > 0) {
        const auto wall_start = std::chrono::steady_clock::now();
        FleetConfig fleet;
        fleet.serve = serve;
        fleet.shards = shards;
        fleet.jobs = n_jobs;
        fleet.rebalance_period = static_cast<Tick>(1) * sim_clock::s;
        chaos.shed_depth = shed_depth;
        fleet.chaos = chaos;
        fleet.dedup = dedup;

        std::vector<ArrivalEvent> arrivals;
        if (!arrival_trace_file.empty()) {
            std::ifstream is(arrival_trace_file);
            if (!is) {
                std::cerr << "cannot open arrival trace '"
                          << arrival_trace_file << "'\n";
                return 2;
            }
            ArrivalTraceResult tr = parseArrivalTrace(is);
            if (!tr.ok()) {
                std::cerr << tr.error << "\n";
                return 2;
            }
            arrivals = std::move(tr.events);
        } else {
            PoissonArrivalConfig pa;
            pa.rate_per_s = arrival_rate;
            pa.count = sessions;
            pa.leave_probability = leave_prob;
            pa.min_watch = static_cast<Tick>(100) * sim_clock::ms;
            pa.max_watch =
                static_cast<Tick>(frames) *
                (static_cast<Tick>(sim_clock::s) / 60);
            arrivals = poissonArrivals(pa);
        }
        arrivals = withFlashCrowds(std::move(arrivals), fleet.chaos);

        std::cout << "vstream_serve fleet: " << arrivals.size()
                  << " arrivals of " << video << " x " << frames
                  << " frames across " << shards << " shard(s)\n\n";
        Placer placer(fleet, [&](const ArrivalEvent &a) {
            return makeSession(a.id);
        });
        placer.run(arrivals);

        const StatsSnapshot fs = placer.fleetSnapshot();
        std::cout << std::fixed << std::setprecision(2);
        std::cout << "admitted " << placer.admitted() << ", queued "
                  << placer.queuedTotal() << ", rejected "
                  << placer.rejected() << ", evicted "
                  << fs.count("state.evicted") << ", left early "
                  << fs.count("leftEarly") << "\n";
        const RecoveryTotals &rec = placer.recovery();
        if (rec.any()) {
            std::cout << "recovery: " << rec.crashes << " crash(es), "
                      << rec.brownouts << " brownout(s), restored "
                      << rec.restored << " + replayed "
                      << rec.replayed << ", failed over "
                      << rec.failed_over << ", shed " << rec.shed
                      << ", queue timeouts " << rec.queue_timeouts
                      << "\n";
        }
        const ScalarAgg *energy = fs.scalar("energyJ");
        std::cout << "aggregate energy "
                  << (energy != nullptr ? energy->sum() : 0.0) * 1e3
                  << " mJ over " << ticksToMs(placer.endTick())
                  << " ms served (peak " << placer.peakActive()
                  << " active)\n";
        if (const SharedMachTier *tier = placer.dedupTier()) {
            const DedupDomainStats t = tier->totals();
            std::cout << "dedup: " << t.shared_hits
                      << " shared hit(s), " << t.bytes_elided
                      << " B elided, " << t.false_hits
                      << " false hit(s), " << t.trips
                      << " breaker trip(s)\n";
        }
        if (!stats_json_file.empty()) {
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            std::ofstream os(stats_json_file);
            writeFleetReport(os, placer, "vstream_serve",
                             arrivals.size(), wall, 0);
            std::cout << "stats JSON " << stats_json_file << "\n";
        }
        return placer.admitted() > 0 ? 0 : 1;
    }

    SessionManager mgr(serve);
    // Single-manager mode is one fault domain; poison rules must
    // target domain 0.
    std::unique_ptr<SharedMachTier> tier;
    if (dedup.enabled) {
        tier = std::make_unique<SharedMachTier>(dedup, 1);
        mgr.setDedup(tier.get());
    }

    std::cout << "vstream_serve: " << sessions << " sessions of "
              << video << " x " << frames << " frames, scheme "
              << schemeName(scheme) << "\n"
              << "budgets: " << serve.bandwidth_budget_mbps
              << " MB/s, "
              << (serve.framebuffer_budget_bytes >> 20)
              << " MB frame buffers, max " << serve.max_active
              << " active\n\n";

    std::vector<SessionConfig> cfgs;
    cfgs.reserve(sessions);
    for (std::uint32_t id = 0; id < sessions; ++id) {
        cfgs.push_back(makeSession(id));
    }
    if (n_jobs > 1) {
        mgr.precompute(cfgs, n_jobs);
    }
    std::uint64_t submitted_rejected = 0;
    for (SessionConfig &s : cfgs) {
        if (mgr.submit(std::move(s)) == Admission::kRejected) {
            ++submitted_rejected;
        }
    }
    mgr.runAll();

    std::cout << std::left << std::setw(9) << "session" << std::right
              << std::setw(13) << "final" << std::setw(8) << "trips"
              << std::setw(12) << "breaker" << std::setw(12)
              << "energy mJ" << std::setw(8) << "drops"
              << std::setw(11) << "degr ms" << "\n";
    std::cout << std::fixed << std::setprecision(2);
    double total_j = 0.0;
    for (const SessionOutcome &o : mgr.outcomes()) {
        total_j += o.result.totalEnergy();
        std::cout << std::left << std::setw(9) << o.id << std::right
                  << std::setw(13) << healthStateName(o.final_state)
                  << std::setw(8) << o.breaker_trips << std::setw(12)
                  << breakerStateName(o.breaker_state) << std::setw(12)
                  << o.result.totalEnergy() * 1e3 << std::setw(8)
                  << o.result.drops << std::setw(11)
                  << ticksToMs(o.dwell[static_cast<std::size_t>(
                         HealthState::kDegraded)])
                  << "\n";
    }

    std::cout << "\nadmitted " << mgr.admitted() << ", queued "
              << mgr.queuedTotal() << ", rejected " << mgr.rejected()
              << ", evicted " << mgr.evicted() << ", breaker trips "
              << mgr.breakerTrips() << "\n"
              << "aggregate energy " << total_j * 1e3 << " mJ over "
              << ticksToMs(mgr.curTick()) << " ms served\n";
    if (tier != nullptr) {
        const DedupSettle &t = mgr.dedupTotals();
        std::cout << "dedup: " << t.shared_hits
                  << " shared hit(s), " << t.self_hits
                  << " self hit(s), " << t.bytes_elided
                  << " B elided, " << t.false_hits
                  << " false hit(s), " << tier->totals().trips
                  << " breaker trip(s)\n";
    }

    if (!stats_json_file.empty()) {
        StatsRegistry reg;
        mgr.regStats(reg);
        std::ofstream os(stats_json_file);
        reg.dumpJson(os);
        std::cout << "stats JSON " << stats_json_file << "\n";
    }
    return submitted_rejected == sessions ? 1 : 0;
}
