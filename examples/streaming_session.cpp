/**
 * @file
 * Streaming-session explorer: how network behaviour interacts with
 * race-to-sleep.
 *
 * The paper stresses that race-to-sleep is *adaptive*: it leverages
 * however many frames the network has buffered (Sec. 3.3) - bursty
 * delivery means deeper effective batches and longer deep sleeps.
 * This example sweeps the delivery-chunk interval and the pre-roll
 * depth and reports energy, drops, and sleep residency for the
 * baseline and the full GAB pipeline.
 *
 * Usage: streaming_session [video-key] [frames]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/video_pipeline.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

struct SessionResult
{
    double energy_mj;
    std::uint32_t drops;
    double s3_pct;
    std::uint64_t sleeps;
};

SessionResult
runSession(const VideoProfile &profile, Scheme scheme,
           Tick chunk_interval, std::uint32_t preroll)
{
    PipelineConfig cfg;
    cfg.profile = profile;
    cfg.scheme = SchemeConfig::make(scheme);
    cfg.buffer_interval = chunk_interval;
    cfg.preroll_frames = preroll;
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();
    return SessionResult{r.totalEnergy() * 1e3, r.drops,
                         100.0 * r.s3Residency(), r.sleep_events};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string key = argc > 1 ? argv[1] : "V5";
    const std::uint32_t frames =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 180;
    const VideoProfile profile = scaledWorkload(key, frames);

    std::cout << "streaming session: " << profile.key << " ("
              << profile.name << "), " << profile.frame_count
              << " frames\n\n";

    std::cout << "--- delivery-chunk interval sweep (pre-roll 32) ---\n";
    std::cout << std::left << std::setw(12) << "chunk(ms)" << std::right
              << std::setw(12) << "L mJ" << std::setw(9) << "L drops"
              << std::setw(12) << "GAB mJ" << std::setw(9) << "drops"
              << std::setw(8) << "S3%" << std::setw(9) << "sleeps"
              << std::setw(9) << "save%" << "\n";
    for (std::uint32_t ms : {100u, 250u, 450u, 900u, 1800u}) {
        const Tick interval = static_cast<Tick>(ms) * sim_clock::ms;
        const SessionResult base =
            runSession(profile, Scheme::kBaseline, interval, 32);
        const SessionResult gab =
            runSession(profile, Scheme::kGab, interval, 32);
        std::cout << std::left << std::setw(12) << ms << std::right
                  << std::fixed << std::setprecision(1) << std::setw(12)
                  << base.energy_mj << std::setw(9) << base.drops
                  << std::setw(12) << gab.energy_mj << std::setw(9)
                  << gab.drops << std::setw(8) << gab.s3_pct
                  << std::setw(9) << gab.sleeps << std::setw(9)
                  << 100.0 * (1.0 - gab.energy_mj / base.energy_mj)
                  << "\n";
    }
    std::cout << "(bursty delivery -> fewer, longer sleeps; the "
                 "savings hold across network behaviours)\n\n";

    std::cout << "--- pre-roll depth sweep (steady 100 ms chunks, so "
                 "a shallow pre-roll is not starved) ---\n";
    std::cout << std::left << std::setw(12) << "preroll" << std::right
              << std::setw(12) << "GAB mJ" << std::setw(9) << "drops"
              << std::setw(8) << "S3%" << "\n";
    const Tick interval = static_cast<Tick>(100) * sim_clock::ms;
    for (std::uint32_t preroll : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const SessionResult gab =
            runSession(profile, Scheme::kGab, interval, preroll);
        std::cout << std::left << std::setw(12) << preroll
                  << std::right << std::fixed << std::setprecision(1)
                  << std::setw(12) << gab.energy_mj << std::setw(9)
                  << gab.drops << std::setw(8) << gab.s3_pct << "\n";
    }
    std::cout << "(even a couple of buffered frames already enable "
                 "meaningful batching - the paper's Fig. 6 point)\n";
    return 0;
}
