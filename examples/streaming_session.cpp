/**
 * @file
 * Streaming-session explorer: how network behaviour interacts with
 * race-to-sleep.
 *
 * The paper stresses that race-to-sleep is *adaptive*: it leverages
 * however many frames the network has buffered (Sec. 3.3) - bursty
 * delivery means deeper effective batches and longer deep sleeps.
 * This example drives the explicit network ArrivalModel (lognormal
 * per-frame transfer jitter, optional stall storms) and sweeps link
 * bandwidth and pre-roll depth, reporting energy, drops, underruns,
 * and sleep residency for the baseline and the full GAB pipeline.
 *
 * Usage:
 *   streaming_session [options]
 *     --video KEY             workload V1..V16 (default V5)
 *     --frames N              frame cap (default 180)
 *     --arrival-jitter SIGMA  lognormal sigma on transfer times
 *                             (default 0.3)
 *     --arrival-preroll N     pre-roll depth for the bandwidth
 *                             sweep (default 32)
 *     --fault-seed N          fault-schedule RNG seed
 *     --fault-stall SPEC      network-stall rule, e.g.
 *                             "p=0.05,from=200ms,until=2s,len=120ms"
 *
 * Every value option also accepts the --opt=VALUE spelling.
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/video_pipeline.hh"
#include "video/workloads.hh"

namespace
{

using namespace vstream;

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--video V1..V16] [--frames N]\n"
                 "  [--arrival-jitter SIGMA] [--arrival-preroll N]\n"
                 "  [--fault-seed N] [--fault-stall SPEC]\n";
    std::exit(2);
}

struct SessionResult
{
    double energy_mj;
    std::uint32_t drops;
    std::uint64_t underruns;
    double s3_pct;
    std::uint64_t sleeps;
    FaultTotals faults;
};

SessionResult
runSession(const VideoProfile &profile, Scheme scheme,
           double bandwidth_mbps, double jitter, std::uint32_t preroll,
           const FaultConfig &faults)
{
    PipelineConfig cfg;
    cfg.profile = profile;
    cfg.scheme = SchemeConfig::make(scheme);
    cfg.arrival.enabled = true;
    cfg.arrival.bandwidth_mbps = bandwidth_mbps;
    cfg.arrival.jitter_frac = jitter;
    cfg.preroll_frames = preroll;
    cfg.faults = faults;
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();
    return SessionResult{r.totalEnergy() * 1e3, r.drops,  r.underruns,
                         100.0 * r.s3Residency(), r.sleep_events,
                         r.faults};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string key = "V5";
    std::uint32_t frames = 180, preroll = 32;
    double jitter = 0.3;
    FaultConfig faults;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--opt VALUE" and "--opt=VALUE".
        std::string inline_value;
        bool has_inline = false;
        const std::size_t eq = arg.find('=');
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
            eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto next = [&]() -> std::string {
            if (has_inline) {
                return inline_value;
            }
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (arg == "--video") {
            key = next();
        } else if (arg == "--frames") {
            frames = static_cast<std::uint32_t>(
                std::atoi(next().c_str()));
        } else if (arg == "--arrival-jitter") {
            jitter = std::atof(next().c_str());
        } else if (arg == "--arrival-preroll") {
            preroll = static_cast<std::uint32_t>(
                std::atoi(next().c_str()));
        } else if (arg == "--fault-seed") {
            faults.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--fault-stall") {
            faults.rules.push_back(
                parseFaultRule(FaultClass::kNetworkStall, next()));
        } else {
            usage(argv[0]);
        }
    }

    const VideoProfile profile = scaledWorkload(key, frames);
    std::cout << "streaming session: " << profile.key << " ("
              << profile.name << "), " << profile.frame_count
              << " frames, arrival jitter sigma " << jitter << "\n\n";

    std::cout << "--- link-bandwidth sweep (pre-roll " << preroll
              << ") ---\n";
    std::cout << std::left << std::setw(12) << "link(Mbps)"
              << std::right << std::setw(12) << "L mJ" << std::setw(9)
              << "L drops" << std::setw(12) << "GAB mJ" << std::setw(9)
              << "drops" << std::setw(10) << "underrun" << std::setw(8)
              << "S3%" << std::setw(9) << "sleeps" << std::setw(9)
              << "save%" << "\n";
    FaultTotals sweep_faults;
    for (double mbps : {0.5, 1.0, 2.0, 8.0, 40.0}) {
        const SessionResult base = runSession(
            profile, Scheme::kBaseline, mbps, jitter, preroll, faults);
        const SessionResult gab = runSession(
            profile, Scheme::kGab, mbps, jitter, preroll, faults);
        sweep_faults.injected += base.faults.injected;
        sweep_faults.injected += gab.faults.injected;
        sweep_faults.recovered += base.faults.recovered;
        sweep_faults.recovered += gab.faults.recovered;
        sweep_faults.abandoned += base.faults.abandoned;
        sweep_faults.abandoned += gab.faults.abandoned;
        std::cout << std::left << std::setw(12) << mbps << std::right
                  << std::fixed << std::setprecision(1) << std::setw(12)
                  << base.energy_mj << std::setw(9) << base.drops
                  << std::setw(12) << gab.energy_mj << std::setw(9)
                  << gab.drops << std::setw(10) << gab.underruns
                  << std::setw(8) << gab.s3_pct << std::setw(9)
                  << gab.sleeps << std::setw(9)
                  << 100.0 * (1.0 - gab.energy_mj / base.energy_mj)
                  << "\n";
    }
    std::cout << "(a slow link throttles delivery into bursts - "
                 "fewer, longer sleeps; the savings hold across "
                 "network behaviours)\n\n";

    std::cout << "--- pre-roll depth sweep (2 Mbps link, so a "
                 "shallow pre-roll is not starved) ---\n";
    std::cout << std::left << std::setw(12) << "preroll" << std::right
              << std::setw(12) << "GAB mJ" << std::setw(9) << "drops"
              << std::setw(10) << "underrun" << std::setw(8) << "S3%"
              << "\n";
    for (std::uint32_t p : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const SessionResult gab =
            runSession(profile, Scheme::kGab, 2.0, jitter, p, faults);
        std::cout << std::left << std::setw(12) << p << std::right
                  << std::fixed << std::setprecision(1) << std::setw(12)
                  << gab.energy_mj << std::setw(9) << gab.drops
                  << std::setw(10) << gab.underruns << std::setw(8)
                  << gab.s3_pct << "\n";
    }
    std::cout << "(even a couple of buffered frames already enable "
                 "meaningful batching - the paper's Fig. 6 point)\n";

    if (sweep_faults.injected > 0) {
        std::cout << "\n--- faults (bandwidth sweep totals) ---\n"
                  << "injected " << sweep_faults.injected
                  << ", recovered " << sweep_faults.recovered
                  << ", abandoned " << sweep_faults.abandoned << "\n";
    }
    return 0;
}
