/**
 * @file
 * Fuzz harness for the trace loader (the binary-format parser).
 *
 * Traces arrive from outside the process, so loadTrace() and
 * TraceReader must survive arbitrary bytes: no crash, no sanitizer
 * report, no absurd allocation (the geometry caps in trace.hh bound
 * every Frame the loader may construct), and a result that is
 * internally consistent under both damage policies.
 *
 * Built with -fsanitize=fuzzer under Clang; under GCC the fallback
 * driver in fuzz_driver_main.cc replays and mutates the checked-in
 * corpus (fuzz/corpus/trace_loader) instead.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "fuzz_common.hh"
#include "video/trace.hh"

namespace
{

/** Loader invariants that must hold for *any* input bytes. */
void
checkResult(const vstream::TraceLoadResult &result,
            vstream::TracePolicy policy)
{
    using vstream::TraceError;
    using vstream::TracePolicy;

    if (result.ok()) {
        // A clean load keeps every announced frame and skips none.
        FUZZ_ASSERT(result.frames.size() == result.frames_expected);
        FUZZ_ASSERT(result.frames_skipped == 0);
    } else if (policy == TracePolicy::kFailClean) {
        // Fail-clean means fail *clean*: damage discards everything.
        FUZZ_ASSERT(result.frames.empty());
    }
    // Under either policy the loader never invents frames.
    FUZZ_ASSERT(result.frames.size() + result.frames_skipped <=
                result.frames_expected);

    // Every surviving frame obeys the documented geometry caps, so
    // the per-frame allocation downstream code performs is bounded.
    for (const vstream::Frame &frame : result.frames) {
        const auto mabs = static_cast<std::uint64_t>(frame.mabsX()) *
                          frame.mabsY();
        FUZZ_ASSERT(frame.mabsX() <= vstream::kMaxTraceMabsPerAxis);
        FUZZ_ASSERT(frame.mabsY() <= vstream::kMaxTraceMabsPerAxis);
        FUZZ_ASSERT(mabs <= vstream::kMaxTraceMabsPerFrame);
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string bytes(reinterpret_cast<const char *>(data),
                            size);

    {
        std::istringstream is(bytes);
        checkResult(vstream::loadTrace(is,
                                       vstream::TracePolicy::kFailClean),
                    vstream::TracePolicy::kFailClean);
    }
    {
        std::istringstream is(bytes);
        checkResult(vstream::loadTrace(is,
                                       vstream::TracePolicy::kSkipFrame),
                    vstream::TracePolicy::kSkipFrame);
    }

    // Drive the incremental reader too: tryNextFrame() must make
    // progress (or flag an error) on every call, and the trailer
    // check must be callable no matter where the stream died.
    {
        std::istringstream is(bytes);
        vstream::TraceReader reader(is);
        std::uint32_t frames = 0;
        while (!reader.done()) {
            if (!reader.tryNextFrame().has_value()) {
                FUZZ_ASSERT(reader.error() !=
                            vstream::TraceError::kNone);
                break;
            }
            ++frames;
            FUZZ_ASSERT(frames <= reader.frameCount());
        }
        reader.verifyTrailer();
        if (reader.error() == vstream::TraceError::kNone) {
            FUZZ_ASSERT(frames == reader.frameCount());
        }
    }
    return 0;
}
