/**
 * @file
 * Standalone replay/mutation driver for the fuzz harnesses.
 *
 * The container's baked-in toolchain is gcc-only, and libFuzzer ships
 * with Clang.  This driver gives every harness a main() with the same
 * command-line shape libFuzzer uses, so the smoke ctests run under
 * either compiler:
 *
 *   fuzz_<target> [-runs=N] [-max_len=N] corpus-file-or-dir...
 *
 * Behaviour: replay every corpus input once, then run N additional
 * inputs derived from the corpus by *deterministic* mutation -- the
 * mutation stream is a splitmix64 chain seeded from the run index and
 * the seed bytes, never from the wall clock, so a failing run
 * reproduces bit-for-bit.  Unknown "-flag" arguments are ignored
 * (libFuzzer flags may appear in shared scripts).
 *
 * This is a smoke driver, not a coverage-guided fuzzer: it proves
 * the harness invariants hold across the corpus and a bounded
 * neighbourhood of it.  Deep exploration runs under Clang in CI.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace
{

using Bytes = std::vector<std::uint8_t>;

/** splitmix64: tiny, seedable, and plenty for mutation schedules. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
readFile(const std::filesystem::path &path, Bytes &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return false;
    }
    out.assign(std::istreambuf_iterator<char>(is),
               std::istreambuf_iterator<char>());
    return true;
}

/** Corpus files from @p arg (file or directory), sorted by path so
 * the replay order -- and hence the mutation schedule -- is stable
 * across filesystems. */
void
collectInputs(const std::string &arg,
              std::vector<std::filesystem::path> &out)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
        for (const fs::directory_entry &entry :
             fs::directory_iterator(arg, ec)) {
            if (entry.is_regular_file()) {
                out.push_back(entry.path());
            }
        }
    } else if (fs::is_regular_file(arg, ec)) {
        out.push_back(arg);
    } else {
        std::fprintf(stderr, "fuzz driver: no such input: %s\n",
                     arg.c_str());
        std::exit(2);
    }
}

/** One deterministic mutation of @p seed (flip / insert / delete /
 * duplicate / truncate), bounded by @p max_len. */
Bytes
mutate(const Bytes &seed, std::uint64_t &rng, std::size_t max_len)
{
    Bytes out = seed;
    const std::uint64_t edits = 1 + nextRand(rng) % 8;
    for (std::uint64_t e = 0; e < edits; ++e) {
        switch (nextRand(rng) % 5) {
          case 0: // flip a byte
            if (!out.empty()) {
                out[nextRand(rng) % out.size()] ^=
                    static_cast<std::uint8_t>(1 + nextRand(rng) % 255);
            }
            break;
          case 1: // insert a byte
            if (out.size() < max_len) {
                out.insert(out.begin() +
                               static_cast<std::ptrdiff_t>(
                                   nextRand(rng) % (out.size() + 1)),
                           static_cast<std::uint8_t>(nextRand(rng)));
            }
            break;
          case 2: // delete a byte
            if (!out.empty()) {
                out.erase(out.begin() +
                          static_cast<std::ptrdiff_t>(
                              nextRand(rng) % out.size()));
            }
            break;
          case 3: // duplicate a chunk
            if (!out.empty() && out.size() < max_len) {
                const std::size_t at = nextRand(rng) % out.size();
                const std::size_t len = std::min<std::size_t>(
                    1 + nextRand(rng) % 16, out.size() - at);
                Bytes chunk(out.begin() +
                                static_cast<std::ptrdiff_t>(at),
                            out.begin() +
                                static_cast<std::ptrdiff_t>(at + len));
                out.insert(out.begin() +
                               static_cast<std::ptrdiff_t>(at),
                           chunk.begin(), chunk.end());
            }
            break;
          case 4: // truncate the tail
            if (!out.empty()) {
                out.resize(nextRand(rng) % out.size());
            }
            break;
        }
    }
    if (out.size() > max_len) {
        out.resize(max_len);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t runs = 0;
    std::size_t max_len = 1 << 16;
    std::vector<std::filesystem::path> inputs;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "-runs=", 6) == 0) {
            runs = std::strtoull(arg + 6, nullptr, 10);
        } else if (std::strncmp(arg, "-max_len=", 9) == 0) {
            max_len = std::strtoull(arg + 9, nullptr, 10);
        } else if (arg[0] == '-') {
            // Tolerate libFuzzer flags in shared invocations.
        } else {
            collectInputs(arg, inputs);
        }
    }
    std::sort(inputs.begin(), inputs.end());

    std::vector<Bytes> seeds;
    for (const std::filesystem::path &path : inputs) {
        Bytes bytes;
        if (!readFile(path, bytes)) {
            std::fprintf(stderr, "fuzz driver: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
        seeds.push_back(std::move(bytes));
    }

    // Mutation phase: every run re-derives its RNG stream from the
    // run index alone, so adding corpus files never reshuffles the
    // mutations applied to existing ones.
    if (seeds.empty()) {
        seeds.emplace_back(); // mutate from the empty input
    }
    for (std::uint64_t run = 0; run < runs; ++run) {
        std::uint64_t rng = 0x5eedf417ULL ^ (run * 0x100000001b3ULL);
        const Bytes &seed = seeds[run % seeds.size()];
        const Bytes input = mutate(seed, rng, max_len);
        LLVMFuzzerTestOneInput(input.data(), input.size());
    }

    std::printf("fuzz driver: %zu seed inputs, %llu mutated runs\n",
                seeds.size(),
                static_cast<unsigned long long>(runs));
    return 0;
}
