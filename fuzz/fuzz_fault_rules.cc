/**
 * @file
 * Fuzz harness for the fault-rule spec parser (the text parser).
 *
 * Rule specs come from the command line / environment, so
 * tryParseFaultRule() must reject any hostile spec gracefully: no
 * process termination, no undefined behaviour (NaN or overlarge
 * times must never reach a float-to-Tick cast), and on success a
 * rule whose fields all satisfy the documented invariants.
 *
 * Built with -fsanitize=fuzzer under Clang; under GCC the fallback
 * driver in fuzz_driver_main.cc replays and mutates the checked-in
 * corpus (fuzz/corpus/fault_rules) instead.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz_common.hh"
#include "sim/fault_injector.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    // Specs are short key=value lists; cap the length so the fuzzer
    // explores structure instead of megabyte-long field values.
    constexpr std::size_t kMaxSpec = 4096;
    const std::string spec(reinterpret_cast<const char *>(data),
                           size < kMaxSpec ? size : kMaxSpec);

    static constexpr vstream::FaultClass kClasses[] = {
        vstream::FaultClass::kNetworkStall,
        vstream::FaultClass::kDigestCollision,
        vstream::FaultClass::kDramTimeout,
        vstream::FaultClass::kTraceCorrupt,
    };

    for (const vstream::FaultClass cls : kClasses) {
        vstream::FaultRule rule;
        std::string error;
        if (!vstream::tryParseFaultRule(cls, spec, rule, error)) {
            // Rejection must come with a diagnostic.
            FUZZ_ASSERT(!error.empty());
            continue;
        }
        // An accepted rule obeys every documented field invariant;
        // note both range forms are deliberately NaN-rejecting.
        FUZZ_ASSERT(rule.cls == cls);
        FUZZ_ASSERT(rule.probability >= 0.0 &&
                    rule.probability <= 1.0);
        FUZZ_ASSERT(rule.from < rule.until);
        // Accepted specs round-trip through the fatal entry point
        // without tripping it (the two parsers must agree).
        const vstream::FaultRule again =
            vstream::parseFaultRule(cls, spec);
        FUZZ_ASSERT(again.probability == rule.probability);
        FUZZ_ASSERT(again.from == rule.from);
        FUZZ_ASSERT(again.until == rule.until);
        FUZZ_ASSERT(again.max_count == rule.max_count);
        FUZZ_ASSERT(again.duration == rule.duration);
    }
    return 0;
}
