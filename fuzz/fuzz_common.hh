/**
 * @file
 * Shared plumbing for the fuzz harnesses.
 *
 * Harnesses express their invariants with FUZZ_ASSERT rather than
 * vs_assert: a violated invariant must abort even in builds where the
 * library's assertions are compiled out, and must do so through a
 * mechanism libFuzzer and the sanitizers recognise as a crash.
 */

#ifndef VSTREAM_FUZZ_FUZZ_COMMON_HH
#define VSTREAM_FUZZ_FUZZ_COMMON_HH

#include <cstdio>
#include <cstdlib>

#define FUZZ_ASSERT(cond)                                              \
    do {                                                               \
        if (!(cond)) {                                                 \
            std::fprintf(stderr,                                       \
                         "FUZZ_ASSERT failed: %s (%s:%d)\n", #cond,    \
                         __FILE__, __LINE__);                          \
            std::abort();                                              \
        }                                                              \
    } while (false)

#endif // VSTREAM_FUZZ_FUZZ_COMMON_HH
