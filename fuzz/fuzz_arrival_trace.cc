/**
 * @file
 * Fuzz harness for the arrival-trace parser (the third untrusted
 * parser: --arrival-trace files replay measured traffic).
 *
 * parseArrivalTrace() must reject any hostile trace gracefully - no
 * process termination, no unbounded allocation, no overflowed
 * microsecond-to-tick conversion - and on success return a schedule
 * that satisfies the documented contract: events in non-decreasing
 * tick order, ids sequential from first_id, ticks exactly
 * `<arrival_us> * sim_clock::us`.
 *
 * Built with -fsanitize=fuzzer under Clang; under GCC the fallback
 * driver in fuzz_driver_main.cc replays and mutates the checked-in
 * corpus (fuzz/corpus/arrival_trace) instead.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "fuzz_common.hh"
#include "serve/arrivals.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    // Traces are line-oriented; cap the size so the fuzzer explores
    // line structure instead of megabyte-long documents.
    constexpr std::size_t kMaxTrace = 1 << 16;
    const std::string text(reinterpret_cast<const char *>(data),
                           size < kMaxTrace ? size : kMaxTrace);

    constexpr std::uint64_t kFirstId = 17;
    std::istringstream is(text);
    const vstream::ArrivalTraceResult r =
        vstream::parseArrivalTrace(is, kFirstId);
    if (!r.ok()) {
        // Rejection must come with a diagnostic; a failed parse
        // must not leak a partial schedule.
        FUZZ_ASSERT(!r.error.empty());
        FUZZ_ASSERT(r.events.empty());
        return 0;
    }
    // An accepted schedule obeys the documented contract.
    for (std::size_t i = 0; i < r.events.size(); ++i) {
        const vstream::ArrivalEvent &e = r.events[i];
        FUZZ_ASSERT(e.id == kFirstId + i);
        FUZZ_ASSERT(e.tick % vstream::sim_clock::us == 0);
        FUZZ_ASSERT(e.leave_after % vstream::sim_clock::us == 0);
        if (i > 0) {
            FUZZ_ASSERT(e.tick >= r.events[i - 1].tick);
        }
    }
    // Parsing the same bytes again is deterministic.
    std::istringstream again(text);
    const vstream::ArrivalTraceResult r2 =
        vstream::parseArrivalTrace(again, kFirstId);
    FUZZ_ASSERT(r2.ok());
    FUZZ_ASSERT(r2.events.size() == r.events.size());
    return 0;
}
