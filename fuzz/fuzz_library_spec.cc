/**
 * @file
 * Fuzz harness for the content-library spec parser.
 *
 * Library specs ("titles=64,skew=0.9,seed=7") come from the command
 * line, so tryParseLibrarySpec() must reject any hostile spec
 * gracefully: no process termination, no NaN or out-of-range skew
 * reaching the Zipf CDF, and on success a spec whose fields all
 * satisfy the documented invariants.
 *
 * Built with -fsanitize=fuzzer under Clang; under GCC the fallback
 * driver in fuzz_driver_main.cc replays and mutates the checked-in
 * corpus (fuzz/corpus/library_spec) instead.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz_common.hh"
#include "video/library.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    // Specs are short key=value lists; cap the length so the fuzzer
    // explores structure instead of megabyte-long field values.
    constexpr std::size_t kMaxSpec = 4096;
    const std::string spec(reinterpret_cast<const char *>(data),
                           size < kMaxSpec ? size : kMaxSpec);

    vstream::LibrarySpec lib;
    std::string error;
    if (!vstream::tryParseLibrarySpec(spec, lib, error)) {
        // Rejection must come with a diagnostic.
        FUZZ_ASSERT(!error.empty());
        return 0;
    }

    // An accepted spec obeys every documented field invariant; the
    // inclusive-range form is deliberately NaN-rejecting.
    FUZZ_ASSERT(lib.titles >= 1 && lib.titles <= (1u << 20));
    FUZZ_ASSERT(lib.skew >= 0.0 && lib.skew <= 16.0);

    // Accepted specs round-trip through the fatal entry point
    // without tripping it (the two parsers must agree).
    const vstream::LibrarySpec again =
        vstream::parseLibrarySpec(spec);
    FUZZ_ASSERT(again.titles == lib.titles);
    FUZZ_ASSERT(again.skew == lib.skew);
    FUZZ_ASSERT(again.seed == lib.seed);

    // The library construction path must hold for anything the
    // parser admits: the CDF ends at exactly 1.0 and the draw for a
    // fixed key is a pure function of the spec.
    const vstream::ZipfLibrary library(lib);
    const std::uint32_t title = library.sampleTitle(42);
    FUZZ_ASSERT(title < lib.titles);
    FUZZ_ASSERT(library.sampleTitle(42) == title);
    return 0;
}
