/**
 * @file
 * Unit tests for the simulation kernel: ticks, event queue, logging.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/ticks.hh"

namespace vstream
{
namespace
{

TEST(Ticks, UnitRelations)
{
    EXPECT_EQ(sim_clock::ns, 1000u * sim_clock::ps);
    EXPECT_EQ(sim_clock::us, 1000u * sim_clock::ns);
    EXPECT_EQ(sim_clock::ms, 1000u * sim_clock::us);
    EXPECT_EQ(sim_clock::s, 1000u * sim_clock::ms);
}

TEST(Ticks, Conversions)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(sim_clock::s), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(sim_clock::ms * 5), 5.0);
    EXPECT_EQ(secondsToTicks(0.001), sim_clock::ms);
}

TEST(Ticks, PeriodFromFreq)
{
    // 60 Hz -> 16.67 ms.
    const Tick p = periodFromFreq(60.0);
    EXPECT_NEAR(ticksToMs(p), 16.6667, 1e-3);
    // 800 MHz -> 1.25 ns.
    EXPECT_EQ(periodFromFreq(800e6), 1250u);
}

TEST(Ticks, CyclesToTicks)
{
    EXPECT_EQ(cyclesToTicks(150, 150e6), sim_clock::us);
    EXPECT_EQ(cyclesToTicks(0, 300e6), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    LambdaEvent e1("e1", [&] { order.push_back(1); });
    LambdaEvent e2("e2", [&] { order.push_back(2); });
    LambdaEvent e3("e3", [&] { order.push_back(3); });

    q.schedule(&e2, 200);
    q.schedule(&e3, 300);
    q.schedule(&e1, 100);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<char> order;
    LambdaEvent lo("lo", [&] { order.push_back('l'); },
                   Event::kMinimumPriority);
    LambdaEvent hi("hi", [&] { order.push_back('h'); },
                   Event::kMaximumPriority);
    q.schedule(&lo, 50);
    q.schedule(&hi, 50);
    q.run();
    EXPECT_EQ(order, (std::vector<char>{'h', 'l'}));
}

TEST(EventQueue, FifoAmongEqualPriority)
{
    EventQueue q;
    std::vector<int> order;
    LambdaEvent a("a", [&] { order.push_back(0); });
    LambdaEvent b("b", [&] { order.push_back(1); });
    q.schedule(&a, 10);
    q.schedule(&b, 10);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    int fired = 0;
    LambdaEvent e("e", [&] { ++fired; });
    q.schedule(&e, 10);
    EXPECT_TRUE(e.scheduled());
    q.deschedule(&e);
    EXPECT_FALSE(e.scheduled());
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RescheduleMoves)
{
    EventQueue q;
    Tick fired_at = 0;
    LambdaEvent e("e", [&] { fired_at = q.curTick(); });
    q.schedule(&e, 10);
    q.reschedule(&e, 500);
    q.run();
    EXPECT_EQ(fired_at, 500u);
    EXPECT_EQ(q.processedCount(), 1u);
}

TEST(EventQueue, EventsMayRescheduleThemselves)
{
    EventQueue q;
    int count = 0;
    LambdaEvent tick("tick", [&] {
        if (++count < 5) {
            q.schedule(&tick, q.curTick() + 100);
        }
    });
    q.schedule(&tick, 0);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.curTick(), 400u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue q;
    int fired = 0;
    LambdaEvent a("a", [&] { ++fired; });
    LambdaEvent b("b", [&] { ++fired; });
    q.schedule(&a, 100);
    q.schedule(&b, 1000);
    q.run(500);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepProcessesExactlyOne)
{
    EventQueue q;
    int fired = 0;
    LambdaEvent a("a", [&] { ++fired; });
    LambdaEvent b("b", [&] { ++fired; });
    q.schedule(&a, 1);
    q.schedule(&b, 2);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue q;
    LambdaEvent a("a", [] {});
    LambdaEvent b("b", [] {});
    q.schedule(&a, 100);
    q.run();
    EXPECT_DEATH(q.schedule(&b, 50), "scheduled in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    LambdaEvent a("a", [] {});
    q.schedule(&a, 10);
    EXPECT_DEATH(q.schedule(&a, 20), "already scheduled");
    q.deschedule(&a);
}

TEST(EventQueueDeath, DestroyWhileScheduledPanics)
{
    EXPECT_DEATH(
        {
            EventQueue q;
            LambdaEvent e("doomed", [] {});
            q.schedule(&e, 10);
            // e destroyed while scheduled.
        },
        "destroyed while scheduled");
}

TEST(SimObject, HoldsNameAndQueue)
{
    EventQueue q;
    SimObject obj("soc.vd", &q);
    EXPECT_EQ(obj.name(), "soc.vd");
    EXPECT_EQ(obj.eventQueue(), &q);
}

TEST(Logging, WarnIncrementsCounter)
{
    detail::setQuiet(true);
    const auto before = detail::warnCount();
    vs_warn("test warning ", 42);
    EXPECT_EQ(detail::warnCount(), before + 1);
    detail::setQuiet(false);
}

TEST(Logging, FormatConcatenates)
{
    EXPECT_EQ(logFormat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(logFormat(), "");
}

TEST(LoggingDeath, AssertFailurePanics)
{
    EXPECT_DEATH(vs_assert(1 == 2, "impossible"), "assertion");
}

} // namespace
} // namespace vstream
