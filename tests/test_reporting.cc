/**
 * @file
 * Tests for the pipeline's component-statistics reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/video_pipeline.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile()
{
    VideoProfile p;
    p.key = "RPT";
    p.width = 64;
    p.height = 32;
    p.frame_count = 12;
    p.seed = 5;
    return p;
}

TEST(Reporting, DumpContainsEveryComponent)
{
    std::ostringstream os;
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kGab);
    cfg.stats_out = &os;
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    const std::string dump = os.str();
    EXPECT_NE(dump.find("vd.framesDecoded"), std::string::npos);
    EXPECT_NE(dump.find("vd.cache.missRate"), std::string::npos);
    EXPECT_NE(dump.find("dc.framesShown"), std::string::npos);
    EXPECT_NE(dump.find("dc.machBuffer.hits"), std::string::npos);
    EXPECT_NE(dump.find("mem.requests"), std::string::npos);
    EXPECT_NE(dump.find("dram.vd.activations"), std::string::npos);
    EXPECT_NE(dump.find("vd.mach.hitRate"), std::string::npos);
    EXPECT_NE(dump.find("pipeline.energyJ"), std::string::npos);
    EXPECT_NE(dump.find("pipeline.drops"), std::string::npos);
    EXPECT_GT(r.totalEnergy(), 0.0);
}

TEST(Reporting, BaselineDumpOmitsMach)
{
    std::ostringstream os;
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kBaseline);
    cfg.stats_out = &os;
    VideoPipeline pipe(std::move(cfg));
    pipe.run();

    const std::string dump = os.str();
    EXPECT_EQ(dump.find("vd.mach."), std::string::npos);
    EXPECT_NE(dump.find("vd.framesDecoded"), std::string::npos);
}

TEST(Reporting, NoStreamNoDump)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    VideoPipeline pipe(std::move(cfg));
    // Just verifies the null default does not crash.
    EXPECT_GT(pipe.run().totalEnergy(), 0.0);
}

TEST(Reporting, StatsHeaderNamesRun)
{
    std::ostringstream os;
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    cfg.stats_out = &os;
    VideoPipeline pipe(std::move(cfg));
    pipe.run();
    EXPECT_NE(os.str().find("RPT / Race-to-Sleep"), std::string::npos);
}

} // namespace
} // namespace vstream
