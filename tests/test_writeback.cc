/**
 * @file
 * Tests for the writeback stages, the coalescing buffers, the frame
 * buffer manager, and the layout bookkeeping the display relies on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/coalescing_buffer.hh"
#include "core/frame_buffer_manager.hh"
#include "core/writeback_stage.hh"
#include "sim/event_queue.hh"
#include "video/synthetic_video.hh"

namespace vstream
{
namespace
{

struct Rig
{
    EventQueue queue;
    MemorySystem mem;
    FrameBufferManager fbm;

    explicit Rig(std::uint32_t mabs = 32)
        : mem("mem", &queue, DramConfig{}),
          fbm(mem, mabs, 48, 4096)
    {
    }
};

Frame
frameOfMabs(const std::vector<Macroblock> &mabs, std::uint64_t index = 0)
{
    Frame f(index, FrameType::kI,
            static_cast<std::uint32_t>(mabs.size()), 1, mabs[0].dim());
    for (std::uint32_t i = 0; i < mabs.size(); ++i) {
        f.mab(i) = mabs[i];
    }
    return f;
}

Macroblock
pure(std::uint8_t r, std::uint8_t g, std::uint8_t b)
{
    Macroblock m(4);
    m.fill(Pixel{r, g, b});
    return m;
}

// ---------------------------------------------------------------------
// CoalescingBuffer
// ---------------------------------------------------------------------

TEST(CoalescingBuffer, IssuesOnlyWhenFull)
{
    std::vector<std::pair<Addr, std::uint32_t>> writes;
    CoalescingBuffer buf("t", 64,
                         [&](Addr a, std::uint32_t s, Tick) {
                             writes.emplace_back(a, s);
                         });
    buf.rebase(1000);
    for (int i = 0; i < 15; ++i) {
        buf.append(4, 0); // 60 bytes: below capacity
    }
    EXPECT_TRUE(writes.empty());
    buf.append(4, 0); // 64th byte
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0], std::make_pair(Addr(1000), 64u));
    EXPECT_EQ(buf.cursor(), 1064u);
}

TEST(CoalescingBuffer, FlushWritesResidue)
{
    std::vector<std::uint32_t> sizes;
    CoalescingBuffer buf("t", 64,
                         [&](Addr, std::uint32_t s, Tick) {
                             sizes.push_back(s);
                         });
    buf.rebase(0);
    buf.append(10, 0);
    buf.flush(0);
    buf.flush(0); // second flush is a no-op
    EXPECT_EQ(sizes, (std::vector<std::uint32_t>{10}));
    EXPECT_EQ(buf.bytesAppended(), 10u);
    EXPECT_EQ(buf.writesIssued(), 1u);
}

TEST(CoalescingBuffer, LargeAppendSplits)
{
    int writes = 0;
    CoalescingBuffer buf("t", 64,
                         [&](Addr, std::uint32_t, Tick) { ++writes; });
    buf.rebase(0);
    buf.append(200, 0); // 3 full buffers + 8 residue
    EXPECT_EQ(writes, 3);
    buf.flush(0);
    EXPECT_EQ(writes, 4);
}

TEST(CoalescingBufferDeath, RebaseWithResiduePanics)
{
    CoalescingBuffer buf("t", 64, [](Addr, std::uint32_t, Tick) {});
    buf.rebase(0);
    buf.append(1, 0);
    EXPECT_DEATH(buf.rebase(64), "unflushed");
}

// ---------------------------------------------------------------------
// FrameBufferManager
// ---------------------------------------------------------------------

TEST(FrameBufferManager, AcquireReleaseRecycles)
{
    Rig rig;
    BufferSlot &a = rig.fbm.acquire(0);
    const Addr data0 = a.data_base;
    rig.fbm.release(0);
    BufferSlot &b = rig.fbm.acquire(1);
    EXPECT_EQ(b.data_base, data0); // recycled slot
    EXPECT_EQ(rig.fbm.slotsAllocated(), 1u);
    EXPECT_EQ(rig.fbm.slotsInUse(), 1u);
}

TEST(FrameBufferManager, GrowsWhenAllBusy)
{
    Rig rig;
    rig.fbm.acquire(0);
    rig.fbm.acquire(1);
    EXPECT_EQ(rig.fbm.slotsAllocated(), 2u);
    EXPECT_GT(rig.fbm.poolBytes(), 0u);
}

TEST(FrameBufferManager, BlockStoreRoundTrip)
{
    Rig rig;
    BufferSlot &slot = rig.fbm.acquire(0);
    const std::vector<std::uint8_t> bytes(48, 0x5a);
    rig.fbm.storeBlock(slot.data_base + 96, bytes);
    const StoredBlock loaded = rig.fbm.loadBlock(slot.data_base + 96);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded.toVector(), bytes);
    EXPECT_FALSE(rig.fbm.loadBlock(slot.data_base + 97));
}

TEST(FrameBufferManager, RecycleClearsBlocks)
{
    Rig rig;
    BufferSlot &slot = rig.fbm.acquire(0);
    rig.fbm.storeBlock(slot.data_base, std::vector<std::uint8_t>(48, 1));
    rig.fbm.release(0);
    rig.fbm.acquire(5);
    EXPECT_FALSE(rig.fbm.loadBlock(slot.data_base));
}

TEST(FrameBufferManagerDeath, StoreOutsideSlotsPanics)
{
    Rig rig;
    EXPECT_DEATH(rig.fbm.storeBlock(0xdeadbeef,
                                    std::vector<std::uint8_t>(48, 1)),
                 "outside any frame buffer");
}

TEST(FrameBufferManager, FindBySlotIndex)
{
    Rig rig;
    rig.fbm.acquire(3);
    EXPECT_NE(rig.fbm.find(3), nullptr);
    EXPECT_EQ(rig.fbm.find(4), nullptr);
    rig.fbm.release(3);
    EXPECT_EQ(rig.fbm.find(3), nullptr);
}

// ---------------------------------------------------------------------
// LinearWriteback
// ---------------------------------------------------------------------

TEST(LinearWriteback, WritesEveryMabAtItsLinearAddress)
{
    Rig rig(4);
    LinearWriteback wb(rig.mem, rig.fbm);
    const auto mabs = std::vector<Macroblock>{
        pure(1, 1, 1), pure(1, 1, 1), pure(2, 2, 2), pure(3, 3, 3)};
    const Frame f = frameOfMabs(mabs);

    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < f.mabCount(); ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);

    EXPECT_EQ(layout.kind(), LayoutKind::kLinear);
    EXPECT_EQ(layout.dataBytes(), 4u * 48u);
    EXPECT_EQ(layout.metaBytes(), 0u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(layout.record(i).storage, MabStorage::kUnique);
        EXPECT_EQ(layout.record(i).data_addr,
                  slot.data_base + i * 48u);
        // Duplicates are NOT deduplicated in the baseline.
        EXPECT_TRUE(rig.fbm.loadBlock(layout.record(i).data_addr));
    }
    EXPECT_EQ(wb.totals().unique_blocks, 4u);
    EXPECT_DOUBLE_EQ(wb.totals().savings(48), 0.0);
    EXPECT_EQ(layout.sourceChecksum(), f.contentChecksum());
}

// ---------------------------------------------------------------------
// MachWriteback
// ---------------------------------------------------------------------

TEST(MachWriteback, DeduplicatesExactRepeats)
{
    Rig rig(4);
    MachConfig mcfg;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, LayoutKind::kPointer);

    const auto mabs = std::vector<Macroblock>{
        pure(1, 1, 1), pure(2, 2, 2), pure(1, 1, 1), pure(1, 1, 1)};
    const Frame f = frameOfMabs(mabs);

    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 4; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);

    EXPECT_EQ(wb.totals().unique_blocks, 2u);
    EXPECT_EQ(wb.totals().intra_matches, 2u);
    EXPECT_EQ(layout.record(0).storage, MabStorage::kUnique);
    EXPECT_EQ(layout.record(2).storage, MabStorage::kIntraPointer);
    EXPECT_EQ(layout.record(2).data_addr, layout.record(0).data_addr);
    // 2 unique blocks of 48 B; 4 pointers of 4 B.
    EXPECT_EQ(layout.dataBytes(), 96u);
    EXPECT_EQ(layout.metaBytes(), 16u);
    EXPECT_GT(wb.totals().savings(48), 0.0);
}

TEST(MachWriteback, AllUniqueFramePaysMetadataOverhead)
{
    // Paper Fig. 8a/8b: with no matches, MACH writes 52 B per 48 B
    // mab - a net overhead.
    Rig rig(4);
    MachConfig mcfg;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, LayoutKind::kPointer);

    Random rng(5);
    std::vector<Macroblock> mabs;
    for (int i = 0; i < 4; ++i) {
        Macroblock m(4);
        for (auto &b : m.bytes()) {
            b = static_cast<std::uint8_t>(rng.next());
        }
        mabs.push_back(m);
    }
    const Frame f = frameOfMabs(mabs);
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 4; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);
    EXPECT_LT(wb.totals().savings(48), 0.0);
    EXPECT_EQ(wb.totals().totalBytes(), 4u * 52u);
}

TEST(MachWriteback, GabCatchesShiftedBlocks)
{
    Rig rig(3);
    MachConfig mcfg;
    mcfg.use_gradient = true;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, LayoutKind::kPointer);

    Random rng(6);
    Macroblock base(4);
    for (auto &b : base.bytes()) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    const auto mabs = std::vector<Macroblock>{
        base, base.shifted(10, 20, 30), base.shifted(1, 1, 1)};
    const Frame f = frameOfMabs(mabs);

    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 3; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);

    EXPECT_EQ(wb.totals().unique_blocks, 1u);
    EXPECT_EQ(wb.totals().intra_matches, 2u);
    // gab metadata: 4 B pointer + 3 B base per mab.
    EXPECT_EQ(layout.metaBytes(), 3u * (4u + 3u));
    // Bases preserved per record for reconstruction.
    EXPECT_EQ(layout.record(1).base, mabs[1].base());
    EXPECT_TRUE(layout.gradientMode());
}

TEST(MachWriteback, MabModeMissesShiftedBlocks)
{
    Rig rig(2);
    MachConfig mcfg; // mab mode
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, LayoutKind::kPointer);

    Macroblock base = pure(5, 5, 5);
    const auto mabs =
        std::vector<Macroblock>{base, base.shifted(1, 2, 3)};
    const Frame f = frameOfMabs(mabs);
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    wb.writeMab(f.mab(0), 0, 0);
    wb.writeMab(f.mab(1), 1, 0);
    wb.finishFrame(0);
    EXPECT_EQ(wb.totals().unique_blocks, 2u);
    EXPECT_EQ(wb.totals().intra_matches, 0u);
}

TEST(MachWriteback, InterMatchesBecomeDigestsInLayoutIii)
{
    Rig rig(2);
    MachConfig mcfg;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs,
                     LayoutKind::kPointerDigest);

    const auto mabs0 =
        std::vector<Macroblock>{pure(9, 9, 9), pure(8, 8, 8)};
    const Frame f0 = frameOfMabs(mabs0, 0);
    BufferSlot &s0 = rig.fbm.acquire(0);
    FrameLayout l0;
    wb.beginFrame(f0, s0, 0, l0);
    wb.writeMab(f0.mab(0), 0, 0);
    wb.writeMab(f0.mab(1), 1, 0);
    wb.finishFrame(0);
    EXPECT_EQ(l0.machDump().size(), 2u);
    EXPECT_GT(l0.machDumpBytes(), 0u);

    // Frame 1 repeats frame 0's content: inter matches as digests.
    const Frame f1 = frameOfMabs(mabs0, 1);
    BufferSlot &s1 = rig.fbm.acquire(1);
    FrameLayout l1;
    wb.beginFrame(f1, s1, 0, l1);
    wb.writeMab(f1.mab(0), 0, 0);
    wb.writeMab(f1.mab(1), 1, 0);
    wb.finishFrame(0);

    EXPECT_EQ(l1.record(0).storage, MabStorage::kInterDigest);
    EXPECT_EQ(l1.record(1).storage, MabStorage::kInterDigest);
    EXPECT_EQ(wb.totals().inter_matches, 2u);
    EXPECT_EQ(l1.countStorage(MabStorage::kInterDigest), 2u);
}

TEST(MachWriteback, DccShrinksUniqueBlocks)
{
    Rig rig(2);
    MachConfig mcfg;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, LayoutKind::kPointer,
                     /*use_dcc=*/true);

    const auto mabs =
        std::vector<Macroblock>{pure(4, 4, 4), pure(200, 1, 7)};
    const Frame f = frameOfMabs(mabs);
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    wb.writeMab(f.mab(0), 0, 0);
    wb.writeMab(f.mab(1), 1, 0);
    wb.finishFrame(0);

    // Pure-colour blocks compress to a handful of bytes.
    EXPECT_LT(layout.dataBytes(), 2u * 48u / 2);
    EXPECT_GT(wb.totals().dcc_saved_bytes, 60u);
}

TEST(MachWritebackDeath, LinearLayoutRejected)
{
    Rig rig(2);
    MachConfig mcfg;
    MachArray machs(mcfg);
    EXPECT_DEATH(MachWriteback(rig.mem, rig.fbm, machs,
                               LayoutKind::kLinear),
                 "pointer-based layout");
}

TEST(WritebackTotals, SavingsArithmetic)
{
    WritebackTotals t;
    t.mabs = 100;
    t.data_bytes = 2400; // 50 blocks
    t.meta_bytes = 400;
    EXPECT_EQ(t.baselineBytes(48), 4800u);
    EXPECT_EQ(t.totalBytes(), 2800u);
    EXPECT_NEAR(t.savings(48), 1.0 - 2800.0 / 4800.0, 1e-12);
}

} // namespace
} // namespace vstream
