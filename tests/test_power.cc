/**
 * @file
 * Tests for the power-state machine and the break-even sleep
 * governor (the baseline decision logic of paper Sec. 2.2).
 */

#include <gtest/gtest.h>

#include "power/energy_breakdown.hh"
#include "power/power_state.hh"
#include "power/sleep_governor.hh"

namespace vstream
{
namespace
{

TEST(VdPowerConfig, DefaultsAreOrderedAndValid)
{
    VdPowerConfig cfg;
    cfg.validate();
    EXPECT_LT(cfg.p_s3_w, cfg.p_s1_w);
    EXPECT_LT(cfg.p_s1_w, cfg.p_short_slack_w);
    EXPECT_LT(cfg.p_short_slack_w, cfg.p_active_low_w);
    EXPECT_LT(cfg.p_active_low_w, cfg.p_active_high_w);
}

TEST(VdPowerConfig, ActivePowerPerFrequency)
{
    VdPowerConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.activePower(VdFrequency::kLow), 0.30);
    EXPECT_DOUBLE_EQ(cfg.activePower(VdFrequency::kHigh), 0.69);
    EXPECT_DOUBLE_EQ(cfg.frequencyHz(VdFrequency::kLow), 150e6);
    EXPECT_DOUBLE_EQ(cfg.frequencyHz(VdFrequency::kHigh), 300e6);
}

TEST(VdPowerConfig, RoundTripLatencies)
{
    VdPowerConfig cfg;
    // Paper: S1 round trip 0.8 ms, S3 1.6 ms.
    EXPECT_EQ(cfg.roundTripLatency(PowerState::kSleepS1),
              static_cast<Tick>(0.8 * sim_clock::ms));
    EXPECT_EQ(cfg.roundTripLatency(PowerState::kSleepS3),
              static_cast<Tick>(1.6 * sim_clock::ms));
    EXPECT_EQ(cfg.roundTripLatency(PowerState::kShortSlack), 0u);
}

TEST(VdPowerConfig, HighFrequencyTransitionsCostMore)
{
    VdPowerConfig cfg;
    EXPECT_GT(cfg.roundTripEnergy(PowerState::kSleepS1,
                                  VdFrequency::kHigh),
              cfg.roundTripEnergy(PowerState::kSleepS1,
                                  VdFrequency::kLow));
    EXPECT_DOUBLE_EQ(
        cfg.roundTripEnergy(PowerState::kSleepS3, VdFrequency::kHigh),
        cfg.e_s3_round_j * cfg.trans_high_factor);
}

TEST(VdPowerConfigDeath, UnorderedPowersFatal)
{
    VdPowerConfig cfg;
    cfg.p_s1_w = cfg.p_short_slack_w + 0.1;
    EXPECT_DEATH(cfg.validate(), "ordered");
}

TEST(PowerState, Names)
{
    EXPECT_EQ(powerStateName(PowerState::kSleepS3), "S3");
    EXPECT_EQ(powerStateName(PowerState::kShortSlack), "short-slack");
}

TEST(SleepGovernor, TinySlackStaysAwake)
{
    SleepGovernor gov{VdPowerConfig{}};
    const SleepDecision d = gov.decide(sim_clock::us * 100);
    EXPECT_EQ(d.state, PowerState::kShortSlack);
    EXPECT_EQ(d.sleep_time, 0u);
    EXPECT_DOUBLE_EQ(d.transition_energy_j, 0.0);
}

TEST(SleepGovernor, HugeSlackDeepSleeps)
{
    SleepGovernor gov{VdPowerConfig{}};
    const SleepDecision d = gov.decide(200 * sim_clock::ms);
    EXPECT_EQ(d.state, PowerState::kSleepS3);
    EXPECT_EQ(d.transition_time,
              gov.config().roundTripLatency(PowerState::kSleepS3));
    EXPECT_EQ(d.sleep_time + d.transition_time, 200 * sim_clock::ms);
}

TEST(SleepGovernor, ChoosesMinimumEnergyState)
{
    const VdPowerConfig cfg;
    SleepGovernor gov(cfg);
    for (Tick slack = sim_clock::ms / 10; slack < 50 * sim_clock::ms;
         slack += sim_clock::ms / 4) {
        const SleepDecision d = gov.decide(slack);
        // The decision must never cost more than staying awake.
        const double awake =
            cfg.p_short_slack_w * ticksToSeconds(slack);
        EXPECT_LE(d.energy_j, awake + 1e-12) << "slack " << slack;
    }
}

TEST(SleepGovernor, DecisionEnergyIsSelfConsistent)
{
    const VdPowerConfig cfg;
    SleepGovernor gov(cfg);
    const Tick slack = 30 * sim_clock::ms;
    const SleepDecision d = gov.decide(slack);
    ASSERT_EQ(d.state, PowerState::kSleepS3);
    const double expected =
        cfg.e_s3_round_j + cfg.p_s3_w * ticksToSeconds(d.sleep_time);
    EXPECT_NEAR(d.energy_j, expected, 1e-12);
    EXPECT_DOUBLE_EQ(d.transition_energy_j, cfg.e_s3_round_j);
}

TEST(SleepGovernor, BreakEvenMatchesDecisionFlip)
{
    const VdPowerConfig cfg;
    SleepGovernor gov(cfg);
    for (PowerState s :
         {PowerState::kSleepS1, PowerState::kSleepS3}) {
        const Tick be = gov.breakEvenSlack(s);
        // Just below break-even, state s must not beat short slack.
        const double below_sleep_cost =
            cfg.roundTripEnergy(s) +
            cfg.sleepPower(s) *
                ticksToSeconds(be * 99 / 100 -
                               cfg.roundTripLatency(s));
        const double below_awake_cost =
            cfg.p_short_slack_w * ticksToSeconds(be * 99 / 100);
        EXPECT_GE(below_sleep_cost, below_awake_cost * 0.999);
        // Well above it, sleeping wins.
        const SleepDecision d = gov.decide(be * 3);
        EXPECT_NE(d.state, PowerState::kShortSlack);
    }
}

TEST(SleepGovernor, HighFrequencyRaisesTheBar)
{
    SleepGovernor gov{VdPowerConfig{}};
    EXPECT_GT(
        gov.breakEvenSlack(PowerState::kSleepS1, VdFrequency::kHigh),
        gov.breakEvenSlack(PowerState::kSleepS1, VdFrequency::kLow));
}

TEST(SleepGovernor, WindowBelowLatencyCannotSleep)
{
    const VdPowerConfig cfg;
    SleepGovernor gov(cfg);
    const Tick slack =
        cfg.roundTripLatency(PowerState::kSleepS1) - 1;
    EXPECT_EQ(gov.decide(slack).state, PowerState::kShortSlack);
}

TEST(EnergyBreakdown, TotalSumsAllCategories)
{
    EnergyBreakdown e;
    e.dc = 1;
    e.mem_background = 2;
    e.vd_processing = 3;
    e.sleep = 4;
    e.short_slack = 5;
    e.mem_burst = 6;
    e.mem_act_pre = 7;
    e.transition = 8;
    e.mach_overhead = 9;
    EXPECT_DOUBLE_EQ(e.total(), 45.0);
    EXPECT_DOUBLE_EQ(e.memoryTotal(), 15.0);
}

TEST(EnergyBreakdown, AdditionAndNormalization)
{
    EnergyBreakdown a;
    a.dc = 2.0;
    EnergyBreakdown b;
    b.mem_burst = 4.0;
    const EnergyBreakdown sum = a + b;
    EXPECT_DOUBLE_EQ(sum.total(), 6.0);
    const EnergyBreakdown norm = sum.normalizedTo(2.0);
    EXPECT_DOUBLE_EQ(norm.dc, 1.0);
    EXPECT_DOUBLE_EQ(norm.mem_burst, 2.0);
    // Normalizing by zero leaves values untouched.
    EXPECT_DOUBLE_EQ(sum.normalizedTo(0.0).total(), 6.0);
}

TEST(EnergyBreakdown, RowHasTenColumns)
{
    EnergyBreakdown e;
    e.dc = 1.0;
    std::string row = e.row();
    int tabs = 0;
    for (char c : row) {
        if (c == '\t') {
            ++tabs;
        }
    }
    EXPECT_EQ(tabs, 9);
}

TEST(TimeBreakdown, TotalAndAccumulate)
{
    TimeBreakdown t;
    t.execution = 10;
    t.s3 = 5;
    TimeBreakdown u;
    u.transition = 3;
    t += u;
    EXPECT_EQ(t.total(), 18u);
}

class SlackSweep : public ::testing::TestWithParam<Tick>
{
};

TEST_P(SlackSweep, StateTimesPartitionTheWindow)
{
    SleepGovernor gov{VdPowerConfig{}};
    const Tick slack = GetParam();
    const SleepDecision d = gov.decide(slack);
    if (d.state == PowerState::kShortSlack) {
        EXPECT_EQ(d.sleep_time, 0u);
        EXPECT_EQ(d.transition_time, 0u);
    } else {
        EXPECT_EQ(d.sleep_time + d.transition_time, slack);
    }
    EXPECT_GE(d.energy_j, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, SlackSweep,
    ::testing::Values(Tick(1) * sim_clock::us,
                      Tick(500) * sim_clock::us,
                      Tick(1) * sim_clock::ms,
                      Tick(2) * sim_clock::ms,
                      Tick(4) * sim_clock::ms,
                      Tick(8) * sim_clock::ms,
                      Tick(16) * sim_clock::ms,
                      Tick(160) * sim_clock::ms));

} // namespace
} // namespace vstream
