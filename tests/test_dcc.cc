/**
 * @file
 * Tests for the Delta Color Compression model (the paper's Sec. 6.2
 * comparator).
 */

#include <gtest/gtest.h>

#include "core/dcc.hh"
#include "sim/random.hh"

namespace vstream
{
namespace
{

Macroblock
pure(std::uint8_t r, std::uint8_t g, std::uint8_t b)
{
    Macroblock m(4);
    m.fill(Pixel{r, g, b});
    return m;
}

TEST(Dcc, PureColorCompressesToHeaderPlusBase)
{
    const DccResult r = dccCompress(pure(120, 0, 255));
    EXPECT_TRUE(r.compressed);
    // 2 B header + 3 B base + 0 payload bits.
    EXPECT_EQ(r.compressed_bytes, 5u);
    EXPECT_LT(r.ratio(48), 0.15);
}

TEST(Dcc, SmallDeltasPackTightly)
{
    Macroblock m(4);
    for (std::uint32_t i = 0; i < 16; ++i) {
        const auto v = static_cast<std::uint8_t>(100 + (i % 2));
        m.setPixel(i, Pixel{v, v, v});
    }
    const DccResult r = dccCompress(m);
    EXPECT_TRUE(r.compressed);
    // Delta of 1 -> 2 signed bits per channel; 15 pixels * 6 bits.
    EXPECT_EQ(r.compressed_bytes, 2u + 3u + (15u * 6u + 7u) / 8u);
}

TEST(Dcc, RandomNoiseIsIncompressible)
{
    Random rng(21);
    int incompressible = 0;
    for (int t = 0; t < 50; ++t) {
        Macroblock m(4);
        for (auto &b : m.bytes()) {
            b = static_cast<std::uint8_t>(rng.next());
        }
        const DccResult r = dccCompress(m);
        if (!r.compressed) {
            // Raw fallback: original size plus the mode byte.
            EXPECT_EQ(r.compressed_bytes, 49u);
            ++incompressible;
        }
    }
    EXPECT_GT(incompressible, 40);
}

TEST(Dcc, GradientRampCompresses)
{
    Macroblock m(4);
    for (std::uint32_t y = 0; y < 4; ++y) {
        for (std::uint32_t x = 0; x < 4; ++x) {
            const auto v = static_cast<std::uint8_t>(50 + 4 * x + y);
            m.setPixel(y * 4 + x, Pixel{v, v, v});
        }
    }
    const DccResult r = dccCompress(m);
    EXPECT_TRUE(r.compressed);
    // Max delta 15 -> 5 signed bits/channel: 34 of 48 bytes.
    EXPECT_LT(r.ratio(48), 0.75);
}

TEST(Dcc, NeverLargerThanRawPlusHeader)
{
    Random rng(22);
    for (int t = 0; t < 200; ++t) {
        Macroblock m(4);
        for (auto &b : m.bytes()) {
            b = static_cast<std::uint8_t>(rng.next());
        }
        const DccResult r = dccCompress(m);
        EXPECT_LE(r.compressed_bytes, 49u);
        EXPECT_GE(r.compressed_bytes, 5u);
    }
}

TEST(Dcc, LargerBlocksAmortizeTheBase)
{
    // 8x8 pure-colour block: still 5 bytes.
    Macroblock m(8);
    m.fill(Pixel{1, 2, 3});
    const DccResult r = dccCompress(m);
    EXPECT_EQ(r.compressed_bytes, 5u);
    EXPECT_LT(r.ratio(m.sizeBytes()), 0.03);
}

TEST(Dcc, RatioOfZeroRawIsOne)
{
    DccResult r;
    r.compressed_bytes = 10;
    EXPECT_DOUBLE_EQ(r.ratio(0), 1.0);
}

} // namespace
} // namespace vstream
