/**
 * @file
 * Tests for the stats registry, its exporters, and the trace sink.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json_writer.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_event.hh"

namespace vstream
{
namespace
{

// ------------------------------------------------------------------
// A minimal JSON parser, enough to round-trip the exporters' output.
// Numbers parse to double; objects preserve insertion order.

struct JsonValue
{
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        const JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        EXPECT_LT(pos_, text_.size()) << "unexpected end of input";
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        EXPECT_EQ(peek(), c);
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                const char esc = text_[pos_++];
                switch (esc) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'u':
                    pos_ += 4; // tests only feed ASCII escapes
                    c = '?';
                    break;
                default: c = esc; break;
                }
            }
            out.push_back(c);
        }
        expect('"');
        return out;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            v.kind = JsonValue::Kind::kObject;
            expect('{');
            if (peek() != '}') {
                while (true) {
                    std::string key = parseString();
                    expect(':');
                    v.object.emplace_back(std::move(key),
                                          parseValue());
                    if (peek() != ',') {
                        break;
                    }
                    expect(',');
                }
            }
            expect('}');
        } else if (c == '[') {
            v.kind = JsonValue::Kind::kArray;
            expect('[');
            if (peek() != ']') {
                while (true) {
                    v.array.push_back(parseValue());
                    if (peek() != ',') {
                        break;
                    }
                    expect(',');
                }
            }
            expect(']');
        } else if (c == '"') {
            v.kind = JsonValue::Kind::kString;
            v.str = parseString();
        } else if (c == 't' || c == 'f') {
            v.kind = JsonValue::Kind::kBool;
            v.boolean = c == 't';
            pos_ += v.boolean ? 4 : 5;
        } else if (c == 'n') {
            v.kind = JsonValue::Kind::kNull;
            pos_ += 4;
        } else {
            v.kind = JsonValue::Kind::kNumber;
            std::size_t end = pos_;
            while (end < text_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(text_[end])) ||
                    text_[end] == '-' || text_[end] == '+' ||
                    text_[end] == '.' || text_[end] == 'e' ||
                    text_[end] == 'E')) {
                ++end;
            }
            v.number = std::stod(text_.substr(pos_, end - pos_));
            pos_ = end;
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------------------
// Registration and queries.

TEST(StatsRegistry, RegistersAndReadsEveryKind)
{
    StatsRegistry r;
    stats::Scalar s("", "a counter");
    s.set(42.0);
    stats::Distribution d("", "a distribution");
    d.sample(1.0);
    d.sample(3.0);
    stats::SampleSeries series("", "a series");
    series.sample(5.0);
    stats::Histogram h("", 0.0, 10.0, 5, "a histogram");
    h.sample(2.5);

    r.add("a.scalar", s);
    r.add("a.dist", d);
    r.add("a.series", series);
    r.add("a.hist", h);
    r.addCallback("a.cb", "a callback", [] { return 7.0; });

    EXPECT_EQ(r.size(), 5u);
    EXPECT_TRUE(r.contains("a.scalar"));
    EXPECT_FALSE(r.contains("a.missing"));
    EXPECT_DOUBLE_EQ(r.value("a.scalar"), 42.0);
    EXPECT_DOUBLE_EQ(r.value("a.cb"), 7.0);
}

TEST(StatsRegistryDeathTest, DuplicateNamePanics)
{
    StatsRegistry r;
    stats::Scalar a, b;
    r.add("dup.name", a);
    EXPECT_DEATH(r.add("dup.name", b), "duplicate stat registration");
}

TEST(StatsRegistryDeathTest, InvalidNamePanics)
{
    StatsRegistry r;
    stats::Scalar s;
    EXPECT_DEATH(r.add("bad name with spaces", s), "stat name");
}

TEST(StatsRegistry, ValidatesNames)
{
    EXPECT_TRUE(validStatName("vd.cache.missRate"));
    EXPECT_TRUE(validStatName("pipeline.energyJ"));
    EXPECT_TRUE(validStatName("a_b.c_d"));
    EXPECT_FALSE(validStatName(""));
    EXPECT_FALSE(validStatName(".leading"));
    EXPECT_FALSE(validStatName("trailing."));
    EXPECT_FALSE(validStatName("double..dot"));
    EXPECT_FALSE(validStatName("bad-dash"));
    EXPECT_FALSE(validStatName("bad name"));
}

// ------------------------------------------------------------------
// Exporters.

TEST(StatsRegistry, DumpTextIsHierarchicallyOrdered)
{
    StatsRegistry r;
    stats::Scalar s1, s2, s3, s4;
    // Registered deliberately out of order.
    r.add("vd.framesDecoded", s1);
    r.add("dc.framesShown", s2);
    r.add("vd.cache.hits", s3);
    r.add("mem.requests", s4);

    std::ostringstream os;
    r.dumpText(os);

    std::vector<std::string> names;
    std::istringstream lines(os.str());
    std::string line;
    while (std::getline(lines, line)) {
        names.push_back(line.substr(0, line.find(' ')));
    }
    ASSERT_EQ(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    // A parent prefix sorts before (and therefore groups with) its
    // children: everything under "vd." is contiguous.
    EXPECT_EQ(names[2], "vd.cache.hits");
    EXPECT_EQ(names[3], "vd.framesDecoded");
}

TEST(StatsRegistry, JsonRoundTrips)
{
    StatsRegistry r;
    stats::Scalar s("", "frames fully decoded");
    s.set(96.0);
    stats::SampleSeries series("", "per-frame decode time, ms");
    series.sample(4.0);
    series.sample(8.0);
    series.sample(6.0);
    stats::Distribution d("", "burst sizes");
    d.sample(64.0);
    d.sample(128.0);
    r.add("vd.framesDecoded", s);
    r.add("pipeline.frameExecMs", series);
    r.add("mem.burstBytes", d);
    r.addCallback("vd.cache.missRate", "read miss rate",
                  [] { return 0.25; });

    std::ostringstream os;
    r.dumpJson(os);
    const JsonValue root = JsonParser(os.str()).parse();

    ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
    const JsonValue *schema = root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "vstream-stats-1");

    const JsonValue *stats_obj = root.find("stats");
    ASSERT_NE(stats_obj, nullptr);
    ASSERT_EQ(stats_obj->kind, JsonValue::Kind::kObject);
    EXPECT_EQ(stats_obj->object.size(), 4u);

    const JsonValue *frames = stats_obj->find("vd.framesDecoded");
    ASSERT_NE(frames, nullptr);
    EXPECT_EQ(frames->find("kind")->str, "scalar");
    EXPECT_EQ(frames->find("desc")->str, "frames fully decoded");
    EXPECT_DOUBLE_EQ(frames->find("value")->number, 96.0);

    const JsonValue *exec = stats_obj->find("pipeline.frameExecMs");
    ASSERT_NE(exec, nullptr);
    EXPECT_EQ(exec->find("kind")->str, "series");
    EXPECT_DOUBLE_EQ(exec->find("count")->number, 3.0);
    EXPECT_DOUBLE_EQ(exec->find("mean")->number, 6.0);
    EXPECT_DOUBLE_EQ(exec->find("min")->number, 4.0);
    EXPECT_DOUBLE_EQ(exec->find("max")->number, 8.0);

    const JsonValue *burst = stats_obj->find("mem.burstBytes");
    ASSERT_NE(burst, nullptr);
    EXPECT_EQ(burst->find("kind")->str, "distribution");
    EXPECT_DOUBLE_EQ(burst->find("total")->number, 192.0);

    const JsonValue *miss = stats_obj->find("vd.cache.missRate");
    ASSERT_NE(miss, nullptr);
    // Callbacks export as plain scalars - consumers don't care how
    // the value was produced.
    EXPECT_EQ(miss->find("kind")->str, "scalar");
    EXPECT_DOUBLE_EQ(miss->find("value")->number, 0.25);
}

TEST(StatsRegistry, CsvHasOneRowPerField)
{
    StatsRegistry r;
    stats::Scalar s;
    s.set(3.0);
    r.add("x.count", s);

    std::ostringstream os;
    r.dumpCsv(os);
    std::istringstream lines(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "name,kind,field,value");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "x.count,scalar,value,3");
    EXPECT_FALSE(std::getline(lines, line));
}

TEST(StatsRegistry, ResetThenDumpIsAllZeros)
{
    StatsRegistry r;
    stats::Scalar s;
    s.set(17.0);
    stats::Distribution d;
    d.sample(5.0);
    stats::SampleSeries series;
    series.sample(1.0);
    stats::Histogram h("", 0.0, 4.0, 4);
    h.sample(1.5);
    r.add("z.scalar", s);
    r.add("z.dist", d);
    r.add("z.series", series);
    r.add("z.hist", h);

    r.resetAll();

    std::ostringstream os;
    r.dumpJson(os);
    const JsonValue root = JsonParser(os.str()).parse();
    const JsonValue *stats_obj = root.find("stats");
    ASSERT_NE(stats_obj, nullptr);
    for (const auto &[name, entry] : stats_obj->object) {
        for (const auto &[field, value] : entry.object) {
            if (field == "lo" || field == "hi") {
                continue; // histogram bounds survive a reset
            }
            if (value.kind == JsonValue::Kind::kNumber) {
                EXPECT_DOUBLE_EQ(value.number, 0.0)
                    << name << "." << field
                    << " nonzero after resetAll";
            } else if (value.kind == JsonValue::Kind::kArray) {
                for (const JsonValue &b : value.array) {
                    EXPECT_DOUBLE_EQ(b.number, 0.0);
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// JSON writer corner cases the exporters rely on.

TEST(JsonWriter, EscapesAndFormatsNumbers)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    // Non-finite values must not leak into the output.
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

// ------------------------------------------------------------------
// Trace-event sink.

TEST(TraceEventSink, WritesValidChromeTraceJson)
{
    TraceEventSink sink;
    const auto vd = sink.track("vd.decode");
    const auto power = sink.track("vd.power");
    EXPECT_EQ(sink.track("vd.decode"), vd); // get-or-create

    // Emitted deliberately out of timestamp order.
    sink.complete(vd, "decode", 10 * sim_clock::ms, 4 * sim_clock::ms,
                  {{"frame", 1.0}});
    sink.complete(vd, "decode", 2 * sim_clock::ms, 4 * sim_clock::ms,
                  {{"frame", 0.0}});
    sink.complete(power, "S3", 6 * sim_clock::ms, 3 * sim_clock::ms);
    sink.instant(power, "wake", 9 * sim_clock::ms);
    sink.counter(power, "dram.bytes", 9 * sim_clock::ms, 4096.0);

    EXPECT_EQ(sink.trackCount(), 2u);
    EXPECT_EQ(sink.eventCount(), 5u);

    std::ostringstream os;
    sink.writeJson(os);
    const JsonValue root = JsonParser(os.str()).parse();

    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

    // Metadata first: process name plus one name record per track.
    std::size_t meta = 0;
    std::map<double, std::vector<double>> ts_by_tid;
    for (const JsonValue &e : events->array) {
        const std::string ph = e.find("ph")->str;
        if (ph == "M") {
            ++meta;
            continue;
        }
        ts_by_tid[e.find("tid")->number].push_back(
            e.find("ts")->number);
        if (ph == "X") {
            EXPECT_GT(e.find("dur")->number, 0.0);
        }
    }
    EXPECT_GE(meta, 3u); // process_name + 2 thread_names
    EXPECT_EQ(events->array.size(), meta + 5u);

    // Every track's timeline is monotonic even though events were
    // emitted out of order.
    for (const auto &[tid, tss] : ts_by_tid) {
        EXPECT_TRUE(std::is_sorted(tss.begin(), tss.end()))
            << "track " << tid << " not monotonic";
    }

    // Ticks are picoseconds; trace timestamps are microseconds.
    const std::vector<double> &vd_ts = ts_by_tid[0.0];
    ASSERT_EQ(vd_ts.size(), 2u);
    EXPECT_DOUBLE_EQ(vd_ts[0], 2000.0);
    EXPECT_DOUBLE_EQ(vd_ts[1], 10000.0);
}

} // namespace
} // namespace vstream
