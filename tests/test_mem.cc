/**
 * @file
 * Tests for the LPDDR3 DRAM model: address mapping, bank state,
 * controller timing, energy accounting, and the row-open timeout that
 * underpins the paper's racing argument.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hh"
#include "mem/dram_bank.hh"
#include "mem/dram_controller.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace vstream
{
namespace
{

DramConfig
smallConfig()
{
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    return cfg;
}

TEST(DramConfig, DerivedQuantities)
{
    DramConfig cfg;
    EXPECT_EQ(cfg.bytesPerBurst(), 32u);          // x32, BL8
    EXPECT_EQ(cfg.burstTime(), 4u * cfg.t_ck);    // 4 clocks DDR
    EXPECT_GT(cfg.rowsPerBank(), 0u);
    cfg.validate();
}

TEST(DramConfigDeath, BadGeometryFatal)
{
    DramConfig cfg;
    cfg.row_bytes = 1000; // not a power of two
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(AddressMap, RoundTrip)
{
    const DramConfig cfg = smallConfig();
    const AddressMap map(cfg);
    for (Addr a = 0; a < (1u << 20); a += 4096 + 32) {
        const DramCoord c = map.decompose(a);
        EXPECT_EQ(map.compose(c), a / 32 * 32) << "addr " << a;
    }
}

TEST(AddressMap, ChannelInterleavesAtBurstGranularity)
{
    const DramConfig cfg = smallConfig();
    const AddressMap map(cfg);
    // RoRaBaCoCh: adjacent bursts alternate channels.
    EXPECT_EQ(map.decompose(0).channel, 0u);
    EXPECT_EQ(map.decompose(32).channel, 1u);
    EXPECT_EQ(map.decompose(64).channel, 0u);
}

TEST(AddressMap, ColumnThenBankOrdering)
{
    const DramConfig cfg = smallConfig();
    const AddressMap map(cfg);
    // Same row while within row_bytes per channel: 2 KB row x 2
    // channels = 4 KB of contiguous space per (bank,row).
    const DramCoord a = map.decompose(0);
    const DramCoord b = map.decompose(4096 - 32);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    const DramCoord c = map.decompose(4096);
    EXPECT_NE(c.bank, a.bank); // next bank
    EXPECT_EQ(c.row, a.row);
}

TEST(AddressMap, RowAdvancesAfterAllBanks)
{
    const DramConfig cfg = smallConfig();
    const AddressMap map(cfg);
    const std::uint64_t banks_span = 4096ULL * cfg.banks_per_rank;
    EXPECT_EQ(map.decompose(banks_span).row,
              map.decompose(0).row + 1);
}

TEST(AddressMap, ColumnsPerRow)
{
    const DramConfig cfg = smallConfig();
    const AddressMap map(cfg);
    EXPECT_EQ(map.columnsPerRow(), cfg.row_bytes / cfg.bytesPerBurst());
}

TEST(DramBank, ActivateTrackRow)
{
    DramBank bank;
    EXPECT_FALSE(bank.rowOpen());
    bank.activate(7, 100);
    EXPECT_TRUE(bank.rowOpen());
    EXPECT_EQ(bank.openRow(), 7u);
    EXPECT_EQ(bank.openedAt(), 100u);
}

TEST(DramBank, ExpireAfterTimeout)
{
    DramBank bank;
    bank.activate(3, 0);
    bank.touch(1000);
    EXPECT_FALSE(bank.expireRow(1500, 1000)); // gap 500 <= 1000
    EXPECT_TRUE(bank.expireRow(2500, 1000));  // gap 1500 > 1000
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_FALSE(bank.expireRow(9999, 1000)); // already closed
}

TEST(DramBank, PrechargeClosesAndDelays)
{
    DramBank bank;
    bank.activate(1, 0);
    bank.precharge(500);
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_EQ(bank.readyAt(), 500u);
}

TEST(DramController, FirstAccessActivates)
{
    DramController ctrl(smallConfig());
    const MemResult r = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder}, 0);
    EXPECT_EQ(r.bursts, 1u);
    EXPECT_EQ(r.activations, 1u);
    EXPECT_EQ(r.row_hits, 0u);
    // tRCD + tCL + burst.
    const DramConfig &cfg = ctrl.config();
    EXPECT_EQ(r.finish_tick, cfg.t_rcd + cfg.t_cl + cfg.burstTime());
}

TEST(DramController, BackToBackSameRowHits)
{
    DramController ctrl(smallConfig());
    const auto r1 = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder}, 0);
    const auto r2 = ctrl.access(
        MemRequest{64, 32, MemOp::kRead, Requester::kVideoDecoder},
        r1.finish_tick);
    EXPECT_EQ(r2.row_hits, 1u);
    EXPECT_EQ(r2.activations, 0u);
    EXPECT_LT(r2.finish_tick - r1.finish_tick,
              r1.finish_tick); // hit is faster than the cold access
}

TEST(DramController, TimeoutForcesReactivation)
{
    DramConfig cfg = smallConfig();
    cfg.row_open_timeout = 100 * sim_clock::ns;
    DramController ctrl(cfg);
    const auto r1 = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder}, 0);
    // Come back long after the starvation bound.
    const auto r2 = ctrl.access(
        MemRequest{64, 32, MemOp::kRead, Requester::kVideoDecoder},
        r1.finish_tick + 10 * cfg.row_open_timeout);
    EXPECT_EQ(r2.activations, 1u);
    EXPECT_EQ(r2.row_hits, 0u);
    // The timeout precharge was accounted.
    EXPECT_EQ(ctrl.energy().totalCounts().precharges, 1u);
}

TEST(DramController, RowConflictPrechargesAndPaysRas)
{
    DramConfig cfg = smallConfig();
    cfg.row_open_timeout = 1 * sim_clock::s; // effectively off
    DramController ctrl(cfg);
    const auto r1 = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder}, 0);
    // Same bank, different row: banks repeat every 32 KB, row size
    // per (bank,row) across channels is 4 KB -> 32 KB offset is the
    // same bank, next row... actually 32 KB advances the row index.
    const Addr conflict = 32 * 1024;
    const auto r2 = ctrl.access(
        MemRequest{conflict, 32, MemOp::kRead,
                   Requester::kVideoDecoder},
        r1.finish_tick);
    EXPECT_EQ(r2.activations, 1u);
    EXPECT_EQ(ctrl.energy().totalCounts().precharges, 1u);
    // Conflict path pays tRP + tRCD at least.
    EXPECT_GE(r2.finish_tick - r1.finish_tick,
              cfg.t_rp + cfg.t_rcd + cfg.t_cl);
}

TEST(DramController, MultiBurstRequestSplits)
{
    DramController ctrl(smallConfig());
    // 64 B spans two 32 B bursts (on two channels).
    const auto r = ctrl.access(
        MemRequest{0, 64, MemOp::kRead, Requester::kVideoDecoder}, 0);
    EXPECT_EQ(r.bursts, 2u);
    // Unaligned 48 B spanning a burst boundary -> 2 bursts.
    const auto r2 = ctrl.access(
        MemRequest{48, 48, MemOp::kWrite, Requester::kVideoDecoder},
        r.finish_tick);
    EXPECT_EQ(r2.bursts, 2u);
}

TEST(DramController, EnergyPerRequesterIsolated)
{
    DramController ctrl(smallConfig());
    ctrl.access(MemRequest{0, 64, MemOp::kRead,
                           Requester::kVideoDecoder},
                0);
    ctrl.access(MemRequest{1 << 20, 64, MemOp::kWrite,
                           Requester::kDisplayController},
                0);
    const auto &vd = ctrl.energy().counts(Requester::kVideoDecoder);
    const auto &dc =
        ctrl.energy().counts(Requester::kDisplayController);
    EXPECT_EQ(vd.read_bursts, 2u);
    EXPECT_EQ(vd.write_bursts, 0u);
    EXPECT_EQ(dc.write_bursts, 2u);
    EXPECT_EQ(dc.bytes_written, 64u);
    EXPECT_GT(ctrl.energy().actPreEnergy(Requester::kVideoDecoder),
              0.0);
    EXPECT_GT(ctrl.energy().burstEnergyTotal(), 0.0);
}

TEST(DramEnergy, BackgroundScalesWithSpan)
{
    const DramConfig cfg = smallConfig();
    DramEnergy e(cfg);
    const double one_ms = e.backgroundEnergy(sim_clock::ms);
    EXPECT_NEAR(one_ms, cfg.background_watts * 1e-3, 1e-12);
    EXPECT_NEAR(e.backgroundEnergy(10 * sim_clock::ms), 10 * one_ms,
                1e-12);
}

TEST(DramController, ResetClearsState)
{
    DramController ctrl(smallConfig());
    ctrl.access(MemRequest{0, 32, MemOp::kRead,
                           Requester::kVideoDecoder},
                0);
    ctrl.reset();
    EXPECT_EQ(ctrl.energy().totalCounts().activations, 0u);
    const auto r = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder}, 0);
    EXPECT_EQ(r.activations, 1u); // cold again
}

TEST(MemorySystem, AllocateBumpsAndAligns)
{
    EventQueue q;
    MemorySystem mem("mem", &q, smallConfig());
    const Addr a = mem.allocate(100, "x");
    const Addr b = mem.allocate(1, "y");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(b, 128u); // 100 rounded to 128
    EXPECT_EQ(mem.allocatedBytes(), 192u);
}

TEST(MemorySystemDeath, ExhaustionIsFatal)
{
    EventQueue q;
    DramConfig cfg = smallConfig();
    MemorySystem mem("mem", &q, cfg);
    EXPECT_DEATH(mem.allocate(cfg.capacity_bytes + 64, "huge"),
                 "out of simulated DRAM");
}

TEST(MemorySystem, ReadWriteCountRequests)
{
    EventQueue q;
    MemorySystem mem("mem", &q, smallConfig());
    mem.read(0, 64, Requester::kVideoDecoder, 0);
    mem.write(4096, 48, Requester::kDisplayController, 0);
    EXPECT_EQ(mem.requestCount(), 2u);
}

/** Dense streaming should mostly row-hit; scattered access should
 * mostly activate - the contrast behind Figs. 5 and 10. */
TEST(DramController, StreamingBeatsScattered)
{
    DramController dense(smallConfig());
    DramController scattered(smallConfig());

    Tick t = 0;
    for (Addr a = 0; a < 64 * 1024; a += 64) {
        t = dense
                .access(MemRequest{a, 64, MemOp::kRead,
                                   Requester::kDisplayController},
                        t)
                .finish_tick;
    }

    t = 0;
    Addr a = 0;
    for (int i = 0; i < 1024; ++i) {
        a = (a + 37 * 4096) % (32ULL << 20);
        t = scattered
                .access(MemRequest{a, 64, MemOp::kRead,
                                   Requester::kDisplayController},
                        t)
                .finish_tick;
    }

    const auto d = dense.energy().totalCounts();
    const auto s = scattered.energy().totalCounts();
    EXPECT_LT(d.activations * 4, d.row_hits);
    EXPECT_GT(s.activations, s.row_hits);
}

class BankTimeoutSweep : public ::testing::TestWithParam<Tick>
{
};

TEST_P(BankTimeoutSweep, ShorterTimeoutNeverReducesActivations)
{
    DramConfig cfg = smallConfig();
    cfg.row_open_timeout = GetParam();
    DramController ctrl(cfg);

    Tick t = 0;
    for (Addr a = 0; a < 16 * 1024; a += 64) {
        // Spaced accesses: 1 us apart.
        t += sim_clock::us;
        ctrl.access(MemRequest{a, 64, MemOp::kRead,
                               Requester::kVideoDecoder},
                    t);
    }
    const auto counts = ctrl.energy().totalCounts();
    // Store for cross-param comparison via recorded property.
    RecordProperty("activations",
                   static_cast<int>(counts.activations));
    if (GetParam() >= 2 * sim_clock::us) {
        // Generous timeout: rows survive the 1 us spacing.
        EXPECT_LT(counts.activations, 64u);
    } else if (GetParam() <= sim_clock::us / 2) {
        // Tight timeout: every access re-activates.
        EXPECT_EQ(counts.activations, 512u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Timeouts, BankTimeoutSweep,
    ::testing::Values(Tick(100) * sim_clock::ns,
                      Tick(500) * sim_clock::ns,
                      Tick(2) * sim_clock::us,
                      Tick(50) * sim_clock::us));

} // namespace
} // namespace vstream
