/**
 * @file
 * Tests for the DRAM controller's posted-write queue and refresh
 * modelling.
 */

#include <gtest/gtest.h>

#include "mem/dram_controller.hh"

namespace vstream
{
namespace
{

DramConfig
baseConfig()
{
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    cfg.row_open_timeout = 100 * sim_clock::ns; // tight on purpose
    return cfg;
}

TEST(WriteQueue, DepthZeroIssuesImmediately)
{
    DramController ctrl(baseConfig());
    ctrl.access(MemRequest{0, 32, MemOp::kWrite,
                           Requester::kVideoDecoder},
                0);
    EXPECT_EQ(ctrl.pendingWrites(), 0u);
    EXPECT_EQ(ctrl.energy().totalCounts().write_bursts, 1u);
}

TEST(WriteQueue, PostsUntilWatermark)
{
    DramConfig cfg = baseConfig();
    cfg.write_queue_depth = 4;
    DramController ctrl(cfg);

    // Three bursts into one bank: all pending, nothing charged yet.
    for (int i = 0; i < 3; ++i) {
        ctrl.access(MemRequest{static_cast<Addr>(i) * 64, 32,
                               MemOp::kWrite,
                               Requester::kVideoDecoder},
                    0);
    }
    EXPECT_EQ(ctrl.pendingWrites(), 3u);
    EXPECT_EQ(ctrl.energy().totalCounts().write_bursts, 0u);

    // The fourth write to the same bank hits the watermark.
    ctrl.access(MemRequest{3 * 64, 32, MemOp::kWrite,
                           Requester::kVideoDecoder},
                0);
    EXPECT_EQ(ctrl.pendingWrites(), 0u);
    EXPECT_EQ(ctrl.energy().totalCounts().write_bursts, 4u);
}

TEST(WriteQueue, FlushDrainsEverything)
{
    DramConfig cfg = baseConfig();
    cfg.write_queue_depth = 64;
    DramController ctrl(cfg);
    for (int i = 0; i < 10; ++i) {
        ctrl.access(MemRequest{static_cast<Addr>(i) * 4096, 32,
                               MemOp::kWrite,
                               Requester::kDisplayController},
                    0);
    }
    EXPECT_GT(ctrl.pendingWrites(), 0u);
    ctrl.flushWrites(1000);
    EXPECT_EQ(ctrl.pendingWrites(), 0u);
    EXPECT_EQ(ctrl.energy().totalCounts().write_bursts, 10u);
}

TEST(WriteQueue, BatchingRecoversRowLocality)
{
    // Scattered writes alternating between two rows of one bank,
    // spaced beyond the row timeout: immediate issue re-activates
    // every time; queued-and-sorted service activates once per row.
    auto run = [](std::uint32_t depth) {
        DramConfig cfg = baseConfig();
        cfg.write_queue_depth = depth;
        DramController ctrl(cfg);
        // Same bank, alternating rows (bank stride is 32 KB).
        for (int i = 0; i < 16; ++i) {
            const Addr row = (i % 2) ? 0 : (256ULL << 10);
            const Tick t = static_cast<Tick>(i) * sim_clock::us;
            ctrl.access(MemRequest{row + (i / 2) * 64ULL, 32,
                                   MemOp::kWrite,
                                   Requester::kVideoDecoder},
                        t);
        }
        ctrl.flushWrites(20 * sim_clock::us);
        return ctrl.energy().totalCounts().activations;
    };
    const auto direct = run(0);
    const auto queued = run(32);
    EXPECT_GE(direct, 16u);  // every scattered write re-activates
    EXPECT_LE(queued, 4u);   // one activation per row in the batch
}

TEST(WriteQueue, TotalBurstCountUnchanged)
{
    auto run = [](std::uint32_t depth) {
        DramConfig cfg = baseConfig();
        cfg.write_queue_depth = depth;
        DramController ctrl(cfg);
        for (int i = 0; i < 37; ++i) {
            ctrl.access(MemRequest{static_cast<Addr>(i) * 48, 48,
                                   MemOp::kWrite,
                                   Requester::kVideoDecoder},
                        0);
        }
        ctrl.flushWrites(0);
        return ctrl.energy().totalCounts().write_bursts;
    };
    EXPECT_EQ(run(0), run(8));
}

TEST(WriteQueue, ReadsUnaffected)
{
    DramConfig cfg = baseConfig();
    cfg.write_queue_depth = 16;
    DramController ctrl(cfg);
    const MemResult r = ctrl.access(
        MemRequest{0, 64, MemOp::kRead, Requester::kVideoDecoder}, 0);
    EXPECT_EQ(r.bursts, 2u);
    EXPECT_GT(r.finish_tick, 0u);
    EXPECT_EQ(ctrl.pendingWrites(), 0u);
}

TEST(Refresh, DisabledByDefault)
{
    DramController ctrl(baseConfig());
    Tick t = 0;
    for (int i = 0; i < 100; ++i) {
        t = ctrl.access(MemRequest{static_cast<Addr>(i) * 64, 32,
                                   MemOp::kRead,
                                   Requester::kVideoDecoder},
                        t)
                .finish_tick;
    }
    EXPECT_EQ(ctrl.refreshCount(), 0u);
}

TEST(Refresh, BlocksOncePerEpoch)
{
    DramConfig cfg = baseConfig();
    cfg.refresh_enabled = true;
    DramController ctrl(cfg);

    // An access inside the first refresh window gets pushed past it.
    const Tick inside = cfg.t_refi + cfg.t_rfc / 2;
    const MemResult r = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder},
        inside);
    EXPECT_GE(r.finish_tick, cfg.t_refi + cfg.t_rfc);
    EXPECT_EQ(ctrl.refreshCount(), 1u);

    // Another access in the same epoch is not blocked again.
    const MemResult r2 = ctrl.access(
        MemRequest{64, 32, MemOp::kRead, Requester::kVideoDecoder},
        r.finish_tick);
    EXPECT_EQ(ctrl.refreshCount(), 1u);
    EXPECT_GT(r2.finish_tick, r.finish_tick);
}

TEST(Refresh, IdleEpochsDoNotBlockLateAccesses)
{
    DramConfig cfg = baseConfig();
    cfg.refresh_enabled = true;
    DramController ctrl(cfg);
    // Arrive long after many refresh windows; only the current
    // window can block.
    const Tick late = 100 * cfg.t_refi + cfg.t_rfc + 1;
    const MemResult r = ctrl.access(
        MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder},
        late);
    // No stall beyond the normal access envelope.
    EXPECT_LE(r.finish_tick,
              late + cfg.t_rcd + cfg.t_cl + cfg.burstTime());
}

TEST(Refresh, ResetRestartsSchedule)
{
    DramConfig cfg = baseConfig();
    cfg.refresh_enabled = true;
    DramController ctrl(cfg);
    ctrl.access(MemRequest{0, 32, MemOp::kRead,
                           Requester::kVideoDecoder},
                2 * cfg.t_refi);
    EXPECT_GT(ctrl.refreshCount(), 0u);
    ctrl.reset();
    EXPECT_EQ(ctrl.refreshCount(), 0u);
}

} // namespace
} // namespace vstream
