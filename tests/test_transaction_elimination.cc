/**
 * @file
 * Tests for checksum-based transaction elimination at the display
 * and the generator's static-frame support.
 */

#include <gtest/gtest.h>

#include "core/video_pipeline.hh"
#include "core/writeback_stage.hh"
#include "display/display_controller.hh"
#include "sim/event_queue.hh"
#include "video/synthetic_video.hh"

namespace vstream
{
namespace
{

VideoProfile
staticProfile(double static_rate)
{
    VideoProfile p;
    p.key = "TE";
    p.width = 64;
    p.height = 32;
    p.frame_count = 40;
    p.seed = 321;
    p.static_frame_rate = static_rate;
    return p;
}

TEST(StaticFrames, GeneratorRepeatsVerbatim)
{
    VideoProfile p = staticProfile(1.0); // every frame after 0 static
    SyntheticVideo video(p);
    const Frame first = video.nextFrame();
    for (int i = 1; i < 5; ++i) {
        const Frame f = video.nextFrame();
        EXPECT_EQ(f.contentChecksum(), first.contentChecksum())
            << "frame " << i;
        EXPECT_EQ(f.index(), static_cast<std::uint64_t>(i));
        EXPECT_LT(f.encodedBytes(), first.encodedBytes());
    }
}

TEST(StaticFrames, ZeroRateNeverRepeatsWholeFrames)
{
    VideoProfile p = staticProfile(0.0);
    SyntheticVideo video(p);
    const auto c0 = video.nextFrame().contentChecksum();
    const auto c1 = video.nextFrame().contentChecksum();
    EXPECT_NE(c0, c1);
}

TEST(TransactionElimination, SkipsIdenticalScan)
{
    EventQueue queue;
    MemorySystem mem("mem", &queue, DramConfig{});
    FrameBufferManager fbm(mem, 8, 48, 0);
    DisplayConfig dcfg;
    dcfg.use_display_cache = false;
    dcfg.use_mach_buffer = false;
    dcfg.transaction_elimination = true;
    DisplayController dc("dc", &queue, mem, fbm, dcfg);

    LinearWriteback wb(mem, fbm);
    Frame f(0, FrameType::kI, 8, 1, 4);
    for (std::uint32_t i = 0; i < 8; ++i) {
        f.mab(i).fill(Pixel{static_cast<std::uint8_t>(i), 0, 0});
    }
    BufferSlot &slot = fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 8; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);

    const ScanStats first = dc.scanOut(layout, 0);
    EXPECT_FALSE(first.eliminated);
    EXPECT_GT(first.dram_requests, 0u);

    const ScanStats second = dc.scanOut(layout, 1000);
    EXPECT_TRUE(second.eliminated);
    EXPECT_TRUE(second.verified);
    EXPECT_EQ(second.dram_requests, 0u);
    EXPECT_EQ(dc.totals().eliminated_frames, 1u);
}

TEST(TransactionElimination, DisabledNeverEliminates)
{
    VideoProfile p = staticProfile(0.5);
    const auto r =
        simulateScheme(p, SchemeConfig::make(Scheme::kRaceToSleep));
    EXPECT_EQ(r.display.eliminated_frames, 0u);
}

TEST(TransactionElimination, FiresOnStaticContentInPipeline)
{
    VideoProfile p = staticProfile(0.5);
    SchemeConfig scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    scheme.transaction_elimination = true;
    const auto te = simulateScheme(p, scheme);
    EXPECT_GT(te.display.eliminated_frames, 5u);
    EXPECT_TRUE(te.all_verified);

    const auto base =
        simulateScheme(p, SchemeConfig::make(Scheme::kRaceToSleep));
    EXPECT_LT(te.display.dram_requests, base.display.dram_requests);
}

TEST(TransactionElimination, NoEffectOnMovingContent)
{
    VideoProfile p = staticProfile(0.0);
    SchemeConfig scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    scheme.transaction_elimination = true;
    const auto r = simulateScheme(p, scheme);
    // Only re-renders of dropped frames can be eliminated.
    EXPECT_LE(r.display.eliminated_frames, r.display.re_renders);
}

TEST(TransactionElimination, ComposesWithMach)
{
    VideoProfile p = staticProfile(0.4);
    SchemeConfig gab = SchemeConfig::make(Scheme::kGab);
    SchemeConfig both = gab;
    both.transaction_elimination = true;
    const auto a = simulateScheme(p, gab);
    const auto b = simulateScheme(p, both);
    EXPECT_LT(b.display.dram_requests, a.display.dram_requests);
    EXPECT_TRUE(b.all_verified ||
                b.mach.collisions_undetected > 0);
}

} // namespace
} // namespace vstream
