/**
 * @file
 * Tests for the MACH content cache: per-frame caches, the 8-deep
 * array, LRU within sets, intra/inter classification, digest-match
 * bookkeeping, and the CO-MACH collision detector (including a real
 * brute-forced CRC32 collision).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/co_mach.hh"
#include "core/mach_array.hh"
#include "core/mach_cache.hh"
#include "hash/crc.hh"
#include "sim/random.hh"

namespace vstream
{
namespace
{

std::vector<std::uint8_t>
blockOf(std::uint8_t fill, std::size_t n = 48)
{
    return std::vector<std::uint8_t>(n, fill);
}

MachConfig
smallConfig()
{
    MachConfig cfg;
    cfg.num_machs = 4;
    cfg.entries = 16;
    cfg.ways = 4;
    return cfg;
}

TEST(MachConfig, DefaultsMatchPaperDesignPoint)
{
    MachConfig cfg;
    EXPECT_EQ(cfg.num_machs, 8u);
    EXPECT_EQ(cfg.entries, 256u);
    EXPECT_EQ(cfg.ways, 4u);
    EXPECT_EQ(cfg.sets(), 64u); // 6 index bits, as in Sec. 4.4
    cfg.validate();
}

TEST(MachConfigDeath, BadGeometry)
{
    MachConfig cfg;
    cfg.entries = 100; // 25 sets: not a power of two
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(MachCache, InsertThenLookup)
{
    const MachConfig cfg = smallConfig();
    MachCache cache(cfg);
    const auto truth = blockOf(7);
    cache.insert(0x1234, 0, 0xf00, truth);
    const MachProbe p = cache.lookup(0x1234, 0, truth);
    EXPECT_TRUE(p.hit);
    EXPECT_EQ(p.ptr, 0xf00u);
    EXPECT_FALSE(p.collision_undetected);
    EXPECT_EQ(cache.validCount(), 1u);
}

TEST(MachCache, MissOnAbsentDigest)
{
    MachCache cache(smallConfig());
    EXPECT_FALSE(cache.lookup(0xdead, 0, blockOf(1)).hit);
}

TEST(MachCache, LruEvictionWithinSet)
{
    const MachConfig cfg = smallConfig(); // 4 sets, 4 ways
    MachCache cache(cfg);
    const std::uint32_t sets = cfg.sets();
    // Five digests mapping to set 0.
    for (std::uint32_t i = 0; i < 5; ++i) {
        cache.insert(i * sets, 0, i,
                     blockOf(static_cast<std::uint8_t>(i)));
    }
    // The first (LRU) entry must be gone; the rest present.
    EXPECT_FALSE(cache.lookup(0, 0, blockOf(0)).hit);
    for (std::uint32_t i = 1; i < 5; ++i) {
        EXPECT_TRUE(cache.lookup(i * sets, 0,
                                 blockOf(static_cast<std::uint8_t>(i)))
                        .hit);
    }
}

TEST(MachCache, LookupRefreshesLru)
{
    const MachConfig cfg = smallConfig();
    MachCache cache(cfg);
    const std::uint32_t sets = cfg.sets();
    for (std::uint32_t i = 0; i < 4; ++i) {
        cache.insert(i * sets, 0, i,
                     blockOf(static_cast<std::uint8_t>(i)));
    }
    // Touch entry 0, then insert a fifth: victim must be entry 1.
    cache.lookup(0, 0, blockOf(0));
    cache.insert(4 * sets, 0, 4, blockOf(4));
    EXPECT_TRUE(cache.lookup(0, 0, blockOf(0)).hit);
    EXPECT_FALSE(cache.lookup(sets, 0, blockOf(1)).hit);
}

TEST(MachCache, UndetectedCollisionFlagged)
{
    // Same digest, different content, no CO-MACH: the probe hits the
    // wrong block and reports collision_undetected.
    MachCache cache(smallConfig());
    cache.insert(0xabcd, 0, 1, blockOf(1));
    const MachProbe p = cache.lookup(0xabcd, 0, blockOf(2));
    EXPECT_TRUE(p.hit);
    EXPECT_TRUE(p.collision_undetected);
}

TEST(MachCache, CoMachAuxDetectsCollision)
{
    MachConfig cfg = smallConfig();
    cfg.co_mach = true;
    MachCache cache(cfg);
    cache.insert(0xabcd, /*aux=*/0x11, 1, blockOf(1));
    // Same CRC32, different CRC16: detected, treated as a miss.
    const MachProbe p = cache.lookup(0xabcd, 0x22, blockOf(2));
    EXPECT_FALSE(p.hit);
    EXPECT_TRUE(p.collision_detected);
}

TEST(MachCache, FullTagsCompareAux)
{
    MachConfig cfg = smallConfig();
    MachCache cache(cfg, cfg.entries, /*full_tags=*/true);
    cache.insert(0xabcd, 0x11, 1, blockOf(1));
    EXPECT_FALSE(cache.lookup(0xabcd, 0x22, blockOf(2)).hit);
    EXPECT_TRUE(cache.lookup(0xabcd, 0x11, blockOf(1)).hit);
}

TEST(MachCacheDeath, FrozenInsertPanics)
{
    MachCache cache(smallConfig());
    cache.freeze();
    EXPECT_DEATH(cache.insert(1, 0, 1, blockOf(1)), "frozen");
}

TEST(MachCache, DumpBytesCountsValidEntries)
{
    const MachConfig cfg = smallConfig();
    MachCache cache(cfg);
    EXPECT_EQ(cache.dumpBytes(), 0u);
    cache.insert(1, 0, 10, blockOf(1));
    cache.insert(2, 0, 20, blockOf(2));
    EXPECT_EQ(cache.dumpBytes(),
              2u * (cfg.digest_bytes + cfg.pointer_bytes));
    EXPECT_EQ(cache.validEntries().size(), 2u);
}

TEST(MachArray, IntraVsInterClassification)
{
    MachArray arr(smallConfig());
    arr.beginFrame();
    arr.insertUnique(0x10, 0, 100, blockOf(1), false);

    // Same frame: intra.
    auto r = arr.lookup(0x10, 0, blockOf(1));
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.inter);
    EXPECT_EQ(r.frame_age, 0u);
    EXPECT_EQ(r.ptr, 100u);

    // Next frame: the old MACH freezes into history -> inter.
    arr.beginFrame();
    r = arr.lookup(0x10, 0, blockOf(1));
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.inter);
    EXPECT_EQ(r.frame_age, 1u);

    EXPECT_EQ(arr.stats().intra_hits, 1u);
    EXPECT_EQ(arr.stats().inter_hits, 1u);
}

TEST(MachArray, HistoryBoundedByNumMachs)
{
    MachConfig cfg = smallConfig();
    cfg.num_machs = 3; // current + 2 previous
    MachArray arr(cfg);
    arr.beginFrame();
    arr.insertUnique(0x42, 0, 1, blockOf(9), false);
    // Age the entry past the window.
    for (int i = 0; i < 3; ++i) {
        arr.beginFrame();
    }
    EXPECT_FALSE(arr.lookup(0x42, 0, blockOf(9)).hit);
    EXPECT_LE(arr.historyDepth(), 2u);
}

TEST(MachArray, CurrentFrameWinsOverHistory)
{
    MachArray arr(smallConfig());
    arr.beginFrame();
    arr.insertUnique(0x7, 0, 111, blockOf(3), false);
    arr.beginFrame();
    arr.insertUnique(0x7, 0, 222, blockOf(3), false);
    const auto r = arr.lookup(0x7, 0, blockOf(3));
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.inter); // found in the current frame first
    EXPECT_EQ(r.ptr, 222u);
}

TEST(MachArray, MatchCountsFeedTopShares)
{
    MachArray arr(smallConfig());
    arr.beginFrame();
    arr.insertUnique(0xa, 0, 1, blockOf(1), false);
    arr.insertUnique(0xb, 0, 2, blockOf(2), false);
    for (int i = 0; i < 3; ++i) {
        arr.lookup(0xa, 0, blockOf(1));
    }
    arr.lookup(0xb, 0, blockOf(2));
    const auto shares = arr.topMatchShares(4);
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_DOUBLE_EQ(shares[0], 0.75);
    EXPECT_DOUBLE_EQ(shares[1], 0.25);
}

TEST(MachArray, MissesCounted)
{
    MachArray arr(smallConfig());
    arr.beginFrame();
    arr.lookup(0x1, 0, blockOf(1));
    arr.lookup(0x2, 0, blockOf(2));
    EXPECT_EQ(arr.stats().misses, 2u);
    EXPECT_EQ(arr.stats().lookups, 2u);
    EXPECT_DOUBLE_EQ(arr.stats().hitRate(), 0.0);
}

/**
 * Trace equivalence for the flat-table/arena MachCache: replay a
 * recorded random trace against an independent map-based LRU model
 * of the documented policy and demand identical per-op hits, misses
 * and evictions.  This pins the open-addressing tables and the truth
 * arena to the exact behaviour of the original node-based storage.
 */
TEST(MachCache, FlatTablesMatchReferenceModelOnRandomTrace)
{
    const MachConfig cfg = smallConfig();
    MachCache cache(cfg);
    const std::uint32_t sets = cfg.sets();

    // Reference model: per set, tags in LRU order (front = LRU).
    std::vector<std::vector<std::uint32_t>> model(sets);
    auto model_find = [&](std::uint32_t digest) {
        auto &set = model[digest & (sets - 1)];
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i] == digest) {
                return static_cast<std::ptrdiff_t>(i);
            }
        }
        return static_cast<std::ptrdiff_t>(-1);
    };

    Random rng(0x77ace);
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    for (int op = 0; op < 4000; ++op) {
        // A small digest space keeps the sets colliding and evicting.
        const std::uint32_t digest =
            static_cast<std::uint32_t>(rng.next() % 96);
        const auto truth =
            blockOf(static_cast<std::uint8_t>(digest));
        auto &set = model[digest & (sets - 1)];
        const std::ptrdiff_t at = model_find(digest);

        const MachProbe p = cache.lookup(digest, 0, truth);
        EXPECT_EQ(p.hit, at >= 0) << "op " << op;
        EXPECT_FALSE(p.collision_undetected);
        if (at >= 0) {
            ++hits;
            // LRU refresh on hit.
            set.erase(set.begin() + at);
            set.push_back(digest);
        } else {
            ++misses;
            // Mirror the writeback's insert-on-miss.
            cache.insert(digest, 0, digest * 48, truth);
            if (set.size() == cfg.ways) {
                set.erase(set.begin());
                ++evictions;
            }
            set.push_back(digest);
        }
    }

    // The trace must actually have exercised all three behaviours.
    EXPECT_GT(hits, 100u);
    EXPECT_GT(misses, 100u);
    EXPECT_GT(evictions, 100u);

    // Residency after the trace matches the model exactly.
    std::uint32_t resident = 0;
    for (std::uint32_t digest = 0; digest < 96; ++digest) {
        const bool want = model_find(digest) >= 0;
        resident += want ? 1u : 0u;
        EXPECT_EQ(cache
                      .lookup(digest, 0,
                              blockOf(static_cast<std::uint8_t>(
                                  digest)))
                      .hit,
                  want)
            << "digest " << digest;
    }
    EXPECT_EQ(cache.validCount(), resident);
}

/** The MachArray over the same idea: a recorded random trace of
 * frames, inserts and lookups replayed twice must produce identical
 * statistics, and the counts must conserve. */
TEST(MachArray, RandomTraceIsDeterministicAndConserves)
{
    auto run = [] {
        MachArray arr(smallConfig());
        Random rng(0xa77);
        arr.beginFrame();
        for (int op = 0; op < 3000; ++op) {
            const std::uint32_t digest =
                static_cast<std::uint32_t>(rng.next() % 128);
            const auto truth =
                blockOf(static_cast<std::uint8_t>(digest));
            if (op % 97 == 96) {
                arr.beginFrame();
            }
            const auto r = arr.lookup(digest, 0, truth);
            if (!r.hit) {
                arr.insertUnique(digest, 0, digest * 48, truth,
                                 false);
            }
        }
        return arr.stats();
    };
    const MachStats a = run();
    const MachStats b = run();
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.intra_hits, b.intra_hits);
    EXPECT_EQ(a.inter_hits, b.inter_hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.inserts, b.inserts);
    EXPECT_EQ(a.collisions_undetected, b.collisions_undetected);
    EXPECT_EQ(a.lookups, a.hits() + a.misses);
    EXPECT_EQ(a.inserts, a.misses); // one insert per miss above
    EXPECT_GT(a.hits(), 0u);
    EXPECT_GT(a.misses, 0u);
}

TEST(CoMach, PerFrameReset)
{
    MachConfig cfg = smallConfig();
    cfg.co_mach = true;
    CoMach co(cfg);
    co.insert(0x1, 0x2, 99, blockOf(5));
    EXPECT_TRUE(co.lookup(0x1, 0x2, blockOf(5)).hit);
    co.beginFrame();
    EXPECT_FALSE(co.lookup(0x1, 0x2, blockOf(5)).hit);
    EXPECT_EQ(co.insertCount(), 1u);
}

TEST(MachArray, CollidedInsertGoesToCoMach)
{
    MachConfig cfg = smallConfig();
    cfg.co_mach = true;
    MachArray arr(cfg);
    arr.beginFrame();
    arr.insertUnique(0x99, 0x01, 1, blockOf(1), false);
    // Pretend a lookup detected a collision; the new block lands in
    // CO-MACH under its full 48-bit tag.
    arr.insertUnique(0x99, 0x02, 2, blockOf(2), true);
    EXPECT_EQ(arr.coMachInserts(), 1u);
    // Both are now findable (different aux).
    EXPECT_EQ(arr.lookup(0x99, 0x01, blockOf(1)).ptr, 1u);
    EXPECT_EQ(arr.lookup(0x99, 0x02, blockOf(2)).ptr, 2u);
}

/** Brute-force a genuine CRC32 collision between distinct 48-byte
 * blocks and check the CO-MACH mechanism end to end. */
TEST(CoMach, RealCrc32CollisionIsDetected)
{
    Random rng(2024);
    std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> seen;
    std::vector<std::uint8_t> a, b;
    for (int i = 0; i < 500000; ++i) {
        std::vector<std::uint8_t> block(48);
        for (auto &byte : block) {
            byte = static_cast<std::uint8_t>(rng.next());
        }
        const std::uint32_t d = Crc32::compute(block.data(), 48);
        auto [it, fresh] = seen.emplace(d, block);
        if (!fresh && it->second != block) {
            a = it->second;
            b = block;
            break;
        }
    }
    ASSERT_FALSE(a.empty()) << "no CRC32 collision found (unlucky seed)";
    ASSERT_NE(a, b);
    const std::uint32_t d = Crc32::compute(a.data(), 48);
    ASSERT_EQ(d, Crc32::compute(b.data(), 48));

    // CRC16s differ with overwhelming probability.
    const std::uint16_t aux_a = Crc16::compute(a.data(), 48);
    const std::uint16_t aux_b = Crc16::compute(b.data(), 48);
    ASSERT_NE(aux_a, aux_b) << "CRC16 also collided; astronomically "
                               "unlikely";

    MachConfig cfg;
    cfg.co_mach = true;
    MachArray arr(cfg);
    arr.beginFrame();
    arr.insertUnique(d, aux_a, 10, a, false);

    const auto r = arr.lookup(d, aux_b, b);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.collision_detected);

    // Without CO-MACH the same lookup silently returns block a.
    MachConfig plain;
    plain.co_mach = false;
    MachArray bad(plain);
    bad.beginFrame();
    bad.insertUnique(d, 0, 10, a, false);
    const auto rb = bad.lookup(d, 0, b);
    EXPECT_TRUE(rb.hit);
    EXPECT_TRUE(rb.collision_undetected);
}

class MachWaySweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MachWaySweep, CapacityIsEntriesRegardlessOfWays)
{
    MachConfig cfg;
    cfg.entries = 64;
    cfg.ways = GetParam();
    cfg.validate();
    MachCache cache(cfg);
    // Insert exactly `entries` digests with distinct set indices
    // spread uniformly: all must be resident.
    for (std::uint32_t i = 0; i < cfg.entries; ++i) {
        cache.insert(i, 0, i, blockOf(static_cast<std::uint8_t>(i)));
    }
    EXPECT_EQ(cache.validCount(), cfg.entries);
}

INSTANTIATE_TEST_SUITE_P(Ways, MachWaySweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace vstream
