/**
 * @file
 * Merge-algebra tests for the fleet stats primitives.
 *
 * The sharded soak's byte-identity contract (same JSON at any
 * --shards / --jobs count) reduces to three algebraic facts pinned
 * here: HdrHistogram merge is exactly associative and commutative
 * with an empty identity, ScalarAgg sums are order-independent
 * (Q44.20 fixed point), and StatsSnapshot composes both plus uint64
 * counters.  Also covers the log-linear bucket boundaries and the
 * "merged percentiles == single-histogram percentiles" property the
 * fleet report relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "sim/hdr_histogram.hh"
#include "sim/json_writer.hh"
#include "sim/random.hh"
#include "sim/stats_snapshot.hh"

namespace vstream
{
namespace
{

// ---------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------

TEST(HdrHistogram, ValuesBelowUnitRangeAreExact)
{
    HdrHistogram h(7);
    for (std::uint64_t v = 0; v < 128; ++v) {
        EXPECT_EQ(h.bucketIndex(v), v);
        EXPECT_EQ(h.bucketLowerBound(v), v);
    }
}

TEST(HdrHistogram, OctaveBoundaries)
{
    HdrHistogram h(7);
    // First value past the exact range starts the first coarse
    // octave: 64 sub-buckets of width 2 covering [128, 256).
    EXPECT_EQ(h.bucketIndex(127), 127u);
    EXPECT_EQ(h.bucketIndex(128), 128u);
    EXPECT_EQ(h.bucketIndex(129), 128u);
    EXPECT_EQ(h.bucketIndex(255), 191u);
    EXPECT_EQ(h.bucketIndex(256), 192u);
    EXPECT_EQ(h.bucketLowerBound(128), 128u);
    EXPECT_EQ(h.bucketLowerBound(191), 254u);
    EXPECT_EQ(h.bucketLowerBound(192), 256u);
}

TEST(HdrHistogram, BucketRoundTripAndErrorBound)
{
    HdrHistogram h(7);
    std::vector<std::uint64_t> probes;
    for (unsigned b = 0; b < 63; ++b) {
        const std::uint64_t p = std::uint64_t{1} << b;
        probes.push_back(p - 1);
        probes.push_back(p);
        probes.push_back(p + 1);
    }
    Random rng(99);
    for (int i = 0; i < 1000; ++i) {
        probes.push_back(rng.uniformInt(0, std::uint64_t{1} << 50));
    }
    for (const std::uint64_t v : probes) {
        const std::size_t idx = h.bucketIndex(v);
        const std::uint64_t lb = h.bucketLowerBound(idx);
        // The lower bound maps back to its own bucket...
        EXPECT_EQ(h.bucketIndex(lb), idx) << "v=" << v;
        // ...never exceeds the value...
        EXPECT_LE(lb, v) << "v=" << v;
        // ...and the quantization error stays within 2^(1-unit_bits)
        // of the value (~1.6% at unit_bits = 7).
        EXPECT_LE(static_cast<double>(v - lb),
                  static_cast<double>(v) / 64.0)
            << "v=" << v;
    }
}

TEST(HdrHistogram, BucketIndexIsMonotone)
{
    HdrHistogram h(4); // coarse: easy to cross many octaves
    std::size_t prev = 0;
    for (std::uint64_t v = 0; v < 5000; ++v) {
        const std::size_t idx = h.bucketIndex(v);
        EXPECT_GE(idx, prev) << "v=" << v;
        prev = idx;
    }
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

TEST(HdrHistogram, RecordTracksExactMinMaxSum)
{
    HdrHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);

    h.record(1000);
    h.record(3);
    h.record(77777, 2);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 77777u);
    EXPECT_EQ(h.sum(), 1000u + 3u + 2u * 77777u);
    EXPECT_DOUBLE_EQ(h.mean(), (1000.0 + 3.0 + 2 * 77777.0) / 4.0);
}

TEST(HdrHistogram, PercentileIsExactInUnitRange)
{
    HdrHistogram h(7);
    for (std::uint64_t v = 1; v <= 100; ++v) {
        h.record(v);
    }
    // All values < 128: buckets are exact, so nearest-rank is exact.
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.9), 90u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(HdrHistogram, PercentileClampsToExactEndpoints)
{
    // A single-value histogram reports that exact value at every
    // quantile, even though the value lands mid-bucket.
    HdrHistogram solo(7);
    solo.record(1000003);
    for (const double q : {0.0, 0.5, 1.0}) {
        EXPECT_EQ(solo.percentile(q), 1000003u) << "q=" << q;
    }

    HdrHistogram h(7);
    h.record(999999);
    h.record(2000003); // a different bucket than 999999
    // The low endpoint is exact; the high one is the bucket's lower
    // bound, never past max.
    EXPECT_EQ(h.percentile(0.0), 999999u);
    EXPECT_GE(h.percentile(1.0),
              h.bucketLowerBound(h.bucketIndex(2000003)));
    EXPECT_LE(h.percentile(1.0), h.max());
}

// ---------------------------------------------------------------------
// Merge algebra
// ---------------------------------------------------------------------

HdrHistogram
randomHist(std::uint64_t seed, int n)
{
    HdrHistogram h(7);
    Random rng(seed);
    for (int i = 0; i < n; ++i) {
        h.record(rng.uniformInt(0, std::uint64_t{1} << 40));
    }
    return h;
}

TEST(HdrHistogram, MergeIsCommutative)
{
    const HdrHistogram a = randomHist(1, 500);
    const HdrHistogram b = randomHist(2, 300);
    HdrHistogram ab = a;
    ab.merge(b);
    HdrHistogram ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(HdrHistogram, MergeIsAssociative)
{
    const HdrHistogram a = randomHist(3, 400);
    const HdrHistogram b = randomHist(4, 250);
    const HdrHistogram c = randomHist(5, 350);

    HdrHistogram left = a; // (a + b) + c
    left.merge(b);
    left.merge(c);

    HdrHistogram bc = b; // a + (b + c)
    bc.merge(c);
    HdrHistogram right = a;
    right.merge(bc);

    EXPECT_EQ(left, right);
}

TEST(HdrHistogram, EmptyMergeIsIdentity)
{
    const HdrHistogram a = randomHist(6, 200);
    const HdrHistogram empty(7);

    HdrHistogram lhs = a;
    lhs.merge(empty);
    EXPECT_EQ(lhs, a);

    HdrHistogram rhs(7);
    rhs.merge(a);
    EXPECT_EQ(rhs, a);
    EXPECT_EQ(rhs.min(), a.min());
    EXPECT_EQ(rhs.max(), a.max());
    EXPECT_EQ(rhs.sum(), a.sum());
}

TEST(HdrHistogram, MergedPercentilesMatchSingleHistogram)
{
    // The fleet property: recording a stream sharded 4 ways and
    // merging must be indistinguishable from one histogram that saw
    // everything.
    HdrHistogram single(7);
    HdrHistogram shards[4] = {HdrHistogram(7), HdrHistogram(7),
                              HdrHistogram(7), HdrHistogram(7)};
    Random rng(7);
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t v =
            rng.uniformInt(1, std::uint64_t{1} << 36);
        single.record(v);
        shards[i % 4].record(v);
    }
    HdrHistogram merged(7);
    for (const HdrHistogram &s : shards) {
        merged.merge(s);
    }
    EXPECT_EQ(merged, single);
    for (const double q :
         {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        EXPECT_EQ(merged.percentile(q), single.percentile(q))
            << "q=" << q;
    }
    EXPECT_EQ(merged.count(), single.count());
    EXPECT_EQ(merged.sum(), single.sum());
    EXPECT_EQ(merged.min(), single.min());
    EXPECT_EQ(merged.max(), single.max());
}

TEST(HdrHistogram, ResetReturnsToEmpty)
{
    HdrHistogram h = randomHist(8, 100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h, HdrHistogram(7));
}

// ---------------------------------------------------------------------
// ScalarAgg fixed-point algebra
// ---------------------------------------------------------------------

TEST(ScalarAgg, SumIsOrderIndependent)
{
    // Doubles whose float sum depends on order; the Q44.20
    // fixed-point sum must not.
    const std::vector<double> vals = {1e9,  0.3333333, -7.25,
                                      1e-4, 123456.78, -1e9,
                                      42.0, 0.0000019};
    ScalarAgg fwd;
    for (const double v : vals) {
        fwd.add(v);
    }
    ScalarAgg rev;
    for (auto it = vals.rbegin(); it != vals.rend(); ++it) {
        rev.add(*it);
    }
    EXPECT_EQ(fwd, rev);
    EXPECT_EQ(fwd.sum_fp, rev.sum_fp);
}

TEST(ScalarAgg, PartitionedMergeEqualsDirect)
{
    Random rng(11);
    ScalarAgg direct;
    ScalarAgg parts[3];
    for (int i = 0; i < 300; ++i) {
        const double v = rng.uniform(-1e6, 1e6);
        direct.add(v);
        parts[i % 3].add(v);
    }
    // Merge the partitions in a scrambled order.
    ScalarAgg merged = parts[2];
    merged.merge(parts[0]);
    merged.merge(parts[1]);
    EXPECT_EQ(merged, direct);
    EXPECT_DOUBLE_EQ(merged.mean(), direct.mean());
}

TEST(ScalarAgg, EmptyMergeIsIdentity)
{
    ScalarAgg a;
    a.add(3.5);
    a.add(-2.0);
    const ScalarAgg before = a;
    a.merge(ScalarAgg{});
    EXPECT_EQ(a, before);

    ScalarAgg b;
    b.merge(before);
    EXPECT_EQ(b, before);
}

// ---------------------------------------------------------------------
// StatsSnapshot composition
// ---------------------------------------------------------------------

StatsSnapshot
sampleSnapshot(std::uint64_t seed, int n)
{
    StatsSnapshot s;
    Random rng(seed);
    for (int i = 0; i < n; ++i) {
        s.addCount("sessions");
        if (rng.chance(0.25)) {
            s.addCount("state.evicted");
        }
        s.addScalar("energyJ", rng.uniform(0.0, 2.0));
        s.hist("spanUs").record(rng.uniformInt(1000, 900000));
    }
    return s;
}

TEST(StatsSnapshot, ShardedMergeEqualsDirect)
{
    // One stream of observations, recorded directly and recorded
    // sharded-then-merged, must compare equal (operator== covers
    // counters, fixed-point scalars and histogram buckets).
    StatsSnapshot direct;
    StatsSnapshot shards[3];
    Random rng(21);
    for (int i = 0; i < 600; ++i) {
        const double e = rng.uniform(0.0, 2.0);
        const std::uint64_t span = rng.uniformInt(1000, 900000);
        direct.addCount("sessions");
        direct.addScalar("energyJ", e);
        direct.hist("spanUs").record(span);
        StatsSnapshot &sh = shards[i % 3];
        sh.addCount("sessions");
        sh.addScalar("energyJ", e);
        sh.hist("spanUs").record(span);
    }
    StatsSnapshot merged;
    merged.merge(shards[1]);
    merged.merge(shards[2]);
    merged.merge(shards[0]);
    EXPECT_EQ(merged, direct);
    EXPECT_EQ(merged.count("sessions"), 600u);
}

TEST(StatsSnapshot, MergeIsAssociativeAndCommutative)
{
    const StatsSnapshot a = sampleSnapshot(1, 100);
    const StatsSnapshot b = sampleSnapshot(2, 150);
    const StatsSnapshot c = sampleSnapshot(3, 50);

    StatsSnapshot left = a;
    left.merge(b);
    left.merge(c);

    StatsSnapshot bc = b;
    bc.merge(c);
    StatsSnapshot right = a;
    right.merge(bc);
    EXPECT_EQ(left, right);

    StatsSnapshot ab = a;
    ab.merge(b);
    StatsSnapshot ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(StatsSnapshot, EmptyMergeIsIdentity)
{
    const StatsSnapshot a = sampleSnapshot(4, 80);
    StatsSnapshot lhs = a;
    lhs.merge(StatsSnapshot{});
    EXPECT_EQ(lhs, a);

    StatsSnapshot rhs;
    EXPECT_TRUE(rhs.empty());
    rhs.merge(a);
    EXPECT_EQ(rhs, a);
    EXPECT_FALSE(rhs.empty());
}

TEST(StatsSnapshot, MissingNamesReadAsAbsent)
{
    StatsSnapshot s;
    EXPECT_EQ(s.count("nope"), 0u);
    EXPECT_EQ(s.scalar("nope"), nullptr);
    EXPECT_EQ(s.histogram("nope"), nullptr);
    s.addCount("yes", 3);
    EXPECT_EQ(s.count("yes"), 3u);
}

std::string
dumped(const StatsSnapshot &s)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/true);
        w.beginObject();
        w.key("snap");
        s.dumpJson(w);
        w.endObject();
    }
    return os.str();
}

TEST(StatsSnapshot, DumpOrderIgnoresInsertionOrder)
{
    // Same content inserted in opposite orders must serialize to the
    // same bytes - the last link of the byte-identity chain.
    StatsSnapshot a;
    a.addCount("zeta", 2);
    a.addCount("alpha", 1);
    a.addScalar("m2", 1.5);
    a.addScalar("m1", 2.5);
    a.hist("h2").record(10);
    a.hist("h1").record(20);

    StatsSnapshot b;
    b.hist("h1").record(20);
    b.hist("h2").record(10);
    b.addScalar("m1", 2.5);
    b.addScalar("m2", 1.5);
    b.addCount("alpha", 1);
    b.addCount("zeta", 2);

    EXPECT_EQ(a, b);
    EXPECT_EQ(dumped(a), dumped(b));
}

} // namespace
} // namespace vstream
