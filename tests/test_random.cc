/**
 * @file
 * Tests for the deterministic PRNG: reproducibility and basic
 * distributional sanity (the synthetic videos inherit both).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hh"

namespace vstream
{
namespace
{

TEST(Random, SameSeedSameSequence)
{
    Random a(123), b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next(), b.next()) << "diverged at " << i;
    }
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Random, ReseedRestarts)
{
    Random r(99);
    const auto first = r.next();
    r.next();
    r.seed(99);
    EXPECT_EQ(r.next(), first);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Random, UniformMeanNearHalf)
{
    Random r(6);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, UniformRangeRespectsBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 7.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Random, UniformIntCoversRangeExactly)
{
    Random r(8);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i) {
        ++seen[r.uniformInt(0, 9)];
    }
    for (int v = 0; v < 10; ++v) {
        EXPECT_GT(seen[v], 800) << "value " << v;
    }
}

TEST(Random, UniformIntSingleton)
{
    Random r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.uniformInt(42, 42), 42u);
    }
}

TEST(RandomDeath, UniformIntInvertedRange)
{
    Random r(10);
    EXPECT_DEATH(r.uniformInt(5, 4), "range inverted");
}

TEST(Random, ChanceExtremes)
{
    Random r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Random, ChanceFrequency)
{
    Random r(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.chance(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, GaussianMoments)
{
    Random r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Random, GaussianShifted)
{
    Random r(14);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        sum += r.gaussian(10.0, 2.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Random, LogNormalMeanMatchesTheory)
{
    // E[exp(N(mu, sigma))] = exp(mu + sigma^2/2); with mu = -s^2/2
    // the mean is 1 (the pipeline relies on this for calibration).
    Random r(15);
    const double sigma = 0.2;
    const double mu = -0.5 * sigma * sigma;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        sum += r.logNormal(mu, sigma);
    }
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Random, BurstLengthBounds)
{
    Random r(16);
    for (int i = 0; i < 10000; ++i) {
        const auto len = r.burstLength(0.5, 8);
        ASSERT_GE(len, 1u);
        ASSERT_LE(len, 8u);
    }
}

TEST(Random, BurstLengthDegenerate)
{
    Random r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.burstLength(0.0, 8), 1u);
        EXPECT_EQ(r.burstLength(1.0, 8), 8u);
    }
}

TEST(SplitMix, KnownProgression)
{
    std::uint64_t state = 0;
    const auto a = splitMix64(state);
    const auto b = splitMix64(state);
    EXPECT_NE(a, b);
    // Reference value of SplitMix64 from seed 0, first output.
    EXPECT_EQ(a, 0xe220a8397b1dcdafULL);
}

class RandomSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomSeedSweep, UniformIntStaysInBounds)
{
    Random r(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformInt(100, 199);
        ASSERT_GE(v, 100u);
        ASSERT_LE(v, 199u);
    }
}

TEST_P(RandomSeedSweep, UniformMeanStable)
{
    Random r(GetParam());
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL,
                                           0xdeadbeefULL,
                                           ~0ULL));

} // namespace
} // namespace vstream
