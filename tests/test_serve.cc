/**
 * @file
 * Multi-session server tests: circuit-breaker state machine,
 * degradation-ladder bookkeeping, admission control, session
 * isolation (bit-identity with solo runs), and a trace-corruption
 * fuzz pass over the per-session fault domain.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "serve/session_manager.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "video/trace.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile(std::uint32_t frames = 48, std::uint64_t seed = 4242)
{
    VideoProfile p;
    p.key = "T";
    p.width = 96;
    p.height = 48;
    p.frame_count = frames;
    p.seed = seed;
    return p;
}

SessionConfig
tinySession(std::uint64_t id, Scheme scheme = Scheme::kGab)
{
    SessionConfig s;
    s.id = id;
    s.pipeline.profile = tinyProfile(48, 4242 + id);
    s.pipeline.scheme = SchemeConfig::make(scheme);
    return s;
}

std::vector<std::uint8_t>
traceBlob(const VideoProfile &p)
{
    std::ostringstream os(std::ios::binary);
    writeTrace(os, p);
    const std::string s = os.str();
    return {s.begin(), s.end()};
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

BreakerConfig
testBreaker()
{
    BreakerConfig b;
    b.false_hit_threshold = 0.10;
    b.min_lookups = 10;
    b.cooldown_base = 100 * sim_clock::ms;
    b.cooldown_cap = 400 * sim_clock::ms;
    b.jitter_frac = 0.0; // deterministic cooldown edges
    return b;
}

TEST(CircuitBreaker, StartsClosedAndIgnoresCleanWindows)
{
    CircuitBreaker cb(testBreaker());
    Random rng(1);
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
    EXPECT_FALSE(cb.onWindow(100, 0, sim_clock::ms, rng));
    EXPECT_FALSE(cb.bypass());
    EXPECT_EQ(cb.trips(), 0u);
}

TEST(CircuitBreaker, TripsOnFalseHitStorm)
{
    CircuitBreaker cb(testBreaker());
    Random rng(1);
    // 20 false hits out of 100 lookups = 20% > 10% threshold.
    EXPECT_TRUE(cb.onWindow(100, 20, sim_clock::ms, rng));
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
    EXPECT_TRUE(cb.bypass());
    EXPECT_EQ(cb.trips(), 1u);
    EXPECT_EQ(cb.cooldownEnd(), sim_clock::ms + 100 * sim_clock::ms);
}

TEST(CircuitBreaker, BelowMinLookupsNeverTrips)
{
    CircuitBreaker cb(testBreaker());
    Random rng(1);
    // 9 lookups, all false: storm-dense but statistically tiny.
    EXPECT_FALSE(cb.onWindow(9, 9, sim_clock::ms, rng));
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, ReprobesAfterCooldownAndCloses)
{
    CircuitBreaker cb(testBreaker());
    Random rng(1);
    cb.onWindow(100, 20, 0, rng);
    ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);

    // Still cooling: samples are ignored, state stays Open.
    EXPECT_FALSE(cb.onWindow(100, 0, 50 * sim_clock::ms, rng));
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);

    // Cooldown expired: re-probe (bypass lifts for one window).
    EXPECT_TRUE(cb.onWindow(100, 0, 150 * sim_clock::ms, rng));
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_FALSE(cb.bypass());
    EXPECT_EQ(cb.reprobes(), 1u);

    // Clean probe window: the breaker closes for good.
    EXPECT_TRUE(cb.onWindow(100, 0, 170 * sim_clock::ms, rng));
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(cb.trips(), 1u);
}

TEST(CircuitBreaker, RetripDoublesCooldownUpToCap)
{
    CircuitBreaker cb(testBreaker());
    Random rng(1);
    // Trip 1: cooldown 100ms.
    cb.onWindow(100, 20, 0, rng);
    EXPECT_EQ(cb.cooldownEnd(), 100 * sim_clock::ms);
    // Re-probe at 150ms, storm again: trip 2, cooldown 200ms.
    cb.onWindow(100, 0, 150 * sim_clock::ms, rng);
    ASSERT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
    cb.onWindow(100, 20, 160 * sim_clock::ms, rng);
    ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(cb.trips(), 2u);
    EXPECT_EQ(cb.cooldownEnd(),
              160 * sim_clock::ms + 200 * sim_clock::ms);
    // Trips 3 and 4: 400ms cap reached (and held).
    cb.onWindow(100, 0, 500 * sim_clock::ms, rng);
    cb.onWindow(100, 20, 510 * sim_clock::ms, rng);
    EXPECT_EQ(cb.cooldownEnd(),
              510 * sim_clock::ms + 400 * sim_clock::ms);
    cb.onWindow(100, 0, sim_clock::s, rng);
    cb.onWindow(100, 20, sim_clock::s + sim_clock::ms, rng);
    EXPECT_EQ(cb.cooldownEnd(),
              sim_clock::s + sim_clock::ms + 400 * sim_clock::ms);
}

TEST(CircuitBreaker, JitterStaysWithinFraction)
{
    BreakerConfig cfg = testBreaker();
    cfg.jitter_frac = 0.5;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        CircuitBreaker cb(cfg);
        Random rng(seed);
        cb.onWindow(100, 20, 0, rng);
        const Tick base = 100 * sim_clock::ms;
        EXPECT_GE(cb.cooldownEnd(), base);
        EXPECT_LE(cb.cooldownEnd(), base + base / 2);
    }
}

// ---------------------------------------------------------------------
// Health ladder
// ---------------------------------------------------------------------

TEST(HealthLadder, TracksDwellPerState)
{
    HealthLadder ladder;
    EXPECT_EQ(ladder.state(), HealthState::kHealthy);
    ladder.transitionTo(HealthState::kDegraded, 100);
    ladder.transitionTo(HealthState::kHealthy, 250);
    ladder.transitionTo(HealthState::kQuarantined, 400);
    EXPECT_EQ(ladder.dwell(HealthState::kHealthy, 500), 100 + 150u);
    EXPECT_EQ(ladder.dwell(HealthState::kDegraded, 500), 150u);
    EXPECT_EQ(ladder.dwell(HealthState::kQuarantined, 500), 100u);
    EXPECT_EQ(ladder.transitions(), 3u);
    EXPECT_FALSE(ladder.evicted());
    ladder.transitionTo(HealthState::kEvicted, 450);
    EXPECT_TRUE(ladder.evicted());
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(Admission, RejectsWhatCouldNeverFit)
{
    ServeConfig cfg;
    cfg.bandwidth_budget_mbps = 1.0; // below any session's demand
    SessionManager mgr(cfg);
    EXPECT_EQ(mgr.submit(tinySession(0)), Admission::kRejected);
    EXPECT_EQ(mgr.rejected(), 1u);
    EXPECT_EQ(mgr.admitted(), 0u);
}

TEST(Admission, QueuesOverBudgetAndDrainsFifo)
{
    const double demand =
        Session::demandMBps(tinySession(0).pipeline);
    ServeConfig cfg;
    // Room for exactly two concurrent sessions.
    cfg.bandwidth_budget_mbps = 2.5 * demand;
    SessionManager mgr(cfg);
    EXPECT_EQ(mgr.submit(tinySession(0)), Admission::kAdmitted);
    EXPECT_EQ(mgr.submit(tinySession(1)), Admission::kAdmitted);
    EXPECT_EQ(mgr.submit(tinySession(2)), Admission::kQueued);
    EXPECT_EQ(mgr.submit(tinySession(3)), Admission::kQueued);
    EXPECT_EQ(mgr.waitingCount(), 2u);
    EXPECT_GT(mgr.bandwidthReservedMBps(), 2.0 * demand - 1e-9);

    mgr.runAll();
    // Everyone eventually ran; budgets fully released.
    EXPECT_EQ(mgr.outcomes().size(), 4u);
    EXPECT_EQ(mgr.admitted(), 4u);
    EXPECT_EQ(mgr.queuedTotal(), 2u);
    EXPECT_EQ(mgr.bandwidthReservedMBps(), 0.0);
    EXPECT_EQ(mgr.framebufferReservedBytes(), 0u);
    // Queued sessions start only after a finisher releases budget.
    for (const SessionOutcome &o : mgr.outcomes()) {
        if (o.id >= 2) {
            EXPECT_GT(o.start_offset, 0u);
        } else {
            EXPECT_EQ(o.start_offset, 0u);
        }
    }
}

TEST(Admission, NoQueueModeRejectsInstead)
{
    const double demand =
        Session::demandMBps(tinySession(0).pipeline);
    ServeConfig cfg;
    cfg.bandwidth_budget_mbps = 1.5 * demand;
    cfg.queue_when_full = false;
    SessionManager mgr(cfg);
    EXPECT_EQ(mgr.submit(tinySession(0)), Admission::kAdmitted);
    EXPECT_EQ(mgr.submit(tinySession(1)), Admission::kRejected);
    mgr.runAll();
    EXPECT_EQ(mgr.outcomes().size(), 1u);
}

TEST(Admission, MaxActiveCapQueues)
{
    ServeConfig cfg;
    cfg.max_active = 1;
    SessionManager mgr(cfg);
    EXPECT_EQ(mgr.submit(tinySession(0)), Admission::kAdmitted);
    EXPECT_EQ(mgr.submit(tinySession(1)), Admission::kQueued);
    mgr.runAll();
    EXPECT_EQ(mgr.outcomes().size(), 2u);
}

// ---------------------------------------------------------------------
// Isolation: concurrent no-fault sessions == solo runs, bit for bit
// ---------------------------------------------------------------------

TEST(Isolation, CleanSessionsMatchSoloRunsBitIdentical)
{
    const Scheme schemes[] = {Scheme::kBaseline, Scheme::kRaceToSleep,
                              Scheme::kMab, Scheme::kGab};
    SessionManager mgr(ServeConfig{});
    for (std::uint64_t id = 0; id < 8; ++id) {
        ASSERT_EQ(mgr.submit(tinySession(id, schemes[id % 4])),
                  Admission::kAdmitted);
    }
    mgr.runAll();
    ASSERT_EQ(mgr.outcomes().size(), 8u);

    for (const SessionOutcome &o : mgr.outcomes()) {
        VideoPipeline solo(tinySession(o.id, schemes[o.id % 4]).pipeline);
        const PipelineResult r = solo.run();
        EXPECT_EQ(o.final_state, HealthState::kHealthy);
        // EXPECT_EQ on doubles: bit-identity, not approximation.
        EXPECT_EQ(r.totalEnergy(), o.result.totalEnergy());
        EXPECT_EQ(r.drops, o.result.drops);
        EXPECT_EQ(r.underruns, o.result.underruns);
        EXPECT_EQ(r.sleep_events, o.result.sleep_events);
        EXPECT_EQ(r.mach.lookups, o.result.mach.lookups);
    }
}

// ---------------------------------------------------------------------
// Fault domains: one session's damage never leaks to neighbours
// ---------------------------------------------------------------------

TEST(FaultDomain, DramStormEvictsOnlyTheFaultySession)
{
    SessionManager mgr(ServeConfig{});
    SessionConfig faulty = tinySession(1);
    faulty.pipeline.faults.dram_retry_limit = 2;
    faulty.pipeline.faults.rules.push_back(parseFaultRule(
        FaultClass::kDramTimeout, "p=0.6,from=10ms,until=600ms"));
    faulty.pipeline.faults = faulty.pipeline.faults.forSession(1);
    faulty.health.window_vsyncs = 8;
    faulty.health.abandon_budget = 4;
    faulty.health.evict_windows = 2;

    ASSERT_EQ(mgr.submit(tinySession(0)), Admission::kAdmitted);
    ASSERT_EQ(mgr.submit(std::move(faulty)), Admission::kAdmitted);
    ASSERT_EQ(mgr.submit(tinySession(2)), Admission::kAdmitted);
    mgr.runAll();
    ASSERT_EQ(mgr.outcomes().size(), 3u);

    for (const SessionOutcome &o : mgr.outcomes()) {
        if (o.id == 1) {
            EXPECT_EQ(o.final_state, HealthState::kEvicted);
            continue;
        }
        // Neighbours: healthy and bit-identical to solo.
        VideoPipeline solo(tinySession(o.id).pipeline);
        const PipelineResult r = solo.run();
        EXPECT_EQ(o.final_state, HealthState::kHealthy);
        EXPECT_EQ(r.totalEnergy(), o.result.totalEnergy());
        EXPECT_EQ(r.drops, o.result.drops);
    }
    EXPECT_EQ(mgr.evicted(), 1u);
}

TEST(FaultDomain, CorruptTraceQuarantinesAtStart)
{
    std::vector<std::uint8_t> blob = traceBlob(tinyProfile(4, 7));
    blob[blob.size() / 2] ^= 0xff;

    SessionManager mgr(ServeConfig{});
    SessionConfig bad = tinySession(0);
    bad.trace_blob = std::move(blob);
    bad.health.evict_windows = 1;
    ASSERT_EQ(mgr.submit(std::move(bad)), Admission::kAdmitted);
    mgr.runAll();
    ASSERT_EQ(mgr.outcomes().size(), 1u);
    const SessionOutcome &o = mgr.outcomes().front();
    EXPECT_EQ(o.final_state, HealthState::kEvicted);
    EXPECT_NE(o.trace_error, TraceError::kNone);
}

TEST(FaultDomain, IntactTraceStaysHealthy)
{
    SessionManager mgr(ServeConfig{});
    SessionConfig good = tinySession(0);
    good.trace_blob = traceBlob(tinyProfile(4, 7));
    ASSERT_EQ(mgr.submit(std::move(good)), Admission::kAdmitted);
    mgr.runAll();
    EXPECT_EQ(mgr.outcomes().front().final_state,
              HealthState::kHealthy);
    EXPECT_EQ(mgr.outcomes().front().trace_error, TraceError::kNone);
}

/**
 * Trace-corruption fuzz: random byte flips, truncations, and garbage
 * prefixes must never crash the server - every damaged blob lands on
 * the ladder (quarantine/evict) or is survivable (kSkipFrame), and a
 * clean neighbour session stays bit-identical to its solo run.
 */
TEST(FaultDomain, TraceCorruptionFuzzNeverLeaks)
{
    const std::vector<std::uint8_t> intact = traceBlob(tinyProfile(4, 7));
    VideoPipeline solo_pipe(tinySession(99).pipeline);
    const PipelineResult solo = solo_pipe.run();
    Random rng(20260806);

    for (int round = 0; round < 40; ++round) {
        std::vector<std::uint8_t> blob = intact;
        const std::uint64_t kind = rng.next() % 4;
        if (kind == 0) {
            // Flip 1..8 random bytes.
            const std::uint64_t flips = 1 + rng.next() % 8;
            for (std::uint64_t f = 0; f < flips; ++f) {
                blob[rng.next() % blob.size()] ^=
                    static_cast<std::uint8_t>(1 + rng.next() % 255);
            }
        } else if (kind == 1) {
            // Truncate at a random point.
            blob.resize(rng.next() % blob.size());
        } else if (kind == 2) {
            // Garbage prefix (bad magic).
            for (std::size_t b = 0; b < 4 && b < blob.size(); ++b) {
                blob[b] = static_cast<std::uint8_t>(rng.next());
            }
        } else {
            // Random tail past the trailer.
            blob.push_back(static_cast<std::uint8_t>(rng.next()));
        }

        SessionManager mgr(ServeConfig{});
        SessionConfig fuzzed = tinySession(0);
        fuzzed.trace_blob = std::move(blob);
        fuzzed.trace_policy = (round % 2 == 0)
                                  ? TracePolicy::kFailClean
                                  : TracePolicy::kSkipFrame;
        fuzzed.health.evict_windows = 1;
        ASSERT_EQ(mgr.submit(std::move(fuzzed)), Admission::kAdmitted);
        ASSERT_EQ(mgr.submit(tinySession(99)), Admission::kAdmitted);
        mgr.runAll();
        ASSERT_EQ(mgr.outcomes().size(), 2u);

        for (const SessionOutcome &o : mgr.outcomes()) {
            if (o.id != 99) {
                continue;
            }
            // The clean neighbour never notices the fuzzed blob.
            EXPECT_EQ(o.final_state, HealthState::kHealthy);
            EXPECT_EQ(o.result.totalEnergy(), solo.totalEnergy());
            EXPECT_EQ(o.result.drops, solo.drops);
        }
    }
}

// ---------------------------------------------------------------------
// Breaker inside a session: storm trips it, recovery closes it
// ---------------------------------------------------------------------

TEST(SessionBreaker, StormTripsAndCooldownRecovers)
{
    SessionManager mgr(ServeConfig{});
    SessionConfig s = tinySession(0, Scheme::kGab);
    s.pipeline.profile.frame_count = 120;
    s.pipeline.mach.verify_on_hit = true;
    s.pipeline.faults.rules.push_back(parseFaultRule(
        FaultClass::kDigestCollision, "p=0.25,from=100ms,until=700ms"));
    s.pipeline.faults = s.pipeline.faults.forSession(0);
    s.health.window_vsyncs = 8;
    s.breaker.min_lookups = 16;
    s.breaker.cooldown_base = 100 * sim_clock::ms;
    ASSERT_EQ(mgr.submit(std::move(s)), Admission::kAdmitted);
    mgr.runAll();

    const SessionOutcome &o = mgr.outcomes().front();
    EXPECT_GT(o.breaker_trips, 0u);
    EXPECT_GT(o.breaker_reprobes, 0u);
    // The storm ends at 700ms of a 2s playback: the last re-probe
    // sees a clean window and the breaker ends Closed.
    EXPECT_EQ(o.breaker_state, CircuitBreaker::State::kClosed);
    EXPECT_EQ(o.final_state, HealthState::kHealthy);
    EXPECT_EQ(mgr.breakerTrips(), o.breaker_trips);
}

// ---------------------------------------------------------------------
// Rehearsal fan-out rides the persistent pool: no per-wave spawns
// ---------------------------------------------------------------------

TEST(Rehearsal, PrecomputeWavesSpawnThreadsOnlyOnce)
{
    const auto makeWave = [](std::uint64_t base) {
        std::vector<SessionConfig> wave;
        for (std::uint64_t i = 0; i < 6; ++i) {
            wave.push_back(tinySession(base + i));
        }
        return wave;
    };

    // Warmup wave: the pool grows to the requested width here (and
    // only here - parallelMap used to spawn+join per call).
    {
        SessionManager warm(ServeConfig{});
        warm.precompute(makeWave(0), 4);
    }
    const std::uint64_t spawned =
        ThreadPool::instance().threadsSpawned();

    // Steady state: every later rehearsal wave - including the full
    // precompute -> submit -> replay cycle - reuses the warm workers.
    for (std::uint64_t round = 0; round < 3; ++round) {
        SessionManager mgr(ServeConfig{});
        std::vector<SessionConfig> wave = makeWave(100 * (round + 1));
        mgr.precompute(wave, 4);
        for (SessionConfig &s : wave) {
            ASSERT_EQ(mgr.submit(std::move(s)), Admission::kAdmitted);
        }
        mgr.runAll();
        EXPECT_EQ(mgr.outcomes().size(), 6u);
    }
    EXPECT_EQ(ThreadPool::instance().threadsSpawned(), spawned);
}

} // namespace
} // namespace vstream
