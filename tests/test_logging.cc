/**
 * @file
 * Focused tests for the error-reporting layer (sim/logging.hh) and
 * the EventQueue lifetime/ordering invariants it guards.
 *
 * The custom linter (tools/vstream_lint.py, rule logging-discipline)
 * funnels every internal error through vs_assert/vs_panic/vs_fatal,
 * so the exact shape of their output is part of the repo's debugging
 * contract: death tests here pin the message prefix, the formatted
 * payload, and the file:line suffix.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace vstream
{
namespace
{

// ---------------------------------------------------------- logFormat

TEST(LogFormat, ConcatenatesMixedTypes)
{
    EXPECT_EQ(logFormat("x=", 42, " y=", 2.5, " z=", std::string("s")),
              "x=42 y=2.5 z=s");
}

TEST(LogFormat, EmptyPackYieldsEmptyString)
{
    EXPECT_EQ(logFormat(), "");
}

// ------------------------------------------------------- panic/fatal

TEST(LoggingDeathFormat, PanicCarriesPrefixMessageAndLocation)
{
    // "panic: <msg> (<file>:<line>)" on stderr, then abort().
    EXPECT_DEATH(vs_panic("bank ", 3, " out of range"),
                 "panic: bank 3 out of range \\(.*test_logging\\.cc:"
                 "[0-9]+\\)");
}

TEST(LoggingDeathFormat, FatalExitsWithCodeOneNotAbort)
{
    // fatal() is a user-configuration error: clean exit(1), no core.
    EXPECT_EXIT(vs_fatal("refresh rate ", 0, " Hz is impossible"),
                ::testing::ExitedWithCode(1),
                "fatal: refresh rate 0 Hz is impossible "
                "\\(.*test_logging\\.cc:[0-9]+\\)");
}

TEST(LoggingDeathFormat, AssertQuotesConditionAndFormatsArgs)
{
    const int want = 4;
    const int got = 7;
    EXPECT_DEATH(
        vs_assert(want == got, "expected ", want, " but saw ", got),
        "assertion 'want == got' failed: expected 4 but saw 7");
}

TEST(LoggingDeathFormat, AssertWithoutMessageStillNamesCondition)
{
    EXPECT_DEATH(vs_assert(1 + 1 == 3), "assertion '1 \\+ 1 == 3'");
}

// ------------------------------------------------------- warn/inform

TEST(Logging, WarnCountsEvenWhenQuiet)
{
    detail::setQuiet(true);
    const auto before = detail::warnCount();
    vs_warn("suspicious but survivable: ", -1);
    vs_warn("again");
    EXPECT_EQ(detail::warnCount(), before + 2);
    detail::setQuiet(false);
}

TEST(Logging, QuietModeSuppressesWarnOutput)
{
    detail::setQuiet(true);
    ::testing::internal::CaptureStderr();
    vs_warn("should not appear");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
    detail::setQuiet(false);

    ::testing::internal::CaptureStderr();
    vs_warn("should appear");
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: should appear"), std::string::npos);
}

// ------------------------------------------- EventQueue invariants

TEST(EventQueueInvariants, ScheduleInPastNamesEventAndTicks)
{
    EventQueue q;
    LambdaEvent fired("advance", [] {});
    q.schedule(&fired, 100);
    q.run();
    EXPECT_EQ(q.curTick(), 100u);

    LambdaEvent late("late.event", [] {});
    // The message must identify the event and both ticks, or the
    // report is useless for debugging a mis-scheduled component.
    EXPECT_DEATH(q.schedule(&late, 50),
                 "event 'late.event' scheduled in the past: 50 < 100");
}

TEST(EventQueueInvariants, DestroyWhileScheduledNamesEvent)
{
    EXPECT_DEATH(
        {
            EventQueue q;
            LambdaEvent ev("leaky.vsync", [] {});
            q.schedule(&ev, 10);
            // ev destructs here while still pending: the queue would
            // be left holding a dangling pointer.
        },
        "event 'leaky.vsync' destroyed while scheduled");
}

TEST(EventQueueInvariants, DescheduleThenDestroyIsClean)
{
    EventQueue q;
    {
        LambdaEvent ev("transient", [] {});
        q.schedule(&ev, 10);
        q.deschedule(&ev);
        // Destruction after deschedule must NOT fire the invariant.
    }
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueInvariants, RescheduleOfPendingEventIsAllowed)
{
    EventQueue q;
    Tick seen = 0;
    LambdaEvent ev("moved", [&] { seen = q.curTick(); });
    q.schedule(&ev, 10);
    q.reschedule(&ev, 30);
    q.run();
    EXPECT_EQ(seen, 30u);
    EXPECT_EQ(q.processedCount(), 1u);
}

} // namespace
} // namespace vstream
