/**
 * @file
 * Tests for the recycled surface allocator (core/surface_pool.hh):
 * warmup-only construction, lowest-indexed-free acquisition order
 * (the slot-selection order simulation output depends on),
 * slot-stability of borrowed references across growth, stats
 * accounting, and the discipline panics (double release, foreign
 * release, exhaustion).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/surface_pool.hh"

namespace vstream
{
namespace
{

/** A surface heavy enough to make recycling observable. */
struct TestSurface
{
    std::vector<int> storage;
    int generation = 0;
};

TEST(SurfacePool, ConstructsOnGrowthOnlyThenRecycles)
{
    SurfacePool<TestSurface> pool("test");
    int made = 0;
    const auto make = [&] {
        ++made;
        TestSurface s;
        s.storage.assign(64, made);
        return s;
    };

    TestSurface &a = pool.acquire(make);
    EXPECT_EQ(made, 1);
    a.generation = 1;
    pool.release(a);

    // The free surface is recycled as-is: same slot, same storage,
    // logical state untouched by the pool.
    TestSurface &b = pool.acquire(make);
    EXPECT_EQ(made, 1);
    EXPECT_EQ(&b, &a);
    EXPECT_EQ(b.generation, 1);
    EXPECT_EQ(b.storage.size(), 64u);

    const SurfacePoolStats &st = pool.stats();
    EXPECT_EQ(st.acquires, 2u);
    EXPECT_EQ(st.recycles, 1u);
    EXPECT_EQ(st.constructed, 1u);
    EXPECT_EQ(st.releases, 1u);
    EXPECT_EQ(st.live, 1u);
    EXPECT_EQ(st.peak_live, 1u);
}

TEST(SurfacePool, AcquireReturnsLowestIndexedFreeSurface)
{
    SurfacePool<TestSurface> pool("order");
    TestSurface &s0 = pool.acquire();
    TestSurface &s1 = pool.acquire();
    TestSurface &s2 = pool.acquire();
    ASSERT_EQ(pool.allocated(), 3u);

    // Free slots 0 and 2: the next acquires must hand them back in
    // index order (0 first), not release order or LIFO.
    pool.release(s2);
    pool.release(s0);
    EXPECT_EQ(&pool.acquire(), &s0);
    EXPECT_EQ(&pool.acquire(), &s2);

    // All slots live again: the next acquire grows a fresh slot.
    EXPECT_EQ(&pool.acquire(), &pool.at(3));
    EXPECT_EQ(pool.allocated(), 4u);
    (void)s1;
}

TEST(SurfacePool, BorrowedReferencesSurviveGrowth)
{
    SurfacePool<TestSurface> pool("stable");
    std::vector<TestSurface *> borrowed;
    for (int i = 0; i < 100; ++i) {
        TestSurface &s = pool.acquire();
        s.generation = i;
        borrowed.push_back(&s);
    }
    // Growth to 100 slots must not have moved any earlier surface.
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(borrowed[static_cast<std::size_t>(i)],
                  &pool.at(static_cast<std::size_t>(i)));
        EXPECT_EQ(pool.at(static_cast<std::size_t>(i)).generation, i);
        EXPECT_TRUE(pool.liveAt(static_cast<std::size_t>(i)));
    }
    EXPECT_EQ(pool.stats().peak_live, 100u);
}

TEST(SurfacePool, SteadyStateChurnConstructsNothingNew)
{
    SurfacePool<TestSurface> pool("churn");
    // Warmup: high-water mark of 8 simultaneous borrows.
    std::vector<TestSurface *> live;
    for (int i = 0; i < 8; ++i) {
        live.push_back(&pool.acquire());
    }
    for (TestSurface *s : live) {
        pool.release(*s);
    }
    ASSERT_EQ(pool.stats().constructed, 8u);

    // Steady state: any churn pattern at or below the high-water
    // mark recycles; constructed stays flat.
    for (int round = 0; round < 50; ++round) {
        live.clear();
        for (int i = 0; i < 1 + round % 8; ++i) {
            live.push_back(&pool.acquire());
        }
        for (TestSurface *s : live) {
            pool.release(*s);
        }
    }
    EXPECT_EQ(pool.stats().constructed, 8u);
    EXPECT_EQ(pool.allocated(), 8u);
    EXPECT_EQ(pool.stats().live, 0u);
}

using SurfacePoolDeath = ::testing::Test;

TEST(SurfacePoolDeath, DoubleReleasePanics)
{
    SurfacePool<TestSurface> pool("dbl");
    TestSurface &s = pool.acquire();
    pool.release(s);
    EXPECT_DEATH(pool.release(s), "double release");
}

TEST(SurfacePoolDeath, ForeignSurfacePanics)
{
    SurfacePool<TestSurface> pool("foreign");
    (void)pool.acquire();
    TestSurface outsider;
    EXPECT_DEATH(pool.release(outsider), "does not own");
}

TEST(SurfacePoolDeath, ExceedingMaxLivePanics)
{
    SurfacePool<TestSurface> pool("bounded", 2);
    (void)pool.acquire();
    (void)pool.acquire();
    EXPECT_DEATH((void)pool.acquire(), "exhausted");
}

} // namespace
} // namespace vstream
