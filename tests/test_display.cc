/**
 * @file
 * Tests for the display side: display cache, MACH buffer, frame
 * reconstruction, and the display controller's scan-out of all three
 * frame-buffer layouts (including pixel-exact round trips).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/mach_array.hh"
#include "core/writeback_stage.hh"
#include "display/display_cache.hh"
#include "display/display_controller.hh"
#include "display/frame_reconstructor.hh"
#include "display/mach_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace vstream
{
namespace
{

Macroblock
pure(std::uint8_t v)
{
    Macroblock m(4);
    m.fill(Pixel{v, v, v});
    return m;
}

Macroblock
randomMab(Random &rng)
{
    Macroblock m(4);
    for (auto &b : m.bytes()) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    return m;
}

// ---------------------------------------------------------------------
// DisplayCache
// ---------------------------------------------------------------------

CacheConfig
dcCacheConfig()
{
    CacheConfig cfg;
    cfg.size_bytes = 1024;
    cfg.line_bytes = 64;
    cfg.assoc = 1;
    cfg.write_allocate = false;
    cfg.write_back = false;
    return cfg;
}

TEST(DisplayCache, SecondFetchOfSameLineHits)
{
    DisplayCache dc(dcCacheConfig());
    EXPECT_EQ(dc.access(0, 48).size(), 1u);
    EXPECT_TRUE(dc.access(0, 48).empty());
    EXPECT_EQ(dc.hitCount(), 1u);
}

TEST(DisplayCache, LineSpanDetectsFragmentation)
{
    DisplayCache dc(dcCacheConfig());
    // 48 B at offset 0 fits one line; at offset 32 it straddles two
    // (the paper's >45% fragmented pointer fetches).
    EXPECT_EQ(dc.lineSpan(0, 48), 1u);
    EXPECT_EQ(dc.lineSpan(32, 48), 2u);
    EXPECT_EQ(dc.lineSpan(48, 48), 2u);
    EXPECT_EQ(dc.lineSpan(16, 48), 1u);
}

TEST(DisplayCache, PartialHitOnStraddle)
{
    DisplayCache dc(dcCacheConfig());
    dc.access(0, 64); // line 0 cached
    const auto fills = dc.access(32, 48); // needs lines 0 and 1
    EXPECT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills[0], 64u);
}

// ---------------------------------------------------------------------
// MachBuffer
// ---------------------------------------------------------------------

TEST(MachBuffer, InsertLookup)
{
    MachBuffer mb(16, 4);
    const std::vector<std::uint8_t> block(48, 0x77);
    EXPECT_EQ(mb.lookup(0xabc), nullptr);
    mb.insert(0xabc, block);
    const auto *found = mb.lookup(0xabc);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, block);
    EXPECT_EQ(mb.hitCount(), 1u);
    EXPECT_EQ(mb.missCount(), 1u);
}

TEST(MachBuffer, ReinsertRefreshesInPlace)
{
    MachBuffer mb(16, 4);
    mb.insert(0x1, std::vector<std::uint8_t>(48, 1));
    mb.insert(0x1, std::vector<std::uint8_t>(48, 2));
    EXPECT_EQ((*mb.lookup(0x1))[0], 2);
    EXPECT_EQ(mb.insertCount(), 1u); // refresh, not new insert
}

TEST(MachBuffer, LruEvictionInSet)
{
    MachBuffer mb(8, 4); // 2 sets, 4 ways
    // Five digests in set 0 (even digests).
    for (std::uint32_t i = 0; i < 5; ++i) {
        mb.insert(i * 2, std::vector<std::uint8_t>(48,
                  static_cast<std::uint8_t>(i)));
    }
    EXPECT_EQ(mb.lookup(0), nullptr);   // evicted
    EXPECT_NE(mb.lookup(8), nullptr);
}

// ---------------------------------------------------------------------
// FrameReconstructor
// ---------------------------------------------------------------------

TEST(FrameReconstructor, RawModePassthrough)
{
    Random rng(9);
    const Macroblock m = randomMab(rng);
    MabRecord rec;
    rec.base = m.base();
    const Macroblock out =
        FrameReconstructor::rebuildMab(m.bytes(), rec, false);
    EXPECT_EQ(out, m);
}

TEST(FrameReconstructor, GabModeAddsBaseBack)
{
    Random rng(10);
    const Macroblock m = randomMab(rng);
    MabRecord rec;
    rec.base = m.base();
    const Macroblock out = FrameReconstructor::rebuildMab(
        m.gradient().bytes(), rec, true);
    EXPECT_EQ(out, m);
}

TEST(FrameReconstructor, GabSharedAcrossBases)
{
    // One stored gab serves two mabs with different bases.
    Random rng(11);
    const Macroblock m = randomMab(rng);
    const Macroblock shifted = m.shifted(50, 60, 70);
    const auto gab_bytes = m.gradient().bytes();

    MabRecord rec_a;
    rec_a.base = m.base();
    MabRecord rec_b;
    rec_b.base = shifted.base();
    EXPECT_EQ(FrameReconstructor::rebuildMab(gab_bytes, rec_a, true), m);
    EXPECT_EQ(FrameReconstructor::rebuildMab(gab_bytes, rec_b, true),
              shifted);
}

TEST(FrameReconstructor, ChecksumMatchesFrameChecksum)
{
    Random rng(12);
    std::vector<Macroblock> mabs;
    Frame f(0, FrameType::kI, 4, 1, 4);
    for (std::uint32_t i = 0; i < 4; ++i) {
        f.mab(i) = randomMab(rng);
        mabs.push_back(f.mab(i));
    }
    EXPECT_EQ(FrameReconstructor::checksum(mabs), f.contentChecksum());
}

TEST(FrameReconstructorDeath, NonSquareBlockPanics)
{
    MabRecord rec;
    EXPECT_DEATH(FrameReconstructor::rebuildMab(
                     std::vector<std::uint8_t>(47), rec, false),
                 "square pixel block");
}

// ---------------------------------------------------------------------
// DisplayController scan-out
// ---------------------------------------------------------------------

struct DisplayRig
{
    EventQueue queue;
    MemorySystem mem;
    FrameBufferManager fbm;
    DisplayConfig dcfg;

    explicit DisplayRig(std::uint32_t mabs, bool dcache = true,
                        bool mbuffer = true)
        : mem("mem", &queue, DramConfig{}), fbm(mem, mabs, 48, 4096)
    {
        dcfg.use_display_cache = dcache;
        dcfg.use_mach_buffer = mbuffer;
    }
};

Frame
makeFrame(const std::vector<Macroblock> &mabs, std::uint64_t idx)
{
    Frame f(idx, FrameType::kI,
            static_cast<std::uint32_t>(mabs.size()), 1, 4);
    for (std::uint32_t i = 0; i < mabs.size(); ++i) {
        f.mab(i) = mabs[i];
    }
    return f;
}

TEST(DisplayController, LinearScanReadsWholeFrameOnce)
{
    DisplayRig rig(8, false, false);
    DisplayController dc("dc", &rig.queue, rig.mem, rig.fbm, rig.dcfg);

    LinearWriteback wb(rig.mem, rig.fbm);
    Random rng(13);
    std::vector<Macroblock> mabs;
    for (int i = 0; i < 8; ++i) {
        mabs.push_back(randomMab(rng));
    }
    const Frame f = makeFrame(mabs, 0);
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 8; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);

    const ScanStats s = dc.scanOut(layout, 0);
    EXPECT_TRUE(s.verified);
    // 8 * 48 = 384 B = 6 lines of 64 B.
    EXPECT_EQ(s.dram_requests, 6u);
    EXPECT_EQ(s.bytes_read, 384u);
    EXPECT_EQ(s.meta_bytes, 0u);
    EXPECT_EQ(dc.totals().frames_shown, 1u);
}

/** Full VD->memory->DC round trip under the MACH layouts must be
 * pixel-exact (the repo's core lossless-ness property). */
class LayoutRoundTrip
    : public ::testing::TestWithParam<std::tuple<bool, LayoutKind>>
{
};

TEST_P(LayoutRoundTrip, LosslessAndCheaperWithMatches)
{
    const bool gradient = std::get<0>(GetParam());
    const LayoutKind kind = std::get<1>(GetParam());

    DisplayRig rig(12, true, kind == LayoutKind::kPointerDigest);
    DisplayController dc("dc", &rig.queue, rig.mem, rig.fbm, rig.dcfg);

    MachConfig mcfg;
    mcfg.use_gradient = gradient;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, kind);

    // Frame 0: repeated and shifted content.
    Random rng(14);
    const Macroblock u1 = randomMab(rng);
    const Macroblock u2 = randomMab(rng);
    std::vector<Macroblock> mabs = {u1,
                                    u2,
                                    u1,
                                    pure(9),
                                    u1.shifted(3, 3, 3),
                                    pure(9),
                                    u2,
                                    pure(200),
                                    u2.shifted(1, 0, 0),
                                    pure(9),
                                    u1,
                                    pure(200)};
    const Frame f0 = makeFrame(mabs, 0);
    BufferSlot &s0 = rig.fbm.acquire(0);
    FrameLayout l0;
    wb.beginFrame(f0, s0, 0, l0);
    for (std::uint32_t i = 0; i < f0.mabCount(); ++i) {
        wb.writeMab(f0.mab(i), i, 0);
    }
    wb.finishFrame(0);
    const ScanStats scan0 = dc.scanOut(l0, 0);
    EXPECT_TRUE(scan0.verified);

    // Frame 1 repeats frame 0 entirely: inter matches everywhere.
    const Frame f1 = makeFrame(mabs, 1);
    BufferSlot &s1 = rig.fbm.acquire(1);
    FrameLayout l1;
    wb.beginFrame(f1, s1, 1000, l1);
    for (std::uint32_t i = 0; i < f1.mabCount(); ++i) {
        wb.writeMab(f1.mab(i), i, 1000);
    }
    wb.finishFrame(1000);
    const ScanStats scan1 = dc.scanOut(l1, 1000);
    EXPECT_TRUE(scan1.verified);
    EXPECT_GT(wb.totals().inter_matches, 0u);

    if (kind == LayoutKind::kPointerDigest) {
        // Digest records resolved by the MACH buffer without DRAM.
        EXPECT_GT(scan1.digest_records, 0u);
        EXPECT_GT(scan1.mach_buffer_hits, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LayoutRoundTrip,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(LayoutKind::kPointer,
                                         LayoutKind::kPointerDigest)));

TEST(DisplayController, DisplayCacheCutsRepeatFetches)
{
    // Same content scanned with and without the display cache: the
    // cached run must issue fewer DRAM requests (Fig. 10e).
    auto run = [](bool use_cache) {
        DisplayRig rig(16, use_cache, false);
        DisplayController dc("dc", &rig.queue, rig.mem, rig.fbm,
                             rig.dcfg);
        MachConfig mcfg;
        MachArray machs(mcfg);
        MachWriteback wb(rig.mem, rig.fbm, machs,
                         LayoutKind::kPointer);
        std::vector<Macroblock> mabs;
        for (int i = 0; i < 16; ++i) {
            mabs.push_back(pure(static_cast<std::uint8_t>(i % 2)));
        }
        const Frame f = makeFrame(mabs, 0);
        BufferSlot &slot = rig.fbm.acquire(0);
        FrameLayout layout;
        wb.beginFrame(f, slot, 0, layout);
        for (std::uint32_t i = 0; i < 16; ++i) {
            wb.writeMab(f.mab(i), i, 0);
        }
        wb.finishFrame(0);
        return dc.scanOut(layout, 0).dram_requests;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(DisplayController, ReRenderCountsAndReads)
{
    DisplayRig rig(4, false, false);
    DisplayController dc("dc", &rig.queue, rig.mem, rig.fbm, rig.dcfg);
    LinearWriteback wb(rig.mem, rig.fbm);
    const Frame f = makeFrame({pure(1), pure(2), pure(3), pure(4)}, 0);
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 4; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);

    dc.scanOut(layout, 0);
    dc.scanOut(layout, 1000, /*re_render=*/true);
    EXPECT_EQ(dc.totals().frames_shown, 2u);
    EXPECT_EQ(dc.totals().re_renders, 1u);
}

TEST(DisplayController, FragmentationCounted)
{
    // Blocks packed at 48 B offsets: every 4th block is aligned, the
    // rest straddle 64 B lines.
    DisplayRig rig(8, true, false);
    DisplayController dc("dc", &rig.queue, rig.mem, rig.fbm, rig.dcfg);
    MachConfig mcfg;
    MachArray machs(mcfg);
    MachWriteback wb(rig.mem, rig.fbm, machs, LayoutKind::kPointer);
    Random rng(15);
    std::vector<Macroblock> mabs;
    for (int i = 0; i < 8; ++i) {
        mabs.push_back(randomMab(rng)); // all unique -> packed
    }
    const Frame f = makeFrame(mabs, 0);
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    wb.beginFrame(f, slot, 0, layout);
    for (std::uint32_t i = 0; i < 8; ++i) {
        wb.writeMab(f.mab(i), i, 0);
    }
    wb.finishFrame(0);
    const ScanStats s = dc.scanOut(layout, 0);
    // Offsets 0,48,96,144,192,240,288,336 -> straddles at 48,96,240,
    // 288 (paper: >45% of pointer fetches fragment).
    EXPECT_GE(s.fragmented_fetches, 3u);
    EXPECT_EQ(s.pointer_records, 8u);
}

TEST(DisplayController, FramePeriodFromRefreshRate)
{
    DisplayRig rig(4);
    DisplayController dc("dc", &rig.queue, rig.mem, rig.fbm, rig.dcfg);
    EXPECT_EQ(dc.framePeriod(), sim_clock::s / 60);
}

} // namespace
} // namespace vstream
