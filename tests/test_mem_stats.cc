/**
 * @file
 * Tests for the memory system's statistics output and the energy
 * ledger's dump format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

namespace vstream
{
namespace
{

TEST(MemStats, DumpListsRequesters)
{
    EventQueue q;
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    MemorySystem mem("mem", &q, cfg);
    mem.read(0, 64, Requester::kVideoDecoder, 0);
    mem.write(4096, 64, Requester::kDisplayController, 0);

    std::ostringstream os;
    mem.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("mem.requests"), std::string::npos);
    EXPECT_NE(out.find("dram.vd.activations"), std::string::npos);
    EXPECT_NE(out.find("dram.dc.bytesWritten"), std::string::npos);
    EXPECT_NE(out.find("dram.net."), std::string::npos);
    EXPECT_NE(out.find("actPreEnergyJ"), std::string::npos);
}

TEST(MemStats, ResetStatsClearsLedger)
{
    EventQueue q;
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    MemorySystem mem("mem", &q, cfg);
    mem.read(0, 64, Requester::kVideoDecoder, 0);
    EXPECT_GT(mem.energy().totalCounts().read_bursts, 0u);
    mem.resetStats();
    EXPECT_EQ(mem.energy().totalCounts().read_bursts, 0u);
    EXPECT_EQ(mem.requestCount(), 0u);
    // Allocations survive a stats reset.
    const Addr a = mem.allocate(128, "x");
    EXPECT_EQ(a, 0u);
}

TEST(MemStats, ActivityCountsAccumulate)
{
    DramActivityCounts a;
    a.activations = 3;
    a.bytes_read = 96;
    DramActivityCounts b;
    b.activations = 2;
    b.row_hits = 5;
    a += b;
    EXPECT_EQ(a.activations, 5u);
    EXPECT_EQ(a.row_hits, 5u);
    EXPECT_EQ(a.bytes_read, 96u);
}

TEST(MemStats, RequesterNames)
{
    EXPECT_EQ(requesterName(Requester::kVideoDecoder), "vd");
    EXPECT_EQ(requesterName(Requester::kDisplayController), "dc");
    EXPECT_EQ(requesterName(Requester::kStreamBuffer), "net");
    EXPECT_EQ(requesterName(Requester::kOther), "other");
}

TEST(MemStats, PeakAllocationTracksHighWater)
{
    EventQueue q;
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    MemorySystem mem("mem", &q, cfg);
    mem.allocate(1024, "a");
    mem.allocate(2048, "b");
    EXPECT_EQ(mem.peakAllocatedBytes(), 3072u);
    EXPECT_EQ(mem.allocatedBytes(), 3072u);
}

} // namespace
} // namespace vstream
