/**
 * @file
 * Tests for the frame-buffer layout bookkeeping (Fig. 9c).
 */

#include <gtest/gtest.h>

#include "core/framebuffer_layout.hh"

namespace vstream
{
namespace
{

TEST(LayoutKind, Names)
{
    EXPECT_EQ(layoutKindName(LayoutKind::kLinear), "linear");
    EXPECT_EQ(layoutKindName(LayoutKind::kPointer), "pointer");
    EXPECT_EQ(layoutKindName(LayoutKind::kPointerDigest),
              "pointer+digest");
}

TEST(FrameLayout, ConstructionDefaults)
{
    FrameLayout l(7, LayoutKind::kPointerDigest, 10, 48, true);
    EXPECT_EQ(l.frameIndex(), 7u);
    EXPECT_EQ(l.kind(), LayoutKind::kPointerDigest);
    EXPECT_EQ(l.mabCount(), 10u);
    EXPECT_EQ(l.mabBytes(), 48u);
    EXPECT_TRUE(l.gradientMode());
    EXPECT_EQ(l.totalBytes(), 0u);
    EXPECT_TRUE(l.machDump().empty());
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(l.record(i).storage, MabStorage::kUnique);
    }
}

TEST(FrameLayout, CountStorage)
{
    FrameLayout l(0, LayoutKind::kPointer, 6, 48, false);
    l.record(0).storage = MabStorage::kUnique;
    l.record(1).storage = MabStorage::kIntraPointer;
    l.record(2).storage = MabStorage::kIntraPointer;
    l.record(3).storage = MabStorage::kInterPointer;
    l.record(4).storage = MabStorage::kInterDigest;
    l.record(5).storage = MabStorage::kInterDigest;
    EXPECT_EQ(l.countStorage(MabStorage::kUnique), 1u);
    EXPECT_EQ(l.countStorage(MabStorage::kIntraPointer), 2u);
    EXPECT_EQ(l.countStorage(MabStorage::kInterPointer), 1u);
    EXPECT_EQ(l.countStorage(MabStorage::kInterDigest), 2u);
}

TEST(FrameLayout, ByteAccounting)
{
    FrameLayout l(0, LayoutKind::kPointer, 4, 48, false);
    l.setDataBytes(96);
    l.setMetaBytes(16);
    EXPECT_EQ(l.totalBytes(), 112u);
}

TEST(FrameLayout, MachDumpRoundTrip)
{
    FrameLayout l(0, LayoutKind::kPointerDigest, 2, 48, false);
    std::vector<std::pair<std::uint32_t, Addr>> dump = {{0xaa, 100},
                                                        {0xbb, 200}};
    l.setMachDump(dump);
    l.setMachDumpBytes(16);
    l.setMachDumpBase(4096);
    ASSERT_EQ(l.machDump().size(), 2u);
    EXPECT_EQ(l.machDump()[1].first, 0xbbu);
    EXPECT_EQ(l.machDump()[1].second, 200u);
    EXPECT_EQ(l.machDumpBytes(), 16u);
    EXPECT_EQ(l.machDumpBase(), 4096u);
}

TEST(FrameLayout, BasesAndChecksums)
{
    FrameLayout l(0, LayoutKind::kLinear, 1, 48, false);
    l.setMetaBase(10);
    l.setDataBase(20);
    l.setSourceChecksum(0x1234);
    EXPECT_EQ(l.metaBase(), 10u);
    EXPECT_EQ(l.dataBase(), 20u);
    EXPECT_EQ(l.sourceChecksum(), 0x1234u);
}

TEST(FrameLayout, RecordOutOfRangeThrows)
{
    FrameLayout l(0, LayoutKind::kLinear, 2, 48, false);
    EXPECT_THROW(l.record(2), std::out_of_range);
}

} // namespace
} // namespace vstream
