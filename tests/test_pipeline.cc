/**
 * @file
 * End-to-end pipeline integration and property tests: the paper's
 * headline behaviours (drop elimination, energy ordering, sleep
 * residency, buffer counts) plus internal consistency of the energy
 * and time ledgers.
 */

#include <gtest/gtest.h>

#include "core/video_pipeline.hh"
#include "video/workloads.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile(std::uint32_t frames = 40)
{
    VideoProfile p;
    p.key = "T";
    p.width = 96;
    p.height = 48;
    p.frame_count = frames;
    p.seed = 4242;
    return p;
}

PipelineResult
run(const VideoProfile &p, Scheme s, std::uint32_t batch = 16)
{
    return simulateScheme(p, SchemeConfig::make(s, batch));
}

TEST(SchemeConfig, CanonicalSettings)
{
    const auto l = SchemeConfig::make(Scheme::kBaseline);
    EXPECT_EQ(l.batch, 1u);
    EXPECT_EQ(l.freq, VdFrequency::kLow);
    EXPECT_FALSE(l.mach);

    const auto r = SchemeConfig::make(Scheme::kRacing);
    EXPECT_EQ(r.batch, 1u);
    EXPECT_EQ(r.freq, VdFrequency::kHigh);

    const auto g = SchemeConfig::make(Scheme::kGab, 8);
    EXPECT_EQ(g.batch, 8u);
    EXPECT_TRUE(g.mach);
    EXPECT_TRUE(g.gradient);
    EXPECT_EQ(g.layout, LayoutKind::kPointerDigest);
    EXPECT_TRUE(g.display_cache);
    EXPECT_TRUE(g.mach_buffer);

    const auto m = SchemeConfig::make(Scheme::kMab);
    EXPECT_TRUE(m.mach);
    EXPECT_FALSE(m.gradient);

    EXPECT_EQ(schemeKey(Scheme::kRaceToSleep), "S");
    EXPECT_EQ(schemeName(Scheme::kBatching), "Batching");
}

TEST(PipelineConfig, FinalizeDerivesRowTimeout)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.finalize();
    // The timeout sits below the low-frequency mab interval.
    const double low_mab_s =
        cfg.profile.mean_decode_frac / cfg.profile.fps /
        cfg.profile.mabsPerFrame();
    EXPECT_NEAR(ticksToSeconds(cfg.dram.row_open_timeout),
                0.75 * low_mab_s, 1e-9);
    EXPECT_GT(cfg.trafficEnergyScale(), 1.0);
}

TEST(PipelineConfigDeath, MachNeedsPointerLayout)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme.mach = true;
    cfg.scheme.layout = LayoutKind::kLinear;
    EXPECT_DEATH(cfg.finalize(), "pointer-based layout");
}

TEST(PipelineConfigDeath, ZeroBatchRejected)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme.batch = 0;
    EXPECT_DEATH(cfg.validate(), "batch size must be >= 1");
}

TEST(PipelineConfigDeath, MachBufferNeedsPointerDigestLayout)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme.mach = true;
    cfg.scheme.mach_buffer = true;
    cfg.scheme.layout = LayoutKind::kPointer;
    EXPECT_DEATH(cfg.validate(), "pointer\\+digest layout");
}

TEST(PipelineConfigDeath, ZeroPrerollRejected)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.preroll_frames = 0;
    EXPECT_DEATH(cfg.validate(), "pre-rolled frame");
}

TEST(Pipeline, BatchingEliminatesDrops)
{
    // Give the baseline a tail heavy enough to drop frames.
    VideoProfile p = tinyProfile(60);
    p.mean_decode_frac = 0.80;
    p.complexity_sigma = 0.25;

    const auto base = run(p, Scheme::kBaseline);
    const auto batched = run(p, Scheme::kBatching);
    EXPECT_GT(base.drops, 0u);
    EXPECT_EQ(batched.drops, 0u);
}

TEST(Pipeline, RaceToSleepEliminatesDrops)
{
    VideoProfile p = tinyProfile(60);
    p.mean_decode_frac = 0.85;
    p.complexity_sigma = 0.25;
    EXPECT_EQ(run(p, Scheme::kRaceToSleep).drops, 0u);
    EXPECT_EQ(run(p, Scheme::kGab).drops, 0u);
}

TEST(Pipeline, EnergyBreakdownSumsToTotal)
{
    const auto r = run(tinyProfile(), Scheme::kGab);
    const auto &e = r.energy;
    const double sum = e.dc + e.mem_background + e.vd_processing +
                       e.sleep + e.short_slack + e.mem_burst +
                       e.mem_act_pre + e.transition + e.mach_overhead;
    EXPECT_NEAR(e.total(), sum, 1e-12);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Pipeline, SchemeEnergyOrdering)
{
    // The paper's headline ordering: G < M < S < L, and R > L.
    const VideoProfile p = scaledWorkload("V8", 60, 128, 64);
    const double l = run(p, Scheme::kBaseline).totalEnergy();
    const double r = run(p, Scheme::kRacing).totalEnergy();
    const double s = run(p, Scheme::kRaceToSleep).totalEnergy();
    const double m = run(p, Scheme::kMab).totalEnergy();
    const double g = run(p, Scheme::kGab).totalEnergy();

    EXPECT_LT(g, m);
    EXPECT_LT(m, s);
    EXPECT_LT(s, l);
    EXPECT_GT(r, l); // racing alone loses
}

TEST(Pipeline, BatchingRaisesDeepSleepResidency)
{
    const VideoProfile p = tinyProfile(60);
    const auto base = run(p, Scheme::kBaseline);
    const auto rts = run(p, Scheme::kRaceToSleep);
    EXPECT_GT(rts.s3Residency(), 2.0 * base.s3Residency());
    EXPECT_GT(rts.s3Residency(), 0.3);
}

TEST(Pipeline, BatchingCutsTransitionEnergy)
{
    const VideoProfile p = tinyProfile(60);
    const auto base = run(p, Scheme::kBaseline);
    const auto batched = run(p, Scheme::kBatching);
    EXPECT_LT(batched.energy.transition,
              0.5 * base.energy.transition);
    EXPECT_LT(batched.sleep_events, base.sleep_events);
}

TEST(Pipeline, RacingSpeedsDecodingUp)
{
    const VideoProfile p = tinyProfile(40);
    const auto low = run(p, Scheme::kBaseline);
    const auto high = run(p, Scheme::kRacing);
    EXPECT_LT(high.vd_time.execution, low.vd_time.execution);
    EXPECT_GT(high.vd_time.execution,
              Tick(0.4 * low.vd_time.execution));
    // Higher P-state power though.
    EXPECT_GT(high.energy.vd_processing, low.energy.vd_processing);
}

TEST(Pipeline, RacingReducesActPreEnergy)
{
    const VideoProfile p = tinyProfile(60);
    const auto low = run(p, Scheme::kBaseline);
    const auto high = run(p, Scheme::kRacing);
    EXPECT_LT(high.energy.mem_act_pre, low.energy.mem_act_pre);
}

TEST(Pipeline, GabSavesMoreWritebackThanMab)
{
    const VideoProfile p = scaledWorkload("V8", 48, 128, 64);
    const auto m = run(p, Scheme::kMab);
    const auto g = run(p, Scheme::kGab);
    EXPECT_GT(g.writeback.savings(48), m.writeback.savings(48));
    EXPECT_GT(m.writeback.savings(48), 0.0);
    EXPECT_GT(g.mach.hits(), m.mach.hits());
}

TEST(Pipeline, MachSchemesCutDisplayTraffic)
{
    const VideoProfile p = scaledWorkload("V8", 48, 128, 64);
    const auto s = run(p, Scheme::kRaceToSleep);
    const auto g = run(p, Scheme::kGab);
    EXPECT_LT(g.display.dram_requests, s.display.dram_requests);
    EXPECT_GT(g.display.digest_records, 0u);
    EXPECT_GT(g.mach_buffer_hits, 0u);
    EXPECT_GT(g.display_cache_hits, 0u);
}

TEST(Pipeline, BufferCountsFollowScheme)
{
    const VideoProfile p = tinyProfile(60);
    const auto base = run(p, Scheme::kBaseline);
    const auto rts = run(p, Scheme::kRaceToSleep, 16);
    const auto gab = run(p, Scheme::kGab, 16);
    // Triple buffering in the baseline.
    EXPECT_LE(base.peak_buffers, 3u);
    // Batching needs roughly batch+2 buffers...
    EXPECT_GT(rts.peak_buffers, 8u);
    // ...plus the MACH reference window.
    EXPECT_GT(gab.peak_buffers, rts.peak_buffers);
}

TEST(Pipeline, SmallerBatchesNeedFewerBuffers)
{
    const VideoProfile p = tinyProfile(60);
    const auto b4 = run(p, Scheme::kRaceToSleep, 4);
    const auto b16 = run(p, Scheme::kRaceToSleep, 16);
    EXPECT_LT(b4.peak_buffers, b16.peak_buffers);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const VideoProfile p = tinyProfile(30);
    const auto a = run(p, Scheme::kGab);
    const auto b = run(p, Scheme::kGab);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.dram_total.activations, b.dram_total.activations);
    EXPECT_EQ(a.writeback.totalBytes(), b.writeback.totalBytes());
}

TEST(Pipeline, DisplayVerifiedLossless)
{
    // No collisions expected at this tiny scale; every displayed
    // frame must be byte-identical to the decoded one.
    for (Scheme s : {Scheme::kBaseline, Scheme::kRaceToSleep,
                     Scheme::kMab, Scheme::kGab}) {
        const auto r = run(tinyProfile(30), s);
        EXPECT_TRUE(r.all_verified ||
                    r.mach.collisions_undetected > 0)
            << schemeKey(s);
    }
}

TEST(Pipeline, FrameRecordsCoverAllFrames)
{
    const auto r = run(tinyProfile(25), Scheme::kBaseline);
    ASSERT_EQ(r.frame_records.size(), 25u);
    for (const auto &rec : r.frame_records) {
        EXPECT_GT(rec.exec, 0u);
        EXPECT_GE(rec.finish, rec.start);
        EXPECT_GT(rec.e_exec, 0.0);
    }
    EXPECT_EQ(r.frames, 25u);
    EXPECT_GT(r.span, 0u);
}

TEST(Pipeline, VdTimeFitsWithinSpan)
{
    const auto r = run(tinyProfile(30), Scheme::kRaceToSleep);
    EXPECT_LE(r.vd_time.total(), r.span + r.span / 10);
    EXPECT_GT(r.vd_time.s3, 0u);
}

TEST(Pipeline, CoMachEliminatesUndetectedCollisions)
{
    // Force collisions by decoding lots of content under GAB; then
    // verify CO-MACH's deep hash removes them (Sec. 6.3).
    VideoProfile p = scaledWorkload("V15", 80, 128, 64);

    SchemeConfig with = SchemeConfig::make(Scheme::kGab);
    with.co_mach = true;
    const auto r = simulateScheme(p, with);
    EXPECT_EQ(r.mach.collisions_undetected, 0u);
    EXPECT_TRUE(r.all_verified);
}

TEST(Pipeline, DccOnTopOfGabShrinksWriteback)
{
    const VideoProfile p = scaledWorkload("V8", 40, 128, 64);
    SchemeConfig plain = SchemeConfig::make(Scheme::kGab);
    SchemeConfig dcc = plain;
    dcc.dcc = true;
    const auto a = simulateScheme(p, plain);
    const auto b = simulateScheme(p, dcc);
    EXPECT_LT(b.writeback.data_bytes, a.writeback.data_bytes);
    EXPECT_GT(b.writeback.dcc_saved_bytes, 0u);
    EXPECT_TRUE(b.all_verified || b.mach.collisions_undetected > 0);
}

TEST(Pipeline, RunTwicePanics)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile(10);
    VideoPipeline pipe(cfg);
    pipe.run();
    EXPECT_DEATH(pipe.run(), "only simulate once");
}

class BatchSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BatchSweep, DrainingKeepsSleepEventsRare)
{
    // With drain-mode batching the decoder wakes per network chunk,
    // not per frame: far fewer sleep transitions than the baseline's
    // one-per-frame regime, for every batch size.
    const VideoProfile p = tinyProfile(64);
    const auto base = run(p, Scheme::kBaseline);
    const auto r = run(p, Scheme::kBatching, GetParam());
    RecordProperty("sleepEvents",
                   static_cast<int>(r.sleep_events));
    // A 2-deep batch with its 4-slot pool still wakes almost per
    // frame pair; from 4-deep on the decoder sleeps per batch.
    if (GetParam() >= 4) {
        EXPECT_LT(r.sleep_events + 4, base.sleep_events);
    } else {
        EXPECT_LE(r.sleep_events, base.sleep_events + 4);
    }
    EXPECT_LT(r.energy.transition, base.energy.transition);
    // Deeper batches eliminate drops outright; even a 2-deep batch
    // must not drop more than the baseline.
    if (GetParam() >= 4) {
        EXPECT_EQ(r.drops, 0u);
    } else {
        EXPECT_LE(r.drops, base.drops);
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep,
                         ::testing::Values(2u, 4u, 8u, 16u));

class SchemeSweep : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(SchemeSweep, LedgersConsistent)
{
    const auto r = run(tinyProfile(30), GetParam());
    // DRAM counters: vd + dc never exceed the total.
    EXPECT_LE(r.dram_vd.activations + r.dram_dc.activations,
              r.dram_total.activations);
    EXPECT_GT(r.dram_total.read_bursts, 0u);
    EXPECT_GT(r.dram_total.write_bursts, 0u);
    // Energy categories non-negative.
    EXPECT_GE(r.energy.sleep, 0.0);
    EXPECT_GE(r.energy.transition, 0.0);
    EXPECT_GE(r.energy.short_slack, 0.0);
    EXPECT_GT(r.energy.dc, 0.0);
    EXPECT_GT(r.energy.mem_burst, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Values(Scheme::kBaseline, Scheme::kBatching,
                      Scheme::kRacing, Scheme::kRaceToSleep,
                      Scheme::kMab, Scheme::kGab));

} // namespace
} // namespace vstream
