/**
 * @file
 * Tests for the row-buffer page policy and the per-frame CSV export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/video_pipeline.hh"
#include "mem/dram_controller.hh"

namespace vstream
{
namespace
{

DramConfig
policyConfig(PagePolicy policy)
{
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    cfg.page_policy = policy;
    cfg.row_open_timeout = 1 * sim_clock::s; // isolate the policy
    return cfg;
}

TEST(PagePolicy, Names)
{
    EXPECT_EQ(pagePolicyName(PagePolicy::kOpenPage), "open-page");
    EXPECT_EQ(pagePolicyName(PagePolicy::kClosedPage), "closed-page");
}

TEST(PagePolicy, OpenPageHitsOnStreaming)
{
    DramController ctrl(policyConfig(PagePolicy::kOpenPage));
    Tick t = 0;
    for (Addr a = 0; a < 2048; a += 64) {
        t = ctrl.access(MemRequest{a, 64, MemOp::kRead,
                                   Requester::kVideoDecoder},
                        t)
                .finish_tick;
    }
    const auto c = ctrl.energy().totalCounts();
    EXPECT_GT(c.row_hits, c.activations * 4);
}

TEST(PagePolicy, ClosedPageActivatesEveryAccess)
{
    DramController ctrl(policyConfig(PagePolicy::kClosedPage));
    Tick t = 0;
    for (Addr a = 0; a < 2048; a += 64) {
        t = ctrl.access(MemRequest{a, 64, MemOp::kRead,
                                   Requester::kVideoDecoder},
                        t)
                .finish_tick;
    }
    const auto c = ctrl.energy().totalCounts();
    EXPECT_EQ(c.row_hits, 0u);
    EXPECT_EQ(c.activations, c.read_bursts);
}

TEST(PagePolicy, ClosedPageAvoidsConflictPrecharge)
{
    // Row conflicts: open-page pays tRP + tRCD on the critical path;
    // closed-page pays only tRCD (the precharge already happened).
    auto conflict_latency = [](PagePolicy policy) {
        DramController ctrl(policyConfig(policy));
        const auto r1 = ctrl.access(
            MemRequest{0, 32, MemOp::kRead, Requester::kVideoDecoder},
            0);
        // Same bank, different row (32 KB stride).
        const Tick issue = r1.finish_tick + 100 * sim_clock::ns;
        const auto r2 =
            ctrl.access(MemRequest{32 * 1024, 32, MemOp::kRead,
                                   Requester::kVideoDecoder},
                        issue);
        return r2.finish_tick - issue;
    };
    EXPECT_LT(conflict_latency(PagePolicy::kClosedPage),
              conflict_latency(PagePolicy::kOpenPage));
}

TEST(PagePolicy, ClosedPageRemovesRacingActPreBenefit)
{
    // Under closed-page, activations equal accesses regardless of
    // the decoder frequency: the Fig. 5 effect disappears, showing
    // the paper's racing benefit presumes an open-page controller.
    auto acts = [](Scheme s) {
        PipelineConfig cfg;
        cfg.profile.key = "PP";
        cfg.profile.width = 96;
        cfg.profile.height = 48;
        cfg.profile.frame_count = 24;
        cfg.profile.seed = 7;
        cfg.scheme = SchemeConfig::make(s);
        cfg.dram.page_policy = PagePolicy::kClosedPage;
        VideoPipeline pipe(std::move(cfg));
        return pipe.run().dram_total.activations;
    };
    const auto low = acts(Scheme::kBaseline);
    const auto high = acts(Scheme::kRacing);
    EXPECT_NEAR(static_cast<double>(high),
                static_cast<double>(low),
                0.02 * static_cast<double>(low));
}

TEST(FrameCsv, ExportsOneRowPerFrame)
{
    std::ostringstream csv;
    PipelineConfig cfg;
    cfg.profile.key = "CSV";
    cfg.profile.width = 64;
    cfg.profile.height = 32;
    cfg.profile.frame_count = 10;
    cfg.profile.seed = 77;
    cfg.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    cfg.frame_csv = &csv;
    VideoPipeline pipe(std::move(cfg));
    pipe.run();

    const std::string out = csv.str();
    // Header plus 10 rows.
    std::size_t lines = 0;
    for (char c : out) {
        if (c == '\n') {
            ++lines;
        }
    }
    EXPECT_EQ(lines, 11u);
    EXPECT_NE(out.find("frame,start_ms"), std::string::npos);
    EXPECT_NE(out.find("dropped"), std::string::npos);
    // Every data row has 13 commas.
    const std::size_t first_row = out.find('\n') + 1;
    const std::size_t row_end = out.find('\n', first_row);
    std::size_t commas = 0;
    for (std::size_t i = first_row; i < row_end; ++i) {
        if (out[i] == ',') {
            ++commas;
        }
    }
    EXPECT_EQ(commas, 13u);
}

} // namespace
} // namespace vstream
