/**
 * @file
 * Fault-injection subsystem tests: spec parsing, schedule
 * determinism, graceful degradation across every pipeline layer, and
 * the zero-cost-when-off guarantee.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/video_pipeline.hh"
#include "sim/fault_injector.hh"
#include "video/arrival_model.hh"
#include "video/trace.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile(std::uint32_t frames = 48)
{
    VideoProfile p;
    p.key = "FI";
    p.width = 96;
    p.height = 48;
    p.frame_count = frames;
    p.seed = 1337;
    return p;
}

PipelineConfig
faultyConfig(std::uint32_t frames = 48)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile(frames);
    cfg.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    cfg.arrival.enabled = true;
    cfg.arrival.bandwidth_mbps = 2.0;
    cfg.arrival.jitter_frac = 0.3;
    cfg.arrival.seed = 99;
    cfg.faults.seed = 7;
    return cfg;
}

// ---- rule parsing ----------------------------------------------------

TEST(FaultRule, ParsesFullSpec)
{
    const FaultRule r = parseFaultRule(
        FaultClass::kNetworkStall,
        "p=0.25,from=200ms,until=1.5s,max=3,len=250ms");
    EXPECT_EQ(r.cls, FaultClass::kNetworkStall);
    EXPECT_DOUBLE_EQ(r.probability, 0.25);
    EXPECT_EQ(r.from, 200 * sim_clock::ms);
    EXPECT_EQ(r.until, 1500 * sim_clock::ms);
    EXPECT_EQ(r.max_count, 3u);
    EXPECT_EQ(r.duration, 250 * sim_clock::ms);
}

TEST(FaultRule, AtIsOneShotShorthand)
{
    const FaultRule r =
        parseFaultRule(FaultClass::kDramTimeout, "at=1.2s");
    EXPECT_DOUBLE_EQ(r.probability, 1.0);
    EXPECT_EQ(r.max_count, 1u);
    EXPECT_EQ(r.from, 1200 * sim_clock::ms);
    EXPECT_EQ(r.until, maxTick);
}

TEST(FaultRule, BareNumbersAreMilliseconds)
{
    const FaultRule r = parseFaultRule(FaultClass::kNetworkStall,
                                       "at=250,len=100");
    EXPECT_EQ(r.from, 250 * sim_clock::ms);
    EXPECT_EQ(r.duration, 100 * sim_clock::ms);
}

TEST(FaultRuleDeath, RejectsMalformedSpecs)
{
    EXPECT_DEATH(
        parseFaultRule(FaultClass::kNetworkStall, "p=1.5"),
        "bad probability");
    EXPECT_DEATH(
        parseFaultRule(FaultClass::kNetworkStall, "nonsense"),
        "not key=value");
    EXPECT_DEATH(
        parseFaultRule(FaultClass::kNetworkStall, "zzz=3"),
        "unknown key");
    EXPECT_DEATH(
        parseFaultRule(FaultClass::kNetworkStall,
                       "from=2s,until=1s"),
        "empty fault window");
    EXPECT_DEATH(
        parseFaultRule(FaultClass::kNetworkStall, "at=1parsec"),
        "unknown time unit");
}

TEST(FaultRule, TryParseAcceptsWhatParseAccepts)
{
    FaultRule rule;
    std::string error;
    ASSERT_TRUE(tryParseFaultRule(
        FaultClass::kDramTimeout,
        "p=0.01,from=200ms,until=1.5s,max=3,len=250ms", rule, error))
        << error;
    EXPECT_DOUBLE_EQ(rule.probability, 0.01);
    EXPECT_EQ(rule.from, 200 * sim_clock::ms);
    EXPECT_EQ(rule.until, 1500 * sim_clock::ms);
    EXPECT_EQ(rule.max_count, 3u);
    EXPECT_EQ(rule.duration, 250 * sim_clock::ms);
}

TEST(FaultRule, AtWithExplicitMaxKeepsIt)
{
    // Regression: the one-shot defaulting used to clobber an
    // explicit max= because parsing max never recorded it was seen.
    FaultRule rule;
    std::string error;
    ASSERT_TRUE(tryParseFaultRule(FaultClass::kNetworkStall,
                                  "at=5ms,max=3,len=1ms", rule, error))
        << error;
    EXPECT_EQ(rule.max_count, 3u);
    EXPECT_DOUBLE_EQ(rule.probability, 1.0); // still defaulted
}

TEST(FaultRule, TryParseRejectsHostileSpecs)
{
    // Every spec here used to either crash the process (fine for
    // config files, useless for fuzzing) or worse: slip through the
    // old validation into undefined behaviour at the float-to-Tick
    // cast, or clobber max_count via strtoull's quiet failures.
    const char *hostile[] = {
        "p=nan",     // NaN passed "p < 0 || p > 1"
        "p=inf",
        "at=nan",    // NaN passed "x < 0", then UB at the cast
        "at=inf",
        "from=1e300s",       // finite, but 1e300 * scale > 2^63: UB
        "len=999999999999s", // plausible-looking, still past 2^63
        "max=",      // strtoull: quiet 0
        "max=abc",   // strtoull: quiet 0
        "max=-3",    // strtoull: wraps to 2^64 - 3
        "max=18446744073709551616", // overflow clamps with errno
        "max=3x",    // trailing junk
        "p=0.5,p",   // field with no '='
        "until=",    // empty value
    };
    for (const char *spec : hostile) {
        FaultRule rule;
        std::string error;
        EXPECT_FALSE(tryParseFaultRule(FaultClass::kNetworkStall,
                                       spec, rule, error))
            << "accepted hostile spec: " << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

TEST(FaultRule, TryParseBoundaryTimes)
{
    FaultRule rule;
    std::string error;
    // The largest second count whose tick product stays below 2^63
    // with ps resolution (1e12 ticks/s): 9.2e6 s is in range...
    ASSERT_TRUE(tryParseFaultRule(FaultClass::kNetworkStall,
                                  "at=9000000s,len=1ms", rule, error))
        << error;
    // ...while 1e7 s crosses 2^63 ticks and must be rejected, not
    // wrapped or UB'd.
    EXPECT_FALSE(tryParseFaultRule(FaultClass::kNetworkStall,
                                   "at=10000000s,len=1ms", rule,
                                   error));
}

TEST(FaultConfigDeath, StallRulesNeedDuration)
{
    FaultConfig cfg;
    cfg.rules.push_back(
        parseFaultRule(FaultClass::kNetworkStall, "p=0.5"));
    EXPECT_DEATH(cfg.validate(), "need a duration");
}

// ---- injector determinism --------------------------------------------

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.rules.push_back(
        parseFaultRule(FaultClass::kDramTimeout, "p=0.1"));
    cfg.rules.push_back(
        parseFaultRule(FaultClass::kDigestCollision, "p=0.05"));

    FaultInjector a("a", nullptr, cfg);
    FaultInjector b("b", nullptr, cfg);
    for (Tick t = 0; t < 2000; ++t) {
        ASSERT_EQ(a.shouldInject(FaultClass::kDramTimeout, t),
                  b.shouldInject(FaultClass::kDramTimeout, t));
        ASSERT_EQ(a.shouldInject(FaultClass::kDigestCollision, t),
                  b.shouldInject(FaultClass::kDigestCollision, t));
    }
    EXPECT_EQ(a.injected(FaultClass::kDramTimeout),
              b.injected(FaultClass::kDramTimeout));
    EXPECT_GT(a.injected(FaultClass::kDramTimeout), 0u);
}

TEST(FaultInjector, ClassStreamsAreIndependent)
{
    // Drawing for one class must not perturb another class's
    // schedule: run the dram stream alone, then interleaved with
    // digest draws, and require identical dram decisions.
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.rules.push_back(
        parseFaultRule(FaultClass::kDramTimeout, "p=0.1"));
    cfg.rules.push_back(
        parseFaultRule(FaultClass::kDigestCollision, "p=0.5"));

    FaultInjector alone("alone", nullptr, cfg);
    FaultInjector mixed("mixed", nullptr, cfg);
    std::vector<bool> want, got;
    for (Tick t = 0; t < 1000; ++t) {
        want.push_back(
            alone.shouldInject(FaultClass::kDramTimeout, t));
        mixed.shouldInject(FaultClass::kDigestCollision, t);
        got.push_back(
            mixed.shouldInject(FaultClass::kDramTimeout, t));
    }
    EXPECT_EQ(want, got);
}

TEST(FaultInjector, WindowAndCapRespected)
{
    FaultConfig cfg;
    cfg.rules.push_back(parseFaultRule(
        FaultClass::kDramTimeout, "p=1,from=100,until=200,max=5"));
    FaultInjector inj("inj", nullptr, cfg);

    EXPECT_FALSE(
        inj.shouldInject(FaultClass::kDramTimeout, 0));
    EXPECT_FALSE(inj.shouldInject(FaultClass::kDramTimeout,
                                  99 * sim_clock::ms));
    std::uint64_t fired = 0;
    for (Tick t = 100 * sim_clock::ms; t < 200 * sim_clock::ms;
         t += sim_clock::ms) {
        if (inj.shouldInject(FaultClass::kDramTimeout, t)) {
            ++fired;
        }
    }
    EXPECT_EQ(fired, 5u); // max= cap, not the window, limits it
    EXPECT_FALSE(inj.shouldInject(FaultClass::kDramTimeout,
                                  150 * sim_clock::ms));
    EXPECT_EQ(inj.injected(FaultClass::kDramTimeout), 5u);
}

TEST(FaultInjector, DisabledInjectorIsInert)
{
    FaultInjector inj("inj", nullptr, FaultConfig{});
    EXPECT_FALSE(inj.enabled());
    EXPECT_FALSE(inj.shouldInject(FaultClass::kDramTimeout, 123));
    EXPECT_EQ(inj.injectStall(123), 0u);
    EXPECT_EQ(inj.totals().injected, 0u);
}

// ---- arrival model ---------------------------------------------------

TEST(ArrivalModel, PrerollArrivesAtZeroRestIsMonotonic)
{
    ArrivalConfig cfg;
    cfg.enabled = true;
    cfg.bandwidth_mbps = 10.0;
    cfg.jitter_frac = 0.4;
    cfg.preroll_frames = 8;
    cfg.seed = 5;
    const VideoProfile p = tinyProfile(32);
    ArrivalModel model(p, cfg, nullptr);

    ASSERT_EQ(model.frameCount(), 32u);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(model.arrivalTick(i), 0u);
    }
    Tick prev = 0;
    for (std::uint32_t i = 8; i < 32; ++i) {
        EXPECT_GT(model.arrivalTick(i), prev);
        prev = model.arrivalTick(i);
    }
    EXPECT_EQ(model.framesArrivedBy(0), 8u);
    EXPECT_EQ(model.framesArrivedBy(prev), 32u);
}

TEST(ArrivalModel, InjectedStallDelaysEverythingAfter)
{
    ArrivalConfig cfg;
    cfg.enabled = true;
    cfg.bandwidth_mbps = 10.0;
    cfg.preroll_frames = 4;
    cfg.seed = 5;
    const VideoProfile p = tinyProfile(24);

    ArrivalModel clean(p, cfg, nullptr);

    FaultConfig fcfg;
    fcfg.rules.push_back(parseFaultRule(FaultClass::kNetworkStall,
                                        "at=0ms,len=500ms"));
    FaultInjector inj("inj", nullptr, fcfg);
    ArrivalModel stalled(p, cfg, &inj);

    EXPECT_EQ(stalled.stallTicks(), 500 * sim_clock::ms);
    EXPECT_EQ(inj.injected(FaultClass::kNetworkStall), 1u);
    // Everything from the stalled frame on shifts by the stall.
    EXPECT_EQ(stalled.arrivalTick(23),
              clean.arrivalTick(23) + 500 * sim_clock::ms);
}

// ---- end-to-end degradation ------------------------------------------

TEST(FaultPipeline, UnderrunDegradesGracefully)
{
    PipelineConfig cfg = faultyConfig();
    // The 2 Mbps timeline for this tiny clip ends ~113 ms in, so the
    // stall must start inside that window to hit in-flight frames.
    cfg.faults.rules.push_back(parseFaultRule(
        FaultClass::kNetworkStall, "at=20ms,len=700ms"));
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    // The run completes (no panic) and the damage is accounted:
    // missed vsyncs show the previous frame again.
    EXPECT_GT(r.underruns, 0u);
    EXPECT_GT(r.display.underrun_repeats, 0u);
    EXPECT_GT(r.drops, 0u);
    EXPECT_LE(r.display.underrun_repeats, r.underruns);
    EXPECT_EQ(r.faults.injected, 1u);
}

TEST(FaultPipeline, FaultRunsAreDeterministic)
{
    auto make = [] {
        PipelineConfig cfg = faultyConfig();
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kNetworkStall, "at=20ms,len=400ms"));
        cfg.faults.rules.push_back(parseFaultRule(
            FaultClass::kDramTimeout, "p=0.001"));
        return cfg;
    };
    VideoPipeline p1(make()), p2(make());
    const PipelineResult a = p1.run();
    const PipelineResult b = p2.run();

    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.underruns, b.underruns);
    EXPECT_EQ(a.batch_shrinks, b.batch_shrinks);
    EXPECT_EQ(a.dram_retries, b.dram_retries);
    EXPECT_EQ(a.faults.injected, b.faults.injected);
    EXPECT_EQ(a.faults.recovered, b.faults.recovered);
    EXPECT_EQ(a.faults.abandoned, b.faults.abandoned);
}

TEST(FaultPipeline, DramRetriesAreBoundedAndAccounted)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kRaceToSleep);
    cfg.faults.seed = 11;
    cfg.faults.dram_retry_limit = 2;
    cfg.faults.rules.push_back(
        parseFaultRule(FaultClass::kDramTimeout, "p=0.6"));
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    EXPECT_GT(r.dram_retries, 0u);
    EXPECT_GT(r.dram_abandoned, 0u); // p=.6 with limit 2 must abandon
    EXPECT_EQ(r.faults.recovered + r.faults.abandoned,
              r.faults.injected);
    EXPECT_EQ(r.drops, 0u); // timing damage only, playback survives
}

TEST(FaultPipeline, VerifyOnHitCatchesAllInjectedCollisions)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kGab);
    cfg.mach.verify_on_hit = true;
    cfg.faults.seed = 23;
    cfg.faults.rules.push_back(
        parseFaultRule(FaultClass::kDigestCollision, "p=0.02"));
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    // Every injected collision that produced a wrong-block hit was
    // caught by the byte compare and demoted to a miss...
    EXPECT_GT(r.mach.injected_collisions, 0u);
    EXPECT_EQ(r.mach.false_hits, r.mach.injected_collisions);
    EXPECT_EQ(r.mach.collisions_undetected, 0u);
    // ...so the displayed frames stay bit-exact.
    EXPECT_TRUE(r.all_verified);
}

TEST(FaultPipeline, WithoutVerifyOnHitCollisionsCorrupt)
{
    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kGab);
    cfg.faults.seed = 23;
    cfg.faults.rules.push_back(
        parseFaultRule(FaultClass::kDigestCollision, "p=0.02"));
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    EXPECT_GT(r.mach.collisions_undetected, 0u);
    EXPECT_FALSE(r.all_verified);
    EXPECT_EQ(r.drops, 0u); // corruption degrades, never crashes
}

TEST(FaultPipeline, ZeroCostWhenOff)
{
    // A default config (no rules, no arrival model) must reproduce
    // the pristine pipeline bit-for-bit.
    const PipelineResult base =
        simulateScheme(tinyProfile(),
                       SchemeConfig::make(Scheme::kGab));

    PipelineConfig cfg;
    cfg.profile = tinyProfile();
    cfg.scheme = SchemeConfig::make(Scheme::kGab);
    VideoPipeline pipe(std::move(cfg));
    const PipelineResult r = pipe.run();

    EXPECT_DOUBLE_EQ(r.totalEnergy(), base.totalEnergy());
    EXPECT_EQ(r.drops, base.drops);
    EXPECT_EQ(r.mach.lookups, base.mach.lookups);
    EXPECT_EQ(r.mach.false_hits, 0u);
    EXPECT_EQ(r.underruns, 0u);
    EXPECT_EQ(r.dram_retries, 0u);
    EXPECT_EQ(r.faults.injected, 0u);
}

// ---- trace corruption through loadTrace ------------------------------

TEST(FaultTrace, SkipFramePolicyDropsCorruptRecords)
{
    VideoProfile p = tinyProfile(10);
    std::stringstream buf;
    writeTrace(buf, p);

    FaultConfig cfg;
    cfg.seed = 3;
    // Opportunity clock is the record index: corrupt records 2-5.
    cfg.rules.push_back(parseFaultRule(FaultClass::kTraceCorrupt,
                                       "p=1,from=0ps,until=4ps"));
    // parseTicks: "2ps".."5ps" are literal ticks = record indices.
    cfg.rules.back().from = 2;
    cfg.rules.back().until = 6;
    FaultInjector inj("inj", nullptr, cfg);

    const TraceLoadResult r =
        loadTrace(buf, TracePolicy::kSkipFrame, &inj);
    EXPECT_EQ(r.error, TraceError::kNone);
    EXPECT_EQ(r.frames_expected, 10u);
    EXPECT_EQ(r.frames_skipped, 4u);
    EXPECT_EQ(r.frames.size(), 6u);
    EXPECT_EQ(inj.injected(FaultClass::kTraceCorrupt), 4u);
    EXPECT_EQ(inj.recovered(FaultClass::kTraceCorrupt), 4u);
}

TEST(FaultTrace, FailCleanPolicyRejectsCorruptTrace)
{
    VideoProfile p = tinyProfile(6);
    std::stringstream buf;
    writeTrace(buf, p);

    FaultConfig cfg;
    cfg.seed = 3;
    cfg.rules.push_back(
        parseFaultRule(FaultClass::kTraceCorrupt, "p=1,max=1"));
    FaultInjector inj("inj", nullptr, cfg);

    const TraceLoadResult r =
        loadTrace(buf, TracePolicy::kFailClean, &inj);
    EXPECT_EQ(r.error, TraceError::kCorruptRecord);
    EXPECT_TRUE(r.frames.empty());
}

} // namespace
} // namespace vstream
