/**
 * @file
 * Tests for the configurable address-interleaving orders and the
 * DVFS slack-scaling option.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/video_pipeline.hh"
#include "mem/address_map.hh"

namespace vstream
{
namespace
{

DramConfig
configFor(AddrMapOrder order)
{
    DramConfig cfg;
    cfg.capacity_bytes = 64ULL << 20;
    cfg.map_order = order;
    return cfg;
}

TEST(AddrMapOrder, Names)
{
    EXPECT_EQ(addrMapOrderName(AddrMapOrder::kRoRaBaCoCh),
              "RoRaBaCoCh");
    EXPECT_EQ(addrMapOrderName(AddrMapOrder::kRoRaBaChCo),
              "RoRaBaChCo");
    EXPECT_EQ(addrMapOrderName(AddrMapOrder::kRoRaCoBaCh),
              "RoRaCoBaCh");
}

class MapOrderSweep : public ::testing::TestWithParam<AddrMapOrder>
{
};

TEST_P(MapOrderSweep, RoundTripAllOrders)
{
    const AddressMap map(configFor(GetParam()));
    for (Addr a = 0; a < (2u << 20); a += 4096 + 96) {
        const DramCoord c = map.decompose(a);
        EXPECT_EQ(map.compose(c), a / 32 * 32) << "addr " << a;
    }
}

TEST_P(MapOrderSweep, CoordinatesStayInBounds)
{
    const DramConfig cfg = configFor(GetParam());
    const AddressMap map(cfg);
    for (Addr a = 0; a < (1u << 20); a += 1777) {
        const DramCoord c = map.decompose(a);
        EXPECT_LT(c.channel, cfg.channels);
        EXPECT_LT(c.bank, cfg.banks_per_rank);
        EXPECT_LT(c.rank, cfg.ranks_per_channel);
        EXPECT_LT(c.column, map.columnsPerRow());
    }
}

TEST_P(MapOrderSweep, DistinctAddressesDistinctCoords)
{
    const AddressMap map(configFor(GetParam()));
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                        std::uint64_t, std::uint32_t>>
        seen;
    for (Addr a = 0; a < (1u << 18); a += 32) {
        const DramCoord c = map.decompose(a);
        EXPECT_TRUE(
            seen.emplace(c.channel, c.rank, c.bank, c.row, c.column)
                .second)
            << "aliased at " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, MapOrderSweep,
    ::testing::Values(AddrMapOrder::kRoRaBaCoCh,
                      AddrMapOrder::kRoRaBaChCo,
                      AddrMapOrder::kRoRaCoBaCh));

TEST(AddressMapOrders, ChannelPlacementDiffers)
{
    const AddressMap low_ch(configFor(AddrMapOrder::kRoRaBaCoCh));
    const AddressMap high_ch(configFor(AddrMapOrder::kRoRaBaChCo));

    // Channel-lowest: adjacent bursts alternate channels.
    EXPECT_NE(low_ch.decompose(0).channel,
              low_ch.decompose(32).channel);
    // Channel-above-column: adjacent bursts share a channel.
    EXPECT_EQ(high_ch.decompose(0).channel,
              high_ch.decompose(32).channel);
    EXPECT_EQ(high_ch.decompose(0).column + 1,
              high_ch.decompose(32).column);
}

TEST(AddressMapOrders, BankInterleavedOrderSpreadsBanks)
{
    const AddressMap map(configFor(AddrMapOrder::kRoRaCoBaCh));
    // With bank bits directly above the channel bit, addresses 64 B
    // apart land in different banks.
    EXPECT_NE(map.decompose(0).bank, map.decompose(64).bank);
}

// ---------------------------------------------------------------------
// DVFS slack scaling
// ---------------------------------------------------------------------

VideoProfile
dvfsProfile()
{
    VideoProfile p;
    p.key = "F";
    p.width = 96;
    p.height = 48;
    p.frame_count = 60;
    p.seed = 99;
    p.mean_decode_frac = 0.80;
    p.complexity_sigma = 0.25;
    return p;
}

TEST(DvfsSlack, SitsBetweenTheFixedFrequencies)
{
    const VideoProfile p = dvfsProfile();
    const double low =
        simulateScheme(p, SchemeConfig::make(Scheme::kBaseline))
            .energy.vd_processing;
    const double high =
        simulateScheme(p, SchemeConfig::make(Scheme::kRacing))
            .energy.vd_processing;

    SchemeConfig dvfs = SchemeConfig::make(Scheme::kRacing);
    dvfs.dvfs_slack = true;
    const double mixed =
        simulateScheme(p, dvfs).energy.vd_processing;

    EXPECT_GT(mixed, low * 0.99);
    EXPECT_LT(mixed, high);
}

TEST(DvfsSlack, StillDropsFramesUnlikeRaceToSleep)
{
    const VideoProfile p = dvfsProfile();
    SchemeConfig dvfs = SchemeConfig::make(Scheme::kRacing);
    dvfs.dvfs_slack = true;
    const auto predicted = simulateScheme(p, dvfs);
    const auto rts =
        simulateScheme(p, SchemeConfig::make(Scheme::kRaceToSleep));
    // The paper's argument: prediction-based scaling keeps dropping
    // frames; race-to-sleep does not.
    EXPECT_GT(predicted.drops, 0u);
    EXPECT_EQ(rts.drops, 0u);
}

TEST(DvfsSlack, AggressiveMarginDropsMore)
{
    const VideoProfile p = dvfsProfile();
    SchemeConfig safe = SchemeConfig::make(Scheme::kRacing);
    safe.dvfs_slack = true;
    safe.dvfs_margin = 0.60;
    SchemeConfig aggressive = safe;
    aggressive.dvfs_margin = 1.05;
    const auto a = simulateScheme(p, safe);
    const auto b = simulateScheme(p, aggressive);
    EXPECT_LE(a.drops, b.drops);
    EXPECT_GE(a.energy.vd_processing, b.energy.vd_processing);
}

TEST(PipelineMapping, AllOrdersRunLossless)
{
    for (AddrMapOrder order :
         {AddrMapOrder::kRoRaBaCoCh, AddrMapOrder::kRoRaBaChCo,
          AddrMapOrder::kRoRaCoBaCh}) {
        PipelineConfig cfg;
        cfg.profile = dvfsProfile();
        cfg.profile.frame_count = 20;
        cfg.scheme = SchemeConfig::make(Scheme::kGab);
        cfg.dram.map_order = order;
        VideoPipeline pipe(std::move(cfg));
        const PipelineResult r = pipe.run();
        EXPECT_TRUE(r.all_verified ||
                    r.mach.collisions_undetected > 0)
            << addrMapOrderName(order);
        EXPECT_EQ(r.drops, 0u) << addrMapOrderName(order);
    }
}

} // namespace
} // namespace vstream
