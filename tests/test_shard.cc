/**
 * @file
 * Fleet serving tests: shard bookkeeping, arrival processes, and the
 * placer's headline contract - the merged fleet report is
 * byte-identical at any shard count, any jobs count, and any
 * rebalance cadence, while admission (queue/reject/peaks) behaves
 * exactly like the single-shard SessionManager.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/arrivals.hh"
#include "serve/fleet_report.hh"
#include "serve/placer.hh"
#include "serve/shard.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile(std::uint64_t seed, std::uint32_t width = 96,
            std::uint32_t height = 48)
{
    VideoProfile p;
    p.key = "T";
    p.width = width;
    p.height = height;
    p.frame_count = 48;
    p.seed = seed;
    return p;
}

/** Mix 99 marks a whale: a profile no budget in these tests can
 * hold.  Everything else is a tiny clean session keyed by id. */
SessionConfig
fleetSession(const ArrivalEvent &a)
{
    SessionConfig s;
    const bool whale = a.mix == 99;
    s.pipeline.profile = whale ? tinyProfile(7, 1920, 1080)
                               : tinyProfile(4242 + a.id);
    s.pipeline.scheme = SchemeConfig::make(Scheme::kGab);
    s.stats_group = a.mix % 2 == 0 ? "even" : "odd";
    return s;
}

/** Global budgets sized off one probe session: ~6 concurrent by
 * bandwidth, capped at 6 by max_active, frame buffers plentiful. */
FleetConfig
fleetConfig(std::uint32_t shards, unsigned jobs,
            Tick rebalance = 0)
{
    const SessionConfig probe = fleetSession(ArrivalEvent{});
    FleetConfig cfg;
    cfg.serve.bandwidth_budget_mbps =
        Session::demandMBps(probe.pipeline) * 6.5;
    cfg.serve.framebuffer_budget_bytes =
        Session::framebufferBytes(probe.pipeline) * 100;
    cfg.serve.max_active = 6;
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.rehearse_block = 16; // several blocks per run
    cfg.rebalance_period = rebalance;
    return cfg;
}

/** Arrivals fast enough to overrun the 6-session budget (48 frames
 * at 60 fps is 0.8 s of playback; ~7.5/s service vs 20/s offered),
 * with a 35% mid-stream leave rate. */
std::vector<ArrivalEvent>
pressureArrivals(std::uint64_t count = 72)
{
    PoissonArrivalConfig p;
    p.seed = 0xabc;
    p.rate_per_s = 20.0;
    p.count = count;
    p.leave_probability = 0.35;
    p.min_watch = 100 * sim_clock::ms;
    p.max_watch = 500 * sim_clock::ms;
    p.num_mixes = 2;
    return poissonArrivals(p);
}

/** Everything a finished run exposes, so a Placer (single-use,
 * non-copyable) can be compared against another run's outcome. */
struct FleetRun
{
    std::string report;
    StatsSnapshot snapshot;
    std::uint64_t admitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rebalances = 0;
    std::uint64_t peak_active = 0;
    std::uint64_t peak_waiting = 0;
    std::vector<std::uint64_t> per_shard_absorbed;
};

FleetRun
runFleet(const FleetConfig &cfg,
         const std::vector<ArrivalEvent> &arrivals)
{
    Placer placer(cfg, fleetSession);
    placer.run(arrivals);
    FleetRun r;
    std::ostringstream os;
    // Pin the only nondeterministic field so runs byte-compare.
    writeFleetReport(os, placer, "test_shard", arrivals.size(),
                     /*wall_clock_seconds=*/0.0,
                     /*invariant_failures=*/0);
    r.report = os.str();
    r.snapshot = placer.fleetSnapshot();
    r.admitted = placer.admitted();
    r.queued = placer.queuedTotal();
    r.rejected = placer.rejected();
    r.rebalances = placer.rebalances();
    r.peak_active = placer.peakActive();
    r.peak_waiting = placer.peakWaiting();
    for (const Shard &s : placer.shards()) {
        r.per_shard_absorbed.push_back(s.absorbed());
    }
    return r;
}

// ---------------------------------------------------------------------
// Shard bookkeeping
// ---------------------------------------------------------------------

TEST(Shard, TracksReservationsAndLoad)
{
    Shard s(3);
    EXPECT_EQ(s.id(), 3u);
    s.setSlices(100.0, 1000.0);
    EXPECT_DOUBLE_EQ(s.load(), 0.0);

    s.reserve(30.0, 200);
    EXPECT_EQ(s.active(), 1u);
    EXPECT_DOUBLE_EQ(s.load(), 0.3); // bw ratio dominates

    s.reserve(10.0, 700);
    EXPECT_EQ(s.active(), 2u);
    EXPECT_DOUBLE_EQ(s.load(), 0.9); // fb ratio dominates now

    s.release(30.0, 200);
    s.release(10.0, 700);
    EXPECT_EQ(s.active(), 0u);
    EXPECT_DOUBLE_EQ(s.load(), 0.0);
    EXPECT_EQ(s.fbReservedBytes(), 0u);
}

TEST(Shard, AbsorbFoldsOutcomeIntoSnapshot)
{
    Shard s(0);
    SessionOutcome o;
    o.id = 17;
    o.final_state = HealthState::kEvicted;
    o.breaker_trips = 2;
    o.breaker_state = CircuitBreaker::State::kClosed;
    o.left_early = false;
    o.group = "stall";
    o.start_offset = 10 * sim_clock::ms;
    o.end_tick = 250 * sim_clock::ms;
    o.dwell[static_cast<std::size_t>(HealthState::kHealthy)] =
        200 * sim_clock::ms;
    s.absorb(o);

    SessionOutcome clean;
    clean.end_tick = 800 * sim_clock::ms;
    clean.left_early = true;
    s.absorb(clean);

    const StatsSnapshot &snap = s.snapshot();
    EXPECT_EQ(s.absorbed(), 2u);
    EXPECT_EQ(snap.count("sessions"), 2u);
    EXPECT_EQ(snap.count("state.evicted"), 1u);
    EXPECT_EQ(snap.count("state.healthy"), 1u);
    EXPECT_EQ(snap.count("breaker.trips"), 2u);
    // Tripped but ended closed: the session recovered.
    EXPECT_EQ(snap.count("breaker.recoveredSessions"), 1u);
    EXPECT_EQ(snap.count("leftEarly"), 1u);
    EXPECT_EQ(snap.count("mix.stall.sessions"), 1u);
    EXPECT_EQ(snap.count("mix.stall.evicted"), 1u);
    ASSERT_NE(snap.histogram("spanUs"), nullptr);
    EXPECT_EQ(snap.histogram("spanUs")->count(), 2u);
    EXPECT_EQ(snap.histogram("spanUs")->min(), 240000u);
    EXPECT_EQ(snap.histogram("spanUs")->max(), 800000u);
}

// ---------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------

TEST(Arrivals, PoissonIsDeterministicAndOrdered)
{
    const std::vector<ArrivalEvent> a = pressureArrivals();
    const std::vector<ArrivalEvent> b = pressureArrivals();
    ASSERT_EQ(a.size(), 72u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tick, b[i].tick) << i;
        EXPECT_EQ(a[i].id, i);
        EXPECT_EQ(a[i].leave_after, b[i].leave_after) << i;
        EXPECT_EQ(a[i].mix, i % 2);
        if (i > 0) {
            EXPECT_GE(a[i].tick, a[i - 1].tick) << i;
        }
    }
}

TEST(Arrivals, TraceParsesWellFormedInput)
{
    std::istringstream is("# comment\n"
                          "0 0 0\n"
                          "1500 200000 1  # inline comment\n"
                          "\n"
                          "1500 0 2\n");
    const ArrivalTraceResult r = parseArrivalTrace(is, 10);
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.events.size(), 3u);
    EXPECT_EQ(r.events[0].tick, 0u);
    EXPECT_EQ(r.events[0].id, 10u);
    EXPECT_EQ(r.events[1].tick, 1500 * sim_clock::us);
    EXPECT_EQ(r.events[1].leave_after, 200000 * sim_clock::us);
    EXPECT_EQ(r.events[1].mix, 1u);
    EXPECT_EQ(r.events[2].tick, r.events[1].tick); // ties allowed
    EXPECT_EQ(r.events[2].id, 12u);
}

TEST(Arrivals, TraceParseFailsClosed)
{
    // Short line.
    std::istringstream missing("100 200\n");
    EXPECT_FALSE(parseArrivalTrace(missing).ok());

    // Trailing junk.
    std::istringstream junk("100 200 0 extra\n");
    const ArrivalTraceResult j = parseArrivalTrace(junk);
    EXPECT_FALSE(j.ok());
    EXPECT_NE(j.error.find("line 1"), std::string::npos) << j.error;

    // Out-of-order arrivals.
    std::istringstream order("200 0 0\n100 0 0\n");
    const ArrivalTraceResult o = parseArrivalTrace(order);
    EXPECT_FALSE(o.ok());
    EXPECT_NE(o.error.find("line 2"), std::string::npos) << o.error;

    // Tick overflow.
    std::istringstream big("18446744073709551615 0 0\n");
    EXPECT_FALSE(parseArrivalTrace(big).ok());
}

// ---------------------------------------------------------------------
// Placer: the invariance contract
// ---------------------------------------------------------------------

TEST(Placer, ReportIsShardCountInvariant)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals();
    const FleetRun one = runFleet(fleetConfig(1, 1), arrivals);
    const FleetRun three = runFleet(fleetConfig(3, 1), arrivals);
    const FleetRun seven = runFleet(fleetConfig(7, 1), arrivals);

    // Byte-identical JSON and equal merged snapshots.
    EXPECT_EQ(one.report, three.report);
    EXPECT_EQ(one.report, seven.report);
    EXPECT_EQ(one.snapshot, three.snapshot);
    EXPECT_EQ(one.snapshot, seven.snapshot);

    // Admission is global: identical regardless of partitioning.
    EXPECT_EQ(one.admitted, seven.admitted);
    EXPECT_EQ(one.queued, seven.queued);
    EXPECT_EQ(one.rejected, seven.rejected);
    EXPECT_EQ(one.peak_active, seven.peak_active);
    EXPECT_EQ(one.peak_waiting, seven.peak_waiting);

    // Accounting closes: every arrival admitted or rejected, every
    // admitted session absorbed by exactly one shard.
    EXPECT_EQ(one.admitted + one.rejected, arrivals.size());
    EXPECT_EQ(one.snapshot.count("sessions"), one.admitted);
    std::uint64_t absorbed = 0;
    for (const std::uint64_t n : seven.per_shard_absorbed) {
        absorbed += n;
    }
    EXPECT_EQ(absorbed, seven.admitted);
    EXPECT_EQ(one.snapshot.count("mix.even.sessions") +
                  one.snapshot.count("mix.odd.sessions"),
              one.admitted);
}

TEST(Placer, ReportIsJobsInvariant)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals(48);
    const FleetRun serial = runFleet(fleetConfig(4, 1), arrivals);
    const FleetRun threaded = runFleet(fleetConfig(4, 4), arrivals);
    EXPECT_EQ(serial.report, threaded.report);
    EXPECT_EQ(serial.snapshot, threaded.snapshot);
}

TEST(Placer, RebalanceIsStatsNeutral)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals(48);
    const FleetRun never = runFleet(fleetConfig(4, 1, 0), arrivals);
    const FleetRun slow =
        runFleet(fleetConfig(4, 1, 500 * sim_clock::ms), arrivals);
    const FleetRun fast =
        runFleet(fleetConfig(4, 1, 7 * sim_clock::ms), arrivals);

    EXPECT_EQ(never.rebalances, 0u);
    EXPECT_GT(slow.rebalances, 0u);
    EXPECT_GT(fast.rebalances, slow.rebalances);

    // Re-weighting slices moves placement only; the report and the
    // merged snapshot must not move at all.
    EXPECT_EQ(never.report, slow.report);
    EXPECT_EQ(never.report, fast.report);
    EXPECT_EQ(never.snapshot, fast.snapshot);
    EXPECT_EQ(never.admitted, fast.admitted);
    EXPECT_EQ(never.queued, fast.queued);
}

// ---------------------------------------------------------------------
// Placer: admission behaviour
// ---------------------------------------------------------------------

TEST(Placer, QueueEngagesUnderPressure)
{
    const FleetRun r =
        runFleet(fleetConfig(4, 1), pressureArrivals());
    EXPECT_GT(r.queued, 0u);
    EXPECT_GT(r.peak_waiting, 0u);
    EXPECT_LE(r.peak_active, 6u);
    EXPECT_EQ(r.rejected, 0u); // nothing here is a whale
    // The leave process ran: some viewers left mid-stream.
    EXPECT_GT(r.snapshot.count("leftEarly"), 0u);
    EXPECT_LT(r.snapshot.count("leftEarly"), r.admitted);
}

TEST(Placer, WhalesAreRejectedNotQueued)
{
    // Every 5th arrival asks for a 1920x1080 session against a
    // budget sized for tiny ones: impossible, rejected outright.
    std::vector<ArrivalEvent> arrivals;
    for (std::uint64_t i = 0; i < 20; ++i) {
        ArrivalEvent e;
        e.tick = i * 50 * sim_clock::ms;
        e.id = i;
        e.mix = i % 5 == 4 ? 99 : 0;
        arrivals.push_back(e);
    }
    const FleetRun r = runFleet(fleetConfig(2, 1), arrivals);
    EXPECT_EQ(r.rejected, 4u);
    EXPECT_EQ(r.admitted, 16u);
    EXPECT_EQ(r.snapshot.count("sessions"), 16u);
}

TEST(Placer, AllLeaversLeaveEarly)
{
    // leave_probability 1 with a window well inside the 0.8 s span:
    // every admitted clean session must count as leftEarly.
    PoissonArrivalConfig p;
    p.seed = 0x1eaf;
    p.rate_per_s = 5.0;
    p.count = 12;
    p.leave_probability = 1.0;
    p.min_watch = 100 * sim_clock::ms;
    p.max_watch = 400 * sim_clock::ms;
    const FleetRun r =
        runFleet(fleetConfig(2, 1), poissonArrivals(p));
    EXPECT_EQ(r.admitted, 12u);
    EXPECT_EQ(r.snapshot.count("leftEarly"), 12u);
    EXPECT_EQ(r.snapshot.count("state.healthy"), 12u);
}

TEST(Placer, TieBreakRoutesIdleFleetToLowestShard)
{
    // Arrivals a full second apart never overlap (0.8 s sessions),
    // so every pick sees four idle shards - and must choose shard 0
    // every time (strict-less compare, lowest id wins).
    std::vector<ArrivalEvent> arrivals;
    for (std::uint64_t i = 0; i < 6; ++i) {
        ArrivalEvent e;
        e.tick = i * sim_clock::s;
        e.id = i;
        arrivals.push_back(e);
    }
    const FleetRun r = runFleet(fleetConfig(4, 1), arrivals);
    ASSERT_EQ(r.per_shard_absorbed.size(), 4u);
    EXPECT_EQ(r.per_shard_absorbed[0], 6u);
    EXPECT_EQ(r.per_shard_absorbed[1], 0u);
    EXPECT_EQ(r.per_shard_absorbed[2], 0u);
    EXPECT_EQ(r.per_shard_absorbed[3], 0u);
    EXPECT_EQ(r.queued, 0u);
    EXPECT_EQ(r.peak_active, 1u);
}

} // namespace
} // namespace vstream
