/**
 * @file
 * Fleet fault-tolerance tests: ShardSnapshot wire-format round trips,
 * the chaos rule grammar, flash-crowd schedule injection, and the
 * headline recovery contract - a crashed-and-recovered fleet report
 * equals the unfailed run's report modulo the explicit `recovery`
 * block, at every crash position and any shard/job count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/arrivals.hh"
#include "serve/chaos.hh"
#include "serve/fleet_report.hh"
#include "serve/placer.hh"
#include "serve/session_manager.hh"
#include "serve/shard.hh"
#include "serve/snapshot.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile(std::uint64_t seed, std::uint32_t width = 96,
            std::uint32_t height = 48)
{
    VideoProfile p;
    p.key = "T";
    p.width = width;
    p.height = height;
    p.frame_count = 48;
    p.seed = seed;
    return p;
}

/** Mix 99 marks a whale; everything else is a tiny session keyed by
 * id.  Pure in ArrivalEvent, as crash replay requires. */
SessionConfig
chaosSession(const ArrivalEvent &a)
{
    SessionConfig s;
    const bool whale = a.mix == 99;
    s.pipeline.profile = whale ? tinyProfile(7, 1920, 1080)
                               : tinyProfile(4242 + a.id);
    s.pipeline.scheme = SchemeConfig::make(Scheme::kGab);
    s.stats_group = a.mix % 2 == 0 ? "even" : "odd";
    return s;
}

/** ~6 concurrent sessions by bandwidth and by max_active. */
FleetConfig
chaosConfig(std::uint32_t shards, unsigned jobs)
{
    const SessionConfig probe = chaosSession(ArrivalEvent{});
    FleetConfig cfg;
    cfg.serve.bandwidth_budget_mbps =
        Session::demandMBps(probe.pipeline) * 6.5;
    cfg.serve.framebuffer_budget_bytes =
        Session::framebufferBytes(probe.pipeline) * 100;
    cfg.serve.max_active = 6;
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.rehearse_block = 16;
    return cfg;
}

std::vector<ArrivalEvent>
pressureArrivals(std::uint64_t count = 48)
{
    PoissonArrivalConfig p;
    p.seed = 0xabc;
    p.rate_per_s = 20.0;
    p.count = count;
    p.leave_probability = 0.35;
    p.min_watch = 100 * sim_clock::ms;
    p.max_watch = 500 * sim_clock::ms;
    p.num_mixes = 2;
    return poissonArrivals(p);
}

struct FleetRun
{
    std::string report;
    StatsSnapshot snapshot;
    RecoveryTotals recovery;
    std::uint64_t admitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t rejected = 0;
    std::uint64_t checkpoints = 0;
    Tick shed_dwell = 0;
    double bw_reserved_after = 0.0;
    std::uint64_t fb_reserved_after = 0;
    std::uint64_t absorbed_total = 0;
};

FleetRun
runFleet(const FleetConfig &cfg,
         const std::vector<ArrivalEvent> &arrivals)
{
    Placer placer(cfg, chaosSession);
    placer.run(arrivals);
    FleetRun r;
    std::ostringstream os;
    writeFleetReport(os, placer, "test_chaos", arrivals.size(),
                     /*wall_clock_seconds=*/0.0,
                     /*invariant_failures=*/0);
    r.report = os.str();
    r.snapshot = placer.fleetSnapshot();
    r.recovery = placer.recovery();
    r.admitted = placer.admitted();
    r.queued = placer.queuedTotal();
    r.rejected = placer.rejected();
    r.checkpoints = placer.checkpointsTaken();
    r.shed_dwell = placer.fleetLadder().dwell(FleetHealth::kShedding,
                                              placer.endTick());
    for (const Shard &s : placer.shards()) {
        r.bw_reserved_after += s.bwReservedMBps();
        r.fb_reserved_after += s.fbReservedBytes();
        r.absorbed_total += s.absorbed();
    }
    return r;
}

/** Drop the `recovery` object from a pretty fleet report, so a chaos
 * run can be compared byte-wise against a clean one. */
std::string
stripRecovery(const std::string &report)
{
    std::istringstream is(report);
    std::ostringstream os;
    std::string line;
    int depth = 0;
    while (std::getline(is, line)) {
        if (depth > 0) {
            for (const char c : line) {
                depth += c == '{' ? 1 : c == '}' ? -1 : 0;
            }
            continue;
        }
        if (line.find("\"recovery\":") != std::string::npos) {
            depth = 1;
            continue;
        }
        os << line << "\n";
    }
    return os.str();
}

FleetFaultRule
crashRule(Tick at, std::uint32_t shard)
{
    FleetFaultRule r;
    r.cls = FleetFaultClass::kShardCrash;
    r.at = at;
    r.shard = shard;
    return r;
}

// ---------------------------------------------------------------------
// ShardSnapshot wire format
// ---------------------------------------------------------------------

TEST(ShardSnapshot, RoundTripIsBitIdentical)
{
    Shard s(0);
    for (std::uint64_t i = 0; i < 5; ++i) {
        SessionOutcome o;
        o.id = i;
        o.group = i % 2 == 0 ? "even" : "odd";
        o.final_state =
            i == 3 ? HealthState::kEvicted : HealthState::kHealthy;
        o.breaker_trips = i;
        o.left_early = i == 4;
        o.start_offset = i * 10 * sim_clock::ms;
        o.end_tick = (i + 20) * 10 * sim_clock::ms;
        s.absorb(o);
    }
    ShardSnapshot snap;
    snap.tick = 250 * sim_clock::ms;
    snap.absorbed = s.absorbed();
    snap.stats = s.snapshot();

    const std::vector<std::uint8_t> bytes =
        serializeShardSnapshot(snap);
    ShardSnapshot back;
    std::string error;
    ASSERT_TRUE(tryDeserializeShardSnapshot(bytes.data(),
                                            bytes.size(), back,
                                            error))
        << error;
    EXPECT_EQ(back, snap);
    // serialize(deserialize(bytes)) == bytes: the integer-exact
    // foundation of the recovery-equality guarantee.
    EXPECT_EQ(serializeShardSnapshot(back), bytes);
}

TEST(ShardSnapshot, DeserializeFailsClosed)
{
    ShardSnapshot snap;
    snap.tick = 7;
    snap.absorbed = 0;
    std::vector<std::uint8_t> bytes = serializeShardSnapshot(snap);
    ShardSnapshot out;
    std::string error;

    // Bad magic.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(tryDeserializeShardSnapshot(bad.data(), bad.size(),
                                             out, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    // Unknown version.
    bad = bytes;
    bad[4] = 0xff;
    EXPECT_FALSE(tryDeserializeShardSnapshot(bad.data(), bad.size(),
                                             out, error));

    // Truncation at every length: none may crash or accept.
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        EXPECT_FALSE(tryDeserializeShardSnapshot(bytes.data(), n,
                                                 out, error))
            << "accepted truncation to " << n << " bytes";
    }

    // Trailing bytes: a checkpoint is a whole document.
    bad = bytes;
    bad.push_back(0);
    EXPECT_FALSE(tryDeserializeShardSnapshot(bad.data(), bad.size(),
                                             out, error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;

    // out untouched through all the failures.
    EXPECT_EQ(out, ShardSnapshot{});
}

// ---------------------------------------------------------------------
// Rule grammar
// ---------------------------------------------------------------------

TEST(ChaosRules, ParsesWellFormedSpecs)
{
    FleetFaultRule r;
    std::string error;
    ASSERT_TRUE(tryParseFleetFaultRule(FleetFaultClass::kShardCrash,
                                       "at=500ms,shard=1", r, error))
        << error;
    EXPECT_EQ(r.at, 500 * sim_clock::ms);
    EXPECT_EQ(r.shard, 1u);

    ASSERT_TRUE(tryParseFleetFaultRule(
        FleetFaultClass::kShardBrownout,
        "at=1s,shard=2,len=250ms,factor=0.25", r, error))
        << error;
    EXPECT_EQ(r.at, 1 * sim_clock::s);
    EXPECT_EQ(r.duration, 250 * sim_clock::ms);
    EXPECT_DOUBLE_EQ(r.factor, 0.25);

    ASSERT_TRUE(tryParseFleetFaultRule(FleetFaultClass::kFlashCrowd,
                                       "at=200,count=50,len=10,mix=3",
                                       r, error))
        << error;
    EXPECT_EQ(r.at, 200 * sim_clock::ms); // bare numbers are ms
    EXPECT_EQ(r.count, 50u);
    EXPECT_EQ(r.mix, 3u);
}

TEST(ChaosRules, ParserFailsClosed)
{
    FleetFaultRule r;
    std::string error;
    const auto fails = [&](FleetFaultClass c, const std::string &s) {
        return !tryParseFleetFaultRule(c, s, r, error);
    };
    // Missing required keys.
    EXPECT_TRUE(fails(FleetFaultClass::kShardCrash, "at=500ms"));
    EXPECT_TRUE(fails(FleetFaultClass::kShardBrownout,
                      "at=1s,shard=0"));
    EXPECT_TRUE(fails(FleetFaultClass::kFlashCrowd, "at=1s"));
    // Malformed values.
    EXPECT_TRUE(fails(FleetFaultClass::kShardCrash,
                      "at=oops,shard=0"));
    EXPECT_TRUE(fails(FleetFaultClass::kShardBrownout,
                      "at=1s,shard=0,len=1s,factor=0"));
    EXPECT_TRUE(fails(FleetFaultClass::kShardBrownout,
                      "at=1s,shard=0,len=1s,factor=1.5"));
    EXPECT_TRUE(fails(FleetFaultClass::kFlashCrowd,
                      "at=1s,count=0"));
    // Unknown key.
    EXPECT_TRUE(fails(FleetFaultClass::kShardCrash,
                      "at=1s,shard=0,bogus=1"));
    EXPECT_FALSE(error.empty());
}

TEST(ChaosRules, ValidateRejectsImpossibleTargets)
{
    ChaosConfig c;
    c.rules.push_back(crashRule(1 * sim_clock::s, 4));
    EXPECT_DEATH(c.validate(4), "shard");   // target out of range
    c.rules[0].shard = 0;
    EXPECT_DEATH(c.validate(1), "");        // crash needs >= 2 shards
    c.validate(2);                          // fine
}

// ---------------------------------------------------------------------
// Flash crowds
// ---------------------------------------------------------------------

TEST(FlashCrowds, InjectsSortedBurstWithFreshIds)
{
    std::vector<ArrivalEvent> base = pressureArrivals(10);
    const std::uint64_t max_id = base.back().id;

    ChaosConfig chaos;
    FleetFaultRule flood;
    flood.cls = FleetFaultClass::kFlashCrowd;
    flood.at = 100 * sim_clock::ms;
    flood.duration = 50 * sim_clock::ms;
    flood.count = 8;
    flood.mix = 1;
    chaos.rules.push_back(flood);

    const std::vector<ArrivalEvent> merged =
        withFlashCrowds(base, chaos);
    ASSERT_EQ(merged.size(), base.size() + 8);
    std::uint64_t flood_seen = 0;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(merged[i].tick, merged[i - 1].tick) << i;
        }
        if (merged[i].id > max_id) {
            // Flood ids are sequential after the largest base id.
            EXPECT_EQ(merged[i].id, max_id + 1 + flood_seen);
            EXPECT_EQ(merged[i].mix, 1u);
            EXPECT_GE(merged[i].tick, flood.at);
            EXPECT_LE(merged[i].tick, flood.at + flood.duration);
            ++flood_seen;
        }
    }
    EXPECT_EQ(flood_seen, 8u);

    // No flood rules: identity.
    EXPECT_EQ(withFlashCrowds(base, ChaosConfig{}).size(),
              base.size());
}

// ---------------------------------------------------------------------
// The recovery contract
// ---------------------------------------------------------------------

TEST(ChaosRecovery, CrashAtEveryBoundaryEqualsUnfailedRun)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals();
    const FleetRun clean = runFleet(chaosConfig(4, 1), arrivals);
    ASSERT_FALSE(clean.recovery.any());

    // Sweep the crash tick across checkpoint boundaries, mid-interval
    // points, and the exact boundary tick (checkpoint ranks before
    // crash at the same tick, so that crash loses nothing).
    const Tick period = 100 * sim_clock::ms;
    for (const Tick at :
         {period, period + 1, 250 * sim_clock::ms, 3 * period,
          777 * sim_clock::ms, 2 * sim_clock::s}) {
        FleetConfig cfg = chaosConfig(4, 1);
        cfg.chaos.checkpoint_period = period;
        cfg.chaos.rules.push_back(crashRule(at, 1));
        const FleetRun crashed = runFleet(cfg, arrivals);

        EXPECT_EQ(crashed.recovery.crashes, 1u) << "at=" << at;
        EXPECT_EQ(stripRecovery(crashed.report),
                  stripRecovery(clean.report))
            << "crash at " << at
            << " changed the report beyond the recovery block";
        EXPECT_EQ(crashed.snapshot, clean.snapshot) << "at=" << at;
        EXPECT_EQ(crashed.admitted, clean.admitted) << "at=" << at;
        EXPECT_EQ(crashed.queued, clean.queued) << "at=" << at;
        // Checkpoint + journal reconstruct finished outcomes only.
        EXPECT_LE(crashed.recovery.restored +
                      crashed.recovery.replayed,
                  clean.admitted)
            << "at=" << at;
        EXPECT_GT(crashed.checkpoints, 0u);
    }
}

TEST(ChaosRecovery, FailoverConservesTheGlobalBudget)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals();
    FleetConfig cfg = chaosConfig(4, 1);
    cfg.chaos.checkpoint_period = 100 * sim_clock::ms;
    // Crash mid-run, when the budget is saturated and sessions are
    // in flight on every shard.
    cfg.chaos.rules.push_back(crashRule(613 * sim_clock::ms, 2));
    const FleetRun r = runFleet(cfg, arrivals);

    EXPECT_GT(r.recovery.failed_over, 0u);
    // Every reservation released by the end: failover moved in-flight
    // sessions without leaking or double-counting budget.
    EXPECT_DOUBLE_EQ(r.bw_reserved_after, 0.0);
    EXPECT_EQ(r.fb_reserved_after, 0u);
    // Every admitted session absorbed by exactly one shard, crash or
    // not - restored + replayed outcomes land back in the fleet.
    EXPECT_EQ(r.absorbed_total, r.admitted);
    EXPECT_EQ(r.snapshot.count("sessions"), r.admitted);
}

TEST(ChaosRecovery, BrownoutIsStatsNeutral)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals();
    const FleetRun clean = runFleet(chaosConfig(4, 1), arrivals);

    FleetFaultRule rule;
    rule.cls = FleetFaultClass::kShardBrownout;
    rule.at = 200 * sim_clock::ms;
    rule.shard = 0;
    rule.duration = 800 * sim_clock::ms;
    rule.factor = 0.25;
    FleetConfig cfg = chaosConfig(4, 1);
    cfg.chaos.rules.push_back(rule);
    const FleetRun browned = runFleet(cfg, arrivals);

    EXPECT_EQ(browned.recovery.brownouts, 1u);
    // Slices are advisory: a derated shard steers placement only.
    EXPECT_EQ(stripRecovery(browned.report),
              stripRecovery(clean.report));
    EXPECT_EQ(browned.snapshot, clean.snapshot);
}

TEST(ChaosRecovery, ReportIsShardAndJobsInvariantUnderChaos)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals();
    const auto chaosed = [&](std::uint32_t shards, unsigned jobs) {
        FleetConfig cfg = chaosConfig(shards, jobs);
        cfg.chaos.checkpoint_period = 100 * sim_clock::ms;
        cfg.chaos.rules.push_back(crashRule(400 * sim_clock::ms, 1));
        return runFleet(cfg, arrivals);
    };
    const FleetRun two = chaosed(2, 1);
    const FleetRun five = chaosed(5, 1);
    const FleetRun threaded = chaosed(5, 8); // TSan covers jobs 8
    // Across shard counts the merged stats are byte-identical; the
    // recovery ledger legitimately differs (which sessions sat on
    // the crashed shard is a fact about the partitioning).
    EXPECT_EQ(stripRecovery(two.report), stripRecovery(five.report));
    EXPECT_EQ(two.snapshot, five.snapshot);
    EXPECT_EQ(two.recovery.crashes, five.recovery.crashes);
    // Across job counts the partitioning is identical, so the whole
    // report - recovery ledger included - is byte-exact.
    EXPECT_EQ(five.report, threaded.report);
    EXPECT_EQ(five.recovery, threaded.recovery);
}

TEST(ChaosRecovery, SheddingBoundsTheQueue)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals(72);
    FleetConfig cfg = chaosConfig(2, 1);
    cfg.chaos.shed_depth = 4;
    const FleetRun r = runFleet(cfg, arrivals);
    EXPECT_GT(r.recovery.shed, 0u);
    EXPECT_GT(r.shed_dwell, 0u);
    // Accounting still closes with shed arrivals in the ledger.
    EXPECT_EQ(r.admitted + r.rejected + r.recovery.shed,
              arrivals.size());
}

// ---------------------------------------------------------------------
// Admission-queue deadline
// ---------------------------------------------------------------------

TEST(QueueDeadline, ExpiresOverdueFleetArrivals)
{
    const std::vector<ArrivalEvent> arrivals = pressureArrivals(72);
    FleetConfig cfg = chaosConfig(2, 1);
    cfg.serve.queue_deadline = 20 * sim_clock::ms;
    const FleetRun r = runFleet(cfg, arrivals);
    EXPECT_GT(r.recovery.queue_timeouts, 0u);
    EXPECT_EQ(r.admitted + r.rejected + r.recovery.queue_timeouts,
              arrivals.size());

    // Deadline 0 is the legacy unbounded queue.
    const FleetRun unbounded = runFleet(chaosConfig(2, 1), arrivals);
    EXPECT_EQ(unbounded.recovery.queue_timeouts, 0u);
    EXPECT_EQ(unbounded.admitted + unbounded.rejected,
              arrivals.size());
}

TEST(QueueDeadline, ManagerRecordsTimeoutOutcomes)
{
    // Budget for one tiny session; submit three at once with a
    // deadline shorter than a session span: the two queued behind
    // the first must expire with marker outcomes.
    const SessionConfig probe = chaosSession(ArrivalEvent{});
    ServeConfig serve;
    serve.bandwidth_budget_mbps =
        Session::demandMBps(probe.pipeline) * 1.5;
    serve.framebuffer_budget_bytes =
        Session::framebufferBytes(probe.pipeline) * 2;
    serve.max_active = 1;
    serve.queue_deadline = 50 * sim_clock::ms;
    SessionManager mgr(serve);

    for (std::uint64_t id = 0; id < 3; ++id) {
        ArrivalEvent a;
        a.id = id;
        SessionConfig cfg = chaosSession(a);
        cfg.id = id;
        mgr.submit(std::move(cfg));
    }
    EXPECT_EQ(mgr.admitted(), 1u);
    EXPECT_EQ(mgr.waitingCount(), 2u);
    mgr.runAll();

    EXPECT_EQ(mgr.queueTimeouts(), 2u);
    EXPECT_EQ(mgr.admitted(), 1u);
    std::uint64_t markers = 0;
    for (const SessionOutcome &o : mgr.outcomes()) {
        if (o.queue_timeout) {
            ++markers;
            EXPECT_EQ(o.end_tick - o.start_offset,
                      serve.queue_deadline);
        }
    }
    EXPECT_EQ(markers, 2u);
}

} // namespace
} // namespace vstream
