/**
 * @file
 * Tests for the generic set-associative cache model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/set_assoc_cache.hh"

namespace vstream
{
namespace
{

CacheConfig
tinyCache(std::uint32_t size = 1024, std::uint32_t assoc = 2,
          bool write_alloc = true)
{
    CacheConfig cfg;
    cfg.size_bytes = size;
    cfg.line_bytes = 64;
    cfg.assoc = assoc;
    cfg.write_allocate = write_alloc;
    return cfg;
}

TEST(CacheConfig, Geometry)
{
    const CacheConfig cfg = tinyCache();
    EXPECT_EQ(cfg.numLines(), 16u);
    EXPECT_EQ(cfg.numSets(), 8u);
    cfg.validate();
}

TEST(CacheConfigDeath, NonPow2Sets)
{
    CacheConfig cfg = tinyCache(1024, 1);
    cfg.size_bytes = 64 * 12; // 12 sets
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c("c", tinyCache());
    const auto first = c.access(0, 64, MemOp::kRead);
    EXPECT_EQ(first.misses, 1u);
    EXPECT_EQ(first.fills.size(), 1u);
    const auto second = c.access(0, 64, MemOp::kRead);
    EXPECT_EQ(second.hits, 1u);
    EXPECT_TRUE(second.fills.empty());
    EXPECT_EQ(c.hitCount(), 1u);
    EXPECT_EQ(c.missCount(), 1u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, MultiLineAccessCountsEachLine)
{
    SetAssocCache c("c", tinyCache());
    // 100 bytes starting at 60 spans lines 0,1,2.
    const auto s = c.access(60, 100, MemOp::kRead);
    EXPECT_EQ(s.lines, 3u);
    EXPECT_EQ(s.misses, 3u);
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way: fill a set with 2 lines, touch the first, insert a
    // third; the second (least recent) must be the victim.
    SetAssocCache c("c", tinyCache(1024, 2));
    const Addr set_stride = 8 * 64; // sets * line
    c.access(0, 64, MemOp::kRead);            // A
    c.access(set_stride, 64, MemOp::kRead);   // B, same set
    c.access(0, 64, MemOp::kRead);            // touch A
    c.access(2 * set_stride, 64, MemOp::kRead); // C evicts B
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(set_stride));
    EXPECT_TRUE(c.contains(2 * set_stride));
    EXPECT_EQ(c.evictionCount(), 1u);
}

TEST(Cache, FifoIgnoresTouches)
{
    CacheConfig cfg = tinyCache(1024, 2);
    cfg.policy = ReplPolicy::kFifo;
    SetAssocCache c("c", cfg);
    const Addr set_stride = 8 * 64;
    c.access(0, 64, MemOp::kRead);            // A
    c.access(set_stride, 64, MemOp::kRead);   // B
    c.access(0, 64, MemOp::kRead);            // touch A (ignored)
    c.access(2 * set_stride, 64, MemOp::kRead); // evicts A (oldest)
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(set_stride));
}

TEST(Cache, WriteNoAllocateBypasses)
{
    SetAssocCache c("c", tinyCache(1024, 2, /*write_alloc=*/false));
    const auto s = c.access(0, 64, MemOp::kWrite);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(s.fills.empty());
    // Write hits still update state.
    c.access(0, 64, MemOp::kRead);
    const auto s2 = c.access(0, 64, MemOp::kWrite);
    EXPECT_EQ(s2.hits, 1u);
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    SetAssocCache c("c", tinyCache(1024, 1)); // direct-mapped
    const Addr set_stride = 16 * 64;
    c.access(0, 64, MemOp::kWrite); // allocate dirty
    const auto s = c.access(set_stride, 64, MemOp::kRead); // conflict
    ASSERT_EQ(s.writebacks.size(), 1u);
    EXPECT_EQ(s.writebacks[0], 0u);
    EXPECT_EQ(c.writebackCount(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    SetAssocCache c("c", tinyCache(1024, 1));
    const Addr set_stride = 16 * 64;
    c.access(0, 64, MemOp::kRead);
    const auto s = c.access(set_stride, 64, MemOp::kRead);
    EXPECT_TRUE(s.writebacks.empty());
}

TEST(Cache, WriteThroughNeverDirty)
{
    CacheConfig cfg = tinyCache(1024, 1);
    cfg.write_back = false;
    SetAssocCache c("c", cfg);
    c.access(0, 64, MemOp::kWrite);
    const Addr set_stride = 16 * 64;
    const auto s = c.access(set_stride, 64, MemOp::kRead);
    EXPECT_TRUE(s.writebacks.empty());
}

TEST(Cache, FlushReturnsDirtyLinesOnly)
{
    SetAssocCache c("c", tinyCache());
    c.access(0, 64, MemOp::kWrite);
    c.access(64, 64, MemOp::kRead);
    c.access(128, 64, MemOp::kWrite);
    auto dirty = c.flush();
    std::sort(dirty.begin(), dirty.end());
    EXPECT_EQ(dirty, (std::vector<Addr>{0, 128}));
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(64));
}

TEST(Cache, InvalidateDropsEverything)
{
    SetAssocCache c("c", tinyCache());
    c.access(0, 64, MemOp::kWrite);
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.flush().empty()); // dirty data dropped
}

TEST(Cache, ContainsDoesNotPerturb)
{
    SetAssocCache c("c", tinyCache());
    c.access(0, 64, MemOp::kRead);
    const auto hits_before = c.hitCount();
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1 << 20));
    EXPECT_EQ(c.hitCount(), hits_before);
}

TEST(Cache, StreamingWorkingSetLargerThanCacheThrashes)
{
    SetAssocCache c("c", tinyCache(1024, 2));
    // Two passes over 4 KB > 1 KB cache: second pass misses too.
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 4096; a += 64) {
            c.access(a, 64, MemOp::kRead);
        }
    }
    EXPECT_GT(c.missRate(), 0.9);
}

TEST(Cache, SmallWorkingSetFitsAfterWarmup)
{
    SetAssocCache c("c", tinyCache(1024, 2));
    for (int pass = 0; pass < 10; ++pass) {
        for (Addr a = 0; a < 512; a += 64) {
            c.access(a, 64, MemOp::kRead);
        }
    }
    // 8 cold misses out of 80 accesses.
    EXPECT_NEAR(c.missRate(), 0.1, 1e-9);
}

class AssocSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(AssocSweep, HigherAssociativityNeverHurtsThisPattern)
{
    // A cyclic pattern over assoc+? lines in one set region.
    const std::uint32_t assoc = GetParam();
    SetAssocCache c("c", tinyCache(4096, assoc));
    const std::uint32_t sets = c.config().numSets();
    // Touch `assoc` lines mapping to set 0 repeatedly: always fits.
    for (int pass = 0; pass < 5; ++pass) {
        for (std::uint32_t w = 0; w < assoc; ++w) {
            c.access(static_cast<Addr>(w) * sets * 64, 64, MemOp::kRead);
        }
    }
    EXPECT_EQ(c.missCount(), assoc);
}

INSTANTIATE_TEST_SUITE_P(Ways, AssocSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

class SizeSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SizeSweep, MissRateMonotoneInSizeForLoopingPattern)
{
    // Fig. 7a's premise: bigger caches help looping (compute-side)
    // access patterns.
    const std::uint32_t size_kb = GetParam();
    SetAssocCache c("c", tinyCache(size_kb * 1024, 4));
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr a = 0; a < 64 * 1024; a += 64) {
            c.access(a, 64, MemOp::kRead);
        }
    }
    RecordProperty("missRate", c.missRate());
    if (size_kb >= 64) {
        EXPECT_NEAR(c.missRate(), 0.25, 0.01); // cold misses only
    } else {
        EXPECT_GT(c.missRate(), 0.9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(16u, 32u, 64u, 128u));

} // namespace
} // namespace vstream
