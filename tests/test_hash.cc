/**
 * @file
 * Unit tests for the hash library (CRC32/CRC16/MD5/SHA-1) against
 * published known-answer vectors, plus the 32-bit digest dispatch
 * MACH builds on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "hash/crc.hh"
#include "hash/hasher.hh"
#include "hash/md5.hh"
#include "hash/sha1.hh"
#include "sim/random.hh"

namespace vstream
{
namespace
{

const char *kNineDigits = "123456789";

TEST(Crc32, CheckValue)
{
    // The canonical CRC-32/IEEE check value.
    EXPECT_EQ(Crc32::compute(kNineDigits, 9), 0xcbf43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(Crc32::compute("", 0), 0x00000000u);
}

TEST(Crc32, KnownStrings)
{
    EXPECT_EQ(Crc32::compute("a", 1), 0xe8b7be43u);
    EXPECT_EQ(Crc32::compute("abc", 3), 0x352441c2u);
    const std::string lazy =
        "The quick brown fox jumps over the lazy dog";
    EXPECT_EQ(Crc32::compute(lazy.data(), lazy.size()), 0x414fa339u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data = "macroblock content caching";
    Crc32 crc;
    for (char c : data) {
        crc.update(&c, 1);
    }
    EXPECT_EQ(crc.digest(), Crc32::compute(data.data(), data.size()));
}

TEST(Crc32, ResetRestarts)
{
    Crc32 crc;
    crc.update("junk", 4);
    crc.reset();
    crc.update(kNineDigits, 9);
    EXPECT_EQ(crc.digest(), 0xcbf43926u);
}

TEST(Crc32, SensitiveToSingleBitFlip)
{
    std::vector<std::uint8_t> block(48, 0xab);
    const std::uint32_t base = Crc32::compute(block.data(), block.size());
    for (std::size_t i = 0; i < block.size(); i += 7) {
        auto copy = block;
        copy[i] ^= 0x01;
        EXPECT_NE(Crc32::compute(copy.data(), copy.size()), base)
            << "flip at byte " << i;
    }
}

// ---------------------------------------------------------------------
// Kernel equivalence: every dispatchable CRC kernel must produce the
// reference digest for any length, alignment and incremental split -
// a kernel that diverges would silently change every MACH hit.
// ---------------------------------------------------------------------

TEST(CrcKernels, ReferenceIsAlwaysAvailable)
{
    const auto kernels = availableCrc32Kernels();
    ASSERT_FALSE(kernels.empty());
    EXPECT_EQ(kernels.front(), CrcKernel::kReference);
    EXPECT_EQ(std::string(crcKernelName(CrcKernel::kReference)),
              "reference");
    // Whatever update() dispatched to must be a usable kernel.
    bool active_listed = false;
    for (CrcKernel k : kernels) {
        if (k == activeCrc32Kernel()) {
            active_listed = true;
        }
    }
    EXPECT_TRUE(active_listed);
}

TEST(CrcKernels, Crc32AllKernelsMatchReferenceAllLengths)
{
    Random rng(0xc3c1);
    std::vector<std::uint8_t> buf(4096 + 64);
    for (auto &b : buf) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    const auto kernels = availableCrc32Kernels();
    // Lengths sweep the kernel-internal thresholds (16-byte folds,
    // the 64-byte hardware cutover, slice8's 8-byte stride) and
    // offsets force every load alignment.
    for (std::size_t len : {std::size_t{0}, std::size_t{1},
                            std::size_t{7}, std::size_t{8},
                            std::size_t{15}, std::size_t{16},
                            std::size_t{48}, std::size_t{63},
                            std::size_t{64}, std::size_t{65},
                            std::size_t{127}, std::size_t{256},
                            std::size_t{1023}, std::size_t{4096}}) {
        for (std::size_t off : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{7}}) {
            const std::uint32_t want = crc32Step(
                CrcKernel::kReference, 0xffffffffu,
                buf.data() + off, len);
            for (CrcKernel k : kernels) {
                EXPECT_EQ(crc32Step(k, 0xffffffffu,
                                    buf.data() + off, len),
                          want)
                    << crcKernelName(k) << " len=" << len
                    << " off=" << off;
            }
        }
    }
}

TEST(CrcKernels, Crc32IncrementalSplitsMatchOneShot)
{
    Random rng(0xc3c2);
    std::vector<std::uint8_t> buf(777);
    for (auto &b : buf) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    const std::uint32_t want = Crc32::compute(buf.data(), buf.size());
    for (CrcKernel k : availableCrc32Kernels()) {
        // Chain the raw step through random-sized chunks.
        Random split_rng(99);
        std::uint32_t state = 0xffffffffu;
        std::size_t pos = 0;
        while (pos < buf.size()) {
            const std::size_t n = std::min<std::size_t>(
                1 + split_rng.next() % 100, buf.size() - pos);
            state = crc32Step(k, state, buf.data() + pos, n);
            pos += n;
        }
        EXPECT_EQ(~state, want) << crcKernelName(k);
    }
}

TEST(CrcKernels, Crc16SlicedMatchesReference)
{
    Random rng(0xc3c3);
    std::vector<std::uint8_t> buf(1024 + 8);
    for (auto &b : buf) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    for (std::size_t len : {std::size_t{0}, std::size_t{1},
                            std::size_t{2}, std::size_t{3},
                            std::size_t{9}, std::size_t{48},
                            std::size_t{255}, std::size_t{1024}}) {
        for (std::size_t off : {std::size_t{0}, std::size_t{1},
                                std::size_t{5}}) {
            EXPECT_EQ(crc16Step(true, 0xffffu, buf.data() + off, len),
                      crc16Step(false, 0xffffu, buf.data() + off,
                                len))
                << "len=" << len << " off=" << off;
        }
    }
}

TEST(Crc16, CheckValue)
{
    // CRC-16/CCITT-FALSE check value.
    EXPECT_EQ(Crc16::compute(kNineDigits, 9), 0x29b1u);
}

TEST(Crc16, EmptyInputIsInit)
{
    EXPECT_EQ(Crc16::compute("", 0), 0xffffu);
}

TEST(Crc16, IncrementalMatchesOneShot)
{
    const std::string data = "co-mach auxiliary digest";
    Crc16 crc;
    crc.update(data.data(), 10);
    crc.update(data.data() + 10, data.size() - 10);
    EXPECT_EQ(crc.digest(), Crc16::compute(data.data(), data.size()));
}

TEST(Md5, Rfc1321Vectors)
{
    EXPECT_EQ(Md5::toHex(Md5::compute("", 0)),
              "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(Md5::toHex(Md5::compute("a", 1)),
              "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(Md5::toHex(Md5::compute("abc", 3)),
              "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(Md5::toHex(Md5::compute("message digest", 14)),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(
        Md5::toHex(Md5::compute("abcdefghijklmnopqrstuvwxyz", 26)),
        "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5, LongInputCrossesBlocks)
{
    const std::string s(1000, 'x');
    Md5 one;
    one.update(s.data(), s.size());
    Md5 split;
    split.update(s.data(), 63);
    split.update(s.data() + 63, 64);
    split.update(s.data() + 127, s.size() - 127);
    EXPECT_EQ(one.digest(), split.digest());
}

TEST(Md5, Compute32UsesLeadingBytes)
{
    const auto full = Md5::compute("abc", 3);
    const std::uint32_t d32 = Md5::compute32("abc", 3);
    EXPECT_EQ(d32 & 0xffu, full[0]);
    EXPECT_EQ((d32 >> 24) & 0xffu, full[3]);
}

TEST(Sha1, FipsVectors)
{
    EXPECT_EQ(Sha1::toHex(Sha1::compute("abc", 3)),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(Sha1::toHex(Sha1::compute("", 0)),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    const std::string two_blocks =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(Sha1::toHex(Sha1::compute(two_blocks.data(),
                                        two_blocks.size())),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs)
{
    Sha1 sha;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        sha.update(chunk.data(), chunk.size());
    }
    EXPECT_EQ(Sha1::toHex(sha.digest()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Hasher, KindNamesRoundTrip)
{
    for (HashKind k :
         {HashKind::kCrc32, HashKind::kMd5, HashKind::kSha1}) {
        EXPECT_EQ(hashKindFromName(hashKindName(k)), k);
    }
}

TEST(Hasher, UnknownNameIsFatal)
{
    EXPECT_DEATH(hashKindFromName("fnv"), "unknown hash kind");
}

TEST(Hasher, Digest32MatchesUnderlying)
{
    const char *data = "gradient block";
    const std::size_t len = std::strlen(data);
    EXPECT_EQ(digest32(HashKind::kCrc32, data, len),
              Crc32::compute(data, len));
    EXPECT_EQ(digest32(HashKind::kMd5, data, len),
              Md5::compute32(data, len));
    EXPECT_EQ(digest32(HashKind::kSha1, data, len),
              Sha1::compute32(data, len));
}

TEST(Hasher, AuxDigestIsCrc16)
{
    EXPECT_EQ(auxDigest16(kNineDigits, 9), Crc16::compute(kNineDigits, 9));
}

/** Digest distribution: low index bits of CRC32 over random blocks
 * should spread across MACH sets (the paper checked all 32 bits are
 * usable for indexing). */
TEST(Hasher, LowBitsUniformAcrossSets)
{
    Random rng(42);
    std::vector<int> buckets(64, 0);
    const int n = 64 * 200;
    for (int i = 0; i < n; ++i) {
        std::uint8_t block[48];
        for (auto &b : block) {
            b = static_cast<std::uint8_t>(rng.next());
        }
        ++buckets[Crc32::compute(block, sizeof(block)) & 63u];
    }
    for (int i = 0; i < 64; ++i) {
        EXPECT_GT(buckets[i], 100) << "set " << i;
        EXPECT_LT(buckets[i], 320) << "set " << i;
    }
}

/** No 32-bit collisions expected among a few thousand random blocks
 * (the paper found CRC32 collisions rare: ~1 block in 200 frames). */
TEST(Hasher, CollisionsRareAtSmallScale)
{
    Random rng(7);
    std::set<std::uint32_t> seen;
    int collisions = 0;
    for (int i = 0; i < 20000; ++i) {
        std::uint8_t block[48];
        for (auto &b : block) {
            b = static_cast<std::uint8_t>(rng.next());
        }
        if (!seen.insert(Crc32::compute(block, sizeof(block))).second) {
            ++collisions;
        }
    }
    // Birthday bound: E[collisions] ~ 20000^2 / 2^33 ~ 0.05.
    EXPECT_LE(collisions, 2);
}

struct HashKindCase
{
    HashKind kind;
};

class AllHashes : public ::testing::TestWithParam<HashKind>
{
};

TEST_P(AllHashes, DeterministicAndContentSensitive)
{
    const HashKind kind = GetParam();
    std::vector<std::uint8_t> a(48, 1);
    std::vector<std::uint8_t> b(48, 2);
    EXPECT_EQ(digest32(kind, a.data(), a.size()),
              digest32(kind, a.data(), a.size()));
    EXPECT_NE(digest32(kind, a.data(), a.size()),
              digest32(kind, b.data(), b.size()));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllHashes,
                         ::testing::Values(HashKind::kCrc32,
                                           HashKind::kMd5,
                                           HashKind::kSha1));

} // namespace
} // namespace vstream
