/**
 * @file
 * Tests for the video substrate: macroblocks and the gradient
 * transform (the algebra MACH's gab mode rests on), frames, GOP
 * structure, profiles, and the synthetic generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hh"
#include "sim/ticks.hh"
#include "video/frame.hh"
#include "video/gop.hh"
#include "video/macroblock.hh"
#include "video/synthetic_video.hh"
#include "video/video_profile.hh"
#include "video/workloads.hh"

namespace vstream
{
namespace
{

Macroblock
randomMab(Random &rng, std::uint32_t dim = 4)
{
    Macroblock m(dim);
    for (auto &b : m.bytes()) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    return m;
}

TEST(Macroblock, SizeAndAccessors)
{
    Macroblock m(4);
    EXPECT_EQ(m.pixelCount(), 16u);
    EXPECT_EQ(m.sizeBytes(), 48u);
    m.setPixel(5, Pixel{10, 20, 30});
    EXPECT_EQ(m.pixel(5), (Pixel{10, 20, 30}));
    EXPECT_EQ(m.pixel(0), (Pixel{0, 0, 0}));
}

TEST(Macroblock, FillMakesPureColor)
{
    Macroblock m(4);
    m.fill(Pixel{1, 2, 3});
    for (std::uint32_t i = 0; i < m.pixelCount(); ++i) {
        EXPECT_EQ(m.pixel(i), (Pixel{1, 2, 3}));
    }
    EXPECT_EQ(m.base(), (Pixel{1, 2, 3}));
}

TEST(Macroblock, GradientOfPureColorIsZero)
{
    Macroblock m(4);
    m.fill(Pixel{200, 100, 50});
    const Macroblock gab = m.gradient();
    for (std::uint8_t b : gab.bytes()) {
        EXPECT_EQ(b, 0);
    }
}

TEST(Macroblock, GradientRoundTripIsLossless)
{
    Random rng(1);
    for (int i = 0; i < 200; ++i) {
        const Macroblock m = randomMab(rng);
        const Macroblock rebuilt =
            Macroblock::fromGradient(m.gradient(), m.base());
        EXPECT_EQ(rebuilt, m) << "iteration " << i;
    }
}

TEST(Macroblock, GradientInvariantUnderShift)
{
    // The core gab property (paper Fig. 8e): shifting every pixel by
    // a constant leaves the gradient block unchanged.
    Random rng(2);
    for (int i = 0; i < 200; ++i) {
        const Macroblock m = randomMab(rng);
        const auto dr = static_cast<std::uint8_t>(rng.next());
        const auto dg = static_cast<std::uint8_t>(rng.next());
        const auto db = static_cast<std::uint8_t>(rng.next());
        const Macroblock shifted = m.shifted(dr, dg, db);
        EXPECT_EQ(m.gradient(), shifted.gradient());
        if (dr || dg || db) {
            // Content differs but gradient digest matches.
            EXPECT_EQ(m.gradientDigest(HashKind::kCrc32),
                      shifted.gradientDigest(HashKind::kCrc32));
        }
    }
}

TEST(Macroblock, ShiftWrapsModulo256)
{
    Macroblock m(2);
    m.fill(Pixel{250, 250, 250});
    const Macroblock s = m.shifted(10, 10, 10);
    EXPECT_EQ(s.pixel(0), (Pixel{4, 4, 4}));
}

TEST(Macroblock, DigestDiscriminatesContent)
{
    Random rng(3);
    const Macroblock a = randomMab(rng);
    Macroblock b = a;
    b.bytes()[17] ^= 1;
    EXPECT_NE(a.digest(HashKind::kCrc32), b.digest(HashKind::kCrc32));
    EXPECT_EQ(a.digest(HashKind::kCrc32),
              Macroblock(a).digest(HashKind::kCrc32));
}

TEST(Macroblock, GradientFirstPixelAlwaysZero)
{
    Random rng(4);
    for (int i = 0; i < 50; ++i) {
        const Macroblock gab = randomMab(rng).gradient();
        EXPECT_EQ(gab.pixel(0), (Pixel{0, 0, 0}));
    }
}

TEST(MacroblockDeath, WrongByteCount)
{
    EXPECT_DEATH(Macroblock(4, std::vector<std::uint8_t>(47)),
                 "byte count");
}

TEST(Frame, GeometryAndChecksum)
{
    Frame f(3, FrameType::kP, 8, 4, 4);
    EXPECT_EQ(f.mabCount(), 32u);
    EXPECT_EQ(f.decodedBytes(), 32u * 48u);
    const auto c0 = f.contentChecksum();
    f.mab(7).fill(Pixel{9, 9, 9});
    EXPECT_NE(f.contentChecksum(), c0);
    EXPECT_EQ(&f.mabAt(7, 0), &f.mab(7));
}

TEST(Gop, PatternParsing)
{
    const GopStructure gop("IBBPBBPBB");
    EXPECT_EQ(gop.period(), 9u);
    EXPECT_EQ(gop.frameType(0), FrameType::kI);
    EXPECT_EQ(gop.frameType(1), FrameType::kB);
    EXPECT_EQ(gop.frameType(3), FrameType::kP);
    EXPECT_EQ(gop.frameType(9), FrameType::kI);
    EXPECT_NEAR(gop.typeFraction(FrameType::kI), 1.0 / 9.0, 1e-12);
    EXPECT_NEAR(gop.typeFraction(FrameType::kB), 6.0 / 9.0, 1e-12);
}

TEST(Gop, FrameZeroForcedI)
{
    const GopStructure gop("PPPPI");
    EXPECT_EQ(gop.frameType(0), FrameType::kI);
}

TEST(GopDeath, RejectsBadPatterns)
{
    EXPECT_DEATH(GopStructure(""), "empty");
    EXPECT_DEATH(GopStructure("IPX"), "bad GOP pattern");
    EXPECT_DEATH(GopStructure("PPP"), "at least one I");
}

TEST(VideoProfile, DerivedQuantities)
{
    VideoProfile p;
    p.width = 256;
    p.height = 144;
    p.mab_dim = 4;
    p.fps = 60;
    EXPECT_EQ(p.mabsX(), 64u);
    EXPECT_EQ(p.mabsY(), 36u);
    EXPECT_EQ(p.mabsPerFrame(), 2304u);
    EXPECT_EQ(p.decodedFrameBytes(), 256u * 144u * 3u);
    EXPECT_EQ(p.framePeriodTicks(),
              sim_clock::s / 60);
    p.validate();
}

TEST(VideoProfileDeath, RejectsBadGeometry)
{
    VideoProfile p;
    p.width = 255; // not a multiple of mab_dim
    EXPECT_DEATH(p.validate(), "multiples of mab_dim");
}

TEST(VideoProfileDeath, RejectsOverfullRates)
{
    VideoProfile p;
    p.intra_match_rate = 0.6;
    p.inter_match_rate = 0.5;
    EXPECT_DEATH(p.validate(), "similarity rates");
}

VideoProfile
testProfile()
{
    VideoProfile p;
    p.key = "T";
    p.width = 64;
    p.height = 32;
    p.frame_count = 20;
    p.seed = 77;
    return p;
}

TEST(SyntheticVideo, DeterministicForSeed)
{
    SyntheticVideo a(testProfile());
    SyntheticVideo b(testProfile());
    while (!a.done()) {
        const Frame fa = a.nextFrame();
        const Frame fb = b.nextFrame();
        ASSERT_EQ(fa.contentChecksum(), fb.contentChecksum());
        ASSERT_EQ(fa.type(), fb.type());
        ASSERT_DOUBLE_EQ(fa.complexity(), fb.complexity());
    }
    EXPECT_TRUE(b.done());
}

TEST(SyntheticVideo, DifferentSeedsDifferentContent)
{
    auto p2 = testProfile();
    p2.seed = 78;
    SyntheticVideo a(testProfile());
    SyntheticVideo b(p2);
    EXPECT_NE(a.nextFrame().contentChecksum(),
              b.nextFrame().contentChecksum());
}

TEST(SyntheticVideo, ResetReplaysIdentically)
{
    SyntheticVideo v(testProfile());
    const auto first = v.nextFrame().contentChecksum();
    v.nextFrame();
    v.reset();
    EXPECT_EQ(v.framesEmitted(), 0u);
    EXPECT_EQ(v.nextFrame().contentChecksum(), first);
}

TEST(SyntheticVideo, IntraCopiesAreExactDuplicates)
{
    SyntheticVideo v(testProfile());
    const Frame f = v.nextFrame();
    std::uint32_t checked = 0;
    for (std::uint32_t i = 0; i < f.mabCount(); ++i) {
        if (f.origin(i) != MabOrigin::kIntraCopy) {
            continue;
        }
        // An intra copy must match some earlier mab exactly.
        bool found = false;
        for (std::uint32_t j = 0; j < i && !found; ++j) {
            found = (f.mab(j) == f.mab(i));
        }
        EXPECT_TRUE(found) << "mab " << i;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(SyntheticVideo, GradientShiftsMatchOnlyUnderGab)
{
    auto p = testProfile();
    p.intra_match_rate = 0.0;
    p.inter_match_rate = 0.0;
    p.gradient_shift_rate = 0.5;
    p.pure_color_rate = 0.0;
    p.smooth_rate = 0.0;
    SyntheticVideo v(p);
    const Frame f = v.nextFrame();
    std::uint32_t gab_only = 0;
    for (std::uint32_t i = 0; i < f.mabCount(); ++i) {
        if (f.origin(i) != MabOrigin::kGradientShift) {
            continue;
        }
        bool exact = false, gab = false;
        for (std::uint32_t j = 0; j < i; ++j) {
            exact = exact || f.mab(j) == f.mab(i);
            gab = gab || f.mab(j).gradient() == f.mab(i).gradient();
        }
        EXPECT_TRUE(gab) << "mab " << i;
        if (!exact) {
            ++gab_only;
        }
    }
    EXPECT_GT(gab_only, 0u);
}

TEST(SyntheticVideo, ComplexityMeanNearOne)
{
    auto p = testProfile();
    p.frame_count = 400;
    SyntheticVideo v(p);
    double sum = 0.0;
    while (!v.done()) {
        sum += v.nextFrame().complexity();
    }
    EXPECT_NEAR(sum / 400.0, 1.0, 0.05);
}

TEST(SyntheticVideo, EncodedBytesLargerForIFrames)
{
    auto p = testProfile();
    p.gop_pattern = "IPPPPPPP";
    p.frame_count = 16;
    SyntheticVideo v(p);
    std::uint64_t i_bytes = 0, p_bytes = 0, i_n = 0, p_n = 0;
    while (!v.done()) {
        const Frame f = v.nextFrame();
        if (f.type() == FrameType::kI) {
            i_bytes += f.encodedBytes();
            ++i_n;
        } else {
            p_bytes += f.encodedBytes();
            ++p_n;
        }
    }
    EXPECT_GT(i_bytes / i_n, 2 * (p_bytes / p_n));
}

TEST(SyntheticVideoDeath, ExhaustionPanics)
{
    auto p = testProfile();
    p.frame_count = 1;
    SyntheticVideo v(p);
    v.nextFrame();
    EXPECT_DEATH(v.nextFrame(), "exhausted");
}

TEST(Workloads, TableHasSixteenDistinctVideos)
{
    const auto &table = workloadTable();
    ASSERT_EQ(table.size(), 16u);
    std::set<std::string> keys;
    std::set<std::uint64_t> seeds;
    for (const auto &p : table) {
        keys.insert(p.key);
        seeds.insert(p.seed);
        p.validate();
    }
    EXPECT_EQ(keys.size(), 16u);
    EXPECT_EQ(seeds.size(), 16u);
    EXPECT_EQ(workload("V8").name, "007 Skyfall");
    EXPECT_EQ(workload("V1").frame_count, 6507u);
}

TEST(WorkloadsDeath, UnknownKeyFatal)
{
    EXPECT_DEATH(workload("V17"), "unknown workload");
}

TEST(Workloads, ScaledCapsFramesAndResolution)
{
    const VideoProfile p = scaledWorkload("V3", 50, 128, 64);
    EXPECT_EQ(p.frame_count, 50u);
    EXPECT_EQ(p.width, 128u);
    EXPECT_EQ(p.height, 64u);
    // No cap requested leaves the count alone.
    EXPECT_EQ(scaledWorkload("V3", 0).frame_count, 3593u);
}

class WorkloadSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WorkloadSweep, GeneratorHonorsFrameTypeSchedule)
{
    const auto &p0 = workloadTable()[GetParam()];
    VideoProfile p = scaledWorkload(p0.key, 12, 64, 32);
    const GopStructure gop(p.gop_pattern);
    SyntheticVideo v(p);
    for (std::uint64_t i = 0; !v.done(); ++i) {
        EXPECT_EQ(v.nextFrame().type(), gop.frameType(i));
    }
}

INSTANTIATE_TEST_SUITE_P(AllVideos, WorkloadSweep,
                         ::testing::Range(0, 16));

} // namespace
} // namespace vstream
