/**
 * @file
 * Cross-module integration sweep: every Table-1 workload runs the
 * full pipeline under several schemes at small scale, and the suite
 * checks the conservation laws and orderings that tie the subsystems
 * together (ledger consistency, traffic accounting, drop behaviour,
 * losslessness).
 */

#include <gtest/gtest.h>

#include "core/video_pipeline.hh"
#include "video/similarity.hh"
#include "video/workloads.hh"

namespace vstream
{
namespace
{

VideoProfile
smallWorkload(int idx)
{
    return scaledWorkload(workloadTable()[static_cast<std::size_t>(idx)].key,
                          24, 96, 48);
}

class VideoSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(VideoSweep, GabPipelineInvariants)
{
    const VideoProfile p = smallWorkload(GetParam());
    const PipelineResult r =
        simulateScheme(p, SchemeConfig::make(Scheme::kGab));

    // Scheduling: batching eliminates drops.
    EXPECT_EQ(r.drops, 0u) << p.key;

    // Losslessness (or an accounted digest collision).
    EXPECT_TRUE(r.all_verified || r.mach.collisions_undetected > 0)
        << p.key;

    // MACH bookkeeping: lookups partition into hits and misses, and
    // every miss inserted a unique block.
    EXPECT_EQ(r.mach.lookups, r.mach.hits() + r.mach.misses);
    EXPECT_EQ(r.mach.inserts, r.mach.misses);
    EXPECT_EQ(r.mach.lookups,
              static_cast<std::uint64_t>(p.mabsPerFrame()) * r.frames);

    // Writeback accounting: every mab is unique, intra or inter.
    EXPECT_EQ(r.writeback.mabs,
              r.writeback.unique_blocks + r.writeback.intra_matches +
                  r.writeback.inter_matches);
    // Compacted frames can never exceed the linear footprint by more
    // than the metadata overhead bound (7 B + pointer per mab).
    EXPECT_LE(r.writeback.totalBytes(),
              r.writeback.baselineBytes(48) +
                  r.writeback.mabs * 8);

    // DRAM ledger: requester splits sum below the total, and bytes
    // follow bursts exactly.
    const auto &tot = r.dram_total;
    EXPECT_LE(r.dram_vd.activations + r.dram_dc.activations,
              tot.activations);
    EXPECT_EQ(tot.bytes_read, tot.read_bursts * 32u);
    EXPECT_EQ(tot.bytes_written, tot.write_bursts * 32u);
    EXPECT_LE(tot.row_hits, tot.read_bursts + tot.write_bursts);

    // Energy ledger: all categories non-negative, breakdown sums.
    EXPECT_NEAR(r.energy.total(),
                r.energy.dc + r.energy.mem_background +
                    r.energy.vd_processing + r.energy.sleep +
                    r.energy.short_slack + r.energy.mem_burst +
                    r.energy.mem_act_pre + r.energy.transition +
                    r.energy.mach_overhead,
                1e-12);
    EXPECT_GT(r.energy.mach_overhead, 0.0);

    // Display accounting: every record classified.
    EXPECT_EQ(r.display.verify_failures > 0, !r.all_verified);
    EXPECT_GT(r.display.frames_shown, 0u);
}

TEST_P(VideoSweep, SchemeOrderingHoldsPerVideo)
{
    // Needs a realistic run length: on very short clips the racing
    // P-state premium is not amortized (a real effect, not a bug).
    VideoProfile p = smallWorkload(GetParam());
    p.frame_count = 72;
    const double l =
        simulateScheme(p, SchemeConfig::make(Scheme::kBaseline))
            .totalEnergy();
    const double s =
        simulateScheme(p, SchemeConfig::make(Scheme::kRaceToSleep))
            .totalEnergy();
    const double g = simulateScheme(p, SchemeConfig::make(Scheme::kGab))
                         .totalEnergy();
    EXPECT_LT(s, l) << p.key;
    // GAB never loses meaningfully; V9 is the paper's own noted
    // near-break-even case (low-similarity game content), and at
    // this tiny scale the MACH overhead weighs relatively more.
    EXPECT_LT(g, s * 1.05) << p.key;
}

TEST_P(VideoSweep, MachCaptureBoundedByUnboundedSimilarity)
{
    // The finite MACH can never find more gab matches than exist.
    const VideoProfile p = smallWorkload(GetParam());
    const PipelineResult r =
        simulateScheme(p, SchemeConfig::make(Scheme::kGab));
    const SimilarityReport sim = analyzeSimilarity(p, 0, 8);

    const auto upper = sim.intra_gab + sim.inter_gab;
    EXPECT_LE(r.mach.hits(), upper + upper / 10 + 16) << p.key;
}

TEST_P(VideoSweep, DisplayTrafficBoundedByDecodedFootprint)
{
    const VideoProfile p = smallWorkload(GetParam());
    const PipelineResult r =
        simulateScheme(p, SchemeConfig::make(Scheme::kBaseline));
    // The baseline DC reads each displayed frame exactly once (plus
    // re-renders), never more.
    const std::uint64_t per_frame = p.mabsPerFrame() * 48ULL;
    EXPECT_LE(r.display.bytes_read,
              per_frame * (r.frames + r.display.re_renders));
    EXPECT_GE(r.display.bytes_read, per_frame);
}

INSTANTIATE_TEST_SUITE_P(AllVideos, VideoSweep,
                         ::testing::Range(0, 16));

TEST(Integration, SixSchemesShareIdenticalContent)
{
    // The decoder sees byte-identical frames under every scheme -
    // the property that makes Fig. 11 comparisons meaningful.
    const VideoProfile p = smallWorkload(7); // V8
    std::vector<std::uint64_t> lookups;
    for (Scheme s : {Scheme::kMab, Scheme::kGab}) {
        const auto r = simulateScheme(p, SchemeConfig::make(s));
        lookups.push_back(r.mach.lookups);
    }
    EXPECT_EQ(lookups[0], lookups[1]);
}

TEST(Integration, EnergyScalesRoughlyLinearlyWithFrames)
{
    VideoProfile p = smallWorkload(4);
    p.frame_count = 24;
    const double e24 =
        simulateScheme(p, SchemeConfig::make(Scheme::kRaceToSleep))
            .totalEnergy();
    p.frame_count = 48;
    const double e48 =
        simulateScheme(p, SchemeConfig::make(Scheme::kRaceToSleep))
            .totalEnergy();
    EXPECT_GT(e48 / e24, 1.7);
    EXPECT_LT(e48 / e24, 2.3);
}

TEST(Integration, HigherResolutionMoreTrafficSameShape)
{
    VideoProfile lo = smallWorkload(7);
    VideoProfile hi = lo;
    hi.width = 192;
    hi.height = 96;
    const auto rl = simulateScheme(lo, SchemeConfig::make(Scheme::kGab));
    const auto rh = simulateScheme(hi, SchemeConfig::make(Scheme::kGab));
    // 4x the pixels -> ~4x the decoder traffic.
    const double ratio =
        static_cast<double>(rh.dram_vd.bytes_written) /
        static_cast<double>(rl.dram_vd.bytes_written);
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 6.0);
    EXPECT_TRUE(rh.all_verified || rh.mach.collisions_undetected > 0);
}

} // namespace
} // namespace vstream
