/**
 * @file
 * Edge tests for the flat open-addressing tables: zero-capacity
 * construction, rehash triggered mid-insert at the maximum load
 * factor, and tombstone bookkeeping under erase-heavy churn.  The
 * erase path must never perturb a table that does not erase — the
 * determinism contract pins byte-identical stats output — so these
 * tests also nail the exact growth points the insert-only seed had.
 *
 * Run under the asan-ubsan preset these double as lifetime checks
 * for the move-based rehash and the value-release on erase.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "core/flat_table.hh"

namespace vstream
{
namespace
{

TEST(FlatMap, ZeroCapacityConstruction)
{
    FlatMap<std::uint32_t, int> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(0u), nullptr);
    EXPECT_EQ(m.find(0xffffffffu), nullptr);
    EXPECT_FALSE(m.erase(7u));
    int visits = 0;
    m.forEach([&](std::uint32_t, int) { ++visits; });
    EXPECT_EQ(visits, 0);
    // clear() on a never-used table is a no-op, not a crash.
    m.clear();
    EXPECT_EQ(m.capacity(), 0u);
}

TEST(FlatMap, FirstInsertAllocatesSixteen)
{
    FlatMap<std::uint64_t, int> m;
    m[42] = 1;
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.capacity(), 16u);
}

TEST(FlatMap, RehashMidInsertAtMaxLoadFactor)
{
    // Load factor is 3/4: a 16-slot table holds 12 entries, and the
    // 13th insert must grow to 32 mid-insert without losing any
    // entry inserted so far (these growth points are the insert-only
    // seed's, unchanged by tombstone support).
    FlatMap<std::uint32_t, std::uint32_t> m;
    for (std::uint32_t k = 0; k < 12; ++k) {
        m[k] = k * 10;
    }
    ASSERT_EQ(m.size(), 12u);
    ASSERT_EQ(m.capacity(), 16u);

    m[12] = 120; // crosses (size + 1) * 4 > capacity * 3
    EXPECT_EQ(m.size(), 13u);
    EXPECT_EQ(m.capacity(), 32u);
    for (std::uint32_t k = 0; k <= 12; ++k) {
        const auto *v = m.find(k);
        ASSERT_NE(v, nullptr) << "key " << k << " lost in rehash";
        EXPECT_EQ(*v, k * 10);
    }
}

TEST(FlatMap, EraseThenFindMiss)
{
    FlatMap<std::uint32_t, int> m;
    m[1] = 10;
    m[2] = 20;
    EXPECT_TRUE(m.erase(1u));
    EXPECT_FALSE(m.erase(1u)); // already gone
    EXPECT_EQ(m.find(1u), nullptr);
    ASSERT_NE(m.find(2u), nullptr); // probes walk over the tombstone
    EXPECT_EQ(*m.find(2u), 20);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TombstoneReuseUnderChurn)
{
    // Erase+reinsert of one key must reuse its tombstone: thousands
    // of cycles may not grow the table past the first allocation.
    FlatMap<std::uint64_t, std::uint64_t> m;
    m[99] = 0;
    ASSERT_EQ(m.capacity(), 16u);
    for (std::uint64_t cycle = 1; cycle <= 4096; ++cycle) {
        ASSERT_TRUE(m.erase(99u));
        m[99] = cycle;
    }
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.capacity(), 16u);
    ASSERT_NE(m.find(99u), nullptr);
    EXPECT_EQ(*m.find(99u), 4096u);
}

TEST(FlatMap, EraseHeavyChurnKeepsEveryLiveKey)
{
    // Rolling window: insert k, erase k-64; the live set is always
    // the last 64 keys.  Same-size rehashes reclaim tombstones, so
    // the table stays near the size a 64-entry table needs instead
    // of growing with the total insert count.
    FlatMap<std::uint32_t, std::uint32_t> m;
    constexpr std::uint32_t kWindow = 64;
    constexpr std::uint32_t kTotal = 20000;
    for (std::uint32_t k = 0; k < kTotal; ++k) {
        m[k] = k ^ 0xa5a5a5a5u;
        if (k >= kWindow) {
            ASSERT_TRUE(m.erase(k - kWindow));
        }
    }
    EXPECT_EQ(m.size(), kWindow);
    // 64 live entries need 128 slots at 3/4 load; churn headroom may
    // hold one doubling more, but unbounded growth means tombstones
    // leak into the load factor.
    EXPECT_LE(m.capacity(), 256u);
    for (std::uint32_t k = kTotal - kWindow; k < kTotal; ++k) {
        const auto *v = m.find(k);
        ASSERT_NE(v, nullptr) << "live key " << k << " lost";
        EXPECT_EQ(*v, k ^ 0xa5a5a5a5u);
    }
    EXPECT_EQ(m.find(0u), nullptr);
    EXPECT_EQ(m.find(kTotal - kWindow - 1), nullptr);
}

TEST(FlatMap, ForEachSkipsErased)
{
    FlatMap<std::uint32_t, std::uint32_t> m;
    for (std::uint32_t k = 0; k < 10; ++k) {
        m[k] = 1;
    }
    for (std::uint32_t k = 0; k < 10; k += 2) {
        ASSERT_TRUE(m.erase(k));
    }
    std::uint32_t visits = 0;
    std::uint32_t key_sum = 0;
    m.forEach([&](std::uint32_t k, std::uint32_t v) {
        ++visits;
        key_sum += k;
        EXPECT_EQ(v, 1u);
        EXPECT_EQ(k % 2, 1u);
    });
    EXPECT_EQ(visits, 5u);
    EXPECT_EQ(key_sum, 1u + 3u + 5u + 7u + 9u);
}

TEST(FlatMap, ClearDropsTombstones)
{
    FlatMap<std::uint32_t, int> m;
    for (std::uint32_t k = 0; k < 8; ++k) {
        m[k] = 1;
    }
    for (std::uint32_t k = 0; k < 8; ++k) {
        m.erase(k);
    }
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    const std::size_t cap = m.capacity(); // allocation kept
    EXPECT_EQ(cap, 16u);
    // A cleared table behaves like a fresh one of the same capacity.
    for (std::uint32_t k = 100; k < 108; ++k) {
        m[k] = static_cast<int>(k);
    }
    EXPECT_EQ(m.size(), 8u);
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, EraseReleasesHeldValue)
{
    // erase() must drop the held value, not park it in the
    // tombstone: a later reinsert of the key starts from Value{}.
    FlatMap<std::uint32_t, std::vector<int>> m;
    m[5].assign(1000, 7);
    ASSERT_TRUE(m.erase(5u));
    EXPECT_TRUE(m[5].empty());
}

TEST(FlatMap, MoveOnlyValuesSurviveRehashAndErase)
{
    FlatMap<std::uint32_t, std::unique_ptr<std::uint32_t>> m;
    for (std::uint32_t k = 0; k < 40; ++k) { // forces two rehashes
        m[k] = std::make_unique<std::uint32_t>(k * 3);
    }
    for (std::uint32_t k = 0; k < 40; k += 3) {
        ASSERT_TRUE(m.erase(k));
    }
    for (std::uint32_t k = 0; k < 40; ++k) {
        const auto *v = m.find(k);
        if (k % 3 == 0) {
            EXPECT_EQ(v, nullptr);
        } else {
            ASSERT_NE(v, nullptr);
            ASSERT_NE(v->get(), nullptr);
            EXPECT_EQ(**v, k * 3);
        }
    }
}

TEST(FlatMap, ReserveThenFillNoRehash)
{
    FlatMap<std::uint32_t, int> m;
    m.reserve(100);
    const std::size_t cap = m.capacity();
    EXPECT_GE(cap * 3, 100u * 4 / 2); // sanity: big enough
    for (std::uint32_t k = 0; k < 100; ++k) {
        m[k] = 1;
    }
    EXPECT_EQ(m.capacity(), cap) << "reserve(100) must cover 100";
}

TEST(FlatSet, ZeroCapacityConstruction)
{
    FlatSet<std::uint32_t> s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.capacity(), 0u);
    EXPECT_FALSE(s.contains(0u));
    EXPECT_FALSE(s.erase(0u));
}

TEST(FlatSet, InsertEraseChurn)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(1u));
    EXPECT_FALSE(s.insert(1u)); // duplicate
    EXPECT_TRUE(s.contains(1u));
    EXPECT_TRUE(s.erase(1u));
    EXPECT_FALSE(s.contains(1u));
    EXPECT_FALSE(s.erase(1u));
    for (int cycle = 0; cycle < 2048; ++cycle) {
        EXPECT_TRUE(s.insert(7u));
        EXPECT_TRUE(s.erase(7u));
    }
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.capacity(), 16u);
}

} // namespace
} // namespace vstream
