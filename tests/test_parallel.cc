/**
 * @file
 * Tests for the parallel simulation driver: deterministic result
 * order at any job count, inline serial fallback, jobs parsing, and
 * exception propagation.  This pins the determinism contract that
 * lets bench output stay byte-identical across --jobs values.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/parallel.hh"

namespace vstream
{
namespace
{

/** Keep @p v alive past the optimiser without volatile. */
void
benchmarkDoNotElide(std::uint64_t v)
{
    static std::atomic<std::uint64_t> sink{0};
    sink.fetch_add(v, std::memory_order_relaxed);
}

TEST(Parallel, EffectiveJobsClampsToWorkAndFloorsAtOne)
{
    EXPECT_EQ(effectiveJobs(0, 10), 1u);
    EXPECT_EQ(effectiveJobs(1, 10), 1u);
    EXPECT_EQ(effectiveJobs(4, 10), 4u);
    EXPECT_EQ(effectiveJobs(16, 3), 3u);
    EXPECT_EQ(effectiveJobs(8, 0), 1u);
    EXPECT_EQ(effectiveJobs(8, 1), 1u);
}

TEST(Parallel, ParseJobsFallsBackToSerial)
{
    EXPECT_EQ(parseJobs("8"), 8u);
    EXPECT_EQ(parseJobs("1"), 1u);
    EXPECT_EQ(parseJobs("0"), 1u);
    EXPECT_EQ(parseJobs("-3"), 1u);
    EXPECT_EQ(parseJobs("banana"), 1u);
    EXPECT_EQ(parseJobs(""), 1u);
}

TEST(Parallel, ForVisitsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        constexpr std::size_t n = 257;
        std::vector<std::atomic<int>> visits(n);
        parallelFor(jobs, n,
                    [&](std::size_t i) { visits[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(visits[i].load(), 1) << "index " << i
                                           << " jobs " << jobs;
        }
    }
}

TEST(Parallel, SerialPathRunsInline)
{
    // jobs <= 1 and n <= 1 must not spawn threads: every unit runs
    // on the calling thread, in index order.
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallelFor(1, 5, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));

    order.clear();
    parallelFor(8, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0}));
}

TEST(Parallel, MapKeepsCanonicalOrderAtAnyJobCount)
{
    constexpr std::size_t n = 100;
    const auto fn = [](std::size_t i) {
        // Unequal unit costs so completion order differs from index
        // order when threaded.
        std::uint64_t spin = 0;
        for (std::size_t k = 0; k < (i % 7) * 1000; ++k) {
            spin += k;
        }
        benchmarkDoNotElide(spin);
        return i * i + 1;
    };
    const std::vector<std::size_t> serial = parallelMap(1, n, fn);
    for (unsigned jobs : {2u, 3u, 8u}) {
        EXPECT_EQ(parallelMap(jobs, n, fn), serial)
            << "jobs " << jobs;
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(serial[i], i * i + 1);
    }
}

TEST(Parallel, MapSupportsMoveOnlyResultsByValue)
{
    const std::vector<std::string> got =
        parallelMap(4, 10, [](std::size_t i) {
            return std::string(i, 'x');
        });
    ASSERT_EQ(got.size(), 10u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], std::string(i, 'x'));
    }
}

TEST(Parallel, FirstExceptionIsRethrownAfterJoin)
{
    for (unsigned jobs : {1u, 4u}) {
        std::atomic<int> ran{0};
        bool threw = false;
        try {
            parallelFor(jobs, 64, [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 13) {
                    throw std::runtime_error("unit 13 failed");
                }
            });
        } catch (const std::runtime_error &e) {
            threw = true;
            EXPECT_STREQ(e.what(), "unit 13 failed");
        }
        EXPECT_TRUE(threw) << "jobs " << jobs;
        EXPECT_GE(ran.load(), 1);
    }
}

TEST(Parallel, PoolSpawnsOnceThenReusesWorkers)
{
    // Warmup: the first threaded call at this width spawns helpers.
    parallelFor(4, 64, [](std::size_t i) {
        benchmarkDoNotElide(i);
    });
    const std::uint64_t spawned =
        ThreadPool::instance().threadsSpawned();
    EXPECT_GE(spawned, 3u); // jobs=4 -> caller + >= 3 helpers ever

    // Steady state: repeated fan-out at or below the warmed width
    // must not spawn a single additional thread.
    for (int round = 0; round < 25; ++round) {
        parallelFor(1 + round % 4, 64, [](std::size_t i) {
            benchmarkDoNotElide(i * 3);
        });
    }
    EXPECT_EQ(ThreadPool::instance().threadsSpawned(), spawned);
    EXPECT_GE(ThreadPool::instance().workersAlive(), 3u);
}

TEST(Parallel, NestedFanOutRunsInlineOnTheOwningThread)
{
    // A parallelFor issued from inside a running unit - whether the
    // unit landed on a pool worker or on the caller thread - must run
    // inline and serially: no re-entry into the pool, no new spawns.
    parallelFor(2, 8, [](std::size_t) {});
    const std::uint64_t spawned =
        ThreadPool::instance().threadsSpawned();

    constexpr std::size_t kOuter = 4;
    constexpr std::size_t kInner = 16;
    std::vector<std::thread::id> unit_thread(kOuter);
    std::vector<std::vector<std::thread::id>> inner_thread(
        kOuter, std::vector<std::thread::id>(kInner));
    std::vector<std::vector<std::size_t>> inner_order(kOuter);
    parallelFor(2, kOuter, [&](std::size_t u) {
        unit_thread[u] = std::this_thread::get_id();
        parallelFor(8, kInner, [&](std::size_t i) {
            inner_thread[u][i] = std::this_thread::get_id();
            inner_order[u].push_back(i);
        });
    });

    for (std::size_t u = 0; u < kOuter; ++u) {
        std::vector<std::size_t> want(kInner);
        for (std::size_t i = 0; i < kInner; ++i) {
            want[i] = i;
            EXPECT_EQ(inner_thread[u][i], unit_thread[u])
                << "unit " << u << " inner " << i;
        }
        EXPECT_EQ(inner_order[u], want) << "unit " << u;
    }
    EXPECT_EQ(ThreadPool::instance().threadsSpawned(), spawned);
}

TEST(Parallel, ZeroUnitsIsANoOp)
{
    parallelFor(8, 0, [](std::size_t) { FAIL() << "ran a unit"; });
    EXPECT_TRUE(parallelMap(8, 0, [](std::size_t) { return 1; })
                    .empty());
}

} // namespace
} // namespace vstream
