/**
 * @file
 * Kernel-equivalence tests for the runtime-dispatched pixel kernels
 * (video/pixel_kernels.hh) and the batched digest paths
 * (hash/hasher.hh).  Every SIMD variant must produce bytes identical
 * to the scalar reference at every size, alignment and tail shape -
 * the digest-stability contract that lets VSTREAM_*_IMPL switch
 * kernels without perturbing simulation output.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hash/hasher.hh"
#include "video/pixel.hh"
#include "video/pixel_kernels.hh"

namespace vstream
{
namespace
{

/** Deterministic byte stream (no RNG state shared with the sim). */
std::vector<std::uint8_t>
patternBytes(std::size_t len, std::uint64_t seed)
{
    std::vector<std::uint8_t> v(len);
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
    for (std::size_t i = 0; i < len; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v[i] = static_cast<std::uint8_t>(x);
    }
    return v;
}

/**
 * The mod-256 r,g,b-cycling reference every kernel is pinned to:
 * exactly floor(len / 3) whole pixels are transformed and trailing
 * ragged bytes are left untouched in dst (the documented contract;
 * sim lengths are always a multiple of 3).
 */
void
referenceSub(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t len, const Pixel &base)
{
    for (std::size_t i = 0; i + 3 <= len; i += 3) {
        dst[i] = static_cast<std::uint8_t>(src[i] - base.r);
        dst[i + 1] = static_cast<std::uint8_t>(src[i + 1] - base.g);
        dst[i + 2] = static_cast<std::uint8_t>(src[i + 2] - base.b);
    }
}

// Sizes exercise empty input, sub-vector tails, the SSE2 48-byte and
// AVX2 96-byte strides exactly, one-off tails around both strides,
// non-multiple-of-3 lengths, and full 16x16x3 macroblocks.
const std::size_t kSizes[] = {0,  1,  2,  3,  15,  16,  17,  47,
                              48, 49, 95, 96, 97,  100, 192, 300,
                              767, 768, 769, 3072};

TEST(GradientKernels, RegistryListsScalarFirstAndActiveIsAvailable)
{
    const auto kernels = availableGradientKernels();
    ASSERT_FALSE(kernels.empty());
    EXPECT_EQ(kernels.front(), GradientKernel::kScalar);
    bool active_listed = false;
    for (GradientKernel k : kernels) {
        EXPECT_NE(std::string(gradientKernelName(k)), "");
        active_listed |= k == activeGradientKernel();
    }
    EXPECT_TRUE(active_listed);
}

TEST(GradientKernels, SubMatchesScalarReferenceAtEverySizeAndOffset)
{
    const Pixel base{211, 3, 97};
    for (GradientKernel k : availableGradientKernels()) {
        for (std::size_t len : kSizes) {
            // Offsets walk the buffers off 16-byte alignment so the
            // unaligned-load path is exercised too.
            for (std::size_t off : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}}) {
                const auto backing = patternBytes(len + off, len);
                const std::uint8_t *src = backing.data() + off;
                // 0xEE sentinels pin the untouched-ragged-tail
                // contract as well as the transformed prefix.
                std::vector<std::uint8_t> want(len, 0xEE);
                referenceSub(want.data(), src, len, base);
                std::vector<std::uint8_t> got_backing(len + off, 0xEE);
                gradientSubWith(k, got_backing.data() + off, src, len,
                                base);
                EXPECT_EQ(std::vector<std::uint8_t>(
                              got_backing.begin() +
                                  static_cast<std::ptrdiff_t>(off),
                              got_backing.end()),
                          want)
                    << gradientKernelName(k) << " len " << len
                    << " off " << off;
            }
        }
    }
}

TEST(GradientKernels, AddInvertsSubForEveryKernelPair)
{
    const Pixel base{17, 255, 128};
    for (GradientKernel sub_k : availableGradientKernels()) {
        for (GradientKernel add_k : availableGradientKernels()) {
            for (std::size_t len : kSizes) {
                const auto src = patternBytes(len, 77 + len);
                std::vector<std::uint8_t> gab(len);
                gradientSubWith(sub_k, gab.data(), src.data(), len,
                                base);
                std::vector<std::uint8_t> back(len);
                gradientAddWith(add_k, back.data(), gab.data(), len,
                                base);
                // Only whole pixels round-trip; a ragged tail is
                // untouched by both transforms.
                const std::size_t full = len / 3 * 3;
                EXPECT_TRUE(std::equal(back.begin(),
                                       back.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               full),
                                       src.begin()))
                    << gradientKernelName(sub_k) << " -> "
                    << gradientKernelName(add_k) << " len " << len;
            }
        }
    }
}

TEST(GradientKernels, ExactAliasInPlaceMatchesOutOfPlace)
{
    // Macroblock::addBase runs the kernels with dst == src; every
    // kernel must load each chunk before storing it.
    const Pixel base{5, 250, 77};
    for (GradientKernel k : availableGradientKernels()) {
        for (std::size_t len : kSizes) {
            const auto src = patternBytes(len, 13 * len + 1);
            // In-place leaves the ragged tail holding src bytes.
            std::vector<std::uint8_t> want = src;
            referenceSub(want.data(), src.data(), len, base);
            std::vector<std::uint8_t> in_place = src;
            gradientSubWith(k, in_place.data(), in_place.data(), len,
                            base);
            EXPECT_EQ(in_place, want)
                << gradientKernelName(k) << " len " << len;
        }
    }
}

TEST(SimilarityKernels, RegistryListsScalarFirstAndActiveIsAvailable)
{
    const auto kernels = availableSimilarityKernels();
    ASSERT_FALSE(kernels.empty());
    EXPECT_EQ(kernels.front(), SimilarityKernel::kScalar);
    bool active_listed = false;
    for (SimilarityKernel k : kernels) {
        EXPECT_NE(std::string(similarityKernelName(k)), "");
        active_listed |= k == activeSimilarityKernel();
    }
    EXPECT_TRUE(active_listed);
}

TEST(SimilarityKernels, AgreeOnEqualAndSingleByteDifferingBlocks)
{
    for (SimilarityKernel k : availableSimilarityKernels()) {
        EXPECT_TRUE(blockEqualWith(k, nullptr, nullptr, 0))
            << similarityKernelName(k);
        for (std::size_t len :
             {std::size_t{1}, std::size_t{7}, std::size_t{8},
              std::size_t{9}, std::size_t{15}, std::size_t{16},
              std::size_t{17}, std::size_t{48}, std::size_t{768}}) {
            const auto a = patternBytes(len, len);
            std::vector<std::uint8_t> b = a;
            EXPECT_TRUE(blockEqualWith(k, a.data(), b.data(), len))
                << similarityKernelName(k) << " len " << len;
            // Flip one byte at the head, tail, middle and every
            // vector-boundary-straddling position.
            for (std::size_t p :
                 {std::size_t{0}, len / 2, len - 1}) {
                b = a;
                b[p] ^= 0x80;
                EXPECT_FALSE(
                    blockEqualWith(k, a.data(), b.data(), len))
                    << similarityKernelName(k) << " len " << len
                    << " flip " << p;
            }
        }
    }
}

TEST(SimilarityKernels, VectorConvenienceComparesSizeThenBytes)
{
    const std::vector<std::uint8_t> a = patternBytes(48, 5);
    std::vector<std::uint8_t> b = a;
    EXPECT_TRUE(blockEqual(a, b));
    b.pop_back();
    EXPECT_FALSE(blockEqual(a, b));
}

TEST(BatchDigests, MatchPerBlockDigestsAtEveryCountAndKind)
{
    // The batched whole-frame digest path must agree bit-for-bit with
    // the one-block-at-a-time digests it replaces, including the
    // interleaved-lane remainders (counts not divisible by 4).
    constexpr std::size_t kBlockLen = 48;
    for (std::size_t count :
         {std::size_t{1}, std::size_t{2}, std::size_t{3},
          std::size_t{4}, std::size_t{5}, std::size_t{8},
          std::size_t{13}}) {
        std::vector<std::vector<std::uint8_t>> storage;
        std::vector<const std::uint8_t *> blocks;
        for (std::size_t i = 0; i < count; ++i) {
            storage.push_back(patternBytes(kBlockLen, 1000 + i));
            blocks.push_back(storage.back().data());
        }
        for (HashKind kind :
             {HashKind::kCrc32, HashKind::kMd5, HashKind::kSha1}) {
            std::vector<std::uint32_t> got(count, 0);
            digest32Batch(kind, blocks.data(), kBlockLen, count,
                          got.data());
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(got[i],
                          digest32(kind, blocks[i], kBlockLen))
                    << hashKindName(kind) << " count " << count
                    << " block " << i;
            }
        }
        std::vector<std::uint16_t> aux(count, 0);
        auxDigest16Batch(blocks.data(), kBlockLen, count, aux.data());
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(aux[i], auxDigest16(blocks[i], kBlockLen))
                << "aux count " << count << " block " << i;
        }
    }
}

} // namespace
} // namespace vstream
