/**
 * @file
 * Shared-MACH dedup tier tests: the library/poison spec grammars, the
 * Zipf library's determinism, the per-session recorder, the tier's
 * verify-on-hit / breaker / epoch-quarantine mechanics, and the two
 * headline contracts - dedup changes traffic accounting but never
 * pixels, and poisoning one fault domain never leaks into a
 * neighbour.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/arrivals.hh"
#include "serve/chaos.hh"
#include "serve/fleet_report.hh"
#include "serve/placer.hh"
#include "serve/session.hh"
#include "serve/shard.hh"
#include "serve/shared_mach.hh"
#include "sim/json_writer.hh"
#include "sim/stats_snapshot.hh"
#include "video/library.hh"

namespace vstream
{
namespace
{

// ---------------------------------------------------------------------
// Spec grammars
// ---------------------------------------------------------------------

TEST(LibrarySpec, ParsesWellFormedSpecs)
{
    LibrarySpec s;
    std::string error;
    ASSERT_TRUE(tryParseLibrarySpec("titles=64,skew=0.9,seed=7", s,
                                    error))
        << error;
    EXPECT_EQ(s.titles, 64u);
    EXPECT_DOUBLE_EQ(s.skew, 0.9);
    EXPECT_EQ(s.seed, 7u);

    // titles alone: skew/seed keep their defaults.
    ASSERT_TRUE(tryParseLibrarySpec("titles=1", s, error)) << error;
    EXPECT_EQ(s.titles, 1u);
    EXPECT_DOUBLE_EQ(s.skew, 0.8);

    // Empty fields (stray commas) are tolerated.
    ASSERT_TRUE(tryParseLibrarySpec("titles=4,,skew=0", s, error));
    EXPECT_DOUBLE_EQ(s.skew, 0.0);
}

TEST(LibrarySpec, ParserFailsClosed)
{
    LibrarySpec s;
    s.titles = 99;
    std::string error;
    const auto fails = [&](const std::string &spec) {
        error.clear();
        const bool rejected = !tryParseLibrarySpec(spec, s, error);
        // Rejection always carries a diagnostic.
        return rejected && !error.empty();
    };
    EXPECT_TRUE(fails(""));             // titles=N is required
    EXPECT_TRUE(fails("skew=0.9"));     // ditto
    EXPECT_TRUE(fails("titles=0"));
    EXPECT_TRUE(fails("titles=1048577"));
    EXPECT_TRUE(fails("titles=-4"));
    EXPECT_TRUE(fails("titles=8,skew=nan"));
    EXPECT_TRUE(fails("titles=8,skew=-0.1"));
    EXPECT_TRUE(fails("titles=8,skew=16.5"));
    EXPECT_TRUE(fails("titles=8,seed=12x"));
    EXPECT_TRUE(fails("titles=8,bogus=1"));
    EXPECT_TRUE(fails("titles=8,skew"));
    // Out untouched through every rejection.
    EXPECT_EQ(s.titles, 99u);
}

TEST(DedupPoisonSpec, ParsesAndFailsClosed)
{
    DedupPoisonRule r;
    std::string error;
    ASSERT_TRUE(tryParseDedupPoisonRule("domain=1,rate=0.25,seed=9",
                                        r, error))
        << error;
    EXPECT_EQ(r.domain, 1u);
    EXPECT_DOUBLE_EQ(r.rate, 0.25);
    EXPECT_EQ(r.seed, 9u);

    const auto fails = [&](const std::string &spec) {
        error.clear();
        return !tryParseDedupPoisonRule(spec, r, error) &&
               !error.empty();
    };
    EXPECT_TRUE(fails(""));             // rate=F is required
    EXPECT_TRUE(fails("domain=1"));     // ditto
    EXPECT_TRUE(fails("rate=nan"));
    EXPECT_TRUE(fails("rate=-0.1"));
    EXPECT_TRUE(fails("rate=1.5"));
    EXPECT_TRUE(fails("rate=0.5,domain=4294967296"));
    EXPECT_TRUE(fails("rate=0.5,bogus=1"));
}

// ---------------------------------------------------------------------
// Zipf library
// ---------------------------------------------------------------------

TEST(ZipfLibrary, DrawIsDeterministicAndInRange)
{
    LibrarySpec spec;
    spec.titles = 64;
    spec.skew = 0.9;
    spec.seed = 7;
    const ZipfLibrary a(spec);
    const ZipfLibrary b(spec);
    for (std::uint64_t key = 0; key < 512; ++key) {
        const std::uint32_t t = a.sampleTitle(key);
        EXPECT_LT(t, spec.titles);
        // Pure function of (spec, key): independent instances agree.
        EXPECT_EQ(b.sampleTitle(key), t);
    }
}

TEST(ZipfLibrary, SkewShapesPopularity)
{
    LibrarySpec spec;
    spec.titles = 16;
    spec.skew = 0.0;
    const ZipfLibrary uniform(spec);
    for (std::uint32_t t = 0; t < spec.titles; ++t) {
        EXPECT_NEAR(uniform.weight(t), 1.0 / 16.0, 1e-12);
    }
    spec.skew = 1.2;
    const ZipfLibrary skewed(spec);
    for (std::uint32_t t = 1; t < spec.titles; ++t) {
        EXPECT_GT(skewed.weight(t - 1), skewed.weight(t));
    }
}

TEST(ZipfLibrary, ApplyToMakesTitleContentIdentity)
{
    LibrarySpec spec;
    spec.titles = 8;
    spec.seed = 3;
    const ZipfLibrary lib(spec);

    VideoProfile a, b;
    a.seed = 111;
    b.seed = 222;
    lib.applyTo(a, 5);
    lib.applyTo(b, 5);
    // Same title => same content identity, whatever the sessions'
    // own seeds were.
    EXPECT_EQ(a.key, "T5");
    EXPECT_EQ(a.library_title, 5u);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.seed, b.seed);

    lib.applyTo(b, 6);
    EXPECT_NE(a.seed, b.seed);
    EXPECT_NE(a.key, b.key);
}

// ---------------------------------------------------------------------
// DedupRecorder
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
bytes(std::uint8_t fill, std::size_t n = 48)
{
    return std::vector<std::uint8_t>(n, fill);
}

TEST(DedupRecorder, AccumulatesWritesPerIdentity)
{
    DedupRecorder rec;
    rec.observe(0x10, 1, bytes(0xaa));
    rec.observe(0x10, 1, bytes(0xaa));
    rec.observe(0x20, 2, bytes(0xbb));
    const DedupRecord &r = rec.record();
    ASSERT_EQ(r.blocks.size(), 2u);
    EXPECT_EQ(r.blocks[0].writes, 2u);
    EXPECT_EQ(r.blocks[1].writes, 1u);
    EXPECT_EQ(r.totalWrites(), 3u);
    EXPECT_EQ(r.skipped_collisions, 0u);
}

TEST(DedupRecorder, OrganicCollisionsAreExcluded)
{
    DedupRecorder rec;
    rec.observe(0x10, 1, bytes(0xaa));
    // Same (digest, aux), different content: citing either from the
    // shared tier would be a false hit waiting to happen.
    rec.observe(0x10, 1, bytes(0xcc));
    const DedupRecord &r = rec.record();
    ASSERT_EQ(r.blocks.size(), 1u);
    EXPECT_EQ(r.blocks[0].writes, 1u);
    EXPECT_EQ(r.blocks[0].truth, bytes(0xaa));
    EXPECT_EQ(r.skipped_collisions, 1u);
}

TEST(DedupRecorder, TakeResetsTheLog)
{
    DedupRecorder rec;
    rec.observe(0x10, 1, bytes(0xaa));
    const DedupRecord first = rec.take();
    EXPECT_TRUE(first.any());
    EXPECT_FALSE(rec.record().any());
    // A fresh identity after take() starts a fresh log.
    rec.observe(0x10, 1, bytes(0xaa));
    EXPECT_EQ(rec.record().blocks.size(), 1u);
}

// ---------------------------------------------------------------------
// SharedMachTier mechanics
// ---------------------------------------------------------------------

DedupRecord
record(std::initializer_list<DedupBlock> blocks)
{
    DedupRecord r;
    r.blocks = blocks;
    return r;
}

DedupBlock
block(std::uint32_t digest, std::uint8_t fill,
      std::uint32_t writes = 1)
{
    DedupBlock b;
    b.digest = digest;
    b.aux = 0;
    b.writes = writes;
    b.truth = bytes(fill);
    return b;
}

TEST(SharedMachTier, SharedAndSelfHitsElideWriteBytes)
{
    SharedMachTier tier(DedupConfig{}, 1);

    // First session: publishes one block, repeats it 3 times.
    DedupLease a;
    const DedupSettle sa =
        tier.publish(0, record({block(0x1, 0xaa, 3)}), a);
    EXPECT_EQ(sa.unique_published, 1u);
    EXPECT_EQ(sa.self_hits, 2u);          // repeats vs its own entry
    EXPECT_EQ(sa.shared_hits, 0u);
    EXPECT_EQ(sa.bytes_elided, 2u * 48u);
    EXPECT_EQ(tier.entries(0), 1u);
    EXPECT_EQ(tier.liveRefs(0), 1u);

    // Second session: all 2 writes are shared hits.
    DedupLease b;
    const DedupSettle sb =
        tier.publish(0, record({block(0x1, 0xaa, 2)}), b);
    EXPECT_EQ(sb.shared_hits, 2u);
    EXPECT_EQ(sb.unique_published, 0u);
    EXPECT_EQ(sb.bytes_elided, 2u * 48u);
    EXPECT_EQ(tier.liveRefs(0), 2u);

    // Leases drain; the current-epoch entry stays resident.
    tier.release(a);
    tier.release(b);
    EXPECT_EQ(tier.liveRefs(0), 0u);
    EXPECT_EQ(tier.entries(0), 1u);
    EXPECT_EQ(tier.staleEntries(0), 0u);
}

TEST(SharedMachTier, VerifyOnHitDemotesMismatches)
{
    SharedMachTier tier(DedupConfig{}, 1);
    DedupLease a;
    tier.publish(0, record({block(0x1, 0xaa)}), a);

    // Same identity, different bytes: the byte compare fails closed -
    // no citation, no overwrite, no insert.
    DedupLease b;
    const DedupSettle sb =
        tier.publish(0, record({block(0x1, 0xcc, 5)}), b);
    EXPECT_EQ(sb.false_hits, 1u);
    EXPECT_EQ(sb.shared_hits, 0u);
    EXPECT_EQ(sb.unique_published, 0u);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(tier.entries(0), 1u);

    // The honest entry is still citeable.
    DedupLease c;
    const DedupSettle sc =
        tier.publish(0, record({block(0x1, 0xaa)}), c);
    EXPECT_EQ(sc.shared_hits, 1u);
}

TEST(SharedMachTier, BreakerTripsIntoEpochQuarantine)
{
    DedupConfig cfg;
    cfg.breaker_false_hits = 2;
    cfg.quarantine_consults = 3;
    SharedMachTier tier(cfg, 1);

    // One honest entry, still referenced by its publisher.
    DedupLease honest;
    tier.publish(0, record({block(0x1, 0xaa)}), honest);
    // One unreferenced entry (lease released immediately).
    DedupLease tmp;
    tier.publish(0, record({block(0x2, 0xbb)}), tmp);
    tier.release(tmp);
    EXPECT_EQ(tier.entries(0), 2u);

    // Two mismatching consults against the same slot trip the
    // breaker: epoch bumps, unreferenced entries reclaim at once,
    // referenced ones become stale.
    DedupLease junk;
    tier.publish(0, record({block(0x1, 0xcc)}), junk);
    const DedupSettle trip =
        tier.publish(0, record({block(0x1, 0xdd)}), junk);
    EXPECT_EQ(trip.false_hits, 1u);
    EXPECT_EQ(tier.domainStats(0).trips, 1u);
    EXPECT_EQ(tier.domainStats(0).epoch, 1u);
    EXPECT_TRUE(tier.quarantined(0));
    EXPECT_EQ(tier.entries(0), 1u);       // 0x2 reclaimed instantly
    EXPECT_EQ(tier.staleEntries(0), 1u);  // 0x1 drains via release

    // While quarantined, consults are blocked writes - no sharing,
    // no stats pollution.
    DedupLease blocked;
    const DedupSettle sq =
        tier.publish(0, record({block(0x3, 0xee, 4)}), blocked);
    EXPECT_EQ(sq.blocked_writes, 4u);
    EXPECT_EQ(sq.unique_published, 0u);
    EXPECT_TRUE(blocked.empty());

    // The stale entry's last ref drains => it reclaims, refcounts
    // reach zero, and the pre-trip epoch is fully gone.
    tier.release(honest);
    EXPECT_EQ(tier.liveRefs(0), 0u);
    EXPECT_EQ(tier.staleEntries(0), 0u);
    EXPECT_EQ(tier.entries(0), 0u);

    // Cooldown drains consult-by-consult (the blocked probe above
    // already consumed one of the three); sharing then resumes in
    // the new epoch.
    DedupLease after;
    tier.publish(0, record({block(0x4, 0x11)}), after);   // 1 left
    EXPECT_TRUE(tier.quarantined(0));
    tier.publish(0, record({block(0x5, 0x22)}), after);   // 0 left
    EXPECT_FALSE(tier.quarantined(0));
    const DedupSettle fresh =
        tier.publish(0, record({block(0x6, 0x33)}), after);
    EXPECT_EQ(fresh.unique_published, 1u);
}

TEST(SharedMachTier, WipeVoidsLeasesAndSurvivesStats)
{
    SharedMachTier tier(DedupConfig{}, 2);
    DedupLease a, neighbour;
    tier.publish(0, record({block(0x1, 0xaa)}), a);
    tier.publish(1, record({block(0x9, 0x99)}), neighbour);
    DedupLease lease0;
    tier.publish(0, record({block(0x2, 0xbb)}), lease0);

    const std::uint64_t published_before =
        tier.domainStats(0).unique_published;
    tier.wipeDomain(0);
    EXPECT_EQ(tier.entries(0), 0u);
    EXPECT_EQ(tier.domainStats(0).epoch, 1u);
    // Cumulative stats survive the wipe; the neighbour domain is
    // untouched.
    EXPECT_EQ(tier.domainStats(0).unique_published,
              published_before);
    EXPECT_EQ(tier.entries(1), 1u);
    EXPECT_EQ(tier.domainStats(1).epoch, 0u);

    // Releasing a lease against wiped entries is a no-op, not an
    // underflow.
    tier.release(lease0);
    EXPECT_EQ(tier.liveRefs(0), 0u);
}

TEST(SharedMachTier, RepublishRebuildsContentWithoutStats)
{
    SharedMachTier tier(DedupConfig{}, 1);
    tier.wipeDomain(0); // epoch 1, as after a crash
    const DedupDomainStats before = tier.domainStats(0);

    DedupRecord rec = record({block(0x1, 0xaa, 3)});
    tier.republish(0, rec);
    tier.republish(0, rec); // idempotent: first entry wins
    EXPECT_EQ(tier.entries(0), 1u);
    EXPECT_EQ(tier.liveRefs(0), 0u);

    // No settle counters moved: replay must not double-count.
    const DedupDomainStats after = tier.domainStats(0);
    EXPECT_EQ(after.unique_published, before.unique_published);
    EXPECT_EQ(after.shared_hits, before.shared_hits);
    EXPECT_EQ(after.consults, before.consults);

    // The rebuilt entry is citeable at the current epoch.
    DedupLease lease;
    const DedupSettle s =
        tier.publish(0, record({block(0x1, 0xaa)}), lease);
    EXPECT_EQ(s.shared_hits, 1u);
}

TEST(SharedMachTier, ResetStatsPreservesEpochs)
{
    DedupConfig cfg;
    cfg.breaker_false_hits = 1;
    SharedMachTier tier(cfg, 1);
    DedupLease lease;
    tier.publish(0, record({block(0x1, 0xaa)}), lease);
    tier.publish(0, record({block(0x1, 0xbb)}), lease); // trip
    ASSERT_EQ(tier.domainStats(0).epoch, 1u);
    tier.resetStats();
    EXPECT_EQ(tier.domainStats(0).epoch, 1u); // structural
    EXPECT_EQ(tier.domainStats(0).trips, 0u);
    EXPECT_EQ(tier.domainStats(0).consults, 0u);
}

// ---------------------------------------------------------------------
// Traffic, not pixels
// ---------------------------------------------------------------------

TEST(DedupInvariant, RecordingNeverChangesPixelsOrTiming)
{
    SessionConfig cfg;
    cfg.id = 7;
    cfg.pipeline.profile.key = "T";
    cfg.pipeline.profile.width = 96;
    cfg.pipeline.profile.height = 48;
    cfg.pipeline.profile.frame_count = 48;
    cfg.pipeline.profile.seed = 0xbeef;
    // A MACH scheme: kGab materializes unique blocks, which is what
    // the recorder observes.
    cfg.pipeline.scheme = SchemeConfig::make(Scheme::kGab);

    cfg.dedup_record = false;
    const RehearsedSession off = rehearseSession(cfg);
    cfg.dedup_record = true;
    const RehearsedSession on = rehearseSession(cfg);

    // The recorder observes writes; it never changes them.  Pixels,
    // drops, underruns, timing and energy are bit-identical.
    const PipelineResult &ro = off.outcome.result;
    const PipelineResult &rn = on.outcome.result;
    EXPECT_EQ(rn.display.pixel_digest, ro.display.pixel_digest);
    EXPECT_EQ(rn.drops, ro.drops);
    EXPECT_EQ(rn.underruns, ro.underruns);
    EXPECT_EQ(rn.span, ro.span);
    EXPECT_EQ(rn.energy.total(), ro.energy.total());
    EXPECT_EQ(rn.dram_total.bytes_written,
              ro.dram_total.bytes_written);

    // Only the materialization log differs.
    EXPECT_FALSE(off.outcome.dedup.any());
    EXPECT_TRUE(on.outcome.dedup.any());
    EXPECT_GT(on.outcome.dedup.blocks.size(), 0u);
}

// ---------------------------------------------------------------------
// Fleet: poisoning containment
// ---------------------------------------------------------------------

/** Library-bound tiny session; pure in ArrivalEvent as crash replay
 * requires. */
SessionConfig
dedupSession(const ArrivalEvent &a, const ZipfLibrary &library)
{
    SessionConfig s;
    s.id = a.id;
    s.pipeline.profile.key = "T";
    s.pipeline.profile.width = 96;
    s.pipeline.profile.height = 48;
    s.pipeline.profile.frame_count = 48;
    s.pipeline.profile.seed = 4242 + a.id;
    library.applyTo(s.pipeline.profile, library.sampleTitle(a.id));
    s.pipeline.scheme = SchemeConfig::make(Scheme::kGab);
    s.stats_group = a.mix % 2 == 0 ? "even" : "odd";
    return s;
}

ZipfLibrary
testLibrary()
{
    LibrarySpec spec;
    spec.titles = 6;
    spec.skew = 1.0;
    spec.seed = 11;
    return ZipfLibrary(spec);
}

FleetConfig
dedupFleetConfig(std::uint32_t shards, unsigned jobs)
{
    const ZipfLibrary library = testLibrary();
    const SessionConfig probe =
        dedupSession(ArrivalEvent{}, library);
    FleetConfig cfg;
    cfg.serve.bandwidth_budget_mbps =
        Session::demandMBps(probe.pipeline) * 8.5;
    cfg.serve.framebuffer_budget_bytes =
        Session::framebufferBytes(probe.pipeline) * 100;
    cfg.serve.max_active = 8;
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.rehearse_block = 16;
    return cfg;
}

std::vector<ArrivalEvent>
dedupArrivals(std::uint64_t count = 40)
{
    PoissonArrivalConfig p;
    p.seed = 0xdedu;
    p.rate_per_s = 25.0;
    p.count = count;
    p.leave_probability = 0.2;
    p.min_watch = 100 * sim_clock::ms;
    p.max_watch = 400 * sim_clock::ms;
    p.num_mixes = 2;
    return poissonArrivals(p);
}

std::string
snapshotJson(const StatsSnapshot &snap)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.key("stats");
    snap.dumpJson(w);
    w.endObject();
    return os.str();
}

/** Drop `dedup.*` keyed lines so a dedup-on shard snapshot can be
 * compared byte-wise against a dedup-off one.  Works because the
 * dedup counters are never the last key of their object (the
 * state.* counters sort after them). */
std::string
stripDedupKeys(const std::string &json)
{
    std::istringstream is(json);
    std::ostringstream os;
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("\"dedup.") != std::string::npos) {
            continue;
        }
        os << line << "\n";
    }
    return os.str();
}

TEST(DedupFleet, PoisonedDomainNeverLeaksIntoNeighbours)
{
    const ZipfLibrary library = testLibrary();
    const std::vector<ArrivalEvent> arrivals = dedupArrivals();
    const auto factory = [&](const ArrivalEvent &a) {
        return dedupSession(a, library);
    };

    FleetConfig off = dedupFleetConfig(/*shards=*/4, /*jobs=*/2);
    Placer off_placer(off, factory);
    off_placer.run(arrivals);

    FleetConfig on = off;
    on.dedup.enabled = true;
    on.dedup.breaker_false_hits = 2;
    on.dedup.quarantine_consults = 4;
    DedupPoisonRule poison;
    poison.domain = 1;
    poison.rate = 1.0;
    poison.seed = 5;
    on.dedup.poison.push_back(poison);
    Placer on_placer(on, factory);
    on_placer.run(arrivals);

    const SharedMachTier *tier = on_placer.dedupTier();
    ASSERT_NE(tier, nullptr);

    // The poisoned domain saw the storm: verify-on-hit demotions and
    // at least one breaker trip / epoch bump.
    EXPECT_GT(tier->domainStats(1).false_hits, 0u);
    EXPECT_GT(tier->domainStats(1).trips, 0u);
    EXPECT_GT(tier->domainStats(1).epoch, 0u);

    // Blast radius: the neighbours never saw a single false hit,
    // trip, or epoch bump.
    for (const std::uint32_t d : {0u, 2u, 3u}) {
        EXPECT_EQ(tier->domainStats(d).false_hits, 0u) << d;
        EXPECT_EQ(tier->domainStats(d).trips, 0u) << d;
        EXPECT_EQ(tier->domainStats(d).epoch, 0u) << d;
    }

    // Every session finished, so every quarantined epoch drained:
    // zero live refs and zero stale entries everywhere.
    for (std::uint32_t d = 0; d < tier->domains(); ++d) {
        EXPECT_EQ(tier->liveRefs(d), 0u) << d;
        EXPECT_EQ(tier->staleEntries(d), 0u) << d;
    }

    // Traffic, not pixels, fleet-wide: modulo the dedup.* accounting
    // keys, every shard's snapshot - poisoned domain included - is
    // byte-identical to the dedup-off run's.
    ASSERT_EQ(on_placer.shards().size(), off_placer.shards().size());
    for (std::size_t i = 0; i < on_placer.shards().size(); ++i) {
        EXPECT_EQ(
            stripDedupKeys(
                snapshotJson(on_placer.shards()[i].snapshot())),
            snapshotJson(off_placer.shards()[i].snapshot()))
            << "shard " << i;
    }

    // Arrival accounting stays exact under poisoning.
    EXPECT_EQ(on_placer.admitted() + on_placer.rejected() +
                  on_placer.recovery().shed +
                  on_placer.recovery().queue_timeouts,
              arrivals.size());
    EXPECT_EQ(on_placer.admitted(), off_placer.admitted());
    EXPECT_EQ(on_placer.rejected(), off_placer.rejected());
}

// ---------------------------------------------------------------------
// Fleet: determinism under dedup + chaos
// ---------------------------------------------------------------------

std::string
fleetReport(const FleetConfig &cfg,
            const std::vector<ArrivalEvent> &arrivals)
{
    const ZipfLibrary library = testLibrary();
    Placer placer(cfg, [&](const ArrivalEvent &a) {
        return dedupSession(a, library);
    });
    placer.run(arrivals);
    std::ostringstream os;
    writeFleetReport(os, placer, "test_dedup", arrivals.size(),
                     /*wall_clock_seconds=*/0.0,
                     /*invariant_failures=*/0);
    return os.str();
}

TEST(DedupFleet, CrashRecoveryIsJobInvariantWithDedup)
{
    const std::vector<ArrivalEvent> arrivals = dedupArrivals();

    FleetConfig cfg = dedupFleetConfig(/*shards=*/3, /*jobs=*/1);
    cfg.dedup.enabled = true;
    cfg.chaos.checkpoint_period = 100 * sim_clock::ms;
    FleetFaultRule crash;
    crash.cls = FleetFaultClass::kShardCrash;
    crash.at = 400 * sim_clock::ms;
    crash.shard = 1;
    cfg.chaos.rules.push_back(crash);

    const std::string j1 = fleetReport(cfg, arrivals);
    cfg.jobs = 4;
    const std::string j4 = fleetReport(cfg, arrivals);
    // Crash, journal replay, dedup republish: still byte-identical
    // at any job count.
    EXPECT_EQ(j1, j4);
    // The dedup block is present (tier on) and the crashed domain's
    // epoch advanced (wipe on crash).
    EXPECT_NE(j1.find("\"dedup\":"), std::string::npos);
}

} // namespace
} // namespace vstream
