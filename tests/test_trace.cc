/**
 * @file
 * Tests for video-trace serialization: byte-exact round trips,
 * integrity checking, and corruption detection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "video/synthetic_video.hh"
#include "video/trace.hh"

namespace vstream
{
namespace
{

VideoProfile
traceProfile(std::uint32_t frames = 6)
{
    VideoProfile p;
    p.key = "TR";
    p.width = 64;
    p.height = 32;
    p.frame_count = frames;
    p.seed = 2718;
    return p;
}

TEST(Trace, RoundTripIsByteExact)
{
    const VideoProfile p = traceProfile();
    std::stringstream buf;
    writeTrace(buf, p);

    SyntheticVideo original(p);
    const std::vector<Frame> loaded = readTrace(buf);
    ASSERT_EQ(loaded.size(), p.frame_count);

    for (const Frame &got : loaded) {
        const Frame want = original.nextFrame();
        EXPECT_EQ(got.contentChecksum(), want.contentChecksum());
        EXPECT_EQ(got.type(), want.type());
        EXPECT_DOUBLE_EQ(got.complexity(), want.complexity());
        EXPECT_EQ(got.encodedBytes(), want.encodedBytes());
        EXPECT_EQ(got.mabCount(), want.mabCount());
        for (std::uint32_t i = 0; i < got.mabCount(); ++i) {
            ASSERT_EQ(got.mab(i), want.mab(i));
        }
    }
}

TEST(Trace, HeaderMetadataPreserved)
{
    const VideoProfile p = traceProfile(3);
    std::stringstream buf;
    writeTrace(buf, p);

    TraceReader reader(buf);
    EXPECT_EQ(reader.frameCount(), 3u);
    EXPECT_EQ(reader.mabsX(), p.mabsX());
    EXPECT_EQ(reader.mabsY(), p.mabsY());
    EXPECT_EQ(reader.mabDim(), p.mab_dim);
    EXPECT_EQ(reader.fps(), p.fps);
    EXPECT_FALSE(reader.done());
}

TEST(Trace, IncrementalReaderMatchesBulk)
{
    const VideoProfile p = traceProfile(4);
    std::stringstream a, b;
    writeTrace(a, p);
    writeTrace(b, p);

    TraceReader reader(a);
    const std::vector<Frame> bulk = readTrace(b);
    std::size_t i = 0;
    while (!reader.done()) {
        const Frame f = reader.nextFrame();
        ASSERT_LT(i, bulk.size());
        EXPECT_EQ(f.contentChecksum(), bulk[i].contentChecksum());
        ++i;
    }
    EXPECT_TRUE(reader.verifyTrailer());
}

TEST(Trace, CorruptionDetectedByTrailer)
{
    const VideoProfile p = traceProfile(2);
    std::stringstream buf;
    writeTrace(buf, p);
    std::string bytes = buf.str();
    // Flip a pixel byte somewhere in the middle of the payload.
    bytes[bytes.size() / 2] ^= 0x40;

    std::stringstream corrupt(bytes);
    TraceReader reader(corrupt);
    while (!reader.done()) {
        reader.nextFrame();
    }
    EXPECT_FALSE(reader.verifyTrailer());
}

TEST(Trace, TruncationIsFatal)
{
    const VideoProfile p = traceProfile(2);
    std::stringstream buf;
    writeTrace(buf, p);
    std::string bytes = buf.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_DEATH(readTrace(truncated), "truncated");
}

TEST(Trace, BadMagicIsRecoverable)
{
    // The reader no longer aborts on junk input: it records the
    // error and reads as exhausted, so callers choose the policy.
    std::stringstream junk("not a trace at all, sorry");
    TraceReader reader(junk);
    EXPECT_EQ(reader.error(), TraceError::kBadMagic);
    EXPECT_TRUE(reader.done());
    EXPECT_EQ(reader.frameCount(), 0u);
}

TEST(Trace, BadMagicStillFatalThroughReadTrace)
{
    std::stringstream junk("not a trace at all, sorry");
    EXPECT_DEATH(readTrace(junk), "bad magic");
}

TEST(Trace, LoadTraceCleanStream)
{
    const VideoProfile p = traceProfile(3);
    std::stringstream buf;
    writeTrace(buf, p);

    const TraceLoadResult r = loadTrace(buf);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.error, TraceError::kNone);
    EXPECT_EQ(r.frames_expected, 3u);
    EXPECT_EQ(r.frames_skipped, 0u);
    EXPECT_EQ(r.frames.size(), 3u);
}

TEST(Trace, LoadTraceBadMagic)
{
    std::stringstream junk("garbage bytes, not a trace");
    const TraceLoadResult r = loadTrace(junk);
    EXPECT_EQ(r.error, TraceError::kBadMagic);
    EXPECT_TRUE(r.frames.empty());
    EXPECT_STREQ(traceErrorName(r.error), "bad-magic");
}

TEST(Trace, LoadTraceTruncatedFailClean)
{
    const VideoProfile p = traceProfile(4);
    std::stringstream buf;
    writeTrace(buf, p);
    const std::string bytes = buf.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));

    const TraceLoadResult r =
        loadTrace(truncated, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kTruncatedFrame);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, LoadTraceTruncatedSkipFrameKeepsPrefix)
{
    const VideoProfile p = traceProfile(4);
    std::stringstream buf;
    writeTrace(buf, p);
    const std::string bytes = buf.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));

    const TraceLoadResult r =
        loadTrace(truncated, TracePolicy::kSkipFrame);
    EXPECT_EQ(r.error, TraceError::kTruncatedFrame);
    EXPECT_EQ(r.frames_expected, 4u);
    // Every intact leading frame survives; the damaged tail counts
    // as skipped.
    EXPECT_FALSE(r.frames.empty());
    EXPECT_EQ(r.frames.size() + r.frames_skipped, 4u);
}

TEST(Trace, LoadTraceBadCrcFailClean)
{
    const VideoProfile p = traceProfile(2);
    std::stringstream buf;
    writeTrace(buf, p);
    std::string bytes = buf.str();
    bytes[bytes.size() / 2] ^= 0x40; // flip a payload bit

    std::stringstream corrupt(bytes);
    const TraceLoadResult r =
        loadTrace(corrupt, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kBadCrc);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, LoadTraceBadCrcSkipFrameKeepsFrames)
{
    const VideoProfile p = traceProfile(2);
    std::stringstream buf;
    writeTrace(buf, p);
    std::string bytes = buf.str();
    bytes[bytes.size() / 2] ^= 0x40;

    std::stringstream corrupt(bytes);
    const TraceLoadResult r =
        loadTrace(corrupt, TracePolicy::kSkipFrame);
    // The trailer disagrees, but each record parsed: the permissive
    // policy keeps them and reports the damage.
    EXPECT_EQ(r.error, TraceError::kBadCrc);
    EXPECT_EQ(r.frames.size(), 2u);
}

TEST(TraceDeath, GeometryMismatchOnAppend)
{
    const VideoProfile p = traceProfile(1);
    std::stringstream buf;
    TraceWriter writer(buf, p, 1);
    Frame wrong(0, FrameType::kI, 2, 2, 4); // not p's geometry
    EXPECT_DEATH(writer.append(wrong), "geometry");
}

TEST(TraceDeath, FinishRequiresAllFrames)
{
    const VideoProfile p = traceProfile(2);
    std::stringstream buf;
    TraceWriter writer(buf, p, 2);
    SyntheticVideo video(p);
    writer.append(video.nextFrame());
    EXPECT_DEATH(writer.finish(), "announced");
}

TEST(Trace, OddSizedRecordsRoundTrip)
{
    // mab_dim=5 makes each macroblock record 75 bytes, so every
    // multi-byte field after the first frame sits at an odd stream
    // offset: a regression test for the memcpy/shift-based POD
    // serialization (the old reinterpret_cast form read u64/double
    // fields through misaligned pointers under ASan/UBSan).
    VideoProfile p;
    p.key = "OD";
    p.width = 35;
    p.height = 15;
    p.mab_dim = 5;
    p.frame_count = 5;
    p.seed = 97;
    ASSERT_EQ(p.mabsX(), 7u);
    ASSERT_EQ(p.mabsY(), 3u);

    std::stringstream buf;
    writeTrace(buf, p);

    TraceReader reader(buf);
    EXPECT_EQ(reader.mabDim(), 5u);
    EXPECT_EQ(reader.frameCount(), 5u);

    SyntheticVideo original(p);
    std::uint32_t frames = 0;
    while (!reader.done()) {
        const Frame got = reader.nextFrame();
        const Frame want = original.nextFrame();
        EXPECT_EQ(got.contentChecksum(), want.contentChecksum());
        EXPECT_DOUBLE_EQ(got.complexity(), want.complexity());
        EXPECT_EQ(got.encodedBytes(), want.encodedBytes());
        ++frames;
    }
    EXPECT_EQ(frames, 5u);
    EXPECT_TRUE(reader.verifyTrailer());
}

TEST(Trace, OnDiskFormatIsLittleEndianStable)
{
    // Pin the serialized header layout: u32 fields are written
    // little-endian regardless of host endianness, so traces are
    // portable and this byte pattern must never change silently.
    const VideoProfile p = traceProfile(2);
    std::stringstream buf;
    writeTrace(buf, p);
    const std::string bytes = buf.str();
    ASSERT_GE(bytes.size(), 28u);

    EXPECT_EQ(bytes.substr(0, 4), "VSTR");
    const auto u8 = [&](std::size_t i) {
        return static_cast<unsigned char>(bytes[i]);
    };
    const auto u32at = [&](std::size_t off) {
        return static_cast<std::uint32_t>(u8(off)) |
               (static_cast<std::uint32_t>(u8(off + 1)) << 8) |
               (static_cast<std::uint32_t>(u8(off + 2)) << 16) |
               (static_cast<std::uint32_t>(u8(off + 3)) << 24);
    };
    EXPECT_EQ(u32at(4), 1u);             // version
    EXPECT_EQ(u32at(8), p.frame_count);  // frame count
    EXPECT_EQ(u32at(12), p.mabsX());
    EXPECT_EQ(u32at(16), p.mabsY());
    EXPECT_EQ(u32at(20), p.mab_dim);
    EXPECT_EQ(u32at(24), p.fps);
}

// ---- hostile inputs --------------------------------------------------
//
// The loader consumes untrusted bytes (and is fuzzed as such, see
// fuzz/fuzz_trace_loader.cc); these tests pin the specific defenses:
// geometry caps checked before any frame allocation, bounded reserve
// for the announced frame count, and per-record field validation.

namespace hostile
{

void
putU32(std::string &s, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
}

/** A trace header with arbitrary (possibly absurd) geometry. */
std::string
header(std::uint32_t frames, std::uint32_t mabs_x, std::uint32_t mabs_y,
       std::uint32_t mab_dim, std::uint32_t fps = 60)
{
    std::string s = "VSTR";
    putU32(s, 1); // version
    putU32(s, frames);
    putU32(s, mabs_x);
    putU32(s, mabs_y);
    putU32(s, mab_dim);
    putU32(s, fps);
    return s;
}

} // namespace hostile

TEST(Trace, HugeGeometryRejectedBeforeAllocation)
{
    // 2^32-1 x 2^32-1 macroblocks: the unchecked loader would
    // overflow mabCount() and then try to allocate the frame.  Must
    // come back kBadGeometry without touching a Frame.
    std::stringstream buf(
        hostile::header(1, 0xffffffffu, 0xffffffffu, 16));
    TraceLoadResult r = loadTrace(buf, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kBadGeometry);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, GeometryCapsEnforcedPerAxisAndPerFrame)
{
    {
        // One axis past the cap.
        std::stringstream buf(hostile::header(1, 4097, 1, 4));
        EXPECT_EQ(loadTrace(buf, TracePolicy::kFailClean).error,
                  TraceError::kBadGeometry);
    }
    {
        // Axes individually fine, product past the per-frame cap.
        std::stringstream buf(hostile::header(1, 2048, 2048, 4));
        EXPECT_EQ(loadTrace(buf, TracePolicy::kFailClean).error,
                  TraceError::kBadGeometry);
    }
    {
        // Macroblock dimension past its cap.
        std::stringstream buf(hostile::header(1, 2, 2, 129));
        EXPECT_EQ(loadTrace(buf, TracePolicy::kFailClean).error,
                  TraceError::kBadGeometry);
    }
    {
        // Zero stays rejected as before.
        std::stringstream buf(hostile::header(1, 0, 2, 4));
        EXPECT_EQ(loadTrace(buf, TracePolicy::kFailClean).error,
                  TraceError::kBadGeometry);
    }
}

TEST(Trace, HugeFrameCountDoesNotPreallocate)
{
    // Four billion announced frames backed by zero bytes of payload:
    // the loader must fail on truncation promptly instead of
    // reserving 2^32 Frame objects up front.
    std::stringstream buf(hostile::header(0xffffffffu, 2, 2, 4));
    TraceLoadResult r = loadTrace(buf, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kTruncatedFrame);
    EXPECT_EQ(r.frames_expected, 0xffffffffu);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, InvalidFrameTypeByteIsCorruptRecord)
{
    const VideoProfile p = traceProfile(1);
    std::stringstream good;
    writeTrace(good, p);
    std::string bytes = good.str();
    // Frame record starts right after the 28-byte header; first
    // byte is the FrameType.
    bytes[28] = '\x7f';
    std::stringstream buf(bytes);
    TraceLoadResult r = loadTrace(buf, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kCorruptRecord);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, NonFiniteComplexityIsCorruptRecord)
{
    const VideoProfile p = traceProfile(1);
    std::stringstream good;
    writeTrace(good, p);
    std::string bytes = good.str();
    // The f64 complexity sits at bytes 29..36; overwrite with the
    // little-endian quiet NaN 0x7ff8000000000000.
    const unsigned char nan_le[8] = {0, 0, 0, 0, 0, 0, 0xf8, 0x7f};
    for (int i = 0; i < 8; ++i) {
        bytes[29 + i] = static_cast<char>(nan_le[i]);
    }
    std::stringstream buf(bytes);
    TraceLoadResult r = loadTrace(buf, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kCorruptRecord);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, AbsurdEncodedBytesIsCorruptRecord)
{
    const VideoProfile p = traceProfile(1);
    std::stringstream good;
    writeTrace(good, p);
    std::string bytes = good.str();
    // The u64 encoded size sits at bytes 37..44.
    for (int i = 0; i < 8; ++i) {
        bytes[37 + i] = '\xff';
    }
    std::stringstream buf(bytes);
    TraceLoadResult r = loadTrace(buf, TracePolicy::kFailClean);
    EXPECT_EQ(r.error, TraceError::kCorruptRecord);
    EXPECT_TRUE(r.frames.empty());
}

TEST(Trace, LargeFrameCountStreamsWithoutBloat)
{
    // 20 frames of 64x32: the trace should be close to the raw pixel
    // payload (plus small per-frame headers).
    VideoProfile p = traceProfile(20);
    std::stringstream buf;
    writeTrace(buf, p);
    const std::size_t payload =
        static_cast<std::size_t>(p.frame_count) *
        p.decodedFrameBytes();
    EXPECT_LT(buf.str().size(), payload + 1024);
    EXPECT_GT(buf.str().size(), payload);
}

} // namespace
} // namespace vstream
