/**
 * @file
 * Steady-state zero-allocation test for the serving hot path.
 *
 * This binary replaces the global allocation functions with counting
 * wrappers, warms a stepwise pipeline past every amortised growth
 * phase (surface pools, window/dump rings, MACH tables, DRAM queues,
 * event-queue storage), and then asserts that a window of further
 * vsyncs performs *zero* heap allocations - the acceptance criterion
 * the SurfacePool / ring-buffer / scratch-reuse rewrites exist for.
 * The simulation is fully deterministic, so the allocation count in
 * the measured window is a stable, reproducible quantity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <execinfo.h>
#include <unistd.h>

#include "core/video_pipeline.hh"

namespace
{

std::atomic<std::uint64_t> g_news{0};
std::atomic<int> g_trace_budget{0};

void
maybeTraceAlloc()
{
    if (g_trace_budget.load(std::memory_order_relaxed) <= 0) {
        return;
    }
    if (g_trace_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        return;
    }
    void *frames[24];
    const int depth = backtrace(frames, 24);
    backtrace_symbols_fd(frames, depth, STDERR_FILENO);
    const char nl[] = "----\n";
    (void)!write(STDERR_FILENO, nl, sizeof(nl) - 1);
}

void *
countedAlloc(std::size_t n)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    maybeTraceAlloc();
    if (void *p = std::malloc(n ? n : 1)) { // NOLINT
        return p;
    }
    throw std::bad_alloc{};
}

void *
countedAlignedAlloc(std::size_t n, std::size_t align)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(align, (n + align - 1) /
                                                align * align)) {
        return p;
    }
    throw std::bad_alloc{};
}

} // namespace

// Counting replacements for every allocation entry point the
// pipeline can reach.  Deletes deliberately uninstrumented: the test
// pins "no allocation", not leak balance (asan owns that).
void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}

void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}

void
operator delete(void *p) noexcept
{
    std::free(p); // NOLINT
}

void
operator delete[](void *p) noexcept
{
    std::free(p); // NOLINT
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p); // NOLINT
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p); // NOLINT
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p); // NOLINT
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p); // NOLINT
}

namespace vstream
{
namespace
{

VideoProfile
steadyProfile(std::uint32_t frames)
{
    VideoProfile p;
    p.key = "Z";
    p.width = 96;
    p.height = 48;
    p.frame_count = frames;
    p.seed = 4242;
    return p;
}

/** Vsyncs stepped before the measured window opens. */
constexpr int kWarmupVsyncs = 240;
/** Vsyncs whose allocation delta must be exactly zero. */
constexpr int kMeasuredVsyncs = 96;

void
expectZeroAllocSteadyState(Scheme scheme, std::uint32_t batch)
{
    PipelineConfig cfg;
    cfg.profile = steadyProfile(420);
    cfg.scheme = SchemeConfig::make(scheme, batch);
    VideoPipeline vp(std::move(cfg));
    vp.start();

    int stepped = 0;
    while (!vp.stepDone() && stepped < kWarmupVsyncs) {
        vp.stepVsync();
        ++stepped;
    }
    ASSERT_FALSE(vp.stepDone())
        << "profile too short to leave a measured window";

    const std::uint64_t before =
        g_news.load(std::memory_order_relaxed);
    if (std::getenv("VSTREAM_ALLOC_TRACE") != nullptr) { // NOLINT
        g_trace_budget.store(24, std::memory_order_relaxed);
    }
    int measured = 0;
    while (!vp.stepDone() && measured < kMeasuredVsyncs) {
        vp.stepVsync();
        ++measured;
    }
    const std::uint64_t delta =
        g_news.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0u)
        << schemeName(scheme) << ": " << delta << " allocations in "
        << measured << " steady-state vsyncs after " << stepped
        << " warmup vsyncs";

    // Drain and finish so the run is a complete, valid playback.
    while (!vp.stepDone()) {
        vp.stepVsync();
    }
    const PipelineResult r = vp.finish();
    EXPECT_EQ(r.frames, 420u);
}

TEST(ZeroAlloc, GabServingSteadyStateAllocatesNothing)
{
    // The full paper stack: MACH + gradient + pointer-digest layout
    // + display cache + MACH buffer - the widest hot path there is.
    expectZeroAllocSteadyState(Scheme::kGab, 8);
}

TEST(ZeroAlloc, BaselineSteadyStateAllocatesNothing)
{
    expectZeroAllocSteadyState(Scheme::kBaseline, 1);
}

TEST(ZeroAlloc, RaceToSleepSteadyStateAllocatesNothing)
{
    expectZeroAllocSteadyState(Scheme::kRaceToSleep, 1);
}

} // namespace
} // namespace vstream
