/**
 * @file
 * Tests for the offline similarity analyzer (Fig. 7b machinery) and
 * cross-workload similarity properties.
 */

#include <gtest/gtest.h>

#include "video/similarity.hh"
#include "video/workloads.hh"

namespace vstream
{
namespace
{

VideoProfile
craftedProfile()
{
    VideoProfile p;
    p.key = "C";
    p.width = 64;
    p.height = 32;
    p.frame_count = 12;
    p.seed = 9;
    return p;
}

TEST(Similarity, AllUniqueContentHasNoMatches)
{
    VideoProfile p = craftedProfile();
    p.intra_match_rate = 0.0;
    p.inter_match_rate = 0.0;
    p.gradient_shift_rate = 0.0;
    p.pure_color_rate = 0.0;
    p.smooth_rate = 0.0;
    const SimilarityReport r = analyzeSimilarity(p);
    EXPECT_GT(r.noneFraction(), 0.99);
    EXPECT_EQ(r.intra_exact, 0u);
    EXPECT_EQ(r.inter_exact, 0u);
    EXPECT_NEAR(r.optimal_mab_savings, -4.0 / 48.0,
                1e-3); // pure pointer overhead
}

TEST(Similarity, PureColorOnlyIsAlmostAllIntra)
{
    VideoProfile p = craftedProfile();
    p.intra_match_rate = 0.0;
    p.inter_match_rate = 0.0;
    p.gradient_shift_rate = 0.0;
    p.pure_color_rate = 1.0;
    p.smooth_rate = 0.0;
    p.color_palette = 4;
    const SimilarityReport r = analyzeSimilarity(p);
    // With 4 colours and 128 mabs per frame, almost everything
    // repeats within the frame.
    EXPECT_GT(r.intraFraction(), 0.9);
    EXPECT_GT(r.optimal_mab_savings, 0.8);
    // All pure colours share the zero gab: one dominant digest.
    ASSERT_FALSE(r.top_gab_shares.empty());
    EXPECT_GT(r.top_gab_shares[0], 0.99);
}

TEST(Similarity, GradientShiftsOnlyVisibleToGab)
{
    VideoProfile p = craftedProfile();
    p.intra_match_rate = 0.0;
    p.inter_match_rate = 0.0;
    p.gradient_shift_rate = 0.6;
    p.pure_color_rate = 0.0;
    p.smooth_rate = 0.0;
    const SimilarityReport r = analyzeSimilarity(p);
    EXPECT_GT(r.gabMatchFraction(), r.intraFraction() +
                                        r.interFraction() + 0.2);
    EXPECT_GT(r.optimal_gab_savings, r.optimal_mab_savings + 0.1);
}

TEST(Similarity, InterWindowRespected)
{
    VideoProfile p = craftedProfile();
    p.frame_count = 24;
    p.inter_match_rate = 0.4;
    p.intra_match_rate = 0.0;
    const SimilarityReport near =
        analyzeSimilarity(p, 0, /*window=*/16);
    const SimilarityReport none =
        analyzeSimilarity(p, 0, /*window=*/1);
    // Shrinking the window can only lose inter matches.
    EXPECT_LE(none.inter_exact, near.inter_exact);
    EXPECT_EQ(near.inter_age_hist.size(), 16u);
    // Recency bias: age-1 matches dominate.
    EXPECT_GT(near.inter_age_hist[0], near.inter_age_hist[8]);
}

TEST(Similarity, FractionsPartitionUnity)
{
    const VideoProfile p = scaledWorkload("V5", 16, 64, 32);
    const SimilarityReport r = analyzeSimilarity(p);
    EXPECT_NEAR(r.intraFraction() + r.interFraction() +
                    r.noneFraction(),
                1.0, 1e-12);
    EXPECT_EQ(r.intra_gab + r.inter_gab + r.none_gab, r.mabs);
}

TEST(Similarity, MaxFramesCapsWork)
{
    const VideoProfile p = scaledWorkload("V5", 0, 64, 32);
    const SimilarityReport r = analyzeSimilarity(p, 8);
    EXPECT_EQ(r.mabs, 8u * 128u);
}

class WorkloadSimilarity : public ::testing::TestWithParam<int>
{
};

TEST_P(WorkloadSimilarity, GabAlwaysMatchesAtLeastMab)
{
    // A mab-exact match is also a gab match, so gab match fractions
    // dominate - the property behind Fig. 9's gab > mab result.
    const auto &p0 = workloadTable()[GetParam()];
    const VideoProfile p = scaledWorkload(p0.key, 12, 64, 32);
    const SimilarityReport r = analyzeSimilarity(p);
    EXPECT_GE(r.intra_gab + r.inter_gab,
              r.intra_exact + r.inter_exact);
    EXPECT_GE(r.optimal_gab_savings, r.optimal_mab_savings - 1e-9);
}

TEST_P(WorkloadSimilarity, TopSharesDescendAndSumBelowOne)
{
    const auto &p0 = workloadTable()[GetParam()];
    const VideoProfile p = scaledWorkload(p0.key, 12, 64, 32);
    const SimilarityReport r = analyzeSimilarity(p);
    double sum = 0.0;
    for (std::size_t i = 0; i < r.top_gab_shares.size(); ++i) {
        if (i > 0) {
            EXPECT_LE(r.top_gab_shares[i], r.top_gab_shares[i - 1]);
        }
        sum += r.top_gab_shares[i];
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllVideos, WorkloadSimilarity,
                         ::testing::Range(0, 16));

} // namespace
} // namespace vstream
