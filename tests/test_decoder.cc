/**
 * @file
 * Tests for the video-decoder IP model: cost-model calibration,
 * decode timing, memory traffic, and frequency scaling.
 */

#include <gtest/gtest.h>

#include "core/frame_buffer_manager.hh"
#include "core/writeback_stage.hh"
#include "decoder/decode_cost_model.hh"
#include "decoder/video_decoder.hh"
#include "sim/event_queue.hh"
#include "video/synthetic_video.hh"

namespace vstream
{
namespace
{

VideoProfile
tinyProfile()
{
    VideoProfile p;
    p.key = "D";
    p.width = 96;
    p.height = 48;
    p.frame_count = 8;
    p.seed = 31;
    return p;
}

struct DecoderRig
{
    EventQueue queue;
    MemorySystem mem;
    FrameBufferManager fbm;
    VideoDecoder vd;
    LinearWriteback wb;

    explicit DecoderRig(const VideoProfile &p,
                        const DecoderConfig &cfg = {})
        : mem("mem", &queue, DramConfig{}),
          fbm(mem, p.mabsPerFrame(), p.mab_dim * p.mab_dim * 3, 0),
          vd("vd", &queue, mem, cfg, p), wb(mem, fbm)
    {
    }
};

TEST(DecodeCostModel, CalibratedToMeanDecodeFraction)
{
    const VideoProfile p = tinyProfile();
    const VdPowerConfig power;
    const DecodeCostModel cost(p, power);

    // Mean frame compute time at the low frequency must equal the
    // profile's target fraction of the frame period.
    const double period_s = 1.0 / p.fps;
    EXPECT_NEAR(cost.meanFrameSeconds(VdFrequency::kLow),
                p.mean_decode_frac * period_s, 1e-12);
    // Doubling the clock halves the compute time.
    EXPECT_NEAR(cost.meanFrameSeconds(VdFrequency::kHigh),
                0.5 * cost.meanFrameSeconds(VdFrequency::kLow),
                1e-12);
    EXPECT_GT(cost.baseCycles(), 0.0);
}

TEST(DecodeCostModel, TypeWeightsOrdered)
{
    const VideoProfile p = tinyProfile();
    const DecodeCostModel cost(p, VdPowerConfig{});
    const double i = cost.mabCycles(FrameType::kI, 1.0, 1.0);
    const double pp = cost.mabCycles(FrameType::kP, 1.0, 1.0);
    const double b = cost.mabCycles(FrameType::kB, 1.0, 1.0);
    EXPECT_GT(i, pp);
    EXPECT_GT(pp, b);
    // Complexity and jitter multiply in.
    EXPECT_DOUBLE_EQ(cost.mabCycles(FrameType::kP, 2.0, 1.0), 2 * pp);
    EXPECT_DOUBLE_EQ(cost.mabCycles(FrameType::kP, 1.0, 0.5),
                     0.5 * pp);
}

TEST(DecodeCostModel, MeanMabSecondsConsistent)
{
    const VideoProfile p = tinyProfile();
    const DecodeCostModel cost(p, VdPowerConfig{});
    EXPECT_NEAR(cost.meanMabSeconds(VdFrequency::kLow) *
                    p.mabsPerFrame(),
                cost.meanFrameSeconds(VdFrequency::kLow), 1e-15);
}

TEST(VideoDecoder, DecodeTimeNearCalibration)
{
    const VideoProfile p = tinyProfile();
    DecoderRig rig(p);
    SyntheticVideo video(p);

    double total_ms = 0.0;
    Tick t = 0;
    const BufferSlot *prev = nullptr;
    FrameLayout layout;
    for (int i = 0; i < 8; ++i) {
        const Frame f = video.nextFrame();
        BufferSlot &slot = rig.fbm.acquire(i);
        const FrameDecodeResult r =
            rig.vd.decodeFrame(f, rig.wb, slot, prev, t, layout);
        rig.wb.finishFrame(r.finish);
        total_ms += ticksToMs(r.busy());
        t = r.finish;
        prev = &slot;
    }
    // Mean 0.72 * 16.67 ms = 12 ms plus memory stalls.
    const double mean = total_ms / 8.0;
    EXPECT_GT(mean, 9.0);
    EXPECT_LT(mean, 17.0);
}

TEST(VideoDecoder, HighFrequencyRoughlyHalvesComputeTime)
{
    const VideoProfile p = tinyProfile();
    SyntheticVideo video_a(p), video_b(p);

    DecoderRig low(p);
    DecoderRig high(p);
    high.vd.setFrequency(VdFrequency::kHigh);
    EXPECT_EQ(high.vd.frequency(), VdFrequency::kHigh);

    const Frame fa = video_a.nextFrame();
    const Frame fb = video_b.nextFrame();

    BufferSlot &sa = low.fbm.acquire(0);
    BufferSlot &sb = high.fbm.acquire(0);
    FrameLayout la, lb;
    const auto ra = low.vd.decodeFrame(fa, low.wb, sa, nullptr, 0, la);
    low.wb.finishFrame(ra.finish);
    const auto rb =
        high.vd.decodeFrame(fb, high.wb, sb, nullptr, 0, lb);
    high.wb.finishFrame(rb.finish);

    const double ratio = static_cast<double>(rb.busy()) /
                         static_cast<double>(ra.busy());
    EXPECT_GT(ratio, 0.45);
    EXPECT_LT(ratio, 0.65); // memory stalls keep it above 0.5
}

TEST(VideoDecoder, DeterministicAcrossInstances)
{
    const VideoProfile p = tinyProfile();
    SyntheticVideo va(p), vb(p);
    DecoderRig a(p), b(p);
    const Frame fa = va.nextFrame();
    const Frame fb = vb.nextFrame();
    BufferSlot &sa = a.fbm.acquire(0);
    BufferSlot &sb = b.fbm.acquire(0);
    FrameLayout la, lb;
    const auto ra = a.vd.decodeFrame(fa, a.wb, sa, nullptr, 0, la);
    const auto rb = b.vd.decodeFrame(fb, b.wb, sb, nullptr, 0, lb);
    EXPECT_EQ(ra.finish, rb.finish);
    EXPECT_EQ(ra.mem_stall, rb.mem_stall);
}

TEST(VideoDecoder, PFramesIssueReferenceReads)
{
    VideoProfile p = tinyProfile();
    p.gop_pattern = "IPPPPPPP";
    SyntheticVideo video(p);
    DecoderRig rig(p);

    const Frame f0 = video.nextFrame(); // I
    const Frame f1 = video.nextFrame(); // P

    BufferSlot &s0 = rig.fbm.acquire(0);
    FrameLayout l0, l1;
    const auto r0 = rig.vd.decodeFrame(f0, rig.wb, s0, nullptr, 0, l0);
    rig.wb.finishFrame(r0.finish);
    EXPECT_EQ(r0.mc_reads, 0u); // I frame: no motion compensation

    BufferSlot &s1 = rig.fbm.acquire(1);
    const auto r1 =
        rig.vd.decodeFrame(f1, rig.wb, s1, &s0, r0.finish, l1);
    rig.wb.finishFrame(r1.finish);
    EXPECT_EQ(r1.mc_reads, f1.mabCount());
    EXPECT_GT(r1.mem_stall, 0u);
}

TEST(VideoDecoder, EncodedBytesReadMatchFrame)
{
    const VideoProfile p = tinyProfile();
    SyntheticVideo video(p);
    DecoderRig rig(p);
    const Frame f = video.nextFrame();
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    const auto r =
        rig.vd.decodeFrame(f, rig.wb, slot, nullptr, 0, layout);
    rig.wb.finishFrame(r.finish);
    EXPECT_EQ(r.encoded_bytes, f.encodedBytes());
    EXPECT_EQ(r.mabs, f.mabCount());
    // The VD cache saw traffic.
    EXPECT_GT(rig.vd.cache().hitCount() + rig.vd.cache().missCount(),
              0u);
}

TEST(VideoDecoder, MemStallWithinBusyTime)
{
    const VideoProfile p = tinyProfile();
    SyntheticVideo video(p);
    DecoderRig rig(p);
    const Frame f = video.nextFrame();
    BufferSlot &slot = rig.fbm.acquire(0);
    FrameLayout layout;
    const auto r =
        rig.vd.decodeFrame(f, rig.wb, slot, nullptr, 1000, layout);
    EXPECT_GE(r.start, 1000u);
    EXPECT_LE(r.mem_stall, r.busy());
    rig.wb.finishFrame(r.finish);
}

TEST(DecoderConfigDeath, RejectsBadJitter)
{
    DecoderConfig cfg;
    cfg.cost.jitter = 1.5;
    EXPECT_DEATH(cfg.validate(), "jitter");
}

TEST(DecoderConfig, DefaultsValid)
{
    DecoderConfig cfg;
    cfg.validate();
    EXPECT_FALSE(cfg.cache.write_allocate); // streaming writes bypass
    EXPECT_EQ(cfg.cache.size_bytes, 64u * 1024u);
}

class FrequencySweep : public ::testing::TestWithParam<VdFrequency>
{
};

TEST_P(FrequencySweep, TrafficVolumeIndependentOfFrequency)
{
    // The same frame decoded at either frequency touches the same
    // addresses in the same order (timing differs, traffic doesn't).
    auto run = [](VdFrequency freq) {
        const VideoProfile p = tinyProfile();
        SyntheticVideo video(p);
        const Frame f = video.nextFrame();
        DecoderRig rig(p);
        rig.vd.setFrequency(freq);
        BufferSlot &slot = rig.fbm.acquire(0);
        FrameLayout layout;
        const auto r =
            rig.vd.decodeFrame(f, rig.wb, slot, nullptr, 0, layout);
        rig.wb.finishFrame(r.finish);
        return rig.mem.energy().counts(Requester::kVideoDecoder);
    };
    const auto ref = run(VdFrequency::kLow);
    const auto got = run(GetParam());
    EXPECT_EQ(got.read_bursts, ref.read_bursts);
    EXPECT_EQ(got.write_bursts, ref.write_bursts);
    EXPECT_EQ(got.bytes_written, ref.bytes_written);
    EXPECT_GT(got.bytes_written, 0u);
}

INSTANTIATE_TEST_SUITE_P(Freqs, FrequencySweep,
                         ::testing::Values(VdFrequency::kLow,
                                           VdFrequency::kHigh));

} // namespace
} // namespace vstream
