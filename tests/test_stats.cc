/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace vstream
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    stats::Scalar s("s", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(s.name(), "s");
}

TEST(Distribution, EmptyIsZero)
{
    stats::Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Distribution, WelfordMatchesDirect)
{
    stats::Distribution d;
    const double vals[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    double sum = 0.0;
    for (double v : vals) {
        d.sample(v);
        sum += v;
    }
    const double mean = sum / 8.0;
    double m2 = 0.0;
    for (double v : vals) {
        m2 += (v - mean) * (v - mean);
    }
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), mean);
    EXPECT_NEAR(d.variance(), m2 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.total(), sum);
}

TEST(Distribution, SingleSample)
{
    stats::Distribution d;
    d.sample(-3.5);
    EXPECT_DOUBLE_EQ(d.mean(), -3.5);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.5);
    EXPECT_DOUBLE_EQ(d.max(), -3.5);
}

TEST(Distribution, ResetClears)
{
    stats::Distribution d;
    d.sample(1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
}

TEST(SampleSeries, PercentilesOnSortedCopy)
{
    stats::SampleSeries s;
    for (int i = 10; i >= 1; --i) {
        s.sample(i);
    }
    EXPECT_EQ(s.count(), 10u);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 6.0); // nearest rank
    EXPECT_DOUBLE_EQ(s.mean(), 5.5);
    EXPECT_DOUBLE_EQ(s.total(), 55.0);
}

TEST(SampleSeries, EmptyPercentileIsZero)
{
    stats::SampleSeries s;
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(1.0), 0.0);
}

TEST(SampleSeries, FractionAboveStrict)
{
    stats::SampleSeries s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
        s.sample(v);
    }
    EXPECT_DOUBLE_EQ(s.fractionAbove(2.0), 0.5);  // 3 and 4
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(4.0), 0.0);
}

TEST(SampleSeries, SortedIsAscendingAndPreservesSource)
{
    stats::SampleSeries s;
    s.sample(3.0);
    s.sample(1.0);
    s.sample(2.0);
    const auto sorted = s.sorted();
    EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(s.samples()[0], 3.0); // original order untouched
}

TEST(Histogram, BucketsAndBounds)
{
    stats::Histogram h("h", 0.0, 10.0, 5);
    for (double v : {0.0, 1.9, 2.0, 5.5, 9.99}) {
        h.sample(v);
    }
    h.sample(-1.0);  // underflow
    h.sample(10.0);  // overflow (hi is exclusive)
    h.sample(100.0); // overflow

    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.bucketCount(0), 2u); // [0,2)
    EXPECT_EQ(h.bucketCount(1), 1u); // [2,4)
    EXPECT_EQ(h.bucketCount(2), 1u); // [4,6)
    EXPECT_EQ(h.bucketCount(3), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u); // [8,10)
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLow(2), 4.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(2), 6.0);
}

TEST(Histogram, ResetClears)
{
    stats::Histogram h("h", 0.0, 1.0, 2);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(1), 0u);
}

TEST(HistogramDeath, BadBoundsFatal)
{
    EXPECT_DEATH(stats::Histogram("bad", 1.0, 1.0, 4), "");
}

TEST(PrintStat, FormatsNameValueDesc)
{
    std::ostringstream os;
    stats::printStat(os, "vd.frames", 120.0, "frames decoded");
    const std::string line = os.str();
    EXPECT_NE(line.find("vd.frames"), std::string::npos);
    EXPECT_NE(line.find("120"), std::string::npos);
    EXPECT_NE(line.find("# frames decoded"), std::string::npos);
}

} // namespace
} // namespace vstream
