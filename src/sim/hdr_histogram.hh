/**
 * @file
 * HDR-style mergeable value histogram.
 *
 * Fleet-scale serving cannot keep one SampleSeries per session: a
 * 100k-session soak would retain 100k sample vectors just to print a
 * latency percentile.  HdrHistogram is the O(1)-per-sample,
 * O(log range)-memory alternative: values are bucketed log-linearly
 * (exact below 2^unit_bits, then half-a-power-of-two sub-buckets per
 * octave, bounding relative error by 2^(1-unit_bits)), and two
 * histograms merge by adding bucket counts.
 *
 * Every field is an integer, so merge() is exactly associative and
 * commutative: a fleet-wide histogram assembled from N shard
 * histograms is byte-for-byte identical no matter how sessions were
 * partitioned or in which order the shards merged.  That property is
 * what lets the sharded soak emit JSON that is bit-identical at any
 * --shards / --jobs count (tests/test_hdr_histogram.cc pins the
 * algebra; docs/FORMATS.md documents the exported fields).
 */

#ifndef VSTREAM_SIM_HDR_HISTOGRAM_HH
#define VSTREAM_SIM_HDR_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vstream
{

/** Log-linear bucketed histogram over unsigned 64-bit values. */
class HdrHistogram
{
  public:
    /**
     * @param unit_bits values below 2^unit_bits land in exact
     * unit-width buckets; above, each octave splits into
     * 2^(unit_bits-1) sub-buckets, so the relative quantization
     * error is bounded by 2^(1-unit_bits) (~1.6% at the default 7).
     */
    explicit HdrHistogram(unsigned unit_bits = 7);

    /** Record one value (O(1), no allocation past the high bucket). */
    void record(std::uint64_t v);

    /** Record @p v @p n times (bulk ingest; counts once per value). */
    void record(std::uint64_t v, std::uint64_t n);

    std::uint64_t count() const { return count_; }
    /** Exact smallest/largest recorded value (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    /** Exact sum of recorded values (panics on overflow). */
    std::uint64_t sum() const { return sum_; }
    /** sum()/count() as a double; 0 when empty. */
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1] (nearest rank over buckets).
     *
     * Returns the lower bound of the bucket holding the rank - a
     * deterministic representative within the quantization error.
     * Returns 0 when empty.
     */
    std::uint64_t percentile(double q) const;

    /**
     * Merge @p other into this histogram (bucket-count addition).
     *
     * Exactly associative and commutative; merging an empty
     * histogram is the identity.  Panics when unit_bits differ.
     */
    void merge(const HdrHistogram &other);

    void reset();

    unsigned unitBits() const { return unit_bits_; }
    /** Buckets allocated so far (grows with the largest value). */
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucketValue(std::size_t i) const
    {
        return buckets_[i];
    }

    /** Bucket index for @p v (exposed for the boundary tests). */
    std::size_t bucketIndex(std::uint64_t v) const;

    /** Smallest value mapping to bucket @p index (inverse of
     * bucketIndex for bucket lower bounds). */
    std::uint64_t bucketLowerBound(std::size_t index) const;

    bool operator==(const HdrHistogram &other) const;

    // --- checkpoint serialization ---------------------------------------

    /**
     * Append this histogram's exact state to @p out (little-endian;
     * every field is an integer, so the round trip is bit-identical
     * and a restored histogram merges exactly like the original).
     * Part of the ShardSnapshot checkpoint format
     * (serve/snapshot.hh).
     */
    void serialize(std::vector<std::uint8_t> &out) const;

    /**
     * Rebuild a histogram from the cursor @p p (advanced past the
     * payload on success).  Fail-closed: returns false with a
     * diagnostic in @p error on truncation or a malformed field,
     * leaving @p p and *this untouched.
     */
    bool tryDeserialize(const std::uint8_t *&p,
                        const std::uint8_t *end, std::string &error);

  private:
    unsigned unit_bits_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    /** Sparse tail never recorded into stays unallocated. */
    std::vector<std::uint64_t> buckets_;
};

} // namespace vstream

#endif // VSTREAM_SIM_HDR_HISTOGRAM_HH
