/**
 * @file
 * Mergeable statistics snapshot.
 *
 * A StatsRegistry is a live view over one component's counters; it is
 * deliberately non-copyable and pointer-based, which is exactly wrong
 * for fleet aggregation where 100k sessions come and go and only
 * O(shards) state may stay resident.  StatsSnapshot is the frozen,
 * value-typed counterpart: named counters, scalar aggregates and
 * HdrHistograms that a shard folds session outcomes into at eviction
 * time, and that the placer folds shard-by-shard into one fleet view
 * at the end of a run.
 *
 * Merging must not depend on how sessions were partitioned across
 * shards, so every merged quantity is exact integer arithmetic:
 *   - counters are uint64 sums;
 *   - scalar aggregates keep their sum in Q44.20 fixed point
 *     (int64, kScalarScale = 2^20) with exact double min/max, so the
 *     sum of any permutation of contributions is bit-equal;
 *   - histograms are integer bucket counts (see sim/hdr_histogram.hh).
 * The resulting JSON (docs/FORMATS.md, "merged-shard snapshot") is
 * byte-identical at any --shards and --jobs count.
 */

#ifndef VSTREAM_SIM_STATS_SNAPSHOT_HH
#define VSTREAM_SIM_STATS_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/hdr_histogram.hh"

namespace vstream
{

class JsonWriter;
class StatsRegistry;

/** Order-independent scalar aggregate (count/sum/min/max). */
struct ScalarAgg
{
    std::uint64_t count = 0;
    /** Sum in Q44.20 fixed point: exact under any merge order. */
    std::int64_t sum_fp = 0;
    double min = 0.0;
    double max = 0.0;

    double mean() const;
    double sum() const;

    void add(double v);
    void merge(const ScalarAgg &other);

    bool operator==(const ScalarAgg &other) const = default;
};

/** Value-typed, mergeable bundle of named stats; see file comment. */
class StatsSnapshot
{
  public:
    /** Fixed-point scale for ScalarAgg sums (2^20). */
    static constexpr std::int64_t kScalarScale =
        std::int64_t{1} << 20;

    // --- recording ------------------------------------------------------

    /** Bump counter @p name by @p n (created at zero on first use). */
    void addCount(const std::string &name, std::uint64_t n = 1);

    /** Fold @p v into scalar aggregate @p name. */
    void addScalar(const std::string &name, double v);

    /** Histogram @p name, created with @p unit_bits on first use. */
    HdrHistogram &hist(const std::string &name,
                       unsigned unit_bits = 7);

    /**
     * Fold every scalar/callback entry of @p reg into this snapshot
     * as "<prefix><name>" scalar aggregates (one observation each).
     */
    void captureScalars(const StatsRegistry &reg,
                        const std::string &prefix = "");

    // --- merging --------------------------------------------------------

    /**
     * Fold @p other into this snapshot.
     *
     * Exactly associative and commutative over any partition of the
     * underlying observations; merging an empty snapshot is the
     * identity (tests/test_hdr_histogram.cc pins all three).
     */
    void merge(const StatsSnapshot &other);

    // --- queries --------------------------------------------------------

    bool empty() const
    {
        return counters_.empty() && scalars_.empty() &&
               hists_.empty();
    }

    /** Counter value (0 when never bumped). */
    std::uint64_t count(const std::string &name) const;

    /** Scalar aggregate; null when @p name was never added. */
    const ScalarAgg *scalar(const std::string &name) const;

    /** Histogram; null when @p name was never created. */
    const HdrHistogram *histogram(const std::string &name) const;

    bool operator==(const StatsSnapshot &other) const = default;

    // --- export ---------------------------------------------------------

    /**
     * Emit {"counters": {...}, "scalars": {...}, "histograms":
     * {...}} as the *value* of the writer's pending key.  Keys are
     * lexicographic; see docs/FORMATS.md for the field layout.
     */
    void dumpJson(JsonWriter &jw) const;

    // --- checkpoint serialization ---------------------------------------

    /**
     * Append the snapshot's exact state to @p out: counters,
     * fixed-point scalar aggregates (int64 sums, doubles as IEEE-754
     * bit patterns), and histograms, each in lexicographic key
     * order.  Because every field is integer-exact, serialize ->
     * deserialize -> serialize yields the same bytes, and a restored
     * snapshot merges exactly like the original (the ShardSnapshot
     * checkpoint contract; serve/snapshot.hh).
     */
    void serialize(std::vector<std::uint8_t> &out) const;

    /**
     * Rebuild from the cursor @p p (advanced past the payload on
     * success).  Fail-closed: false with a diagnostic in @p error on
     * truncation or malformed fields; *this is then unchanged.
     */
    bool tryDeserialize(const std::uint8_t *&p,
                        const std::uint8_t *end, std::string &error);

  private:
    // Ordered maps: dump order is the key order, independent of
    // insertion (and hence of shard/job scheduling).
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, ScalarAgg> scalars_;
    std::map<std::string, HdrHistogram> hists_;
};

} // namespace vstream

#endif // VSTREAM_SIM_STATS_SNAPSHOT_HH
