/**
 * @file
 * Base class for named, stat-bearing simulation models.
 */

#ifndef VSTREAM_SIM_SIM_OBJECT_HH
#define VSTREAM_SIM_SIM_OBJECT_HH

#include <ostream>
#include <string>

namespace vstream
{

class EventQueue;
class StatsRegistry;

/**
 * A named component of the simulated SoC.
 *
 * SimObjects share one EventQueue and report statistics by
 * registering them into a StatsRegistry (regStats()); the registry
 * then drives every output format (text/JSON/CSV, see
 * sim/stats_registry.hh).  Construction order establishes the
 * component tree; the name is a dotted path such as "soc.vd.cache"
 * and every registered stat lives under it.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue *queue);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** The shared timeline this object schedules on. */
    EventQueue *eventQueue() const { return queue_; }

    /** Called once before simulation begins. */
    virtual void startup() {}

    /** Reset statistics (not architectural state). */
    virtual void resetStats() {}

    /**
     * Register this object's stats under its name().
     *
     * The object must outlive @p r (stats are registered by
     * pointer).  The default registers nothing.
     */
    virtual void regStats(StatsRegistry &r) { (void)r; }

    /**
     * Pretty-print statistics: builds a private registry via
     * regStats() and text-dumps it.  Not virtual - per-object stat
     * content belongs in regStats() so that every exporter sees it.
     */
    void dumpStats(std::ostream &os);

  private:
    std::string name_;
    EventQueue *queue_;
};

} // namespace vstream

#endif // VSTREAM_SIM_SIM_OBJECT_HH
