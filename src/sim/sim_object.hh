/**
 * @file
 * Base class for named, stat-bearing simulation models.
 */

#ifndef VSTREAM_SIM_SIM_OBJECT_HH
#define VSTREAM_SIM_SIM_OBJECT_HH

#include <ostream>
#include <string>

namespace vstream
{

class EventQueue;

/**
 * A named component of the simulated SoC.
 *
 * SimObjects share one EventQueue and report statistics through
 * dumpStats().  Construction order establishes the component tree; the
 * name is a dotted path such as "soc.vd.cache".
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue *queue);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** The shared timeline this object schedules on. */
    EventQueue *eventQueue() const { return queue_; }

    /** Called once before simulation begins. */
    virtual void startup() {}

    /** Reset statistics (not architectural state). */
    virtual void resetStats() {}

    /** Pretty-print statistics. */
    virtual void dumpStats(std::ostream &os) const { (void)os; }

  private:
    std::string name_;
    EventQueue *queue_;
};

} // namespace vstream

#endif // VSTREAM_SIM_SIM_OBJECT_HH
