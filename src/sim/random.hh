/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (synthetic video content,
 * per-frame decode complexity, bank conflicts injected by the traffic
 * shuffler) draws from an explicitly seeded Random instance so that a
 * simulation is exactly reproducible from its seed.  The generator is
 * xoshiro256**, seeded through SplitMix64 per the reference
 * recommendation.
 */

#ifndef VSTREAM_SIM_RANDOM_HH
#define VSTREAM_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace vstream
{

/** SplitMix64 step; used for seeding and cheap hashing of seeds. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Not thread-safe; each simulated component owns its own instance.
 */
class Random
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed in place, restarting the sequence. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * Uniform integer in the inclusive range [lo, hi].
     *
     * Uses rejection sampling, so the distribution is exactly uniform.
     */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial: true with probability @p p. */
    bool chance(double p);

    /** Standard normal deviate (Marsaglia polar method). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Log-normal deviate parameterized by the underlying normal's
     * mu/sigma.  Used for heavy-tailed per-frame decode complexity.
     */
    double logNormal(double mu, double sigma);

    /** Geometric-ish burst length in [1, cap]. */
    std::uint64_t burstLength(double continue_prob, std::uint64_t cap);

  private:
    std::array<std::uint64_t, 4> s_;
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace vstream

#endif // VSTREAM_SIM_RANDOM_HH
