/**
 * @file
 * Seeded, deterministic fault injection.
 *
 * The paper's Race-to-Sleep results assume a pristine world: the
 * streaming buffer always holds a full batch, every MACH digest is
 * honest, every DRAM burst completes, and every trace record parses.
 * The FaultInjector drops those assumptions on demand: a declarative
 * schedule of rules (probability- and tick-window-based) decides, per
 * injection opportunity, whether one of four fault classes fires:
 *
 *   kNetworkStall    the network path stops delivering frames for a
 *                    configured duration (ArrivalModel);
 *   kDigestCollision a MACH lookup is presented with a corrupted
 *                    digest that collides with a resident entry
 *                    (MachArray);
 *   kDramTimeout     a DRAM burst times out and must be retried
 *                    (DramController);
 *   kTraceCorrupt    a trace record arrives corrupted (loadTrace).
 *
 * Every draw comes from a per-class xoshiro256** stream derived from
 * the schedule seed, so the same seed and the same sequence of
 * injection opportunities yield the exact same fault schedule -- a
 * robustness experiment is as reproducible as a clean run.  With no
 * rules configured every query returns immediately without touching
 * an RNG, so the injector is zero-cost when off.
 */

#ifndef VSTREAM_SIM_FAULT_INJECTOR_HH
#define VSTREAM_SIM_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/ticks.hh"

namespace vstream
{

/** The four injectable fault classes. */
enum class FaultClass : std::uint8_t
{
    kNetworkStall = 0,
    kDigestCollision,
    kDramTimeout,
    kTraceCorrupt,
};

constexpr std::size_t kNumFaultClasses = 4;

/** Stable lower-case name ("stall", "digest", "dram", "trace"). */
const char *faultClassName(FaultClass c);

/** One declarative injection rule. */
struct FaultRule
{
    FaultClass cls = FaultClass::kNetworkStall;
    /** Per-opportunity Bernoulli probability in [0, 1]. */
    double probability = 0.0;
    /** Active window [from, until) on the opportunity clock.  For
     * trace corruption the clock is the record index, not a tick. */
    Tick from = 0;
    Tick until = maxTick;
    /** Cap on injections from this rule (~0 = unlimited). */
    std::uint64_t max_count = ~std::uint64_t(0);
    /** Stall duration (network-stall rules only). */
    Tick duration = 0;
};

/**
 * Parse a rule spec of the form
 * "p=0.01,from=200ms,until=1.5s,max=3,len=250ms".
 *
 * Times accept the suffixes ps/ns/us/ms/s (bare numbers are
 * milliseconds).  "at=200ms" is shorthand for a one-shot rule:
 * from=200ms with max=1 and p=1 unless given explicitly.  Fatal on a
 * malformed spec (user configuration error).
 */
FaultRule parseFaultRule(FaultClass cls, const std::string &spec);

/**
 * Recoverable variant of parseFaultRule for untrusted specs: no
 * input, however hostile (NaN times, out-of-range probabilities,
 * non-numeric counts, values past the Tick range), terminates the
 * process or invokes undefined behaviour.
 *
 * @return true and fill @p out on success; false with a diagnostic
 *         in @p error otherwise (@p out is then unspecified).
 */
bool tryParseFaultRule(FaultClass cls, const std::string &spec,
                       FaultRule &out, std::string &error);

/** Schedule plus knobs shared by the degradation paths. */
struct FaultConfig
{
    /** Seed of the per-class RNG streams. */
    std::uint64_t seed = 0x5eedf417u;
    /** Bounded-retry budget for timed-out DRAM bursts. */
    std::uint32_t dram_retry_limit = 3;
    /** Delay before the first DRAM burst re-issue; doubles on every
     * further retry (capped).  0 restores immediate re-issue. */
    Tick dram_backoff_base = static_cast<Tick>(200) * sim_clock::ns;
    /** Upper bound on a single backoff delay. */
    Tick dram_backoff_cap = static_cast<Tick>(10) * sim_clock::us;
    /** Uniform jitter fraction added on top of each backoff delay
     * (in [0, 1]; deterministic, derived from the seed). */
    double dram_backoff_jitter = 0.25;
    std::vector<FaultRule> rules;

    bool enabled() const { return !rules.empty(); }
    bool anyRuleFor(FaultClass c) const;
    void validate() const;

    /**
     * Derive the schedule for one serving session: same rules, seed
     * remixed with @p session_id so concurrent sessions draw from
     * independent (but reproducible) streams.
     */
    FaultConfig forSession(std::uint64_t session_id) const;
};

/** Cross-class injection totals (bench report provenance block). */
struct FaultTotals
{
    std::uint64_t injected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t abandoned = 0;
};

/** The injection oracle every degradation path consults. */
class FaultInjector : public SimObject
{
  public:
    FaultInjector(std::string name, EventQueue *queue,
                  const FaultConfig &cfg);

    const FaultConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.enabled(); }

    /**
     * One injection opportunity for class @p c at time @p now.
     *
     * Walks the rules of that class; the first in-window, under-cap
     * rule whose Bernoulli draw fires injects.  Counts the injection.
     */
    bool shouldInject(FaultClass c, Tick now);

    /**
     * Network-stall opportunity at @p now.
     *
     * @return the stall duration, or 0 when no rule fires.
     */
    Tick injectStall(Tick now);

    /** A layer recovered from an injected fault (retry succeeded,
     * false hit caught, corrupt record skipped). */
    void noteRecovered(FaultClass c) { ++recovered_[index(c)]; }

    /** A layer gave up on an injected fault but degraded cleanly. */
    void noteAbandoned(FaultClass c) { ++abandoned_[index(c)]; }

    std::uint64_t injected(FaultClass c) const
    {
        return injected_[index(c)];
    }
    std::uint64_t recovered(FaultClass c) const
    {
        return recovered_[index(c)];
    }
    std::uint64_t abandoned(FaultClass c) const
    {
        return abandoned_[index(c)];
    }

    /** Sums across all classes. */
    FaultTotals totals() const;

    void regStats(StatsRegistry &r) override;
    void resetStats() override;

  private:
    static std::size_t index(FaultClass c)
    {
        return static_cast<std::size_t>(c);
    }

    FaultConfig cfg_;
    std::array<Random, kNumFaultClasses> rngs_;
    /** Injections already charged to each rule (max_count caps). */
    std::vector<std::uint64_t> rule_fired_;
    std::array<std::uint64_t, kNumFaultClasses> injected_{};
    std::array<std::uint64_t, kNumFaultClasses> recovered_{};
    std::array<std::uint64_t, kNumFaultClasses> abandoned_{};
};

} // namespace vstream

#endif // VSTREAM_SIM_FAULT_INJECTOR_HH
