/**
 * @file
 * Deterministic fan-out of independent work units across threads.
 *
 * The simulator's parallelism model is coarse: whole pipelines (one
 * video x scheme unit) or whole session rehearsals run concurrently,
 * each on a fully private substrate (EventQueue, MemorySystem, RNG
 * streams), and the results are merged in canonical input order.
 * Nothing inside a unit ever observes which thread ran it or in what
 * order its siblings finished, so output is byte-identical to a
 * serial run at any --jobs value - the determinism contract
 * docs/PERFORMANCE.md spells out and tests/test_parallel.cc pins.
 *
 * parallelFor() is the only primitive: indices are claimed from a
 * shared atomic counter and handed to the callable.  Determinism is
 * the caller's side of the contract: fn(i) must write only to its
 * own output slot and share no mutable state with its siblings.
 */

#ifndef VSTREAM_SIM_PARALLEL_HH
#define VSTREAM_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace vstream
{

/** Worker count actually used: @p requested clamped to [1, n]. */
unsigned effectiveJobs(unsigned requested, std::size_t n);

/** Parse a --jobs value; 0 or garbage falls back to 1 (serial). */
unsigned parseJobs(const char *value);

/** The VSTREAM_JOBS environment default; 1 (serial) when unset. */
unsigned defaultJobs();

/**
 * Run fn(0) .. fn(n-1) across up to @p jobs threads.
 *
 * jobs <= 1 (or n <= 1) runs inline on the calling thread - no
 * threads are created, so the serial path is bit-identical to a
 * plain loop.  The first exception thrown by any unit is rethrown
 * on the caller after every worker has joined.
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Deterministic parallel map: returns {fn(0), ..., fn(n-1)} in
 * canonical index order regardless of thread count or scheduling.
 * R must be default-constructible and movable.
 */
template <typename Fn>
auto
parallelMap(unsigned jobs, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    parallelFor(jobs, n,
                [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace vstream

#endif // VSTREAM_SIM_PARALLEL_HH
