/**
 * @file
 * Deterministic fan-out of independent work units across threads.
 *
 * The simulator's parallelism model is coarse: whole pipelines (one
 * video x scheme unit) or whole session rehearsals run concurrently,
 * each on a fully private substrate (EventQueue, MemorySystem, RNG
 * streams), and the results are merged in canonical input order.
 * Nothing inside a unit ever observes which thread ran it or in what
 * order its siblings finished, so output is byte-identical to a
 * serial run at any --jobs value - the determinism contract
 * docs/PERFORMANCE.md spells out and tests/test_parallel.cc pins.
 *
 * parallelFor() is the only primitive: indices are claimed from a
 * shared atomic counter and handed to the callable.  Determinism is
 * the caller's side of the contract: fn(i) must write only to its
 * own output slot and share no mutable state with its siblings.
 *
 * Workers are *persistent*: the first threaded parallelFor spawns
 * them and every later call reuses them (ThreadPool), so fine-
 * grained fan-out - rehearsal waves, per-video units inside one
 * scheme - stops paying a spawn+join per call.  Steady-state serving
 * spawns zero threads after warmup; ThreadPool::threadsSpawned()
 * exposes the monotonic spawn count the tests assert on.
 */

#ifndef VSTREAM_SIM_PARALLEL_HH
#define VSTREAM_SIM_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vstream
{

/**
 * The process-wide persistent worker pool behind parallelFor.
 *
 * Workers park on a condition variable between jobs and are lazily
 * grown to the largest helper count any call has asked for; they are
 * joined when the process exits.  The calling thread always
 * participates as a worker, so `jobs` threads of compute need only
 * `jobs - 1` pool workers.  A parallelFor issued from inside a pool
 * worker (nested fan-out) runs inline and serially on that worker -
 * the pool never deadlocks on itself.
 */
class ThreadPool
{
  public:
    /** The process-wide pool (created on first threaded call). */
    static ThreadPool &instance();

    /**
     * Run fn(0) .. fn(n-1) with @p workers threads of compute (the
     * caller plus workers-1 pool workers).  Blocks until every index
     * is done; rethrows the first exception any unit threw.
     */
    void run(unsigned workers, std::size_t n,
             const std::function<void(std::size_t)> &fn);

    /** Threads ever spawned (monotonic; steady state adds zero). */
    std::uint64_t threadsSpawned() const
    {
        return spawned_.load(std::memory_order_relaxed);
    }

    /** Pool workers currently alive (excludes callers). */
    std::size_t workersAlive() const
    {
        return alive_.load(std::memory_order_relaxed);
    }

    /** True on a pool worker thread (nested calls run inline). */
    static bool onWorkerThread();

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

  private:
    ThreadPool() = default;

    void workerLoop();

    /** Claim-and-run loop shared by the caller and every worker. */
    void drain(const std::function<void(std::size_t)> &fn,
               std::size_t n);

    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> spawned_{0};
    std::atomic<std::size_t> alive_{0};

    // Current-job state, published under mu_.
    std::uint64_t generation_ = 0;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t n_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t running_helpers_ = 0;
    std::exception_ptr first_error_;
    bool stop_ = false;
};

/** Worker count actually used: @p requested clamped to [1, n]. */
unsigned effectiveJobs(unsigned requested, std::size_t n);

/** Parse a --jobs value; 0 or garbage falls back to 1 (serial). */
unsigned parseJobs(const char *value);

/** The VSTREAM_JOBS environment default; 1 (serial) when unset. */
unsigned defaultJobs();

/**
 * Run fn(0) .. fn(n-1) across up to @p jobs threads.
 *
 * jobs <= 1 (or n <= 1) runs inline on the calling thread - no
 * threads are created, so the serial path is bit-identical to a
 * plain loop.  The first exception thrown by any unit is rethrown
 * on the caller after every worker has joined.
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Deterministic parallel map: returns {fn(0), ..., fn(n-1)} in
 * canonical index order regardless of thread count or scheduling.
 * R must be default-constructible and movable.
 */
template <typename Fn>
auto
parallelMap(unsigned jobs, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    parallelFor(jobs, n,
                [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace vstream

#endif // VSTREAM_SIM_PARALLEL_HH
