#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace_event.hh"

namespace vstream
{

Event::Event(std::string name, int priority)
    : name_(std::move(name)), priority_(priority)
{
}

Event::~Event()
{
    // Destroying a still-scheduled event would leave a dangling
    // pointer in the queue; the owner must deschedule first.
    vs_assert(!scheduled_, "event '", name_, "' destroyed while scheduled");
}

LambdaEvent::LambdaEvent(std::string name, std::function<void()> fn,
                         int priority)
    : Event(std::move(name), priority), fn_(std::move(fn))
{
}

void
LambdaEvent::process()
{
    fn_();
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    vs_assert(ev != nullptr, "null event");
    vs_assert(!ev->scheduled_, "event '", ev->name(), "' already scheduled");
    vs_assert(when >= cur_tick_, "event '", ev->name(),
              "' scheduled in the past: ", when, " < ", cur_tick_);

    ev->scheduled_ = true;
    ev->when_ = when;
    ev->sequence_ = next_sequence_++;
    heap_.push(Entry{when, ev->priority(), ev->sequence_, ev});
    ++live_count_;
}

void
EventQueue::deschedule(Event *ev)
{
    vs_assert(ev != nullptr && ev->scheduled_,
              "descheduling an event that is not scheduled");
    // Lazy deletion: mark the event idle; the stale heap entry is
    // recognized and skipped when popped.
    ev->scheduled_ = false;
    --live_count_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_) {
        deschedule(ev);
    }
    schedule(ev, when);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry top = heap_.top();
        heap_.pop();
        Event *ev = top.event;
        // Skip entries invalidated by deschedule()/reschedule().
        if (!ev->scheduled_ || ev->sequence_ != top.sequence) {
            continue;
        }
        vs_assert(top.when >= cur_tick_, "time went backwards");
        cur_tick_ = top.when;
        ev->scheduled_ = false;
        --live_count_;
        ++processed_;
        if (trace_ != nullptr) {
            trace_->instant(trace_track_, ev->name(), cur_tick_);
        }
        ev->process();
        return true;
    }
    return false;
}

void
EventQueue::setTraceSink(TraceEventSink *sink)
{
    trace_ = sink;
    if (trace_ != nullptr) {
        trace_track_ = trace_->track("events");
    }
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (!top.event->scheduled_ ||
            top.event->sequence_ != top.sequence) {
            heap_.pop();
            continue;
        }
        if (top.when > limit) {
            break;
        }
        step();
    }
    return cur_tick_;
}

} // namespace vstream
