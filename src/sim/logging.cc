#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace vstream
{
namespace detail
{

namespace
{

std::atomic<std::uint64_t> warn_counter{0};
std::atomic<bool> quiet_mode{false};

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    if (!quiet_mode.load(std::memory_order_relaxed)) {
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (!quiet_mode.load(std::memory_order_relaxed)) {
        std::cout << "info: " << msg << std::endl;
    }
}

std::uint64_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_mode.store(quiet, std::memory_order_relaxed);
}

} // namespace detail
} // namespace vstream
