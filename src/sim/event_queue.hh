/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal gem5-style event queue: events are scheduled at absolute
 * ticks and processed in (tick, priority, insertion-order) order.  The
 * pipeline driver uses it to interleave the decoder's wake-ups, the
 * display's vsync, and the streaming buffer refills on one timeline.
 */

#ifndef VSTREAM_SIM_EVENT_QUEUE_HH
#define VSTREAM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace vstream
{

class EventQueue;
class TraceEventSink;

/**
 * A schedulable unit of work.
 *
 * Subclass and override process(), or use LambdaEvent for one-offs.
 * An Event object may be re-scheduled after it has fired, but never
 * while it is still pending.
 */
class Event
{
  public:
    /** Priorities break ties between events at the same tick. */
    enum Priority : int
    {
        kMaximumPriority = 0,
        kVsyncPriority = 10,
        kDecoderPriority = 20,
        kBufferPriority = 30,
        kDefaultPriority = 50,
        kStatsPriority = 90,
        kMinimumPriority = 100,
    };

    explicit Event(std::string name, int priority = kDefaultPriority);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called by the queue when the event fires. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }

    /** True while the event sits in a queue awaiting its tick. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will fire (valid only if scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
};

/** Event that runs a captured callable. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::string name, std::function<void()> fn,
                int priority = kDefaultPriority);

    void process() override;

  private:
    std::function<void()> fn_;
};

/**
 * The global timeline.
 *
 * Events are processed strictly in non-decreasing tick order; it is a
 * panic to schedule an event in the past.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Schedule @p ev to fire at absolute tick @p when. */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event; panics if not scheduled. */
    void deschedule(Event *ev);

    /** Reschedule a pending (or idle) event to a new tick. */
    void reschedule(Event *ev, Tick when);

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /** True when nothing is pending. */
    bool empty() const { return live_count_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return live_count_; }

    /**
     * Run until the queue drains or @p limit is reached, whichever is
     * first.
     *
     * @return the tick of the last processed event.
     */
    Tick run(Tick limit = maxTick);

    /**
     * Process exactly one event, if any.
     *
     * @return true if an event was processed.
     */
    bool step();

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return processed_; }

    /**
     * Mirror every processed event into @p sink as an instant marker
     * on an "events" track (null disables).  The sink must outlive
     * the queue or be detached before it is destroyed.
     */
    void setTraceSink(TraceEventSink *sink);

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
    };

    struct EntryCompare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            if (a.priority != b.priority) {
                return a.priority > b.priority;
            }
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> heap_;
    TraceEventSink *trace_ = nullptr;
    std::uint32_t trace_track_ = 0;
    Tick cur_tick_ = 0;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t live_count_ = 0;
};

} // namespace vstream

#endif // VSTREAM_SIM_EVENT_QUEUE_HH
