#include "sim/sim_object.hh"

#include <utility>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

SimObject::SimObject(std::string name, EventQueue *queue)
    : name_(std::move(name)), queue_(queue)
{
    vs_assert(!name_.empty(), "SimObject requires a name");
}

SimObject::~SimObject() = default;

void
SimObject::dumpStats(std::ostream &os)
{
    StatsRegistry r;
    regStats(r);
    r.dumpText(os);
}

} // namespace vstream
