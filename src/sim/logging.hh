/**
 * @file
 * Error and status reporting, modelled on gem5's base/logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug);
 *            aborts the process.
 * fatal()  - the user supplied an impossible configuration; exits
 *            with an error code.
 * warn()   - something is questionable but simulation continues.
 * inform() - plain status output.
 */

#ifndef VSTREAM_SIM_LOGGING_HH
#define VSTREAM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace vstream
{

namespace detail
{

/** Append the string form of each argument to @p os. */
inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename First, typename... Rest>
void
formatInto(std::ostringstream &os, const First &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Number of warn() calls so far (inspectable from tests). */
std::uint64_t warnCount();

/** Silence or re-enable warn()/inform() output (used by benches). */
void setQuiet(bool quiet);

} // namespace detail

/** Build a message string from a variadic argument pack. */
template <typename... Args>
std::string
logFormat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

} // namespace vstream

#define vs_panic(...)                                                       \
    ::vstream::detail::panicImpl(__FILE__, __LINE__,                        \
                                 ::vstream::logFormat(__VA_ARGS__))

#define vs_fatal(...)                                                       \
    ::vstream::detail::fatalImpl(__FILE__, __LINE__,                        \
                                 ::vstream::logFormat(__VA_ARGS__))

#define vs_warn(...)                                                        \
    ::vstream::detail::warnImpl(::vstream::logFormat(__VA_ARGS__))

#define vs_inform(...)                                                      \
    ::vstream::detail::informImpl(::vstream::logFormat(__VA_ARGS__))

/** Panic when a runtime invariant does not hold. */
#define vs_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vstream::detail::panicImpl(                                   \
                __FILE__, __LINE__,                                         \
                ::vstream::logFormat("assertion '" #cond "' failed: ",     \
                                     ##__VA_ARGS__));                       \
        }                                                                   \
    } while (0)

#endif // VSTREAM_SIM_LOGGING_HH
