#include "sim/parallel.hh"

#include <cstdlib>
#include <exception>
#include <utility>

#include "sim/logging.hh"

namespace vstream
{

namespace
{

/** Set for the lifetime of a pool worker thread (nested-call guard). */
thread_local bool t_on_pool_worker = false;

} // namespace

unsigned
effectiveJobs(unsigned requested, std::size_t n)
{
    if (requested <= 1 || n <= 1) {
        return 1;
    }
    const std::size_t cap = n < requested ? n : requested;
    return static_cast<unsigned>(cap);
}

unsigned
parseJobs(const char *value)
{
    if (value == nullptr) {
        return 1;
    }
    const long v = std::strtol(value, nullptr, 10);
    return v > 0 ? static_cast<unsigned>(v) : 1;
}

// VSTREAM_JOBS picks the worker count only; results are
// jobs-invariant by construction (test_parallel and the CI
// perf-smoke job pin byte-identical output at any job count), and
// the variable is read once, before any worker spawns.
// vstream:allow(determinism-source) thread count, not sim state
unsigned
defaultJobs()
{
    return parseJobs(
        std::getenv("VSTREAM_JOBS")); // NOLINT(concurrency-mt-unsafe)
}

ThreadPool &
ThreadPool::instance()
{
    // Function-local static: constructed on first threaded call,
    // destroyed (workers joined) at process exit.
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_pool_worker;
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_) {
        t.join();
    }
}

void
ThreadPool::drain(const std::function<void(std::size_t)> &fn,
                  std::size_t n)
{
    for (;;) {
        const std::size_t i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
            return;
        }
        try {
            fn(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mu_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    t_on_pool_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_) {
                return;
            }
            seen = generation_;
            fn = fn_;
            n = n_;
        }
        drain(*fn, n);
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (--running_helpers_ == 0) {
                done_cv_.notify_one();
            }
        }
    }
}

void
ThreadPool::run(unsigned workers, std::size_t n,
                const std::function<void(std::size_t)> &fn)
{
    vs_assert(workers >= 2, "threaded run needs >= 2 workers");
    const std::size_t want_helpers = workers - 1;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        // Grow lazily to the largest helper count ever requested;
        // existing workers are reused, so steady state spawns zero.
        while (workers_.size() < want_helpers) {
            // vstream:allow(no-hotpath-alloc) warmup-only growth;
            // the spawn counter pins that steady state adds none
            workers_.emplace_back([this] { workerLoop(); });
            spawned_.fetch_add(1, std::memory_order_relaxed);
            alive_.fetch_add(1, std::memory_order_relaxed);
        }
        fn_ = &fn;
        n_ = n;
        next_.store(0, std::memory_order_relaxed);
        first_error_ = nullptr;
        // Every alive worker joins every job: the index counter
        // hands excess workers an empty claim immediately, and the
        // full barrier below keeps job state ownership simple.
        running_helpers_ = workers_.size();
        ++generation_;
    }
    work_cv_.notify_all();

    // The caller is worker zero.  Mark it as a pool worker for the
    // duration of its drain so a nested parallelFor issued from one
    // of its units runs inline instead of re-entering run() and
    // clobbering the in-flight job state.
    t_on_pool_worker = true;
    drain(fn, n);
    t_on_pool_worker = false;

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] { return running_helpers_ == 0; });
        fn_ = nullptr;
        n_ = 0;
        err = std::exchange(first_error_, nullptr);
    }
    if (err) {
        std::rethrow_exception(err);
    }
}

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    vs_assert(fn != nullptr, "parallelFor needs a callable");
    const unsigned workers = effectiveJobs(jobs, n);
    // Serial path - and nested fan-out from inside a pool worker,
    // which runs inline so the pool cannot deadlock on itself.
    if (workers == 1 || ThreadPool::onWorkerThread()) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    ThreadPool::instance().run(workers, n, fn);
}

} // namespace vstream
