#include "sim/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/logging.hh"

namespace vstream
{

unsigned
effectiveJobs(unsigned requested, std::size_t n)
{
    if (requested <= 1 || n <= 1) {
        return 1;
    }
    const std::size_t cap = n < requested ? n : requested;
    return static_cast<unsigned>(cap);
}

unsigned
parseJobs(const char *value)
{
    if (value == nullptr) {
        return 1;
    }
    const long v = std::strtol(value, nullptr, 10);
    return v > 0 ? static_cast<unsigned>(v) : 1;
}

// VSTREAM_JOBS picks the worker count only; results are
// jobs-invariant by construction (test_parallel and the CI
// perf-smoke job pin byte-identical output at any job count), and
// the variable is read once, before any worker spawns.
// vstream:allow(determinism-source) thread count, not sim state
unsigned
defaultJobs()
{
    return parseJobs(
        std::getenv("VSTREAM_JOBS")); // NOLINT(concurrency-mt-unsafe)
}

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    vs_assert(fn != nullptr, "parallelFor needs a callable");
    const unsigned workers = effectiveJobs(jobs, n);
    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) {
                return;
            }
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back(worker);
    }
    for (std::thread &t : pool) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace vstream
