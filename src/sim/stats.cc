#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <utility>

#include "sim/logging.hh"

namespace vstream
{
namespace stats
{

Scalar::Scalar(std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
}

Distribution::Distribution(std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    total_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Distribution::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    total_ = 0.0;
}

double
Distribution::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
Distribution::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

SampleSeries::SampleSeries(std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
}

double
SampleSeries::total() const
{
    double t = 0.0;
    for (double v : samples_) {
        t += v;
    }
    return t;
}

double
SampleSeries::mean() const
{
    return samples_.empty() ? 0.0
                            : total() / static_cast<double>(samples_.size());
}

double
SampleSeries::percentile(double q) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    auto sorted_copy = sorted();
    q = std::clamp(q, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_copy.size() - 1) + 0.5);
    return sorted_copy[std::min(idx, sorted_copy.size() - 1)];
}

double
SampleSeries::fractionAbove(double threshold) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    std::uint64_t above = 0;
    for (double v : samples_) {
        if (v > threshold) {
            ++above;
        }
    }
    return static_cast<double>(above) /
           static_cast<double>(samples_.size());
}

std::vector<double>
SampleSeries::sorted() const
{
    std::vector<double> copy = samples_;
    std::sort(copy.begin(), copy.end());
    return copy;
}

Histogram::Histogram(std::string name, double lo, double hi,
                     std::size_t buckets, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc)), lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    vs_assert(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>((v - lo_) / width_);
    ++buckets_[std::min(idx, buckets_.size() - 1)];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i) + width_;
}

void
printStat(std::ostream &os, const std::string &name, double value,
          const std::string &desc)
{
    os << std::left << std::setw(44) << name << std::right << std::setw(16)
       << value;
    if (!desc.empty()) {
        os << "  # " << desc;
    }
    os << "\n";
}

} // namespace stats
} // namespace vstream
