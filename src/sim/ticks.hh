/**
 * @file
 * Simulation time base.
 *
 * Following the gem5 convention, simulated time is kept as an integer
 * count of picoseconds ("ticks").  All IP models (decoder, display,
 * DRAM) convert their native clocks to ticks so that a single global
 * timeline orders every event in the SoC.
 */

#ifndef VSTREAM_SIM_TICKS_HH
#define VSTREAM_SIM_TICKS_HH

#include <cstdint>

namespace vstream
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick maxTick = ~Tick(0);

namespace sim_clock
{

/** One picosecond, the base resolution. */
constexpr Tick ps = 1;
/** One nanosecond. */
constexpr Tick ns = 1000 * ps;
/** One microsecond. */
constexpr Tick us = 1000 * ns;
/** One millisecond. */
constexpr Tick ms = 1000 * us;
/** One second. */
constexpr Tick s = 1000 * ms;

} // namespace sim_clock

/** Convert a tick count to seconds (double precision, for reporting). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim_clock::s);
}

/** Convert a tick count to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim_clock::ms);
}

/** Convert seconds to ticks (rounds toward zero). */
constexpr Tick
secondsToTicks(double sec)
{
    return static_cast<Tick>(sec * static_cast<double>(sim_clock::s));
}

/**
 * Period of a clock in ticks given its frequency in hertz.
 *
 * @param hz Clock frequency; must be non-zero.
 */
constexpr Tick
periodFromFreq(double hz)
{
    return static_cast<Tick>(static_cast<double>(sim_clock::s) / hz);
}

/** Number of ticks taken by @p cycles cycles of a clock at @p hz. */
constexpr Tick
cyclesToTicks(std::uint64_t cycles, double hz)
{
    return static_cast<Tick>(static_cast<double>(cycles) *
                             (static_cast<double>(sim_clock::s) / hz));
}

} // namespace vstream

#endif // VSTREAM_SIM_TICKS_HH
