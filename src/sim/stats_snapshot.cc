#include "sim/stats_snapshot.hh"

#include <cmath>

#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

double
ScalarAgg::mean() const
{
    if (count == 0) {
        return 0.0;
    }
    return sum() / static_cast<double>(count);
}

double
ScalarAgg::sum() const
{
    return static_cast<double>(sum_fp) /
           static_cast<double>(StatsSnapshot::kScalarScale);
}

void
ScalarAgg::add(double v)
{
    vs_assert(std::isfinite(v), "non-finite scalar observation");
    const double scaled =
        v * static_cast<double>(StatsSnapshot::kScalarScale);
    vs_assert(std::abs(scaled) <= 9.2e18,
              "scalar observation overflows fixed point");
    const std::int64_t fp = std::llround(scaled);
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum_fp += fp;
}

void
ScalarAgg::merge(const ScalarAgg &other)
{
    if (other.count == 0) {
        return;
    }
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum_fp += other.sum_fp;
}

void
StatsSnapshot::addCount(const std::string &name, std::uint64_t n)
{
    counters_[name] += n;
}

void
StatsSnapshot::addScalar(const std::string &name, double v)
{
    scalars_[name].add(v);
}

HdrHistogram &
StatsSnapshot::hist(const std::string &name, unsigned unit_bits)
{
    auto it = hists_.find(name);
    if (it == hists_.end()) {
        it = hists_.emplace(name, HdrHistogram(unit_bits)).first;
    }
    return it->second;
}

void
StatsSnapshot::captureScalars(const StatsRegistry &reg,
                              const std::string &prefix)
{
    for (const std::string &name : reg.names()) {
        addScalar(prefix + name, reg.value(name));
    }
}

void
StatsSnapshot::merge(const StatsSnapshot &other)
{
    for (const auto &[name, n] : other.counters_) {
        counters_[name] += n;
    }
    for (const auto &[name, agg] : other.scalars_) {
        scalars_[name].merge(agg);
    }
    for (const auto &[name, h] : other.hists_) {
        hist(name, h.unitBits()).merge(h);
    }
}

std::uint64_t
StatsSnapshot::count(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const ScalarAgg *
StatsSnapshot::scalar(const std::string &name) const
{
    const auto it = scalars_.find(name);
    return it == scalars_.end() ? nullptr : &it->second;
}

const HdrHistogram *
StatsSnapshot::histogram(const std::string &name) const
{
    const auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
}

void
StatsSnapshot::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.key("counters");
    jw.beginObject();
    for (const auto &[name, n] : counters_) {
        jw.kv(name, n);
    }
    jw.endObject();
    jw.key("scalars");
    jw.beginObject();
    for (const auto &[name, agg] : scalars_) {
        jw.key(name);
        jw.beginObject();
        jw.kv("count", agg.count);
        jw.kv("sum", agg.sum());
        jw.kv("mean", agg.mean());
        jw.kv("min", agg.min);
        jw.kv("max", agg.max);
        jw.endObject();
    }
    jw.endObject();
    jw.key("histograms");
    jw.beginObject();
    for (const auto &[name, h] : hists_) {
        jw.key(name);
        jw.beginObject();
        jw.kv("count", h.count());
        jw.kv("min", h.min());
        jw.kv("max", h.max());
        jw.kv("mean", h.mean());
        jw.kv("p50", h.percentile(0.50));
        jw.kv("p90", h.percentile(0.90));
        jw.kv("p99", h.percentile(0.99));
        jw.kv("p999", h.percentile(0.999));
        jw.endObject();
    }
    jw.endObject();
    jw.endObject();
}

} // namespace vstream
