#include "sim/stats_snapshot.hh"

#include <cmath>

#include "sim/byte_io.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

double
ScalarAgg::mean() const
{
    if (count == 0) {
        return 0.0;
    }
    return sum() / static_cast<double>(count);
}

double
ScalarAgg::sum() const
{
    return static_cast<double>(sum_fp) /
           static_cast<double>(StatsSnapshot::kScalarScale);
}

void
ScalarAgg::add(double v)
{
    vs_assert(std::isfinite(v), "non-finite scalar observation");
    const double scaled =
        v * static_cast<double>(StatsSnapshot::kScalarScale);
    vs_assert(std::abs(scaled) <= 9.2e18,
              "scalar observation overflows fixed point");
    const std::int64_t fp = std::llround(scaled);
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum_fp += fp;
}

void
ScalarAgg::merge(const ScalarAgg &other)
{
    if (other.count == 0) {
        return;
    }
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum_fp += other.sum_fp;
}

void
StatsSnapshot::addCount(const std::string &name, std::uint64_t n)
{
    counters_[name] += n;
}

void
StatsSnapshot::addScalar(const std::string &name, double v)
{
    scalars_[name].add(v);
}

HdrHistogram &
StatsSnapshot::hist(const std::string &name, unsigned unit_bits)
{
    auto it = hists_.find(name);
    if (it == hists_.end()) {
        it = hists_.emplace(name, HdrHistogram(unit_bits)).first;
    }
    return it->second;
}

void
StatsSnapshot::captureScalars(const StatsRegistry &reg,
                              const std::string &prefix)
{
    for (const std::string &name : reg.names()) {
        addScalar(prefix + name, reg.value(name));
    }
}

void
StatsSnapshot::merge(const StatsSnapshot &other)
{
    for (const auto &[name, n] : other.counters_) {
        counters_[name] += n;
    }
    for (const auto &[name, agg] : other.scalars_) {
        scalars_[name].merge(agg);
    }
    for (const auto &[name, h] : other.hists_) {
        hist(name, h.unitBits()).merge(h);
    }
}

std::uint64_t
StatsSnapshot::count(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const ScalarAgg *
StatsSnapshot::scalar(const std::string &name) const
{
    const auto it = scalars_.find(name);
    return it == scalars_.end() ? nullptr : &it->second;
}

const HdrHistogram *
StatsSnapshot::histogram(const std::string &name) const
{
    const auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
}

void
StatsSnapshot::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.key("counters");
    jw.beginObject();
    for (const auto &[name, n] : counters_) {
        jw.kv(name, n);
    }
    jw.endObject();
    jw.key("scalars");
    jw.beginObject();
    for (const auto &[name, agg] : scalars_) {
        jw.key(name);
        jw.beginObject();
        jw.kv("count", agg.count);
        jw.kv("sum", agg.sum());
        jw.kv("mean", agg.mean());
        jw.kv("min", agg.min);
        jw.kv("max", agg.max);
        jw.endObject();
    }
    jw.endObject();
    jw.key("histograms");
    jw.beginObject();
    for (const auto &[name, h] : hists_) {
        jw.key(name);
        jw.beginObject();
        jw.kv("count", h.count());
        jw.kv("min", h.min());
        jw.kv("max", h.max());
        jw.kv("mean", h.mean());
        jw.kv("p50", h.percentile(0.50));
        jw.kv("p90", h.percentile(0.90));
        jw.kv("p99", h.percentile(0.99));
        jw.kv("p999", h.percentile(0.999));
        jw.endObject();
    }
    jw.endObject();
    jw.endObject();
}

namespace
{

/** Stat names are short dotted paths; anything longer is hostile. */
constexpr std::uint32_t kMaxStatName = 4096;

} // namespace

void
StatsSnapshot::serialize(std::vector<std::uint8_t> &out) const
{
    byte_io::putU64(out, counters_.size());
    for (const auto &[name, n] : counters_) {
        byte_io::putString(out, name);
        byte_io::putU64(out, n);
    }
    byte_io::putU64(out, scalars_.size());
    for (const auto &[name, agg] : scalars_) {
        byte_io::putString(out, name);
        byte_io::putU64(out, agg.count);
        byte_io::putI64(out, agg.sum_fp);
        byte_io::putF64(out, agg.min);
        byte_io::putF64(out, agg.max);
    }
    byte_io::putU64(out, hists_.size());
    for (const auto &[name, h] : hists_) {
        byte_io::putString(out, name);
        h.serialize(out);
    }
}

bool
StatsSnapshot::tryDeserialize(const std::uint8_t *&p,
                              const std::uint8_t *end,
                              std::string &error)
{
    const std::uint8_t *cursor = p;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, ScalarAgg> scalars;
    std::map<std::string, HdrHistogram> hists;

    std::uint64_t n_counters = 0;
    if (!byte_io::getU64(cursor, end, n_counters)) {
        error = "snapshot counter table truncated";
        return false;
    }
    for (std::uint64_t i = 0; i < n_counters; ++i) {
        std::string name;
        std::uint64_t v = 0;
        if (!byte_io::getString(cursor, end, name, kMaxStatName) ||
            !byte_io::getU64(cursor, end, v)) {
            error = "snapshot counter entry truncated";
            return false;
        }
        counters[name] = v;
    }

    std::uint64_t n_scalars = 0;
    if (!byte_io::getU64(cursor, end, n_scalars)) {
        error = "snapshot scalar table truncated";
        return false;
    }
    for (std::uint64_t i = 0; i < n_scalars; ++i) {
        std::string name;
        ScalarAgg agg;
        if (!byte_io::getString(cursor, end, name, kMaxStatName) ||
            !byte_io::getU64(cursor, end, agg.count) ||
            !byte_io::getI64(cursor, end, agg.sum_fp) ||
            !byte_io::getF64(cursor, end, agg.min) ||
            !byte_io::getF64(cursor, end, agg.max)) {
            error = "snapshot scalar entry truncated";
            return false;
        }
        scalars[name] = agg;
    }

    std::uint64_t n_hists = 0;
    if (!byte_io::getU64(cursor, end, n_hists)) {
        error = "snapshot histogram table truncated";
        return false;
    }
    for (std::uint64_t i = 0; i < n_hists; ++i) {
        std::string name;
        HdrHistogram h;
        if (!byte_io::getString(cursor, end, name, kMaxStatName)) {
            error = "snapshot histogram name truncated";
            return false;
        }
        if (!h.tryDeserialize(cursor, end, error)) {
            return false;
        }
        hists.emplace(name, std::move(h));
    }

    counters_ = std::move(counters);
    scalars_ = std::move(scalars);
    hists_ = std::move(hists);
    p = cursor;
    return true;
}

} // namespace vstream
