/**
 * @file
 * Lightweight statistics package.
 *
 * Three flavours cover the paper's reporting needs: Scalar counters,
 * streaming Distributions (mean/stddev/min/max), and SampleSeries,
 * which retains every sample so the figure benches can print exact
 * CDFs (Fig. 2b-e, Fig. 4c-d).
 */

#ifndef VSTREAM_SIM_STATS_HH
#define VSTREAM_SIM_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vstream
{
namespace stats
{

/** A named monotonically adjustable counter. */
class Scalar
{
  public:
    explicit Scalar(std::string name = "", std::string desc = "");

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }

    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** Streaming distribution: O(1) memory, Welford mean/variance. */
class Distribution
{
  public:
    explicit Distribution(std::string name = "", std::string desc = "");

    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double total() const { return total_; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double total_ = 0.0;
};

/**
 * Distribution that retains all samples, for percentiles and CDFs.
 */
class SampleSeries
{
  public:
    explicit SampleSeries(std::string name = "", std::string desc = "");

    void sample(double v) { samples_.push_back(v); }
    void reset() { samples_.clear(); }

    /** Pre-size for @p n samples (hot loops pre-reserve so sampling
     * never reallocates mid-run). */
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::uint64_t count() const { return samples_.size(); }
    double total() const;
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1] (nearest-rank on the sorted
     * copy).  Returns 0 when empty.
     */
    double percentile(double q) const;

    /** Fraction of samples strictly greater than @p threshold. */
    double fractionAbove(double threshold) const;

    /** Sorted copy of the samples (ascending) for CDF printing. */
    std::vector<double> sorted() const;

    const std::vector<double> &samples() const { return samples_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::vector<double> samples_;
};

/** Fixed-width bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(std::string name, double lo, double hi, std::size_t buckets,
              std::string desc = "");

    void sample(double v);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }
    std::size_t buckets() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t count() const { return count_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    double low() const { return lo_; }
    double high() const { return hi_; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/** Print "name value  # desc" in fixed columns. */
void printStat(std::ostream &os, const std::string &name, double value,
               const std::string &desc = "");

} // namespace stats
} // namespace vstream

#endif // VSTREAM_SIM_STATS_HH
