#include "sim/stats_registry.hh"

#include <algorithm>
#include <utility>

#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace vstream
{

bool
validStatName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.') {
        return false;
    }
    bool prev_dot = false;
    for (char c : name) {
        if (c == '.') {
            if (prev_dot) {
                return false;
            }
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) {
            return false;
        }
    }
    return true;
}

const char *
StatsRegistry::kindName(Kind k)
{
    switch (k) {
      case Kind::kScalar:
        return "scalar";
      case Kind::kCallback:
        return "scalar"; // callbacks are scalars to every consumer
      case Kind::kDistribution:
        return "distribution";
      case Kind::kSeries:
        return "series";
      case Kind::kHistogram:
        return "histogram";
    }
    return "unknown";
}

StatsRegistry::Entry &
StatsRegistry::insert(const std::string &name, Kind kind)
{
    vs_assert(validStatName(name), "bad stat name '", name,
              "' (want dotted [A-Za-z0-9_] segments)");
    if (index_.find(name) != index_.end()) {
        vs_panic("duplicate stat registration: '", name, "'");
    }
    Entry &e = pool_.emplace_back();
    e.name = name;
    e.kind = kind;
    index_.emplace(name, &e);
    sorted_.clear(); // view rebuilt lazily on the next dump
    return e;
}

const std::vector<const StatsRegistry::Entry *> &
StatsRegistry::sortedEntries() const
{
    if (sorted_.size() != pool_.size()) {
        sorted_.clear();
        sorted_.reserve(pool_.size());
        for (const Entry &e : pool_) {
            sorted_.push_back(&e);
        }
        std::sort(sorted_.begin(), sorted_.end(),
                  [](const Entry *a, const Entry *b) {
                      return a->name < b->name;
                  });
    }
    return sorted_;
}

void
StatsRegistry::add(const std::string &name, stats::Scalar &s)
{
    Entry &e = insert(name, Kind::kScalar);
    e.scalar = &s;
    e.desc = s.desc();
}

void
StatsRegistry::add(const std::string &name, stats::Distribution &d)
{
    Entry &e = insert(name, Kind::kDistribution);
    e.dist = &d;
    e.desc = d.desc();
}

void
StatsRegistry::add(const std::string &name, stats::SampleSeries &s)
{
    Entry &e = insert(name, Kind::kSeries);
    e.series = &s;
    e.desc = s.desc();
}

void
StatsRegistry::add(const std::string &name, stats::Histogram &h)
{
    Entry &e = insert(name, Kind::kHistogram);
    e.histogram = &h;
    e.desc = h.desc();
}

void
StatsRegistry::addCallback(const std::string &name, std::string desc,
                           std::function<double()> fn)
{
    vs_assert(fn != nullptr, "null stat callback for '", name, "'");
    Entry &e = insert(name, Kind::kCallback);
    e.desc = std::move(desc);
    e.callback = std::move(fn);
}

bool
StatsRegistry::contains(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(pool_.size());
    for (const Entry *e : sortedEntries()) {
        out.push_back(e->name);
    }
    return out;
}

double
StatsRegistry::value(const std::string &name) const
{
    const auto it = index_.find(name);
    vs_assert(it != index_.end(), "unknown stat '", name, "'");
    const Entry &e = *it->second;
    switch (e.kind) {
      case Kind::kScalar:
        return e.scalar->value();
      case Kind::kCallback:
        return e.callback();
      case Kind::kDistribution:
        return e.dist->mean();
      case Kind::kSeries:
        return e.series->mean();
      case Kind::kHistogram:
        return static_cast<double>(e.histogram->count());
    }
    return 0.0;
}

std::vector<std::pair<std::string, double>>
StatsRegistry::fields(const Entry &e)
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(8); // widest kind (series) exports eight fields
    switch (e.kind) {
      case Kind::kScalar:
        out.emplace_back("value", e.scalar->value());
        break;
      case Kind::kCallback:
        out.emplace_back("value", e.callback());
        break;
      case Kind::kDistribution:
        out.emplace_back("count",
                         static_cast<double>(e.dist->count()));
        out.emplace_back("total", e.dist->total());
        out.emplace_back("mean", e.dist->mean());
        out.emplace_back("stddev", e.dist->stddev());
        out.emplace_back("min", e.dist->min());
        out.emplace_back("max", e.dist->max());
        break;
      case Kind::kSeries:
        out.emplace_back("count",
                         static_cast<double>(e.series->count()));
        out.emplace_back("total", e.series->total());
        out.emplace_back("mean", e.series->mean());
        out.emplace_back("p50", e.series->percentile(0.50));
        out.emplace_back("p90", e.series->percentile(0.90));
        out.emplace_back("p99", e.series->percentile(0.99));
        out.emplace_back("min", e.series->percentile(0.0));
        out.emplace_back("max", e.series->percentile(1.0));
        break;
      case Kind::kHistogram:
        out.emplace_back("count",
                         static_cast<double>(e.histogram->count()));
        out.emplace_back("underflow",
                         static_cast<double>(e.histogram->underflow()));
        out.emplace_back("overflow",
                         static_cast<double>(e.histogram->overflow()));
        break;
    }
    return out;
}

void
StatsRegistry::dumpText(std::ostream &os) const
{
    // One scratch line name reused across all aggregate entries so the
    // dump loop does not allocate a fresh string per exported field.
    std::string scratch;
    for (const Entry *ep : sortedEntries()) {
        const Entry &e = *ep;
        if (e.kind == Kind::kScalar || e.kind == Kind::kCallback) {
            stats::printStat(os, e.name, fields(e).front().second, e.desc);
            continue;
        }
        // Aggregate kinds print one line per exported field, keeping
        // the classic one-value-per-line text shape.
        for (const auto &[field, v] : fields(e)) {
            scratch.assign(e.name);
            scratch.append("::");
            scratch.append(field);
            stats::printStat(os, scratch, v, e.desc);
        }
    }
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "vstream-stats-1");
    w.key("stats");
    w.beginObject();
    for (const Entry *ep : sortedEntries()) {
        const Entry &e = *ep;
        w.key(e.name);
        w.beginObject();
        w.kv("kind", kindName(e.kind));
        if (!e.desc.empty()) {
            w.kv("desc", e.desc);
        }
        for (const auto &[field, v] : fields(e)) {
            w.kv(field, v);
        }
        if (e.kind == Kind::kHistogram) {
            const stats::Histogram &h = *e.histogram;
            w.kv("lo", h.low());
            w.kv("hi", h.high());
            w.key("buckets");
            w.beginArray();
            for (std::size_t i = 0; i < h.buckets(); ++i) {
                w.value(h.bucketCount(i));
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
StatsRegistry::dumpCsv(std::ostream &os) const
{
    os << "name,kind,field,value\n";
    for (const Entry *ep : sortedEntries()) {
        const Entry &e = *ep;
        for (const auto &[field, v] : fields(e)) {
            os << e.name << ',' << kindName(e.kind) << ',' << field << ','
               << jsonNumber(v) << '\n';
        }
    }
}

void
StatsRegistry::resetAll()
{
    for (Entry &e : pool_) {
        switch (e.kind) {
          case Kind::kScalar:
            e.scalar->reset();
            break;
          case Kind::kCallback:
            break; // owner resets the underlying counter
          case Kind::kDistribution:
            e.dist->reset();
            break;
          case Kind::kSeries:
            e.series->reset();
            break;
          case Kind::kHistogram:
            e.histogram->reset();
            break;
        }
    }
}

} // namespace vstream
