#include "sim/json_writer.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace vstream
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    // Integers up to 2^53 print exactly, without an exponent, so
    // counters stay grep-able; everything else round-trips via %.17g.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

JsonWriter::~JsonWriter()
{
    if (has_elem_.empty()) {
        os_ << "\n";
    }
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_) {
        return;
    }
    os_ << "\n";
    for (std::size_t i = 0; i < has_elem_.size(); ++i) {
        os_ << "  ";
    }
}

void
JsonWriter::beforeValue()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!has_elem_.empty()) {
        if (has_elem_.back()) {
            os_ << ",";
        }
        has_elem_.back() = true;
        newlineIndent();
    }
}

void
JsonWriter::beforeContainer(char open)
{
    beforeValue();
    os_ << open;
    has_elem_.push_back(false);
}

void
JsonWriter::beginObject()
{
    beforeContainer('{');
}

void
JsonWriter::endObject()
{
    vs_assert(!has_elem_.empty(), "endObject with no open container");
    const bool had = has_elem_.back();
    has_elem_.pop_back();
    if (had) {
        newlineIndent();
    }
    os_ << "}";
    if (has_elem_.empty()) {
        os_ << "\n";
        has_elem_.push_back(true); // root closed; suppress dtor newline
    }
}

void
JsonWriter::beginArray()
{
    beforeContainer('[');
}

void
JsonWriter::endArray()
{
    vs_assert(!has_elem_.empty(), "endArray with no open container");
    const bool had = has_elem_.back();
    has_elem_.pop_back();
    if (had) {
        newlineIndent();
    }
    os_ << "]";
    if (has_elem_.empty()) {
        os_ << "\n";
        has_elem_.push_back(true);
    }
}

void
JsonWriter::key(const std::string &k)
{
    vs_assert(!has_elem_.empty(), "key() outside an object");
    if (has_elem_.back()) {
        os_ << ",";
    }
    has_elem_.back() = true;
    newlineIndent();
    os_ << '"' << jsonEscape(k) << "\":" << (pretty_ ? " " : "");
    pending_key_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    beforeValue();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::nullValue()
{
    beforeValue();
    os_ << "null";
}

} // namespace vstream
