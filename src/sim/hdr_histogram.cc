#include "sim/hdr_histogram.hh"

#include <bit>
#include <cmath>

#include "sim/byte_io.hh"
#include "sim/logging.hh"

namespace vstream
{

HdrHistogram::HdrHistogram(unsigned unit_bits)
    : unit_bits_(unit_bits)
{
    vs_assert(unit_bits_ >= 2 && unit_bits_ <= 20,
              "unit_bits out of range");
}

std::size_t
HdrHistogram::bucketIndex(std::uint64_t v) const
{
    const std::uint64_t sub = std::uint64_t{1} << unit_bits_;
    if (v < sub) {
        return static_cast<std::size_t>(v);
    }
    // The top unit_bits bits of v select a sub-bucket inside the
    // octave named by v's bit width; the low half of each octave's
    // sub-bucket range aliases the previous octave, hence the
    // (sub / 2)-wide stride per octave above the exact region.
    const unsigned width = static_cast<unsigned>(std::bit_width(v));
    const unsigned shift = width - unit_bits_;
    const std::uint64_t top = v >> shift;
    return static_cast<std::size_t>(
        sub + (shift - 1) * (sub / 2) + (top - sub / 2));
}

std::uint64_t
HdrHistogram::bucketLowerBound(std::size_t index) const
{
    const std::uint64_t sub = std::uint64_t{1} << unit_bits_;
    if (index < sub) {
        return static_cast<std::uint64_t>(index);
    }
    const std::uint64_t off = index - sub;
    const unsigned shift =
        static_cast<unsigned>(off / (sub / 2)) + 1;
    const std::uint64_t top = off % (sub / 2) + sub / 2;
    return top << shift;
}

void
HdrHistogram::record(std::uint64_t v)
{
    record(v, 1);
}

void
HdrHistogram::record(std::uint64_t v, std::uint64_t n)
{
    if (n == 0) {
        return;
    }
    const std::size_t idx = bucketIndex(v);
    if (idx >= buckets_.size()) {
        buckets_.resize(idx + 1, 0);
    }
    buckets_[idx] += n;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += n;
    const std::uint64_t add = v * n;
    vs_assert(v == 0 || add / v == n, "histogram sum overflow");
    vs_assert(sum_ + add >= sum_, "histogram sum overflow");
    sum_ += add;
}

double
HdrHistogram::mean() const
{
    if (count_ == 0) {
        return 0.0;
    }
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
HdrHistogram::percentile(double q) const
{
    if (count_ == 0) {
        return 0;
    }
    vs_assert(q >= 0.0 && q <= 1.0, "quantile out of [0, 1]");
    // Nearest-rank: the smallest bucket whose cumulative count
    // reaches ceil(q * count), clamped to at least rank 1.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0) {
        rank = 1;
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum >= rank) {
            // Exact endpoints beat the bucket bound when the rank
            // lands on them: a single-value histogram reports that
            // value at every quantile.
            const std::uint64_t lo = bucketLowerBound(i);
            if (lo < min_) {
                return min_;
            }
            return std::min(lo, max_);
        }
    }
    vs_panic("histogram bucket counts disagree with count()");
}

void
HdrHistogram::merge(const HdrHistogram &other)
{
    if (other.count_ == 0) {
        return;
    }
    vs_assert(unit_bits_ == other.unit_bits_,
              "merging histograms with different unit_bits");
    if (other.buckets_.size() > buckets_.size()) {
        buckets_.resize(other.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    vs_assert(sum_ + other.sum_ >= sum_, "histogram sum overflow");
    sum_ += other.sum_;
}

void
HdrHistogram::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    buckets_.clear();
}

bool
HdrHistogram::operator==(const HdrHistogram &other) const
{
    if (unit_bits_ != other.unit_bits_ || count_ != other.count_ ||
        sum_ != other.sum_ || min() != other.min() ||
        max() != other.max()) {
        return false;
    }
    // Trailing zero buckets are representation noise, not state.
    const std::size_t n =
        std::max(buckets_.size(), other.buckets_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a =
            i < buckets_.size() ? buckets_[i] : 0;
        const std::uint64_t b =
            i < other.buckets_.size() ? other.buckets_[i] : 0;
        if (a != b) {
            return false;
        }
    }
    return true;
}

void
HdrHistogram::serialize(std::vector<std::uint8_t> &out) const
{
    byte_io::putU32(out, unit_bits_);
    byte_io::putU64(out, count_);
    byte_io::putU64(out, sum_);
    // min()/max() normalize the empty case to 0, matching the state
    // operator== compares.
    byte_io::putU64(out, min());
    byte_io::putU64(out, max());
    byte_io::putU64(out, buckets_.size());
    for (const std::uint64_t b : buckets_) {
        byte_io::putU64(out, b);
    }
}

bool
HdrHistogram::tryDeserialize(const std::uint8_t *&p,
                             const std::uint8_t *end,
                             std::string &error)
{
    const std::uint8_t *cursor = p;
    std::uint32_t unit_bits = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t mn = 0;
    std::uint64_t mx = 0;
    std::uint64_t n_buckets = 0;
    if (!byte_io::getU32(cursor, end, unit_bits) ||
        !byte_io::getU64(cursor, end, count) ||
        !byte_io::getU64(cursor, end, sum) ||
        !byte_io::getU64(cursor, end, mn) ||
        !byte_io::getU64(cursor, end, mx) ||
        !byte_io::getU64(cursor, end, n_buckets)) {
        error = "histogram header truncated";
        return false;
    }
    if (unit_bits < 2 || unit_bits > 20) {
        error = "histogram unit_bits out of range";
        return false;
    }
    // The announced bucket count must fit the remaining payload
    // before any allocation happens (8 bytes per bucket).
    if (n_buckets > static_cast<std::uint64_t>(end - cursor) / 8) {
        error = "histogram bucket count exceeds payload";
        return false;
    }
    std::vector<std::uint64_t> buckets;
    buckets.reserve(static_cast<std::size_t>(n_buckets));
    for (std::uint64_t i = 0; i < n_buckets; ++i) {
        std::uint64_t b = 0;
        if (!byte_io::getU64(cursor, end, b)) {
            error = "histogram buckets truncated";
            return false;
        }
        buckets.push_back(b);
    }
    unit_bits_ = unit_bits;
    count_ = count;
    sum_ = sum;
    min_ = mn;
    max_ = mx;
    buckets_ = std::move(buckets);
    p = cursor;
    return true;
}

} // namespace vstream
