#include "sim/fault_injector.hh"

#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::kNetworkStall:
        return "stall";
      case FaultClass::kDigestCollision:
        return "digest";
      case FaultClass::kDramTimeout:
        return "dram";
      case FaultClass::kTraceCorrupt:
        return "trace";
    }
    return "?";
}

namespace
{

/**
 * Largest double guaranteed to static_cast into a Tick: the cast is
 * undefined behaviour the moment the (truncated) value cannot be
 * represented, so every float-to-tick conversion must stay strictly
 * below this.  2^63 is exactly representable as a double and leaves
 * the whole check in one comparison that is also false for NaN/inf.
 */
constexpr double kMaxTickDouble = 9223372036854775808.0; // 2^63

/** Parse "250ms" / "1.5s" / "400us" / bare "250" (ms) into ticks. */
bool
tryParseTicks(const std::string &value, Tick &out, std::string &error)
{
    char *end = nullptr;
    const double x = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
        error = "bad time '" + value + "'";
        return false;
    }
    const std::string unit(end);
    double scale = static_cast<double>(sim_clock::ms);
    if (unit == "ps") {
        scale = static_cast<double>(sim_clock::ps);
    } else if (unit == "ns") {
        scale = static_cast<double>(sim_clock::ns);
    } else if (unit == "us") {
        scale = static_cast<double>(sim_clock::us);
    } else if (unit == "ms" || unit.empty()) {
        scale = static_cast<double>(sim_clock::ms);
    } else if (unit == "s") {
        scale = static_cast<double>(sim_clock::s);
    } else {
        error = "unknown time unit '" + unit + "'";
        return false;
    }
    // !(x >= 0) rejects NaN along with negatives, and the product
    // bound rejects +inf and anything whose tick count would leave
    // the Tick range (a hostile "1e300s" must not reach the cast).
    const double ticks = x * scale;
    if (!(x >= 0.0) || !(ticks < kMaxTickDouble)) {
        error = "time '" + value + "' is not a finite tick count";
        return false;
    }
    out = static_cast<Tick>(ticks);
    return true;
}

bool
tryParseProbability(const std::string &value, double &out,
                    std::string &error)
{
    char *end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    // The inclusive-range form is false for NaN, which the old
    // "p < 0 || p > 1" rejection let straight through.
    if (end == value.c_str() || *end != '\0' ||
        !(p >= 0.0 && p <= 1.0)) {
        error = "bad probability '" + value + "'";
        return false;
    }
    out = p;
    return true;
}

bool
tryParseCount(const std::string &value, std::uint64_t &out,
              std::string &error)
{
    // strtoull's failure modes are all traps for untrusted input:
    // "" and "abc" parse as 0, "-5" wraps to 2^64-5, and overflow
    // clamps with errno nobody checks.  Accept plain digits only.
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        error = "bad count '" + value + "'";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size()) {
        error = "count '" + value + "' out of range";
        return false;
    }
    out = v;
    return true;
}

} // namespace

bool
tryParseFaultRule(FaultClass cls, const std::string &spec,
                  FaultRule &out, std::string &error)
{
    FaultRule rule;
    rule.cls = cls;

    bool have_p = false;
    bool have_max = false;
    bool have_at = false;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            comma = spec.size();
        }
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (field.empty()) {
            continue;
        }
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            error = "field '" + field + "' is not key=value";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        bool ok = true;
        if (key == "p") {
            ok = tryParseProbability(value, rule.probability, error);
            have_p = true;
        } else if (key == "from") {
            ok = tryParseTicks(value, rule.from, error);
        } else if (key == "until") {
            ok = tryParseTicks(value, rule.until, error);
        } else if (key == "at") {
            ok = tryParseTicks(value, rule.from, error);
            have_at = true;
        } else if (key == "max") {
            ok = tryParseCount(value, rule.max_count, error);
            have_max = true;
        } else if (key == "len") {
            ok = tryParseTicks(value, rule.duration, error);
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            return false;
        }
    }

    // "at=T" is a one-shot: fire exactly once, deterministically,
    // from T onward, unless the spec overrides p/max itself.
    if (have_at) {
        if (!have_p) {
            rule.probability = 1.0;
        }
        if (!have_max) {
            rule.max_count = 1;
        }
    }
    if (rule.until <= rule.from) {
        error = "empty fault window";
        return false;
    }
    out = rule;
    return true;
}

FaultRule
parseFaultRule(FaultClass cls, const std::string &spec)
{
    FaultRule rule;
    std::string error;
    if (!tryParseFaultRule(cls, spec, rule, error)) {
        vs_fatal("fault spec '", spec, "': ", error);
    }
    return rule;
}

bool
FaultConfig::anyRuleFor(FaultClass c) const
{
    for (const FaultRule &rule : rules) {
        if (rule.cls == c) {
            return true;
        }
    }
    return false;
}

void
FaultConfig::validate() const
{
    for (const FaultRule &rule : rules) {
        if (rule.probability < 0.0 || rule.probability > 1.0) {
            vs_fatal("fault rule probability ", rule.probability,
                     " outside [0, 1]");
        }
        if (rule.until <= rule.from) {
            vs_fatal("fault rule window is empty");
        }
        if (rule.cls == FaultClass::kNetworkStall &&
            rule.duration == 0) {
            vs_fatal("network-stall rules need a duration (len=...)");
        }
    }
    if (dram_backoff_jitter < 0.0 || dram_backoff_jitter > 1.0) {
        vs_fatal("dram backoff jitter ", dram_backoff_jitter,
                 " outside [0, 1]");
    }
    if (dram_backoff_cap < dram_backoff_base) {
        vs_fatal("dram backoff cap ", dram_backoff_cap,
                 " below base ", dram_backoff_base);
    }
}

FaultConfig
FaultConfig::forSession(std::uint64_t session_id) const
{
    FaultConfig scoped = *this;
    // SplitMix the id into the seed rather than xor-ing it raw:
    // neighbouring ids (0, 1, 2, ...) must land on unrelated streams.
    std::uint64_t state = session_id + 0x517cc1b727220a95ULL;
    scoped.seed = seed ^ splitMix64(state);
    return scoped;
}

FaultInjector::FaultInjector(std::string name, EventQueue *queue,
                             const FaultConfig &cfg)
    : SimObject(std::move(name), queue), cfg_(cfg),
      rule_fired_(cfg_.rules.size(), 0)
{
    cfg_.validate();
    // Independent per-class streams: injections of one class never
    // perturb another class's schedule.
    std::uint64_t state = cfg_.seed;
    for (std::size_t c = 0; c < kNumFaultClasses; ++c) {
        rngs_[c].seed(splitMix64(state));
    }
}

bool
FaultInjector::shouldInject(FaultClass c, Tick now)
{
    if (!enabled()) {
        return false;
    }
    for (std::size_t i = 0; i < cfg_.rules.size(); ++i) {
        const FaultRule &rule = cfg_.rules[i];
        if (rule.cls != c || now < rule.from || now >= rule.until ||
            rule_fired_[i] >= rule.max_count) {
            continue;
        }
        if (rngs_[index(c)].chance(rule.probability)) {
            ++rule_fired_[i];
            ++injected_[index(c)];
            return true;
        }
    }
    return false;
}

Tick
FaultInjector::injectStall(Tick now)
{
    if (!enabled()) {
        return 0;
    }
    const std::size_t ci = index(FaultClass::kNetworkStall);
    for (std::size_t i = 0; i < cfg_.rules.size(); ++i) {
        const FaultRule &rule = cfg_.rules[i];
        if (rule.cls != FaultClass::kNetworkStall || now < rule.from ||
            now >= rule.until || rule_fired_[i] >= rule.max_count) {
            continue;
        }
        if (rngs_[ci].chance(rule.probability)) {
            ++rule_fired_[i];
            ++injected_[ci];
            return rule.duration;
        }
    }
    return 0;
}

FaultTotals
FaultInjector::totals() const
{
    FaultTotals t;
    for (std::size_t c = 0; c < kNumFaultClasses; ++c) {
        t.injected += injected_[c];
        t.recovered += recovered_[c];
        t.abandoned += abandoned_[c];
    }
    return t;
}

void
FaultInjector::regStats(StatsRegistry &r)
{
    for (std::size_t c = 0; c < kNumFaultClasses; ++c) {
        const auto cls = static_cast<FaultClass>(c);
        const std::string base =
            name() + "." + faultClassName(cls) + ".";
        r.addCallback(base + "injected", "faults injected",
                      [this, c] {
                          return static_cast<double>(injected_[c]);
                      });
        r.addCallback(base + "recovered",
                      "injected faults recovered from", [this, c] {
                          return static_cast<double>(recovered_[c]);
                      });
        r.addCallback(base + "abandoned",
                      "injected faults abandoned after retries",
                      [this, c] {
                          return static_cast<double>(abandoned_[c]);
                      });
    }
}

void
FaultInjector::resetStats()
{
    injected_.fill(0);
    recovered_.fill(0);
    abandoned_.fill(0);
    // rule_fired_ is architectural (max_count caps), not a stat.
}

} // namespace vstream
