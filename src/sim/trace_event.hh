/**
 * @file
 * Chrome-trace / Perfetto timeline sink.
 *
 * Records simulation activity - decode bursts, power-state dwells,
 * display scan-outs, DRAM counters, raw EventQueue firings - as
 * Trace Event Format JSON that loads directly in ui.perfetto.dev or
 * chrome://tracing (see docs/TRACING.md).
 *
 * Tracks map to trace "threads" of one process: each track gets a
 * stable tid in registration order plus a thread_name metadata
 * record.  Simulated ticks (picoseconds) are converted to the trace
 * format's microsecond timestamps at write time; events are sorted
 * by (track, ts) so every track's timeline is monotonic regardless
 * of emission order.
 */

#ifndef VSTREAM_SIM_TRACE_EVENT_HH
#define VSTREAM_SIM_TRACE_EVENT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace vstream
{

/** Collects trace events; one instance per simulation run. */
class TraceEventSink
{
  public:
    using TrackId = std::uint32_t;

    /** (key, value) pairs attached to an event's "args" object. */
    using Args = std::vector<std::pair<std::string, double>>;

    TraceEventSink() = default;

    TraceEventSink(const TraceEventSink &) = delete;
    TraceEventSink &operator=(const TraceEventSink &) = delete;

    /** Id for @p name, creating the track on first use. */
    TrackId track(const std::string &name);

    /** A slice [start, start+duration) on @p t (phase "X"). */
    void complete(TrackId t, const std::string &name, Tick start,
                  Tick duration, Args args = {});

    /** A zero-duration marker (phase "i", thread scope). */
    void instant(TrackId t, const std::string &name, Tick ts,
                 Args args = {});

    /** A sampled counter value (phase "C"). */
    void counter(TrackId t, const std::string &name, Tick ts,
                 double value);

    std::size_t eventCount() const { return events_.size(); }
    std::size_t trackCount() const { return tracks_.size(); }

    /**
     * Emit {"traceEvents": [...], ...}.  Metadata (process/thread
     * names) first, then all events sorted by (track, timestamp).
     */
    void writeJson(std::ostream &os) const;

  private:
    struct TraceEvent
    {
        char ph;
        TrackId tid;
        std::string name;
        Tick ts;
        Tick dur;
        double value; // counter payload
        Args args;
    };

    std::vector<std::string> tracks_;
    std::vector<TraceEvent> events_;
};

} // namespace vstream

#endif // VSTREAM_SIM_TRACE_EVENT_HH
