/**
 * @file
 * Minimal streaming JSON emitter.
 *
 * The observability layer (StatsRegistry exporters, TraceEventSink,
 * bench reports) writes machine-readable JSON; this writer owns the
 * two things that are easy to get wrong by hand: string escaping and
 * round-trippable double formatting (no NaN/Inf leaks into the
 * output - both serialize as null, which every JSON parser accepts).
 *
 * Usage is explicitly structural: beginObject()/endObject() and
 * beginArray()/endArray() must nest correctly; commas and newlines
 * are inserted automatically.
 */

#ifndef VSTREAM_SIM_JSON_WRITER_HH
#define VSTREAM_SIM_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vstream
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format @p v as a JSON number ("null" for NaN/Inf). */
std::string jsonNumber(double v);

/** Structural JSON writer over an ostream. */
class JsonWriter
{
  public:
    /** @param pretty insert newlines and two-space indentation. */
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    /** Finishes with a trailing newline when the root closes. */
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value call supplies its value. */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(bool v);
    void nullValue();

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

  private:
    void beforeValue();
    void beforeContainer(char open);
    void newlineIndent();

    std::ostream &os_;
    bool pretty_;
    bool pending_key_ = false;
    /** Per-depth flag: has this container emitted an element yet? */
    std::vector<bool> has_elem_;
};

} // namespace vstream

#endif // VSTREAM_SIM_JSON_WRITER_HH
