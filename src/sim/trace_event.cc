#include "sim/trace_event.hh"

#include <algorithm>

#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace vstream
{

namespace
{

/** Ticks (ps) to Trace-Event-Format microseconds. */
double
ticksToTraceUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

TraceEventSink::TrackId
TraceEventSink::track(const std::string &name)
{
    for (TrackId i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i] == name) {
            return i;
        }
    }
    tracks_.push_back(name);
    return static_cast<TrackId>(tracks_.size() - 1);
}

void
TraceEventSink::complete(TrackId t, const std::string &name, Tick start,
                         Tick duration, Args args)
{
    vs_assert(t < tracks_.size(), "unknown trace track ", t);
    events_.push_back(
        {'X', t, name, start, duration, 0.0, std::move(args)});
}

void
TraceEventSink::instant(TrackId t, const std::string &name, Tick ts,
                        Args args)
{
    vs_assert(t < tracks_.size(), "unknown trace track ", t);
    events_.push_back({'i', t, name, ts, 0, 0.0, std::move(args)});
}

void
TraceEventSink::counter(TrackId t, const std::string &name, Tick ts,
                        double value)
{
    vs_assert(t < tracks_.size(), "unknown trace track ", t);
    events_.push_back({'C', t, name, ts, 0, value, {}});
}

void
TraceEventSink::writeJson(std::ostream &os) const
{
    // Sort a copy of the event indices by (track, ts, insertion) so
    // each track's lane is monotonic in ts - Perfetto rejects
    // overlapping/backwards slices within one thread.
    std::vector<std::size_t> order(events_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         if (events_[a].tid != events_[b].tid) {
                             return events_[a].tid < events_[b].tid;
                         }
                         return events_[a].ts < events_[b].ts;
                     });

    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();

    // Metadata: one process, one named thread per track.
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{0});
    w.kv("name", "process_name");
    w.key("args");
    w.beginObject();
    w.kv("name", "vstream");
    w.endObject();
    w.endObject();
    for (TrackId t = 0; t < tracks_.size(); ++t) {
        w.beginObject();
        w.kv("ph", "M");
        w.kv("pid", std::uint64_t{0});
        w.kv("tid", static_cast<std::uint64_t>(t));
        w.kv("name", "thread_name");
        w.key("args");
        w.beginObject();
        w.kv("name", tracks_[t]);
        w.endObject();
        w.endObject();
        // sort_index pins the lane order to track creation order.
        w.beginObject();
        w.kv("ph", "M");
        w.kv("pid", std::uint64_t{0});
        w.kv("tid", static_cast<std::uint64_t>(t));
        w.kv("name", "thread_sort_index");
        w.key("args");
        w.beginObject();
        w.kv("sort_index", static_cast<std::uint64_t>(t));
        w.endObject();
        w.endObject();
    }

    for (std::size_t idx : order) {
        const TraceEvent &e = events_[idx];
        w.beginObject();
        w.kv("ph", std::string(1, e.ph));
        w.kv("pid", std::uint64_t{0});
        w.kv("tid", static_cast<std::uint64_t>(e.tid));
        w.kv("name", e.name);
        w.kv("ts", ticksToTraceUs(e.ts));
        if (e.ph == 'X') {
            w.kv("dur", ticksToTraceUs(e.dur));
        }
        if (e.ph == 'i') {
            w.kv("s", "t"); // thread-scoped instant
        }
        if (e.ph == 'C') {
            w.key("args");
            w.beginObject();
            w.kv("value", e.value);
            w.endObject();
        } else if (!e.args.empty()) {
            w.key("args");
            w.beginObject();
            for (const auto &[k, v] : e.args) {
                w.kv(k, v);
            }
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
}

} // namespace vstream
