/**
 * @file
 * Little-endian byte (de)serialization helpers.
 *
 * The checkpoint formats (serve/snapshot.hh) and the stats snapshot
 * serializers need one shared, exact wire idiom: fixed-width
 * little-endian integers, doubles as IEEE-754 bit patterns (so a
 * round trip is bit-identical, never "close"), and length-prefixed
 * strings.  Writers append to a byte vector; readers are fail-closed
 * cursors that refuse to read past @p end and leave the cursor
 * untouched on failure, so a truncated or hostile buffer can never
 * produce out-of-bounds reads or half-updated state.
 */

#ifndef VSTREAM_SIM_BYTE_IO_HH
#define VSTREAM_SIM_BYTE_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace vstream
{
namespace byte_io
{

inline void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) &
                                                0xffu));
    }
}

inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) &
                                                0xffu));
    }
}

inline void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

/** Doubles travel as their IEEE-754 bit pattern: round-tripping a
 * checkpoint must be exact, not merely close. */
inline void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

inline void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

inline bool
getU32(const std::uint8_t *&p, const std::uint8_t *end,
       std::uint32_t &v)
{
    if (end - p < 4) {
        return false;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    p += 4;
    return true;
}

inline bool
getU64(const std::uint8_t *&p, const std::uint8_t *end,
       std::uint64_t &v)
{
    if (end - p < 8) {
        return false;
    }
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    return true;
}

inline bool
getI64(const std::uint8_t *&p, const std::uint8_t *end,
       std::int64_t &v)
{
    std::uint64_t u = 0;
    if (!getU64(p, end, u)) {
        return false;
    }
    v = static_cast<std::int64_t>(u);
    return true;
}

inline bool
getF64(const std::uint8_t *&p, const std::uint8_t *end, double &v)
{
    std::uint64_t bits = 0;
    if (!getU64(p, end, bits)) {
        return false;
    }
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

/** @p max_len caps the announced length so a hostile prefix cannot
 * force a giant allocation before the bounds check. */
inline bool
getString(const std::uint8_t *&p, const std::uint8_t *end,
          std::string &s, std::uint32_t max_len)
{
    const std::uint8_t *cursor = p;
    std::uint32_t len = 0;
    if (!getU32(cursor, end, len) || len > max_len ||
        static_cast<std::size_t>(end - cursor) < len) {
        return false;
    }
    s.assign(reinterpret_cast<const char *>(cursor), len);
    p = cursor + len;
    return true;
}

} // namespace byte_io
} // namespace vstream

#endif // VSTREAM_SIM_BYTE_IO_HH
