#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace vstream
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_) {
        word = splitMix64(sm);
    }
    have_spare_ = false;
    spare_ = 0.0;
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Random::uniform()
{
    // 53 bits of mantissa, standard conversion.
    return (next() >> 11) * 0x1.0p-53;
}

double
Random::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Random::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    vs_assert(lo <= hi, "uniformInt range inverted");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) { // [0, 2^64-1]: full range
        return next();
    }
    const std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % span;
}

bool
Random::chance(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniform() < p;
}

double
Random::gaussian()
{
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
}

double
Random::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Random::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

std::uint64_t
Random::burstLength(double continue_prob, std::uint64_t cap)
{
    std::uint64_t len = 1;
    while (len < cap && chance(continue_prob)) {
        ++len;
    }
    return len;
}

} // namespace vstream
