/**
 * @file
 * Hierarchical statistics registry.
 *
 * Every stat-bearing component registers its Scalar / Distribution /
 * SampleSeries / Histogram stats (or a read-only callback over a raw
 * counter) under a hierarchical dotted name such as
 * "vd.cache.missRate" or "mem.dram.vd.activations".  The registry is
 * then the single source of truth for reporting: the text, JSON and
 * CSV exporters all walk the same entry list, so a stat registered
 * once shows up in every output format, and a stat that is *not*
 * registered cannot be printed at all (tools/vstream_lint.py's
 * registry-stats rule enforces this by banning direct printStat
 * calls outside src/sim).
 *
 * The registry does not own the stats: components keep their
 * counters, register pointers in regStats(), and the registry reads
 * them at dump time.  This keeps the hot paths free of any
 * registry involvement - incrementing a counter stays a plain
 * member-variable increment; the registry is only walked when a dump
 * is requested (see docs/STATS.md and DESIGN.md §11).
 *
 * Names must match [A-Za-z0-9_] segments separated by single dots;
 * duplicate registration is a panic (two components writing the same
 * name would silently shadow each other in every exporter).
 */

#ifndef VSTREAM_SIM_STATS_REGISTRY_HH
#define VSTREAM_SIM_STATS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"

namespace vstream
{

/** The hierarchical stat registry; see file comment. */
class StatsRegistry
{
  public:
    StatsRegistry() = default;

    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    // --- registration ---------------------------------------------------
    // Each add() panics on an invalid or duplicate name.  The
    // registered object must outlive the registry (in practice both
    // live for one simulation run).

    /** Register @p s under @p name (desc taken from the stat). */
    void add(const std::string &name, stats::Scalar &s);
    void add(const std::string &name, stats::Distribution &d);
    void add(const std::string &name, stats::SampleSeries &s);
    void add(const std::string &name, stats::Histogram &h);

    /**
     * Register a read-only scalar over an existing raw counter.
     *
     * The owning component remains responsible for resetting the
     * underlying counter (resetStats()); resetAll() skips callbacks.
     */
    void addCallback(const std::string &name, std::string desc,
                     std::function<double()> fn);

    // --- queries --------------------------------------------------------

    bool contains(const std::string &name) const;
    std::size_t size() const { return pool_.size(); }

    /** All registered names in hierarchical (lexicographic) order. */
    std::vector<std::string> names() const;

    /** Value of a scalar/callback stat; panics on unknown name. */
    double value(const std::string &name) const;

    // --- exporters ------------------------------------------------------

    /** gem5-style "name value  # desc" lines, hierarchically sorted. */
    void dumpText(std::ostream &os) const;

    /** Flat JSON object keyed by dotted name; see docs/STATS.md. */
    void dumpJson(std::ostream &os) const;

    /** "name,kind,field,value" rows, one row per exported field. */
    void dumpCsv(std::ostream &os) const;

    // --- lifecycle ------------------------------------------------------

    /** Reset every registered stat object (callbacks are skipped). */
    void resetAll();

  private:
    enum class Kind : std::uint8_t
    {
        kScalar,
        kCallback,
        kDistribution,
        kSeries,
        kHistogram,
    };

    struct Entry
    {
        std::string name;
        Kind kind = Kind::kScalar;
        std::string desc;
        stats::Scalar *scalar = nullptr;
        stats::Distribution *dist = nullptr;
        stats::SampleSeries *series = nullptr;
        stats::Histogram *histogram = nullptr;
        std::function<double()> callback;
    };

    static const char *kindName(Kind k);

    /** Validate @p name and insert; panics on duplicates. */
    Entry &insert(const std::string &name, Kind kind);

    /** (field, value) pairs exported for @p e in every format. */
    static std::vector<std::pair<std::string, double>>
    fields(const Entry &e);

    /** Entries sorted by name - the hierarchical dump order.  Built
     * lazily so registration stays O(1) amortized. */
    const std::vector<const Entry *> &sortedEntries() const;

    // Flat storage plus an O(1) name index.  Registration and the
    // contains()/value() lookups that tests and exporters hammer no
    // longer pay std::map's O(log n) string compares; the
    // lexicographic order every dump format emits is recovered by the
    // lazily sorted view, so output bytes are unchanged.
    std::deque<Entry> pool_; // deque: growth keeps Entry pointers valid
    std::unordered_map<std::string, Entry *> index_;
    mutable std::vector<const Entry *> sorted_;
};

/** True iff @p name is a well-formed dotted stat name. */
bool validStatName(const std::string &name);

} // namespace vstream

#endif // VSTREAM_SIM_STATS_REGISTRY_HH
