/**
 * @file
 * Hardware video decoder (VD) timing model.
 *
 * Decodes a frame macroblock by macroblock: encoded bits are read
 * through the VD's internal cache, P/B mabs issue motion-compensation
 * reference reads against the previous frame's buffer, compute cycles
 * accrue per the calibrated cost model at the current P-state
 * frequency, and the decoded block is handed to a WritebackStage.
 * All memory stalls are folded into the frame's decode time, which is
 * how a frame can miss its 16.6 ms deadline (paper Region I).
 */

#ifndef VSTREAM_DECODER_VIDEO_DECODER_HH
#define VSTREAM_DECODER_VIDEO_DECODER_HH

#include <cstdint>
#include <memory>
#include <ostream>

#include "cache/set_assoc_cache.hh"
#include "core/frame_buffer_manager.hh"
#include "core/writeback_stage.hh"
#include "decoder/decode_cost_model.hh"
#include "decoder/decoder_config.hh"
#include "mem/memory_system.hh"
#include "sim/sim_object.hh"
#include "video/frame.hh"
#include "video/video_profile.hh"

namespace vstream
{

/** Timing outcome of decoding one frame. */
struct FrameDecodeResult
{
    Tick start = 0;
    Tick finish = 0;
    std::uint64_t mabs = 0;
    std::uint64_t encoded_bytes = 0;
    std::uint64_t mc_reads = 0;
    /** Portion of (finish - start) spent waiting on DRAM. */
    Tick mem_stall = 0;

    Tick busy() const { return finish - start; }
};

/** The VD IP. */
class VideoDecoder : public SimObject
{
  public:
    VideoDecoder(std::string name, EventQueue *queue, MemorySystem &mem,
                 const DecoderConfig &cfg, const VideoProfile &profile);

    /** Change the P-state (the "race" knob). */
    void setFrequency(VdFrequency f) { freq_ = f; }
    VdFrequency frequency() const { return freq_; }

    /**
     * Decode @p frame starting at @p start.
     *
     * @param wb        writeback path for decoded mabs
     * @param slot      this frame's buffer
     * @param prev_slot previous frame's buffer (MC references), may
     *                  be null for the first/I frames
     * @param layout    caller-owned (pooled) layout storage the
     *                  writeback stage fills in place
     */
    FrameDecodeResult decodeFrame(const Frame &frame, WritebackStage &wb,
                                  BufferSlot &slot,
                                  const BufferSlot *prev_slot, Tick start,
                                  FrameLayout &layout);

    SetAssocCache &cache() { return *cache_; }
    const DecodeCostModel &costModel() const { return cost_; }
    const DecoderConfig &config() const { return cfg_; }

    void regStats(StatsRegistry &r) override;
    void resetStats() override;

  private:
    /** Read [addr, addr+size) through the VD cache, widened to the
     * read-prefetch granularity (dense fill bursts). */
    Tick readThroughCache(Addr addr, std::uint32_t size, Tick now,
                          Tick *stall);

    /** Read @p bytes of encoded stream through the VD cache. */
    Tick readEncoded(std::uint64_t bytes, Tick now, Tick *stall);

    /** One MC reference read for mab @p idx. */
    Tick readReference(const BufferSlot &prev, std::uint32_t idx,
                       std::uint32_t mab_count, std::int32_t reach_off,
                       Tick now, Tick *stall);

    MemorySystem &mem_;
    DecoderConfig cfg_;
    VideoProfile profile_;
    DecodeCostModel cost_;
    VdFrequency freq_ = VdFrequency::kLow;
    std::unique_ptr<SetAssocCache> cache_;

    Addr encoded_region_ = 0;
    std::uint64_t encoded_cursor_ = 0;

    /** Reused cache-access scratch: readThroughCache runs per mab
     * and must not construct fresh summary vectors each call. */
    CacheAccessSummary access_scratch_;

    std::uint64_t frames_decoded_ = 0;
};

} // namespace vstream

#endif // VSTREAM_DECODER_VIDEO_DECODER_HH
