/**
 * @file
 * Per-macroblock decode-cost model.
 *
 * The hardware decoder's work per mab depends on the frame type
 * (I mabs run intra prediction, P/B mabs motion compensation), the
 * frame's residual complexity, and per-mab jitter.  The base cycle
 * count is auto-calibrated so that the mean frame decode time at the
 * low frequency equals the profile's mean_decode_frac of the frame
 * period - the knob that reproduces the paper's Fig. 2b region
 * structure at any simulated resolution.
 */

#ifndef VSTREAM_DECODER_DECODE_COST_MODEL_HH
#define VSTREAM_DECODER_DECODE_COST_MODEL_HH

#include <cstdint>

#include "power/power_state.hh"
#include "video/gop.hh"
#include "video/video_profile.hh"

namespace vstream
{

/** Relative cost weights of the decode pipeline stages. */
struct DecodeCostParams
{
    /** Frame-type weights (I: intra prediction + large residuals). */
    double weight_i = 1.25;
    double weight_p = 1.0;
    double weight_b = 0.9;
    /** Per-mab multiplicative jitter half-range (uniform). */
    double jitter = 0.35;
};

/** Calibrated cycles-per-mab calculator. */
class DecodeCostModel
{
  public:
    DecodeCostModel(const VideoProfile &profile, const VdPowerConfig &power,
                    const DecodeCostParams &params = {});

    /** Compute cycles for one mab. */
    double mabCycles(FrameType type, double frame_complexity,
                     double jitter_factor) const;

    /** Calibrated base cycles per mab (complexity 1, weight 1). */
    double baseCycles() const { return base_cycles_; }

    /** Expected compute seconds for a complexity-1 frame at @p f. */
    double meanFrameSeconds(VdFrequency f) const;

    /** Mean time between consecutive mab completions at @p f,
     * seconds (drives the row-open-timeout calibration). */
    double meanMabSeconds(VdFrequency f) const;

    const DecodeCostParams &params() const { return params_; }

  private:
    double typeWeight(FrameType t) const;

    DecodeCostParams params_;
    VdPowerConfig power_;
    std::uint32_t mabs_per_frame_;
    double mean_type_weight_;
    double base_cycles_;
};

} // namespace vstream

#endif // VSTREAM_DECODER_DECODE_COST_MODEL_HH
