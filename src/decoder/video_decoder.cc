#include "decoder/video_decoder.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats_registry.hh"

namespace vstream
{

VideoDecoder::VideoDecoder(std::string name, EventQueue *queue,
                           MemorySystem &mem, const DecoderConfig &cfg,
                           const VideoProfile &profile)
    : SimObject(std::move(name), queue), mem_(mem), cfg_(cfg),
      profile_(profile), cost_(profile, cfg.power, cfg.cost)
{
    cfg_.validate();
    cache_ = std::make_unique<SetAssocCache>(this->name() + ".cache",
                                             cfg_.cache);
    encoded_region_ =
        mem_.allocate(cfg_.encoded_ring_bytes, "vd.encoded_ring");
}

Tick
VideoDecoder::readThroughCache(Addr addr, std::uint32_t size, Tick now,
                               Tick *stall)
{
    // Widen the access to the prefetch granularity: the read engines
    // (bitstream DMA, MC fetcher) fill whole aligned regions in one
    // dense burst, so fills of one region row-hit each other.
    const Addr pf = cfg_.read_prefetch_bytes;
    const Addr lo = addr / pf * pf;
    const Addr hi = (addr + size + pf - 1) / pf * pf;

    CacheAccessSummary &s = access_scratch_;
    cache_->accessInto(lo, static_cast<std::uint32_t>(hi - lo),
                       MemOp::kRead, s);
    Tick t = now;
    for (Addr fill : s.fills) {
        const MemResult r = mem_.read(fill, cfg_.cache.line_bytes,
                                      Requester::kVideoDecoder, t);
        *stall += r.finish_tick - t;
        t = r.finish_tick;
    }
    return t;
}

Tick
VideoDecoder::readEncoded(std::uint64_t bytes, Tick now, Tick *stall)
{
    // Sequential walk of the encoded ring through the VD cache.
    const Addr addr =
        encoded_region_ + encoded_cursor_ % cfg_.encoded_ring_bytes;
    encoded_cursor_ += bytes;
    return readThroughCache(addr, static_cast<std::uint32_t>(bytes), now,
                            stall);
}

Tick
VideoDecoder::readReference(const BufferSlot &prev, std::uint32_t idx,
                            std::uint32_t mab_count,
                            std::int32_t reach_off, Tick now, Tick *stall)
{
    // Motion vectors are short: the reference block sits near the
    // same position in the previous frame, giving MC reads the
    // address locality that makes the VD cache effective (Fig. 7a).
    std::int64_t ref_idx = static_cast<std::int64_t>(idx) + reach_off;
    if (ref_idx < 0) {
        ref_idx = 0;
    }
    if (ref_idx >= static_cast<std::int64_t>(mab_count)) {
        ref_idx = mab_count - 1;
    }

    const std::uint32_t mab_bytes =
        profile_.mab_dim * profile_.mab_dim * kBytesPerPixel;
    const Addr addr = prev.data_base +
                      static_cast<Addr>(ref_idx) * mab_bytes;

    return readThroughCache(addr, mab_bytes, now, stall);
}

FrameDecodeResult
VideoDecoder::decodeFrame(const Frame &frame, WritebackStage &wb,
                          BufferSlot &slot, const BufferSlot *prev_slot,
                          Tick start, FrameLayout &layout)
{
    FrameDecodeResult result;
    result.start = start;
    result.mabs = frame.mabCount();
    result.encoded_bytes = frame.encodedBytes();

    // Per-frame deterministic jitter stream: identical across
    // schemes/frequencies so comparisons see the same video.
    Random jitter_rng(profile_.seed ^
                      (frame.index() * 0x9e3779b97f4a7c15ULL));

    // The writeback engine is a DMA master behind the cache: lines
    // covering the buffer being overwritten must be invalidated or
    // later MC reads would hit stale data from the slot's previous
    // occupant.
    cache_->invalidateRange(slot.data_base, slot.data_capacity);

    wb.beginFrame(frame, slot, start, layout);

    const double hz = cfg_.power.frequencyHz(freq_);
    const std::uint32_t mab_count = frame.mabCount();
    const std::uint64_t enc_per_mab =
        std::max<std::uint64_t>(1, frame.encodedBytes() / mab_count);
    const bool needs_mc = frame.type() != FrameType::kI;

    Tick t = start;
    for (std::uint32_t i = 0; i < mab_count; ++i) {
        // 1. Fetch this mab's slice of the encoded stream.
        t = readEncoded(enc_per_mab, t, &result.mem_stall);

        // 2. Motion compensation reference (P/B mabs).
        if (needs_mc && prev_slot != nullptr) {
            const auto off = static_cast<std::int32_t>(
                jitter_rng.uniformInt(0, 2 * cfg_.mc_reach_mabs)) -
                static_cast<std::int32_t>(cfg_.mc_reach_mabs);
            t = readReference(*prev_slot, i, mab_count, off, t,
                              &result.mem_stall);
            ++result.mc_reads;
        }

        // 3. Compute: entropy decode + IQ/iDCT + reconstruction.
        const double jitter_factor = jitter_rng.uniform(
            1.0 - cfg_.cost.jitter, 1.0 + cfg_.cost.jitter);
        const double cycles =
            cost_.mabCycles(frame.type(), frame.complexity(),
                            jitter_factor);
        t += cyclesToTicks(static_cast<std::uint64_t>(cycles), hz);

        // 4. Writeback (posted; does not stall the pipeline).
        wb.writeMab(frame.mab(i), i, t);
    }

    result.finish = t;
    ++frames_decoded_;
    return result;
}

void
VideoDecoder::regStats(StatsRegistry &r)
{
    r.addCallback(name() + ".framesDecoded", "frames fully decoded",
                  [this] {
                      return static_cast<double>(frames_decoded_);
                  });
    cache_->regStats(r);
}

void
VideoDecoder::resetStats()
{
    frames_decoded_ = 0;
    cache_->resetStats();
}

} // namespace vstream
