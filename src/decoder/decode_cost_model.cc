#include "decoder/decode_cost_model.hh"

#include "sim/logging.hh"

namespace vstream
{

DecodeCostModel::DecodeCostModel(const VideoProfile &profile,
                                 const VdPowerConfig &power,
                                 const DecodeCostParams &params)
    : params_(params), power_(power),
      mabs_per_frame_(profile.mabsPerFrame())
{
    const GopStructure gop(profile.gop_pattern);
    mean_type_weight_ = gop.typeFraction(FrameType::kI) * params_.weight_i +
                        gop.typeFraction(FrameType::kP) * params_.weight_p +
                        gop.typeFraction(FrameType::kB) * params_.weight_b;
    vs_assert(mean_type_weight_ > 0.0, "degenerate GOP weights");

    // Calibrate: mean frame compute time at the low frequency must be
    // mean_decode_frac of the frame period.
    const double period_s = 1.0 / profile.fps;
    const double target_s = profile.mean_decode_frac * period_s;
    base_cycles_ = target_s * power_.freq_low_hz /
                   (static_cast<double>(mabs_per_frame_) *
                    mean_type_weight_);
}

double
DecodeCostModel::typeWeight(FrameType t) const
{
    switch (t) {
      case FrameType::kI:
        return params_.weight_i;
      case FrameType::kP:
        return params_.weight_p;
      case FrameType::kB:
        return params_.weight_b;
    }
    return 1.0;
}

double
DecodeCostModel::mabCycles(FrameType type, double frame_complexity,
                           double jitter_factor) const
{
    return base_cycles_ * typeWeight(type) * frame_complexity *
           jitter_factor;
}

double
DecodeCostModel::meanFrameSeconds(VdFrequency f) const
{
    return base_cycles_ * mean_type_weight_ *
           static_cast<double>(mabs_per_frame_) / power_.frequencyHz(f);
}

double
DecodeCostModel::meanMabSeconds(VdFrequency f) const
{
    return meanFrameSeconds(f) / static_cast<double>(mabs_per_frame_);
}

} // namespace vstream
