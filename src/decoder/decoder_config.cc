#include "decoder/decoder_config.hh"

#include "sim/logging.hh"

namespace vstream
{

void
DecoderConfig::validate() const
{
    power.validate();
    cache.validate();
    if (encoded_ring_bytes < (1 << 16)) {
        vs_fatal("encoded ring too small");
    }
    if (cost.jitter < 0.0 || cost.jitter >= 1.0) {
        vs_fatal("per-mab jitter must be in [0, 1)");
    }
}

} // namespace vstream
