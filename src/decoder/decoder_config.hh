/**
 * @file
 * Static configuration of the video-decoder IP model.
 */

#ifndef VSTREAM_DECODER_DECODER_CONFIG_HH
#define VSTREAM_DECODER_DECODER_CONFIG_HH

#include <cstdint>

#include "cache/cache_config.hh"
#include "decoder/decode_cost_model.hh"
#include "power/power_state.hh"

namespace vstream
{

/** All static decoder parameters. */
struct DecoderConfig
{
    VdPowerConfig power;
    DecodeCostParams cost;

    /**
     * The VD's internal cache (Sec. 4.1): serves encoded-stream reads
     * and motion-compensation reference reads.  Decoded-frame
     * writeback streams past it (no write allocation), which is why
     * growing it does not help the write path (Fig. 7a).
     */
    CacheConfig cache = {
        .size_bytes = 64 * 1024,
        .line_bytes = 64,
        .assoc = 4,
        .policy = ReplPolicy::kLru,
        .write_allocate = false,
        .write_back = true,
    };

    /** Ring buffer holding buffered encoded frames. */
    std::uint64_t encoded_ring_bytes = 8ULL << 20;

    /**
     * Motion-vector reach of P/B reference reads, in mabs.  Small
     * values give the high address locality real MC exhibits.
     */
    std::uint32_t mc_reach_mabs = 8;

    /**
     * Read-side prefetch granularity, bytes.  The bitstream DMA and
     * the MC reference fetcher bring data in dense bursts of this
     * size, so their DRAM accesses row-hit within a burst; Act/Pre
     * behaviour is then dominated by the decoder's *write* stream,
     * whose spacing is what racing improves (Sec. 3.2).
     */
    std::uint32_t read_prefetch_bytes = 512;

    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_DECODER_DECODER_CONFIG_HH
