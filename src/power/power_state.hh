/**
 * @file
 * Power states and transition costs of the video decoder IP.
 *
 * Mirrors the Medfield-style state machine in the paper's Fig. 2a:
 * active P-states (low/high frequency), a light sleep S1 and a deep
 * sleep S3, with round-trip transition latencies of 0.8 ms / 1.6 ms
 * and transition energies calibrated to the paper's "extra 3.6% /
 * 10.2% of the 5 mJ frame energy" measurements.
 */

#ifndef VSTREAM_POWER_POWER_STATE_HH
#define VSTREAM_POWER_POWER_STATE_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace vstream
{

/** Decoder power states. */
enum class PowerState : std::uint8_t
{
    kActive,     // executing at the current P-state
    kShortSlack, // idle but not asleep (clock-gated wait)
    kTransition, // entering or leaving a sleep state
    kSleepS1,    // light sleep
    kSleepS3,    // deep sleep
};

std::string powerStateName(PowerState s);

/** Decoder frequency levels (the "race" knob). */
enum class VdFrequency : std::uint8_t
{
    kLow,  // 150 MHz
    kHigh, // 300 MHz
};

/** Static power/latency parameters of the VD power state machine. */
struct VdPowerConfig
{
    double freq_low_hz = 150e6;
    double freq_high_hz = 300e6;

    /** Active power at each P-state (paper Table 2, [99]). */
    double p_active_low_w = 0.30;
    double p_active_high_w = 0.69;

    /** Clock-gated idle power while waiting without sleeping. */
    double p_short_slack_w = 0.28;

    /** Sleep-state powers. */
    double p_s1_w = 0.050;
    double p_s3_w = 0.003;

    /** One-way transition latencies. */
    Tick s1_enter = static_cast<Tick>(0.3 * sim_clock::ms);
    Tick s1_exit = static_cast<Tick>(0.5 * sim_clock::ms);
    Tick s3_enter = static_cast<Tick>(0.6 * sim_clock::ms);
    Tick s3_exit = static_cast<Tick>(1.0 * sim_clock::ms);

    /** Round-trip transition energies (enter + exit), joules, when
     * transitioning to/from the low P-state. */
    double e_s1_round_j = 0.53e-3;
    double e_s3_round_j = 0.72e-3;
    /**
     * Transition-energy multiplier when the active state is the high
     * P-state: ramping the boosted voltage/frequency domain costs
     * more (the paper's Racing observation, Sec. 6.2).
     */
    double trans_high_factor = 4.0;

    double activePower(VdFrequency f) const;
    double frequencyHz(VdFrequency f) const;

    Tick roundTripLatency(PowerState sleep_state) const;
    double roundTripEnergy(PowerState sleep_state,
                           VdFrequency f = VdFrequency::kLow) const;
    double sleepPower(PowerState sleep_state) const;

    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_POWER_POWER_STATE_HH
