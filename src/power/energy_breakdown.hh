/**
 * @file
 * System-level energy and time ledgers.
 *
 * EnergyBreakdown carries the nine categories the paper stacks in
 * Fig. 11 (DC, memory background, VD processing, sleep, short slack,
 * memory burst, memory Act/Pre, power-state transitions, MACH
 * overheads); TimeBreakdown carries the five states of the frame-time
 * CDFs (Figs. 2 and 4).
 */

#ifndef VSTREAM_POWER_ENERGY_BREAKDOWN_HH
#define VSTREAM_POWER_ENERGY_BREAKDOWN_HH

#include <ostream>
#include <string>

#include "sim/ticks.hh"

namespace vstream
{

/** Energy per category, joules. */
struct EnergyBreakdown
{
    double dc = 0.0;
    double mem_background = 0.0;
    double vd_processing = 0.0;
    double sleep = 0.0;
    double short_slack = 0.0;
    double mem_burst = 0.0;
    double mem_act_pre = 0.0;
    double transition = 0.0;
    double mach_overhead = 0.0;

    double total() const;

    /** Everything attributable to DRAM. */
    double memoryTotal() const
    {
        return mem_background + mem_burst + mem_act_pre;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
    EnergyBreakdown operator+(const EnergyBreakdown &o) const;

    /** Component-wise division by @p total (for normalized plots). */
    EnergyBreakdown normalizedTo(double denom) const;

    /** One header line matching row(). */
    static std::string headerRow();

    /** Tab-separated values, in the Fig. 11 stacking order. */
    std::string row() const;
};

/** Decoder time per power state, ticks. */
struct TimeBreakdown
{
    Tick execution = 0;
    Tick short_slack = 0;
    Tick transition = 0;
    Tick s1 = 0;
    Tick s3 = 0;

    Tick total() const
    {
        return execution + short_slack + transition + s1 + s3;
    }

    TimeBreakdown &operator+=(const TimeBreakdown &o);

    static std::string headerRow();
    std::string row() const;
};

std::ostream &operator<<(std::ostream &os, const EnergyBreakdown &e);
std::ostream &operator<<(std::ostream &os, const TimeBreakdown &t);

} // namespace vstream

#endif // VSTREAM_POWER_ENERGY_BREAKDOWN_HH
