#include "power/energy_breakdown.hh"

#include <iomanip>
#include <sstream>

namespace vstream
{

double
EnergyBreakdown::total() const
{
    return dc + mem_background + vd_processing + sleep + short_slack +
           mem_burst + mem_act_pre + transition + mach_overhead;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    dc += o.dc;
    mem_background += o.mem_background;
    vd_processing += o.vd_processing;
    sleep += o.sleep;
    short_slack += o.short_slack;
    mem_burst += o.mem_burst;
    mem_act_pre += o.mem_act_pre;
    transition += o.transition;
    mach_overhead += o.mach_overhead;
    return *this;
}

EnergyBreakdown
EnergyBreakdown::operator+(const EnergyBreakdown &o) const
{
    EnergyBreakdown r = *this;
    r += o;
    return r;
}

EnergyBreakdown
EnergyBreakdown::normalizedTo(double denom) const
{
    EnergyBreakdown r = *this;
    if (denom > 0.0) {
        r.dc /= denom;
        r.mem_background /= denom;
        r.vd_processing /= denom;
        r.sleep /= denom;
        r.short_slack /= denom;
        r.mem_burst /= denom;
        r.mem_act_pre /= denom;
        r.transition /= denom;
        r.mach_overhead /= denom;
    }
    return r;
}

std::string
EnergyBreakdown::headerRow()
{
    return "dc\tmem_bg\tvd_proc\tsleep\tslack\tburst\tact_pre\ttrans\t"
           "mach\ttotal";
}

std::string
EnergyBreakdown::row() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4);
    os << dc << '\t' << mem_background << '\t' << vd_processing << '\t'
       << sleep << '\t' << short_slack << '\t' << mem_burst << '\t'
       << mem_act_pre << '\t' << transition << '\t' << mach_overhead
       << '\t' << total();
    return os.str();
}

TimeBreakdown &
TimeBreakdown::operator+=(const TimeBreakdown &o)
{
    execution += o.execution;
    short_slack += o.short_slack;
    transition += o.transition;
    s1 += o.s1;
    s3 += o.s3;
    return *this;
}

std::string
TimeBreakdown::headerRow()
{
    return "exec_ms\tslack_ms\ttrans_ms\ts1_ms\ts3_ms\ttotal_ms";
}

std::string
TimeBreakdown::row() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << ticksToMs(execution) << '\t' << ticksToMs(short_slack) << '\t'
       << ticksToMs(transition) << '\t' << ticksToMs(s1) << '\t'
       << ticksToMs(s3) << '\t' << ticksToMs(total());
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const EnergyBreakdown &e)
{
    return os << e.row();
}

std::ostream &
operator<<(std::ostream &os, const TimeBreakdown &t)
{
    return os << t.row();
}

} // namespace vstream
