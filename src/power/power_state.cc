#include "power/power_state.hh"

#include "sim/logging.hh"

namespace vstream
{

std::string
powerStateName(PowerState s)
{
    switch (s) {
      case PowerState::kActive:
        return "active";
      case PowerState::kShortSlack:
        return "short-slack";
      case PowerState::kTransition:
        return "transition";
      case PowerState::kSleepS1:
        return "S1";
      case PowerState::kSleepS3:
        return "S3";
    }
    return "?";
}

double
VdPowerConfig::activePower(VdFrequency f) const
{
    return f == VdFrequency::kHigh ? p_active_high_w : p_active_low_w;
}

double
VdPowerConfig::frequencyHz(VdFrequency f) const
{
    return f == VdFrequency::kHigh ? freq_high_hz : freq_low_hz;
}

Tick
VdPowerConfig::roundTripLatency(PowerState sleep_state) const
{
    switch (sleep_state) {
      case PowerState::kSleepS1:
        return s1_enter + s1_exit;
      case PowerState::kSleepS3:
        return s3_enter + s3_exit;
      default:
        return 0;
    }
}

double
VdPowerConfig::roundTripEnergy(PowerState sleep_state,
                               VdFrequency f) const
{
    const double factor =
        f == VdFrequency::kHigh ? trans_high_factor : 1.0;
    switch (sleep_state) {
      case PowerState::kSleepS1:
        return e_s1_round_j * factor;
      case PowerState::kSleepS3:
        return e_s3_round_j * factor;
      default:
        return 0.0;
    }
}

double
VdPowerConfig::sleepPower(PowerState sleep_state) const
{
    switch (sleep_state) {
      case PowerState::kSleepS1:
        return p_s1_w;
      case PowerState::kSleepS3:
        return p_s3_w;
      default:
        return p_short_slack_w;
    }
}

void
VdPowerConfig::validate() const
{
    if (freq_low_hz <= 0 || freq_high_hz < freq_low_hz) {
        vs_fatal("bad VD frequency configuration");
    }
    if (p_s3_w > p_s1_w || p_s1_w > p_short_slack_w ||
        p_short_slack_w > p_active_low_w ||
        p_active_low_w > p_active_high_w) {
        vs_fatal("VD power levels must be ordered "
                 "S3 <= S1 <= short-slack <= P-low <= P-high");
    }
    if (roundTripLatency(PowerState::kSleepS3) <=
        roundTripLatency(PowerState::kSleepS1)) {
        vs_fatal("S3 transitions must be slower than S1");
    }
}

} // namespace vstream
