/**
 * @file
 * Break-even sleep-state selection.
 *
 * Implements the decision rule the paper's baseline power manager
 * uses (Sec. 2.2): before entering S1/S3, check that the sleep window
 * is long enough to cover the transition latency AND that the energy
 * saved relative to idling exceeds the transition energy; otherwise
 * stay awake in the short-slack state.
 */

#ifndef VSTREAM_POWER_SLEEP_GOVERNOR_HH
#define VSTREAM_POWER_SLEEP_GOVERNOR_HH

#include "power/power_state.hh"
#include "sim/ticks.hh"

namespace vstream
{

/** Outcome of a sleep decision for an idle window. */
struct SleepDecision
{
    /** Chosen state: kShortSlack, kSleepS1 or kSleepS3. */
    PowerState state = PowerState::kShortSlack;
    /** Time spent in the sleep state proper. */
    Tick sleep_time = 0;
    /** Time spent transitioning (0 for short slack). */
    Tick transition_time = 0;
    /** Energy consumed across the whole window, joules. */
    double energy_j = 0.0;
    /** Of which, transition energy. */
    double transition_energy_j = 0.0;
};

/** Chooses the best power state for an idle window. */
class SleepGovernor
{
  public:
    explicit SleepGovernor(const VdPowerConfig &cfg);

    /**
     * Decide how to spend an idle window of @p slack ticks.
     *
     * Picks the state minimizing total window energy; sleep states
     * are only eligible when the window covers their round-trip
     * latency.  @p freq selects the P-state the decoder returns to,
     * which scales the transition energy.
     */
    SleepDecision decide(Tick slack,
                         VdFrequency freq = VdFrequency::kLow) const;

    /**
     * Smallest slack for which @p state beats staying awake.
     *
     * Used by the region analysis of Fig. 2b (region III = slack
     * above the S1 threshold, region IV = above the S3 threshold).
     */
    Tick breakEvenSlack(PowerState state,
                        VdFrequency freq = VdFrequency::kLow) const;

    const VdPowerConfig &config() const { return cfg_; }

  private:
    double windowEnergy(PowerState state, Tick slack,
                        VdFrequency freq) const;

    VdPowerConfig cfg_;
};

} // namespace vstream

#endif // VSTREAM_POWER_SLEEP_GOVERNOR_HH
