#include "power/sleep_governor.hh"

#include "sim/logging.hh"

namespace vstream
{

SleepGovernor::SleepGovernor(const VdPowerConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

double
SleepGovernor::windowEnergy(PowerState state, Tick slack,
                            VdFrequency freq) const
{
    if (state == PowerState::kShortSlack) {
        return cfg_.p_short_slack_w * ticksToSeconds(slack);
    }

    const Tick trans = cfg_.roundTripLatency(state);
    vs_assert(slack >= trans, "window does not cover the transition");
    const Tick dwell = slack - trans;
    return cfg_.roundTripEnergy(state, freq) +
           cfg_.sleepPower(state) * ticksToSeconds(dwell);
}

SleepDecision
SleepGovernor::decide(Tick slack, VdFrequency freq) const
{
    SleepDecision best;
    best.state = PowerState::kShortSlack;
    best.sleep_time = 0;
    best.transition_time = 0;
    best.energy_j =
        windowEnergy(PowerState::kShortSlack, slack, freq);
    best.transition_energy_j = 0.0;

    for (PowerState s : {PowerState::kSleepS1, PowerState::kSleepS3}) {
        const Tick trans = cfg_.roundTripLatency(s);
        if (slack < trans) {
            continue;
        }
        const double e = windowEnergy(s, slack, freq);
        if (e < best.energy_j) {
            best.state = s;
            best.sleep_time = slack - trans;
            best.transition_time = trans;
            best.energy_j = e;
            best.transition_energy_j = cfg_.roundTripEnergy(s, freq);
        }
    }
    return best;
}

Tick
SleepGovernor::breakEvenSlack(PowerState state, VdFrequency freq) const
{
    vs_assert(state == PowerState::kSleepS1 ||
                  state == PowerState::kSleepS3,
              "break-even defined for sleep states only");

    // Solve P_idle * T == E_round + P_sleep * (T - trans) for T.
    const Tick trans = cfg_.roundTripLatency(state);
    const double e_round = cfg_.roundTripEnergy(state, freq);
    const double p_idle = cfg_.p_short_slack_w;
    const double p_sleep = cfg_.sleepPower(state);
    const double trans_s = ticksToSeconds(trans);

    const double t =
        (e_round - p_sleep * trans_s) / (p_idle - p_sleep);
    const Tick t_ticks = secondsToTicks(t);
    return std::max(t_ticks, trans);
}

} // namespace vstream
