/**
 * @file
 * Cyclic-redundancy-check digests.
 *
 * CRC32 (IEEE 802.3 reflected polynomial 0xEDB88320) produces the
 * 32-bit macroblock digest used to tag MACH entries; CRC16-CCITT
 * provides the auxiliary 16-bit field of the CO-MACH collision
 * detector (Sec. 6.3 of the paper).
 *
 * Both digests are the hot inner loop of MachWriteback::writeMab, so
 * update() dispatches at startup to the fastest digest-stable kernel
 * the host offers:
 *
 *   kReference  byte-at-a-time table walk (the original code; kept
 *               as the oracle the equivalence tests compare against)
 *   kSlice8     slicing-by-8 (CRC32) / slicing-by-2 (CRC16): eight
 *               (two) bytes per iteration through precomputed tables
 *   kHardware   carry-less-multiply folding on x86-64 (PCLMULQDQ)
 *               or the ARMv8 CRC32 instructions on aarch64
 *
 * Every kernel computes the exact same IEEE/CCITT polynomial, so the
 * digest - and therefore every MACH hit, collision and golden output
 * - is identical no matter which kernel ran.  Note the x86 SSE4.2
 * _mm_crc32 instruction family implements CRC-32C (polynomial
 * 0x1EDC6F41), NOT IEEE, and cannot reproduce the repo's digests;
 * the x86 hardware path therefore folds with PCLMULQDQ instead.
 * VSTREAM_CRC_IMPL=reference|slice8|hw forces a kernel (tests).
 */

#ifndef VSTREAM_HASH_CRC_HH
#define VSTREAM_HASH_CRC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vstream
{

/** One CRC inner-loop implementation; see file comment. */
enum class CrcKernel : std::uint8_t
{
    kReference = 0,
    kSlice8,
    kHardware,
};

/** Human-readable kernel name ("reference", "slice8", "hw"). */
const char *crcKernelName(CrcKernel k);

/** Kernels usable on this host, reference first. */
std::vector<CrcKernel> availableCrc32Kernels();

/** The kernel Crc32::update() dispatched to at startup. */
CrcKernel activeCrc32Kernel();

/**
 * Raw state-in/state-out CRC32 step with an explicit kernel (the
 * test/bench hook; @p state is the internal pre-inverted form).
 */
std::uint32_t crc32Step(CrcKernel k, std::uint32_t state,
                        const void *data, std::size_t len);

/** Raw CRC16 step: the sliced kernel when @p sliced, else reference. */
std::uint16_t crc16Step(bool sliced, std::uint16_t state,
                        const void *data, std::size_t len);

/**
 * Batched CRC32 over @p count equal-length blocks (the whole-frame
 * digest path): four independent digest states advance in lockstep
 * through the slicing-by-8 tables, so the per-lookup latency that
 * serialises a single short-block CRC is hidden behind instruction-
 * level parallelism across blocks.  Each out[i] is bit-identical to
 * Crc32::compute(blocks[i], block_len).
 */
void crc32Batch(const std::uint8_t *const *blocks,
                std::size_t block_len, std::size_t count,
                std::uint32_t *out);

/** Batched CRC16-CCITT: the slicing-by-2 analogue of crc32Batch. */
void crc16Batch(const std::uint8_t *const *blocks,
                std::size_t block_len, std::size_t count,
                std::uint16_t *out);

/** Incremental CRC32 (IEEE, reflected). */
class Crc32
{
  public:
    Crc32() = default;

    /** Absorb @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Final digest of everything absorbed so far. */
    std::uint32_t digest() const { return ~state_; }

    /** Restart. */
    void reset() { state_ = 0xffffffffu; }

    /** One-shot convenience. */
    static std::uint32_t compute(const void *data, std::size_t len);

  private:
    std::uint32_t state_ = 0xffffffffu;
};

/** Incremental CRC16-CCITT (polynomial 0x1021, init 0xFFFF). */
class Crc16
{
  public:
    Crc16() = default;

    void update(const void *data, std::size_t len);
    std::uint16_t digest() const { return state_; }
    void reset() { state_ = 0xffffu; }

    static std::uint16_t compute(const void *data, std::size_t len);

  private:
    std::uint16_t state_ = 0xffffu;
};

} // namespace vstream

#endif // VSTREAM_HASH_CRC_HH
