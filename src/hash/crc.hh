/**
 * @file
 * Cyclic-redundancy-check digests.
 *
 * CRC32 (IEEE 802.3 reflected polynomial 0xEDB88320) produces the
 * 32-bit macroblock digest used to tag MACH entries; CRC16-CCITT
 * provides the auxiliary 16-bit field of the CO-MACH collision
 * detector (Sec. 6.3 of the paper).
 */

#ifndef VSTREAM_HASH_CRC_HH
#define VSTREAM_HASH_CRC_HH

#include <cstddef>
#include <cstdint>

namespace vstream
{

/** Incremental CRC32 (IEEE, reflected). */
class Crc32
{
  public:
    Crc32() = default;

    /** Absorb @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Final digest of everything absorbed so far. */
    std::uint32_t digest() const { return ~state_; }

    /** Restart. */
    void reset() { state_ = 0xffffffffu; }

    /** One-shot convenience. */
    static std::uint32_t compute(const void *data, std::size_t len);

  private:
    std::uint32_t state_ = 0xffffffffu;
};

/** Incremental CRC16-CCITT (polynomial 0x1021, init 0xFFFF). */
class Crc16
{
  public:
    Crc16() = default;

    void update(const void *data, std::size_t len);
    std::uint16_t digest() const { return state_; }
    void reset() { state_ = 0xffffu; }

    static std::uint16_t compute(const void *data, std::size_t len);

  private:
    std::uint16_t state_ = 0xffffu;
};

} // namespace vstream

#endif // VSTREAM_HASH_CRC_HH
