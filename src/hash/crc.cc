#include "hash/crc.hh"

#include <array>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VSTREAM_CRC_X86_CLMUL 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define VSTREAM_CRC_ARM 1
#include <arm_acle.h>
#endif

namespace vstream
{

namespace
{

// --- Table generation (constexpr, shared by every kernel) -----------

constexpr std::uint32_t kCrc32Poly = 0xedb88320u; // IEEE, reflected

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (kCrc32Poly ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

/**
 * Slicing-by-8 tables: kSlice32[k][b] is the CRC32 of byte b followed
 * by k zero bytes, so eight independent table lookups advance the
 * state by eight message bytes at once.  kSlice32[0] is the classic
 * byte-at-a-time table the reference kernel walks.
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeCrc32SliceTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    t[0] = makeCrc32Table();
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t b = 0; b < 256; ++b) {
            const std::uint32_t prev = t[k - 1][b];
            t[k][b] = (prev >> 8) ^ t[0][prev & 0xffu];
        }
    }
    return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kSlice32 =
    makeCrc32SliceTables();

constexpr std::uint16_t kCrc16Poly = 0x1021u; // CCITT, MSB-first

constexpr std::array<std::uint16_t, 256>
makeCrc16Table()
{
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint16_t c = static_cast<std::uint16_t>(i << 8);
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 0x8000u)
                    ? static_cast<std::uint16_t>((c << 1) ^ kCrc16Poly)
                    : static_cast<std::uint16_t>(c << 1);
        }
        table[i] = c;
    }
    return table;
}

/** kSlice16[1][b] = CRC16 of byte b followed by one zero byte. */
constexpr std::array<std::array<std::uint16_t, 256>, 2>
makeCrc16SliceTables()
{
    std::array<std::array<std::uint16_t, 256>, 2> t{};
    t[0] = makeCrc16Table();
    for (std::uint32_t b = 0; b < 256; ++b) {
        const std::uint16_t prev = t[0][b];
        t[1][b] = static_cast<std::uint16_t>(
            (prev << 8) ^ t[0][(prev >> 8) & 0xffu]);
    }
    return t;
}

constexpr std::array<std::array<std::uint16_t, 256>, 2> kSlice16 =
    makeCrc16SliceTables();

// --- CRC32 kernels --------------------------------------------------

// vstream:hot
std::uint32_t
crc32Reference(std::uint32_t state, const std::uint8_t *p,
               std::size_t len)
{
    std::uint32_t c = state;
    for (std::size_t i = 0; i < len; ++i) {
        c = kSlice32[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return c;
}

// vstream:hot
std::uint32_t
crc32Slice8(std::uint32_t state, const std::uint8_t *p, std::size_t len)
{
    std::uint32_t c = state;
    while (len >= 8) {
        // Explicit little-endian assembly keeps the kernel
        // endian-agnostic; compilers fold each into one 32-bit load.
        const std::uint32_t lo =
            static_cast<std::uint32_t>(p[0]) |
            (static_cast<std::uint32_t>(p[1]) << 8) |
            (static_cast<std::uint32_t>(p[2]) << 16) |
            (static_cast<std::uint32_t>(p[3]) << 24);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(p[4]) |
            (static_cast<std::uint32_t>(p[5]) << 8) |
            (static_cast<std::uint32_t>(p[6]) << 16) |
            (static_cast<std::uint32_t>(p[7]) << 24);
        c ^= lo;
        c = kSlice32[7][c & 0xffu] ^ kSlice32[6][(c >> 8) & 0xffu] ^
            kSlice32[5][(c >> 16) & 0xffu] ^ kSlice32[4][c >> 24] ^
            kSlice32[3][hi & 0xffu] ^ kSlice32[2][(hi >> 8) & 0xffu] ^
            kSlice32[1][(hi >> 16) & 0xffu] ^ kSlice32[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    return crc32Reference(c, p, len);
}

#ifdef VSTREAM_CRC_X86_CLMUL

/**
 * PCLMULQDQ folding for the IEEE polynomial (the classic "Fast CRC
 * computation using PCLMULQDQ" construction).  Folds 64-byte blocks
 * through four 128-bit accumulators, reduces to one, then Barrett-
 * reduces to 32 bits.  Requires len to be a multiple of 16 and >= 64;
 * the dispatcher feeds tail bytes to the slice-8 kernel.
 */
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32ClmulBlock(std::uint32_t state, const std::uint8_t *p,
                std::size_t len)
{
    // Folding/reduction constants for reflected 0x04C11DB7.
    const __m128i k1k2 = _mm_setr_epi32(0x54442bd4, 1,
                                        static_cast<int>(0xc6e41596),
                                        1);
    const __m128i k3k4 = _mm_setr_epi32(0x751997d0, 1,
                                        static_cast<int>(0xccaa009e),
                                        0);
    const __m128i k5k0 = _mm_setr_epi32(0x63cd6124, 1, 0, 0);
    const __m128i poly_mu =
        _mm_setr_epi32(static_cast<int>(0xdb710641), 1,
                       static_cast<int>(0xf7011641), 1);
    const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);

    __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    __m128i x2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 16));
    __m128i x3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 32));
    __m128i x4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 48));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
    p += 64;
    len -= 64;

// Lambdas do not inherit the enclosing target attribute, so the fold
// steps are macros.  FOLD(acc, k, d): acc = clmul-fold(acc, k) ^ d.
#define VSTREAM_CRC_FOLD(acc, k, d)                                    \
    (acc) = _mm_xor_si128(                                             \
        (d), _mm_xor_si128(_mm_clmulepi64_si128((acc), (k), 0x00),     \
                           _mm_clmulepi64_si128((acc), (k), 0x11)))
#define VSTREAM_CRC_LOAD(q)                                            \
    _mm_loadu_si128(reinterpret_cast<const __m128i *>(q))

    while (len >= 64) {
        VSTREAM_CRC_FOLD(x1, k1k2, VSTREAM_CRC_LOAD(p));
        VSTREAM_CRC_FOLD(x2, k1k2, VSTREAM_CRC_LOAD(p + 16));
        VSTREAM_CRC_FOLD(x3, k1k2, VSTREAM_CRC_LOAD(p + 32));
        VSTREAM_CRC_FOLD(x4, k1k2, VSTREAM_CRC_LOAD(p + 48));
        p += 64;
        len -= 64;
    }

    VSTREAM_CRC_FOLD(x1, k3k4, x2);
    VSTREAM_CRC_FOLD(x1, k3k4, x3);
    VSTREAM_CRC_FOLD(x1, k3k4, x4);

    while (len >= 16) {
        VSTREAM_CRC_FOLD(x1, k3k4, VSTREAM_CRC_LOAD(p));
        p += 16;
        len -= 16;
    }

#undef VSTREAM_CRC_FOLD
#undef VSTREAM_CRC_LOAD

    // Fold 128 -> 64 bits.
    x2 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, x2);

    // Fold 64 -> 32 bits.
    x2 = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5k0, 0x00);
    x1 = _mm_xor_si128(x1, x2);

    // Barrett reduction.
    x2 = _mm_and_si128(x1, mask32);
    x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x10);
    x2 = _mm_and_si128(x2, mask32);
    x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x00);
    x1 = _mm_xor_si128(x1, x2);
    return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

/**
 * CLMUL fold for one short block: @p len must be a non-zero multiple
 * of 16 (the whole-frame batch's 48 B mab case).  One fold per extra
 * chunk plus the shared 128->32 reduction; consecutive blocks have
 * independent chains, so a batch loop keeps several in flight where
 * slicing-by-8's table lookups serialize on the load ports.
 */
// vstream:hot
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32ClmulShort(std::uint32_t state, const std::uint8_t *p,
                std::size_t len)
{
    const __m128i k3k4 = _mm_setr_epi32(0x751997d0, 1,
                                        static_cast<int>(0xccaa009e),
                                        0);
    const __m128i k5k0 = _mm_setr_epi32(0x63cd6124, 1, 0, 0);
    const __m128i poly_mu =
        _mm_setr_epi32(static_cast<int>(0xdb710641), 1,
                       static_cast<int>(0xf7011641), 1);
    const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);

    __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));

#define VSTREAM_CRC_FOLD(acc, k, d)                                    \
    (acc) = _mm_xor_si128(                                             \
        (d), _mm_xor_si128(_mm_clmulepi64_si128((acc), (k), 0x00),     \
                           _mm_clmulepi64_si128((acc), (k), 0x11)))

    for (std::size_t off = 16; off + 16 <= len; off += 16) {
        VSTREAM_CRC_FOLD(x1, k3k4,
                         _mm_loadu_si128(
                             reinterpret_cast<const __m128i *>(
                                 p + off)));
    }

#undef VSTREAM_CRC_FOLD

    // Fold 128 -> 64 bits.
    __m128i x2 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, x2);

    // Fold 64 -> 32 bits.
    x2 = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5k0, 0x00);
    x1 = _mm_xor_si128(x1, x2);

    // Barrett reduction.
    x2 = _mm_and_si128(x1, mask32);
    x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x10);
    x2 = _mm_and_si128(x2, mask32);
    x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x00);
    x1 = _mm_xor_si128(x1, x2);
    return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

// vstream:hot
std::uint32_t
crc32Hardware(std::uint32_t state, const std::uint8_t *p,
              std::size_t len)
{
    if (len >= 64) {
        const std::size_t chunk = len & ~static_cast<std::size_t>(15);
        state = crc32ClmulBlock(state, p, chunk);
        p += chunk;
        len -= chunk;
    } else if (len >= 16) {
        const std::size_t chunk = len & ~static_cast<std::size_t>(15);
        state = crc32ClmulShort(state, p, chunk);
        p += chunk;
        len -= chunk;
    }
    return crc32Slice8(state, p, len);
}

bool
crc32HardwareAvailable()
{
    return __builtin_cpu_supports("pclmul") &&
           __builtin_cpu_supports("sse4.1");
}

/**
 * Per-block CLMUL batch for short blocks (16 <= block_len < 64, the
 * 48 B mab digest).  Returns false when the hardware path cannot take
 * the shape, in which case the caller falls back to the interleaved
 * slicing-by-8 lanes.  Digests are identical either way.
 */
// vstream:hot
bool
crc32BatchClmul(const std::uint8_t *const *blocks,
                std::size_t block_len, std::size_t count,
                std::uint32_t *out)
{
    if (!crc32HardwareAvailable() || block_len < 16 ||
        block_len >= 64) {
        return false;
    }
    const std::size_t chunk =
        block_len & ~static_cast<std::size_t>(15);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t c =
            crc32ClmulShort(0xffffffffu, blocks[i], chunk);
        if (chunk != block_len) {
            c = crc32Slice8(c, blocks[i] + chunk, block_len - chunk);
        }
        out[i] = ~c;
    }
    return true;
}

#elif defined(VSTREAM_CRC_ARM)

// vstream:hot
std::uint32_t
crc32Hardware(std::uint32_t state, const std::uint8_t *p,
              std::size_t len)
{
    std::uint32_t c = state;
    while (len >= 8) {
        std::uint64_t v;
        std::memcpy(&v, p, 8);
        c = __crc32d(c, v);
        p += 8;
        len -= 8;
    }
    while (len > 0) {
        c = __crc32b(c, *p++);
        --len;
    }
    return c;
}

bool
crc32BatchClmul(const std::uint8_t *const *blocks,
                std::size_t block_len, std::size_t count,
                std::uint32_t *out)
{
    // The ARM CRC32 instruction is already one step per 8 B; the
    // per-block loop below beats interleaved table lanes on its own.
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = ~crc32Hardware(0xffffffffu, blocks[i], block_len);
    }
    return true;
}

bool
crc32HardwareAvailable()
{
    return true;
}

#else

std::uint32_t
crc32Hardware(std::uint32_t state, const std::uint8_t *p,
              std::size_t len)
{
    return crc32Slice8(state, p, len);
}

bool
crc32BatchClmul(const std::uint8_t *const *, std::size_t, std::size_t,
                std::uint32_t *)
{
    return false;
}

bool
crc32HardwareAvailable()
{
    return false;
}

#endif

using Crc32Fn = std::uint32_t (*)(std::uint32_t, const std::uint8_t *,
                                  std::size_t);

Crc32Fn
kernelFn(CrcKernel k)
{
    switch (k) {
      case CrcKernel::kReference:
        return crc32Reference;
      case CrcKernel::kSlice8:
        return crc32Slice8;
      case CrcKernel::kHardware:
        return crc32Hardware;
    }
    return crc32Reference;
}

/**
 * Pick the dispatch target once, pre-main: the fastest available
 * kernel unless VSTREAM_CRC_IMPL forces one.  All kernels are
 * digest-identical, so the choice never affects simulation output.
 */
// All kernels produce identical digests (test_crc), so the env read
// can select an implementation but never perturb simulation output.
// vstream:allow(determinism-source) digest-equivalent dispatch
CrcKernel
resolveCrc32Kernel()
{
    const CrcKernel best = crc32HardwareAvailable()
                               ? CrcKernel::kHardware
                               : CrcKernel::kSlice8;
    // Resolved once, pre-main, before any thread exists.
    const char *force =
        std::getenv("VSTREAM_CRC_IMPL"); // NOLINT(concurrency-mt-unsafe)
    if (force == nullptr) {
        return best;
    }
    if (std::strcmp(force, "reference") == 0) {
        return CrcKernel::kReference;
    }
    if (std::strcmp(force, "slice8") == 0) {
        return CrcKernel::kSlice8;
    }
    if (std::strcmp(force, "hw") == 0 && crc32HardwareAvailable()) {
        return CrcKernel::kHardware;
    }
    return best;
}

const CrcKernel kActiveKernel = resolveCrc32Kernel();
const Crc32Fn kActiveFn = kernelFn(kActiveKernel);

// --- CRC16 kernels --------------------------------------------------

// vstream:hot
std::uint16_t
crc16Reference(std::uint16_t state, const std::uint8_t *p,
               std::size_t len)
{
    std::uint16_t c = state;
    for (std::size_t i = 0; i < len; ++i) {
        c = static_cast<std::uint16_t>(
            (c << 8) ^ kSlice16[0][((c >> 8) ^ p[i]) & 0xffu]);
    }
    return c;
}

// vstream:hot
std::uint16_t
crc16Slice2(std::uint16_t state, const std::uint8_t *p, std::size_t len)
{
    std::uint16_t c = state;
    while (len >= 2) {
        c = static_cast<std::uint16_t>(
            kSlice16[1][((c >> 8) ^ p[0]) & 0xffu] ^
            kSlice16[0][(c ^ p[1]) & 0xffu]);
        p += 2;
        len -= 2;
    }
    return crc16Reference(c, p, len);
}

// --- Batched (4-way interleaved) kernels ----------------------------

/**
 * Advance four independent CRC32 states over four equal-length blocks
 * in lockstep.  A single short-block CRC is one long dependency chain
 * of table lookups; four chains in flight fill the load ports, which
 * is where the whole-frame digest batch gets its speedup.  The states
 * are independent, so each result is identical to running the
 * slicing-by-8 kernel on that block alone.
 */
// vstream:hot
void
crc32Slice8x4(const std::uint8_t *const *p, std::size_t len,
              std::uint32_t *c)
{
    std::uint32_t c0 = c[0];
    std::uint32_t c1 = c[1];
    std::uint32_t c2 = c[2];
    std::uint32_t c3 = c[3];
    std::size_t off = 0;

#define VSTREAM_CRC_LOAD32(q)                                          \
    (static_cast<std::uint32_t>((q)[0]) |                              \
     (static_cast<std::uint32_t>((q)[1]) << 8) |                       \
     (static_cast<std::uint32_t>((q)[2]) << 16) |                      \
     (static_cast<std::uint32_t>((q)[3]) << 24))
#define VSTREAM_CRC_STEP8(st, q)                                       \
    do {                                                               \
        const std::uint32_t lo_ = (st) ^ VSTREAM_CRC_LOAD32(q);        \
        const std::uint32_t hi_ = VSTREAM_CRC_LOAD32((q) + 4);         \
        (st) = kSlice32[7][lo_ & 0xffu] ^                              \
               kSlice32[6][(lo_ >> 8) & 0xffu] ^                       \
               kSlice32[5][(lo_ >> 16) & 0xffu] ^                      \
               kSlice32[4][lo_ >> 24] ^ kSlice32[3][hi_ & 0xffu] ^     \
               kSlice32[2][(hi_ >> 8) & 0xffu] ^                       \
               kSlice32[1][(hi_ >> 16) & 0xffu] ^                      \
               kSlice32[0][hi_ >> 24];                                 \
    } while (0)

    for (; off + 8 <= len; off += 8) {
        VSTREAM_CRC_STEP8(c0, p[0] + off);
        VSTREAM_CRC_STEP8(c1, p[1] + off);
        VSTREAM_CRC_STEP8(c2, p[2] + off);
        VSTREAM_CRC_STEP8(c3, p[3] + off);
    }

#undef VSTREAM_CRC_STEP8
#undef VSTREAM_CRC_LOAD32

    c[0] = crc32Reference(c0, p[0] + off, len - off);
    c[1] = crc32Reference(c1, p[1] + off, len - off);
    c[2] = crc32Reference(c2, p[2] + off, len - off);
    c[3] = crc32Reference(c3, p[3] + off, len - off);
}

/** Four CRC16 states in lockstep (slicing-by-2 per lane). */
// vstream:hot
void
crc16Slice2x4(const std::uint8_t *const *p, std::size_t len,
              std::uint16_t *c)
{
    std::uint16_t c0 = c[0];
    std::uint16_t c1 = c[1];
    std::uint16_t c2 = c[2];
    std::uint16_t c3 = c[3];
    std::size_t off = 0;

#define VSTREAM_CRC16_STEP2(st, q)                                     \
    (st) = static_cast<std::uint16_t>(                                 \
        kSlice16[1][(((st) >> 8) ^ (q)[0]) & 0xffu] ^                  \
        kSlice16[0][((st) ^ (q)[1]) & 0xffu])

    for (; off + 2 <= len; off += 2) {
        VSTREAM_CRC16_STEP2(c0, p[0] + off);
        VSTREAM_CRC16_STEP2(c1, p[1] + off);
        VSTREAM_CRC16_STEP2(c2, p[2] + off);
        VSTREAM_CRC16_STEP2(c3, p[3] + off);
    }

#undef VSTREAM_CRC16_STEP2

    c[0] = crc16Reference(c0, p[0] + off, len - off);
    c[1] = crc16Reference(c1, p[1] + off, len - off);
    c[2] = crc16Reference(c2, p[2] + off, len - off);
    c[3] = crc16Reference(c3, p[3] + off, len - off);
}

} // namespace

// --- Public API -----------------------------------------------------

const char *
crcKernelName(CrcKernel k)
{
    switch (k) {
      case CrcKernel::kReference:
        return "reference";
      case CrcKernel::kSlice8:
        return "slice8";
      case CrcKernel::kHardware:
        return "hw";
    }
    return "unknown";
}

std::vector<CrcKernel>
availableCrc32Kernels()
{
    std::vector<CrcKernel> out{CrcKernel::kReference,
                               CrcKernel::kSlice8};
    if (crc32HardwareAvailable()) {
        out.push_back(CrcKernel::kHardware);
    }
    return out;
}

CrcKernel
activeCrc32Kernel()
{
    return kActiveKernel;
}

std::uint32_t
crc32Step(CrcKernel k, std::uint32_t state, const void *data,
          std::size_t len)
{
    return kernelFn(k)(state, static_cast<const std::uint8_t *>(data),
                       len);
}

std::uint16_t
crc16Step(bool sliced, std::uint16_t state, const void *data,
          std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    return sliced ? crc16Slice2(state, p, len)
                  : crc16Reference(state, p, len);
}

// vstream:hot
void
crc32Batch(const std::uint8_t *const *blocks, std::size_t block_len,
           std::size_t count, std::uint32_t *out)
{
    std::size_t i = 0;
    // Honour a forced reference kernel (VSTREAM_CRC_IMPL) so the
    // batch path measures what the override asked for; the digests
    // are identical either way.
    if (kActiveKernel == CrcKernel::kHardware &&
        crc32BatchClmul(blocks, block_len, count, out)) {
        return;
    }
    // Long blocks under the hw kernel fold 64 B per CLMUL round;
    // the per-block tail loop below routes them through it.
    const bool hw_long =
        kActiveKernel == CrcKernel::kHardware && block_len >= 64;
    if (kActiveKernel != CrcKernel::kReference && !hw_long) {
        for (; i + 4 <= count; i += 4) {
            std::uint32_t c[4] = {0xffffffffu, 0xffffffffu,
                                  0xffffffffu, 0xffffffffu};
            crc32Slice8x4(blocks + i, block_len, c);
            out[i] = ~c[0];
            out[i + 1] = ~c[1];
            out[i + 2] = ~c[2];
            out[i + 3] = ~c[3];
        }
    }
    for (; i < count; ++i) {
        out[i] = ~kActiveFn(0xffffffffu, blocks[i], block_len);
    }
}

// vstream:hot
void
crc16Batch(const std::uint8_t *const *blocks, std::size_t block_len,
           std::size_t count, std::uint16_t *out)
{
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        std::uint16_t c[4] = {0xffffu, 0xffffu, 0xffffu, 0xffffu};
        crc16Slice2x4(blocks + i, block_len, c);
        out[i] = c[0];
        out[i + 1] = c[1];
        out[i + 2] = c[2];
        out[i + 3] = c[3];
    }
    for (; i < count; ++i) {
        out[i] = crc16Slice2(0xffffu, blocks[i], block_len);
    }
}

// vstream:hot
void
Crc32::update(const void *data, std::size_t len)
{
    state_ = kActiveFn(state_, static_cast<const std::uint8_t *>(data),
                       len);
}

std::uint32_t
Crc32::compute(const void *data, std::size_t len)
{
    Crc32 h;
    h.update(data, len);
    return h.digest();
}

// vstream:hot
void
Crc16::update(const void *data, std::size_t len)
{
    state_ = crc16Slice2(state_,
                         static_cast<const std::uint8_t *>(data), len);
}

std::uint16_t
Crc16::compute(const void *data, std::size_t len)
{
    Crc16 h;
    h.update(data, len);
    return h.digest();
}

} // namespace vstream
