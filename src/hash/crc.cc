#include "hash/crc.hh"

#include <array>

namespace vstream
{

namespace
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint16_t, 256>
makeCrc16Table()
{
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint16_t c = static_cast<std::uint16_t>(i << 8);
        for (int k = 0; k < 8; ++k) {
            c = (c & 0x8000u)
                    ? static_cast<std::uint16_t>((c << 1) ^ 0x1021u)
                    : static_cast<std::uint16_t>(c << 1);
        }
        table[i] = c;
    }
    return table;
}

const auto crc32_table = makeCrc32Table();
const auto crc16_table = makeCrc16Table();

} // namespace

void
Crc32::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
        c = crc32_table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    state_ = c;
}

std::uint32_t
Crc32::compute(const void *data, std::size_t len)
{
    Crc32 crc;
    crc.update(data, len);
    return crc.digest();
}

void
Crc16::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint16_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
        c = static_cast<std::uint16_t>(
            (c << 8) ^ crc16_table[((c >> 8) ^ p[i]) & 0xffu]);
    }
    state_ = c;
}

std::uint16_t
Crc16::compute(const void *data, std::size_t len)
{
    Crc16 crc;
    crc.update(data, len);
    return crc.digest();
}

} // namespace vstream
