#include "hash/crc.hh"

#include <array>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VSTREAM_CRC_X86_CLMUL 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define VSTREAM_CRC_ARM 1
#include <arm_acle.h>
#endif

namespace vstream
{

namespace
{

// --- Table generation (constexpr, shared by every kernel) -----------

constexpr std::uint32_t kCrc32Poly = 0xedb88320u; // IEEE, reflected

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (kCrc32Poly ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

/**
 * Slicing-by-8 tables: kSlice32[k][b] is the CRC32 of byte b followed
 * by k zero bytes, so eight independent table lookups advance the
 * state by eight message bytes at once.  kSlice32[0] is the classic
 * byte-at-a-time table the reference kernel walks.
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeCrc32SliceTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    t[0] = makeCrc32Table();
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t b = 0; b < 256; ++b) {
            const std::uint32_t prev = t[k - 1][b];
            t[k][b] = (prev >> 8) ^ t[0][prev & 0xffu];
        }
    }
    return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kSlice32 =
    makeCrc32SliceTables();

constexpr std::uint16_t kCrc16Poly = 0x1021u; // CCITT, MSB-first

constexpr std::array<std::uint16_t, 256>
makeCrc16Table()
{
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint16_t c = static_cast<std::uint16_t>(i << 8);
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 0x8000u)
                    ? static_cast<std::uint16_t>((c << 1) ^ kCrc16Poly)
                    : static_cast<std::uint16_t>(c << 1);
        }
        table[i] = c;
    }
    return table;
}

/** kSlice16[1][b] = CRC16 of byte b followed by one zero byte. */
constexpr std::array<std::array<std::uint16_t, 256>, 2>
makeCrc16SliceTables()
{
    std::array<std::array<std::uint16_t, 256>, 2> t{};
    t[0] = makeCrc16Table();
    for (std::uint32_t b = 0; b < 256; ++b) {
        const std::uint16_t prev = t[0][b];
        t[1][b] = static_cast<std::uint16_t>(
            (prev << 8) ^ t[0][(prev >> 8) & 0xffu]);
    }
    return t;
}

constexpr std::array<std::array<std::uint16_t, 256>, 2> kSlice16 =
    makeCrc16SliceTables();

// --- CRC32 kernels --------------------------------------------------

// vstream:hot
std::uint32_t
crc32Reference(std::uint32_t state, const std::uint8_t *p,
               std::size_t len)
{
    std::uint32_t c = state;
    for (std::size_t i = 0; i < len; ++i) {
        c = kSlice32[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return c;
}

// vstream:hot
std::uint32_t
crc32Slice8(std::uint32_t state, const std::uint8_t *p, std::size_t len)
{
    std::uint32_t c = state;
    while (len >= 8) {
        // Explicit little-endian assembly keeps the kernel
        // endian-agnostic; compilers fold each into one 32-bit load.
        const std::uint32_t lo =
            static_cast<std::uint32_t>(p[0]) |
            (static_cast<std::uint32_t>(p[1]) << 8) |
            (static_cast<std::uint32_t>(p[2]) << 16) |
            (static_cast<std::uint32_t>(p[3]) << 24);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(p[4]) |
            (static_cast<std::uint32_t>(p[5]) << 8) |
            (static_cast<std::uint32_t>(p[6]) << 16) |
            (static_cast<std::uint32_t>(p[7]) << 24);
        c ^= lo;
        c = kSlice32[7][c & 0xffu] ^ kSlice32[6][(c >> 8) & 0xffu] ^
            kSlice32[5][(c >> 16) & 0xffu] ^ kSlice32[4][c >> 24] ^
            kSlice32[3][hi & 0xffu] ^ kSlice32[2][(hi >> 8) & 0xffu] ^
            kSlice32[1][(hi >> 16) & 0xffu] ^ kSlice32[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    return crc32Reference(c, p, len);
}

#ifdef VSTREAM_CRC_X86_CLMUL

/**
 * PCLMULQDQ folding for the IEEE polynomial (the classic "Fast CRC
 * computation using PCLMULQDQ" construction).  Folds 64-byte blocks
 * through four 128-bit accumulators, reduces to one, then Barrett-
 * reduces to 32 bits.  Requires len to be a multiple of 16 and >= 64;
 * the dispatcher feeds tail bytes to the slice-8 kernel.
 */
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32ClmulBlock(std::uint32_t state, const std::uint8_t *p,
                std::size_t len)
{
    // Folding/reduction constants for reflected 0x04C11DB7.
    const __m128i k1k2 = _mm_setr_epi32(0x54442bd4, 1,
                                        static_cast<int>(0xc6e41596),
                                        1);
    const __m128i k3k4 = _mm_setr_epi32(0x751997d0, 1,
                                        static_cast<int>(0xccaa009e),
                                        0);
    const __m128i k5k0 = _mm_setr_epi32(0x63cd6124, 1, 0, 0);
    const __m128i poly_mu =
        _mm_setr_epi32(static_cast<int>(0xdb710641), 1,
                       static_cast<int>(0xf7011641), 1);
    const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);

    __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    __m128i x2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 16));
    __m128i x3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 32));
    __m128i x4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 48));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
    p += 64;
    len -= 64;

// Lambdas do not inherit the enclosing target attribute, so the fold
// steps are macros.  FOLD(acc, k, d): acc = clmul-fold(acc, k) ^ d.
#define VSTREAM_CRC_FOLD(acc, k, d)                                    \
    (acc) = _mm_xor_si128(                                             \
        (d), _mm_xor_si128(_mm_clmulepi64_si128((acc), (k), 0x00),     \
                           _mm_clmulepi64_si128((acc), (k), 0x11)))
#define VSTREAM_CRC_LOAD(q)                                            \
    _mm_loadu_si128(reinterpret_cast<const __m128i *>(q))

    while (len >= 64) {
        VSTREAM_CRC_FOLD(x1, k1k2, VSTREAM_CRC_LOAD(p));
        VSTREAM_CRC_FOLD(x2, k1k2, VSTREAM_CRC_LOAD(p + 16));
        VSTREAM_CRC_FOLD(x3, k1k2, VSTREAM_CRC_LOAD(p + 32));
        VSTREAM_CRC_FOLD(x4, k1k2, VSTREAM_CRC_LOAD(p + 48));
        p += 64;
        len -= 64;
    }

    VSTREAM_CRC_FOLD(x1, k3k4, x2);
    VSTREAM_CRC_FOLD(x1, k3k4, x3);
    VSTREAM_CRC_FOLD(x1, k3k4, x4);

    while (len >= 16) {
        VSTREAM_CRC_FOLD(x1, k3k4, VSTREAM_CRC_LOAD(p));
        p += 16;
        len -= 16;
    }

#undef VSTREAM_CRC_FOLD
#undef VSTREAM_CRC_LOAD

    // Fold 128 -> 64 bits.
    x2 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, x2);

    // Fold 64 -> 32 bits.
    x2 = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5k0, 0x00);
    x1 = _mm_xor_si128(x1, x2);

    // Barrett reduction.
    x2 = _mm_and_si128(x1, mask32);
    x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x10);
    x2 = _mm_and_si128(x2, mask32);
    x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x00);
    x1 = _mm_xor_si128(x1, x2);
    return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

// vstream:hot
std::uint32_t
crc32Hardware(std::uint32_t state, const std::uint8_t *p,
              std::size_t len)
{
    if (len >= 64) {
        const std::size_t chunk = len & ~static_cast<std::size_t>(15);
        state = crc32ClmulBlock(state, p, chunk);
        p += chunk;
        len -= chunk;
    }
    return crc32Slice8(state, p, len);
}

bool
crc32HardwareAvailable()
{
    return __builtin_cpu_supports("pclmul") &&
           __builtin_cpu_supports("sse4.1");
}

#elif defined(VSTREAM_CRC_ARM)

// vstream:hot
std::uint32_t
crc32Hardware(std::uint32_t state, const std::uint8_t *p,
              std::size_t len)
{
    std::uint32_t c = state;
    while (len >= 8) {
        std::uint64_t v;
        std::memcpy(&v, p, 8);
        c = __crc32d(c, v);
        p += 8;
        len -= 8;
    }
    while (len > 0) {
        c = __crc32b(c, *p++);
        --len;
    }
    return c;
}

bool
crc32HardwareAvailable()
{
    return true;
}

#else

std::uint32_t
crc32Hardware(std::uint32_t state, const std::uint8_t *p,
              std::size_t len)
{
    return crc32Slice8(state, p, len);
}

bool
crc32HardwareAvailable()
{
    return false;
}

#endif

using Crc32Fn = std::uint32_t (*)(std::uint32_t, const std::uint8_t *,
                                  std::size_t);

Crc32Fn
kernelFn(CrcKernel k)
{
    switch (k) {
      case CrcKernel::kReference:
        return crc32Reference;
      case CrcKernel::kSlice8:
        return crc32Slice8;
      case CrcKernel::kHardware:
        return crc32Hardware;
    }
    return crc32Reference;
}

/**
 * Pick the dispatch target once, pre-main: the fastest available
 * kernel unless VSTREAM_CRC_IMPL forces one.  All kernels are
 * digest-identical, so the choice never affects simulation output.
 */
// All kernels produce identical digests (test_crc), so the env read
// can select an implementation but never perturb simulation output.
// vstream:allow(determinism-source) digest-equivalent dispatch
CrcKernel
resolveCrc32Kernel()
{
    const CrcKernel best = crc32HardwareAvailable()
                               ? CrcKernel::kHardware
                               : CrcKernel::kSlice8;
    // Resolved once, pre-main, before any thread exists.
    const char *force =
        std::getenv("VSTREAM_CRC_IMPL"); // NOLINT(concurrency-mt-unsafe)
    if (force == nullptr) {
        return best;
    }
    if (std::strcmp(force, "reference") == 0) {
        return CrcKernel::kReference;
    }
    if (std::strcmp(force, "slice8") == 0) {
        return CrcKernel::kSlice8;
    }
    if (std::strcmp(force, "hw") == 0 && crc32HardwareAvailable()) {
        return CrcKernel::kHardware;
    }
    return best;
}

const CrcKernel kActiveKernel = resolveCrc32Kernel();
const Crc32Fn kActiveFn = kernelFn(kActiveKernel);

// --- CRC16 kernels --------------------------------------------------

// vstream:hot
std::uint16_t
crc16Reference(std::uint16_t state, const std::uint8_t *p,
               std::size_t len)
{
    std::uint16_t c = state;
    for (std::size_t i = 0; i < len; ++i) {
        c = static_cast<std::uint16_t>(
            (c << 8) ^ kSlice16[0][((c >> 8) ^ p[i]) & 0xffu]);
    }
    return c;
}

// vstream:hot
std::uint16_t
crc16Slice2(std::uint16_t state, const std::uint8_t *p, std::size_t len)
{
    std::uint16_t c = state;
    while (len >= 2) {
        c = static_cast<std::uint16_t>(
            kSlice16[1][((c >> 8) ^ p[0]) & 0xffu] ^
            kSlice16[0][(c ^ p[1]) & 0xffu]);
        p += 2;
        len -= 2;
    }
    return crc16Reference(c, p, len);
}

} // namespace

// --- Public API -----------------------------------------------------

const char *
crcKernelName(CrcKernel k)
{
    switch (k) {
      case CrcKernel::kReference:
        return "reference";
      case CrcKernel::kSlice8:
        return "slice8";
      case CrcKernel::kHardware:
        return "hw";
    }
    return "unknown";
}

std::vector<CrcKernel>
availableCrc32Kernels()
{
    std::vector<CrcKernel> out{CrcKernel::kReference,
                               CrcKernel::kSlice8};
    if (crc32HardwareAvailable()) {
        out.push_back(CrcKernel::kHardware);
    }
    return out;
}

CrcKernel
activeCrc32Kernel()
{
    return kActiveKernel;
}

std::uint32_t
crc32Step(CrcKernel k, std::uint32_t state, const void *data,
          std::size_t len)
{
    return kernelFn(k)(state, static_cast<const std::uint8_t *>(data),
                       len);
}

std::uint16_t
crc16Step(bool sliced, std::uint16_t state, const void *data,
          std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    return sliced ? crc16Slice2(state, p, len)
                  : crc16Reference(state, p, len);
}

// vstream:hot
void
Crc32::update(const void *data, std::size_t len)
{
    state_ = kActiveFn(state_, static_cast<const std::uint8_t *>(data),
                       len);
}

std::uint32_t
Crc32::compute(const void *data, std::size_t len)
{
    Crc32 h;
    h.update(data, len);
    return h.digest();
}

// vstream:hot
void
Crc16::update(const void *data, std::size_t len)
{
    state_ = crc16Slice2(state_,
                         static_cast<const std::uint8_t *>(data), len);
}

std::uint16_t
Crc16::compute(const void *data, std::size_t len)
{
    Crc16 h;
    h.update(data, len);
    return h.digest();
}

} // namespace vstream
