#include "hash/sha1.hh"

#include <cstring>

namespace vstream
{

namespace
{

inline std::uint32_t
rotl(std::uint32_t x, std::uint32_t n)
{
    return (x << n) | (x >> (32 - n));
}

} // namespace

void
Sha1::reset()
{
    state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
              0xc3d2e1f0u};
    total_len_ = 0;
    buffer_len_ = 0;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }

    std::uint32_t a = state_[0];
    std::uint32_t b = state_[1];
    std::uint32_t c = state_[2];
    std::uint32_t d = state_[3];
    std::uint32_t e = state_[4];

    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
}

void
Sha1::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    total_len_ += len;

    if (buffer_len_ > 0) {
        const std::size_t need = 64 - buffer_len_;
        const std::size_t take = std::min(need, len);
        std::memcpy(buffer_.data() + buffer_len_, p, take);
        buffer_len_ += take;
        p += take;
        len -= take;
        if (buffer_len_ == 64) {
            processBlock(buffer_.data());
            buffer_len_ = 0;
        }
    }
    while (len >= 64) {
        processBlock(p);
        p += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer_.data(), p, len);
        buffer_len_ = len;
    }
}

std::array<std::uint8_t, 20>
Sha1::digest()
{
    const std::uint64_t bit_len = total_len_ * 8;

    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) {
        update(&zero, 1);
    }

    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
        len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
    std::memcpy(buffer_.data() + 56, len_bytes, 8);
    processBlock(buffer_.data());
    buffer_len_ = 0;

    std::array<std::uint8_t, 20> out{};
    for (int i = 0; i < 5; ++i) {
        out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
        out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
}

std::array<std::uint8_t, 20>
Sha1::compute(const void *data, std::size_t len)
{
    Sha1 sha;
    sha.update(data, len);
    return sha.digest();
}

std::uint32_t
Sha1::compute32(const void *data, std::size_t len)
{
    const auto d = compute(data, len);
    return (static_cast<std::uint32_t>(d[0]) << 24) |
           (static_cast<std::uint32_t>(d[1]) << 16) |
           (static_cast<std::uint32_t>(d[2]) << 8) |
           static_cast<std::uint32_t>(d[3]);
}

std::string
Sha1::toHex(const std::array<std::uint8_t, 20> &d)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(40);
    for (std::uint8_t byte : d) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xf]);
    }
    return out;
}

} // namespace vstream
