/**
 * @file
 * Unified 32-bit digest interface over the hash family.
 *
 * MACH tags are 32 bits regardless of the hash studied (Fig. 12d);
 * MD5/SHA-1 digests are truncated, matching how the paper compares
 * the schemes at equal tag cost.
 */

#ifndef VSTREAM_HASH_HASHER_HH
#define VSTREAM_HASH_HASHER_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace vstream
{

/** Hash functions available for macroblock digests. */
enum class HashKind
{
    kCrc32,
    kMd5,
    kSha1,
};

/** Human-readable name ("crc32", "md5", "sha1"). */
std::string hashKindName(HashKind kind);

/** Parse a name back to a HashKind; fatal on unknown names. */
HashKind hashKindFromName(const std::string &name);

/** Compute the 32-bit digest of a buffer under the given hash. */
std::uint32_t digest32(HashKind kind, const void *data, std::size_t len);

/**
 * Compute the 16-bit auxiliary digest used by CO-MACH.
 *
 * Always CRC16-CCITT, independent of the primary hash, mirroring the
 * paper's 48-bit (CRC32 || CRC16) deep-hash construction.
 */
std::uint16_t auxDigest16(const void *data, std::size_t len);

/**
 * Whole-frame digest batch: digest @p count equal-length blocks in
 * one dispatch call.  CRC32 runs the 4-way interleaved kernel; MD5
 * and SHA-1 hoist the per-mab kind switch out of the loop.  Each
 * out[i] equals digest32(kind, blocks[i], block_len) exactly.
 */
void digest32Batch(HashKind kind, const std::uint8_t *const *blocks,
                   std::size_t block_len, std::size_t count,
                   std::uint32_t *out);

/** Batched auxiliary digest: out[i] = auxDigest16(blocks[i], ...). */
void auxDigest16Batch(const std::uint8_t *const *blocks,
                      std::size_t block_len, std::size_t count,
                      std::uint16_t *out);

} // namespace vstream

#endif // VSTREAM_HASH_HASHER_HH
