#include "hash/md5.hh"

#include <cstring>

namespace vstream
{

namespace
{

constexpr std::array<std::uint32_t, 64> kTable = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u,
};

constexpr std::array<std::uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

inline std::uint32_t
rotl(std::uint32_t x, std::uint32_t n)
{
    return (x << n) | (x >> (32 - n));
}

} // namespace

void
Md5::reset()
{
    state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
    total_len_ = 0;
    buffer_len_ = 0;
}

void
Md5::processBlock(const std::uint8_t *block)
{
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
        m[i] = static_cast<std::uint32_t>(block[i * 4]) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
    }

    std::uint32_t a = state_[0];
    std::uint32_t b = state_[1];
    std::uint32_t c = state_[2];
    std::uint32_t d = state_[3];

    for (std::uint32_t i = 0; i < 64; ++i) {
        std::uint32_t f, g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) & 15u;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) & 15u;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) & 15u;
        }
        const std::uint32_t tmp = d;
        d = c;
        c = b;
        b = b + rotl(a + f + kTable[i] + m[g], kShift[i]);
        a = tmp;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
}

void
Md5::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    total_len_ += len;

    if (buffer_len_ > 0) {
        const std::size_t need = 64 - buffer_len_;
        const std::size_t take = std::min(need, len);
        std::memcpy(buffer_.data() + buffer_len_, p, take);
        buffer_len_ += take;
        p += take;
        len -= take;
        if (buffer_len_ == 64) {
            processBlock(buffer_.data());
            buffer_len_ = 0;
        }
    }
    while (len >= 64) {
        processBlock(p);
        p += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer_.data(), p, len);
        buffer_len_ = len;
    }
}

std::array<std::uint8_t, 16>
Md5::digest()
{
    const std::uint64_t bit_len = total_len_ * 8;

    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) {
        update(&zero, 1);
    }

    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
        len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
    }
    // Bypass update() so total_len_ accounting does not matter here.
    std::memcpy(buffer_.data() + 56, len_bytes, 8);
    processBlock(buffer_.data());
    buffer_len_ = 0;

    std::array<std::uint8_t, 16> out{};
    for (int i = 0; i < 4; ++i) {
        out[i * 4] = static_cast<std::uint8_t>(state_[i]);
        out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 8);
        out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 16);
        out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i] >> 24);
    }
    return out;
}

std::array<std::uint8_t, 16>
Md5::compute(const void *data, std::size_t len)
{
    Md5 md5;
    md5.update(data, len);
    return md5.digest();
}

std::uint32_t
Md5::compute32(const void *data, std::size_t len)
{
    const auto d = compute(data, len);
    return static_cast<std::uint32_t>(d[0]) |
           (static_cast<std::uint32_t>(d[1]) << 8) |
           (static_cast<std::uint32_t>(d[2]) << 16) |
           (static_cast<std::uint32_t>(d[3]) << 24);
}

std::string
Md5::toHex(const std::array<std::uint8_t, 16> &d)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (std::uint8_t byte : d) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xf]);
    }
    return out;
}

} // namespace vstream
