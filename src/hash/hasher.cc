#include "hash/hasher.hh"

#include "hash/crc.hh"
#include "hash/md5.hh"
#include "hash/sha1.hh"
#include "sim/logging.hh"

namespace vstream
{

std::string
hashKindName(HashKind kind)
{
    switch (kind) {
      case HashKind::kCrc32:
        return "crc32";
      case HashKind::kMd5:
        return "md5";
      case HashKind::kSha1:
        return "sha1";
    }
    return "unknown";
}

HashKind
hashKindFromName(const std::string &name)
{
    if (name == "crc32") {
        return HashKind::kCrc32;
    }
    if (name == "md5") {
        return HashKind::kMd5;
    }
    if (name == "sha1") {
        return HashKind::kSha1;
    }
    vs_fatal("unknown hash kind '", name, "'");
}

std::uint32_t
digest32(HashKind kind, const void *data, std::size_t len)
{
    switch (kind) {
      case HashKind::kCrc32:
        return Crc32::compute(data, len);
      case HashKind::kMd5:
        return Md5::compute32(data, len);
      case HashKind::kSha1:
        return Sha1::compute32(data, len);
    }
    vs_panic("unreachable hash kind");
}

std::uint16_t
auxDigest16(const void *data, std::size_t len)
{
    return Crc16::compute(data, len);
}

// vstream:hot
void
digest32Batch(HashKind kind, const std::uint8_t *const *blocks,
              std::size_t block_len, std::size_t count,
              std::uint32_t *out)
{
    switch (kind) {
      case HashKind::kCrc32:
        crc32Batch(blocks, block_len, count, out);
        return;
      case HashKind::kMd5:
        for (std::size_t i = 0; i < count; ++i) {
            out[i] = Md5::compute32(blocks[i], block_len);
        }
        return;
      case HashKind::kSha1:
        for (std::size_t i = 0; i < count; ++i) {
            out[i] = Sha1::compute32(blocks[i], block_len);
        }
        return;
    }
    vs_panic("unreachable hash kind");
}

// vstream:hot
void
auxDigest16Batch(const std::uint8_t *const *blocks,
                 std::size_t block_len, std::size_t count,
                 std::uint16_t *out)
{
    crc16Batch(blocks, block_len, count, out);
}

} // namespace vstream
