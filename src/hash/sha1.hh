/**
 * @file
 * SHA-1 (FIPS 180-1), used in the Fig. 12d hash-function sensitivity
 * study.
 */

#ifndef VSTREAM_HASH_SHA1_HH
#define VSTREAM_HASH_SHA1_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vstream
{

/** Incremental SHA-1. */
class Sha1
{
  public:
    Sha1() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);

    /** Finalize and return the 20-byte digest. */
    std::array<std::uint8_t, 20> digest();

    static std::array<std::uint8_t, 20> compute(const void *data,
                                                std::size_t len);

    /** One-shot digest truncated to 32 bits (for MACH tag studies). */
    static std::uint32_t compute32(const void *data, std::size_t len);

    static std::string toHex(const std::array<std::uint8_t, 20> &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 5> state_{};
    std::uint64_t total_len_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffer_len_ = 0;
};

} // namespace vstream

#endif // VSTREAM_HASH_SHA1_HH
