/**
 * @file
 * MD5 message digest (RFC 1321), used in the Fig. 12d hash-function
 * sensitivity study.
 */

#ifndef VSTREAM_HASH_MD5_HH
#define VSTREAM_HASH_MD5_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vstream
{

/** Incremental MD5. */
class Md5
{
  public:
    Md5() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);

    /** Finalize and return the 16-byte digest (object then unusable
     * until reset()). */
    std::array<std::uint8_t, 16> digest();

    /** One-shot digest. */
    static std::array<std::uint8_t, 16> compute(const void *data,
                                                std::size_t len);

    /** One-shot digest truncated to 32 bits (for MACH tag studies). */
    static std::uint32_t compute32(const void *data, std::size_t len);

    /** Lower-case hex string of a digest. */
    static std::string toHex(const std::array<std::uint8_t, 16> &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 4> state_{};
    std::uint64_t total_len_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffer_len_ = 0;
};

} // namespace vstream

#endif // VSTREAM_HASH_MD5_HH
