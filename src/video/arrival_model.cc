#include "video/arrival_model.hh"

#include <algorithm>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace vstream
{

void
ArrivalConfig::validate() const
{
    if (!enabled) {
        return;
    }
    if (bandwidth_mbps <= 0.0) {
        vs_fatal("arrival bandwidth must be positive, got ",
                 bandwidth_mbps, " Mbps");
    }
    if (jitter_frac < 0.0 || jitter_frac > 2.0) {
        vs_fatal("arrival jitter sigma ", jitter_frac,
                 " outside [0, 2]");
    }
}

ArrivalModel::ArrivalModel(const VideoProfile &profile,
                           const ArrivalConfig &cfg,
                           FaultInjector *faults)
{
    cfg.validate();

    std::uint64_t seed_state = cfg.seed != 0
                                   ? cfg.seed
                                   : profile.seed ^ 0xa55a1e57u;
    Random rng(splitMix64(seed_state));

    // Nominal wire size of one frame; the lognormal multiplier keeps
    // the mean transfer time at bytes/bandwidth while modelling the
    // per-frame variation a rate-adaptive encoder produces.
    const double frame_bytes =
        profile.encoded_bytes_per_mab *
        static_cast<double>(profile.mabsPerFrame());
    const double mean_transfer_s =
        frame_bytes * 8.0 / (cfg.bandwidth_mbps * 1e6);
    const double sigma = cfg.jitter_frac;
    const double mu = -0.5 * sigma * sigma; // E[multiplier] = 1

    arrivals_.assign(profile.frame_count, 0);
    Tick now = 0;
    for (std::uint32_t i = 0; i < profile.frame_count; ++i) {
        if (i < cfg.preroll_frames) {
            // Pre-rolled frames are buffered before playback starts.
            arrivals_[i] = 0;
            continue;
        }
        const double mult =
            sigma > 0.0 ? rng.logNormal(mu, sigma) : 1.0;
        now += secondsToTicks(mean_transfer_s * mult);
        if (faults != nullptr) {
            const Tick stall = faults->injectStall(now);
            if (stall > 0) {
                now += stall;
                total_stall_ += stall;
                ++stall_events_;
            }
        }
        arrivals_[i] = now;
    }
}

Tick
ArrivalModel::arrivalTick(std::uint32_t frame) const
{
    vs_assert(frame < arrivals_.size(),
              "arrival query past the last frame");
    return arrivals_[frame];
}

std::uint32_t
ArrivalModel::framesArrivedBy(Tick t) const
{
    const auto it =
        std::upper_bound(arrivals_.begin(), arrivals_.end(), t);
    return static_cast<std::uint32_t>(it - arrivals_.begin());
}

} // namespace vstream
