/**
 * @file
 * A decoded video frame: a grid of macroblocks plus decode metadata.
 */

#ifndef VSTREAM_VIDEO_FRAME_HH
#define VSTREAM_VIDEO_FRAME_HH

#include <cstdint>
#include <vector>

#include "video/gop.hh"
#include "video/macroblock.hh"

namespace vstream
{

/** How the synthetic generator produced a macroblock (ground truth
 * for tests; the simulated hardware never sees this). */
enum class MabOrigin : std::uint8_t
{
    kUnique,
    kPureColor,
    kIntraCopy,
    kInterCopy,
    kGradientShift,
};

/** A decoded frame. */
class Frame
{
  public:
    /** Empty shell; call reinit() before use.  Exists so generators
     * can keep a recycled scratch frame (zero-alloc steady state). */
    Frame() = default;

    Frame(std::uint64_t index, FrameType type, std::uint32_t mabs_x,
          std::uint32_t mabs_y, std::uint32_t mab_dim);

    /**
     * Re-stamp this frame for a new position in the stream, reusing
     * the macroblock storage when the geometry is unchanged.  Resets
     * complexity, encoded bytes, and all origins.
     */
    void reinit(std::uint64_t index, FrameType type, std::uint32_t mabs_x,
                std::uint32_t mabs_y, std::uint32_t mab_dim);

    std::uint64_t index() const { return index_; }
    FrameType type() const { return type_; }
    std::uint32_t mabsX() const { return mabs_x_; }
    std::uint32_t mabsY() const { return mabs_y_; }
    std::uint32_t mabCount() const { return mabs_x_ * mabs_y_; }
    std::uint32_t mabDim() const { return mab_dim_; }

    /** Decoded size of the full frame in bytes. */
    std::uint64_t decodedBytes() const;

    const Macroblock &mab(std::uint32_t i) const;
    Macroblock &mab(std::uint32_t i);
    const Macroblock &mabAt(std::uint32_t x, std::uint32_t y) const;

    MabOrigin origin(std::uint32_t i) const { return origins_.at(i); }
    void setOrigin(std::uint32_t i, MabOrigin o) { origins_.at(i) = o; }

    /**
     * Per-frame decode complexity multiplier (lognormal across
     * frames); scales the compute cycles of every mab in the frame.
     */
    double complexity() const { return complexity_; }
    void setComplexity(double c) { complexity_ = c; }

    /** Size of this frame in its encoded (compressed) form. */
    std::uint64_t encodedBytes() const { return encoded_bytes_; }
    void setEncodedBytes(std::uint64_t b) { encoded_bytes_ = b; }

    /** CRC32 over all pixel data (round-trip verification). */
    std::uint32_t contentChecksum() const;

  private:
    std::uint64_t index_ = 0;
    FrameType type_ = FrameType::kI;
    std::uint32_t mabs_x_ = 0;
    std::uint32_t mabs_y_ = 0;
    std::uint32_t mab_dim_ = 0;
    double complexity_ = 1.0;
    std::uint64_t encoded_bytes_ = 0;
    std::vector<Macroblock> mabs_;
    std::vector<MabOrigin> origins_;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_FRAME_HH
