#include "video/synthetic_video.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "video/gop.hh"

namespace vstream
{

SyntheticVideo::SyntheticVideo(const VideoProfile &profile)
    : profile_(profile), rng_(profile.seed)
{
    profile_.validate();

    // Similarity rates are calibrated for 4x4 blocks.  A larger
    // block only recurs if all of its 4x4 tiles recur together, so
    // the match probability decays with block area; smaller blocks
    // recur more (paper Fig. 12c's trade-off against metadata).
    const double area_ratio =
        static_cast<double>(profile_.mab_dim) * profile_.mab_dim /
        16.0;
    if (area_ratio != 1.0) {
        auto scale = [&](double rate) {
            return rate > 0.0 ? std::pow(rate, area_ratio) : 0.0;
        };
        profile_.intra_match_rate = scale(profile_.intra_match_rate);
        profile_.inter_match_rate = scale(profile_.inter_match_rate);
        profile_.gradient_shift_rate =
            scale(profile_.gradient_shift_rate);
        profile_.pure_color_rate = scale(profile_.pure_color_rate);
        profile_.smooth_rate = scale(profile_.smooth_rate);

        // Tiny blocks push the copy rates toward 1; keep the three
        // exclusive categories a valid partition.
        const double sum = profile_.intra_match_rate +
                           profile_.inter_match_rate +
                           profile_.gradient_shift_rate;
        if (sum > 0.95) {
            const double f = 0.95 / sum;
            profile_.intra_match_rate *= f;
            profile_.inter_match_rate *= f;
            profile_.gradient_shift_rate *= f;
        }
    }

    // Pre-build the ramp palette: gradient patterns shared by smooth
    // blocks.  Bases vary per block, so these collide only under gab.
    Random ramp_rng(profile_.seed ^ 0x52414d50ULL);
    for (std::uint32_t r = 0; r < profile_.ramp_palette; ++r) {
        Macroblock gab(profile_.mab_dim);
        const auto dx = static_cast<std::uint8_t>(ramp_rng.uniformInt(0, 6));
        const auto dy = static_cast<std::uint8_t>(ramp_rng.uniformInt(0, 6));
        for (std::uint32_t y = 0; y < profile_.mab_dim; ++y) {
            for (std::uint32_t x = 0; x < profile_.mab_dim; ++x) {
                const auto v =
                    static_cast<std::uint8_t>(x * dx + y * dy);
                gab.setPixel(y * profile_.mab_dim + x, Pixel{v, v, v});
            }
        }
        ramps_.push_back(gab);
    }
}

void
SyntheticVideo::reset()
{
    rng_.seed(profile_.seed);
    next_index_ = 0;
    win_next_ = 0;
    win_size_ = 0;
}

const Frame &
SyntheticVideo::windowAt(std::size_t i) const
{
    vs_assert(i < win_size_, "window index out of range");
    const std::size_t cap = profile_.inter_window;
    return window_ring_[(win_next_ + cap - win_size_ + i) % cap];
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) warmup-only growth: the ring fills
// to inter_window slots once, then recycles them by copy-assignment
void
SyntheticVideo::pushWindow(const Frame &frame)
{
    const std::size_t cap = profile_.inter_window;
    if (window_ring_.size() < cap && win_next_ == window_ring_.size()) {
        window_ring_.push_back(frame);
        win_next_ = window_ring_.size() % cap;
    } else {
        window_ring_[win_next_] = frame;
        win_next_ = (win_next_ + 1) % cap;
    }
    win_size_ = std::min(win_size_ + 1, cap);
}

Pixel
SyntheticVideo::paletteColor()
{
    // Quantized palette so the same colour recurs across the video.
    // Heavily skewed toward colour 0 (black): letterbox bars, dark
    // scenes and test-card fields dominate real pure-colour content,
    // which is what concentrates matches on a single digest
    // (paper Fig. 9b).
    const std::uint64_t idx =
        rng_.chance(0.25)
            ? 0
            : rng_.uniformInt(0, profile_.color_palette - 1);
    std::uint64_t h = idx * 0x9e3779b97f4a7c15ULL + profile_.seed;
    h = splitMix64(h);
    return Pixel{static_cast<std::uint8_t>(h),
                 static_cast<std::uint8_t>(h >> 8),
                 static_cast<std::uint8_t>(h >> 16)};
}

// vstream:hot
void
SyntheticVideo::uniqueMabInto(Macroblock &mab)
{
    for (auto &byte : mab.bytes()) {
        byte = static_cast<std::uint8_t>(rng_.next());
    }
}

// vstream:hot
void
SyntheticVideo::smoothMabInto(Macroblock &mab)
{
    const auto ramp_idx = rng_.uniformInt(0, ramps_.size() - 1);
    Macroblock::fromGradientInto(ramps_[ramp_idx], paletteColor(), mab);
}

std::uint32_t
SyntheticVideo::intraSource(std::uint32_t i)
{
    vs_assert(i > 0, "no earlier mab to copy");
    if (rng_.chance(profile_.intra_locality)) {
        // Spatially near: a short geometric hop backwards.
        const std::uint64_t reach =
            std::min<std::uint64_t>(profile_.locality_reach, i);
        const std::uint64_t d = rng_.burstLength(0.97, reach);
        return i - static_cast<std::uint32_t>(d);
    }
    return static_cast<std::uint32_t>(rng_.uniformInt(0, i - 1));
}

const Macroblock &
SyntheticVideo::windowMabNear(std::uint32_t i)
{
    vs_assert(win_size_ > 0, "no window frame to copy from");
    // Bias toward recent frames: the paper finds matches beyond 16
    // frames are <1%, and most inter matches are near.
    const std::size_t which =
        win_size_ - 1 -
        std::min<std::size_t>(static_cast<std::size_t>(
                                  rng_.burstLength(0.6, win_size_) - 1),
                              win_size_ - 1);
    const Frame &f = windowAt(which);

    // Mostly the co-located block (still content / slow pans), with
    // a small motion offset; occasionally anywhere in the frame.
    std::uint64_t mab_idx;
    if (rng_.chance(profile_.intra_locality)) {
        const std::int64_t off =
            static_cast<std::int64_t>(rng_.uniformInt(0, 64)) - 32;
        std::int64_t idx = static_cast<std::int64_t>(i) + off;
        idx = std::clamp<std::int64_t>(idx, 0, f.mabCount() - 1);
        mab_idx = static_cast<std::uint64_t>(idx);
    } else {
        mab_idx = rng_.uniformInt(0, f.mabCount() - 1);
    }
    return f.mab(static_cast<std::uint32_t>(mab_idx));
}

Frame
SyntheticVideo::nextFrame()
{
    Frame frame;
    nextFrameInto(frame);
    return frame;
}

// vstream:hot
void
SyntheticVideo::nextFrameInto(Frame &out)
{
    vs_assert(!done(), "video '", profile_.key, "' exhausted");

    const GopStructure gop(profile_.gop_pattern);
    const std::uint64_t idx = next_index_++;

    // Scene cut: clear the copy window so following frames start
    // fresh (drives the I-frame-heavy trailer workloads).
    if (idx > 0 && rng_.chance(profile_.scene_change_rate)) {
        win_size_ = 0;
    }

    // Static frame: a verbatim repeat of the previous frame (the
    // content class that checksum-based display schemes eliminate).
    if (idx > 0 && win_size_ > 0 &&
        rng_.chance(profile_.static_frame_rate)) {
        const Frame &prev = windowAt(win_size_ - 1);
        // Re-stamp the per-frame metadata for this position.
        out.reinit(idx, gop.frameType(idx), profile_.mabsX(),
                   profile_.mabsY(), profile_.mab_dim);
        for (std::uint32_t i = 0; i < out.mabCount(); ++i) {
            out.mab(i) = prev.mab(i);
            out.setOrigin(i, MabOrigin::kInterCopy);
        }
        out.setComplexity(0.6); // repeats decode cheaply
        out.setEncodedBytes(static_cast<std::uint64_t>(
            profile_.mabsPerFrame() * profile_.encoded_bytes_per_mab *
            0.2));
        pushWindow(out);
        return;
    }

    out.reinit(idx, gop.frameType(idx), profile_.mabsX(),
               profile_.mabsY(), profile_.mab_dim);
    Frame &frame = out;

    // Per-frame decode complexity: lognormal with unit mean, capped.
    const double mu =
        -0.5 * profile_.complexity_sigma * profile_.complexity_sigma;
    double complexity = rng_.logNormal(mu, profile_.complexity_sigma);
    complexity = std::min(complexity, profile_.complexity_cap);
    // (I frames' larger decode effort is modelled by the cost
    // model's per-type weights, not here.)
    frame.setComplexity(complexity);

    const double i_size_factor =
        (frame.type() == FrameType::kI) ? 3.0 : 1.0;
    frame.setEncodedBytes(static_cast<std::uint64_t>(
        profile_.mabsPerFrame() * profile_.encoded_bytes_per_mab *
        i_size_factor * complexity));

    const double p_intra = profile_.intra_match_rate;
    const double p_inter = p_intra + profile_.inter_match_rate;
    const double p_grad = p_inter + profile_.gradient_shift_rate;

    for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
        const double r = rng_.uniform();

        if (r < p_intra && i > 0) {
            const auto src = intraSource(i);
            frame.mab(i) = frame.mab(src);
            frame.setOrigin(i, MabOrigin::kIntraCopy);
        } else if (r < p_inter && win_size_ > 0) {
            frame.mab(i) = windowMabNear(i);
            frame.setOrigin(i, MabOrigin::kInterCopy);
        } else if (r < p_grad && i > 0) {
            // Same gradient, different base: pick an earlier mab of
            // this frame and shift all pixels by a non-zero constant.
            const auto src = intraSource(i);
            const auto dr = static_cast<std::uint8_t>(
                rng_.uniformInt(1, 255));
            const auto dg = static_cast<std::uint8_t>(
                rng_.uniformInt(0, 255));
            const auto db = static_cast<std::uint8_t>(
                rng_.uniformInt(0, 255));
            frame.mab(src).shiftedInto(dr, dg, db, frame.mab(i));
            frame.setOrigin(i, MabOrigin::kGradientShift);
        } else if (rng_.chance(profile_.pure_color_rate)) {
            frame.mab(i).fill(paletteColor());
            frame.setOrigin(i, MabOrigin::kPureColor);
        } else if (rng_.chance(profile_.smooth_rate)) {
            smoothMabInto(frame.mab(i));
            frame.setOrigin(i, MabOrigin::kGradientShift);
        } else {
            uniqueMabInto(frame.mab(i));
            frame.setOrigin(i, MabOrigin::kUnique);
        }
    }

    pushWindow(frame);
}

} // namespace vstream
