/**
 * @file
 * Runtime-dispatched pixel kernels for the per-mab hot loops.
 *
 * Two families, both following the CRC dispatch pattern of
 * hash/crc.hh (registry of digest-stable kernels, resolved once
 * pre-main, forceable through a VSTREAM_*_IMPL env variable, and
 * byte-identical output no matter which kernel runs):
 *
 *  - **Gradient transform** (`gradientSub` / `gradientAdd`): the
 *    wrap-around per-byte subtract/add of a base pixel whose channel
 *    cycles r,g,b (Macroblock::gradientInto / fromGradient).  The
 *    SIMD kernels exploit lcm(16, 3) = 48: three rotated 16-byte base
 *    vectors cover every phase of the 3-byte pattern, so SSE2
 *    processes 16 pixels (48 bytes) per iteration and AVX2 32 pixels
 *    (96 bytes).  Byte subtraction is exact mod-256 arithmetic in
 *    both scalar and vector form, so the kernels are identical by
 *    construction.  VSTREAM_GRADIENT_IMPL=scalar|sse2|avx2.
 *
 *  - **Similarity compare** (`blockEqual`): the block-equality probe
 *    behind MACH verify-on-hit, the collider forge check and
 *    Macroblock::operator==.  Variants: byte-at-a-time scalar, packed
 *    uint64 loads, and 16-byte SSE2 compare+movemask.  A boolean
 *    cannot drift, so equivalence is trivial; the kernels exist for
 *    the verify-on-hit path where every MACH hit pays a full-block
 *    compare.  VSTREAM_SIMILARITY_IMPL=scalar|packed64|simd.
 */

#ifndef VSTREAM_VIDEO_PIXEL_KERNELS_HH
#define VSTREAM_VIDEO_PIXEL_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "video/pixel.hh"

namespace vstream
{

/** One gradient-transform implementation; see file comment. */
enum class GradientKernel : std::uint8_t
{
    kScalar = 0,
    kSse2,
    kAvx2,
};

/** Human-readable kernel name ("scalar", "sse2", "avx2"). */
const char *gradientKernelName(GradientKernel k);

/** Gradient kernels usable on this host, scalar first. */
std::vector<GradientKernel> availableGradientKernels();

/** The kernel gradientSub/gradientAdd dispatch to at startup. */
GradientKernel activeGradientKernel();

/**
 * dst[i] = src[i] - base-channel(i mod 3), mod 256, for @p len bytes
 * (the mab -> gab transform).  Runs the startup-selected kernel.
 */
void gradientSub(std::uint8_t *dst, const std::uint8_t *src,
                 std::size_t len, const Pixel &base);

/** dst[i] = src[i] + base-channel(i mod 3): the gab -> mab inverse. */
void gradientAdd(std::uint8_t *dst, const std::uint8_t *src,
                 std::size_t len, const Pixel &base);

/** Explicit-kernel variants (test/bench hooks). */
void gradientSubWith(GradientKernel k, std::uint8_t *dst,
                     const std::uint8_t *src, std::size_t len,
                     const Pixel &base);
void gradientAddWith(GradientKernel k, std::uint8_t *dst,
                     const std::uint8_t *src, std::size_t len,
                     const Pixel &base);

/** One block-equality implementation; see file comment. */
enum class SimilarityKernel : std::uint8_t
{
    kScalar = 0,
    kPacked64,
    kSimd,
};

/** Human-readable kernel name ("scalar", "packed64", "simd"). */
const char *similarityKernelName(SimilarityKernel k);

/** Similarity kernels usable on this host, scalar first. */
std::vector<SimilarityKernel> availableSimilarityKernels();

/** The kernel blockEqual dispatches to at startup. */
SimilarityKernel activeSimilarityKernel();

/** True when the @p len bytes at @p a and @p b are identical. */
bool blockEqual(const std::uint8_t *a, const std::uint8_t *b,
                std::size_t len);

/** Explicit-kernel variant (test/bench hook). */
bool blockEqualWith(SimilarityKernel k, const std::uint8_t *a,
                    const std::uint8_t *b, std::size_t len);

/** Vector convenience: sizes then contents. */
bool blockEqual(const std::vector<std::uint8_t> &a,
                const std::vector<std::uint8_t> &b);

} // namespace vstream

#endif // VSTREAM_VIDEO_PIXEL_KERNELS_HH
