/**
 * @file
 * Decoded macroblock (mab) and its gradient representation (gab).
 *
 * A mab is a square block of decoded pixels (default 4x4 = 48 bytes,
 * the size the paper's Fig. 12c sensitivity study selects).  Its
 * gradient block subtracts the first (top-left) pixel from every
 * pixel channel-wise with wrap-around arithmetic, so that
 * mab == gab + base exactly; two mabs that differ only by a constant
 * colour offset share one gab.
 */

#ifndef VSTREAM_VIDEO_MACROBLOCK_HH
#define VSTREAM_VIDEO_MACROBLOCK_HH

#include <cstdint>
#include <vector>

#include "hash/hasher.hh"
#include "video/pixel.hh"

namespace vstream
{

/** A decoded block of pixels stored as contiguous RGB bytes. */
class Macroblock
{
  public:
    /** An all-black block of dimension @p dim. */
    explicit Macroblock(std::uint32_t dim = 4);

    /** Wrap existing raw bytes (must be dim*dim*3 long). */
    Macroblock(std::uint32_t dim, std::vector<std::uint8_t> bytes);

    std::uint32_t dim() const { return dim_; }
    std::uint32_t pixelCount() const { return dim_ * dim_; }
    std::uint32_t sizeBytes() const
    {
        return pixelCount() * kBytesPerPixel;
    }

    /** Pixel at linear index @p i (row-major). */
    Pixel pixel(std::uint32_t i) const;
    void setPixel(std::uint32_t i, const Pixel &p);

    /** First (top-left) pixel; the gab base. */
    Pixel base() const { return pixel(0); }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> &bytes() { return bytes_; }

    /** Fill every pixel with @p p (a "pure colour" block). */
    void fill(const Pixel &p);

    /** Replace the content with @p len raw bytes of a @p dim block,
     * reusing this block's storage. */
    void assignBytes(std::uint32_t dim, const std::uint8_t *data,
                     std::size_t len);

    /** Add @p p to every pixel in place (wrap-around) — the DC's gab
     * base re-add at scan-out. */
    void addBase(const Pixel &p);

    /** 32-bit content digest under @p kind. */
    std::uint32_t digest(HashKind kind) const;

    /** 16-bit auxiliary digest (CO-MACH). */
    std::uint16_t auxDigest() const;

    /**
     * Gradient block: each byte minus the corresponding base channel,
     * wrap-around.  The first pixel of the result is always 0.
     */
    Macroblock gradient() const;

    /**
     * In-place variant: write the gradient block into @p out, reusing
     * its storage.  The per-mab workhorse of MachWriteback in GAB
     * mode — no allocation once @p out has been sized.
     */
    void gradientInto(Macroblock &out) const;

    /** Digest of the gradient block. */
    std::uint32_t gradientDigest(HashKind kind) const;

    /** Reconstruct a mab from its gradient block and base pixel. */
    static Macroblock fromGradient(const Macroblock &gab, const Pixel &p);

    /**
     * In-place reconstruction into @p out, reusing its storage — the
     * scan-out workhorse of FrameReconstructor in GAB mode.
     */
    static void fromGradientInto(const Macroblock &gab, const Pixel &p,
                                 Macroblock &out);

    /** Add a constant offset to every pixel (wrap-around); the result
     * has the same gradient block but a different base. */
    Macroblock shifted(std::uint8_t dr, std::uint8_t dg,
                       std::uint8_t db) const;

    /**
     * In-place variant of shifted(): write into @p out, reusing its
     * storage.  @p out may alias this block (exact overlap only).
     */
    void shiftedInto(std::uint8_t dr, std::uint8_t dg, std::uint8_t db,
                     Macroblock &out) const;

    bool operator==(const Macroblock &o) const;
    bool operator!=(const Macroblock &o) const { return !(*this == o); }

  private:
    std::uint32_t dim_;
    std::vector<std::uint8_t> bytes_;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_MACROBLOCK_HH
