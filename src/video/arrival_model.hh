/**
 * @file
 * Network frame-arrival model.
 *
 * The seed pipeline assumes the streaming buffer refills in fixed
 * chunk intervals and always in time; this module replaces that with
 * an explicit per-frame arrival timeline driven by link bandwidth,
 * multiplicative jitter, and injected stalls (FaultInjector class
 * kNetworkStall).  BurstLink-style whole-frame bursts over a lossy
 * path are the motivating scenario: when the link stalls, batching
 * hits buffer underrun and the pipeline must degrade (shrunk batches,
 * early S3 wake-ups, repeated scan-outs) instead of panicking.
 *
 * The whole timeline is precomputed at construction from the video
 * profile's nominal encoded size and a seeded RNG, so arrivals are
 * deterministic and O(1) to query during simulation.
 */

#ifndef VSTREAM_VIDEO_ARRIVAL_MODEL_HH
#define VSTREAM_VIDEO_ARRIVAL_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"
#include "video/video_profile.hh"

namespace vstream
{

class FaultInjector;

/** Knobs of the network path. */
struct ArrivalConfig
{
    /** Off by default: the pipeline keeps the seed chunk model and
     * reproduces bit-identical results. */
    bool enabled = false;
    /** Link bandwidth, megabits per second. */
    double bandwidth_mbps = 40.0;
    /** Sigma of the lognormal multiplier on each frame's transfer
     * time (0 = a perfectly paced link). */
    double jitter_frac = 0.0;
    /** Frames already buffered at t = 0 (pre-roll). */
    std::uint32_t preroll_frames = 32;
    /** RNG seed; 0 derives one from the video profile's seed. */
    std::uint64_t seed = 0;

    void validate() const;
};

/** Precomputed per-frame arrival times. */
class ArrivalModel
{
  public:
    /**
     * @param faults optional stall source (class kNetworkStall);
     *        consulted once per post-preroll frame at its nominal
     *        delivery tick.
     */
    ArrivalModel(const VideoProfile &profile, const ArrivalConfig &cfg,
                 FaultInjector *faults);

    /** Tick at which frame @p frame is fully delivered. */
    Tick arrivalTick(std::uint32_t frame) const;

    /** Number of frames fully delivered by @p t (prefix length). */
    std::uint32_t framesArrivedBy(Tick t) const;

    /** Total injected stall time baked into the timeline. */
    Tick stallTicks() const { return total_stall_; }

    /** Number of injected stalls baked into the timeline (the
     * serve-layer health ladder counts a storm by this). */
    std::uint64_t stallEvents() const { return stall_events_; }

    std::uint32_t frameCount() const
    {
        return static_cast<std::uint32_t>(arrivals_.size());
    }

  private:
    std::vector<Tick> arrivals_;
    Tick total_stall_ = 0;
    std::uint64_t stall_events_ = 0;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_ARRIVAL_MODEL_HH
