#include "video/library.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "core/flat_table.hh"
#include "sim/logging.hh"

namespace vstream
{

namespace
{

/** Catalogue cap: beyond this the per-title CDF stops being a
 * sensible in-memory structure and the spec is almost certainly a
 * typo (or hostile fuzz input). */
constexpr std::uint32_t kMaxTitles = 1u << 20;

/** Zipf exponents above this produce weights that underflow to zero
 * long before the catalogue ends; reject rather than silently
 * degenerate to a one-title library. */
constexpr double kMaxSkew = 16.0;

/** Plain digits only; see tryParseCount in serve/chaos.cc for why
 * strtoull alone is a trap on untrusted input. */
bool
tryParseCount(const std::string &value, std::uint64_t &out,
              std::string &error)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        error = "bad count '" + value + "'";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size()) {
        error = "count '" + value + "' out of range";
        return false;
    }
    out = v;
    return true;
}

bool
tryParseSkew(const std::string &value, double &out, std::string &error)
{
    char *end = nullptr;
    const double s = std::strtod(value.c_str(), &end);
    // Inclusive-range form is false for NaN.
    if (end == value.c_str() || *end != '\0' ||
        !(s >= 0.0 && s <= kMaxSkew)) {
        error = "bad skew '" + value + "' (need [0, 16])";
        return false;
    }
    out = s;
    return true;
}

} // namespace

bool
tryParseLibrarySpec(const std::string &spec, LibrarySpec &out,
                    std::string &error)
{
    LibrarySpec lib;
    bool have_titles = false;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            comma = spec.size();
        }
        const std::string field = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (field.empty()) {
            continue;
        }
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            error = "field '" + field + "' is not key=value";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        bool ok = true;
        if (key == "titles") {
            std::uint64_t n = 0;
            ok = tryParseCount(value, n, error);
            if (ok && (n == 0 || n > kMaxTitles)) {
                error = "titles '" + value + "' outside [1, " +
                        std::to_string(kMaxTitles) + "]";
                return false;
            }
            if (ok) {
                lib.titles = static_cast<std::uint32_t>(n);
                have_titles = true;
            }
        } else if (key == "skew") {
            ok = tryParseSkew(value, lib.skew, error);
        } else if (key == "seed") {
            ok = tryParseCount(value, lib.seed, error);
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            return false;
        }
    }

    if (!have_titles) {
        error = "library needs titles=N";
        return false;
    }
    out = lib;
    return true;
}

LibrarySpec
parseLibrarySpec(const std::string &spec)
{
    LibrarySpec lib;
    std::string error;
    if (!tryParseLibrarySpec(spec, lib, error)) {
        vs_fatal("library spec '", spec, "': ", error);
    }
    return lib;
}

ZipfLibrary::ZipfLibrary(LibrarySpec spec) : spec_(spec)
{
    vs_assert(spec_.titles >= 1 && spec_.titles <= kMaxTitles,
              "library titles outside [1, 2^20]");
    vs_assert(spec_.skew >= 0.0 && spec_.skew <= kMaxSkew,
              "library skew outside [0, 16]");
    cdf_.resize(spec_.titles);
    double total = 0.0;
    for (std::uint32_t t = 0; t < spec_.titles; ++t) {
        total += std::pow(static_cast<double>(t) + 1.0, -spec_.skew);
        cdf_[t] = total;
    }
    for (double &c : cdf_) {
        c /= total;
    }
    cdf_.back() = 1.0;
}

std::uint32_t
ZipfLibrary::sampleTitle(std::uint64_t key) const
{
    const std::uint64_t u = mixHash(spec_.seed ^ mixHash(key));
    // 53 mantissa bits of uniform [0, 1).
    const double x =
        static_cast<double>(u >> 11) * 0x1.0p-53;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    const auto idx = it == cdf_.end() ? cdf_.size() - 1
                                      : static_cast<std::size_t>(
                                            it - cdf_.begin());
    return static_cast<std::uint32_t>(idx);
}

double
ZipfLibrary::weight(std::uint32_t title) const
{
    vs_assert(title < spec_.titles, "library title out of range");
    return title == 0 ? cdf_[0] : cdf_[title] - cdf_[title - 1];
}

void
ZipfLibrary::applyTo(VideoProfile &profile, std::uint32_t title) const
{
    vs_assert(title < spec_.titles, "library title out of range");
    profile.key = "T" + std::to_string(title);
    profile.library_title = title;
    // Content identity: same title => same generator seed => byte-
    // identical macroblocks, independent of which session plays it.
    profile.seed = mixHash(spec_.seed ^
                           (0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(title) + 1)));
}

} // namespace vstream
