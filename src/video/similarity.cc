#include "video/similarity.hh"

#include <algorithm>
#include <deque>

#include "core/flat_table.hh"
#include "sim/logging.hh"
#include "video/synthetic_video.hh"

namespace vstream
{

double
SimilarityReport::intraFraction() const
{
    return mabs ? static_cast<double>(intra_exact) /
                      static_cast<double>(mabs)
                : 0.0;
}

double
SimilarityReport::interFraction() const
{
    return mabs ? static_cast<double>(inter_exact) /
                      static_cast<double>(mabs)
                : 0.0;
}

double
SimilarityReport::noneFraction() const
{
    return mabs ? static_cast<double>(none_exact) /
                      static_cast<double>(mabs)
                : 0.0;
}

double
SimilarityReport::gabMatchFraction() const
{
    return mabs ? static_cast<double>(intra_gab + inter_gab) /
                      static_cast<double>(mabs)
                : 0.0;
}

namespace
{

/**
 * 64-bit FNV-1a content key.  Replaces the old std::string key (one
 * heap allocation + full-content compares per probe) with an integer
 * the flat tables hash directly.
 */
// vstream:hot
std::uint64_t
keyOf(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : bytes) {
        h = (h ^ b) * 0x100000001b3ull;
    }
    return h;
}

std::vector<double>
shares(const FlatMap<std::uint64_t, std::uint64_t> &counts,
       std::size_t k)
{
    std::vector<std::uint64_t> sorted;
    sorted.reserve(counts.size());
    std::uint64_t total = 0;
    counts.forEach([&](std::uint64_t, std::uint64_t n) {
        sorted.push_back(n);
        total += n;
    });
    std::sort(sorted.begin(), sorted.end(),
              std::greater<std::uint64_t>());
    std::vector<double> out;
    out.reserve(std::min(k, sorted.size()));
    for (std::size_t i = 0; i < k && i < sorted.size(); ++i) {
        out.push_back(total ? static_cast<double>(sorted[i]) /
                                  static_cast<double>(total)
                            : 0.0);
    }
    return out;
}

} // namespace

SimilarityReport
analyzeSimilarity(const VideoProfile &profile, std::uint32_t max_frames,
                  std::uint32_t window, std::size_t top_k)
{
    VideoProfile p = profile;
    if (max_frames > 0 && p.frame_count > max_frames) {
        p.frame_count = max_frames;
    }
    vs_assert(p.frame_count > 0,
              "similarity analysis of an empty video");

    SyntheticVideo video(p);
    SimilarityReport report;
    report.inter_age_hist.assign(window, 0);

    // Per-frame content sets for the window, newest at the front.
    std::deque<FlatSet<std::uint64_t>> exact_window;
    std::deque<FlatSet<std::uint64_t>> gab_window;

    FlatMap<std::uint64_t, std::uint64_t> mab_match_counts;
    FlatMap<std::uint64_t, std::uint64_t> gab_match_counts;

    // Optimal (unbounded) dedup byte counters.
    std::uint64_t opt_mab_bytes = 0;
    std::uint64_t opt_gab_bytes = 0;
    const std::uint64_t mab_bytes =
        static_cast<std::uint64_t>(p.mab_dim) * p.mab_dim *
        kBytesPerPixel;

    Macroblock gab_scratch(p.mab_dim);

    while (!video.done()) {
        const Frame frame = video.nextFrame();
        if (frame.mabCount() == 0) {
            vs_panic("similarity analysis hit an empty frame");
        }
        FlatSet<std::uint64_t> cur_exact;
        FlatSet<std::uint64_t> cur_gab;
        cur_exact.reserve(frame.mabCount());
        cur_gab.reserve(frame.mabCount());

        for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
            ++report.mabs;
            const Macroblock &mab = frame.mab(i);
            mab.gradientInto(gab_scratch);
            const std::uint64_t mk = keyOf(mab.bytes());
            const std::uint64_t gk = keyOf(gab_scratch.bytes());

            // --- exact (mab) matching ------------------------------
            // Single pass: insert() reports whether the key was
            // already in the current frame (the old code paid a
            // count() probe and then a second insert() probe).
            bool matched = !cur_exact.insert(mk);
            if (matched) {
                ++report.intra_exact;
            } else {
                std::uint32_t age = 0;
                for (const auto &s : exact_window) {
                    if (s.contains(mk)) {
                        ++report.inter_exact;
                        ++report.inter_age_hist[age];
                        matched = true;
                        break;
                    }
                    ++age;
                }
            }
            if (matched) {
                ++mab_match_counts[mk];
                opt_mab_bytes += 4; // pointer
            } else {
                ++report.none_exact;
                opt_mab_bytes += mab_bytes + 4;
            }

            // --- gradient (gab) matching ---------------------------
            bool gab_matched = !cur_gab.insert(gk);
            if (gab_matched) {
                ++report.intra_gab;
            } else {
                for (const auto &s : gab_window) {
                    if (s.contains(gk)) {
                        ++report.inter_gab;
                        gab_matched = true;
                        break;
                    }
                }
            }
            if (gab_matched) {
                ++gab_match_counts[gk];
                opt_gab_bytes += 4 + 3; // pointer + base
            } else {
                ++report.none_gab;
                opt_gab_bytes += mab_bytes + 4 + 3;
            }
        }

        exact_window.push_front(std::move(cur_exact));
        gab_window.push_front(std::move(cur_gab));
        while (exact_window.size() > window) {
            exact_window.pop_back();
            gab_window.pop_back();
        }
    }

    const double baseline =
        static_cast<double>(report.mabs) *
        static_cast<double>(mab_bytes);
    if (baseline > 0.0) {
        report.optimal_mab_savings =
            1.0 - static_cast<double>(opt_mab_bytes) / baseline;
        report.optimal_gab_savings =
            1.0 - static_cast<double>(opt_gab_bytes) / baseline;
    }
    report.top_mab_shares = shares(mab_match_counts, top_k);
    report.top_gab_shares = shares(gab_match_counts, top_k);
    return report;
}

} // namespace vstream
