/**
 * @file
 * Group-of-pictures structure (I/P/B frame pattern).
 */

#ifndef VSTREAM_VIDEO_GOP_HH
#define VSTREAM_VIDEO_GOP_HH

#include <cstdint>
#include <string>

namespace vstream
{

/** Encoded frame types. */
enum class FrameType : std::uint8_t
{
    kI,
    kP,
    kB,
};

char frameTypeChar(FrameType t);

/**
 * A cyclic GOP pattern, e.g. "IPPPPPPP" or "IBBPBBPBB".
 *
 * Frame 0 is always forced to I (a stream must start with a
 * self-contained frame regardless of the cycle position).
 */
class GopStructure
{
  public:
    /** Parse @p pattern; fatal on characters other than I/P/B or an
     * empty/I-less pattern. */
    explicit GopStructure(const std::string &pattern = "IPPPPPPP");

    /** Type of frame @p index in display order. */
    FrameType frameType(std::uint64_t index) const;

    std::uint32_t period() const
    {
        return static_cast<std::uint32_t>(pattern_.size());
    }

    const std::string &pattern() const { return pattern_; }

    /** Fraction of frames of type @p t over one period. */
    double typeFraction(FrameType t) const;

  private:
    std::string pattern_;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_GOP_HH
