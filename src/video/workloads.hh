/**
 * @file
 * The 16 workload videos of paper Table 1, as synthetic profiles.
 *
 * Each profile's similarity/complexity knobs are chosen to mimic the
 * character the paper describes (TV test pattern, time-lapse, macro
 * lens, web-cam, movie trailers, game captures) and the per-video
 * behaviours called out in the evaluation (e.g. V4's short slacks,
 * V8's best-case GAB savings, V9's marginal MAB benefit).
 */

#ifndef VSTREAM_VIDEO_WORKLOADS_HH
#define VSTREAM_VIDEO_WORKLOADS_HH

#include <string>
#include <vector>

#include "video/video_profile.hh"

namespace vstream
{

/** All 16 profiles (V1..V16), full-length. */
const std::vector<VideoProfile> &workloadTable();

/** Profile by key ("V1".."V16"); fatal on unknown keys. */
VideoProfile workload(const std::string &key);

/**
 * Profile resized for fast simulation: the frame count is capped at
 * @p max_frames and the resolution overridden (0 keeps the default).
 */
VideoProfile scaledWorkload(const std::string &key,
                            std::uint32_t max_frames,
                            std::uint32_t width = 0,
                            std::uint32_t height = 0);

} // namespace vstream

#endif // VSTREAM_VIDEO_WORKLOADS_HH
