#include "video/workloads.hh"

#include "sim/logging.hh"

namespace vstream
{

namespace
{

VideoProfile
baseProfile(const std::string &key, const std::string &name,
            const std::string &desc, std::uint32_t frames,
            std::uint64_t seed)
{
    VideoProfile p;
    p.key = key;
    p.name = name;
    p.description = desc;
    p.frame_count = frames;
    p.seed = seed;
    return p;
}

std::vector<VideoProfile>
buildTable()
{
    std::vector<VideoProfile> t;

    // V1: satellite TV test card - static synthetic patterns, large
    // flat regions, but the most demanding bitstream.
    {
        auto p = baseProfile("V1", "SES Astra", "TV Test Video", 6507, 101);
        p.intra_match_rate = 0.40;
        p.inter_match_rate = 0.18;
        p.gradient_shift_rate = 0.06;
        p.pure_color_rate = 0.28;
        p.color_palette = 128;
        p.mean_decode_frac = 0.78;
        p.complexity_sigma = 0.14;
        p.gop_pattern = "IPPPPPPP";
        t.push_back(p);
    }
    // V2: 120 fps time-lapse - rapid global change, little reuse.
    {
        auto p = baseProfile("V2", "Honey Bees", "Timelapse @ 120 fps",
                             5461, 102);
        p.intra_match_rate = 0.27;
        p.inter_match_rate = 0.07;
        p.gradient_shift_rate = 0.07;
        p.pure_color_rate = 0.12;
        p.mean_decode_frac = 0.75;
        p.complexity_sigma = 0.22;
        t.push_back(p);
    }
    // V3: macro-lens home video - heavy bokeh, smooth gradients.
    {
        auto p = baseProfile("V3", "Puppies Bath",
                             "Home Video; Macro Lens.", 3593, 103);
        p.intra_match_rate = 0.31;
        p.inter_match_rate = 0.12;
        p.gradient_shift_rate = 0.14;
        p.pure_color_rate = 0.16;
        p.smooth_rate = 0.30;
        p.mean_decode_frac = 0.70;
        p.complexity_sigma = 0.18;
        t.push_back(p);
    }
    // V4: NASA web-cam - mostly black space, but heavy frames with
    // short slacks (the paper notes batching alone barely helps).
    {
        auto p = baseProfile("V4", "NASA", "NASA WebCam", 1758, 104);
        p.intra_match_rate = 0.36;
        p.inter_match_rate = 0.20;
        p.gradient_shift_rate = 0.04;
        p.pure_color_rate = 0.30;
        p.color_palette = 96;
        p.mean_decode_frac = 0.86;
        p.complexity_sigma = 0.10;
        p.gop_pattern = "IPPPPPPP";
        t.push_back(p);
    }
    // V5-V8: movie trailers - letterbox bars, scene cuts.
    {
        auto p = baseProfile("V5", "Elysium", "2013 Movie Trailer",
                             3176, 105);
        p.intra_match_rate = 0.35;
        p.inter_match_rate = 0.12;
        p.gradient_shift_rate = 0.11;
        p.pure_color_rate = 0.22;
        p.scene_change_rate = 0.02;
        p.mean_decode_frac = 0.72;
        p.complexity_sigma = 0.20;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V6", "Gone Girl", "2014 Movie Trailer",
                             3591, 106);
        p.intra_match_rate = 0.33;
        p.inter_match_rate = 0.10;
        p.gradient_shift_rate = 0.10;
        p.pure_color_rate = 0.20;
        p.scene_change_rate = 0.02;
        p.mean_decode_frac = 0.74;
        p.complexity_sigma = 0.22;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V7", "Interstellar", "2014 Movie Trailer",
                             2429, 107);
        p.intra_match_rate = 0.37;
        p.inter_match_rate = 0.14;
        p.gradient_shift_rate = 0.11;
        p.pure_color_rate = 0.28;
        p.scene_change_rate = 0.015;
        p.mean_decode_frac = 0.72;
        p.complexity_sigma = 0.20;
        t.push_back(p);
    }
    {
        // The paper's best case for GAB (33% energy saving).
        auto p = baseProfile("V8", "007 Skyfall", "2012 Movie Trailer",
                             3676, 108);
        p.intra_match_rate = 0.40;
        p.inter_match_rate = 0.16;
        p.gradient_shift_rate = 0.16;
        p.pure_color_rate = 0.30;
        p.color_palette = 192;
        p.smooth_rate = 0.28;
        p.mean_decode_frac = 0.70;
        p.complexity_sigma = 0.18;
        t.push_back(p);
    }
    // V9-V16: 4K game captures.
    {
        // The paper notes MAB barely pays for itself on V9.
        auto p = baseProfile("V9", "Batman Origins",
                             "Adventure Game Video", 4702, 109);
        p.intra_match_rate = 0.10;
        p.inter_match_rate = 0.05;
        p.gradient_shift_rate = 0.06;
        p.pure_color_rate = 0.06;
        p.smooth_rate = 0.09;
        p.mean_decode_frac = 0.72;
        p.complexity_sigma = 0.20;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V10", "Battlefield", "Shooter Game Video",
                             2899, 110);
        p.intra_match_rate = 0.29;
        p.inter_match_rate = 0.12;
        p.gradient_shift_rate = 0.10;
        p.pure_color_rate = 0.14;
        p.mean_decode_frac = 0.74;
        p.complexity_sigma = 0.21;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V11", "Call of Duty", "Action Game Video",
                             5799, 111);
        p.intra_match_rate = 0.31;
        p.inter_match_rate = 0.14;
        p.gradient_shift_rate = 0.11;
        p.pure_color_rate = 0.15;
        p.mean_decode_frac = 0.73;
        p.complexity_sigma = 0.20;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V12", "Crysis 3", "Survival Game Video",
                             10147, 112);
        p.intra_match_rate = 0.27;
        p.inter_match_rate = 0.12;
        p.gradient_shift_rate = 0.11;
        p.pure_color_rate = 0.12;
        p.mean_decode_frac = 0.75;
        p.complexity_sigma = 0.22;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V13", "Dear Esther",
                             "Exploration Game Video", 1699, 113);
        p.intra_match_rate = 0.37;
        p.inter_match_rate = 0.17;
        p.gradient_shift_rate = 0.13;
        p.pure_color_rate = 0.19;
        p.mean_decode_frac = 0.68;
        p.complexity_sigma = 0.16;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V14", "Metro LastNight",
                             "Atmospheric Game Video", 4981, 114);
        p.intra_match_rate = 0.33;
        p.inter_match_rate = 0.14;
        p.gradient_shift_rate = 0.11;
        p.pure_color_rate = 0.17;
        p.mean_decode_frac = 0.72;
        p.complexity_sigma = 0.19;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V15", "Tomb Raider",
                             "Protagonist Game Video", 5981, 115);
        p.intra_match_rate = 0.31;
        p.inter_match_rate = 0.13;
        p.gradient_shift_rate = 0.11;
        p.pure_color_rate = 0.15;
        p.mean_decode_frac = 0.73;
        p.complexity_sigma = 0.20;
        t.push_back(p);
    }
    {
        auto p = baseProfile("V16", "Watch Dogs", "Hacking Game Video",
                             3806, 116);
        p.intra_match_rate = 0.30;
        p.inter_match_rate = 0.12;
        p.gradient_shift_rate = 0.10;
        p.pure_color_rate = 0.14;
        p.mean_decode_frac = 0.74;
        p.complexity_sigma = 0.21;
        t.push_back(p);
    }

    for (const auto &p : t) {
        p.validate();
    }
    return t;
}

} // namespace

const std::vector<VideoProfile> &
workloadTable()
{
    static const std::vector<VideoProfile> table = buildTable();
    return table;
}

VideoProfile
workload(const std::string &key)
{
    for (const auto &p : workloadTable()) {
        if (p.key == key) {
            return p;
        }
    }
    vs_fatal("unknown workload '", key, "'");
}

VideoProfile
scaledWorkload(const std::string &key, std::uint32_t max_frames,
               std::uint32_t width, std::uint32_t height)
{
    VideoProfile p = workload(key);
    if (max_frames > 0 && p.frame_count > max_frames) {
        p.frame_count = max_frames;
    }
    if (width > 0) {
        p.width = width;
    }
    if (height > 0) {
        p.height = height;
    }
    p.validate();
    return p;
}

} // namespace vstream
