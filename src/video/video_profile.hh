/**
 * @file
 * Parameterization of a synthetic video workload.
 *
 * The paper traces 16 real 4K videos (Table 1) through FFmpeg; we
 * replace the traces with a generative model whose knobs map directly
 * onto the statistics the paper measures: macroblock content
 * similarity (Fig. 7b), per-frame decode-time distribution (Fig. 2b),
 * and encoded-stream size.
 */

#ifndef VSTREAM_VIDEO_VIDEO_PROFILE_HH
#define VSTREAM_VIDEO_VIDEO_PROFILE_HH

#include <cstdint>
#include <string>

namespace vstream
{

/** All generator knobs for one video. */
struct VideoProfile
{
    /** Short key, e.g. "V8". */
    std::string key = "V0";
    /** Human-readable title. */
    std::string name = "synthetic";
    /** One-line description (mirrors Table 1). */
    std::string description;

    // --- geometry -------------------------------------------------------
    /** Simulated frame width/height in pixels. */
    std::uint32_t width = 256;
    std::uint32_t height = 144;
    /** Macroblock dimension (4 => 4x4 pixels = 48 B). */
    std::uint32_t mab_dim = 4;
    std::uint32_t fps = 60;
    /** Frames in the full video (benches may cap this). */
    std::uint32_t frame_count = 600;

    /** RNG seed; same seed => byte-identical video. */
    std::uint64_t seed = 1;

    /** Title index when this profile was bound to a shared content
     * library (ZipfLibrary::applyTo); 0xffffffff (kNoLibraryTitle)
     * for standalone content. */
    std::uint32_t library_title = 0xffffffffu;

    // --- content similarity (drives MACH, Figs. 7b/9) -------------------
    /** P(mab exactly copies an earlier mab of the same frame). */
    double intra_match_rate = 0.42;
    /** P(mab exactly copies a mab from one of the previous
     * inter_window frames). */
    double inter_match_rate = 0.15;
    /** P(mab is a constant-offset shift of an earlier mab: same
     * gradient block, different base; only gab catches it). */
    double gradient_shift_rate = 0.12;
    /** Among newly minted blocks, fraction that are pure colour. */
    double pure_color_rate = 0.30;
    /** How many previous frames content may be copied from. */
    std::uint32_t inter_window = 16;
    /** P(scene cut at a frame: the copy window is cleared). */
    double scene_change_rate = 0.004;
    /** P(a frame is a verbatim repeat of its predecessor) - static
     * content such as paused webcams or test cards; what checksum
     * schemes like ARM Transaction Elimination exploit. */
    double static_frame_rate = 0.0;
    /** Palette size for pure colours (smaller => more exact repeats
     * of the same colour across the video). */
    std::uint32_t color_palette = 192;
    /** Among newly minted non-pure blocks, fraction that are smooth
     * ramps (same gradient pattern, varying base: gab-only reuse). */
    double smooth_rate = 0.16;
    /** Number of distinct ramp patterns smooth blocks draw from. */
    std::uint32_t ramp_palette = 48;
    /** P(an intra/gradient copy source is spatially near rather than
     * uniform over the frame).  Real content repeats locally (sky,
     * letterbox bars), which is what makes the 16 KB display cache
     * sufficient (paper Fig. 10c). */
    double intra_locality = 0.40;
    /** Reach of "near" copies, in mabs. */
    std::uint32_t locality_reach = 256;

    // --- decode complexity (drives Fig. 2b regions) ----------------------
    /**
     * Mean frame decode time at the low VD frequency, as a fraction
     * of the 16.6 ms frame period.  0.72 reproduces the paper's
     * region structure.
     */
    double mean_decode_frac = 0.72;
    /** Sigma of the lognormal per-frame complexity multiplier. */
    double complexity_sigma = 0.19;
    /** Hard cap on the multiplier (keeps tails sane). */
    double complexity_cap = 3.0;

    // --- encoded stream ---------------------------------------------------
    /** Average encoded bytes per mab (H.264-like ~50:1 compression
     * against the 48 B decoded block for P/B content). */
    double encoded_bytes_per_mab = 6.0;

    /** GOP pattern, e.g. "IPPPPPPP" or "IBBPBBPBB". */
    std::string gop_pattern = "IBBPBBPBB";

    // --- derived ---------------------------------------------------------
    std::uint32_t mabsX() const { return width / (mab_dim); }
    std::uint32_t mabsY() const { return height / (mab_dim); }
    std::uint32_t mabsPerFrame() const { return mabsX() * mabsY(); }
    std::uint64_t decodedFrameBytes() const;
    /** Frame period in ticks (1/fps). */
    std::uint64_t framePeriodTicks() const;

    /** Abort on inconsistent parameters. */
    void validate() const;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_VIDEO_PROFILE_HH
