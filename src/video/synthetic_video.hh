/**
 * @file
 * Synthetic video source.
 *
 * Generates decoded frames whose macroblock-level content statistics
 * are controlled by a VideoProfile: exact intra-frame repeats, exact
 * inter-frame repeats (within a bounded window), constant-offset
 * "gradient" repeats that only the gab representation can catch,
 * pure-colour and smooth-ramp blocks, and unique noise blocks.
 * Deterministic for a given profile (seed included).
 */

#ifndef VSTREAM_VIDEO_SYNTHETIC_VIDEO_HH
#define VSTREAM_VIDEO_SYNTHETIC_VIDEO_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/random.hh"
#include "video/frame.hh"
#include "video/video_profile.hh"

namespace vstream
{

/** Stream of synthetic decoded frames. */
class SyntheticVideo
{
  public:
    explicit SyntheticVideo(const VideoProfile &profile);

    /** All frames emitted? */
    bool done() const { return next_index_ >= profile_.frame_count; }

    /** Generate the next frame (fatal when done()). */
    Frame nextFrame();

    std::uint64_t framesEmitted() const { return next_index_; }

    /** Restart the stream from frame 0 (same content). */
    void reset();

    const VideoProfile &profile() const { return profile_; }

  private:
    Pixel paletteColor();
    Macroblock uniqueMab();
    Macroblock smoothMab();
    /** Index of an earlier mab of the current frame to copy from
     * (locality-biased). */
    std::uint32_t intraSource(std::uint32_t i);
    /** A mab from a recent window frame, near position @p i. */
    const Macroblock &windowMabNear(std::uint32_t i);

    VideoProfile profile_;
    Random rng_;
    std::uint64_t next_index_ = 0;
    /** Most recent inter_window frames, newest at the back. */
    std::deque<Frame> window_;
    /** Cached ramp patterns (gradient blocks with zero base). */
    std::vector<Macroblock> ramps_;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_SYNTHETIC_VIDEO_HH
