/**
 * @file
 * Synthetic video source.
 *
 * Generates decoded frames whose macroblock-level content statistics
 * are controlled by a VideoProfile: exact intra-frame repeats, exact
 * inter-frame repeats (within a bounded window), constant-offset
 * "gradient" repeats that only the gab representation can catch,
 * pure-colour and smooth-ramp blocks, and unique noise blocks.
 * Deterministic for a given profile (seed included).
 */

#ifndef VSTREAM_VIDEO_SYNTHETIC_VIDEO_HH
#define VSTREAM_VIDEO_SYNTHETIC_VIDEO_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"
#include "video/frame.hh"
#include "video/video_profile.hh"

namespace vstream
{

/** Stream of synthetic decoded frames. */
class SyntheticVideo
{
  public:
    explicit SyntheticVideo(const VideoProfile &profile);

    /** All frames emitted? */
    bool done() const { return next_index_ >= profile_.frame_count; }

    /** Generate the next frame (fatal when done()). */
    Frame nextFrame();

    /**
     * Generate the next frame into @p out, reusing its storage
     * (fatal when done()).  Identical content and rng consumption to
     * nextFrame(); the serving hot path uses this with a recycled
     * scratch frame so steady-state generation never allocates.
     */
    void nextFrameInto(Frame &out);

    std::uint64_t framesEmitted() const { return next_index_; }

    /** Restart the stream from frame 0 (same content). */
    void reset();

    const VideoProfile &profile() const { return profile_; }

  private:
    Pixel paletteColor();
    void uniqueMabInto(Macroblock &mab);
    void smoothMabInto(Macroblock &mab);
    /** Index of an earlier mab of the current frame to copy from
     * (locality-biased). */
    std::uint32_t intraSource(std::uint32_t i);
    /** A mab from a recent window frame, near position @p i. */
    const Macroblock &windowMabNear(std::uint32_t i);

    /** Frame @p i of the logical window, 0 = oldest. */
    const Frame &windowAt(std::size_t i) const;
    /** Copy @p frame into the window ring as the newest entry. */
    void pushWindow(const Frame &frame);

    VideoProfile profile_;
    Random rng_;
    std::uint64_t next_index_ = 0;
    /**
     * Ring of the most recent inter_window frames.  Slots grow once
     * up to profile_.inter_window and are then recycled by
     * copy-assignment (which reuses macroblock storage), so the
     * steady-state window never allocates.  win_size_ is the live
     * logical window (reset on scene cuts), win_next_ the slot the
     * next frame lands in.
     */
    std::vector<Frame> window_ring_;
    std::size_t win_next_ = 0;
    std::size_t win_size_ = 0;
    /** Cached ramp patterns (gradient blocks with zero base). */
    std::vector<Macroblock> ramps_;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_SYNTHETIC_VIDEO_HH
