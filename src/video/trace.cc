#include "video/trace.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "video/synthetic_video.hh"

namespace vstream
{

namespace
{

constexpr char kMagic[4] = {'V', 'S', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

/**
 * CRC32 with the raw (pre-complement) state threaded through, so the
 * reader and writer can accumulate across many fields and finalize
 * once for the trailer.
 */
std::uint32_t
crcUpdate(std::uint32_t state, const void *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        state = table[(state ^ p[i]) & 0xffu] ^ (state >> 8);
    }
    return state;
}

/**
 * Unsigned integer with the same size as T, used as the transport
 * representation: every POD field is bit_cast to its UintFor type and
 * serialized byte-by-byte in little-endian order, so the on-disk
 * format is independent of host endianness and no field is ever read
 * or written through a misaligned or wrongly-typed pointer.
 */
template <std::size_t N> struct UintBySize;
template <> struct UintBySize<1> { using type = std::uint8_t; };
template <> struct UintBySize<2> { using type = std::uint16_t; };
template <> struct UintBySize<4> { using type = std::uint32_t; };
template <> struct UintBySize<8> { using type = std::uint64_t; };

template <typename T>
using UintFor = typename UintBySize<sizeof(T)>::type;

template <typename T>
std::array<std::uint8_t, sizeof(T)>
toLittleEndian(const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const auto u = std::bit_cast<UintFor<T>>(value);
    std::array<std::uint8_t, sizeof(T)> raw{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        raw[i] = static_cast<std::uint8_t>((u >> (8 * i)) & 0xffu);
    }
    return raw;
}

template <typename T>
T
fromLittleEndian(const std::array<std::uint8_t, sizeof(T)> &raw)
{
    static_assert(std::is_trivially_copyable_v<T>);
    UintFor<T> u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        u = static_cast<UintFor<T>>(
            u | (static_cast<UintFor<T>>(raw[i]) << (8 * i)));
    }
    return std::bit_cast<T>(u);
}

/** Write the little-endian bytes of @p value without updating a CRC. */
template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    const auto raw = toLittleEndian(value);
    os.write(reinterpret_cast<const char *>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
}

template <typename T>
void
writePod(std::ostream &os, std::uint32_t &crc_state, const T &value)
{
    const auto raw = toLittleEndian(value);
    os.write(reinterpret_cast<const char *>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
    crc_state = crcUpdate(crc_state, raw.data(), raw.size());
}

/**
 * Read one POD field; on a short read @p ok is cleared and the
 * (zero-initialized) value is meaningless.  Recoverability lives
 * here: every caller can turn a truncation into a TraceError instead
 * of a process exit.
 */
template <typename T>
T
readPod(std::istream &is, std::uint32_t &crc_state, bool &ok)
{
    std::array<std::uint8_t, sizeof(T)> raw{};
    is.read(reinterpret_cast<char *>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!is) {
        ok = false;
        return T{};
    }
    crc_state = crcUpdate(crc_state, raw.data(), raw.size());
    return fromLittleEndian<T>(raw);
}

} // namespace

const char *
traceErrorName(TraceError e)
{
    switch (e) {
      case TraceError::kNone:
        return "none";
      case TraceError::kBadMagic:
        return "bad-magic";
      case TraceError::kBadVersion:
        return "bad-version";
      case TraceError::kBadGeometry:
        return "bad-geometry";
      case TraceError::kTruncatedHeader:
        return "truncated-header";
      case TraceError::kTruncatedFrame:
        return "truncated-frame";
      case TraceError::kCorruptRecord:
        return "corrupt-record";
      case TraceError::kBadCrc:
        return "bad-crc";
    }
    return "?";
}

TraceWriter::TraceWriter(std::ostream &os, const VideoProfile &profile,
                         std::uint32_t frame_count)
    : os_(os), expected_frames_(frame_count), mabs_x_(profile.mabsX()),
      mabs_y_(profile.mabsY()), mab_dim_(profile.mab_dim),
      running_crc_state_(0xffffffffu)
{
    os_.write(kMagic, sizeof(kMagic));
    writePod(os_, running_crc_state_, kVersion);
    writePod(os_, running_crc_state_, frame_count);
    writePod(os_, running_crc_state_, mabs_x_);
    writePod(os_, running_crc_state_, mabs_y_);
    writePod(os_, running_crc_state_, mab_dim_);
    writePod(os_, running_crc_state_, profile.fps);
}

void
TraceWriter::append(const Frame &frame)
{
    vs_assert(!finished_, "append after finish()");
    vs_assert(frames_written_ < expected_frames_,
              "more frames than the header announced");
    vs_assert(frame.mabsX() == mabs_x_ && frame.mabsY() == mabs_y_ &&
                  frame.mabDim() == mab_dim_,
              "frame geometry does not match the trace header");

    writePod(os_, running_crc_state_,
             static_cast<std::uint8_t>(frame.type()));
    writePod(os_, running_crc_state_, frame.complexity());
    writePod(os_, running_crc_state_, frame.encodedBytes());
    for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
        const auto &bytes = frame.mab(i).bytes();
        os_.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        running_crc_state_ =
            crcUpdate(running_crc_state_, bytes.data(), bytes.size());
    }
    ++frames_written_;
}

void
TraceWriter::finish()
{
    vs_assert(!finished_, "finish() called twice");
    vs_assert(frames_written_ == expected_frames_,
              "header announced ", expected_frames_,
              " frames but only ", frames_written_, " were appended");
    const std::uint32_t digest = ~running_crc_state_;
    writeRaw(os_, digest);
    finished_ = true;
}

TraceReader::TraceReader(std::istream &is)
    : is_(is), running_crc_state_(0xffffffffu)
{
    char magic[4];
    is_.read(magic, sizeof(magic));
    if (!is_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        error_ = TraceError::kBadMagic;
        return;
    }
    bool ok = true;
    const auto version =
        readPod<std::uint32_t>(is_, running_crc_state_, ok);
    if (ok && version != kVersion) {
        error_ = TraceError::kBadVersion;
        return;
    }
    frame_count_ = readPod<std::uint32_t>(is_, running_crc_state_, ok);
    mabs_x_ = readPod<std::uint32_t>(is_, running_crc_state_, ok);
    mabs_y_ = readPod<std::uint32_t>(is_, running_crc_state_, ok);
    mab_dim_ = readPod<std::uint32_t>(is_, running_crc_state_, ok);
    fps_ = readPod<std::uint32_t>(is_, running_crc_state_, ok);
    if (!ok) {
        error_ = TraceError::kTruncatedHeader;
        frame_count_ = 0;
        return;
    }
    // Reject hostile geometry before a single Frame is constructed:
    // Frame allocates mabs_x * mabs_y * dim^2 * 3 bytes eagerly, so
    // an unchecked header is an out-of-memory (or a u32 overflow in
    // mabCount()) waiting to happen.
    if (mabs_x_ == 0 || mabs_y_ == 0 || mab_dim_ == 0 ||
        mabs_x_ > kMaxTraceMabsPerAxis ||
        mabs_y_ > kMaxTraceMabsPerAxis ||
        mab_dim_ > kMaxTraceMabDim ||
        static_cast<std::uint64_t>(mabs_x_) * mabs_y_ >
            kMaxTraceMabsPerFrame) {
        error_ = TraceError::kBadGeometry;
        frame_count_ = 0;
    }
}

std::optional<Frame>
TraceReader::tryNextFrame()
{
    vs_assert(!done(), "trace exhausted");

    bool ok = true;
    const auto type_byte =
        readPod<std::uint8_t>(is_, running_crc_state_, ok);
    const auto complexity =
        readPod<double>(is_, running_crc_state_, ok);
    const auto encoded =
        readPod<std::uint64_t>(is_, running_crc_state_, ok);
    if (!ok) {
        error_ = TraceError::kTruncatedFrame;
        return std::nullopt;
    }
    // Validate every record field before it reaches the simulator:
    // an out-of-range type byte is not a FrameType, a NaN/negative/
    // huge complexity poisons the tick arithmetic it multiplies, and
    // an absurd encoded size overflows bandwidth math downstream.
    if (type_byte > static_cast<std::uint8_t>(FrameType::kB) ||
        !std::isfinite(complexity) || complexity < 0.0 ||
        complexity > kMaxTraceComplexity ||
        encoded > kMaxTraceEncodedBytes) {
        error_ = TraceError::kCorruptRecord;
        return std::nullopt;
    }
    const auto type = static_cast<FrameType>(type_byte);

    Frame frame(frames_read_, type, mabs_x_, mabs_y_, mab_dim_);
    frame.setComplexity(complexity);
    frame.setEncodedBytes(encoded);

    const std::size_t mab_bytes =
        static_cast<std::size_t>(mab_dim_) * mab_dim_ * kBytesPerPixel;
    std::vector<std::uint8_t> buf(mab_bytes);
    for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
        is_.read(reinterpret_cast<char *>(buf.data()),
                 static_cast<std::streamsize>(buf.size()));
        if (!is_) {
            error_ = TraceError::kTruncatedFrame;
            return std::nullopt;
        }
        running_crc_state_ =
            crcUpdate(running_crc_state_, buf.data(), buf.size());
        frame.mab(i) = Macroblock(mab_dim_, buf);
    }
    ++frames_read_;
    return frame;
}

Frame
TraceReader::nextFrame()
{
    std::optional<Frame> frame = tryNextFrame();
    if (!frame.has_value()) {
        vs_fatal("truncated video trace in frame ", frames_read_);
    }
    return *std::move(frame);
}

bool
TraceReader::verifyTrailer()
{
    vs_assert(done(), "trailer read before the last frame");
    std::array<std::uint8_t, sizeof(std::uint32_t)> raw{};
    is_.read(reinterpret_cast<char *>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
    if (!is_) {
        error_ = TraceError::kBadCrc;
        return false;
    }
    if (fromLittleEndian<std::uint32_t>(raw) != ~running_crc_state_) {
        error_ = TraceError::kBadCrc;
        return false;
    }
    return true;
}

void
writeTrace(std::ostream &os, const VideoProfile &profile)
{
    SyntheticVideo video(profile);
    TraceWriter writer(os, profile, profile.frame_count);
    while (!video.done()) {
        writer.append(video.nextFrame());
    }
    writer.finish();
}

TraceLoadResult
loadTrace(std::istream &is, TracePolicy policy, FaultInjector *faults)
{
    TraceReader reader(is);
    TraceLoadResult result;
    result.frames_expected = reader.frameCount();
    if (reader.error() != TraceError::kNone) {
        result.error = reader.error();
        return result;
    }

    // The header's frame count is untrusted: reserve only a bounded
    // amount up front and let push_back grow past it, so a header
    // announcing four billion frames cannot demand the allocation
    // before the (truncated) stream refutes it.
    constexpr std::uint32_t kReserveCap = 4096;
    result.frames.reserve(std::min(reader.frameCount(), kReserveCap));
    std::uint32_t record = 0;
    while (!reader.done()) {
        std::optional<Frame> frame = reader.tryNextFrame();
        if (!frame.has_value()) {
            result.error = reader.error();
            if (policy == TracePolicy::kFailClean) {
                result.frames.clear();
            } else {
                result.frames_skipped =
                    result.frames_expected -
                    static_cast<std::uint32_t>(result.frames.size());
            }
            return result;
        }
        // Injected record corruption is detected as if each record
        // carried its own check: the loader knows which frame is bad
        // and the policy decides whether to drop it or fail clean.
        if (faults != nullptr &&
            faults->shouldInject(FaultClass::kTraceCorrupt,
                                 static_cast<Tick>(record))) {
            if (policy == TracePolicy::kSkipFrame) {
                ++result.frames_skipped;
                faults->noteRecovered(FaultClass::kTraceCorrupt);
            } else {
                result.error = TraceError::kCorruptRecord;
                result.frames.clear();
                return result;
            }
        } else {
            result.frames.push_back(*std::move(frame));
        }
        ++record;
    }

    if (!reader.verifyTrailer()) {
        result.error = reader.error();
        if (policy == TracePolicy::kFailClean) {
            result.frames.clear();
        }
        // kSkipFrame keeps the frames: each record was individually
        // well-formed even though the whole-trace digest disagrees.
    }
    return result;
}

std::vector<Frame>
readTrace(std::istream &is)
{
    TraceLoadResult result = loadTrace(is, TracePolicy::kFailClean);
    switch (result.error) {
      case TraceError::kNone:
        break;
      case TraceError::kBadMagic:
        vs_fatal("not a vstream video trace (bad magic)");
      case TraceError::kBadVersion:
        vs_fatal("unsupported trace version");
      case TraceError::kBadGeometry:
        vs_fatal("degenerate trace geometry");
      case TraceError::kTruncatedHeader:
      case TraceError::kTruncatedFrame:
      case TraceError::kCorruptRecord:
        vs_fatal("truncated video trace (",
                 traceErrorName(result.error), ")");
      case TraceError::kBadCrc:
        vs_fatal("video trace failed its integrity check");
    }
    return std::move(result.frames);
}

} // namespace vstream
