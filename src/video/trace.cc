#include "video/trace.hh"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

#include "sim/logging.hh"
#include "video/synthetic_video.hh"

namespace vstream
{

namespace
{

constexpr char kMagic[4] = {'V', 'S', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

/**
 * CRC32 with the raw (pre-complement) state threaded through, so the
 * reader and writer can accumulate across many fields and finalize
 * once for the trailer.
 */
std::uint32_t
crcUpdate(std::uint32_t state, const void *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        state = table[(state ^ p[i]) & 0xffu] ^ (state >> 8);
    return state;
}

template <typename T>
void
writePod(std::ostream &os, std::uint32_t &crc_state, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
    crc_state = crcUpdate(crc_state, &value, sizeof(T));
}

template <typename T>
T
readPod(std::istream &is, std::uint32_t &crc_state)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        vs_fatal("truncated video trace");
    crc_state = crcUpdate(crc_state, &value, sizeof(T));
    return value;
}

} // namespace

TraceWriter::TraceWriter(std::ostream &os, const VideoProfile &profile,
                         std::uint32_t frame_count)
    : os_(os), expected_frames_(frame_count), mabs_x_(profile.mabsX()),
      mabs_y_(profile.mabsY()), mab_dim_(profile.mab_dim),
      running_crc_state_(0xffffffffu)
{
    os_.write(kMagic, sizeof(kMagic));
    writePod(os_, running_crc_state_, kVersion);
    writePod(os_, running_crc_state_, frame_count);
    writePod(os_, running_crc_state_, mabs_x_);
    writePod(os_, running_crc_state_, mabs_y_);
    writePod(os_, running_crc_state_, mab_dim_);
    writePod(os_, running_crc_state_, profile.fps);
}

void
TraceWriter::append(const Frame &frame)
{
    vs_assert(!finished_, "append after finish()");
    vs_assert(frames_written_ < expected_frames_,
              "more frames than the header announced");
    vs_assert(frame.mabsX() == mabs_x_ && frame.mabsY() == mabs_y_ &&
                  frame.mabDim() == mab_dim_,
              "frame geometry does not match the trace header");

    writePod(os_, running_crc_state_,
             static_cast<std::uint8_t>(frame.type()));
    writePod(os_, running_crc_state_, frame.complexity());
    writePod(os_, running_crc_state_, frame.encodedBytes());
    for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
        const auto &bytes = frame.mab(i).bytes();
        os_.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        running_crc_state_ =
            crcUpdate(running_crc_state_, bytes.data(), bytes.size());
    }
    ++frames_written_;
}

void
TraceWriter::finish()
{
    vs_assert(!finished_, "finish() called twice");
    vs_assert(frames_written_ == expected_frames_,
              "header announced ", expected_frames_,
              " frames but only ", frames_written_, " were appended");
    const std::uint32_t digest = ~running_crc_state_;
    os_.write(reinterpret_cast<const char *>(&digest), sizeof(digest));
    finished_ = true;
}

TraceReader::TraceReader(std::istream &is)
    : is_(is), running_crc_state_(0xffffffffu)
{
    char magic[4];
    is_.read(magic, sizeof(magic));
    if (!is_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        vs_fatal("not a vstream video trace (bad magic)");
    const auto version = readPod<std::uint32_t>(is_, running_crc_state_);
    if (version != kVersion)
        vs_fatal("unsupported trace version ", version);
    frame_count_ = readPod<std::uint32_t>(is_, running_crc_state_);
    mabs_x_ = readPod<std::uint32_t>(is_, running_crc_state_);
    mabs_y_ = readPod<std::uint32_t>(is_, running_crc_state_);
    mab_dim_ = readPod<std::uint32_t>(is_, running_crc_state_);
    fps_ = readPod<std::uint32_t>(is_, running_crc_state_);
    if (mabs_x_ == 0 || mabs_y_ == 0 || mab_dim_ == 0)
        vs_fatal("degenerate trace geometry");
}

Frame
TraceReader::nextFrame()
{
    vs_assert(!done(), "trace exhausted");

    const auto type = static_cast<FrameType>(
        readPod<std::uint8_t>(is_, running_crc_state_));
    const auto complexity = readPod<double>(is_, running_crc_state_);
    const auto encoded = readPod<std::uint64_t>(is_, running_crc_state_);

    Frame frame(frames_read_, type, mabs_x_, mabs_y_, mab_dim_);
    frame.setComplexity(complexity);
    frame.setEncodedBytes(encoded);

    const std::size_t mab_bytes =
        static_cast<std::size_t>(mab_dim_) * mab_dim_ * kBytesPerPixel;
    std::vector<std::uint8_t> buf(mab_bytes);
    for (std::uint32_t i = 0; i < frame.mabCount(); ++i) {
        is_.read(reinterpret_cast<char *>(buf.data()),
                 static_cast<std::streamsize>(buf.size()));
        if (!is_)
            vs_fatal("truncated video trace in frame ", frames_read_);
        running_crc_state_ =
            crcUpdate(running_crc_state_, buf.data(), buf.size());
        frame.mab(i) = Macroblock(mab_dim_, buf);
    }
    ++frames_read_;
    return frame;
}

bool
TraceReader::verifyTrailer()
{
    vs_assert(done(), "trailer read before the last frame");
    std::uint32_t stored = 0;
    is_.read(reinterpret_cast<char *>(&stored), sizeof(stored));
    if (!is_)
        return false;
    return stored == ~running_crc_state_;
}

void
writeTrace(std::ostream &os, const VideoProfile &profile)
{
    SyntheticVideo video(profile);
    TraceWriter writer(os, profile, profile.frame_count);
    while (!video.done())
        writer.append(video.nextFrame());
    writer.finish();
}

std::vector<Frame>
readTrace(std::istream &is)
{
    TraceReader reader(is);
    std::vector<Frame> frames;
    frames.reserve(reader.frameCount());
    while (!reader.done())
        frames.push_back(reader.nextFrame());
    if (!reader.verifyTrailer())
        vs_fatal("video trace failed its integrity check");
    return frames;
}

} // namespace vstream
