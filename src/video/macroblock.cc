#include "video/macroblock.hh"

#include <utility>

#include "sim/logging.hh"
#include "video/pixel_kernels.hh"

namespace vstream
{

Macroblock::Macroblock(std::uint32_t dim)
    : dim_(dim), bytes_(static_cast<std::size_t>(dim) * dim * kBytesPerPixel,
                        0)
{
    vs_assert(dim_ > 0, "zero-dimension macroblock");
}

Macroblock::Macroblock(std::uint32_t dim, std::vector<std::uint8_t> bytes)
    : dim_(dim), bytes_(std::move(bytes))
{
    vs_assert(bytes_.size() ==
                  static_cast<std::size_t>(dim_) * dim_ * kBytesPerPixel,
              "macroblock byte count does not match dimension");
}

Pixel
Macroblock::pixel(std::uint32_t i) const
{
    vs_assert(i < pixelCount(), "pixel index out of range");
    const std::size_t off = static_cast<std::size_t>(i) * kBytesPerPixel;
    return Pixel{bytes_[off], bytes_[off + 1], bytes_[off + 2]};
}

void
Macroblock::setPixel(std::uint32_t i, const Pixel &p)
{
    vs_assert(i < pixelCount(), "pixel index out of range");
    const std::size_t off = static_cast<std::size_t>(i) * kBytesPerPixel;
    bytes_[off] = p.r;
    bytes_[off + 1] = p.g;
    bytes_[off + 2] = p.b;
}

void
Macroblock::fill(const Pixel &p)
{
    for (std::uint32_t i = 0; i < pixelCount(); ++i) {
        setPixel(i, p);
    }
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) assign reuses capacity; it grows
// only the first time a scratch block sees this dimension
void
Macroblock::assignBytes(std::uint32_t dim, const std::uint8_t *data,
                        std::size_t len)
{
    vs_assert(len == static_cast<std::size_t>(dim) * dim * kBytesPerPixel,
              "macroblock byte count does not match dimension");
    dim_ = dim;
    bytes_.assign(data, data + len);
}

// vstream:hot
void
Macroblock::addBase(const Pixel &p)
{
    // Exact-alias add: the kernels load each chunk before storing it,
    // so src == dst is safe.
    gradientAdd(bytes_.data(), bytes_.data(), bytes_.size(), p);
}

std::uint32_t
Macroblock::digest(HashKind kind) const
{
    return digest32(kind, bytes_.data(), bytes_.size());
}

std::uint16_t
Macroblock::auxDigest() const
{
    return auxDigest16(bytes_.data(), bytes_.size());
}

Macroblock
Macroblock::gradient() const
{
    Macroblock gab(dim_);
    gradientInto(gab);
    return gab;
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) sizes caller scratch once; the
// resize is a no-op on every later frame (callers keep the scratch)
void
Macroblock::gradientInto(Macroblock &out) const
{
    out.dim_ = dim_;
    out.bytes_.resize(bytes_.size());
    // One wrap-around subtract per byte with the channel base cycling
    // r,g,b - dispatched to the startup-selected SIMD kernel.
    gradientSub(out.bytes_.data(), bytes_.data(), bytes_.size(),
                base());
}

std::uint32_t
Macroblock::gradientDigest(HashKind kind) const
{
    return gradient().digest(kind);
}

Macroblock
Macroblock::fromGradient(const Macroblock &gab, const Pixel &p)
{
    Macroblock mab(gab.dim_);
    fromGradientInto(gab, p, mab);
    return mab;
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) sizes caller scratch once; the
// resize is a no-op on every later frame (callers keep the scratch)
void
Macroblock::fromGradientInto(const Macroblock &gab, const Pixel &p,
                             Macroblock &out)
{
    out.dim_ = gab.dim_;
    out.bytes_.resize(gab.bytes_.size());
    gradientAdd(out.bytes_.data(), gab.bytes_.data(),
                gab.bytes_.size(), p);
}

Macroblock
Macroblock::shifted(std::uint8_t dr, std::uint8_t dg, std::uint8_t db) const
{
    Macroblock out(dim_);
    gradientAdd(out.bytes_.data(), bytes_.data(), bytes_.size(),
                Pixel{dr, dg, db});
    return out;
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) sizes caller scratch once; the
// resize is a no-op on every later frame (callers keep the scratch)
void
Macroblock::shiftedInto(std::uint8_t dr, std::uint8_t dg, std::uint8_t db,
                        Macroblock &out) const
{
    out.dim_ = dim_;
    out.bytes_.resize(bytes_.size());
    gradientAdd(out.bytes_.data(), bytes_.data(), bytes_.size(),
                Pixel{dr, dg, db});
}

bool
Macroblock::operator==(const Macroblock &o) const
{
    return dim_ == o.dim_ && blockEqual(bytes_, o.bytes_);
}

} // namespace vstream
