#include "video/macroblock.hh"

#include <utility>

#include "sim/logging.hh"

namespace vstream
{

Macroblock::Macroblock(std::uint32_t dim)
    : dim_(dim), bytes_(static_cast<std::size_t>(dim) * dim * kBytesPerPixel,
                        0)
{
    vs_assert(dim_ > 0, "zero-dimension macroblock");
}

Macroblock::Macroblock(std::uint32_t dim, std::vector<std::uint8_t> bytes)
    : dim_(dim), bytes_(std::move(bytes))
{
    vs_assert(bytes_.size() ==
                  static_cast<std::size_t>(dim_) * dim_ * kBytesPerPixel,
              "macroblock byte count does not match dimension");
}

Pixel
Macroblock::pixel(std::uint32_t i) const
{
    vs_assert(i < pixelCount(), "pixel index out of range");
    const std::size_t off = static_cast<std::size_t>(i) * kBytesPerPixel;
    return Pixel{bytes_[off], bytes_[off + 1], bytes_[off + 2]};
}

void
Macroblock::setPixel(std::uint32_t i, const Pixel &p)
{
    vs_assert(i < pixelCount(), "pixel index out of range");
    const std::size_t off = static_cast<std::size_t>(i) * kBytesPerPixel;
    bytes_[off] = p.r;
    bytes_[off + 1] = p.g;
    bytes_[off + 2] = p.b;
}

void
Macroblock::fill(const Pixel &p)
{
    for (std::uint32_t i = 0; i < pixelCount(); ++i) {
        setPixel(i, p);
    }
}

std::uint32_t
Macroblock::digest(HashKind kind) const
{
    return digest32(kind, bytes_.data(), bytes_.size());
}

std::uint16_t
Macroblock::auxDigest() const
{
    return auxDigest16(bytes_.data(), bytes_.size());
}

Macroblock
Macroblock::gradient() const
{
    Macroblock gab(dim_);
    gradientInto(gab);
    return gab;
}

// vstream:hot
// vstream:allow(no-hotpath-alloc) sizes caller scratch once; the
// resize is a no-op on every later frame (callers keep the scratch)
void
Macroblock::gradientInto(Macroblock &out) const
{
    out.dim_ = dim_;
    out.bytes_.resize(bytes_.size());
    const Pixel b = base();
    const std::uint8_t *src = bytes_.data();
    std::uint8_t *dst = out.bytes_.data();
    const std::size_t n = bytes_.size();
    // Single pass, branch-light: one wrap-around subtract per byte
    // with the channel base cycling r,g,b.
    for (std::size_t i = 0; i + kBytesPerPixel <= n;
         i += kBytesPerPixel) {
        dst[i] = static_cast<std::uint8_t>(src[i] - b.r);
        dst[i + 1] = static_cast<std::uint8_t>(src[i + 1] - b.g);
        dst[i + 2] = static_cast<std::uint8_t>(src[i + 2] - b.b);
    }
}

std::uint32_t
Macroblock::gradientDigest(HashKind kind) const
{
    return gradient().digest(kind);
}

Macroblock
Macroblock::fromGradient(const Macroblock &gab, const Pixel &p)
{
    Macroblock mab(gab.dim_);
    for (std::size_t i = 0; i < gab.bytes_.size(); i += kBytesPerPixel) {
        mab.bytes_[i] = static_cast<std::uint8_t>(gab.bytes_[i] + p.r);
        mab.bytes_[i + 1] = static_cast<std::uint8_t>(gab.bytes_[i + 1] + p.g);
        mab.bytes_[i + 2] = static_cast<std::uint8_t>(gab.bytes_[i + 2] + p.b);
    }
    return mab;
}

Macroblock
Macroblock::shifted(std::uint8_t dr, std::uint8_t dg, std::uint8_t db) const
{
    Macroblock out(dim_);
    for (std::size_t i = 0; i < bytes_.size(); i += kBytesPerPixel) {
        out.bytes_[i] = static_cast<std::uint8_t>(bytes_[i] + dr);
        out.bytes_[i + 1] = static_cast<std::uint8_t>(bytes_[i + 1] + dg);
        out.bytes_[i + 2] = static_cast<std::uint8_t>(bytes_[i + 2] + db);
    }
    return out;
}

bool
Macroblock::operator==(const Macroblock &o) const
{
    return dim_ == o.dim_ && bytes_ == o.bytes_;
}

} // namespace vstream
