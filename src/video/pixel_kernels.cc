#include "video/pixel_kernels.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VSTREAM_PIXEL_X86 1
#include <immintrin.h>
#endif

namespace vstream
{

namespace
{

// --- Gradient kernels -----------------------------------------------
//
// All kernels share one contract (pinned by Macroblock::gradientInto's
// original scalar loop): exactly floor(len / 3) pixels are
// transformed; any 1-2 trailing bytes past the last full pixel are
// left untouched in dst.  In the simulator len is always a multiple
// of 3, but the equivalence tests exercise ragged tails too.

// vstream:hot
void
gradientScalar(std::uint8_t *dst, const std::uint8_t *src,
               std::size_t len, const Pixel &base, bool add)
{
    if (add) {
        for (std::size_t i = 0; i + kBytesPerPixel <= len;
             i += kBytesPerPixel) {
            dst[i] = static_cast<std::uint8_t>(src[i] + base.r);
            dst[i + 1] = static_cast<std::uint8_t>(src[i + 1] + base.g);
            dst[i + 2] = static_cast<std::uint8_t>(src[i + 2] + base.b);
        }
        return;
    }
    for (std::size_t i = 0; i + kBytesPerPixel <= len;
         i += kBytesPerPixel) {
        dst[i] = static_cast<std::uint8_t>(src[i] - base.r);
        dst[i + 1] = static_cast<std::uint8_t>(src[i + 1] - base.g);
        dst[i + 2] = static_cast<std::uint8_t>(src[i + 2] - base.b);
    }
}

#ifdef VSTREAM_PIXEL_X86

/**
 * The r,g,b base pattern repeated across 16-byte lanes: lcm(16, 3) =
 * 48 and lcm(32, 3) = 96, so three phase-rotated base vectors keep
 * the channel cycle in lockstep with the chunked loop.  The repeating
 * byte pattern has period 12 = lcm(4, 3), i.e. only three distinct
 * dwords, so the vectors are assembled register-side — building the
 * 96 B pattern in memory and reloading it cost a store-to-load
 * forwarding stall on every call, half the price of a 48 B mab.
 */
struct BasePhases
{
    __m128i p0, p1, p2;
};

BasePhases
makePhases(const Pixel &base)
{
    const auto r = static_cast<std::uint32_t>(base.r);
    const auto g = static_cast<std::uint32_t>(base.g);
    const auto b = static_cast<std::uint32_t>(base.b);
    // d0/d1/d2 are the pattern's bytes 0-3, 4-7, 8-11; every 16-byte
    // phase is some rotation d_k, d_k+1, d_k+2, d_k of the three.
    const auto d0 =
        static_cast<int>(r | (g << 8) | (b << 16) | (r << 24));
    const auto d1 =
        static_cast<int>(g | (b << 8) | (r << 16) | (g << 24));
    const auto d2 =
        static_cast<int>(b | (r << 8) | (g << 16) | (b << 24));
    BasePhases ph;
    ph.p0 = _mm_setr_epi32(d0, d1, d2, d0); // bytes 0..15: phase 0
    ph.p1 = _mm_setr_epi32(d1, d2, d0, d1); // bytes 16..31: phase 1
    ph.p2 = _mm_setr_epi32(d2, d0, d1, d2); // bytes 32..47: phase 2
    return ph;
}

// vstream:hot
void
gradientSse2(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t len, const Pixel &base, bool add)
{
    const BasePhases ph = makePhases(base);
    const __m128i p0 = ph.p0;
    const __m128i p1 = ph.p1;
    const __m128i p2 = ph.p2;
    std::size_t i = 0;
    // Byte add/sub is exact mod-256 arithmetic in both scalar and
    // vector form, so the chunked loop is identical by construction.
    for (; i + 48 <= len; i += 48) {
        const auto *s = reinterpret_cast<const __m128i *>(src + i);
        auto *d = reinterpret_cast<__m128i *>(dst + i);
        const __m128i a = _mm_loadu_si128(s);
        const __m128i b = _mm_loadu_si128(s + 1);
        const __m128i c = _mm_loadu_si128(s + 2);
        if (add) {
            _mm_storeu_si128(d, _mm_add_epi8(a, p0));
            _mm_storeu_si128(d + 1, _mm_add_epi8(b, p1));
            _mm_storeu_si128(d + 2, _mm_add_epi8(c, p2));
        } else {
            _mm_storeu_si128(d, _mm_sub_epi8(a, p0));
            _mm_storeu_si128(d + 1, _mm_sub_epi8(b, p1));
            _mm_storeu_si128(d + 2, _mm_sub_epi8(c, p2));
        }
    }
    // 48 is a multiple of 3, so the tail re-enters at channel phase 0.
    gradientScalar(dst + i, src + i, len - i, base, add);
}

// vstream:hot
__attribute__((target("avx2"))) void
gradientAvx2(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t len, const Pixel &base, bool add)
{
    // Below one 96 B chunk the 256-bit loop never runs, so delegate
    // before touching a ymm register: loading the pattern would only
    // dirty the upper lanes and tax the SSE2 tail with AVX-SSE
    // transition penalties (~10x on a single 48 B mab).
    if (len < 96) {
        gradientSse2(dst, src, len, base, add);
        return;
    }
    // The 96 B pattern is six 16-byte phases: 0,1,2,0,1,2.
    const BasePhases ph = makePhases(base);
    const __m256i p0 = _mm256_set_m128i(ph.p1, ph.p0);
    const __m256i p1 = _mm256_set_m128i(ph.p0, ph.p2);
    const __m256i p2 = _mm256_set_m128i(ph.p2, ph.p1);
    std::size_t i = 0;
    for (; i + 96 <= len; i += 96) {
        const auto *s = reinterpret_cast<const __m256i *>(src + i);
        auto *d = reinterpret_cast<__m256i *>(dst + i);
        const __m256i a = _mm256_loadu_si256(s);
        const __m256i b = _mm256_loadu_si256(s + 1);
        const __m256i c = _mm256_loadu_si256(s + 2);
        if (add) {
            _mm256_storeu_si256(d, _mm256_add_epi8(a, p0));
            _mm256_storeu_si256(d + 1, _mm256_add_epi8(b, p1));
            _mm256_storeu_si256(d + 2, _mm256_add_epi8(c, p2));
        } else {
            _mm256_storeu_si256(d, _mm256_sub_epi8(a, p0));
            _mm256_storeu_si256(d + 1, _mm256_sub_epi8(b, p1));
            _mm256_storeu_si256(d + 2, _mm256_sub_epi8(c, p2));
        }
    }
    // 96 is a multiple of 48: at most one 48 B chunk remains, done
    // here with VEX-encoded 128-bit ops — calling the legacy-SSE2
    // helper with dirty ymm uppers would pay transition penalties.
    for (; i + 48 <= len; i += 48) {
        const auto *s = reinterpret_cast<const __m128i *>(src + i);
        auto *d = reinterpret_cast<__m128i *>(dst + i);
        const __m128i a = _mm_loadu_si128(s);
        const __m128i b = _mm_loadu_si128(s + 1);
        const __m128i c = _mm_loadu_si128(s + 2);
        if (add) {
            _mm_storeu_si128(d, _mm_add_epi8(a, ph.p0));
            _mm_storeu_si128(d + 1, _mm_add_epi8(b, ph.p1));
            _mm_storeu_si128(d + 2, _mm_add_epi8(c, ph.p2));
        } else {
            _mm_storeu_si128(d, _mm_sub_epi8(a, ph.p0));
            _mm_storeu_si128(d + 1, _mm_sub_epi8(b, ph.p1));
            _mm_storeu_si128(d + 2, _mm_sub_epi8(c, ph.p2));
        }
    }
    // The ragged sub-48 B tail re-enters at channel phase 0.
    gradientScalar(dst + i, src + i, len - i, base, add);
}

bool
gradientAvx2Available()
{
    return __builtin_cpu_supports("avx2");
}

#else

void
gradientSse2(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t len, const Pixel &base, bool add)
{
    gradientScalar(dst, src, len, base, add);
}

void
gradientAvx2(std::uint8_t *dst, const std::uint8_t *src,
             std::size_t len, const Pixel &base, bool add)
{
    gradientScalar(dst, src, len, base, add);
}

bool
gradientAvx2Available()
{
    return false;
}

#endif

bool
gradientSse2Available()
{
#ifdef VSTREAM_PIXEL_X86
    return true;
#else
    return false;
#endif
}

using GradientFn = void (*)(std::uint8_t *, const std::uint8_t *,
                            std::size_t, const Pixel &, bool);

GradientFn
gradientFn(GradientKernel k)
{
    switch (k) {
      case GradientKernel::kScalar:
        return gradientScalar;
      case GradientKernel::kSse2:
        return gradientSse2;
      case GradientKernel::kAvx2:
        return gradientAvx2;
    }
    return gradientScalar;
}

/**
 * Pick the dispatch target once, pre-main: the widest available
 * kernel unless VSTREAM_GRADIENT_IMPL forces one.  All kernels
 * transform bytes identically, so the choice never affects
 * simulation output.
 */
// vstream:allow(determinism-source) digest-equivalent dispatch
GradientKernel
resolveGradientKernel()
{
    GradientKernel best = GradientKernel::kScalar;
    if (gradientSse2Available()) {
        best = GradientKernel::kSse2;
    }
    if (gradientAvx2Available()) {
        best = GradientKernel::kAvx2;
    }
    // Resolved once, pre-main, before any thread exists.
    const char *force = std::getenv(
        "VSTREAM_GRADIENT_IMPL"); // NOLINT(concurrency-mt-unsafe)
    if (force == nullptr) {
        return best;
    }
    if (std::strcmp(force, "scalar") == 0) {
        return GradientKernel::kScalar;
    }
    if (std::strcmp(force, "sse2") == 0 && gradientSse2Available()) {
        return GradientKernel::kSse2;
    }
    if (std::strcmp(force, "avx2") == 0 && gradientAvx2Available()) {
        return GradientKernel::kAvx2;
    }
    return best;
}

const GradientKernel kActiveGradientKernel = resolveGradientKernel();
const GradientFn kActiveGradientFn = gradientFn(kActiveGradientKernel);

// --- Similarity (block equality) kernels ----------------------------

// vstream:hot
bool
equalScalar(const std::uint8_t *a, const std::uint8_t *b,
            std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i) {
        if (a[i] != b[i]) {
            return false;
        }
    }
    return true;
}

// vstream:hot
bool
equalPacked64(const std::uint8_t *a, const std::uint8_t *b,
              std::size_t len)
{
    while (len >= 8) {
        std::uint64_t x;
        std::uint64_t y;
        std::memcpy(&x, a, 8);
        std::memcpy(&y, b, 8);
        if (x != y) {
            return false;
        }
        a += 8;
        b += 8;
        len -= 8;
    }
    return equalScalar(a, b, len);
}

#ifdef VSTREAM_PIXEL_X86

// vstream:hot
bool
equalSimd(const std::uint8_t *a, const std::uint8_t *b,
          std::size_t len)
{
    while (len >= 16) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a));
        const __m128i y = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b));
        if (_mm_movemask_epi8(_mm_cmpeq_epi8(x, y)) != 0xffff) {
            return false;
        }
        a += 16;
        b += 16;
        len -= 16;
    }
    return equalPacked64(a, b, len);
}

bool
similaritySimdAvailable()
{
    return true;
}

#else

bool
equalSimd(const std::uint8_t *a, const std::uint8_t *b,
          std::size_t len)
{
    return equalPacked64(a, b, len);
}

bool
similaritySimdAvailable()
{
    return false;
}

#endif

using EqualFn = bool (*)(const std::uint8_t *, const std::uint8_t *,
                         std::size_t);

EqualFn
similarityFn(SimilarityKernel k)
{
    switch (k) {
      case SimilarityKernel::kScalar:
        return equalScalar;
      case SimilarityKernel::kPacked64:
        return equalPacked64;
      case SimilarityKernel::kSimd:
        return equalSimd;
    }
    return equalScalar;
}

// A boolean equality probe cannot perturb output whichever kernel
// computes it; the env read only selects an implementation.
// vstream:allow(determinism-source) digest-equivalent dispatch
SimilarityKernel
resolveSimilarityKernel()
{
    const SimilarityKernel best = similaritySimdAvailable()
                                      ? SimilarityKernel::kSimd
                                      : SimilarityKernel::kPacked64;
    // Resolved once, pre-main, before any thread exists.
    const char *force = std::getenv(
        "VSTREAM_SIMILARITY_IMPL"); // NOLINT(concurrency-mt-unsafe)
    if (force == nullptr) {
        return best;
    }
    if (std::strcmp(force, "scalar") == 0) {
        return SimilarityKernel::kScalar;
    }
    if (std::strcmp(force, "packed64") == 0) {
        return SimilarityKernel::kPacked64;
    }
    if (std::strcmp(force, "simd") == 0 && similaritySimdAvailable()) {
        return SimilarityKernel::kSimd;
    }
    return best;
}

const SimilarityKernel kActiveSimilarityKernel =
    resolveSimilarityKernel();
const EqualFn kActiveEqualFn = similarityFn(kActiveSimilarityKernel);

} // namespace

// --- Public API -----------------------------------------------------

const char *
gradientKernelName(GradientKernel k)
{
    switch (k) {
      case GradientKernel::kScalar:
        return "scalar";
      case GradientKernel::kSse2:
        return "sse2";
      case GradientKernel::kAvx2:
        return "avx2";
    }
    return "unknown";
}

std::vector<GradientKernel>
availableGradientKernels()
{
    std::vector<GradientKernel> out{GradientKernel::kScalar};
    if (gradientSse2Available()) {
        out.push_back(GradientKernel::kSse2);
    }
    if (gradientAvx2Available()) {
        out.push_back(GradientKernel::kAvx2);
    }
    return out;
}

GradientKernel
activeGradientKernel()
{
    return kActiveGradientKernel;
}

// vstream:hot
void
gradientSub(std::uint8_t *dst, const std::uint8_t *src,
            std::size_t len, const Pixel &base)
{
    kActiveGradientFn(dst, src, len, base, /*add=*/false);
}

// vstream:hot
void
gradientAdd(std::uint8_t *dst, const std::uint8_t *src,
            std::size_t len, const Pixel &base)
{
    kActiveGradientFn(dst, src, len, base, /*add=*/true);
}

void
gradientSubWith(GradientKernel k, std::uint8_t *dst,
                const std::uint8_t *src, std::size_t len,
                const Pixel &base)
{
    gradientFn(k)(dst, src, len, base, /*add=*/false);
}

void
gradientAddWith(GradientKernel k, std::uint8_t *dst,
                const std::uint8_t *src, std::size_t len,
                const Pixel &base)
{
    gradientFn(k)(dst, src, len, base, /*add=*/true);
}

const char *
similarityKernelName(SimilarityKernel k)
{
    switch (k) {
      case SimilarityKernel::kScalar:
        return "scalar";
      case SimilarityKernel::kPacked64:
        return "packed64";
      case SimilarityKernel::kSimd:
        return "simd";
    }
    return "unknown";
}

std::vector<SimilarityKernel>
availableSimilarityKernels()
{
    std::vector<SimilarityKernel> out{SimilarityKernel::kScalar,
                                      SimilarityKernel::kPacked64};
    if (similaritySimdAvailable()) {
        out.push_back(SimilarityKernel::kSimd);
    }
    return out;
}

SimilarityKernel
activeSimilarityKernel()
{
    return kActiveSimilarityKernel;
}

// vstream:hot
bool
blockEqual(const std::uint8_t *a, const std::uint8_t *b,
           std::size_t len)
{
    return kActiveEqualFn(a, b, len);
}

bool
blockEqualWith(SimilarityKernel k, const std::uint8_t *a,
               const std::uint8_t *b, std::size_t len)
{
    return similarityFn(k)(a, b, len);
}

// vstream:hot
bool
blockEqual(const std::vector<std::uint8_t> &a,
           const std::vector<std::uint8_t> &b)
{
    return a.size() == b.size() &&
           kActiveEqualFn(a.data(), b.data(), a.size());
}

} // namespace vstream
