/**
 * @file
 * Shared content library with Zipf popularity.
 *
 * At fleet scale the dedup win comes from many sessions decoding the
 * *same* popular titles.  A ZipfLibrary maps a session to a title by a
 * deterministic Zipf(s) draw and rewrites the session's VideoProfile
 * so that two sessions on the same title generate byte-identical
 * content (same generator seed), which is exactly what the shared
 * MACH tier (serve/shared_mach.hh) dedups across sessions.
 *
 * The library spec string ("titles=64,skew=0.9,seed=7") comes from
 * the CLI and is therefore parsed fail-closed, mirroring the chaos
 * rule grammar in serve/chaos.cc.
 */

#ifndef VSTREAM_VIDEO_LIBRARY_HH
#define VSTREAM_VIDEO_LIBRARY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "video/video_profile.hh"

namespace vstream
{

/** library_title value meaning "standalone content, not a library
 * member" (the default for every profile). */
inline constexpr std::uint32_t kNoLibraryTitle = 0xffffffffu;

/** Parsed "titles=N,skew=F,seed=N" library spec. */
struct LibrarySpec
{
    /** Number of distinct titles in the catalogue (>= 1). */
    std::uint32_t titles = 1;
    /** Zipf exponent; 0 is uniform, larger skews toward title 0. */
    double skew = 0.8;
    /** Seed for both the popularity draw and per-title content. */
    std::uint64_t seed = 1;
};

/**
 * Parse @p spec into @p out.  Returns false (and sets @p error) on
 * any malformed, non-finite, or out-of-range field; @p out is only
 * written on success.  titles=N is required.
 */
bool tryParseLibrarySpec(const std::string &spec, LibrarySpec &out,
                         std::string &error);

/** Parse-or-die wrapper for CLI use. */
LibrarySpec parseLibrarySpec(const std::string &spec);

/**
 * A catalogue of @c titles synthetic videos with Zipf(s) popularity.
 *
 * sampleTitle() is a pure function of (spec, key): the same session
 * id always lands on the same title regardless of arrival order or
 * job count, which keeps fleet runs seed/jobs-invariant.
 */
class ZipfLibrary
{
  public:
    explicit ZipfLibrary(LibrarySpec spec);

    const LibrarySpec &spec() const { return spec_; }

    /** Deterministic Zipf draw for @p key (e.g. the session id). */
    std::uint32_t sampleTitle(std::uint64_t key) const;

    /** Normalized popularity weight of @p title. */
    double weight(std::uint32_t title) const;

    /**
     * Rebind @p profile to @p title: the content identity fields
     * (key, seed, library_title) are rewritten so every session on
     * the same title decodes byte-identical macroblocks.  Geometry
     * and complexity knobs are left alone.
     */
    void applyTo(VideoProfile &profile, std::uint32_t title) const;

  private:
    LibrarySpec spec_;
    /** Cumulative popularity, cdf_[t] = P(title <= t); size titles. */
    std::vector<double> cdf_;
};

} // namespace vstream

#endif // VSTREAM_VIDEO_LIBRARY_HH
