/**
 * @file
 * RGB pixel type.
 *
 * The paper assumes frames reach the frame buffer in RGB (Android
 * gralloc framebuffer format), 3 bytes per pixel; the MACH technique
 * itself is colour-space agnostic.
 */

#ifndef VSTREAM_VIDEO_PIXEL_HH
#define VSTREAM_VIDEO_PIXEL_HH

#include <cstdint>

namespace vstream
{

/** One 24-bit RGB pixel. */
struct Pixel
{
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;

    bool
    operator==(const Pixel &o) const
    {
        return r == o.r && g == o.g && b == o.b;
    }
};

/** Bytes per pixel in the frame buffer. */
constexpr std::uint32_t kBytesPerPixel = 3;

} // namespace vstream

#endif // VSTREAM_VIDEO_PIXEL_HH
