#include "video/gop.hh"

#include "sim/logging.hh"

namespace vstream
{

char
frameTypeChar(FrameType t)
{
    switch (t) {
      case FrameType::kI:
        return 'I';
      case FrameType::kP:
        return 'P';
      case FrameType::kB:
        return 'B';
    }
    return '?';
}

GopStructure::GopStructure(const std::string &pattern) : pattern_(pattern)
{
    if (pattern_.empty()) {
        vs_fatal("empty GOP pattern");
    }
    bool has_i = false;
    for (char c : pattern_) {
        if (c != 'I' && c != 'P' && c != 'B') {
            vs_fatal("bad GOP pattern character '", c, "'");
        }
        if (c == 'I') {
            has_i = true;
        }
    }
    if (!has_i) {
        vs_fatal("GOP pattern must contain at least one I frame");
    }
}

FrameType
GopStructure::frameType(std::uint64_t index) const
{
    if (index == 0) {
        return FrameType::kI;
    }
    switch (pattern_[index % pattern_.size()]) {
      case 'I':
        return FrameType::kI;
      case 'P':
        return FrameType::kP;
      default:
        return FrameType::kB;
    }
}

double
GopStructure::typeFraction(FrameType t) const
{
    std::uint32_t n = 0;
    for (char c : pattern_) {
        if (c == frameTypeChar(t)) {
            ++n;
        }
    }
    return static_cast<double>(n) / static_cast<double>(pattern_.size());
}

} // namespace vstream
